package mhm2sim

// One benchmark per table/figure of the paper's evaluation section
// (DESIGN.md §4 is the index). Each benchmark regenerates its figure's
// series through the same internal/figures harness the cmd/figures tool
// uses, timing the full regeneration. Reduced ("quick") presets keep the
// suite runnable in minutes; `go run ./cmd/figures` produces the
// full-scale versions.

import (
	"strings"
	"sync"
	"testing"

	"mhm2sim/internal/cluster"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/figures"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/simt"
)

// benchState shares the expensive pipeline runs and calibrated model
// across benchmarks.
type benchState struct {
	arctic    figures.Setup
	arcticRes *pipeline.Result
	wa        figures.Setup
	waRes     *pipeline.Result
	model     *cluster.Model
	f64       float64
	f2        float64
}

var (
	stateOnce sync.Once
	state     benchState
	stateErr  error
)

func getState(b *testing.B) *benchState {
	b.Helper()
	stateOnce.Do(func() {
		if state.arctic, stateErr = figures.QuickSetup("arcticsynth"); stateErr != nil {
			return
		}
		if state.arcticRes, stateErr = state.arctic.Run(false); stateErr != nil {
			return
		}
		if state.wa, stateErr = figures.QuickSetup("WA"); stateErr != nil {
			return
		}
		if state.waRes, stateErr = state.wa.Run(false); stateErr != nil {
			return
		}
		if state.model, state.f64, stateErr = figures.Model(state.waRes, state.wa.Config.Locassm); stateErr != nil {
			return
		}
		state.f2, stateErr = state.model.FitRatio(4.3)
	})
	if stateErr != nil {
		b.Fatal(stateErr)
	}
	return &state
}

// BenchmarkFig2Breakdown regenerates the 64-node WA stage breakdowns
// (total 2128 s with 34% local assembly → 1495 s with 6%).
func BenchmarkFig2Breakdown(b *testing.B) {
	s := getState(b)
	for i := 0; i < b.N; i++ {
		out := figures.Fig2(s.model, s.f64)
		if !strings.Contains(out, "local assembly") {
			b.Fatal("malformed Fig 2")
		}
	}
}

// BenchmarkFig3Binning regenerates the contig-per-bin distribution across
// k (bin 1 largest, bin 3 smallest, more candidates at larger k).
func BenchmarkFig3Binning(b *testing.B) {
	s := getState(b)
	for i := 0; i < b.N; i++ {
		out := figures.Fig3(s.arcticRes.Bins)
		if !strings.Contains(out, "bin3") {
			b.Fatal("malformed Fig 3")
		}
	}
}

// benchRoofline shares the kernel re-execution for Figs 8-10.
var (
	rooflineOnce sync.Once
	rooflineRes  figures.RooflineResults
	rooflineErr  error
)

func getRoofline(b *testing.B) figures.RooflineResults {
	b.Helper()
	s := getState(b)
	rooflineOnce.Do(func() {
		rooflineRes, rooflineErr = figures.RunRoofline(
			s.arcticRes.LAWorkload, s.arctic.Config.Locassm, 2*s.f2)
	})
	if rooflineErr != nil {
		b.Fatal(rooflineErr)
	}
	return rooflineRes
}

// BenchmarkFig8RooflineV1 characterizes the thread-per-table kernel.
func BenchmarkFig8RooflineV1(b *testing.B) {
	rf := getRoofline(b)
	for i := 0; i < b.N; i++ {
		if rf.V1.WarpGIPS <= 0 || rf.V1.WarpGIPS > rf.V1.PeakGIPS {
			b.Fatal("v1 GIPS out of range")
		}
	}
}

// BenchmarkFig9RooflineV2 characterizes the warp-per-table kernel; its dot
// must sit up and to the right of v1's.
func BenchmarkFig9RooflineV2(b *testing.B) {
	rf := getRoofline(b)
	for i := 0; i < b.N; i++ {
		if rf.V2.WarpGIPS <= rf.V1.WarpGIPS {
			b.Fatal("v2 not faster than v1")
		}
		if rf.V2.IntensityL1 <= rf.V1.IntensityL1 {
			b.Fatal("v2 intensity not above v1")
		}
	}
}

// BenchmarkFig10InstrBreakdown regenerates the grouped instruction counts
// (global-memory instructions drop sharply from v1 to v2).
func BenchmarkFig10InstrBreakdown(b *testing.B) {
	rf := getRoofline(b)
	for i := 0; i < b.N; i++ {
		g1 := rf.V1.GroupBreakdown()["global_memory_inst"]
		g2 := rf.V2.GroupBreakdown()["global_memory_inst"]
		if g2 >= g1 {
			b.Fatal("v2 did not reduce global-memory instructions")
		}
	}
}

// BenchmarkFig12TwoNode regenerates the 2-node arcticsynth comparison
// (4.3x local assembly, ~12% overall).
func BenchmarkFig12TwoNode(b *testing.B) {
	s := getState(b)
	for i := 0; i < b.N; i++ {
		out, err := figures.Fig12(s.model, s.arcticRes.Timings)
		if err != nil {
			b.Fatal(err)
		}
		if !strings.Contains(out, "4.3") {
			b.Fatal("malformed Fig 12")
		}
	}
}

// BenchmarkFig13LocalAssemblyScaling regenerates the local-assembly strong
// scaling (7.2x at 64 nodes → 2.65x at 1024).
func BenchmarkFig13LocalAssemblyScaling(b *testing.B) {
	s := getState(b)
	for i := 0; i < b.N; i++ {
		pts := s.model.LAScaling(figures.ScalingNodes, s.f64)
		if pts[0].Speedup < 6.5 || pts[len(pts)-1].Speedup > 3.2 {
			b.Fatalf("scaling endpoints off: %.2f / %.2f",
				pts[0].Speedup, pts[len(pts)-1].Speedup)
		}
	}
}

// BenchmarkFig14PipelineScaling regenerates the whole-pipeline scaling
// (≈42% at 64 nodes, declining with node count).
func BenchmarkFig14PipelineScaling(b *testing.B) {
	s := getState(b)
	for i := 0; i < b.N; i++ {
		pts := s.model.PipelineScaling(figures.ScalingNodes, s.f64)
		if pts[0].SpeedupPct < 35 || pts[0].SpeedupPct > 50 {
			b.Fatalf("64-node speedup %.1f%% out of range", pts[0].SpeedupPct)
		}
	}
}

// BenchmarkPipelineCPU and BenchmarkPipelineGPU time the end-to-end
// pipeline itself under both local-assembly implementations (wall time of
// this repository's code, not model time).
func BenchmarkPipelineCPU(b *testing.B) {
	s := getState(b)
	_, pairs, err := s.arctic.Preset.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(pairs, s.arctic.Config); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineGPU(b *testing.B) {
	s := getState(b)
	_, pairs, err := s.arctic.Preset.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := s.arctic.Config
	cfg.Engine.Name = locassm.EngineGPU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipeline.Run(pairs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalAssemblyCPU / GPU time the core module standalone on the
// arcticsynth workload (the paper's standalone comparison).
func BenchmarkLocalAssemblyCPU(b *testing.B) {
	s := getState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locassm.RunCPU(s.arcticRes.LAWorkload, s.arctic.Config.Locassm, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUTableBuild isolates Algorithm 1 on the host flat-table
// engine: the workload's read qualities all sit below the cutoff, so every
// walk dies at its first probe and the run is dominated by table builds
// and k-mer inserts.
func BenchmarkCPUTableBuild(b *testing.B) {
	s := getState(b)
	ctgs := cloneWorkload(s.arcticRes.LAWorkload)
	for _, c := range ctgs {
		for _, rs := range [][]dna.Read{c.LeftReads, c.RightReads} {
			for i := range rs {
				for j := range rs[i].Qual {
					rs[i].Qual[j] = dna.QualChar(5)
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locassm.RunCPU(ctgs, s.arctic.Config.Locassm, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPUWalk emphasizes Algorithm 2: few reads per contig (small
// tables) but full-length walks, so lookup/visited probing dominates.
func BenchmarkCPUWalk(b *testing.B) {
	s := getState(b)
	ctgs := cloneWorkload(s.arcticRes.LAWorkload)
	const keep = 4
	for _, c := range ctgs {
		if len(c.LeftReads) > keep {
			c.LeftReads = c.LeftReads[:keep]
		}
		if len(c.RightReads) > keep {
			c.RightReads = c.RightReads[:keep]
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locassm.RunCPU(ctgs, s.arctic.Config.Locassm, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// cloneWorkload deep-copies contigs and reads so a benchmark can reshape
// them without corrupting the shared state.
func cloneWorkload(ctgs []*locassm.CtgWithReads) []*locassm.CtgWithReads {
	out := make([]*locassm.CtgWithReads, len(ctgs))
	for i, c := range ctgs {
		cc := &locassm.CtgWithReads{
			ID:    c.ID,
			Seq:   append([]byte(nil), c.Seq...),
			Depth: c.Depth,
		}
		cc.LeftReads = make([]dna.Read, len(c.LeftReads))
		for j := range c.LeftReads {
			cc.LeftReads[j] = c.LeftReads[j].Clone()
		}
		cc.RightReads = make([]dna.Read, len(c.RightReads))
		for j := range c.RightReads {
			cc.RightReads[j] = c.RightReads[j].Clone()
		}
		out[i] = cc
	}
	return out
}

func BenchmarkLocalAssemblyGPUv2(b *testing.B) {
	s := getState(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.ModelFromWorkload(s.arcticRes.LAWorkload, s.arctic.Config.Locassm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureSweepGPU times one full modeled-GPU figure sweep: the
// v1+v2 roofline kernel re-execution behind Figs 8-10 plus a warp-per-table
// driver run — the warp-interpretation wall-clock that dominates the figure
// suite (ROADMAP item 4). This is the headline series of the BENCH_*.json
// perf trajectory.
func BenchmarkFigureSweepGPU(b *testing.B) {
	s := getState(b)
	dev := simt.NewDevice(simt.V100())
	defer dev.Close()
	d, err := locassm.NewDriver(dev, locassm.GPUConfig{
		Config:       s.arctic.Config.Locassm,
		WarpPerTable: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.RunRoofline(s.arcticRes.LAWorkload, s.arctic.Config.Locassm, 2*s.f2); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Run(s.arcticRes.LAWorkload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriverStaging times the GPU driver end to end on the
// arcticsynth workload in both modes: "sequential" is the seed's
// one-batch-at-a-time schedule, "pipelined" the staged pack → launch →
// unpack pipeline with both sides in flight (identical results and modeled
// times by construction; the difference is host wall time).
func BenchmarkDriverStaging(b *testing.B) {
	s := getState(b)
	for _, bc := range []struct {
		name string
		mode locassm.DriverMode
	}{{"sequential", locassm.ModeSequential}, {"pipelined", locassm.ModePipelined}} {
		b.Run(bc.name, func(b *testing.B) {
			dev := simt.NewDevice(simt.V100())
			cfg := locassm.GPUConfig{
				Config:       s.arctic.Config.Locassm,
				WarpPerTable: true,
				Mode:         bc.mode,
			}
			d, err := locassm.NewDriver(dev, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Run(s.arcticRes.LAWorkload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
