// Command figures regenerates every table and figure of the paper's
// evaluation section (DESIGN.md §4 maps each to its implementation):
//
//	Fig 2   64-node WA stage breakdown, CPU vs GPU local assembly
//	Fig 3   contig distribution across the §3.1 bins per k
//	Fig 8/9 instruction rooflines of the v1 and v2 kernels
//	Fig 10  grouped warp-instruction breakdown, v1 vs v2
//	Fig 12  2-node arcticsynth breakdown
//	Fig 13  local-assembly strong scaling on Summit
//	Fig 14  whole-pipeline strong scaling on Summit
//
// Usage:
//
//	figures [-fig all|2|3|8|9|10|12|13|14] [-quick]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mhm2sim/internal/figures"
	"mhm2sim/internal/pipeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	figFlag := flag.String("fig", "all", "which figure to regenerate")
	quick := flag.Bool("quick", false, "use reduced presets (faster, same structure)")
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*figFlag, ",") {
		want[strings.TrimSpace(f)] = true
	}
	has := func(ids ...string) bool {
		if want["all"] {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	get := func(name string) figures.Setup {
		s, err := figures.StandardSetup(name)
		if *quick {
			s, err = figures.QuickSetup(name)
		}
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	// Figure 3 and the roofline figures use the arcticsynth dataset; the
	// cluster figures use the WA dataset. Pipeline runs are shared.
	var arcticRes *pipeline.Result
	var arctic figures.Setup
	needArctic := has("3", "8", "9", "10", "12")
	if needArctic {
		arctic = get("arcticsynth")
		if !*quick {
			// Fig 3 sweeps the full k ladder.
			arctic.Config.Rounds = []int{21, 33, 55, 77, 99}
		}
		fmt.Println("== running arcticsynth pipeline ==")
		var err error
		arcticRes, err = arctic.Run(false)
		if err != nil {
			log.Fatal(err)
		}
	}

	if has("3") {
		fmt.Println(figures.Fig3(arcticRes.Bins))
	}

	if has("8", "9", "10") {
		m, _, err := figures.Model(arcticRes, arctic.Config.Locassm)
		if err != nil {
			log.Fatal(err)
		}
		f2, err := m.FitRatio(4.3)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := figures.RunRoofline(arcticRes.LAWorkload, arctic.Config.Locassm, 2*f2)
		if err != nil {
			log.Fatal(err)
		}
		if has("8", "9") {
			fmt.Println(figures.Fig8Fig9(rf))
		}
		if has("10") {
			fmt.Println(figures.Fig10(rf))
		}
	}

	if has("2", "12", "13", "14") {
		wa := get("WA")
		fmt.Println("== running WA pipeline ==")
		waRes, err := wa.Run(false)
		if err != nil {
			log.Fatal(err)
		}
		m, f64, err := figures.Model(waRes, wa.Config.Locassm)
		if err != nil {
			log.Fatal(err)
		}
		if has("2") {
			fmt.Println(figures.Fig2(m, f64))
		}
		if has("12") {
			timings := waRes.Timings
			if arcticRes != nil {
				timings = arcticRes.Timings
			}
			out, err := figures.Fig12(m, timings)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(out)
		}
		if has("13") {
			fmt.Println(figures.Fig13(m, f64))
		}
		if has("14") {
			fmt.Println(figures.Fig14(m, f64))
		}
	}
}
