// Command locassm runs the local-assembly module standalone, the way the
// paper evaluated its kernels on Cori (§4.1): it builds a workload (contigs
// plus candidate reads) by running the upstream pipeline on a synthetic
// preset, then executes local assembly with the CPU reference and both GPU
// kernel versions, verifying bit-identical extensions and reporting the
// modeled times.
//
// Usage:
//
//	locassm -preset arcticsynth [-quick]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"mhm2sim/internal/figures"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/simt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("locassm: ")

	presetName := flag.String("preset", "arcticsynth", "dataset preset")
	quick := flag.Bool("quick", false, "use the reduced preset")
	loadPath := flag.String("load", "", "load a workload dump (mhm2sim -dump-la) instead of running the pipeline")
	flag.Parse()

	setup, err := figures.StandardSetup(*presetName)
	if *quick {
		setup, err = figures.QuickSetup(*presetName)
	}
	if err != nil {
		log.Fatal(err)
	}

	var work []*locassm.CtgWithReads
	if *loadPath != "" {
		work, err = locassm.LoadWorkloadFile(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded workload dump %s\n", *loadPath)
	} else {
		fmt.Println("building workload (running upstream pipeline)...")
		res, err := setup.Run(false)
		if err != nil {
			log.Fatal(err)
		}
		work = res.LAWorkload
	}
	nReads := 0
	for _, c := range work {
		nReads += c.NumReads()
	}
	bins := locassm.MakeBins(work, 0)
	z, s, l := bins.Fractions()
	fmt.Printf("workload: %d contigs, %d candidate reads; bins %.1f%%/%.1f%%/%.1f%%\n",
		len(work), nReads, 100*z, 100*s, 100*l)

	cfg := setup.Config.Locassm
	cpu, err := locassm.RunCPU(work, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCPU reference: %d table builds, %d k-mers inserted, %d lookups, %d walk steps\n",
		cpu.Counts.TableBuilds, cpu.Counts.KmersInserted, cpu.Counts.Lookups, cpu.Counts.WalkSteps)

	for _, v2 := range []bool{false, true} {
		name := "GPU v1 (thread per table)"
		if v2 {
			name = "GPU v2 (warp per table)"
		}
		dev := simt.NewDevice(simt.V100())
		drv, err := locassm.NewDriver(dev, locassm.GPUConfig{Config: cfg, WarpPerTable: v2})
		if err != nil {
			log.Fatal(err)
		}
		gres, err := drv.Run(work)
		if err != nil {
			log.Fatal(err)
		}
		mismatches := 0
		for i := range work {
			if !bytes.Equal(cpu.Results[i].LeftExt, gres.Results[i].LeftExt) ||
				!bytes.Equal(cpu.Results[i].RightExt, gres.Results[i].RightExt) {
				mismatches++
			}
		}
		var instrs uint64
		for _, k := range gres.Kernels {
			instrs += k.TotalWarpInstrs()
		}
		fmt.Printf("\n%s:\n", name)
		fmt.Printf("  model kernel time %v + transfers %v (%d launches, %d batches)\n",
			gres.KernelTime.Round(1e3), gres.TransferTime.Round(1e3), len(gres.Kernels), gres.Batches)
		fmt.Printf("  warp instructions %d; extensions identical to CPU: %v (%d mismatches)\n",
			instrs, mismatches == 0, mismatches)
		if mismatches > 0 {
			log.Fatal("GPU results diverge from the CPU reference")
		}
	}

	var grown, added int
	for i, c := range work {
		if n := len(cpu.Results[i].LeftExt) + len(cpu.Results[i].RightExt); n > 0 {
			grown++
			added += n
		}
		_ = c
	}
	fmt.Printf("\nextensions: %d of %d contigs grew, %d bases added\n", grown, len(work), added)
}
