package main

import (
	"encoding/json"
	"os"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/pipeline"
)

// jsonReport is the machine-readable run summary written by -json. All
// durations are nanoseconds.
type jsonReport struct {
	StagesNS map[string]int64 `json:"stages_ns"`
	TotalNS  int64            `json:"total_ns"`
	Assembly assemblyStats    `json:"assembly"`
	Bins     []jsonBins       `json:"bins"`
	GPU      *jsonGPU         `json:"gpu,omitempty"`
	Dist     *jsonDist        `json:"dist,omitempty"`
}

type jsonBins struct {
	K     int `json:"k"`
	Zero  int `json:"bin1_zero"`
	Small int `json:"bin2_small"`
	Large int `json:"bin3_large"`
}

type jsonGPU struct {
	KernelTimeNS   int64 `json:"kernel_time_ns"`
	TransferTimeNS int64 `json:"transfer_time_ns"`
	Kernels        int   `json:"kernels"`
}

// jsonDist is the per-rank comm/compute breakdown of a -ranks run.
type jsonDist struct {
	Ranks         int           `json:"ranks"`
	VirtualShards int           `json:"virtual_shards"`
	Rounds        int           `json:"rounds"`
	WallNS        int64         `json:"wall_ns"`
	CommTimeNS    int64         `json:"comm_time_ns"`
	CommBytes     int64         `json:"comm_bytes"`
	CommMsgs      int64         `json:"comm_msgs"`
	Efficiency    float64       `json:"efficiency"`
	Faults        string        `json:"faults,omitempty"`
	Recovery      *jsonRecovery `json:"recovery,omitempty"`
	PerRank       []jsonRank    `json:"per_rank"`
}

// jsonRecovery reports the fault-recovery counters of a -faults run.
type jsonRecovery struct {
	ExchangeRetries int   `json:"exchange_retries"`
	RetryTimeNS     int64 `json:"retry_time_ns"`
	Evictions       int   `json:"evictions"`
	RecoveredBytes  int64 `json:"recovered_bytes"`
	DeviceFallbacks int   `json:"device_fallbacks"`
	BatchResplits   int   `json:"batch_resplits"`
	Stragglers      int   `json:"stragglers"`
}

type jsonRank struct {
	Rank      int   `json:"rank"`
	Alive     bool  `json:"alive"`
	BusyNS    int64 `json:"busy_ns"`
	CommNS    int64 `json:"comm_ns"`
	IdleNS    int64 `json:"idle_ns"`
	BytesSent int64 `json:"bytes_sent"`
	BytesRecv int64 `json:"bytes_recv"`
	Msgs      int64 `json:"msgs"`
	PCIeH2D   int64 `json:"pcie_h2d_bytes"`
	PCIeD2H   int64 `json:"pcie_d2h_bytes"`
	Kernels   int   `json:"kernels"`
	Contigs   int   `json:"contigs"`
}

// buildJSONReport assembles the report; rep may be nil (single-process run).
func buildJSONReport(res *pipeline.Result, rep *dist.Report) *jsonReport {
	jr := &jsonReport{
		StagesNS: make(map[string]int64, int(pipeline.NumStages)),
		TotalNS:  int64(res.Timings.Total()),
		Assembly: computeAssemblyStats(res),
	}
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		jr.StagesNS[s.String()] = int64(res.Timings.Wall[s])
	}
	for _, b := range res.Bins {
		jr.Bins = append(jr.Bins, jsonBins{K: b.K, Zero: b.Zero, Small: b.Small, Large: b.Large})
	}
	if len(res.Work.GPUKernels) > 0 {
		jr.GPU = &jsonGPU{
			KernelTimeNS:   int64(res.Work.GPUKernelTime),
			TransferTimeNS: int64(res.Work.GPUTransferTime),
			Kernels:        len(res.Work.GPUKernels),
		}
	}
	if rep != nil {
		jd := &jsonDist{
			Ranks:         rep.Ranks,
			VirtualShards: rep.VirtualShards,
			Rounds:        rep.Rounds,
			WallNS:        int64(rep.Wall),
			CommTimeNS:    int64(rep.CommTime),
			CommBytes:     res.Work.CommBytes,
			CommMsgs:      res.Work.CommMsgs,
			Efficiency:    rep.Efficiency(),
		}
		if rep.Recovery.Any() {
			jd.Faults = rep.Faults
			jd.Recovery = &jsonRecovery{
				ExchangeRetries: rep.Recovery.ExchangeRetries,
				RetryTimeNS:     int64(rep.Recovery.RetryTime),
				Evictions:       rep.Recovery.Evictions,
				RecoveredBytes:  rep.Recovery.RecoveredBytes,
				DeviceFallbacks: rep.Recovery.DeviceFallbacks,
				BatchResplits:   rep.Recovery.BatchResplits,
				Stragglers:      rep.Recovery.Stragglers,
			}
		}
		for _, rs := range rep.PerRank {
			jd.PerRank = append(jd.PerRank, jsonRank{
				Rank:      rs.Rank,
				Alive:     rs.Alive,
				BusyNS:    int64(rs.Busy),
				CommNS:    int64(rs.Comm),
				IdleNS:    int64(rs.Idle),
				BytesSent: rs.BytesSent,
				BytesRecv: rs.BytesRecv,
				Msgs:      rs.Msgs,
				PCIeH2D:   rs.PCIeH2D,
				PCIeD2H:   rs.PCIeD2H,
				Kernels:   rs.Kernels,
				Contigs:   rs.Contigs,
			})
		}
		jr.Dist = jd
	}
	return jr
}

// writeJSONReport writes the report to path as indented JSON.
func writeJSONReport(path string, res *pipeline.Result, rep *dist.Report) error {
	b, err := json.MarshalIndent(buildJSONReport(res, rep), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
