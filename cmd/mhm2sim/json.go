package main

import (
	"mhm2sim/internal/dist"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/report"
)

// writeJSONReport writes the machine-readable run summary for -json. The
// schema lives in internal/report and is shared verbatim with the daemon's
// result endpoint (mhm2d), so the two outputs cannot drift.
func writeJSONReport(path string, res *pipeline.Result, rep *dist.Report) error {
	return report.Build(res, rep).WriteFile(path)
}
