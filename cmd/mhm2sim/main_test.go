package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/faults"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/report"
	"mhm2sim/internal/synth"
)

func TestParseRounds(t *testing.T) {
	good := map[string][]int{
		"21":          {21},
		"21,33,55":    {21, 33, 55},
		" 21 , 33 ":   {21, 33},
		"21,33,55,77": {21, 33, 55, 77},
	}
	for in, want := range good {
		got, err := parseRounds(in)
		if err != nil {
			t.Errorf("parseRounds(%q): %v", in, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parseRounds(%q) = %v, want %v", in, got, want)
		}
	}
	for _, in := range []string{"", ",", "21,", ",33", "abc", "21,abc", "21;33", "2 1"} {
		if out, err := parseRounds(in); err == nil {
			t.Errorf("parseRounds(%q) accepted: %v", in, out)
		}
	}
}

func TestParseFlags(t *testing.T) {
	var stderr bytes.Buffer
	opts, err := parseFlags([]string{"-gpu", "-ranks", "4", "-rounds", "21,33", "-json", "out.json"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !opts.gpu || opts.ranks != 4 || opts.rounds != "21,33" || opts.jsonPath != "out.json" {
		t.Errorf("parsed options wrong: %+v", opts)
	}
	if opts.preset != "arcticsynth" || opts.ranks < 1 {
		t.Errorf("defaults wrong: %+v", opts)
	}

	opts, err = parseFlags([]string{"-cpuprofile", "cpu.pprof", "-memprofile", "mem.pprof"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.cpuProfile != "cpu.pprof" || opts.memProfile != "mem.pprof" {
		t.Errorf("profile flags wrong: %+v", opts)
	}

	if _, err := parseFlags([]string{"-ranks", "0"}, &stderr); err == nil {
		t.Error("-ranks 0 accepted")
	}
	if _, err := parseFlags([]string{"-ranks", "x"}, &stderr); err == nil {
		t.Error("-ranks x accepted")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}, &stderr); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseFlagsFaults(t *testing.T) {
	var stderr bytes.Buffer
	opts, err := parseFlags([]string{"-ranks", "8", "-faults", "rank-crash=1,oom=2", "-fault-seed", "7"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.faultSpec != "rank-crash=1,oom=2" || opts.faultSeed != 7 {
		t.Errorf("fault flags wrong: %+v", opts)
	}
	if opts, err := parseFlags([]string{"-ranks", "4"}, &stderr); err != nil || opts.faultSeed != 42 {
		t.Errorf("default fault seed: %v, %+v", err, opts)
	}
	// Faults target the distributed runtime, so a single-rank run rejects them.
	if _, err := parseFlags([]string{"-faults", "drop=1"}, &stderr); err == nil {
		t.Error("-faults without -ranks accepted")
	}
	// Malformed specs are rejected at parse time, not mid-run.
	if _, err := parseFlags([]string{"-ranks", "4", "-faults", "explode=1"}, &stderr); err == nil {
		t.Error("unknown fault kind accepted")
	}
	if _, err := parseFlags([]string{"-ranks", "4", "-faults", "drop"}, &stderr); err == nil {
		t.Error("spec without count accepted")
	}
}

func TestParseFlagsShard(t *testing.T) {
	var stderr bytes.Buffer
	opts, err := parseFlags([]string{"-ranks", "8", "-shard", "component"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.shard != dist.ShardComponent {
		t.Errorf("shard flag wrong: %+v", opts)
	}
	if opts, err := parseFlags([]string{"-ranks", "4"}, &stderr); err != nil || opts.shard != dist.ShardHash {
		t.Errorf("default shard policy: %v, %+v", err, opts)
	}
	// Component sharding targets the distributed runtime.
	if _, err := parseFlags([]string{"-shard", "component"}, &stderr); err == nil {
		t.Error("-shard component without the dist engine accepted")
	}
	stderr.Reset()
	if _, err := parseFlags([]string{"-ranks", "4", "-shard", "zigzag"}, &stderr); err == nil {
		t.Error("unknown shard policy accepted")
	}
	// The exit-2 path must diagnose, not fail silently.
	if !strings.Contains(stderr.String(), `unknown -shard "zigzag"`) {
		t.Errorf("rejection printed nothing useful: %q", stderr.String())
	}
}

// TestRunErrorLine pins the exhausted-retries exit contract: a distinct
// nonzero status and one structured, greppable line — not a stack trace.
func TestParseFlagsMemBudget(t *testing.T) {
	var stderr bytes.Buffer
	opts, err := parseFlags([]string{"-mem-budget", "8388608"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if opts.memBudget != 8<<20 {
		t.Errorf("mem-budget flag wrong: %+v", opts)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MemBudget != 8<<20 {
		t.Errorf("budget not threaded into pipeline config: %d", cfg.MemBudget)
	}
	if opts, err := parseFlags(nil, &stderr); err != nil || opts.memBudget != 0 {
		t.Errorf("default mem-budget: %v, %+v", err, opts)
	}
	// Bad budgets fail at parse time with a diagnostic, not mid-run.
	stderr.Reset()
	if _, err := parseFlags([]string{"-mem-budget", "-5"}, &stderr); err == nil {
		t.Error("negative -mem-budget accepted")
	}
	if !strings.Contains(stderr.String(), "negative") {
		t.Errorf("rejection printed nothing useful: %q", stderr.String())
	}
	stderr.Reset()
	if _, err := parseFlags([]string{"-mem-budget", "1024"}, &stderr); err == nil {
		t.Error("sub-minimum -mem-budget accepted")
	}
	if !strings.Contains(stderr.String(), "minimum") {
		t.Errorf("rejection printed nothing useful: %q", stderr.String())
	}
}

func TestRunErrorLine(t *testing.T) {
	wrapped := fmt.Errorf("dist: exchange 3 (read exchange k=21) still failing after 3 of 5 injected failures: %w",
		dist.ErrUnrecoverable)
	line, code := runErrorLine(wrapped)
	if code != exitFault {
		t.Errorf("unrecoverable fault exits %d, want %d", code, exitFault)
	}
	if !strings.HasPrefix(line, "unrecoverable-fault:") {
		t.Errorf("line not structured: %q", line)
	}
	if !strings.Contains(line, "read exchange k=21") {
		t.Errorf("line lost the failing stage: %q", line)
	}
	if strings.Contains(line, "goroutine") || strings.Contains(line, "\n") {
		t.Errorf("line looks like a stack trace: %q", line)
	}

	line, code = runErrorLine(errors.New("disk full"))
	if code != 1 || line != "disk full" {
		t.Errorf("generic error classified as (%q, %d)", line, code)
	}
	if code == exitFault {
		t.Error("generic errors must not reuse the fault exit status")
	}
}

func TestBuildConfigRejectsMalformedRounds(t *testing.T) {
	for _, rounds := range []string{"abc", "21,,33", "33,21", ""} {
		opts := &options{rounds: rounds, ranks: 1}
		if _, err := buildConfig(opts); err == nil {
			t.Errorf("rounds %q accepted", rounds)
		}
	}
	opts := &options{rounds: "21,33", ranks: 1, gpu: true}
	cfg, err := buildConfig(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine.Name != locassm.EngineGPU || !reflect.DeepEqual(cfg.Rounds, []int{21, 33}) {
		t.Errorf("config wrong: Engine=%q Rounds=%v", cfg.Engine.Name, cfg.Rounds)
	}
}

func TestResolveEngine(t *testing.T) {
	cases := []struct {
		opts options
		want string
		err  bool
	}{
		{options{engine: "auto", ranks: 1}, locassm.EngineCPU, false},
		{options{engine: "", ranks: 1, gpu: true}, locassm.EngineGPU, false},
		{options{engine: "auto", ranks: 4}, locassm.EngineDist, false},
		{options{engine: "cpu", ranks: 1}, locassm.EngineCPU, false},
		{options{engine: "gpu", ranks: 1}, locassm.EngineGPU, false},
		{options{engine: "multigpu", ranks: 1}, locassm.EngineMultiGPU, false},
		{options{engine: "dist", ranks: 4}, locassm.EngineDist, false},
		{options{engine: "dist", ranks: 1}, "", true},
		{options{engine: "gpu", ranks: 2}, "", true},
		{options{engine: "warp9", ranks: 1}, "", true},
	}
	for _, c := range cases {
		got, err := resolveEngine(&c.opts)
		if c.err {
			if err == nil {
				t.Errorf("resolveEngine(%+v): expected error, got %q", c.opts, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("resolveEngine(%+v): %v", c.opts, err)
		} else if got != c.want {
			t.Errorf("resolveEngine(%+v) = %q, want %q", c.opts, got, c.want)
		}
	}
}

// TestJSONReportRoundTrip runs a tiny distributed assembly and checks the
// JSON report carries the per-rank comm/compute breakdown.
func TestJSONReportRoundTrip(t *testing.T) {
	p := synth.ArcticSynthPreset()
	p.Com.NumGenomes = 2
	p.Com.MinGenomeLen, p.Com.MaxGenomeLen = 5_000, 7_000
	p.Com.SharedFrac = 0
	p.Reads.Depth = 12
	_, pairs, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dist.DefaultConfig(2)
	dcfg.Pipeline = pipeline.DefaultConfig()
	dcfg.Pipeline.Rounds = []int{21}
	res, rep, err := dist.Run(pairs, dcfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.json")
	if err := writeJSONReport(path, res, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var jr report.Report
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if jr.Schema != report.SchemaVersion {
		t.Errorf("report schema %q, want %q", jr.Schema, report.SchemaVersion)
	}
	if jr.Assembly.Contigs == 0 || jr.TotalNS <= 0 {
		t.Errorf("assembly summary empty: %+v", jr.Assembly)
	}
	if jr.StagesNS["communication"] <= 0 {
		t.Error("communication stage time missing from JSON")
	}
	if jr.GPU == nil || jr.GPU.Kernels == 0 {
		t.Error("GPU summary missing from distributed run JSON")
	}
	if jr.Dist == nil {
		t.Fatal("dist section missing")
	}
	if jr.Dist.Ranks != 2 || jr.Dist.CommTimeNS <= 0 || jr.Dist.CommBytes <= 0 {
		t.Errorf("dist section wrong: %+v", jr.Dist)
	}
	if len(jr.Dist.PerRank) != 2 {
		t.Fatalf("per-rank breakdown has %d entries", len(jr.Dist.PerRank))
	}
	var busy int64
	for _, r := range jr.Dist.PerRank {
		busy += r.BusyNS
		if !r.Alive {
			t.Errorf("rank %d dead in a fault-free run", r.Rank)
		}
	}
	if busy <= 0 {
		t.Error("no busy time in per-rank breakdown")
	}
	if jr.Dist.Recovery != nil {
		t.Error("recovery section present in a fault-free run")
	}
}

// TestJSONReportRecoverySection: a faulted run surfaces its recovery
// counters and schedule in the JSON report.
func TestJSONReportRecoverySection(t *testing.T) {
	p := synth.ArcticSynthPreset()
	p.Com.NumGenomes = 2
	p.Com.MinGenomeLen, p.Com.MaxGenomeLen = 5_000, 7_000
	p.Com.SharedFrac = 0
	p.Reads.Depth = 12
	_, pairs, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dist.DefaultConfig(2)
	dcfg.Pipeline = pipeline.DefaultConfig()
	dcfg.Pipeline.Rounds = []int{21}
	plan, err := faults.NewPlan("drop=1", 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dcfg.Faults = plan
	res, rep, err := dist.Run(pairs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	jr := report.Build(res, rep)
	if jr.Dist == nil || jr.Dist.Recovery == nil {
		t.Fatal("recovery section missing from faulted run JSON")
	}
	if jr.Dist.Recovery.ExchangeRetries == 0 || jr.Dist.Recovery.RetryTimeNS <= 0 {
		t.Errorf("retry counters empty: %+v", jr.Dist.Recovery)
	}
	if jr.Dist.Faults == "" || jr.Dist.Faults == "no faults" {
		t.Errorf("fault schedule missing from JSON: %q", jr.Dist.Faults)
	}
}
