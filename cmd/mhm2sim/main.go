// Command mhm2sim runs the full MetaHipMer2-like pipeline (Fig 1) on a
// synthetic dataset or a FASTQ file and prints the Fig 2-style per-stage
// breakdown, assembly statistics, and — with -gpu — the GPU local-assembly
// kernel summary.
//
// Usage:
//
//	mhm2sim -preset arcticsynth [-gpu] [-rounds 21,33,55] [-out asm.fasta]
//	mhm2sim -reads reads.fastq [-gpu]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/histo"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/preprocess"
	"mhm2sim/internal/quality"
	"mhm2sim/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mhm2sim: ")

	presetName := flag.String("preset", "arcticsynth", "dataset preset (ignored when -reads is set)")
	readsPath := flag.String("reads", "", "FASTQ file of paired reads (fwd,rev interleaved)")
	useGPU := flag.Bool("gpu", false, "use the GPU local-assembly module (simulated V100)")
	useGPUAln := flag.Bool("gpualn", false, "run the alignment SW kernel on the device (ADEPT role)")
	roundsFlag := flag.String("rounds", "21,33,55", "comma-separated contigging k values")
	out := flag.String("out", "", "write contigs+scaffolds FASTA here")
	workers := flag.Int("workers", 0, "CPU worker goroutines (0 = GOMAXPROCS)")
	evalQuality := flag.Bool("quality", false, "evaluate the assembly against the preset's truth genomes")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory (resume completed rounds)")
	doPreprocess := flag.Bool("preprocess", false, "adapter/quality-trim and filter reads first")
	dumpLA := flag.String("dump-la", "", "dump the final round's local-assembly workload here (for cmd/locassm)")
	estInsert := flag.Bool("estimate-insert", true, "infer the library insert size from proper pairs")
	flag.Parse()

	cfg := pipeline.DefaultConfig()
	cfg.UseGPU = *useGPU
	cfg.UseGPUAln = *useGPUAln
	cfg.Workers = *workers
	cfg.CheckpointDir = *checkpoint
	cfg.EstimateInsert = *estInsert
	if *doPreprocess {
		pp := preprocess.DefaultConfig()
		cfg.Preprocess = &pp
	}
	cfg.Rounds = nil
	for _, f := range strings.Split(*roundsFlag, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -rounds: %v", err)
		}
		cfg.Rounds = append(cfg.Rounds, k)
	}

	pairs, genomes, err := loadPairs(*readsPath, *presetName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d read pairs\n", len(pairs))

	res, err := pipeline.Run(pairs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	printBreakdown(res)
	printAssemblyStats(res)
	if *doPreprocess {
		pp := res.Work.Preprocess
		fmt.Printf("\npreprocessing: %d/%d pairs kept, %d adapter-trimmed, %d quality-trimmed, %d bases removed\n",
			pp.PairsOut, pp.PairsIn, pp.AdapterTrimmed, pp.QualityTrimmed, pp.BasesRemoved)
	}
	if res.Work.EstimatedInsert > 0 {
		fmt.Printf("estimated library insert size: %d bp\n", res.Work.EstimatedInsert)
	}
	if *useGPU {
		printGPUStats(res)
	}
	if *evalQuality {
		if genomes == nil {
			log.Fatal("-quality requires a preset (truth genomes unknown for external FASTQ)")
		}
		seqs := make([][]byte, len(res.Contigs))
		for i := range res.Contigs {
			seqs[i] = res.Contigs[i].Seq
		}
		rep, err := quality.Evaluate(seqs, genomes, quality.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquality vs truth genomes:\n%s", rep)
	}

	if *dumpLA != "" {
		if err := locassm.DumpWorkloadFile(*dumpLA, res.LAWorkload); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dumped local-assembly workload (%d contigs) to %s\n", len(res.LAWorkload), *dumpLA)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pipeline.WriteFASTAOutputs(f, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote assembly to %s\n", *out)
	}
}

func loadPairs(readsPath, presetName string) ([]dna.PairedRead, [][]byte, error) {
	if readsPath == "" {
		preset, err := synth.PresetByName(presetName)
		if err != nil {
			return nil, nil, err
		}
		com, pairs, err := preset.Build()
		if err != nil {
			return nil, nil, err
		}
		genomes := make([][]byte, len(com.Genomes))
		for i := range com.Genomes {
			genomes[i] = com.Genomes[i].Seq
		}
		return pairs, genomes, nil
	}
	f, err := os.Open(readsPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	reads, err := dna.ReadFASTQ(f)
	if err != nil {
		return nil, nil, err
	}
	if len(reads)%2 != 0 {
		return nil, nil, fmt.Errorf("FASTQ holds %d reads; expected interleaved pairs", len(reads))
	}
	pairs := make([]dna.PairedRead, len(reads)/2)
	for i := range pairs {
		pairs[i] = dna.PairedRead{Fwd: reads[2*i], Rev: reads[2*i+1]}
	}
	return pairs, nil, nil
}

func printBreakdown(res *pipeline.Result) {
	total := res.Timings.Total()
	fmt.Printf("\nstage breakdown (measured wall time, cf. Fig 2):\n")
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		d := res.Timings.Wall[s]
		fmt.Printf("  %-18s %12v %6.1f%%\n", s, d.Round(1e6), 100*float64(d)/float64(total))
	}
	fmt.Printf("  %-18s %12v\n", "TOTAL", total.Round(1e6))

	fmt.Printf("\nlocal-assembly bins per round (cf. Fig 3):\n")
	for _, b := range res.Bins {
		t := float64(b.Zero + b.Small + b.Large)
		fmt.Printf("  k=%-3d bin1=%5d (%4.1f%%)  bin2=%5d (%4.1f%%)  bin3=%5d (%4.1f%%)\n",
			b.K, b.Zero, 100*float64(b.Zero)/t, b.Small, 100*float64(b.Small)/t,
			b.Large, 100*float64(b.Large)/t)
	}
}

func printAssemblyStats(res *pipeline.Result) {
	lens := make([]int, 0, len(res.Contigs))
	var total int
	for _, c := range res.Contigs {
		lens = append(lens, len(c.Seq))
		total += len(c.Seq)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	n50 := 0
	run := 0
	for _, l := range lens {
		run += l
		if run >= total/2 {
			n50 = l
			break
		}
	}
	longest := 0
	if len(lens) > 0 {
		longest = lens[0]
	}
	fmt.Printf("\nassembly: %d contigs, %d bases, N50 %d, longest %d; %d scaffolds\n",
		len(res.Contigs), total, n50, longest, len(res.Scaffolds))
	fmt.Print(histo.FromValues("contig length distribution:", lens).Render(40))
}

func printGPUStats(res *pipeline.Result) {
	fmt.Printf("\nGPU local assembly (simulated V100): model kernel time %v, transfers %v\n",
		res.Work.GPUKernelTime.Round(1e3), res.Work.GPUTransferTime.Round(1e3))
	for _, k := range res.Work.GPUKernels {
		fmt.Printf("  %-26s warps=%6d  instrs=%10d  time=%10v  bound=%s\n",
			k.Kernel, k.Warps, k.TotalWarpInstrs(), k.Time.Round(1e3), k.Bound)
	}
}
