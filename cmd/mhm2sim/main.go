// Command mhm2sim runs the full MetaHipMer2-like pipeline (Fig 1) on a
// synthetic dataset or a FASTQ file and prints the Fig 2-style per-stage
// breakdown, assembly statistics, and — when a device engine ran — the GPU
// local-assembly kernel summary.
//
// -engine selects the local-assembly engine from the unified registry:
//
//	auto      resolve from the other flags (-ranks > 1 → dist, -gpu → gpu,
//	          otherwise cpu) — the default
//	cpu       host flat-table engine
//	gpu       single simulated V100 batch driver
//	multigpu  one node's GPUs (see -gpus), workload sharded across devices
//	dist      multi-rank runtime over a modeled comm fabric (requires
//	          -ranks > 1); prints a Fig 9-style strong-scaling breakdown
//
// Usage:
//
//	mhm2sim -preset arcticsynth [-engine cpu|gpu|multigpu] [-rounds 21,33,55] [-out asm.fasta]
//	mhm2sim -reads reads.fastq -engine gpu
//	mhm2sim -engine multigpu -gpus 6
//	mhm2sim -engine dist -ranks 4 -gpu -json run.json
//	mhm2sim -preset soil -ranks 8 -shard component
//	mhm2sim -ranks 8 -faults rank-crash=1,oom=2 -fault-seed 42
//	mhm2sim -ranks 4 -elastic join@r1:2,leave@r2:1
//
// (-gpu is the legacy spelling of -engine=gpu; -ranks N > 1 without an
// explicit -engine keeps selecting the distributed runtime.)
//
// -shard selects the dist engine's contig → virtual-shard map: hash (the
// default MetaHipMer-style deal) or component, which runs a per-round
// connected-components pass and co-locates whole de Bruijn components so
// most exchange and allgather traffic stays rank-local (DESIGN.md §14).
// Either policy produces bit-identical contigs and scaffolds.
//
// -faults injects a seeded chaos schedule into the distributed runtime
// (rank crashes, device faults, kernel aborts, fabric drops/corruption/
// delays, stragglers); the run recovers and produces bit-identical output,
// or exits with status 3 and an "unrecoverable-fault:" line if the retry
// budget is exhausted.
//
// -elastic grows and shrinks the rank set mid-run ("join@r1:2,leave@r2:1"):
// joins admit fresh ranks at round boundaries with an epoch-versioned
// re-deal, leaves retire the highest-numbered live rank. Idle ranks steal
// tail batches from the most-loaded rank every round unless -nosteal is
// set. Elastic schedules, like fault schedules, never change an output
// byte (DESIGN.md §16).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/faults"
	"mhm2sim/internal/gpucount"
	"mhm2sim/internal/histo"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/preprocess"
	"mhm2sim/internal/quality"
	"mhm2sim/internal/report"
	"mhm2sim/internal/synth"
)

// options holds the parsed command line.
type options struct {
	preset       string
	reads        string
	engine       string
	gpu          bool
	gpus         int
	gpuAln       bool
	rounds       string
	ranks        int
	shard        string
	faultSpec    string
	faultSeed    int64
	elastic      string
	noSteal      bool
	jsonPath     string
	out          string
	workers      int
	evalQuality  bool
	checkpoint   string
	doPreprocess bool
	dumpLA       string
	estInsert    bool
	memBudget    int64
	cpuProfile   string
	memProfile   string
}

// parseFlags parses args (not including the program name) into options.
// It is split from main so tests can drive it; errors are returned, not
// fatal.
func parseFlags(args []string, stderr io.Writer) (*options, error) {
	opts := &options{}
	fs := flag.NewFlagSet("mhm2sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&opts.preset, "preset", "arcticsynth", "dataset preset (ignored when -reads is set)")
	fs.StringVar(&opts.reads, "reads", "", "FASTQ file of paired reads (fwd,rev interleaved)")
	fs.StringVar(&opts.engine, "engine", "auto", "local-assembly engine: auto|cpu|gpu|multigpu|dist")
	fs.BoolVar(&opts.gpu, "gpu", false, "legacy alias for -engine=gpu (also picks the per-rank GPU path under -engine=dist)")
	fs.IntVar(&opts.gpus, "gpus", locassm.DefaultNodeGPUs, "devices for -engine=multigpu (default: one Summit node's six V100s)")
	fs.BoolVar(&opts.gpuAln, "gpualn", false, "run the alignment SW kernel on the device (ADEPT role)")
	fs.StringVar(&opts.rounds, "rounds", "21,33,55", "comma-separated contigging k values")
	fs.IntVar(&opts.ranks, "ranks", 1, "simulated ranks for -engine=dist (>1 implies dist under -engine=auto)")
	fs.StringVar(&opts.shard, "shard", dist.ShardHash, "contig → shard map for the dist engine: hash|component (component co-locates whole dBG components)")
	fs.StringVar(&opts.faultSpec, "faults", "", "inject a seeded fault schedule, e.g. rank-crash=1,oom=2,drop=1 (requires the dist engine)")
	fs.Int64Var(&opts.faultSeed, "fault-seed", 42, "seed of the injected fault schedule")
	fs.StringVar(&opts.elastic, "elastic", "", "elastic membership schedule, e.g. join@r1:2,leave@r2:1 (requires the dist engine)")
	fs.BoolVar(&opts.noSteal, "nosteal", false, "disable intra-round work stealing in the dist engine")
	fs.StringVar(&opts.jsonPath, "json", "", "write a machine-readable run report to this path")
	fs.StringVar(&opts.out, "out", "", "write contigs+scaffolds FASTA here")
	fs.IntVar(&opts.workers, "workers", 0, "CPU worker goroutines (0 = GOMAXPROCS)")
	fs.BoolVar(&opts.evalQuality, "quality", false, "evaluate the assembly against the preset's truth genomes")
	fs.StringVar(&opts.checkpoint, "checkpoint", "", "checkpoint directory (resume completed rounds)")
	fs.BoolVar(&opts.doPreprocess, "preprocess", false, "adapter/quality-trim and filter reads first")
	fs.StringVar(&opts.dumpLA, "dump-la", "", "dump the final round's local-assembly workload here (for cmd/locassm)")
	fs.BoolVar(&opts.estInsert, "estimate-insert", true, "infer the library insert size from proper pairs")
	fs.Int64Var(&opts.memBudget, "mem-budget", 0, "device-memory byte budget for k-mer counting: 0 = unbounded, otherwise Bloom-prefiltered multi-pass counting under this many bytes")
	fs.StringVar(&opts.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this path")
	fs.StringVar(&opts.memProfile, "memprofile", "", "write a pprof heap profile (after the run) to this path")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := validateOpts(opts); err != nil {
		// fs.Parse prints its own errors; these post-parse checks must
		// print too, or the exit-2 path is silent.
		fmt.Fprintln(stderr, "mhm2sim:", err)
		return nil, err
	}
	return opts, nil
}

// validateOpts holds the cross-flag checks that flag.Parse can't express.
func validateOpts(opts *options) error {
	if opts.ranks < 1 {
		return fmt.Errorf("-ranks must be ≥ 1, got %d", opts.ranks)
	}
	if opts.gpus < 1 {
		return fmt.Errorf("-gpus must be ≥ 1, got %d", opts.gpus)
	}
	if _, err := resolveEngine(opts); err != nil {
		return err
	}
	if opts.faultSpec != "" {
		if eng, _ := resolveEngine(opts); eng != locassm.EngineDist {
			return fmt.Errorf("-faults requires the dist engine (-engine=dist or -ranks > 1)")
		}
		if _, err := faults.ParseSpec(opts.faultSpec); err != nil {
			return err
		}
	}
	if opts.elastic != "" {
		if eng, _ := resolveEngine(opts); eng != locassm.EngineDist {
			return fmt.Errorf("-elastic requires the dist engine (-engine=dist or -ranks > 1)")
		}
		rounds, err := parseRounds(opts.rounds)
		if err != nil {
			return err
		}
		if _, err := faults.ParseElastic(opts.elastic, opts.ranks, len(rounds)); err != nil {
			return err
		}
	}
	if opts.memBudget < 0 {
		return fmt.Errorf("-mem-budget %d is negative (0 disables the budget)", opts.memBudget)
	}
	if opts.memBudget > 0 && opts.memBudget < gpucount.MinMemBudget {
		return fmt.Errorf("-mem-budget %d is below the %d-byte minimum (gpucount.MinMemBudget)",
			opts.memBudget, int64(gpucount.MinMemBudget))
	}
	switch opts.shard {
	case dist.ShardHash:
	case dist.ShardComponent:
		if eng, _ := resolveEngine(opts); eng != locassm.EngineDist {
			return fmt.Errorf("-shard=%s requires the dist engine (-engine=dist or -ranks > 1)", opts.shard)
		}
	default:
		return fmt.Errorf("unknown -shard %q (%s|%s)", opts.shard, dist.ShardHash, dist.ShardComponent)
	}
	return nil
}

// resolveEngine collapses the engine flags into one registered engine
// name — the CLI's half of the EngineSpec resolution. "auto" keeps the
// historical behaviour: -ranks > 1 meant the distributed runtime and -gpu
// the device driver, with the host engine as the default.
func resolveEngine(opts *options) (string, error) {
	switch opts.engine {
	case "", locassm.EngineAuto:
		switch {
		case opts.ranks > 1:
			return locassm.EngineDist, nil
		case opts.gpu:
			return locassm.EngineGPU, nil
		default:
			return locassm.EngineCPU, nil
		}
	case locassm.EngineCPU, locassm.EngineGPU, locassm.EngineMultiGPU:
		if opts.ranks > 1 {
			return "", fmt.Errorf("-engine=%s conflicts with -ranks %d (multi-rank runs use -engine=dist)",
				opts.engine, opts.ranks)
		}
		return opts.engine, nil
	case locassm.EngineDist:
		if opts.ranks < 2 {
			return "", fmt.Errorf("-engine=dist requires -ranks > 1 (got %d)", opts.ranks)
		}
		return locassm.EngineDist, nil
	default:
		return "", fmt.Errorf("unknown -engine %q (auto|cpu|gpu|multigpu|dist)", opts.engine)
	}
}

// exitFault is the exit status of a run killed by an injected fault after
// the recovery budget was exhausted — distinct from 1 (generic failure) and
// 2 (usage errors) so chaos harnesses can tell the outcomes apart.
const exitFault = 3

// exitCanceled is the exit status of a run stopped by SIGINT/SIGTERM
// before completing — checkpoints written so far remain valid for resume.
const exitCanceled = 4

// runErrorLine classifies a run error into one structured stderr line and a
// process exit status. Unrecoverable injected faults get their own status
// and a greppable prefix instead of a stack trace; so do signal-canceled
// runs (the line names the resume mechanism).
func runErrorLine(err error) (string, int) {
	if errors.Is(err, dist.ErrUnrecoverable) {
		return fmt.Sprintf("unrecoverable-fault: %v", err), exitFault
	}
	if errors.Is(err, context.Canceled) {
		return fmt.Sprintf("canceled: %v (completed rounds are checkpointed when -checkpoint is set)", err), exitCanceled
	}
	return err.Error(), 1
}

// parseRounds parses a comma-separated k list ("21,33,55").
func parseRounds(s string) ([]int, error) {
	var rounds []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return nil, fmt.Errorf("bad -rounds %q: empty entry", s)
		}
		k, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad -rounds %q: %v", s, err)
		}
		rounds = append(rounds, k)
	}
	return rounds, nil
}

// buildConfig turns options into a validated pipeline config. The dist
// engine is not set here: main routes multi-rank runs through dist.Run,
// which injects the runtime as the pipeline's engine.
func buildConfig(opts *options) (pipeline.Config, error) {
	cfg := pipeline.DefaultConfig()
	engine, err := resolveEngine(opts)
	if err != nil {
		return pipeline.Config{}, err
	}
	if engine != locassm.EngineDist {
		cfg.Engine.Name = engine
		cfg.Engine.GPUs = opts.gpus
	}
	cfg.UseGPUAln = opts.gpuAln
	cfg.MemBudget = opts.memBudget
	cfg.Workers = opts.workers
	cfg.CheckpointDir = opts.checkpoint
	cfg.EstimateInsert = opts.estInsert
	if opts.doPreprocess {
		pp := preprocess.DefaultConfig()
		cfg.Preprocess = &pp
	}
	rounds, err := parseRounds(opts.rounds)
	if err != nil {
		return cfg, err
	}
	cfg.Rounds = rounds
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mhm2sim: ")

	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		log.Fatal(err)
	}

	pairs, genomes, err := loadPairs(opts.reads, opts.preset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d read pairs\n", len(pairs))

	if opts.cpuProfile != "" {
		f, err := os.Create(opts.cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM cancel the run at the next stage boundary instead of
	// killing it mid-write; with -checkpoint, completed rounds survive and
	// a rerun resumes past them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	engine, err := resolveEngine(opts)
	if err != nil {
		log.Fatal(err)
	}
	var res *pipeline.Result
	var rep *dist.Report
	if engine == locassm.EngineDist {
		dcfg := dist.DefaultConfig(opts.ranks)
		dcfg.Pipeline = cfg
		dcfg.ShardPolicy = opts.shard
		// Without -gpu the ranks assemble on the host flat-table engine,
		// mirroring the single-rank CPU path.
		dcfg.CPUAssembly = !opts.gpu
		dcfg.CPUWorkers = opts.workers
		dcfg.Elastic = opts.elastic
		dcfg.NoSteal = opts.noSteal
		if opts.elastic != "" {
			fmt.Printf("elastic membership schedule: %s\n", opts.elastic)
		}
		if opts.faultSpec != "" {
			plan, perr := faults.NewPlan(opts.faultSpec, opts.faultSeed, opts.ranks, len(cfg.Rounds))
			if perr != nil {
				log.Fatal(perr)
			}
			dcfg.Faults = plan
			fmt.Printf("injecting faults (seed %d): %s\n", opts.faultSeed, plan)
		}
		res, rep, err = dist.RunContext(ctx, pairs, dcfg)
	} else {
		res, err = pipeline.RunContext(ctx, pairs, cfg)
	}
	if err != nil {
		line, code := runErrorLine(err)
		log.Print(line)
		os.Exit(code)
	}

	if opts.memProfile != "" {
		f, err := os.Create(opts.memProfile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote heap profile to %s\n", opts.memProfile)
	}

	printBreakdown(res)
	printAssemblyStats(res)
	if opts.doPreprocess {
		pp := res.Work.Preprocess
		fmt.Printf("\npreprocessing: %d/%d pairs kept, %d adapter-trimmed, %d quality-trimmed, %d bases removed\n",
			pp.PairsOut, pp.PairsIn, pp.AdapterTrimmed, pp.QualityTrimmed, pp.BasesRemoved)
	}
	if res.Work.EstimatedInsert > 0 {
		fmt.Printf("estimated library insert size: %d bp\n", res.Work.EstimatedInsert)
	}
	if len(res.Work.GPUKernels) > 0 {
		printGPUStats(res)
	}
	if kb := res.Work.KmerBudget; kb.Passes > 0 {
		fmt.Printf("\nmemory-bounded counting: %d passes (%d planned) under a %d-byte budget (effective %d); Bloom filtered %d singleton occurrences (FP rate %.4f)\n",
			kb.Passes, kb.PlannedPasses, kb.Configured, kb.Effective,
			kb.FilteredSingletons, kb.FPRate())
		if kb.OOMReplans > 0 || kb.SpillReplans > 0 {
			fmt.Printf("  degradation: %d OOM re-plans, %d spill re-plans, %d extra passes\n",
				kb.OOMReplans, kb.SpillReplans, kb.SpillPasses)
		}
	}
	if rep != nil {
		fmt.Printf("\n%s", rep)
	}
	if opts.evalQuality {
		if genomes == nil {
			log.Fatal("-quality requires a preset (truth genomes unknown for external FASTQ)")
		}
		seqs := make([][]byte, len(res.Contigs))
		for i := range res.Contigs {
			seqs[i] = res.Contigs[i].Seq
		}
		qrep, err := quality.Evaluate(seqs, genomes, quality.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nquality vs truth genomes:\n%s", qrep)
	}

	if opts.jsonPath != "" {
		if err := writeJSONReport(opts.jsonPath, res, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote JSON report to %s\n", opts.jsonPath)
	}

	if opts.dumpLA != "" {
		if err := locassm.DumpWorkloadFile(opts.dumpLA, res.LAWorkload); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dumped local-assembly workload (%d contigs) to %s\n", len(res.LAWorkload), opts.dumpLA)
	}

	if opts.out != "" {
		f, err := os.Create(opts.out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pipeline.WriteFASTAOutputs(f, res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote assembly to %s\n", opts.out)
	}
}

func loadPairs(readsPath, presetName string) ([]dna.PairedRead, [][]byte, error) {
	if readsPath == "" {
		preset, err := synth.PresetByName(presetName)
		if err != nil {
			return nil, nil, err
		}
		com, pairs, err := preset.Build()
		if err != nil {
			return nil, nil, err
		}
		genomes := make([][]byte, len(com.Genomes))
		for i := range com.Genomes {
			genomes[i] = com.Genomes[i].Seq
		}
		return pairs, genomes, nil
	}
	f, err := os.Open(readsPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	pairs, err := dna.ReadInterleavedPairs(f)
	if err != nil {
		return nil, nil, err
	}
	return pairs, nil, nil
}

func printBreakdown(res *pipeline.Result) {
	total := res.Timings.Total()
	fmt.Printf("\nstage breakdown (measured wall time, cf. Fig 2):\n")
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		d := res.Timings.Wall[s]
		fmt.Printf("  %-18s %12v %6.1f%%\n", s, d.Round(1e6), 100*float64(d)/float64(total))
	}
	fmt.Printf("  %-18s %12v\n", "TOTAL", total.Round(1e6))

	fmt.Printf("\nlocal-assembly bins per round (cf. Fig 3):\n")
	for _, b := range res.Bins {
		t := float64(b.Zero + b.Small + b.Large)
		fmt.Printf("  k=%-3d bin1=%5d (%4.1f%%)  bin2=%5d (%4.1f%%)  bin3=%5d (%4.1f%%)\n",
			b.K, b.Zero, 100*float64(b.Zero)/t, b.Small, 100*float64(b.Small)/t,
			b.Large, 100*float64(b.Large)/t)
	}
}

func printAssemblyStats(res *pipeline.Result) {
	st := report.ComputeAssembly(res)
	fmt.Printf("\nassembly: %d contigs, %d bases, N50 %d, longest %d; %d scaffolds\n",
		st.Contigs, st.Bases, st.N50, st.Longest, st.Scaffolds)
	fmt.Print(histo.FromValues("contig length distribution:", st.Lens).Render(40))
}

func printGPUStats(res *pipeline.Result) {
	fmt.Printf("\nGPU local assembly (simulated V100): model kernel time %v, transfers %v\n",
		res.Work.GPUKernelTime.Round(1e3), res.Work.GPUTransferTime.Round(1e3))
	for _, k := range res.Work.GPUKernels {
		fmt.Printf("  %-26s warps=%6d  instrs=%10d  time=%10v  bound=%s\n",
			k.Kernel, k.Warps, k.TotalWarpInstrs(), k.Time.Round(1e3), k.Bound)
	}
}
