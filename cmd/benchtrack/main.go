// Command benchtrack runs the repository's key benchmarks and serializes the
// results to a JSON trajectory file (BENCH_PR10.json at the repo root), so the
// performance of the simulator hot path is tracked across PRs instead of
// living only in commit messages.
//
// It shells out to `go test -bench` per package, parses the standard
// benchmark output lines (name, iterations, ns/op, with -benchmem B/op and
// allocs/op, plus any custom b.ReportMetric units — the dist comm-volume
// benchmarks report remote/local byte counts that way), and writes one
// record per benchmark. With -gate, it exits nonzero if any
// BenchmarkLaunchOverhead series reports a nonzero allocs/op — the
// steady-state launch path must stay allocation-free.
//
// Usage:
//
//	benchtrack [-out BENCH_PR10.json] [-benchtime 1x] [-gate] [-quick]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// suite lists one package's benchmark selection.
type suite struct {
	// Pkg is the package path passed to go test.
	Pkg string
	// Pattern selects benchmarks within the package.
	Pattern string
	// Slow marks suites skipped under -quick (CI smoke mode).
	Slow bool
}

// suites is the tracked benchmark set: the simt interpreter micro-benchmarks
// (coalesce, bulk load/store, launch overhead — the PR 6 fast paths), the
// locassm driver staging path, the host flat-table engine, the dist
// component-pass and comm-volume benchmarks (the PR 8 sharding work), and
// the headline modeled-GPU figure sweep.
var suites = []suite{
	{Pkg: "./internal/simt", Pattern: "BenchmarkCoalesce|BenchmarkLoadGlobalContiguous|BenchmarkStoreGlobalContiguous|BenchmarkLoadGlobalLane0|BenchmarkLoadLocalUniform|BenchmarkLaunchOverhead|BenchmarkLaunchHashProbe"},
	{Pkg: "./internal/locassm", Pattern: "BenchmarkDriverStaging|BenchmarkFlatTableBuild|BenchmarkFlatWalk"},
	{Pkg: "./internal/gpucount", Pattern: "BenchmarkBloomPrefilter|BenchmarkMultiPassCount"},
	{Pkg: "./internal/dist", Pattern: "BenchmarkComponentPass|BenchmarkCommVolume", Slow: true},
	{Pkg: "./internal/dist", Pattern: "BenchmarkStealScheduling|BenchmarkMembershipEpoch|BenchmarkShardDealCached|BenchmarkShardDealRebuild"},
	{Pkg: ".", Pattern: "BenchmarkFigureSweepGPU", Slow: true},
}

// Record is one benchmark measurement. Extra carries custom b.ReportMetric
// series keyed by their unit (e.g. "remote-B/op" from the dist comm-volume
// benchmarks).
type Record struct {
	Name        string             `json:"name"`
	Package     string             `json:"package"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the serialized trajectory: environment header plus measurements.
type File struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchtime  string   `json:"benchtime"`
	UnixTime   int64    `json:"unix_time"`
	Benchmarks []Record `json:"benchmarks"`
}

// benchLine matches the head of one `go test -bench` result line; the
// remaining (value, unit) metric pairs — ns/op, B/op, allocs/op, and any
// custom b.ReportMetric units — are parsed generically from the tail, e.g.
//
//	BenchmarkCoalesce/contiguous4-8  12345678  96.1 ns/op  0 B/op  0 allocs/op
//	BenchmarkCommVolume/hash-8  1  2.1e9 ns/op  12345 remote-B/op  678 local-B/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(pkg, out string) []Record {
	var recs []Record
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		rec := Record{Name: m[1], Package: pkg, Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				rec.NsPerOp = val
			case "B/op":
				rec.BytesPerOp = int64(val)
			case "allocs/op":
				rec.AllocsPerOp = int64(val)
			default:
				if rec.Extra == nil {
					rec.Extra = make(map[string]float64)
				}
				rec.Extra[unit] = val
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

func run(pkg, pattern, benchtime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, "-count", "1", pkg)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	return string(out), err
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output JSON path")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	gate := flag.Bool("gate", false, "fail if LaunchOverhead reports nonzero allocs/op")
	quick := flag.Bool("quick", false, "skip slow suites (the figure sweep)")
	flag.Parse()

	file := File{
		Schema:    "mhm2sim-bench/v1",
		GoVersion: strings.TrimPrefix(strings.Fields(goVersion())[2], "go"),
		GOOS:      goEnv("GOOS"),
		GOARCH:    goEnv("GOARCH"),
		Benchtime: *benchtime,
		UnixTime:  time.Now().Unix(),
	}
	for _, s := range suites {
		if s.Slow && *quick {
			continue
		}
		fmt.Fprintf(os.Stderr, "benchtrack: %s -bench %s\n", s.Pkg, s.Pattern)
		txt, err := run(s.Pkg, s.Pattern, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtrack: %s: %v\n%s", s.Pkg, err, txt)
			os.Exit(1)
		}
		file.Benchmarks = append(file.Benchmarks, parse(s.Pkg, txt)...)
	}

	if *gate {
		bad := false
		for _, r := range file.Benchmarks {
			if strings.HasPrefix(r.Name, "BenchmarkLaunchOverhead") && r.AllocsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "benchtrack: GATE FAILURE: %s allocates %d objects/op; the steady-state launch path must be allocation-free\n",
					r.Name, r.AllocsPerOp)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
	}

	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrack:", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrack:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchtrack: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "go version unknown unknown/unknown"
	}
	return strings.TrimSpace(string(out))
}

func goEnv(key string) string {
	out, err := exec.Command("go", "env", key).Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
