// Command readgen writes a synthetic metagenome community to FASTQ (and
// optionally the underlying genomes to FASTA), standing in for the paper's
// arcticsynth and WA datasets at laptop scale (DESIGN.md §2).
//
// Usage:
//
//	readgen -preset arcticsynth -out reads.fastq [-genomes genomes.fasta]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("readgen: ")

	presetName := flag.String("preset", "arcticsynth", "dataset preset: arcticsynth or WA")
	out := flag.String("out", "reads.fastq", "output FASTQ path")
	genomesOut := flag.String("genomes", "", "optional FASTA path for the hidden genomes")
	seed := flag.Int64("seed", 0, "override the preset's random seed (0 keeps it)")
	depth := flag.Float64("depth", 0, "override mean coverage (0 keeps the preset)")
	flag.Parse()

	preset, err := synth.PresetByName(*presetName)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		preset.Seed = *seed
	}
	if *depth != 0 {
		preset.Reads.Depth = *depth
	}

	com, pairs, err := preset.Build()
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := dna.WriteFASTQ(f, synth.Flatten(pairs)); err != nil {
		log.Fatal(err)
	}

	if *genomesOut != "" {
		gf, err := os.Create(*genomesOut)
		if err != nil {
			log.Fatal(err)
		}
		defer gf.Close()
		names := make([]string, len(com.Genomes))
		seqs := make([][]byte, len(com.Genomes))
		for i, g := range com.Genomes {
			names[i] = fmt.Sprintf("%s abundance=%.3f", g.Name, g.Abundance)
			seqs[i] = g.Seq
		}
		if err := dna.WriteFASTA(gf, names, seqs, 80); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("preset %s: %d genomes, %d total bases, %d read pairs (%d reads) -> %s\n",
		preset.Name, len(com.Genomes), com.TotalBases(), len(pairs), 2*len(pairs), *out)
	fmt.Printf("scale note: %s\n", preset.ScaleNote)
}
