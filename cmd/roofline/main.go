// Command roofline reproduces the paper's instruction-roofline analysis of
// the extension kernels (Figs 8-10): it builds the standalone arcticsynth
// local-assembly workload, runs the v1 (thread-per-table) and v2
// (warp-per-table) kernels on the simulated V100, and prints the roofline
// characterization and the grouped instruction breakdown.
//
// Usage:
//
//	roofline [-preset arcticsynth] [-quick] [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mhm2sim/internal/figures"
	"mhm2sim/internal/simt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("roofline: ")

	presetName := flag.String("preset", "arcticsynth", "dataset preset")
	quick := flag.Bool("quick", false, "use the reduced preset")
	scale := flag.Float64("scale", 0, "workload replication on the device (0 = calibrated full-dataset factor)")
	device := flag.String("device", "v100", "device model: v100 (the paper's) or a100 (what-if)")
	flag.Parse()

	var devCfg simt.DeviceConfig
	switch strings.ToLower(*device) {
	case "v100":
		devCfg = simt.V100()
	case "a100":
		devCfg = simt.A100()
	default:
		log.Fatalf("unknown device %q (v100 or a100)", *device)
	}

	setup, err := figures.StandardSetup(*presetName)
	if *quick {
		setup, err = figures.QuickSetup(*presetName)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("building workload (running upstream pipeline)...")
	res, err := setup.Run(false)
	if err != nil {
		log.Fatal(err)
	}

	sc := *scale
	if sc == 0 {
		// The paper's standalone runs put the whole arcticsynth dump on
		// one V100; our calibrated 2-node share ×2 nodes approximates it.
		m, _, err := figures.Model(res, setup.Config.Locassm)
		if err != nil {
			log.Fatal(err)
		}
		f2, err := m.FitRatio(4.3)
		if err != nil {
			log.Fatal(err)
		}
		sc = 2 * f2
	}
	fmt.Printf("analyzing kernels on %s at device scale factor %.1f\n\n", devCfg.Name, sc)

	rf, err := figures.RunRooflineOn(devCfg, res.LAWorkload, setup.Config.Locassm, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(figures.Fig8Fig9(rf))
	fmt.Println(figures.Fig10(rf))
}
