// Command mhm2d is the assembly-as-a-service daemon: it schedules many
// concurrent assembly jobs (submitted over an HTTP+JSON API) onto a worker
// pool sharing a set of simulated GPUs, with per-job checkpointing so a
// restarted daemon resumes unfinished jobs from their last completed
// round. See internal/service for the scheduler and DESIGN.md §13 for the
// architecture.
//
// Quickstart:
//
//	mhm2d -addr :8080 -data /var/lib/mhm2d &
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"preset":"arcticsynth","genomes":2,"engine":"gpu"}'
//	curl -s localhost:8080/v1/jobs/job-000000
//	curl -s localhost:8080/v1/jobs/job-000000/result
//	curl -s localhost:8080/v1/jobs/job-000000/contigs
//
// Elastic dist jobs ({"engine":"dist","ranks":4,"elastic":"join@r1:2"})
// grow their rank set mid-run: each joining rank draws a device from the
// shared pool without blocking (a pool too contended to grow the job fails
// it rather than deadlocking the round), and every leased device returns
// to the pool when the job finishes. The /metrics endpoint exports the
// accumulated join and work-stealing counters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mhm2sim/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		dataDir     = flag.String("data", "", "persistence root (specs, checkpoints, results); required")
		workers     = flag.Int("workers", 4, "concurrently executing jobs")
		queueDepth  = flag.Int("queue", 64, "bounded queue depth; submissions beyond it get 429")
		devices     = flag.Int("devices", 4, "shared simulated-GPU pool size")
		tenantQuota = flag.Int("tenant-quota", 0, "max active (queued+running) jobs per tenant; 0 = unlimited")
		retries     = flag.Int("retries", 1, "job-level retries on unrecoverable injected faults")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "max wait for running jobs to reach a stage boundary on shutdown")
	)
	flag.Parse()
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "mhm2d: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	sched, err := service.New(service.Config{
		DataDir:         *dataDir,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		TenantMaxActive: *tenantQuota,
		Devices:         *devices,
		JobRetries:      *retries,
	})
	if err != nil {
		log.Fatalf("mhm2d: %v", err)
	}
	if n := sched.Resumable(); n > 0 {
		log.Printf("mhm2d: resuming %d unfinished job(s) from %s", n, *dataDir)
	}
	sched.Start()

	srv := &http.Server{Addr: *addr, Handler: service.NewHandler(sched)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("mhm2d: serving on %s (workers=%d devices=%d queue=%d)", *addr, *workers, *devices, *queueDepth)

	select {
	case <-ctx.Done():
		log.Printf("mhm2d: signal received; draining (checkpointed jobs resume on restart)")
	case err := <-errCh:
		log.Fatalf("mhm2d: serve: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("mhm2d: http shutdown: %v", err)
	}
	if err := sched.Shutdown(shutCtx); err != nil {
		log.Printf("mhm2d: scheduler shutdown: %v", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("mhm2d: serve: %v", err)
	}
	log.Printf("mhm2d: stopped")
}
