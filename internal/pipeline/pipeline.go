// Package pipeline wires the substrates into a MetaHipMer2-like assembler
// (Fig 1): merge reads → iterate over k {k-mer analysis → contig generation
// → alignment → local assembly} → scaffolding → file I/O, with per-stage
// timing in exactly the categories of the paper's Fig 2 breakdowns and a
// work record the cluster model scales to Summit runs.
package pipeline

import (
	"fmt"
	"time"

	"mhm2sim/internal/locassm"
	"mhm2sim/internal/scaffold"
	"mhm2sim/internal/simt"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dbg"
	"mhm2sim/internal/gpucount"
	"mhm2sim/internal/preprocess"
)

// Stage indexes the Fig 2 breakdown categories.
type Stage int

const (
	StageMergeReads Stage = iota
	StageKmerAnalysis
	StageContigGen
	StageAlignment // alignment stage minus the SW kernel
	StageAlnKernel // time inside banded Smith-Waterman
	StageLocalAssembly
	StageScaffolding
	StageFileIO
	// StageComm is the modeled inter-rank communication time of a
	// distributed run (internal/dist): all-to-all read exchanges and contig
	// allgathers through the simulated fabric. Single-rank runs record
	// zero here, exactly as a one-node MPI job spends nothing on the wire.
	StageComm
	NumStages
)

var stageNames = [NumStages]string{
	"merge reads", "k-mer analysis", "contig generation", "alignment",
	"aln kernel", "local assembly", "scaffolding", "file I/O",
	"communication",
}

// String names the stage as in Fig 2's legend.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Timings records measured wall time per stage.
type Timings struct {
	Wall [NumStages]time.Duration
}

// Add accumulates d into the stage.
func (t *Timings) Add(s Stage, d time.Duration) { t.Wall[s] += d }

// Total sums all stages.
func (t *Timings) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.Wall {
		sum += d
	}
	return sum
}

// WorkRecord counts the scalable work of one pipeline run; the cluster
// model multiplies these by per-unit Summit costs (see internal/cluster).
type WorkRecord struct {
	InputReads       int
	InputBases       int64
	MergedReads      int
	KmerOccurrences  int64 // k-mer insertions across all rounds
	DistinctKmers    int64
	ContigsGenerated int
	ContigBases      int64
	ReadsAligned     int64
	AlnCells         int64 // Smith-Waterman DP cells
	CandidateCtgs    int   // contigs entering local assembly (last round)
	Locassm          locassm.WorkCounts
	GPUKernels       []simt.KernelResult
	GPUKernelTime    time.Duration
	GPUTransferTime  time.Duration
	AlnGPUKernels    []simt.KernelResult
	AlnGPUKernelTime time.Duration
	ScaffoldPairs    int64
	IOBytes          int64
	Preprocess       preprocess.Stats
	// KmerBudget accumulates the memory-bounded counting accounting over
	// all rounds (zero value when MemBudget is unset). It is deliberately
	// separate from GPUKernels: budget counting runs on its own device
	// and must not flip engine-level GPU reporting on or off.
	KmerBudget gpucount.BudgetStats
	// CommTime/CommBytes/CommMsgs account the modeled inter-rank fabric
	// traffic of a distributed run (internal/dist), the way
	// GPUTransferTime accounts modeled PCIe time. Zero for single-rank
	// runs.
	CommTime  time.Duration
	CommBytes int64
	CommMsgs  int64
	// Steals/RankJoins/MembershipEpochs account a distributed run's
	// elasticity: stolen batches, mid-run rank admissions, and membership
	// versions (1 for a static multi-rank run, zero for single-rank runs).
	Steals           int
	RankJoins        int
	MembershipEpochs int
	// EstimatedInsert is the inferred library insert size (0 when
	// estimation was off or had too few observations).
	EstimatedInsert int
}

// RoundBins records the §3.1 bin distribution for one k round (Fig 3).
type RoundBins struct {
	K                  int
	Zero, Small, Large int
}

// Default read-merging parameters (the merge-reads stage of Fig 1).
const (
	// DefaultMergeMinOverlap is the minimum mate overlap to merge a pair.
	DefaultMergeMinOverlap = 20
	// DefaultMergeMaxMismatchFrac is the mismatch fraction tolerated
	// inside the overlap.
	DefaultMergeMaxMismatchFrac = 0.1
)

// Config assembles the sub-configurations.
type Config struct {
	// Rounds lists the contigging k values, smallest first (MetaHipMer
	// iterates k = 21, 33, 55, 77, 99 on 150 bp data).
	Rounds []int
	// MinCount is the k-mer error-filter threshold.
	MinCount uint32
	Align    align.Config
	Locassm  locassm.Config
	Scaffold scaffold.Config
	// MergeMinOverlap is the minimum overlap (bases) between the forward
	// mate and the reverse-complemented reverse mate for a pair to merge
	// (0 = DefaultMergeMinOverlap).
	MergeMinOverlap int
	// MergeMaxMismatchFrac is the fraction of mismatching bases tolerated
	// inside the overlap. 0 means DefaultMergeMaxMismatchFrac; for exact
	// overlaps use a fraction smaller than 1/MaxReadLen.
	MergeMaxMismatchFrac float64
	// EndZone is how close to a contig end an alignment must come for the
	// read to become a local-assembly candidate (0: read length + 50).
	EndZone int
	Workers int

	// Preprocess enables read preparation (adapter/quality trimming and
	// filtering) before merging; nil disables it.
	Preprocess *preprocess.Config

	// EstimateInsert infers the library insert size from proper pairs
	// during scaffolding instead of trusting Scaffold.InsertMean.
	EstimateInsert bool

	// CheckpointDir, when set, saves each round's contigs and lets a
	// rerun resume from the latest completed round (MetaHipMer2's
	// --checkpoint).
	CheckpointDir string

	// Engine selects the local-assembly execution substrate — the single
	// resolved spec that replaced the old UseGPU-style boolean branching.
	// Engine.Name picks a registered engine ("", "auto" → cpu); the
	// distributed runtime injects itself via Engine.Instance. The walk
	// Config, driver GPU config, Device, and Workers below are folded into
	// the spec at resolution time, so only Name / Instance / GPUs /
	// DeviceConfig need to be set here.
	Engine locassm.EngineSpec

	// Observer, when non-nil, receives stage start/finish callbacks with
	// per-stage Timings and WorkRecord deltas — the seam tracing and
	// metrics layers attach to.
	Observer Observer

	// MemBudget, when > 0, bounds the device bytes k-mer analysis may
	// hold at once: counting runs through the gpucount budget planner
	// (counting-Bloom prefilter + multi-pass partitioned counting on a
	// dedicated device) instead of the unbounded host map, so inputs
	// whose k-mer tables outgrow memory still assemble. Must be ≥
	// gpucount.MinMemBudget. The budget also caps the local-assembly
	// driver via EngineSpec.MemBudget.
	MemBudget int64
	// MemPressure, when set alongside MemBudget, reports how many device
	// OOM events have fired by the given round (sticky); each one halves
	// the effective counting budget — the graceful-degradation path the
	// distributed runtime wires to its chaos injector in place of the
	// device→host fallback.
	MemPressure func(round int) int

	// UseGPUAln runs the alignment stage's banded-SW verification on the
	// device (the ADEPT role, internal/gpualign) instead of the CPU.
	UseGPUAln bool
	// GPU configures the device driver for the gpu/multigpu engines.
	GPU locassm.GPUConfig
	// Device runs GPU local assembly and GPU alignment (nil: a fresh V100
	// per run).
	Device *simt.Device
}

// resolveEngine collapses the engine-selection configuration into one
// constructed locassm.Engine — the single decision point for where local
// assembly executes. The pipeline-level walk config, GPU driver config,
// device, and worker count always win over the corresponding EngineSpec
// fields, so a spec only ever names the substrate (plus multigpu's device
// count and fresh-device template).
func (c *Config) resolveEngine() (locassm.Engine, error) {
	spec := c.Engine
	if spec.Instance != nil {
		return spec.Instance, nil
	}
	spec.Config = c.Locassm
	spec.GPU = c.GPU
	spec.GPU.Config = c.Locassm
	if spec.MemBudget == 0 {
		spec.MemBudget = c.MemBudget
	}
	if spec.Device == nil {
		spec.Device = c.Device
	}
	if spec.Workers == 0 {
		spec.Workers = c.Workers
	}
	return locassm.NewEngine(spec)
}

// mergeParams resolves the effective read-merging parameters.
func (c *Config) mergeParams() (minOverlap int, maxMismatchFrac float64) {
	minOverlap = c.MergeMinOverlap
	if minOverlap == 0 {
		minOverlap = DefaultMergeMinOverlap
	}
	maxMismatchFrac = c.MergeMaxMismatchFrac
	if maxMismatchFrac == 0 {
		maxMismatchFrac = DefaultMergeMaxMismatchFrac
	}
	return minOverlap, maxMismatchFrac
}

// DefaultConfig returns a scaled-down MetaHipMer-like configuration
// suitable for synthetic communities with 150 bp reads.
func DefaultConfig() Config {
	la := locassm.DefaultConfig()
	return Config{
		Rounds:               []int{21, 33, 55},
		MinCount:             2,
		Align:                align.DefaultConfig(),
		Locassm:              la,
		Scaffold:             scaffold.DefaultConfig(),
		MergeMinOverlap:      DefaultMergeMinOverlap,
		MergeMaxMismatchFrac: DefaultMergeMaxMismatchFrac,
		Workers:              0,
		GPU:                  locassm.GPUConfig{Config: la, WarpPerTable: true},
	}
}

// Validate checks config consistency.
func (c *Config) Validate() error {
	if len(c.Rounds) == 0 {
		return fmt.Errorf("pipeline: no k rounds configured")
	}
	prev := 0
	for _, k := range c.Rounds {
		if k <= prev {
			return fmt.Errorf("pipeline: rounds must be strictly increasing, got %v", c.Rounds)
		}
		prev = k
	}
	if c.MinCount < 1 {
		return fmt.Errorf("pipeline: MinCount must be ≥ 1")
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("pipeline: MemBudget %d is negative", c.MemBudget)
	}
	if c.MemBudget > 0 && c.MemBudget < gpucount.MinMemBudget {
		return fmt.Errorf("pipeline: MemBudget %d below the %d-byte minimum (gpucount.MinMemBudget)", c.MemBudget, gpucount.MinMemBudget)
	}
	if c.MergeMinOverlap < 0 {
		return fmt.Errorf("pipeline: MergeMinOverlap %d < 0", c.MergeMinOverlap)
	}
	if c.MergeMaxMismatchFrac < 0 || c.MergeMaxMismatchFrac >= 1 {
		return fmt.Errorf("pipeline: MergeMaxMismatchFrac %g outside [0,1)", c.MergeMaxMismatchFrac)
	}
	if err := c.Align.Validate(); err != nil {
		return err
	}
	if err := c.Locassm.Validate(); err != nil {
		return err
	}
	return c.Scaffold.Validate()
}

// Result is a completed pipeline run.
type Result struct {
	Contigs   []dbg.Contig
	Scaffolds []scaffold.Scaffold
	Timings   Timings
	Work      WorkRecord
	Bins      []RoundBins
	// LAWorkload snapshots the final round's local-assembly input (contigs
	// before extension, with their candidate reads) — the "data dump" the
	// paper uses for standalone kernel studies (§4.1) and the base
	// workload of the cluster model.
	LAWorkload []*locassm.CtgWithReads
}
