package pipeline

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"mhm2sim/internal/dbg"
)

func TestCheckpointSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctgs := []dbg.Contig{
		{ID: 3, Seq: []byte("ACGTACGTACGT"), Depth: 7.25},
		{ID: 9, Seq: []byte("GGGGCCCCAAAA"), Depth: 2.5},
	}
	if _, err := saveRound(dir, 21, ctgs); err != nil {
		t.Fatal(err)
	}
	back, ok, err := loadRound(dir, 21)
	if err != nil || !ok {
		t.Fatalf("load failed: %v %v", ok, err)
	}
	if len(back) != 2 {
		t.Fatalf("got %d contigs", len(back))
	}
	for i := range ctgs {
		if back[i].ID != ctgs[i].ID || !bytes.Equal(back[i].Seq, ctgs[i].Seq) ||
			back[i].Depth != ctgs[i].Depth {
			t.Errorf("contig %d: %+v vs %+v", i, back[i], ctgs[i])
		}
	}
	// Missing round.
	if _, ok, err := loadRound(dir, 33); ok || err != nil {
		t.Errorf("missing round: ok=%v err=%v", ok, err)
	}
}

func TestCheckpointResumePoint(t *testing.T) {
	dir := t.TempDir()
	saveRound(dir, 21, []dbg.Contig{{ID: 1, Seq: []byte("AAAA")}})
	saveRound(dir, 33, []dbg.Contig{{ID: 2, Seq: []byte("CCCC")}})
	// k=55 missing: resume after two rounds.
	ctgs, skip, err := resumePoint(dir, []int{21, 33, 55})
	if err != nil {
		t.Fatal(err)
	}
	if skip != 2 || len(ctgs) != 1 || string(ctgs[0].Seq) != "CCCC" {
		t.Fatalf("resume: skip=%d ctgs=%v", skip, ctgs)
	}
	// No checkpoints at all.
	_, skip, err = resumePoint(t.TempDir(), []int{21})
	if err != nil || skip != 0 {
		t.Fatalf("empty dir: skip=%d err=%v", skip, err)
	}
}

func TestCheckpointCorrupt(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "contigs-k21.fasta"), []byte("not fasta\n>x"), 0o644)
	if _, _, err := resumePoint(dir, []int{21}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestPipelineResumesFromCheckpoint(t *testing.T) {
	pairs := buildPairs(t)
	dir := t.TempDir()
	cfg := testPipelineConfig()
	cfg.CheckpointDir = dir

	first, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoints exist for both rounds.
	for _, k := range cfg.Rounds {
		if _, err := os.Stat(ckptName(dir, k)); err != nil {
			t.Fatalf("checkpoint for k=%d missing: %v", k, err)
		}
	}

	// Rerun with a tiny read subset: if the checkpoint is honored, the
	// final contigs still match the first run (all rounds skipped).
	second, err := Run(pairs[:10], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Contigs) != len(first.Contigs) {
		t.Fatalf("resumed run has %d contigs, first %d", len(second.Contigs), len(first.Contigs))
	}
	for i := range first.Contigs {
		if !bytes.Equal(first.Contigs[i].Seq, second.Contigs[i].Seq) {
			t.Fatalf("contig %d differs after resume", i)
		}
	}
	// The resumed run must have skipped k-mer analysis entirely.
	if second.Timings.Wall[StageKmerAnalysis] > first.Timings.Wall[StageKmerAnalysis]/2 {
		t.Error("resumed run appears to have recomputed the rounds")
	}
}
