package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
)

// Checkpointing mirrors MetaHipMer2's --checkpoint behaviour: after each
// contigging round the (locally assembled) contigs are written to the
// checkpoint directory, and a rerun resumes from the latest completed
// round instead of recomputing it.

// ckptName returns the checkpoint file for round k.
func ckptName(dir string, k int) string {
	return filepath.Join(dir, fmt.Sprintf("contigs-k%d.fasta", k))
}

// saveRound writes a round's contigs (atomically: write + rename).
func saveRound(dir string, k int, ctgs []dbg.Contig) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	tmp := ckptName(dir, k) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	names := make([]string, len(ctgs))
	seqs := make([][]byte, len(ctgs))
	for i := range ctgs {
		// Depth rides inside the name token: FASTA readers keep only the
		// first whitespace-separated field. The shortest round-trip float
		// form keeps a resumed run's contig depths bit-identical to the
		// uninterrupted run's (a fixed precision would truncate them).
		names[i] = "contig_" + strconv.FormatInt(ctgs[i].ID, 10) +
			"|depth=" + strconv.FormatFloat(ctgs[i].Depth, 'g', -1, 64)
		seqs[i] = ctgs[i].Seq
	}
	if err := dna.WriteFASTA(f, names, seqs, 80); err != nil {
		f.Close()
		return 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	return info.Size(), os.Rename(tmp, ckptName(dir, k))
}

// loadRound reads a round checkpoint; ok is false when none exists.
func loadRound(dir string, k int) ([]dbg.Contig, bool, error) {
	f, err := os.Open(ckptName(dir, k))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	names, seqs, err := dna.ReadFASTA(f)
	if err != nil {
		return nil, false, fmt.Errorf("pipeline: corrupt checkpoint %s: %w", ckptName(dir, k), err)
	}
	ctgs := make([]dbg.Contig, len(names))
	for i := range names {
		ctgs[i] = dbg.Contig{ID: int64(i), Seq: seqs[i]}
		// Recover id and depth from the name token.
		for _, fld := range strings.Split(names[i], "|") {
			if v, ok := strings.CutPrefix(fld, "contig_"); ok {
				if id, err := strconv.ParseInt(v, 10, 64); err == nil {
					ctgs[i].ID = id
				}
			}
			if v, ok := strings.CutPrefix(fld, "depth="); ok {
				if d, err := strconv.ParseFloat(v, 64); err == nil {
					ctgs[i].Depth = d
				}
			}
		}
	}
	return ctgs, true, nil
}

// resumePoint finds the longest prefix of rounds with checkpoints and
// returns the contigs of the last one plus how many rounds to skip.
func resumePoint(dir string, rounds []int) ([]dbg.Contig, int, error) {
	var ctgs []dbg.Contig
	skip := 0
	for _, k := range rounds {
		loaded, ok, err := loadRound(dir, k)
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		ctgs = loaded
		skip++
	}
	return ctgs, skip, nil
}
