package pipeline

import (
	"testing"

	"mhm2sim/internal/quality"
	"mhm2sim/internal/synth"
)

// TestLocalAssemblyImprovesContiguity verifies the reason local assembly
// exists (§2.3): against the same truth community, the pipeline with local
// assembly produces a more contiguous assembly than without, and does not
// introduce misassemblies while doing so.
func TestLocalAssemblyImprovesContiguity(t *testing.T) {
	if testing.Short() {
		t.Skip("quality evaluation is expensive")
	}
	p := smallPreset()
	com, pairs, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	genomes := make([][]byte, len(com.Genomes))
	var genomeSize int64
	for i := range com.Genomes {
		genomes[i] = com.Genomes[i].Seq
		genomeSize += int64(len(genomes[i]))
	}

	run := func(withLA bool) *quality.Report {
		cfg := testPipelineConfig()
		cfg.Rounds = []int{21}
		if !withLA {
			cfg.Locassm.MaxWalkLen = 1 // effectively disables extension
		}
		res, err := Run(pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		seqs := make([][]byte, len(res.Contigs))
		for i := range res.Contigs {
			seqs[i] = res.Contigs[i].Seq
		}
		rep, err := quality.Evaluate(seqs, genomes, quality.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	with := run(true)
	without := run(false)

	t.Logf("with LA:    NG50=%d frac=%.3f mis=%d",
		with.Contigs.NG50, with.GenomeFraction, with.Misassemblies)
	t.Logf("without LA: NG50=%d frac=%.3f mis=%d",
		without.Contigs.NG50, without.GenomeFraction, without.Misassemblies)

	// NG50 normalizes by the (fixed) genome size, so extension can only
	// help it; assembly-relative N50 is confounded by total-size growth.
	if with.Contigs.NG50 < without.Contigs.NG50 {
		t.Errorf("local assembly did not improve contiguity: NG50 %d vs %d",
			with.Contigs.NG50, without.Contigs.NG50)
	}
	if with.GenomeFraction <= without.GenomeFraction {
		t.Errorf("local assembly did not extend into uncovered sequence: %.3f vs %.3f",
			with.GenomeFraction, without.GenomeFraction)
	}
	if with.GenomeFraction < without.GenomeFraction-0.01 {
		t.Errorf("local assembly lost genome fraction: %.3f vs %.3f",
			with.GenomeFraction, without.GenomeFraction)
	}
	if with.Misassemblies > without.Misassemblies+1 {
		t.Errorf("local assembly introduced misassemblies: %d vs %d",
			with.Misassemblies, without.Misassemblies)
	}
	if with.MismatchRate > 0.02 {
		t.Errorf("assembly mismatch rate %.4f too high", with.MismatchRate)
	}
}

// TestScaffoldQuality checks the final scaffolds against the truth.
func TestScaffoldQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("quality evaluation is expensive")
	}
	p := smallPreset()
	com, pairs, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	genomes := make([][]byte, len(com.Genomes))
	for i := range com.Genomes {
		genomes[i] = com.Genomes[i].Seq
	}
	cfg := testPipelineConfig()
	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([][]byte, len(res.Scaffolds))
	for i := range res.Scaffolds {
		seqs[i] = res.Scaffolds[i].Seq
	}
	rep, err := quality.Evaluate(seqs, genomes, quality.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("scaffolds: %s", rep)
	if rep.GenomeFraction < 0.5 {
		t.Errorf("scaffolds cover only %.1f%% of the truth", 100*rep.GenomeFraction)
	}
	if rep.MismatchRate > 0.02 {
		t.Errorf("scaffold mismatch rate %.4f", rep.MismatchRate)
	}
	_ = synth.Flatten
}
