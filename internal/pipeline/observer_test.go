package pipeline

import (
	"testing"
	"time"
)

// recordingObserver captures every stage callback in order.
type recordingObserver struct {
	starts   []StageEvent
	finishes []StageEvent
	walls    []time.Duration
	timings  []Timings
	works    []WorkRecord
}

func (o *recordingObserver) StageStart(ev StageEvent) {
	o.starts = append(o.starts, ev)
}

func (o *recordingObserver) StageFinish(ev StageEvent, wall time.Duration, timings Timings, work WorkRecord) {
	o.finishes = append(o.finishes, ev)
	o.walls = append(o.walls, wall)
	o.timings = append(o.timings, timings)
	o.works = append(o.works, work)
}

// TestObserverStageOrder: a two-round run fires every stage exactly once per
// round, in Fig 1 order, with start/finish pairs balanced.
func TestObserverStageOrder(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	obs := &recordingObserver{}
	cfg.Observer = obs
	if _, err := Run(pairs, cfg); err != nil {
		t.Fatal(err)
	}

	want := []StageEvent{
		{Stage: StageMergeReads, Round: -1},
		{Stage: StageKmerAnalysis, Round: 0, K: 21},
		{Stage: StageContigGen, Round: 0, K: 21},
		{Stage: StageAlignment, Round: 0, K: 21},
		{Stage: StageLocalAssembly, Round: 0, K: 21},
		{Stage: StageKmerAnalysis, Round: 1, K: 33},
		{Stage: StageContigGen, Round: 1, K: 33},
		{Stage: StageAlignment, Round: 1, K: 33},
		{Stage: StageLocalAssembly, Round: 1, K: 33},
		{Stage: StageScaffolding, Round: -1},
		{Stage: StageFileIO, Round: -1},
	}
	for i := range want {
		want[i].Name = want[i].Stage.String()
	}

	if len(obs.starts) != len(want) || len(obs.finishes) != len(want) {
		t.Fatalf("got %d starts / %d finishes, want %d each",
			len(obs.starts), len(obs.finishes), len(want))
	}
	for i, ev := range want {
		if obs.starts[i] != ev {
			t.Errorf("start %d: got %+v, want %+v", i, obs.starts[i], ev)
		}
		if obs.finishes[i] != ev {
			t.Errorf("finish %d: got %+v, want %+v", i, obs.finishes[i], ev)
		}
	}
}

// TestObserverDeltas: each finish carries the stage's own timing and work
// deltas, not cumulative totals.
func TestObserverDeltas(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	obs := &recordingObserver{}
	cfg.Observer = obs
	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var sum Timings
	mergedReads := 0
	var distinct int64
	for i, ev := range obs.finishes {
		d := obs.timings[i]
		// A non-self-timed stage's delta lands entirely in its own category.
		if ev.Stage != StageAlignment {
			if d.Wall[ev.Stage] <= 0 {
				t.Errorf("%s: zero timing delta", ev.Name)
			}
			if d.Total() != d.Wall[ev.Stage] {
				t.Errorf("%s: delta spills into other categories: %+v", ev.Name, d.Wall)
			}
		} else if d.Wall[StageAlignment]+d.Wall[StageAlnKernel] <= 0 {
			t.Errorf("alignment: zero timing delta")
		}
		for s := range d.Wall {
			sum.Wall[s] += d.Wall[s]
		}
		mergedReads += obs.works[i].MergedReads
		distinct += obs.works[i].DistinctKmers

		switch ev.Stage {
		case StageLocalAssembly:
			if obs.works[i].Locassm.TableBuilds <= 0 {
				t.Errorf("round %d local assembly: no table builds in delta", ev.Round)
			}
		case StageContigGen:
			if obs.works[i].ContigsGenerated != 0 {
				// ContigsGenerated is only set after the round loop; stage
				// deltas must not claim it.
				t.Errorf("round %d contig generation: unexpected ContigsGenerated delta %d",
					ev.Round, obs.works[i].ContigsGenerated)
			}
		}
	}
	// Deltas reassemble the final record exactly.
	if sum != res.Timings {
		t.Errorf("timing deltas don't sum to the result: got %+v, want %+v", sum, res.Timings)
	}
	if mergedReads != res.Work.MergedReads {
		t.Errorf("merged-read deltas sum to %d, want %d", mergedReads, res.Work.MergedReads)
	}
	if distinct != res.Work.DistinctKmers {
		t.Errorf("distinct-kmer deltas sum to %d, want %d", distinct, res.Work.DistinctKmers)
	}
}

// TestObserverCheckpointIO: with checkpointing on, each round additionally
// fires a file-I/O stage whose delta carries the bytes written.
func TestObserverCheckpointIO(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.CheckpointDir = t.TempDir()
	obs := &recordingObserver{}
	cfg.Observer = obs
	if _, err := Run(pairs, cfg); err != nil {
		t.Fatal(err)
	}
	ioRounds := 0
	for i, ev := range obs.finishes {
		if ev.Stage == StageFileIO && ev.Round >= 0 {
			ioRounds++
			if obs.works[i].IOBytes <= 0 {
				t.Errorf("round %d checkpoint: no IOBytes delta", ev.Round)
			}
		}
	}
	if ioRounds != len(cfg.Rounds) {
		t.Errorf("%d checkpoint I/O stages for %d rounds", ioRounds, len(cfg.Rounds))
	}
}
