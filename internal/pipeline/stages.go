package pipeline

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/par"
	"mhm2sim/internal/scaffold"
	"mhm2sim/internal/simt"
)

// alignCandidates aligns every merged read against the round's contigs and
// buckets end-zone hits into per-contig candidate-read lists. It is the
// one self-timed stage body: the measured wall time is split between the
// aln-kernel category (time inside banded Smith-Waterman) and the
// alignment category (everything else).
func alignCandidates(reads []dna.Read, ctgs []dbg.Contig, cfg *Config, workers int, res *Result) ([]*locassm.CtgWithReads, error) {
	ctgSeqs := make([][]byte, len(ctgs))
	withReads := make([]*locassm.CtgWithReads, len(ctgs))
	for i := range ctgs {
		ctgSeqs[i] = ctgs[i].Seq
		withReads[i] = &locassm.CtgWithReads{ID: ctgs[i].ID, Seq: ctgs[i].Seq, Depth: ctgs[i].Depth}
	}
	t0 := time.Now()
	aln, err := align.New(ctgSeqs, cfg.Align)
	if err != nil {
		return nil, err
	}

	endZone := cfg.EndZone
	if endZone <= 0 {
		maxRead := 0
		for i := range reads {
			if len(reads[i].Seq) > maxRead {
				maxRead = len(reads[i].Seq)
			}
		}
		endZone = maxRead + 50
	}

	classify := func(h align.Hit, read dna.Read) {
		left, right := aln.EndCandidate(h, len(read.Seq), endZone)
		if !left && !right {
			return
		}
		r := read
		if h.RC {
			r = r.RevComp()
		}
		if left {
			withReads[h.CtgID].LeftReads = append(withReads[h.CtgID].LeftReads, r)
		}
		if right {
			withReads[h.CtgID].RightReads = append(withReads[h.CtgID].RightReads, r)
		}
	}

	var aligned atomic.Int64
	var kernelTime time.Duration
	if cfg.UseGPUAln {
		dev := cfg.Device
		if dev == nil {
			dev = simt.NewDevice(simt.V100())
		}
		hits, found, kernelWall, kernels, err := gpuAlignReads(dev, aln, ctgSeqs, reads, workers)
		if err != nil {
			return nil, err
		}
		for i := range reads {
			if !found[i] {
				continue
			}
			aligned.Add(1)
			classify(hits[i], reads[i])
		}
		kernelTime = kernelWall
		res.Work.AlnGPUKernels = append(res.Work.AlnGPUKernels, kernels...)
		for _, k := range kernels {
			res.Work.AlnGPUKernelTime += k.Time
		}
	} else {
		type cand struct {
			hit  align.Hit
			read dna.Read
		}
		candCh := make(chan cand, 1024)

		var collectWG sync.WaitGroup
		collectWG.Add(1)
		go func() {
			defer collectWG.Done()
			for c := range candCh {
				classify(c.hit, c.read)
			}
		}()

		par.ForEach(workers, len(reads), func(i int) {
			h, ok := aln.AlignRead(reads[i].Seq)
			if !ok {
				return
			}
			aligned.Add(1)
			candCh <- cand{hit: h, read: reads[i]}
		})
		close(candCh)
		collectWG.Wait()
		kernelTime = aln.KernelTime()
	}

	// Keep candidate order deterministic despite concurrent alignment.
	for i := range withReads {
		sortReads(withReads[i].LeftReads)
		sortReads(withReads[i].RightReads)
	}

	stageTime := time.Since(t0)
	if kernelTime > stageTime {
		kernelTime = stageTime
	}
	res.Timings.Add(StageAlnKernel, kernelTime)
	res.Timings.Add(StageAlignment, stageTime-kernelTime)
	res.Work.ReadsAligned += aligned.Load()
	res.Work.AlnCells += aln.Cells()
	return withReads, nil
}

func sortReads(rs []dna.Read) {
	if len(rs) < 2 {
		return
	}
	// Insertion sort by ID then sequence: candidate lists are short.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && readLess(&rs[j], &rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func readLess(a, b *dna.Read) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return bytes.Compare(a.Seq, b.Seq) < 0
}

// runScaffolding aligns the original pairs against the final contigs,
// optionally estimates the library insert size from proper pairs, and
// joins spanning pairs into scaffolds.
func runScaffolding(pairs []dna.PairedRead, ctgSeqs [][]byte, cfg *Config, workers int) ([]scaffold.Scaffold, int64, int, error) {
	aln, err := align.New(ctgSeqs, cfg.Align)
	if err != nil {
		return nil, 0, 0, err
	}
	lens := make([]int, len(ctgSeqs))
	for i := range ctgSeqs {
		lens[i] = len(ctgSeqs[i])
	}

	// Phase 1: align both mates of every pair.
	type pairHits struct {
		h1, h2 align.Hit
		ok     bool
	}
	hits := make([]pairHits, len(pairs))
	par.ForEach(workers, len(pairs), func(i int) {
		h1, ok1 := aln.AlignRead(pairs[i].Fwd.Seq)
		h2, ok2 := aln.AlignRead(pairs[i].Rev.Seq)
		hits[i] = pairHits{h1: h1, h2: h2, ok: ok1 && ok2}
	})

	// Phase 2: insert-size estimation from proper (same-contig) pairs.
	insertMean := cfg.Scaffold.InsertMean
	estimated := 0
	if cfg.EstimateInsert {
		var obs []int
		for i := range hits {
			if !hits[i].ok {
				continue
			}
			if ins, ok := scaffold.ProperPairInsert(hits[i].h1, hits[i].h2); ok {
				obs = append(obs, ins)
			}
		}
		if mean, _, ok := scaffold.EstimateInsert(obs, 50); ok {
			insertMean, estimated = mean, mean
		}
	}

	// Phase 3: votes and joining.
	var all []scaffold.Link
	var used int64
	for i := range hits {
		if !hits[i].ok {
			continue
		}
		if v, ok := scaffold.PairVote(hits[i].h1, hits[i].h2, lens, insertMean); ok {
			all = append(all, v)
			used++
		}
	}
	scfg := cfg.Scaffold
	scfg.InsertMean = insertMean
	scs, err := scaffold.Build(ctgSeqs, all, scfg)
	return scs, used, estimated, err
}

// writeOutputs serializes contigs and scaffolds as FASTA, returning bytes
// written — the file I/O stage.
func writeOutputs(w io.Writer, res *Result) (int64, error) {
	var buf bytes.Buffer
	names := make([]string, len(res.Contigs))
	seqs := make([][]byte, len(res.Contigs))
	for i := range res.Contigs {
		names[i] = fmt.Sprintf("contig_%d depth=%.2f", res.Contigs[i].ID, res.Contigs[i].Depth)
		seqs[i] = res.Contigs[i].Seq
	}
	if err := dna.WriteFASTA(&buf, names, seqs, 80); err != nil {
		return 0, err
	}
	names = names[:0]
	seqs = seqs[:0]
	for i := range res.Scaffolds {
		names = append(names, fmt.Sprintf("scaffold_%d", i))
		seqs = append(seqs, res.Scaffolds[i].Seq)
	}
	if err := dna.WriteFASTA(&buf, names, seqs, 80); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// WriteFASTAOutputs writes the final contigs and scaffolds to w (used by
// the command-line tools).
func WriteFASTAOutputs(w io.Writer, res *Result) error {
	_, err := writeOutputs(w, res)
	return err
}
