package pipeline

import "mhm2sim/internal/dna"

// mergePairs implements the merge-reads stage: overlapping mates of a pair
// are merged into one longer read (MetaHipMer merges pairs before k-mer
// analysis, Fig 1); non-overlapping pairs contribute both mates unchanged.
func mergePairs(pairs []dna.PairedRead, minOverlap int, maxMismatchFrac float64) []dna.Read {
	out := make([]dna.Read, 0, 2*len(pairs))
	for i := range pairs {
		if merged, ok := mergePair(&pairs[i], minOverlap, maxMismatchFrac); ok {
			out = append(out, merged)
		} else {
			out = append(out, pairs[i].Fwd, pairs[i].Rev)
		}
	}
	return out
}

// mergePair tries to overlap the forward mate's suffix with the
// reverse-complemented reverse mate's prefix, longest overlap first.
func mergePair(p *dna.PairedRead, minOverlap int, maxMismatchFrac float64) (dna.Read, bool) {
	fwd := &p.Fwd
	rcRev := p.Rev.RevComp()

	maxOv := len(fwd.Seq)
	if len(rcRev.Seq) < maxOv {
		maxOv = len(rcRev.Seq)
	}
	for ov := maxOv; ov >= minOverlap; ov-- {
		mmAllowed := int(maxMismatchFrac * float64(ov))
		mm := 0
		ok := true
		off := len(fwd.Seq) - ov
		for j := 0; j < ov; j++ {
			if fwd.Seq[off+j] != rcRev.Seq[j] {
				if mm++; mm > mmAllowed {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		// Merge: fwd prefix + overlap (base with higher quality wins) +
		// rcRev suffix.
		seq := make([]byte, 0, off+len(rcRev.Seq))
		qual := make([]byte, 0, off+len(rcRev.Seq))
		seq = append(seq, fwd.Seq[:off]...)
		qual = append(qual, fwd.Qual[:off]...)
		for j := 0; j < ov; j++ {
			if fwd.Qual[off+j] >= rcRev.Qual[j] {
				seq = append(seq, fwd.Seq[off+j])
				qual = append(qual, fwd.Qual[off+j])
			} else {
				seq = append(seq, rcRev.Seq[j])
				qual = append(qual, rcRev.Qual[j])
			}
		}
		seq = append(seq, rcRev.Seq[ov:]...)
		qual = append(qual, rcRev.Qual[ov:]...)
		return dna.Read{ID: fwd.ID + ".merged", Seq: seq, Qual: qual}, true
	}
	return dna.Read{}, false
}
