package pipeline

import (
	"context"
	"fmt"
	"time"
)

// The stage graph makes the Fig 1 dataflow explicit: pipeline.Run builds a
// sequence of stage executions — merge reads, then per contigging round
// {k-mer analysis → contig generation → alignment → local assembly
// [→ checkpoint I/O]}, then scaffolding and file I/O — and a small driver
// executes them in order, owning per-stage timing, checkpoint persistence,
// and the Observer callbacks. Stage bodies only transform runState; they
// never touch the clock and (with one flagged exception) never write
// Timings, so every crosscutting concern lives in exactly one place.

// StageEvent identifies one execution of a stage in the Fig 1 graph.
type StageEvent struct {
	// Stage is the Fig 2 timing category the execution is billed to.
	Stage Stage
	// Name is the human-readable stage name (Stage.String()).
	Name string
	// Round is the 0-based contigging round, or -1 for the stages outside
	// the round loop (merge reads, scaffolding, final file I/O).
	Round int
	// K is the round's k-mer size (0 outside the round loop).
	K int
}

// Observer receives stage-lifecycle callbacks from the pipeline driver —
// the seam tracing, metrics, and progress layers attach to. StageFinish
// carries the stage's deltas: its wall time, the per-category Timings it
// accumulated (usually only ev.Stage, but the alignment stage splits into
// alignment + aln kernel), and the WorkRecord counters it added (kernel
// lists in the delta hold only the launches of this stage). Callbacks run
// synchronously on the pipeline goroutine, in graph order; implementations
// must not mutate the deltas' slices.
type Observer interface {
	StageStart(ev StageEvent)
	StageFinish(ev StageEvent, wall time.Duration, timings Timings, work WorkRecord)
}

// outerEvent builds the event for a stage outside the round loop.
func outerEvent(s Stage) StageEvent {
	return StageEvent{Stage: s, Name: s.String(), Round: -1}
}

// roundEvent builds the event for a stage inside contigging round ri (k).
func roundEvent(s Stage, ri, k int) StageEvent {
	return StageEvent{Stage: s, Name: s.String(), Round: ri, K: k}
}

// stageDriver executes stage bodies sequentially. It owns the clock: the
// measured wall time of each body is credited to the event's timing
// category, and Observer deltas are computed from Timings/WorkRecord
// snapshots around the body. It also owns cancellation: the context is
// checked once per stage boundary, so a canceled run never starts another
// stage (checkpoints written by completed stages stay valid).
type stageDriver struct {
	ctx context.Context
	res *Result
	obs Observer // nil = no observer
}

// exec runs one stage. selfTimed marks the single stage (alignment) whose
// body splits its own wall time across two categories; for every other
// stage the driver bills the measured wall time to ev.Stage itself.
func (d *stageDriver) exec(ev StageEvent, selfTimed bool, body func() error) error {
	if err := d.ctx.Err(); err != nil {
		return fmt.Errorf("pipeline: canceled before %s stage: %w", ev.Name, err)
	}
	timingsBefore := d.res.Timings
	workBefore := d.res.Work
	if d.obs != nil {
		d.obs.StageStart(ev)
	}
	t0 := time.Now()
	err := body()
	wall := time.Since(t0)
	if !selfTimed {
		d.res.Timings.Add(ev.Stage, wall)
	}
	if err != nil {
		return err
	}
	if d.obs != nil {
		d.obs.StageFinish(ev, wall,
			d.res.Timings.diff(timingsBefore), d.res.Work.diff(workBefore))
	}
	return nil
}

// diff returns the per-stage wall time accumulated since prev.
func (t Timings) diff(prev Timings) Timings {
	for s := range t.Wall {
		t.Wall[s] -= prev.Wall[s]
	}
	return t
}

// diff returns the work added since prev: numeric counters are
// subtracted, kernel lists are sliced to the newly appended launches
// (views into the live lists — read-only for observers).
func (w WorkRecord) diff(prev WorkRecord) WorkRecord {
	w.InputReads -= prev.InputReads
	w.InputBases -= prev.InputBases
	w.MergedReads -= prev.MergedReads
	w.KmerOccurrences -= prev.KmerOccurrences
	w.DistinctKmers -= prev.DistinctKmers
	w.ContigsGenerated -= prev.ContigsGenerated
	w.ContigBases -= prev.ContigBases
	w.ReadsAligned -= prev.ReadsAligned
	w.AlnCells -= prev.AlnCells
	w.CandidateCtgs -= prev.CandidateCtgs
	w.Locassm.TableBuilds -= prev.Locassm.TableBuilds
	w.Locassm.KmersInserted -= prev.Locassm.KmersInserted
	w.Locassm.Lookups -= prev.Locassm.Lookups
	w.Locassm.WalkSteps -= prev.Locassm.WalkSteps
	w.GPUKernels = w.GPUKernels[len(prev.GPUKernels):]
	w.GPUKernelTime -= prev.GPUKernelTime
	w.GPUTransferTime -= prev.GPUTransferTime
	w.AlnGPUKernels = w.AlnGPUKernels[len(prev.AlnGPUKernels):]
	w.AlnGPUKernelTime -= prev.AlnGPUKernelTime
	w.ScaffoldPairs -= prev.ScaffoldPairs
	w.IOBytes -= prev.IOBytes
	w.Preprocess.PairsIn -= prev.Preprocess.PairsIn
	w.Preprocess.PairsOut -= prev.Preprocess.PairsOut
	w.Preprocess.PairsDropped -= prev.Preprocess.PairsDropped
	w.Preprocess.AdapterTrimmed -= prev.Preprocess.AdapterTrimmed
	w.Preprocess.QualityTrimmed -= prev.Preprocess.QualityTrimmed
	w.Preprocess.BasesRemoved -= prev.Preprocess.BasesRemoved
	w.CommTime -= prev.CommTime
	w.CommBytes -= prev.CommBytes
	w.CommMsgs -= prev.CommMsgs
	w.EstimatedInsert -= prev.EstimatedInsert
	return w
}
