package pipeline

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// cancelAfterObserver cancels the run's context from inside the n-th
// StageFinish callback — the tightest possible simulation of a job being
// killed at a stage boundary. It also accumulates the IOBytes deltas of
// the stages that did complete, since a canceled run returns no Result.
type cancelAfterObserver struct {
	cancel   context.CancelFunc
	after    int // cancel inside the after-th finish (0-based)
	finishes int
	ioBytes  int64
}

func (o *cancelAfterObserver) StageStart(StageEvent) {}

func (o *cancelAfterObserver) StageFinish(_ StageEvent, _ time.Duration, _ Timings, work WorkRecord) {
	o.ioBytes += work.IOBytes
	if o.finishes == o.after {
		o.cancel()
	}
	o.finishes++
}

// TestCancelResumeEveryStageBoundary kills a checkpointed run after each
// stage boundary in turn, resumes it, and asserts the resumed run's
// contigs and scaffolds are bit-identical to an uninterrupted run — the
// eviction contract the service scheduler relies on. It also closes the
// books on file I/O: the killed attempt's checkpoint bytes (observed
// through the Observer deltas) plus the resumed run's IOBytes must equal
// the uninterrupted run's total, i.e. no round's checkpoint is ever
// written twice and none is skipped.
func TestCancelResumeEveryStageBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("resumes the pipeline once per stage boundary")
	}
	pairs := buildPairs(t)
	cfg := testPipelineConfig()

	// Reference: one uninterrupted checkpointed run.
	ref := cfg
	ref.CheckpointDir = t.TempDir()
	full, err := Run(pairs, ref)
	if err != nil {
		t.Fatal(err)
	}
	var fullOut bytes.Buffer
	if err := WriteFASTAOutputs(&fullOut, full); err != nil {
		t.Fatal(err)
	}
	// Count the run's stage executions so the kill sweep covers every
	// boundary: merge + 5 per round (incl. checkpoint I/O) + scaffold + I/O.
	totalStages := 1 + 5*len(cfg.Rounds) + 2

	for after := 0; after < totalStages-1; after++ {
		dir := t.TempDir()
		killed := cfg
		killed.CheckpointDir = dir
		ctx, cancel := context.WithCancel(context.Background())
		obs := &cancelAfterObserver{cancel: cancel, after: after}
		killed.Observer = obs

		res, err := RunContext(ctx, pairs, killed)
		cancel()
		if err == nil || res != nil {
			t.Fatalf("after=%d: killed run completed (err=%v)", after, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: error does not wrap context.Canceled: %v", after, err)
		}
		if obs.finishes != after+1 {
			t.Fatalf("after=%d: %d stages finished before the kill took effect",
				after, obs.finishes)
		}

		resumed := cfg
		resumed.CheckpointDir = dir
		res, err = Run(pairs, resumed)
		if err != nil {
			t.Fatalf("after=%d: resume failed: %v", after, err)
		}
		var out bytes.Buffer
		if err := WriteFASTAOutputs(&out, res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), fullOut.Bytes()) {
			t.Errorf("after=%d: resumed output differs from uninterrupted run", after)
		}
		if got := obs.ioBytes + res.Work.IOBytes; got != full.Work.IOBytes {
			t.Errorf("after=%d: IOBytes books don't balance: killed %d + resumed %d = %d, want %d",
				after, obs.ioBytes, res.Work.IOBytes, got, full.Work.IOBytes)
		}
	}
}

// TestCancelBeforeStart: an already-canceled context never runs a stage.
func TestCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	obs := &recordingObserver{}
	cfg := testPipelineConfig()
	cfg.Observer = obs
	res, err := RunContext(ctx, buildPairs(t), cfg)
	if err == nil || res != nil {
		t.Fatalf("canceled run completed: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if len(obs.starts) != 0 {
		t.Errorf("%d stages started under a canceled context", len(obs.starts))
	}
}
