package pipeline

import (
	"sync"
	"time"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpualign"
	"mhm2sim/internal/simt"
)

// GPU alignment path: CPU-side seeding finds the candidate (read, contig,
// diagonal) tasks, and the device kernel (internal/gpualign, standing in
// for ADEPT) scores them in bulk — the "aln kernel" slice of Fig 2 runs on
// the GPU, as in the paper's MetaHipMer baseline.

// alnTask pairs a seeded verification with the read it came from.
type alnTask struct {
	readIdx int
	seq     []byte // oriented read
	seed    align.SeedTask
	// Target window in contig coordinates.
	winStart int
}

// gpuAlignReads performs seeding (parallel, CPU), batch SW (device), and
// acceptance, returning one best hit per read (miss = ok false).
func gpuAlignReads(dev *simt.Device, aln *align.Aligner, ctgSeqs [][]byte, reads []dna.Read, workers int) ([]align.Hit, []bool, time.Duration, []simt.KernelResult, error) {
	band := aln.Band()

	// Phase A: seeding, both orientations.
	taskLists := make([][]alnTask, len(reads))
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for i := range next {
				seq := reads[i].Seq
				if task, ok := aln.SeedOriented(seq, false); ok {
					taskLists[i] = append(taskLists[i], alnTask{readIdx: i, seq: seq, seed: task})
				}
				rc := dna.RevComp(seq)
				if task, ok := aln.SeedOriented(rc, true); ok {
					taskLists[i] = append(taskLists[i], alnTask{readIdx: i, seq: rc, seed: task})
				}
			}
		}()
	}
	for i := range reads {
		next <- i
	}
	close(next)
	wg.Wait()

	// Flatten and cut target windows: staging whole contigs per task would
	// blow the device budget; a window of query±band(+slack) suffices and
	// the spans are mapped back afterwards.
	const slack = 8
	var tasks []alnTask
	var gpuTasks []gpualign.Task
	for i := range taskLists {
		for _, t := range taskLists[i] {
			ctg := ctgSeqs[t.seed.CtgID]
			winStart := t.seed.Shift - band - slack
			if winStart < 0 {
				winStart = 0
			}
			winEnd := t.seed.Shift + len(t.seq) + band + slack
			if winEnd > len(ctg) {
				winEnd = len(ctg)
			}
			if winEnd <= winStart {
				continue
			}
			t.winStart = winStart
			tasks = append(tasks, t)
			gpuTasks = append(gpuTasks, gpualign.Task{
				Q:     t.seq,
				T:     ctg[winStart:winEnd],
				Shift: t.seed.Shift - winStart,
			})
		}
	}

	// Phase B: the device kernel.
	kernelStart := time.Now()
	dev.FreeAll()
	results, kres, err := gpualign.BatchSW(dev, gpuTasks, band, aln.ScoringParams())
	if err != nil {
		return nil, nil, 0, nil, err
	}
	kernelWall := time.Since(kernelStart)

	// Phase C: acceptance and per-read best (same tie-break as AlignRead:
	// forward wins ties, since it is seeded first).
	hits := make([]align.Hit, len(reads))
	found := make([]bool, len(reads))
	for ti, t := range tasks {
		r := results[ti]
		r.TStart += t.winStart
		r.TEnd += t.winStart
		h, ok := aln.AcceptSW(r, t.seed)
		if !ok {
			continue
		}
		if !found[t.readIdx] || h.Score > hits[t.readIdx].Score {
			hits[t.readIdx] = h
			found[t.readIdx] = true
		}
	}
	var kernels []simt.KernelResult
	if len(gpuTasks) > 0 {
		kernels = append(kernels, kres)
	}
	return hits, found, kernelWall, kernels, nil
}
