package pipeline

import (
	"context"
	"fmt"
	"io"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpucount"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/par"
	"mhm2sim/internal/preprocess"
	"mhm2sim/internal/simt"
)

// Run executes the full pipeline over the paired reads as an explicit
// stage graph (Fig 1): merge reads, then per contigging round k-mer
// analysis → contig generation → alignment → local assembly (→ checkpoint
// I/O), then scaffolding and file I/O. The stage driver owns timing,
// checkpointing, and the Observer callbacks; local assembly runs on the
// one engine resolved from cfg (see locassm.Engine), so every execution
// substrate — host, GPU, multi-GPU node, distributed ranks — flows through
// the same loop.
func Run(pairs []dna.PairedRead, cfg Config) (*Result, error) {
	return RunContext(context.Background(), pairs, cfg)
}

// RunContext is Run with cancellation: the stage driver checks ctx at
// every stage boundary, so a canceled run stops after the stage in flight
// instead of running to completion. Combined with CheckpointDir this is
// the eviction contract of the service scheduler (internal/service): a
// canceled job has checkpoints for every completed round and a rerun
// resumes exactly where it stopped. The returned error wraps ctx.Err().
func RunContext(ctx context.Context, pairs []dna.PairedRead, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := cfg.resolveEngine()
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Work.InputReads = 2 * len(pairs)
	for i := range pairs {
		res.Work.InputBases += int64(len(pairs[i].Fwd.Seq) + len(pairs[i].Rev.Seq))
	}
	st := &runState{
		cfg: &cfg, res: res, eng: eng,
		workers: par.Workers(cfg.Workers), pairs: pairs,
	}
	d := &stageDriver{ctx: ctx, res: res, obs: cfg.Observer}

	if err := d.exec(outerEvent(StageMergeReads), false, st.mergeReads); err != nil {
		return nil, err
	}

	// Iterative contigging rounds (Fig 1's "Iterate for k's"), resuming
	// past checkpointed rounds when a checkpoint directory is configured.
	skip := 0
	if cfg.CheckpointDir != "" {
		loaded, n, err := resumePoint(cfg.CheckpointDir, cfg.Rounds)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			st.adoptContigs(loaded)
			skip = n
		}
	}
	for ri, k := range cfg.Rounds {
		if ri < skip {
			continue
		}
		st.k = k
		st.round = ri
		if err := d.exec(roundEvent(StageKmerAnalysis, ri, k), false, st.kmerAnalysis); err != nil {
			return nil, err
		}
		if err := d.exec(roundEvent(StageContigGen, ri, k), false, st.contigGen); err != nil {
			return nil, err
		}
		// Alignment is the one self-timed stage: it splits its wall time
		// between the alignment and aln-kernel categories itself.
		if err := d.exec(roundEvent(StageAlignment, ri, k), true, st.alignment); err != nil {
			return nil, err
		}
		if err := d.exec(roundEvent(StageLocalAssembly, ri, k), false, st.localAssembly); err != nil {
			return nil, err
		}
		if cfg.CheckpointDir != "" {
			if err := d.exec(roundEvent(StageFileIO, ri, k), false, st.saveCheckpoint); err != nil {
				return nil, err
			}
		}
	}
	res.Contigs = st.ctgs
	res.Work.ContigsGenerated = len(st.ctgs)
	for i := range st.ctgs {
		res.Work.ContigBases += int64(len(st.ctgs[i].Seq))
	}

	if err := d.exec(outerEvent(StageScaffolding), false, st.scaffolding); err != nil {
		return nil, err
	}
	if err := d.exec(outerEvent(StageFileIO), false, st.writeFinal); err != nil {
		return nil, err
	}
	return res, nil
}

// runState is the dataflow between stages: each stage body consumes the
// fields earlier stages produced and fills its own. Splitting the old
// monolithic loop this way is what lets the driver treat every stage
// uniformly.
type runState struct {
	cfg     *Config
	res     *Result
	eng     locassm.Engine
	workers int

	pairs []dna.PairedRead // input (post-preprocess)
	reads []dna.Read       // merged reads
	seqs  [][]byte         // merged read sequences

	k         int // current round's k-mer size
	round     int // current round index (MemPressure is per round)
	table     *dbg.Table
	dcfg      dbg.Config
	ctgs      []dbg.Contig
	ctgSeqs   [][]byte
	withReads []*locassm.CtgWithReads

	// Budget-mode state: the counting device (lazily built, reused across
	// rounds) and the OOM-event count already absorbed into the budget.
	cdev    *simt.Device
	seenOOM int
}

// adoptContigs installs checkpointed contigs as if their rounds had run.
func (st *runState) adoptContigs(ctgs []dbg.Contig) {
	st.ctgs = ctgs
	st.ctgSeqs = make([][]byte, len(ctgs))
	for i := range ctgs {
		st.ctgSeqs[i] = ctgs[i].Seq
	}
}

// mergeReads is the merge-reads stage (with optional preprocessing).
func (st *runState) mergeReads() error {
	pairs := st.pairs
	if st.cfg.Preprocess != nil {
		// Copy the pair records: trimming rebinds slice headers and the
		// caller's slice must stay intact.
		cp := make([]dna.PairedRead, len(pairs))
		copy(cp, pairs)
		var ppStats preprocess.Stats
		var err error
		pairs, ppStats, err = preprocess.Run(cp, *st.cfg.Preprocess)
		if err != nil {
			return err
		}
		st.pairs = pairs
		st.res.Work.Preprocess = ppStats
	}
	minOverlap, maxMismatchFrac := st.cfg.mergeParams()
	st.reads = mergePairs(pairs, minOverlap, maxMismatchFrac)
	st.res.Work.MergedReads = len(st.reads)
	st.seqs = make([][]byte, len(st.reads))
	for i := range st.reads {
		st.seqs[i] = st.reads[i].Seq
	}
	return nil
}

// kmerAnalysis counts and error-filters the round's k-mers. Contigs from
// the previous round are injected (twice, so their k-mers survive the
// singleton filter) to carry progress forward.
func (st *runState) kmerAnalysis() error {
	roundSeqs := st.seqs
	for _, cs := range st.ctgSeqs {
		roundSeqs = append(roundSeqs, cs, cs)
	}
	st.dcfg = dbg.Config{
		K: st.k, MinCount: st.cfg.MinCount, Workers: st.workers, MinCtgLen: st.k + 10,
	}
	var table *dbg.Table
	var err error
	if st.cfg.MemBudget > 0 {
		table, err = st.countBudget(roundSeqs)
	} else {
		table, err = dbg.Count(roundSeqs, st.dcfg)
	}
	if err != nil {
		return err
	}
	for _, s := range roundSeqs {
		if len(s) >= st.k {
			st.res.Work.KmerOccurrences += int64(len(s) - st.k + 1)
		}
	}
	table.Filter(st.cfg.MinCount)
	st.res.Work.DistinctKmers += int64(table.Len())
	st.table = table
	return nil
}

// countBudget is kmerAnalysis's memory-bounded path: the round's k-mers
// are counted on the dedicated budget device under the effective budget —
// the configured budget halved once per chaos OOM event that has fired by
// this round (floored at the planner minimum). An OOM therefore degrades
// into a re-planned spill with more, smaller passes; the counts — and so
// the contigs — are unchanged, only the pass schedule grows.
func (st *runState) countBudget(roundSeqs [][]byte) (*dbg.Table, error) {
	pressure := 0
	if st.cfg.MemPressure != nil {
		pressure = st.cfg.MemPressure(st.round)
	}
	eff := st.cfg.MemBudget >> uint(pressure)
	if eff < gpucount.MinMemBudget {
		eff = gpucount.MinMemBudget
	}
	if st.cdev == nil {
		st.cdev = simt.NewDevice(simt.V100())
	}
	st.cdev.FreeAll() // the previous round's structures are dead weight
	bcfg := gpucount.BudgetConfig{MemBudget: eff, MinCount: st.cfg.MinCount}
	table, stats, err := gpucount.CountBudget(st.cdev, roundSeqs, st.k, bcfg)
	if err != nil {
		return nil, err
	}
	stats.Configured = st.cfg.MemBudget
	if newEvents := pressure - st.seenOOM; newEvents > 0 {
		stats.OOMReplans = newEvents
		st.seenOOM = pressure
	}
	// Spill passes: everything beyond the plan at the full configured
	// budget, i.e. the extra passes degradation cost this round.
	occ := 0
	for _, s := range roundSeqs {
		if len(s) >= st.k {
			occ += len(s) - st.k + 1
		}
	}
	full := gpucount.BudgetConfig{MemBudget: st.cfg.MemBudget, MinCount: st.cfg.MinCount}
	if planned, perr := gpucount.PlanPasses(occ, st.k, full); perr == nil && stats.Passes > planned {
		stats.SpillPasses = stats.Passes - planned
	}
	st.res.Work.KmerBudget.Add(stats)
	return table, nil
}

// contigGen traverses the filtered de Bruijn graph into contigs.
func (st *runState) contigGen() error {
	st.ctgs = st.table.Contigs(st.dcfg)
	st.table = nil // the table is dead weight once traversed
	st.ctgSeqs = make([][]byte, len(st.ctgs))
	for i := range st.ctgs {
		st.ctgSeqs[i] = st.ctgs[i].Seq
	}
	return nil
}

// alignment finds candidate reads per contig end (+ aln kernel) and
// snapshots the local-assembly workload before extension mutates it.
func (st *runState) alignment() error {
	withReads, err := alignCandidates(st.reads, st.ctgs, st.cfg, st.workers, st.res)
	if err != nil {
		return err
	}
	st.withReads = withReads
	// Snapshot the workload (struct copies keep the pre-extension
	// sequences; read slices are shared and never mutated).
	snapshot := make([]*locassm.CtgWithReads, len(withReads))
	for i, c := range withReads {
		cc := *c
		snapshot[i] = &cc
	}
	st.res.LAWorkload = snapshot
	return nil
}

// localAssembly extends the round's contigs through the resolved engine —
// the one call every execution substrate is behind — then applies the
// extensions and merges the engine's accounting.
func (st *runState) localAssembly() error {
	results, stats, err := st.eng.Assemble(st.k, st.withReads)
	if err != nil {
		return err
	}
	if len(results) != len(st.withReads) {
		return fmt.Errorf("pipeline: engine %s returned %d results for %d contigs",
			st.eng.Name(), len(results), len(st.withReads))
	}
	st.res.Work.GPUKernels = append(st.res.Work.GPUKernels, stats.Kernels...)
	st.res.Work.GPUKernelTime += stats.KernelTime
	st.res.Work.GPUTransferTime += stats.TransferTime
	st.res.Work.Locassm.Add(stats.Counts)

	bins := locassm.MakeBins(st.withReads, st.cfg.GPU.SmallLimit)
	st.res.Bins = append(st.res.Bins, RoundBins{
		K: st.k, Zero: len(bins.Zero), Small: len(bins.Small), Large: len(bins.Large),
	})
	st.res.Work.CandidateCtgs = len(st.withReads)

	// The extended contigs feed the next round (and the final output).
	for i := range st.withReads {
		ext := results[i].ExtendedSeq(st.withReads[i].Seq)
		st.withReads[i].Seq = ext
		st.ctgs[i].Seq = ext
		st.ctgSeqs[i] = ext
	}
	return nil
}

// saveCheckpoint persists the round's extended contigs (checkpoint I/O).
func (st *runState) saveCheckpoint() error {
	n, err := saveRound(st.cfg.CheckpointDir, st.k, st.ctgs)
	if err != nil {
		return err
	}
	st.res.Work.IOBytes += n
	return nil
}

// scaffolding joins the final contigs into scaffolds using the original
// pairs.
func (st *runState) scaffolding() error {
	scaffolds, pairsUsed, estInsert, err := runScaffolding(st.pairs, st.ctgSeqs, st.cfg, st.workers)
	if err != nil {
		return err
	}
	st.res.Scaffolds = scaffolds
	st.res.Work.ScaffoldPairs = pairsUsed
	st.res.Work.EstimatedInsert = estInsert
	return nil
}

// writeFinal serializes the outputs as the real pipeline would (file I/O),
// accumulating onto the bytes checkpointing already wrote.
func (st *runState) writeFinal() error {
	n, err := writeOutputs(io.Discard, st.res)
	if err != nil {
		return err
	}
	st.res.Work.IOBytes += n
	return nil
}
