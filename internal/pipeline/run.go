package pipeline

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/preprocess"
	"mhm2sim/internal/scaffold"
	"mhm2sim/internal/simt"
)

// Run executes the full pipeline over the paired reads.
func Run(pairs []dna.PairedRead, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{}
	res.Work.InputReads = 2 * len(pairs)
	for i := range pairs {
		res.Work.InputBases += int64(len(pairs[i].Fwd.Seq) + len(pairs[i].Rev.Seq))
	}

	// Stage: merge reads (with optional preprocessing).
	t0 := time.Now()
	if cfg.Preprocess != nil {
		// Copy the pair records: trimming rebinds slice headers and the
		// caller's slice must stay intact.
		cp := make([]dna.PairedRead, len(pairs))
		copy(cp, pairs)
		var ppStats preprocess.Stats
		var err error
		pairs, ppStats, err = preprocess.Run(cp, *cfg.Preprocess)
		if err != nil {
			return nil, err
		}
		res.Work.Preprocess = ppStats
	}
	minOverlap, maxMismatchFrac := cfg.mergeParams()
	reads := mergePairs(pairs, minOverlap, maxMismatchFrac)
	res.Timings.Add(StageMergeReads, time.Since(t0))
	res.Work.MergedReads = len(reads)

	seqs := make([][]byte, len(reads))
	for i := range reads {
		seqs[i] = reads[i].Seq
	}

	// Iterative contigging rounds (Fig 1's "Iterate for k's").
	var ctgSeqs [][]byte
	var ctgs []dbg.Contig
	skip := 0
	if cfg.CheckpointDir != "" {
		loaded, n, err := resumePoint(cfg.CheckpointDir, cfg.Rounds)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			ctgs = loaded
			ctgSeqs = make([][]byte, len(ctgs))
			for i := range ctgs {
				ctgSeqs[i] = ctgs[i].Seq
			}
			skip = n
		}
	}
	for ri, k := range cfg.Rounds {
		if ri < skip {
			continue
		}
		roundSeqs := seqs
		// Contigs from the previous round are injected (twice, so their
		// k-mers survive the singleton filter) to carry progress forward.
		for _, cs := range ctgSeqs {
			roundSeqs = append(roundSeqs, cs, cs)
		}

		// Stage: k-mer analysis.
		t0 = time.Now()
		dcfg := dbg.Config{K: k, MinCount: cfg.MinCount, Workers: workers, MinCtgLen: k + 10}
		table, err := dbg.Count(roundSeqs, dcfg)
		if err != nil {
			return nil, err
		}
		for _, s := range roundSeqs {
			if len(s) >= k {
				res.Work.KmerOccurrences += int64(len(s) - k + 1)
			}
		}
		table.Filter(cfg.MinCount)
		res.Work.DistinctKmers += int64(table.Len())
		res.Timings.Add(StageKmerAnalysis, time.Since(t0))

		// Stage: contig generation.
		t0 = time.Now()
		ctgs = table.Contigs(dcfg)
		res.Timings.Add(StageContigGen, time.Since(t0))

		// Stage: alignment (+ aln kernel) — find candidate reads per end.
		ctgSeqs = make([][]byte, len(ctgs))
		for i := range ctgs {
			ctgSeqs[i] = ctgs[i].Seq
		}
		withReads, aln, err := alignCandidates(reads, ctgs, &cfg, workers, res)
		if err != nil {
			return nil, err
		}
		_ = aln

		// Snapshot the workload before extension mutates it (struct copies
		// keep the pre-extension sequences; read slices are shared and
		// never mutated).
		snapshot := make([]*locassm.CtgWithReads, len(withReads))
		for i, c := range withReads {
			cc := *c
			snapshot[i] = &cc
		}
		res.LAWorkload = snapshot

		// Stage: local assembly.
		t0 = time.Now()
		if err := runLocalAssembly(k, withReads, &cfg, workers, res); err != nil {
			return nil, err
		}
		res.Timings.Add(StageLocalAssembly, time.Since(t0))

		bins := locassm.MakeBins(withReads, cfg.GPU.SmallLimit)
		res.Bins = append(res.Bins, RoundBins{
			K: k, Zero: len(bins.Zero), Small: len(bins.Small), Large: len(bins.Large),
		})
		res.Work.CandidateCtgs = len(withReads)

		// The extended contigs feed the next round (and the final output).
		for i := range withReads {
			ctgs[i].Seq = withReads[i].Seq
			ctgSeqs[i] = withReads[i].Seq
		}

		if cfg.CheckpointDir != "" {
			t0 = time.Now()
			n, err := saveRound(cfg.CheckpointDir, k, ctgs)
			if err != nil {
				return nil, err
			}
			res.Work.IOBytes += n
			res.Timings.Add(StageFileIO, time.Since(t0))
		}
	}
	res.Contigs = ctgs
	res.Work.ContigsGenerated = len(ctgs)
	for i := range ctgs {
		res.Work.ContigBases += int64(len(ctgs[i].Seq))
	}

	// Stage: scaffolding.
	t0 = time.Now()
	scaffolds, pairsUsed, estInsert, err := runScaffolding(pairs, ctgSeqs, &cfg, workers)
	if err != nil {
		return nil, err
	}
	res.Scaffolds = scaffolds
	res.Work.ScaffoldPairs = pairsUsed
	res.Work.EstimatedInsert = estInsert
	res.Timings.Add(StageScaffolding, time.Since(t0))

	// Stage: file I/O — serialize the outputs as the real pipeline would.
	t0 = time.Now()
	n, err := writeOutputs(io.Discard, res)
	if err != nil {
		return nil, err
	}
	res.Work.IOBytes = n
	res.Timings.Add(StageFileIO, time.Since(t0))
	return res, nil
}

// alignCandidates aligns every merged read against the round's contigs and
// buckets end-zone hits into per-contig candidate-read lists.
func alignCandidates(reads []dna.Read, ctgs []dbg.Contig, cfg *Config, workers int, res *Result) ([]*locassm.CtgWithReads, *align.Aligner, error) {
	ctgSeqs := make([][]byte, len(ctgs))
	withReads := make([]*locassm.CtgWithReads, len(ctgs))
	for i := range ctgs {
		ctgSeqs[i] = ctgs[i].Seq
		withReads[i] = &locassm.CtgWithReads{ID: ctgs[i].ID, Seq: ctgs[i].Seq, Depth: ctgs[i].Depth}
	}
	t0 := time.Now()
	aln, err := align.New(ctgSeqs, cfg.Align)
	if err != nil {
		return nil, nil, err
	}

	endZone := cfg.EndZone
	if endZone <= 0 {
		maxRead := 0
		for i := range reads {
			if len(reads[i].Seq) > maxRead {
				maxRead = len(reads[i].Seq)
			}
		}
		endZone = maxRead + 50
	}

	classify := func(h align.Hit, read dna.Read) {
		left, right := aln.EndCandidate(h, len(read.Seq), endZone)
		if !left && !right {
			return
		}
		r := read
		if h.RC {
			r = r.RevComp()
		}
		if left {
			withReads[h.CtgID].LeftReads = append(withReads[h.CtgID].LeftReads, r)
		}
		if right {
			withReads[h.CtgID].RightReads = append(withReads[h.CtgID].RightReads, r)
		}
	}

	var aligned int64
	var kernelTime time.Duration
	if cfg.UseGPUAln {
		dev := cfg.Device
		if dev == nil {
			dev = simt.NewDevice(simt.V100())
		}
		hits, found, kernelWall, kernels, err := gpuAlignReads(dev, aln, ctgSeqs, reads, workers)
		if err != nil {
			return nil, nil, err
		}
		for i := range reads {
			if !found[i] {
				continue
			}
			aligned++
			classify(hits[i], reads[i])
		}
		kernelTime = kernelWall
		res.Work.AlnGPUKernels = append(res.Work.AlnGPUKernels, kernels...)
		for _, k := range kernels {
			res.Work.AlnGPUKernelTime += k.Time
		}
	} else {
		type cand struct {
			hit  align.Hit
			read dna.Read
		}
		candCh := make(chan cand, 1024)
		var mu sync.Mutex

		var collectWG sync.WaitGroup
		collectWG.Add(1)
		go func() {
			defer collectWG.Done()
			for c := range candCh {
				classify(c.hit, c.read)
			}
		}()

		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for wk := 0; wk < workers; wk++ {
			go func() {
				defer wg.Done()
				for i := range next {
					h, ok := aln.AlignRead(reads[i].Seq)
					if !ok {
						continue
					}
					mu.Lock()
					aligned++
					mu.Unlock()
					candCh <- cand{hit: h, read: reads[i]}
				}
			}()
		}
		for i := range reads {
			next <- i
		}
		close(next)
		wg.Wait()
		close(candCh)
		collectWG.Wait()
		kernelTime = aln.KernelTime()
	}

	// Keep candidate order deterministic despite concurrent alignment.
	for i := range withReads {
		sortReads(withReads[i].LeftReads)
		sortReads(withReads[i].RightReads)
	}

	stageTime := time.Since(t0)
	if kernelTime > stageTime {
		kernelTime = stageTime
	}
	res.Timings.Add(StageAlnKernel, kernelTime)
	res.Timings.Add(StageAlignment, stageTime-kernelTime)
	res.Work.ReadsAligned += aligned
	res.Work.AlnCells += aln.Cells()
	return withReads, aln, nil
}

func sortReads(rs []dna.Read) {
	if len(rs) < 2 {
		return
	}
	// Insertion sort by ID then sequence: candidate lists are short.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && readLess(&rs[j], &rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func readLess(a, b *dna.Read) bool {
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	return bytes.Compare(a.Seq, b.Seq) < 0
}

// runLocalAssembly extends the contigs in place via the CPU reference or
// the GPU driver, following the §3.1 binning discipline — or hands the
// round to cfg.Assembler (the distributed runtime) when one is configured.
func runLocalAssembly(k int, ctgs []*locassm.CtgWithReads, cfg *Config, workers int, res *Result) error {
	if cfg.Assembler != nil {
		return cfg.Assembler.AssembleRound(k, ctgs, res)
	}
	var results []locassm.Result
	if cfg.UseGPU {
		dev := cfg.Device
		if dev == nil {
			dev = simt.NewDevice(simt.V100())
		}
		gcfg := cfg.GPU
		gcfg.Config = cfg.Locassm
		drv, err := locassm.NewDriver(dev, gcfg)
		if err != nil {
			return err
		}
		gres, err := drv.Run(ctgs)
		if err != nil {
			return err
		}
		results = gres.Results
		res.Work.GPUKernels = append(res.Work.GPUKernels, gres.Kernels...)
		res.Work.GPUKernelTime += gres.KernelTime
		res.Work.GPUTransferTime += gres.TransferTime
	} else {
		cres, err := locassm.RunCPU(ctgs, cfg.Locassm, workers)
		if err != nil {
			return err
		}
		results = cres.Results
		res.Work.Locassm.Add(cres.Counts)
	}
	for i := range ctgs {
		ctgs[i].Seq = results[i].ExtendedSeq(ctgs[i].Seq)
	}
	return nil
}

// runScaffolding aligns the original pairs against the final contigs,
// optionally estimates the library insert size from proper pairs, and
// joins spanning pairs into scaffolds.
func runScaffolding(pairs []dna.PairedRead, ctgSeqs [][]byte, cfg *Config, workers int) ([]scaffold.Scaffold, int64, int, error) {
	aln, err := align.New(ctgSeqs, cfg.Align)
	if err != nil {
		return nil, 0, 0, err
	}
	lens := make([]int, len(ctgSeqs))
	for i := range ctgSeqs {
		lens[i] = len(ctgSeqs[i])
	}

	// Phase 1: align both mates of every pair.
	type pairHits struct {
		h1, h2 align.Hit
		ok     bool
	}
	hits := make([]pairHits, len(pairs))
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for i := range next {
				h1, ok1 := aln.AlignRead(pairs[i].Fwd.Seq)
				h2, ok2 := aln.AlignRead(pairs[i].Rev.Seq)
				hits[i] = pairHits{h1: h1, h2: h2, ok: ok1 && ok2}
			}
		}()
	}
	for i := range pairs {
		next <- i
	}
	close(next)
	wg.Wait()

	// Phase 2: insert-size estimation from proper (same-contig) pairs.
	insertMean := cfg.Scaffold.InsertMean
	estimated := 0
	if cfg.EstimateInsert {
		var obs []int
		for i := range hits {
			if !hits[i].ok {
				continue
			}
			if ins, ok := scaffold.ProperPairInsert(hits[i].h1, hits[i].h2); ok {
				obs = append(obs, ins)
			}
		}
		if mean, _, ok := scaffold.EstimateInsert(obs, 50); ok {
			insertMean, estimated = mean, mean
		}
	}

	// Phase 3: votes and joining.
	var all []scaffold.Link
	var used int64
	for i := range hits {
		if !hits[i].ok {
			continue
		}
		if v, ok := scaffold.PairVote(hits[i].h1, hits[i].h2, lens, insertMean); ok {
			all = append(all, v)
			used++
		}
	}
	scfg := cfg.Scaffold
	scfg.InsertMean = insertMean
	scs, err := scaffold.Build(ctgSeqs, all, scfg)
	return scs, used, estimated, err
}

// writeOutputs serializes contigs and scaffolds as FASTA, returning bytes
// written — the file I/O stage.
func writeOutputs(w io.Writer, res *Result) (int64, error) {
	var buf bytes.Buffer
	names := make([]string, len(res.Contigs))
	seqs := make([][]byte, len(res.Contigs))
	for i := range res.Contigs {
		names[i] = fmt.Sprintf("contig_%d depth=%.2f", res.Contigs[i].ID, res.Contigs[i].Depth)
		seqs[i] = res.Contigs[i].Seq
	}
	if err := dna.WriteFASTA(&buf, names, seqs, 80); err != nil {
		return 0, err
	}
	names = names[:0]
	seqs = seqs[:0]
	for i := range res.Scaffolds {
		names = append(names, fmt.Sprintf("scaffold_%d", i))
		seqs = append(seqs, res.Scaffolds[i].Seq)
	}
	if err := dna.WriteFASTA(&buf, names, seqs, 80); err != nil {
		return 0, err
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// WriteFASTAOutputs writes the final contigs and scaffolds to w (used by
// the command-line tools).
func WriteFASTAOutputs(w io.Writer, res *Result) error {
	_, err := writeOutputs(w, res)
	return err
}
