// Engine-parity tests live in an external test package so they can pull in
// internal/dist (which imports pipeline) without a cycle: the same reads go
// through every registered execution substrate and must come out
// bit-identical — the invariant the engine registry is built on.
package pipeline_test

import (
	"bytes"
	"reflect"
	"testing"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/synth"
)

// parityPreset mirrors the in-package tests' reduced arcticsynth community.
func parityPreset() synth.Preset {
	p := synth.ArcticSynthPreset()
	p.Com.NumGenomes = 3
	p.Com.MinGenomeLen, p.Com.MaxGenomeLen = 6_000, 9_000
	p.Com.SharedFrac = 0
	p.Reads.Depth = 14
	p.Reads.ErrorRate = 0.002
	return p
}

func parityPairs(t testing.TB) []dna.PairedRead {
	t.Helper()
	_, pairs, err := parityPreset().Build()
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func parityConfig() pipeline.Config {
	cfg := pipeline.DefaultConfig()
	cfg.Rounds = []int{21, 33}
	return cfg
}

// assertSameAssembly fails unless got reproduces want contig-for-contig and
// scaffold-for-scaffold.
func assertSameAssembly(t *testing.T, engine string, want, got *pipeline.Result) {
	t.Helper()
	if len(got.Contigs) != len(want.Contigs) {
		t.Fatalf("%s: %d contigs, want %d", engine, len(got.Contigs), len(want.Contigs))
	}
	for i := range want.Contigs {
		if !bytes.Equal(got.Contigs[i].Seq, want.Contigs[i].Seq) {
			t.Fatalf("%s: contig %d differs", engine, i)
		}
	}
	if !reflect.DeepEqual(got.Scaffolds, want.Scaffolds) {
		t.Fatalf("%s: scaffolds differ", engine)
	}
}

// TestEngineParity: every registered single-process engine produces a
// bit-identical assembly for the same reads. This is the acceptance
// invariant of the engine registry — an engine that drifts by one base is a
// bug, not a variant.
func TestEngineParity(t *testing.T) {
	pairs := parityPairs(t)

	ref, err := pipeline.Run(pairs, parityConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Contigs) == 0 || len(ref.Scaffolds) == 0 {
		t.Fatal("reference cpu run produced no assembly")
	}

	for _, name := range []string{locassm.EngineGPU, locassm.EngineMultiGPU} {
		cfg := parityConfig()
		cfg.Engine.Name = name
		if name == locassm.EngineMultiGPU {
			cfg.Engine.GPUs = 3
		}
		res, err := pipeline.Run(pairs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSameAssembly(t, name, ref, res)
		if len(res.Work.GPUKernels) == 0 {
			t.Errorf("%s: no kernel launches recorded", name)
		}
	}
}

// TestEngineParityDist: the distributed runtime — the engine that can only
// be reached through dist.Run — agrees with the single-rank reference too.
func TestEngineParityDist(t *testing.T) {
	pairs := parityPairs(t)

	ref, err := pipeline.Run(pairs, parityConfig())
	if err != nil {
		t.Fatal(err)
	}

	dcfg := dist.DefaultConfig(3)
	dcfg.Pipeline.Rounds = []int{21, 33}
	res, _, err := dist.Run(pairs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAssembly(t, locassm.EngineDist, ref, res)
}

// TestEngineNamesRegistered: the dist runtime's init has reserved its name,
// so the full engine menu is visible from anywhere that imports dist.
func TestEngineNamesRegistered(t *testing.T) {
	want := []string{locassm.EngineCPU, locassm.EngineDist, locassm.EngineGPU, locassm.EngineMultiGPU}
	if got := locassm.EngineNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("EngineNames() = %v, want %v", got, want)
	}
}
