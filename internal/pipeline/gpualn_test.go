package pipeline

import (
	"bytes"
	"testing"

	"mhm2sim/internal/locassm"
)

// TestGPUAlignmentMatchesCPU verifies the ADEPT-role kernel end to end:
// running the alignment stage's SW verification on the device must leave
// the assembly unchanged (scores are exact, so candidate sets are).
func TestGPUAlignmentMatchesCPU(t *testing.T) {
	pairs := buildPairs(t)

	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	cpuRes, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	gcfg := cfg
	gcfg.UseGPUAln = true
	gpuRes, err := Run(pairs, gcfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(cpuRes.Contigs) != len(gpuRes.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(cpuRes.Contigs), len(gpuRes.Contigs))
	}
	diff := 0
	for i := range cpuRes.Contigs {
		if !bytes.Equal(cpuRes.Contigs[i].Seq, gpuRes.Contigs[i].Seq) {
			diff++
		}
	}
	// Scores are exact; span tie-breaks can differ in rare cases, but the
	// assemblies must be essentially identical.
	if diff > len(cpuRes.Contigs)/50 {
		t.Errorf("%d of %d contigs differ between CPU and GPU alignment", diff, len(cpuRes.Contigs))
	}
	if len(gpuRes.Work.AlnGPUKernels) == 0 || gpuRes.Work.AlnGPUKernelTime <= 0 {
		t.Error("aln kernel accounting missing")
	}
	if gpuRes.Timings.Wall[StageAlnKernel] <= 0 {
		t.Error("aln kernel stage time missing")
	}
}

// TestFullGPUPipeline runs both GPU modules together (alignment + local
// assembly), the configuration closest to the paper's GPU MetaHipMer2.
func TestFullGPUPipeline(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	cfg.Engine.Name = locassm.EngineGPU
	cfg.UseGPUAln = true
	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) == 0 || len(res.Scaffolds) == 0 {
		t.Fatal("full-GPU pipeline produced no assembly")
	}
	if len(res.Work.GPUKernels) == 0 || len(res.Work.AlnGPUKernels) == 0 {
		t.Error("kernel accounting incomplete")
	}
}
