package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/preprocess"
	"mhm2sim/internal/synth"
)

// smallPreset builds a fast test community.
func smallPreset() synth.Preset {
	p := synth.ArcticSynthPreset()
	p.Com.NumGenomes = 3
	p.Com.MinGenomeLen, p.Com.MaxGenomeLen = 6_000, 9_000
	p.Com.SharedFrac = 0
	p.Reads.Depth = 14
	p.Reads.ErrorRate = 0.002
	return p
}

func testPipelineConfig() Config {
	cfg := DefaultConfig()
	cfg.Rounds = []int{21, 33}
	return cfg
}

func buildPairs(t testing.TB) []dna.PairedRead {
	t.Helper()
	_, pairs, err := smallPreset().Build()
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func TestMergePairsOverlap(t *testing.T) {
	genome := []byte("ACGGTTAACCGGATCCGGAAGGTTCCAATTGGCCTTAGGACTGACTGAACGGTCCAAGGTT")
	frag := genome[:50]
	fwd := dna.Read{ID: "p/1", Seq: append([]byte(nil), frag[:30]...), Qual: bytes.Repeat([]byte("I"), 30)}
	rev := dna.Read{ID: "p/2", Seq: dna.RevComp(frag[20:]), Qual: bytes.Repeat([]byte("I"), 30)}
	out := mergePairs([]dna.PairedRead{{Fwd: fwd, Rev: rev}}, 5, 0.1)
	if len(out) != 1 {
		t.Fatalf("pair did not merge: %d reads out", len(out))
	}
	if string(out[0].Seq) != string(frag) {
		t.Errorf("merged read:\n got %s\nwant %s", out[0].Seq, frag)
	}
	if len(out[0].Qual) != len(out[0].Seq) {
		t.Error("merged qualities length mismatch")
	}
}

func TestMergePairsNoOverlap(t *testing.T) {
	fwd := dna.Read{ID: "p/1", Seq: []byte("AAAAAAAAAACCCCCCCCCC"), Qual: bytes.Repeat([]byte("I"), 20)}
	rev := dna.Read{ID: "p/2", Seq: []byte("ACGTAGCTAGGATCCATGCA"), Qual: bytes.Repeat([]byte("I"), 20)}
	out := mergePairs([]dna.PairedRead{{Fwd: fwd, Rev: rev}}, 10, 0.05)
	if len(out) != 2 {
		t.Fatalf("non-overlapping pair merged: %d reads out", len(out))
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testPipelineConfig()
	cfg.Rounds = nil
	if cfg.Validate() == nil {
		t.Error("empty rounds accepted")
	}
	cfg = testPipelineConfig()
	cfg.Rounds = []int{33, 21}
	if cfg.Validate() == nil {
		t.Error("non-increasing rounds accepted")
	}
	cfg = testPipelineConfig()
	cfg.MinCount = 0
	if cfg.Validate() == nil {
		t.Error("MinCount 0 accepted")
	}
	cfg = testPipelineConfig()
	cfg.MergeMinOverlap = -1
	if cfg.Validate() == nil {
		t.Error("negative MergeMinOverlap accepted")
	}
	cfg = testPipelineConfig()
	cfg.MergeMaxMismatchFrac = 1.5
	if cfg.Validate() == nil {
		t.Error("MergeMaxMismatchFrac ≥ 1 accepted")
	}
	cfg = testPipelineConfig()
	cfg.MergeMaxMismatchFrac = -0.1
	if cfg.Validate() == nil {
		t.Error("negative MergeMaxMismatchFrac accepted")
	}
}

func TestMergeParamDefaults(t *testing.T) {
	var cfg Config // zero-valued: both parameters fall back to defaults
	ov, mm := cfg.mergeParams()
	if ov != DefaultMergeMinOverlap || mm != DefaultMergeMaxMismatchFrac {
		t.Errorf("zero config resolved to (%d, %g)", ov, mm)
	}
	cfg.MergeMinOverlap, cfg.MergeMaxMismatchFrac = 35, 0.02
	if ov, mm = cfg.mergeParams(); ov != 35 || mm != 0.02 {
		t.Errorf("explicit params not honored: (%d, %g)", ov, mm)
	}
}

// TestMergeConfigChangesMerging: a min overlap larger than the true overlap
// must prevent the pair from merging, proving the lifted parameters reach
// the merge stage.
func TestMergeConfigChangesMerging(t *testing.T) {
	genome := []byte("ACGGTTAACCGGATCCGGAAGGTTCCAATTGGCCTTAGGACTGACTGAACGGTCCAAGGTT")
	frag := genome[:50]
	fwd := dna.Read{ID: "p/1", Seq: append([]byte(nil), frag[:30]...), Qual: bytes.Repeat([]byte("I"), 30)}
	rev := dna.Read{ID: "p/2", Seq: dna.RevComp(frag[20:]), Qual: bytes.Repeat([]byte("I"), 30)}
	pairs := []dna.PairedRead{{Fwd: fwd, Rev: rev}}

	loose := Config{MergeMinOverlap: 5, MergeMaxMismatchFrac: 0.1}
	ov, mm := loose.mergeParams()
	if out := mergePairs(pairs, ov, mm); len(out) != 1 {
		t.Fatalf("overlap 10 with min 5: pair did not merge (%d reads)", len(out))
	}
	strict := Config{MergeMinOverlap: 15, MergeMaxMismatchFrac: 0.1}
	ov, mm = strict.mergeParams()
	if out := mergePairs(pairs, ov, mm); len(out) != 2 {
		t.Fatalf("overlap 10 with min 15: pair merged anyway")
	}
}

func TestStageString(t *testing.T) {
	if StageLocalAssembly.String() != "local assembly" {
		t.Error("stage name wrong")
	}
	if Stage(99).String() != "unknown" {
		t.Error("out of range stage")
	}
}

func TestPipelineEndToEndCPU(t *testing.T) {
	pairs := buildPairs(t)
	res, err := Run(pairs, testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("no contigs assembled")
	}
	if len(res.Scaffolds) == 0 {
		t.Fatal("no scaffolds")
	}
	// Sanity on assembly quality: the largest contig should be a large
	// multiple of the read length.
	maxLen := 0
	var totalLen int64
	for _, c := range res.Contigs {
		if len(c.Seq) > maxLen {
			maxLen = len(c.Seq)
		}
		totalLen += int64(len(c.Seq))
	}
	if maxLen < 1000 {
		t.Errorf("largest contig only %d bases", maxLen)
	}
	// Timings: every stage ran (StageComm stays zero — a single-rank run
	// never touches the simulated fabric).
	for s := Stage(0); s < NumStages; s++ {
		if s == StageComm {
			if res.Timings.Wall[s] != 0 {
				t.Errorf("single-rank run recorded comm time %v", res.Timings.Wall[s])
			}
			continue
		}
		if res.Timings.Wall[s] <= 0 {
			t.Errorf("stage %s recorded no time", s)
		}
	}
	if res.Timings.Total() <= 0 {
		t.Error("total time not positive")
	}
	// Work record populated.
	w := res.Work
	if w.InputReads != 2*len(pairs) || w.MergedReads == 0 || w.KmerOccurrences == 0 ||
		w.DistinctKmers == 0 || w.ReadsAligned == 0 || w.AlnCells == 0 ||
		w.Locassm.KmersInserted == 0 || w.IOBytes == 0 {
		t.Errorf("work record incomplete: %+v", w)
	}
	// Bin stats recorded per round.
	if len(res.Bins) != 2 {
		t.Fatalf("bin stats for %d rounds, want 2", len(res.Bins))
	}
	for _, b := range res.Bins {
		if b.Zero+b.Small+b.Large == 0 {
			t.Errorf("round k=%d: empty bins", b.K)
		}
	}
}

func TestPipelineGPUMatchesCPUContigs(t *testing.T) {
	pairs := buildPairs(t)

	cpuRes, err := Run(pairs, testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	gcfg := testPipelineConfig()
	gcfg.Engine.Name = locassm.EngineGPU
	gpuRes, err := Run(pairs, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpuRes.Contigs) != len(gpuRes.Contigs) {
		t.Fatalf("contig counts differ: %d vs %d", len(cpuRes.Contigs), len(gpuRes.Contigs))
	}
	for i := range cpuRes.Contigs {
		if !bytes.Equal(cpuRes.Contigs[i].Seq, gpuRes.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between CPU and GPU local assembly", i)
		}
	}
	if gpuRes.Work.GPUKernelTime <= 0 || len(gpuRes.Work.GPUKernels) == 0 {
		t.Error("GPU work record not populated")
	}
}

func TestPipelineLocalAssemblyGrowsContigs(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With one round, local assembly should have extended at least some
	// contigs beyond pure de Bruijn traversal: compare against a run whose
	// local assembly is effectively disabled (MaxWalkLen=1 permits almost
	// nothing).
	cfg2 := cfg
	cfg2.Locassm.MaxWalkLen = 1
	res2, err := Run(pairs, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var grown, base int64
	for _, c := range res.Contigs {
		grown += int64(len(c.Seq))
	}
	for _, c := range res2.Contigs {
		base += int64(len(c.Seq))
	}
	if grown <= base {
		t.Errorf("local assembly added no bases: %d vs %d", grown, base)
	}
}

func TestWriteFASTAOutputs(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFASTAOutputs(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ">contig_") || !strings.Contains(out, ">scaffold_") {
		t.Error("FASTA output missing records")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	a, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("contig counts differ across identical runs: %d vs %d", len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i].Seq, b.Contigs[i].Seq) {
			t.Fatalf("contig %d not deterministic", i)
		}
	}
}

func TestPipelineWithPreprocessing(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	pp := preprocess.DefaultConfig()
	cfg.Preprocess = &pp

	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Work.Preprocess.PairsIn != len(pairs) {
		t.Errorf("preprocess saw %d pairs, want %d", res.Work.Preprocess.PairsIn, len(pairs))
	}
	if res.Work.Preprocess.PairsOut == 0 {
		t.Error("preprocessing dropped everything")
	}
	if len(res.Contigs) == 0 {
		t.Error("no contigs after preprocessing")
	}
	// Caller's pairs must be untouched (preprocessing works on copies).
	for i := range pairs {
		if len(pairs[i].Fwd.Seq) != 150 {
			t.Fatalf("caller's read %d was trimmed in place", i)
		}
	}
}

func TestPipelineInsertEstimation(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.Rounds = []int{21}
	cfg.EstimateInsert = true
	// Deliberately wrong configured insert: estimation should recover the
	// truth (the preset samples ~350 bp fragments).
	cfg.Scaffold.InsertMean = 1000

	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Work.EstimatedInsert == 0 {
		t.Fatal("insert size not estimated")
	}
	if res.Work.EstimatedInsert < 280 || res.Work.EstimatedInsert > 420 {
		t.Errorf("estimated insert %d, truth ~350", res.Work.EstimatedInsert)
	}
}
