package pipeline

import (
	"reflect"
	"strings"
	"testing"

	"mhm2sim/internal/gpucount"
)

// TestBudgetRunBitIdentical is the pipeline-level determinism guarantee
// of budget mode: counting through the Bloom prefilter and multi-pass
// partitioned tables must yield bit-identical contigs and scaffolds to
// the unbounded host count, because the filter drops only sub-MinCount
// k-mers the error filter would drop anyway and pass counts are exact.
func TestBudgetRunBitIdentical(t *testing.T) {
	pairs := buildPairs(t)
	base, err := Run(pairs, testPipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Contigs) == 0 {
		t.Fatal("baseline run degenerate: no contigs")
	}

	cfg := testPipelineConfig()
	cfg.MemBudget = 8 << 20
	res, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Contigs, base.Contigs) {
		t.Error("budget-mode contigs differ from the unbounded run")
	}
	if !reflect.DeepEqual(res.Scaffolds, base.Scaffolds) {
		t.Error("budget-mode scaffolds differ from the unbounded run")
	}
	kb := res.Work.KmerBudget
	if kb.Passes < len(cfg.Rounds) {
		t.Errorf("budget run executed %d passes over %d rounds", kb.Passes, len(cfg.Rounds))
	}
	if kb.Configured != cfg.MemBudget || kb.Effective != cfg.MemBudget {
		t.Errorf("budget accounting: %+v", kb)
	}
	if kb.FilteredSingletons == 0 {
		t.Error("error reads present but the prefilter rejected nothing")
	}
	if kb.OOMReplans != 0 || kb.SpillPasses != 0 {
		t.Errorf("fault-free run recorded degradation: %+v", kb)
	}
	// A second budget run is bit-identical (fresh counting device).
	res2, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Contigs, res.Contigs) {
		t.Error("budget-mode contigs differ across identical runs")
	}
	if !reflect.DeepEqual(res2.Work.KmerBudget, kb) {
		t.Errorf("budget accounting differs across identical runs:\n%+v\n%+v", res2.Work.KmerBudget, kb)
	}
}

// TestBudgetOOMPressure: an OOM event halves the effective budget, which
// re-plans counting into more, smaller passes — same contigs, nonzero
// degradation counters.
func TestBudgetOOMPressure(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testPipelineConfig()
	cfg.MemBudget = 8 << 20
	base, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	press := testPipelineConfig()
	press.MemBudget = 8 << 20
	press.MemPressure = func(round int) int { return 1 } // one sticky OOM event before round 0
	res, err := Run(pairs, press)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Contigs, base.Contigs) {
		t.Error("OOM-degraded contigs differ from the fault-free budget run")
	}
	kb := res.Work.KmerBudget
	if kb.OOMReplans != 1 {
		t.Errorf("one sticky OOM event recorded %d replans (events are counted once)", kb.OOMReplans)
	}
	if kb.SpillPasses == 0 {
		t.Error("halved budget did not add spill passes")
	}
	if kb.Passes <= base.Work.KmerBudget.Passes {
		t.Errorf("degraded run passes %d ≤ fault-free %d", kb.Passes, base.Work.KmerBudget.Passes)
	}
	if kb.Effective >= kb.Configured {
		t.Errorf("effective budget %d not shrunk below configured %d", kb.Effective, kb.Configured)
	}
}

func TestValidateMemBudget(t *testing.T) {
	cfg := testPipelineConfig()
	cfg.MemBudget = -1
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "MemBudget") {
		t.Errorf("negative budget: %v", err)
	}
	cfg.MemBudget = gpucount.MinMemBudget - 1
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "minimum") {
		t.Errorf("sub-minimum budget: %v", err)
	}
	cfg.MemBudget = gpucount.MinMemBudget
	if err := cfg.Validate(); err != nil {
		t.Errorf("minimum budget rejected: %v", err)
	}
	cfg.MemBudget = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("unset budget rejected: %v", err)
	}
}
