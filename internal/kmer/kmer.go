// Package kmer implements fixed-capacity packed k-mers for k ≤ 128, the
// unit of work for k-mer analysis, de Bruijn graph construction, and the
// local-assembly hash tables.
//
// A Kmer packs bases two bits each into four uint64 words, ordered so that
// numeric word comparison equals lexicographic base comparison (base 0 sits
// in the top bits of word 0). That makes canonicalization — picking the
// lexicographically smaller of a k-mer and its reverse complement — a plain
// word compare.
package kmer

import (
	"fmt"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/murmur"
)

// MaxK is the largest supported k-mer length.
const MaxK = 128

// Words is the number of uint64 words backing a Kmer.
const Words = MaxK / 32

// Kmer is a packed DNA string of up to MaxK bases. The zero Kmer is the
// all-'A' string (of whatever length the caller tracks); lengths are carried
// alongside k-mers, not inside them, since every container in the assembler
// holds k-mers of a single length.
type Kmer struct {
	W [Words]uint64
}

// Get returns the 2-bit code of base i.
func (k Kmer) Get(i int) byte {
	return byte(k.W[i>>5]>>(62-2*(uint(i)&31))) & 3
}

// set stores the 2-bit code c at base i (no bounds checks beyond the array).
func (k *Kmer) set(i int, c byte) {
	sh := 62 - 2*(uint(i)&31)
	w := &k.W[i>>5]
	*w = *w&^(3<<sh) | uint64(c)<<sh
}

// FromBytes packs the first k bases of seq. It reports ok=false if seq is
// shorter than k or contains an ambiguous base in the window.
func FromBytes(seq []byte, k int) (Kmer, bool) {
	var km Kmer
	if k < 1 || k > MaxK || len(seq) < k {
		return km, false
	}
	for i := 0; i < k; i++ {
		c, valid := dna.Code(seq[i])
		if !valid {
			return Kmer{}, false
		}
		km.set(i, c)
	}
	return km, true
}

// MustFromString packs a string, panicking on invalid input; intended for
// tests and examples.
func MustFromString(s string) Kmer {
	km, ok := FromBytes([]byte(s), len(s))
	if !ok {
		panic(fmt.Sprintf("kmer: invalid k-mer %q", s))
	}
	return km
}

// Bytes unpacks the k-mer into ASCII bases.
func (k Kmer) Bytes(klen int) []byte {
	out := make([]byte, klen)
	for i := 0; i < klen; i++ {
		out[i] = dna.Alphabet[k.Get(i)]
	}
	return out
}

// String unpacks assuming the caller's length; provided via Sprint helper.
func (k Kmer) String(klen int) string { return string(k.Bytes(klen)) }

// Append drops the first base and appends code c at position klen-1,
// producing the next k-mer of a rightward walk.
func (k Kmer) Append(klen int, c byte) Kmer {
	var out Kmer
	for j := 0; j < Words; j++ {
		out.W[j] = k.W[j] << 2
		if j+1 < Words {
			out.W[j] |= k.W[j+1] >> 62
		}
	}
	out.set(klen-1, c)
	out.clearTail(klen)
	return out
}

// Prepend drops the last base and prepends code c at position 0, producing
// the next k-mer of a leftward walk.
func (k Kmer) Prepend(klen int, c byte) Kmer {
	var out Kmer
	for j := Words - 1; j >= 0; j-- {
		out.W[j] = k.W[j] >> 2
		if j > 0 {
			out.W[j] |= k.W[j-1] << 62
		}
	}
	out.set(0, c)
	out.clearTail(klen)
	return out
}

// clearTail zeroes every bit beyond base klen-1 so that equality and
// comparison are well defined.
func (k *Kmer) clearTail(klen int) {
	if klen >= MaxK {
		return
	}
	word := klen >> 5
	rem := uint(klen) & 31
	if rem != 0 {
		k.W[word] &= ^uint64(0) << (64 - 2*rem)
		word++
	}
	for ; word < Words; word++ {
		k.W[word] = 0
	}
}

// RevComp returns the reverse complement at length klen.
func (k Kmer) RevComp(klen int) Kmer {
	var out Kmer
	for i := 0; i < klen; i++ {
		out.set(klen-1-i, k.Get(i)^3) // 2-bit complement is XOR 3 (A<->T, C<->G)
	}
	return out
}

// Less reports lexicographic order (valid because of the packing layout).
func (k Kmer) Less(o Kmer) bool {
	for j := 0; j < Words; j++ {
		if k.W[j] != o.W[j] {
			return k.W[j] < o.W[j]
		}
	}
	return false
}

// Canonical returns the lexicographically smaller of k and its reverse
// complement, plus whether k itself was already canonical.
func (k Kmer) Canonical(klen int) (Kmer, bool) {
	rc := k.RevComp(klen)
	if rc.Less(k) {
		return rc, false
	}
	return k, true
}

// Hash returns the MurmurHash2 of the packed representation. Only the words
// covering klen bases participate, so equal k-mers hash equally regardless
// of history.
func (k Kmer) Hash(seed uint64) uint64 {
	h := seed
	for j := 0; j < Words; j += 2 {
		h = murmur.Hash64Word(k.W[j], k.W[j+1], h)
	}
	return h
}

// HashK hashes only the word pairs covering klen bases, skipping the zeroed
// tail words that Hash would mix in. For klen ≤ 64 that is a single
// Hash64Word call, which is what makes it the hash of choice for hot
// fixed-length probe loops (the host visited set hashes every walk cursor
// through here). Two k-mers of the same klen hash equally iff their packed
// prefixes are equal; hashes are only comparable at equal klen.
func (k Kmer) HashK(klen int, seed uint64) uint64 {
	h := seed
	pairs := (klen + 63) / 64 // word pairs covering klen 2-bit bases
	for j := 0; j < 2*pairs; j += 2 {
		h = murmur.Hash64Word(k.W[j], k.W[j+1], h)
	}
	return h
}

// ForEach calls fn for every valid k-mer window of seq, skipping windows
// that contain ambiguous bases. pos is the window's start offset in seq.
func ForEach(seq []byte, k int, fn func(pos int, km Kmer)) {
	if k < 1 || k > MaxK || len(seq) < k {
		return
	}
	var km Kmer
	valid := 0 // number of consecutive valid bases ending at i
	for i := 0; i < len(seq); i++ {
		c, ok := dna.Code(seq[i])
		if !ok {
			valid = 0
			km = Kmer{}
			continue
		}
		km = km.Append(k, c)
		if valid < k {
			valid++
		}
		if valid >= k {
			fn(i-k+1, km)
		}
	}
}

// Count returns the number of valid k-mer windows in seq.
func Count(seq []byte, k int) int {
	n := 0
	ForEach(seq, k, func(int, Kmer) { n++ })
	return n
}
