package kmer

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mhm2sim/internal/dna"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dna.Alphabet[rng.Intn(4)]
	}
	return s
}

func TestFromBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 2, 21, 31, 32, 33, 63, 64, 65, 96, 127, 128} {
		seq := randSeq(rng, k)
		km, ok := FromBytes(seq, k)
		if !ok {
			t.Fatalf("k=%d: FromBytes failed", k)
		}
		if got := km.String(k); got != string(seq) {
			t.Errorf("k=%d: round trip %q != %q", k, got, seq)
		}
	}
}

func TestFromBytesRejects(t *testing.T) {
	if _, ok := FromBytes([]byte("ACGN"), 4); ok {
		t.Error("accepted ambiguous base")
	}
	if _, ok := FromBytes([]byte("ACG"), 4); ok {
		t.Error("accepted short sequence")
	}
	if _, ok := FromBytes(randSeq(rand.New(rand.NewSource(1)), 200), MaxK+1); ok {
		t.Error("accepted k > MaxK")
	}
	if _, ok := FromBytes([]byte("ACG"), 0); ok {
		t.Error("accepted k = 0")
	}
}

func TestAppendMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{2, 21, 32, 33, 64, 65, 128} {
		seq := randSeq(rng, k+40)
		km, _ := FromBytes(seq, k)
		for i := k; i < len(seq); i++ {
			c, _ := dna.Code(seq[i])
			km = km.Append(k, c)
			want := string(seq[i-k+1 : i+1])
			if got := km.String(k); got != want {
				t.Fatalf("k=%d step %d: %q != %q", k, i, got, want)
			}
		}
	}
}

func TestPrependMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{2, 21, 33, 64, 96} {
		seq := randSeq(rng, k+20)
		km, _ := FromBytes(seq[20:], k)
		for i := 19; i >= 0; i-- {
			c, _ := dna.Code(seq[i])
			km = km.Prepend(k, c)
			want := string(seq[i : i+k])
			if got := km.String(k); got != want {
				t.Fatalf("k=%d step %d: %q != %q", k, i, got, want)
			}
		}
	}
}

func TestRevCompMatchesDNA(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, k := range []int{1, 21, 32, 55, 99, 128} {
		seq := randSeq(rng, k)
		km, _ := FromBytes(seq, k)
		want := string(dna.RevComp(seq))
		if got := km.RevComp(k).String(k); got != want {
			t.Errorf("k=%d: revcomp %q != %q", k, got, want)
		}
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		k := len(raw)
		if k > MaxK {
			k = MaxK
		}
		seq := make([]byte, k)
		for i := range seq {
			seq[i] = dna.Alphabet[raw[i]%4]
		}
		km, _ := FromBytes(seq, k)
		return km.RevComp(k).RevComp(k) == km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessMatchesLexicographic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(MaxK)
		a, b := randSeq(rng, k), randSeq(rng, k)
		ka, _ := FromBytes(a, k)
		kb, _ := FromBytes(b, k)
		want := string(a) < string(b)
		if got := ka.Less(kb); got != want {
			t.Fatalf("k=%d: Less(%q,%q)=%v want %v", k, a, b, got, want)
		}
	}
}

func TestCanonicalProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(64)
		seq := randSeq(rng, k)
		km, _ := FromBytes(seq, k)
		canon, isSelf := km.Canonical(k)
		rcCanon, _ := km.RevComp(k).Canonical(k)
		if canon != rcCanon {
			t.Fatalf("k=%d %q: canonical not invariant under revcomp", k, seq)
		}
		if isSelf && canon != km {
			t.Fatalf("isSelf=true but canon differs")
		}
		if canon.RevComp(k).Less(canon) {
			t.Fatalf("canonical form is not minimal")
		}
	}
}

func TestHashEqualityAndSpread(t *testing.T) {
	a := MustFromString("ACGTACGTACGTACGTACGTA")
	b := MustFromString("ACGTACGTACGTACGTACGTA")
	if a.Hash(1) != b.Hash(1) {
		t.Error("equal k-mers hash differently")
	}
	c := MustFromString("ACGTACGTACGTACGTACGTC")
	if a.Hash(1) == c.Hash(1) {
		t.Error("suspicious collision between distinct k-mers")
	}
	if a.Hash(1) == a.Hash(2) {
		t.Error("seed ignored")
	}
}

// TestHashKProperties: HashK agrees with building the k-mer fresh (history
// independence through clearTail), distinguishes distinct k-mers, and only
// mixes the words a klen actually covers — so two k-mers differing beyond
// klen hash equally at klen.
func TestHashKProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, klen := range []int{4, 21, 32, 33, 63, 64, 65, 127, 128} {
		s := randSeq(rng, klen)
		a, _ := FromBytes(s, klen)

		// Same k-mer arrived at by rolling: identical hash.
		rolled := Kmer{}
		for _, b := range s {
			c, _ := dna.Code(b)
			rolled = rolled.Append(klen, c)
		}
		if rolled.HashK(klen, 7) != a.HashK(klen, 7) {
			t.Errorf("klen=%d: rolled k-mer hashes differently", klen)
		}

		s2 := append([]byte(nil), s...)
		s2[klen-1] = dna.Alphabet[(s2[klen-1]-'A'+1)%4] // any different base
		b2, ok := FromBytes(s2, klen)
		if ok && a.HashK(klen, 7) == b2.HashK(klen, 7) {
			t.Errorf("klen=%d: suspicious collision", klen)
		}
		if a.HashK(klen, 7) == a.HashK(klen, 8) {
			t.Errorf("klen=%d: seed ignored", klen)
		}
	}

	// klen ≤ 64 must ignore the upper words entirely.
	var x, y Kmer
	x.W[2], y.W[2] = 0xdead, 0xbeef
	if x.HashK(64, 1) != y.HashK(64, 1) {
		t.Error("HashK(64) mixed words beyond the covered pair")
	}
}

func TestForEachWindows(t *testing.T) {
	seq := []byte("ACGTACGTAC")
	k := 4
	var got []string
	ForEach(seq, k, func(pos int, km Kmer) {
		if want := string(seq[pos : pos+k]); km.String(k) != want {
			t.Fatalf("pos %d: %q != %q", pos, km.String(k), want)
		}
		got = append(got, km.String(k))
	})
	if len(got) != len(seq)-k+1 {
		t.Fatalf("got %d windows, want %d", len(got), len(seq)-k+1)
	}
}

func TestForEachSkipsAmbiguous(t *testing.T) {
	seq := []byte("ACGTNACGTA")
	var got []string
	ForEach(seq, 4, func(pos int, km Kmer) {
		got = append(got, km.String(4))
	})
	want := []string{"ACGT", "ACGT", "CGTA"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("got %v want %v", got, want)
	}
	if Count(seq, 4) != 3 {
		t.Errorf("Count = %d, want 3", Count(seq, 4))
	}
}

func TestForEachShortInput(t *testing.T) {
	if Count([]byte("ACG"), 4) != 0 {
		t.Error("short input should yield no windows")
	}
	if Count(nil, 4) != 0 {
		t.Error("nil input should yield no windows")
	}
}

func TestClearTailIsolation(t *testing.T) {
	// Two k-mers with the same klen prefix but built through different
	// histories must be equal.
	long := MustFromString("ACGTACGTACGTACGTACGTACGTACGTACGTACGT")
	k := 8
	var a Kmer
	for i := 0; i < k; i++ {
		a = a.Append(k, long.Get(i))
	}
	b, _ := FromBytes([]byte("ACGTACGT"), k)
	if a != b {
		t.Errorf("histories leak into representation: %q vs %q", a.String(k), b.String(k))
	}
}

func BenchmarkAppendK21(b *testing.B) {
	km := MustFromString("ACGTACGTACGTACGTACGTA")
	for i := 0; i < b.N; i++ {
		km = km.Append(21, byte(i)&3)
	}
}

func BenchmarkForEachK21Read150(b *testing.B) {
	seq := randSeq(rand.New(rand.NewSource(9)), 150)
	b.SetBytes(150)
	for i := 0; i < b.N; i++ {
		ForEach(seq, 21, func(int, Kmer) {})
	}
}

func BenchmarkHash(b *testing.B) {
	km := MustFromString("ACGTACGTACGTACGTACGTA")
	for i := 0; i < b.N; i++ {
		_ = km.Hash(uint64(i))
	}
}
