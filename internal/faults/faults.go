// Package faults is the seeded, deterministic fault-injection plane of the
// distributed runtime. A Plan is generated once from a spec string
// ("rank-crash=1,oom=2,drop=3"), a seed, and the run's shape (ranks ×
// rounds); the dist runtime, the simt devices, and the locassm batch driver
// query it at well-defined points — round boundaries, kernel launches,
// fabric exchanges — and exercise their recovery paths when an event fires.
//
// Determinism is the design center: all event placement happens up front
// from a seeded PRNG, and every query is a pure lookup over the event list,
// so the injected schedule is identical regardless of goroutine scheduling.
// That is what lets the chaos tests assert the headline invariant — any
// schedule that does not exhaust the retry budgets yields bit-identical
// contigs and scaffolds to the fault-free run.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

const (
	// RankCrash kills a rank at a round boundary; its virtual shards are
	// re-dealt to the survivors.
	RankCrash Kind = iota
	// DeviceOOM poisons a rank's GPU before a round: every subsequent
	// kernel launch fails and the rank degrades to its host engine.
	DeviceOOM
	// KernelAbort makes one batch launch on a rank fail with a table-full
	// fault, exercising the driver's batch re-split path.
	KernelAbort
	// FabricDrop loses an exchange's aggregated messages: the stage times
	// out and is retried with backoff.
	FabricDrop
	// FabricCorrupt corrupts an exchange's payload: detected at ejection
	// (after the full transfer time) and retried.
	FabricCorrupt
	// FabricDelay is a latency spike multiplying one exchange's time.
	FabricDelay
	// Straggler slows one rank's compute for one round by a factor.
	Straggler
	// RankJoin adds a fresh rank to the collective at a round boundary: the
	// membership epoch bumps and the joiner receives whole virtual shards
	// from the incremental re-deal. Event.Rank is the new rank's ID, always
	// ≥ the run's initial rank count (joined ranks extend the ID space, they
	// never reuse an evicted slot).
	RankJoin

	numKinds
)

// specNames maps spec-string keys to kinds, in the order events are
// generated (fixed, so plans are reproducible).
var specNames = []struct {
	name string
	kind Kind
}{
	{"rank-crash", RankCrash},
	{"oom", DeviceOOM},
	{"kernel-abort", KernelAbort},
	{"drop", FabricDrop},
	{"corrupt", FabricCorrupt},
	{"delay", FabricDelay},
	{"straggler", Straggler},
	{"join", RankJoin},
}

// String names the kind as it appears in spec strings.
func (k Kind) String() string {
	for _, s := range specNames {
		if s.kind == k {
			return s.name
		}
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// Rank targets crash/OOM/abort/straggler events.
	Rank int
	// Round is the 0-based contigging round at which the event fires.
	Round int
	// Exchange is the 0-based ordinal of the fabric exchange targeted by
	// drop/corrupt/delay events (exchange 0 is the read scatter; each
	// round then performs a read exchange and a contig allgather).
	Exchange int
	// Times is how many consecutive attempts of the exchange fail before
	// the retry succeeds (drop/corrupt).
	Times int
	// Factor scales time for delay (exchange time) and straggler (rank
	// compute) events.
	Factor float64
}

// Plan is a fully materialized fault schedule for one run shape.
type Plan struct {
	Seed   int64
	Ranks  int
	Rounds int
	Events []Event
}

// ParseSpec parses "kind=count,kind=count" into per-kind counts.
func ParseSpec(spec string) (map[Kind]int, error) {
	counts := make(map[Kind]int)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not kind=count", field)
		}
		var kind Kind = numKinds
		for _, s := range specNames {
			if s.name == strings.TrimSpace(name) {
				kind = s.kind
				break
			}
		}
		if kind == numKinds {
			return nil, fmt.Errorf("faults: unknown fault kind %q", name)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faults: bad count %q for %s", val, kind)
		}
		counts[kind] += n
	}
	return counts, nil
}

// NewPlan materializes a schedule: the spec's per-kind counts are placed at
// seeded-random (rank, round, exchange) coordinates. The same (spec, seed,
// ranks, rounds) always yields the same plan. Crash events target distinct
// ranks and are capped so at least one rank survives the whole run.
func NewPlan(spec string, seed int64, ranks, rounds int) (*Plan, error) {
	if ranks < 1 || rounds < 1 {
		return nil, fmt.Errorf("faults: plan needs ≥1 rank and ≥1 round, got %d×%d", ranks, rounds)
	}
	counts, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if counts[RankCrash] > ranks-1 {
		return nil, fmt.Errorf("faults: %d rank crashes would leave no survivor among %d ranks",
			counts[RankCrash], ranks)
	}
	rng := rand.New(rand.NewSource(seed))
	exchanges := 1 + 2*rounds // scatter + per-round (read exchange, allgather)
	p := &Plan{Seed: seed, Ranks: ranks, Rounds: rounds}
	crashed := make(map[int]bool)
	joins := 0
	for _, s := range specNames {
		for i := 0; i < counts[s.kind]; i++ {
			ev := Event{Kind: s.kind}
			switch s.kind {
			case RankCrash:
				r := rng.Intn(ranks)
				for crashed[r] {
					r = rng.Intn(ranks)
				}
				crashed[r] = true
				ev.Rank, ev.Round = r, rng.Intn(rounds)
			case DeviceOOM, KernelAbort:
				ev.Rank, ev.Round = rng.Intn(ranks), rng.Intn(rounds)
			case FabricDrop, FabricCorrupt:
				ev.Exchange = 1 + rng.Intn(exchanges-1)
				ev.Times = 1 + rng.Intn(2)
			case FabricDelay:
				ev.Exchange = 1 + rng.Intn(exchanges-1)
				ev.Factor = 2 + 8*rng.Float64()
			case Straggler:
				ev.Rank, ev.Round = rng.Intn(ranks), rng.Intn(rounds)
				ev.Factor = 1.5 + 2.5*rng.Float64()
			case RankJoin:
				// Joined ranks extend the ID space past the initial count,
				// numbered in generation order so the capacity is the ID
				// ceiling.
				ev.Rank, ev.Round = ranks+joins, rng.Intn(rounds)
				joins++
			}
			p.Events = append(p.Events, ev)
		}
	}
	return p, nil
}

// Capacity is the rank ID ceiling of the plan: the initial ranks plus every
// scheduled join. Elastic runtimes size their per-rank state to it.
func (p *Plan) Capacity() int {
	if p == nil {
		return 0
	}
	n := p.Ranks
	for _, ev := range p.Events {
		if ev.Kind == RankJoin {
			n++
		}
	}
	return n
}

// Merge concatenates another plan's events onto this one (both must share
// the run shape). Either side may be nil; the result is nil only when both
// are. The CLI uses it to combine an -elastic membership schedule with a
// random -faults schedule into the single plan the runtime consumes.
func (p *Plan) Merge(q *Plan) (*Plan, error) {
	if p == nil {
		return q, nil
	}
	if q == nil {
		return p, nil
	}
	if p.Ranks != q.Ranks || p.Rounds != q.Rounds {
		return nil, fmt.Errorf("faults: cannot merge plans of shape %d×%d and %d×%d",
			p.Ranks, p.Rounds, q.Ranks, q.Rounds)
	}
	m := &Plan{Seed: p.Seed, Ranks: p.Ranks, Rounds: p.Rounds}
	m.Events = append(append(m.Events, p.Events...), q.Events...)
	return m, nil
}

// ParseElastic materializes a membership schedule spec — comma-separated
// "join@r<round>:<count>" and "leave@r<round>:<count>" entries, e.g.
// "join@r1:2,leave@r1:1" — into a plan of RankJoin and RankCrash events for
// a run of the given initial ranks and rounds. Joins mint fresh rank IDs
// (ranks, ranks+1, …) in spec order; a leave deterministically retires the
// highest-numbered rank still live at its round — the autoscaler's
// scale-down convention — so the whole schedule is a pure function of the
// spec and the run shape. Joins at a round are applied before leaves at the
// same round, matching the runtime's round-boundary order. A schedule that
// would leave no live rank at any round is rejected.
func ParseElastic(spec string, ranks, rounds int) (*Plan, error) {
	if ranks < 1 || rounds < 1 {
		return nil, fmt.Errorf("faults: elastic schedule needs ≥1 rank and ≥1 round, got %d×%d", ranks, rounds)
	}
	type entry struct {
		join         bool
		round, count int
	}
	var entries []entry
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		verb, rest, ok := strings.Cut(field, "@")
		if !ok {
			return nil, fmt.Errorf("faults: elastic entry %q is not join@r<round>:<count> or leave@r<round>:<count>", field)
		}
		var e entry
		switch strings.TrimSpace(verb) {
		case "join":
			e.join = true
		case "leave":
		default:
			return nil, fmt.Errorf("faults: elastic entry %q: unknown verb %q (join|leave)", field, verb)
		}
		at, cnt, ok := strings.Cut(rest, ":")
		if !ok || !strings.HasPrefix(at, "r") {
			return nil, fmt.Errorf("faults: elastic entry %q is not %s@r<round>:<count>", field, verb)
		}
		round, err := strconv.Atoi(strings.TrimPrefix(at, "r"))
		if err != nil || round < 0 {
			return nil, fmt.Errorf("faults: elastic entry %q: bad round %q", field, at)
		}
		if round >= rounds {
			return nil, fmt.Errorf("faults: elastic entry %q targets round %d of a %d-round run", field, round, rounds)
		}
		n, err := strconv.Atoi(strings.TrimSpace(cnt))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faults: elastic entry %q: bad count %q", field, cnt)
		}
		e.round, e.count = round, n
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("faults: empty elastic schedule %q", spec)
	}
	// Replay the schedule in round order (joins before leaves within a
	// round) to mint join IDs and resolve each leave to a concrete rank.
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].round != entries[j].round {
			return entries[i].round < entries[j].round
		}
		return entries[i].join && !entries[j].join
	})
	p := &Plan{Ranks: ranks, Rounds: rounds}
	live := make([]bool, ranks)
	for r := range live {
		live[r] = true
	}
	for _, e := range entries {
		for i := 0; i < e.count; i++ {
			if e.join {
				p.Events = append(p.Events, Event{Kind: RankJoin, Rank: len(live), Round: e.round})
				live = append(live, true)
				continue
			}
			victim := -1
			for r := len(live) - 1; r >= 0; r-- {
				if live[r] {
					victim = r
					break
				}
			}
			alive := 0
			for _, a := range live {
				if a {
					alive++
				}
			}
			if alive <= 1 {
				return nil, fmt.Errorf("faults: elastic schedule %q leaves no live rank at round %d", spec, e.round)
			}
			live[victim] = false
			p.Events = append(p.Events, Event{Kind: RankCrash, Rank: victim, Round: e.round})
		}
	}
	return p, nil
}

// Validate checks the plan is usable for a run of the given shape: every
// targeted rank must exist within the plan's capacity (initial ranks plus
// joins), joined rank IDs must be distinct and ≥ the initial count, and a
// replay of the membership schedule (joins before crashes at each round
// boundary, the runtime's order) must keep at least one rank live at every
// round.
func (p *Plan) Validate(ranks int) error {
	if p == nil {
		return nil
	}
	if p.Ranks != ranks {
		return fmt.Errorf("faults: plan built for %d ranks, run has %d", p.Ranks, ranks)
	}
	capacity := p.Capacity()
	joined := make(map[int]bool)
	maxRound := -1
	for _, ev := range p.Events {
		if ev.Kind >= numKinds {
			return fmt.Errorf("faults: unknown event kind %d", ev.Kind)
		}
		switch ev.Kind {
		case RankCrash, DeviceOOM, KernelAbort, Straggler:
			if ev.Rank < 0 || ev.Rank >= capacity {
				return fmt.Errorf("faults: %s targets rank %d of capacity %d", ev.Kind, ev.Rank, capacity)
			}
		case RankJoin:
			if ev.Rank < ranks || ev.Rank >= capacity {
				return fmt.Errorf("faults: join mints rank %d outside (%d..%d)", ev.Rank, ranks, capacity-1)
			}
			if joined[ev.Rank] {
				return fmt.Errorf("faults: rank %d joins twice", ev.Rank)
			}
			joined[ev.Rank] = true
		}
		if ev.Round > maxRound {
			maxRound = ev.Round
		}
	}
	// Replay: the live count must never drop to zero at a round boundary.
	live := make([]bool, capacity)
	for r := 0; r < ranks; r++ {
		live[r] = true
	}
	alive := ranks
	for round := 0; round <= maxRound; round++ {
		for _, ev := range p.Events {
			if ev.Kind == RankJoin && ev.Round == round && !live[ev.Rank] {
				live[ev.Rank] = true
				alive++
			}
		}
		for _, ev := range p.Events {
			if ev.Kind == RankCrash && ev.Round == round && live[ev.Rank] {
				live[ev.Rank] = false
				alive--
			}
		}
		if alive < 1 {
			return fmt.Errorf("faults: schedule leaves no live rank at round %d", round)
		}
	}
	return nil
}

// String renders the schedule compactly ("rank-crash r2@round1; drop x2@ex3").
func (p *Plan) String() string {
	if p == nil || len(p.Events) == 0 {
		return "no faults"
	}
	parts := make([]string, len(p.Events))
	for i, ev := range p.Events {
		switch ev.Kind {
		case FabricDrop, FabricCorrupt:
			parts[i] = fmt.Sprintf("%s x%d@ex%d", ev.Kind, ev.Times, ev.Exchange)
		case FabricDelay:
			parts[i] = fmt.Sprintf("%s %.1fx@ex%d", ev.Kind, ev.Factor, ev.Exchange)
		case Straggler:
			parts[i] = fmt.Sprintf("%s %.1fx r%d@round%d", ev.Kind, ev.Factor, ev.Rank, ev.Round)
		default:
			parts[i] = fmt.Sprintf("%s r%d@round%d", ev.Kind, ev.Rank, ev.Round)
		}
	}
	return strings.Join(parts, "; ")
}

// Spec reconstructs the kind=count spec string the plan's events amount
// to, in the canonical kind order ("rank-crash=1,oom=2"). Empty plans
// yield "".
func (p *Plan) Spec() string {
	if p == nil {
		return ""
	}
	counts := make(map[Kind]int)
	for _, ev := range p.Events {
		counts[ev.Kind]++
	}
	var parts []string
	for _, s := range specNames {
		if n := counts[s.kind]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", s.name, n))
		}
	}
	return strings.Join(parts, ",")
}

// Reseed materializes a fresh plan with the same fault mix and run shape
// but a different seed. Because plans are deterministic, retrying a run
// that exhausted its retry budgets under the *same* plan fails identically
// forever; a job-level retry (internal/service) must reseed so the new
// attempt draws a different schedule — exactly as a real rerun lands on
// different hardware and timing.
func (p *Plan) Reseed(seed int64) (*Plan, error) {
	if p == nil {
		return nil, nil
	}
	return NewPlan(p.Spec(), seed, p.Ranks, p.Rounds)
}

// Injector answers runtime queries against a plan. All methods are safe on
// a nil receiver (no faults) and safe for concurrent use: queries are pure
// lookups, so answers do not depend on call order.
type Injector struct {
	plan *Plan
}

// NewInjector wraps a plan; a nil plan yields a nil (inert) injector.
func NewInjector(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	return &Injector{plan: p}
}

// CrashesAt returns the ranks scheduled to crash at the given round
// boundary, in ascending rank order.
func (in *Injector) CrashesAt(round int) []int {
	if in == nil {
		return nil
	}
	var ranks []int
	for _, ev := range in.plan.Events {
		if ev.Kind == RankCrash && ev.Round == round {
			ranks = append(ranks, ev.Rank)
		}
	}
	sort.Ints(ranks)
	return ranks
}

// JoinsAt returns the rank IDs scheduled to join at the given round
// boundary, in ascending order. The runtime applies joins before crashes,
// so a round may both admit ranks and evict them.
func (in *Injector) JoinsAt(round int) []int {
	if in == nil {
		return nil
	}
	var ranks []int
	for _, ev := range in.plan.Events {
		if ev.Kind == RankJoin && ev.Round == round {
			ranks = append(ranks, ev.Rank)
		}
	}
	sort.Ints(ranks)
	return ranks
}

// DeviceFault reports whether the rank's device is scheduled to fail at the
// given round (it stays failed for the rest of the run).
func (in *Injector) DeviceFault(rank, round int) bool {
	if in == nil {
		return false
	}
	for _, ev := range in.plan.Events {
		if ev.Kind == DeviceOOM && ev.Rank == rank && ev.Round <= round {
			return true
		}
	}
	return false
}

// OOMCount returns how many DeviceOOM events (across all ranks) have
// fired by the given round, sticky like DeviceFault. Budget-mode runs use
// it as memory pressure: instead of poisoning a device, each event halves
// the effective counting budget — OOM degrades into a re-planned spill
// rather than a device→host fallback.
func (in *Injector) OOMCount(round int) int {
	if in == nil {
		return 0
	}
	n := 0
	for _, ev := range in.plan.Events {
		if ev.Kind == DeviceOOM && ev.Round <= round {
			n++
		}
	}
	return n
}

// KernelAborts returns how many batch launches on the rank should abort
// with a table-full fault during the given round.
func (in *Injector) KernelAborts(rank, round int) int {
	if in == nil {
		return 0
	}
	n := 0
	for _, ev := range in.plan.Events {
		if ev.Kind == KernelAbort && ev.Rank == rank && ev.Round == round {
			n++
		}
	}
	return n
}

// ExchangeFailures returns how many consecutive attempts of the given
// exchange (by ordinal) fail, and whether any failure is a corruption
// (detected after the transfer) rather than a drop (detected by timeout).
func (in *Injector) ExchangeFailures(exchange int) (times int, corrupt bool) {
	if in == nil {
		return 0, false
	}
	for _, ev := range in.plan.Events {
		if ev.Exchange != exchange {
			continue
		}
		switch ev.Kind {
		case FabricDrop:
			times += ev.Times
		case FabricCorrupt:
			times += ev.Times
			corrupt = true
		}
	}
	return times, corrupt
}

// ExchangeDelay returns the latency-spike factor for the exchange (1 when
// none is scheduled).
func (in *Injector) ExchangeDelay(exchange int) float64 {
	if in == nil {
		return 1
	}
	factor := 1.0
	for _, ev := range in.plan.Events {
		if ev.Kind == FabricDelay && ev.Exchange == exchange {
			factor *= ev.Factor
		}
	}
	return factor
}

// StragglerFactor returns the compute slowdown of the rank in the round (1
// when none is scheduled).
func (in *Injector) StragglerFactor(rank, round int) float64 {
	if in == nil {
		return 1
	}
	factor := 1.0
	for _, ev := range in.plan.Events {
		if ev.Kind == Straggler && ev.Rank == rank && ev.Round == round {
			factor *= ev.Factor
		}
	}
	return factor
}
