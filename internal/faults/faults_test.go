package faults

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	counts, err := ParseSpec("rank-crash=1, oom=2,drop=3")
	if err != nil {
		t.Fatal(err)
	}
	want := map[Kind]int{RankCrash: 1, DeviceOOM: 2, FabricDrop: 3}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("ParseSpec = %v, want %v", counts, want)
	}
	if counts, err := ParseSpec(""); err != nil || len(counts) != 0 {
		t.Errorf("empty spec: %v, %v", counts, err)
	}
	for _, bad := range []string{"bogus=1", "oom", "oom=x", "oom=-1", "=2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	spec := "rank-crash=1,oom=2,kernel-abort=1,drop=2,corrupt=1,delay=1,straggler=2"
	a, err := NewPlan(spec, 42, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(spec, 42, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same (spec, seed, shape) produced different plans")
	}
	c, err := NewPlan(spec, 43, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical event placement")
	}
	if len(a.Events) != 10 {
		t.Errorf("plan has %d events, want 10", len(a.Events))
	}
	if err := a.Validate(8); err != nil {
		t.Errorf("generated plan fails validation: %v", err)
	}
	if err := a.Validate(4); err == nil {
		t.Error("plan for 8 ranks validated against 4")
	}
}

func TestNewPlanBounds(t *testing.T) {
	// Crashes capped so at least one rank survives.
	if _, err := NewPlan("rank-crash=2", 1, 2, 3); err == nil {
		t.Error("2 crashes on 2 ranks accepted")
	}
	p, err := NewPlan("rank-crash=3", 7, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, ev := range p.Events {
		if seen[ev.Rank] {
			t.Errorf("rank %d crashed twice", ev.Rank)
		}
		seen[ev.Rank] = true
		if ev.Rank < 0 || ev.Rank >= 4 || ev.Round < 0 || ev.Round >= 2 {
			t.Errorf("event out of bounds: %+v", ev)
		}
	}
	if _, err := NewPlan("oom=1", 1, 0, 3); err == nil {
		t.Error("0 ranks accepted")
	}
}

func TestInjectorQueries(t *testing.T) {
	p := &Plan{Ranks: 4, Rounds: 3, Events: []Event{
		{Kind: RankCrash, Rank: 2, Round: 1},
		{Kind: RankCrash, Rank: 0, Round: 1},
		{Kind: DeviceOOM, Rank: 1, Round: 1},
		{Kind: KernelAbort, Rank: 3, Round: 0},
		{Kind: FabricDrop, Exchange: 2, Times: 2},
		{Kind: FabricCorrupt, Exchange: 2, Times: 1},
		{Kind: FabricDelay, Exchange: 4, Factor: 3},
		{Kind: Straggler, Rank: 1, Round: 2, Factor: 2.5},
	}}
	in := NewInjector(p)

	if got := in.CrashesAt(1); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("CrashesAt(1) = %v", got)
	}
	if got := in.CrashesAt(0); got != nil {
		t.Errorf("CrashesAt(0) = %v", got)
	}
	if in.DeviceFault(1, 0) {
		t.Error("device faulted before its round")
	}
	if !in.DeviceFault(1, 1) || !in.DeviceFault(1, 2) {
		t.Error("device fault not sticky from its round on")
	}
	if in.DeviceFault(0, 2) {
		t.Error("wrong rank's device faulted")
	}
	if n := in.KernelAborts(3, 0); n != 1 {
		t.Errorf("KernelAborts(3,0) = %d", n)
	}
	if n := in.KernelAborts(3, 1); n != 0 {
		t.Errorf("KernelAborts(3,1) = %d", n)
	}
	times, corrupt := in.ExchangeFailures(2)
	if times != 3 || !corrupt {
		t.Errorf("ExchangeFailures(2) = %d, %v", times, corrupt)
	}
	if times, corrupt := in.ExchangeFailures(3); times != 0 || corrupt {
		t.Errorf("ExchangeFailures(3) = %d, %v", times, corrupt)
	}
	if f := in.ExchangeDelay(4); f != 3 {
		t.Errorf("ExchangeDelay(4) = %v", f)
	}
	if f := in.ExchangeDelay(2); f != 1 {
		t.Errorf("ExchangeDelay(2) = %v", f)
	}
	if f := in.StragglerFactor(1, 2); f != 2.5 {
		t.Errorf("StragglerFactor(1,2) = %v", f)
	}
	if f := in.StragglerFactor(1, 1); f != 1 {
		t.Errorf("StragglerFactor(1,1) = %v", f)
	}
}

func TestInjectorNilSafe(t *testing.T) {
	var in *Injector
	if in != NewInjector(nil) {
		t.Error("NewInjector(nil) is not nil")
	}
	if in.CrashesAt(0) != nil || in.DeviceFault(0, 0) || in.KernelAborts(0, 0) != 0 {
		t.Error("nil injector reported faults")
	}
	if times, corrupt := in.ExchangeFailures(0); times != 0 || corrupt {
		t.Error("nil injector reported exchange failures")
	}
	if in.ExchangeDelay(0) != 1 || in.StragglerFactor(0, 0) != 1 {
		t.Error("nil injector scaled time")
	}
	var p *Plan
	if err := p.Validate(4); err != nil {
		t.Errorf("nil plan validation: %v", err)
	}
	if s := p.String(); s != "no faults" {
		t.Errorf("nil plan String = %q", s)
	}
}

func TestPlanString(t *testing.T) {
	p, err := NewPlan("rank-crash=1,drop=1", 42, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "rank-crash") || !strings.Contains(s, "drop") {
		t.Errorf("String() = %q", s)
	}
}

func TestPlanSpecRoundTrip(t *testing.T) {
	spec := "rank-crash=1,oom=2,drop=1,straggler=1"
	p, err := NewPlan(spec, 42, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Spec(); got != spec {
		t.Errorf("Spec() = %q, want %q", got, spec)
	}
	var nilPlan *Plan
	if nilPlan.Spec() != "" {
		t.Error("nil plan Spec not empty")
	}
}

// TestPlanReseed: a reseeded plan keeps the fault mix and run shape but
// draws a fresh schedule — the property job-level retries depend on, since
// retrying the identical deterministic plan fails identically.
func TestPlanReseed(t *testing.T) {
	p, err := NewPlan("rank-crash=1,oom=2,drop=2", 42, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := p.Reseed(43)
	if err != nil {
		t.Fatal(err)
	}
	if q.Spec() != p.Spec() || q.Ranks != p.Ranks || q.Rounds != p.Rounds {
		t.Errorf("reseed changed the mix/shape: %q %dx%d vs %q %dx%d",
			q.Spec(), q.Ranks, q.Rounds, p.Spec(), p.Ranks, p.Rounds)
	}
	if q.Seed == p.Seed {
		t.Error("reseed kept the seed")
	}
	same, err := p.Reseed(42)
	if err != nil {
		t.Fatal(err)
	}
	if same.String() != p.String() {
		t.Error("reseed with the original seed is not reproducible")
	}
	var nilPlan *Plan
	if np, err := nilPlan.Reseed(7); np != nil || err != nil {
		t.Errorf("nil plan Reseed = %v, %v", np, err)
	}
}
