package faults

import (
	"strings"
	"testing"
)

// TestParseElastic pins the schedule materialization: join IDs minted in
// spec order from the initial rank count, leaves resolving to the
// highest-numbered live rank, joins before leaves within a round.
func TestParseElastic(t *testing.T) {
	p, err := ParseElastic("join@r1:2,leave@r1:1", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ranks != 4 || p.Rounds != 3 {
		t.Fatalf("plan shape %d×%d, want 4×3", p.Ranks, p.Rounds)
	}
	want := []Event{
		{Kind: RankJoin, Rank: 4, Round: 1},
		{Kind: RankJoin, Rank: 5, Round: 1},
		// The leave at the same round runs after the joins, so it retires
		// the youngest joiner.
		{Kind: RankCrash, Rank: 5, Round: 1},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(p.Events), len(want), p.Events)
	}
	for i, ev := range p.Events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	if got := p.Capacity(); got != 6 {
		t.Errorf("Capacity = %d, want 6 (4 initial + 2 joins)", got)
	}
	if err := p.Validate(4); err != nil {
		t.Errorf("parsed schedule fails validation: %v", err)
	}
}

// TestParseElasticLeaveOrder: leaves across rounds retire the highest
// still-live rank at each point of the replay.
func TestParseElasticLeaveOrder(t *testing.T) {
	p, err := ParseElastic("leave@r0:1,join@r1:1,leave@r2:1", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: RankCrash, Rank: 2, Round: 0}, // highest initial rank
		{Kind: RankJoin, Rank: 3, Round: 1},
		{Kind: RankCrash, Rank: 3, Round: 2}, // the joiner is now highest
	}
	for i, ev := range p.Events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

// TestParseElasticErrors enumerates the rejection paths with their spec
// shapes.
func TestParseElasticErrors(t *testing.T) {
	cases := []struct {
		spec string
		frag string // expected error fragment
	}{
		{"", "empty elastic"},
		{"join@r1", "is not join@r<round>:<count>"},
		{"grow@r1:1", "unknown verb"},
		{"join@1:1", "is not join@r<round>:<count>"},
		{"join@rX:1", "bad round"},
		{"join@r-1:1", "bad round"},
		{"join@r5:1", "targets round 5 of a 2-round run"},
		{"join@r1:0", "bad count"},
		{"join@r1:x", "bad count"},
		{"leave@r0:3", "leaves no live rank"},
		{"leave@r0:1,leave@r1:2", "leaves no live rank"},
	}
	for _, c := range cases {
		_, err := ParseElastic(c.spec, 3, 2)
		if err == nil {
			t.Errorf("spec %q accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("spec %q: error %q lacks %q", c.spec, err, c.frag)
		}
	}
	if _, err := ParseElastic("join@r0:1", 0, 2); err == nil {
		t.Error("zero initial ranks accepted")
	}
}

// TestPlanMerge: shape-checked event concatenation with nil-safety on both
// sides.
func TestPlanMerge(t *testing.T) {
	var nilPlan *Plan
	if m, err := nilPlan.Merge(nil); err != nil || m != nil {
		t.Errorf("nil.Merge(nil) = %v, %v; want nil, nil", m, err)
	}
	p := &Plan{Ranks: 2, Rounds: 2, Events: []Event{{Kind: Straggler, Rank: 0, Round: 0, Factor: 4}}}
	if m, err := nilPlan.Merge(p); err != nil || m != p {
		t.Errorf("nil.Merge(p) did not pass p through: %v, %v", m, err)
	}
	if m, err := p.Merge(nil); err != nil || m != p {
		t.Errorf("p.Merge(nil) did not pass p through: %v, %v", m, err)
	}
	q, err := ParseElastic("join@r1:1", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Merge(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Events) != 2 {
		t.Errorf("merged %d events, want 2", len(m.Events))
	}
	if m.Capacity() != 3 {
		t.Errorf("merged capacity %d, want 3", m.Capacity())
	}
	if _, err := p.Merge(&Plan{Ranks: 4, Rounds: 2}); err == nil {
		t.Error("shape-mismatched merge accepted")
	}
}

// TestValidateJoins: the replay-based validation accepts converging
// schedules and rejects out-of-range or duplicated join IDs and schedules
// that kill every rank.
func TestValidateJoins(t *testing.T) {
	good := &Plan{Ranks: 2, Rounds: 2, Events: []Event{
		{Kind: RankJoin, Rank: 2, Round: 0},
		{Kind: RankCrash, Rank: 0, Round: 1},
	}}
	if err := good.Validate(2); err != nil {
		t.Errorf("converging join schedule rejected: %v", err)
	}
	bad := []*Plan{
		// Join ID below the initial rank count (would reuse a slot).
		{Ranks: 2, Rounds: 2, Events: []Event{{Kind: RankJoin, Rank: 1, Round: 0}}},
		// Duplicate join ID.
		{Ranks: 2, Rounds: 2, Events: []Event{
			{Kind: RankJoin, Rank: 2, Round: 0}, {Kind: RankJoin, Rank: 2, Round: 1}}},
		// Crashing both initial ranks with no joiner to carry on.
		{Ranks: 2, Rounds: 2, Events: []Event{
			{Kind: RankCrash, Rank: 0, Round: 0}, {Kind: RankCrash, Rank: 1, Round: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(2); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p.Events)
		}
	}
}

// TestJoinsAt: the injector surfaces each round's joins in ascending rank
// order.
func TestJoinsAt(t *testing.T) {
	p, err := ParseElastic("join@r1:2,join@r0:1", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(p)
	if got := in.JoinsAt(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("JoinsAt(0) = %v, want [2]", got)
	}
	if got := in.JoinsAt(1); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Errorf("JoinsAt(1) = %v, want [3 4]", got)
	}
	if got := in.JoinsAt(2); len(got) != 0 {
		t.Errorf("JoinsAt(2) = %v, want empty", got)
	}
	var nilIn *Injector
	if got := nilIn.JoinsAt(0); got != nil {
		t.Errorf("nil injector JoinsAt = %v, want nil", got)
	}
}
