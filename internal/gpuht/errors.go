package gpuht

import (
	"errors"

	"mhm2sim/internal/simt"
)

// Sentinel errors returned by the insert/lookup hot paths. These used to be
// panics; the batch driver recovers from both by re-splitting the offending
// batch, so they must be typed, matchable errors rather than process aborts.
var (
	// ErrTableFull means a probe sequence visited every slot without
	// finding space or a match: the table was sized too small for the
	// batch.
	ErrTableFull = errors.New("gpuht: table full")

	// ErrNoConverge means a warp-lockstep probe loop exceeded its bound
	// without every lane finishing — some lane's table cannot make
	// progress.
	ErrNoConverge = errors.New("gpuht: probe loop did not converge")

	// ErrProbeCycle means a visited-set walk probed more slots than the
	// set's capacity — cycle detection itself ran out of room. It is
	// deliberately distinct from ErrTableFull: a full k-mer table means
	// "the data does not fit" (the budget planner answers with another
	// pass), while a probe cycle means the walk bookkeeping was
	// undersized. Both stay recoverable by batch re-splitting.
	ErrProbeCycle = errors.New("gpuht: visited-set probe cycle")
)

// maxLaneCapacity returns the largest active lane's capacity — the probe
// bound for the per-lane-table loops.
func maxLaneCapacity(mask simt.Mask, capacity *[simt.WarpSize]uint64) uint64 {
	maxCap := uint64(0)
	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) && capacity[lane] > maxCap {
			maxCap = capacity[lane]
		}
	}
	return maxCap
}
