package gpuht

import (
	"math"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/simt"
)

func testDevice() *simt.Device {
	cfg := simt.V100()
	cfg.GlobalMemBytes = 1 << 26
	return simt.NewDevice(cfg)
}

// buildArena stages reads contiguously on the device with 8 bytes of slack
// (HashKmers may over-read up to 7 bytes) and returns the arena base plus
// each read's starting offset.
func buildArena(t *testing.T, d *simt.Device, reads [][]byte) (simt.Ptr, []uint32) {
	t.Helper()
	total := 8
	offs := make([]uint32, len(reads))
	for i, r := range reads {
		offs[i] = uint32(total - 8)
		total += len(r)
	}
	base, err := d.Malloc(int64(total))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		d.WriteBytes(base+simt.Ptr(offs[i]), r)
	}
	return base, offs
}

// newTable allocates and clears a table of the given capacity.
func newTable(t *testing.T, d *simt.Device, seqBase simt.Ptr, k, slots int) Table {
	t.Helper()
	base, err := d.Malloc(Bytes(slots))
	if err != nil {
		t.Fatal(err)
	}
	tab := Table{Base: base, Capacity: uint64(slots), SeqBase: seqBase, K: k}
	_, err = d.Launch(simt.KernelConfig{Name: "clear", Warps: 2}, func(w *simt.Warp) {
		ClearEntries(w, base, slots, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// refExts builds the reference k-mer table with plain Go maps.
func refExts(reads [][]byte, quals [][]byte, k int) map[string]Ext {
	ref := map[string]Ext{}
	for ri, r := range reads {
		for i := 0; i+k <= len(r); i++ {
			key := string(r[i : i+k])
			e := ref[key]
			e.Count++
			if i+k < len(r) {
				c, _ := dna.Code(r[i+k])
				if quals == nil || dna.QualScore(quals[ri][i+k]) >= dna.QualCutoff {
					e.Hi[c]++
				} else {
					e.Lo[c]++
				}
			}
			ref[key] = e
		}
	}
	return ref
}

// insertAll inserts every k-mer of every read through InsertBatch, packing
// lanes with consecutive k-mers as the v2 kernel does.
func insertAll(t *testing.T, d *simt.Device, tab Table, reads [][]byte, quals [][]byte, offs []uint32) {
	t.Helper()
	type kentry struct {
		off uint32
		ext byte
		hiq bool
	}
	var all []kentry
	for ri, r := range reads {
		for i := 0; i+tab.K <= len(r); i++ {
			e := kentry{off: offs[ri] + uint32(i), ext: NoExt}
			if i+tab.K < len(r) {
				c, _ := dna.Code(r[i+tab.K])
				e.ext = c
				e.hiq = quals == nil || dna.QualScore(quals[ri][i+tab.K]) >= dna.QualCutoff
			}
			all = append(all, e)
		}
	}
	_, err := d.Launch(simt.KernelConfig{Name: "insert", Warps: 1, Sequential: true}, func(w *simt.Warp) {
		for start := 0; start < len(all); start += simt.WarpSize {
			var mask, hiq simt.Mask
			var keyOffs, extBases simt.Vec
			for lane := 0; lane < simt.WarpSize && start+lane < len(all); lane++ {
				e := all[start+lane]
				mask |= simt.LaneMask(lane)
				keyOffs[lane] = uint64(e.off)
				extBases[lane] = uint64(e.ext)
				if e.hiq {
					hiq |= simt.LaneMask(lane)
				}
			}
			if err := tab.InsertBatch(w, mask, &keyOffs, &extBases, hiq); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// lookupAll fetches each key via LookupLane on a fresh kernel.
func lookupAll(t *testing.T, d *simt.Device, tab Table, arena simt.Ptr, keys map[string]uint32) map[string]Ext {
	t.Helper()
	got := map[string]Ext{}
	_, err := d.Launch(simt.KernelConfig{Name: "lookup", Warps: 1, Sequential: true}, func(w *simt.Warp) {
		for key, off := range keys {
			e, ok := tab.LookupLane(w, 0, uint64(arena)+uint64(off))
			if !ok {
				t.Errorf("key %q not found", key)
				continue
			}
			got[key] = e
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestHostSlots: power-of-two capacities with load factor ≤ 0.5 over the
// exact k-mer bound, and 0 for empty builds.
func TestHostSlots(t *testing.T) {
	if HostSlots(0) != 0 || HostSlots(-3) != 0 {
		t.Error("HostSlots of empty build should be 0")
	}
	for _, n := range []int{1, 2, 3, 7, 64, 100, 1000, 1 << 20} {
		s := HostSlots(n)
		if s&(s-1) != 0 {
			t.Errorf("HostSlots(%d) = %d not a power of two", n, s)
		}
		if s < 2*n {
			t.Errorf("HostSlots(%d) = %d gives load factor > 0.5", n, s)
		}
		if s >= 4*n {
			t.Errorf("HostSlots(%d) = %d over-allocates", n, s)
		}
	}
}

func TestLoadFactorBound(t *testing.T) {
	// §3.2: worst case (300-21+1)/300 ≈ 0.93.
	lf := LoadFactor(300, 21)
	if math.Abs(lf-0.9333) > 0.001 {
		t.Errorf("LoadFactor(300,21) = %.4f, want ≈0.9333", lf)
	}
	for _, k := range []int{21, 33, 55, 77, 99} {
		for _, l := range []int{100, 150, 300} {
			if k > l {
				continue
			}
			lf := LoadFactor(l, k)
			if lf > 0.9334 {
				t.Errorf("LoadFactor(%d,%d) = %.4f exceeds the paper bound", l, k, lf)
			}
			if MaxKmers(l, k, 7) > SlotsPerExtension(l, 7) {
				t.Errorf("sizing violates capacity for l=%d k=%d", l, k)
			}
		}
	}
	if LoadFactor(10, 20) != 0 || LoadFactor(0, 1) != 0 {
		t.Error("degenerate load factors should be 0")
	}
}

func TestInsertLookupSingleRead(t *testing.T) {
	d := testDevice()
	reads := [][]byte{[]byte("ACGTACGGTACC")}
	k := 4
	arena, offs := buildArena(t, d, reads)
	tab := newTable(t, d, arena, k, SlotsPerExtension(len(reads[0]), 1))
	insertAll(t, d, tab, reads, nil, offs)

	ref := refExts(reads, nil, k)
	keys := map[string]uint32{}
	for i := 0; i+k <= len(reads[0]); i++ {
		keys[string(reads[0][i:i+k])] = offs[0] + uint32(i)
	}
	got := lookupAll(t, d, tab, arena, keys)
	for key, want := range ref {
		if got[key] != want {
			t.Errorf("key %s: got %+v want %+v", key, got[key], want)
		}
	}
}

func TestInsertThreadCollision(t *testing.T) {
	// All 32 lanes insert the identical k-mer: one claims, 31 match.
	d := testDevice()
	reads := [][]byte{[]byte("AAAATTTT")}
	k := 8
	arena, offs := buildArena(t, d, reads)
	tab := newTable(t, d, arena, k, 64)
	_, err := d.Launch(simt.KernelConfig{Name: "collide", Warps: 1}, func(w *simt.Warp) {
		keyOffs := simt.Splat(uint64(offs[0]))
		extBases := simt.Splat(uint64(NoExt))
		if err := tab.InsertBatch(w, simt.FullMask, &keyOffs, &extBases, 0); err != nil {
			t.Error(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var got Ext
	_, err = d.Launch(simt.KernelConfig{Name: "lk", Warps: 1}, func(w *simt.Warp) {
		got, _ = tab.LookupLane(w, 0, uint64(arena)+uint64(offs[0]))
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 32 {
		t.Errorf("count = %d, want 32", got.Count)
	}
}

func TestInsertHashCollisionProbing(t *testing.T) {
	// A tiny table forces linear probing among distinct k-mers.
	d := testDevice()
	reads := [][]byte{[]byte("ACGTGCA")} // 4 distinct 4-mers
	k := 4
	arena, offs := buildArena(t, d, reads)
	tab := newTable(t, d, arena, k, 4) // exactly as many slots as k-mers
	insertAll(t, d, tab, reads, nil, offs)
	keys := map[string]uint32{}
	for i := 0; i+k <= len(reads[0]); i++ {
		keys[string(reads[0][i:i+k])] = offs[0] + uint32(i)
	}
	got := lookupAll(t, d, tab, arena, keys)
	for key := range keys {
		if got[key].Count == 0 {
			t.Errorf("key %s lost under full-table probing", key)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	d := testDevice()
	reads := [][]byte{[]byte("ACGTACGT"), []byte("GGGGGGGG")}
	k := 8
	arena, offs := buildArena(t, d, reads)
	tab := newTable(t, d, arena, k, 32)
	// Insert only the first read's k-mer.
	insertAll(t, d, tab, reads[:1], nil, offs[:1])
	_, err := d.Launch(simt.KernelConfig{Name: "miss", Warps: 1}, func(w *simt.Warp) {
		if _, ok := tab.LookupLane(w, 0, uint64(arena)+uint64(offs[1])); ok {
			t.Error("found a k-mer that was never inserted")
		}
		if _, ok := tab.LookupLane(w, 0, uint64(arena)+uint64(offs[0])); !ok {
			t.Error("lost the k-mer that was inserted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInsertLaneMatchesBatch(t *testing.T) {
	// v1 (single-lane) and v2 (warp) construction must build identical
	// tables.
	d := testDevice()
	rng := rand.New(rand.NewSource(21))
	read := make([]byte, 60)
	for i := range read {
		read[i] = dna.Alphabet[rng.Intn(4)]
	}
	reads := [][]byte{read}
	k := 6
	arena, offs := buildArena(t, d, reads)

	tabA := newTable(t, d, arena, k, SlotsPerExtension(len(read), 1))
	insertAll(t, d, tabA, reads, nil, offs)

	tabB := newTable(t, d, arena, k, SlotsPerExtension(len(read), 1))
	_, err := d.Launch(simt.KernelConfig{Name: "v1", Warps: 1}, func(w *simt.Warp) {
		for i := 0; i+k <= len(read); i++ {
			ext := byte(NoExt)
			hiq := false
			if i+k < len(read) {
				c, _ := dna.Code(read[i+k])
				ext, hiq = c, true
			}
			if err := tabB.InsertLane(w, 0, offs[0]+uint32(i), ext, hiq); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	keys := map[string]uint32{}
	for i := 0; i+k <= len(read); i++ {
		keys[string(read[i:i+k])] = offs[0] + uint32(i)
	}
	gotA := lookupAll(t, d, tabA, arena, keys)
	gotB := lookupAll(t, d, tabB, arena, keys)
	for key := range keys {
		if gotA[key] != gotB[key] {
			t.Errorf("key %s: batch %+v vs lane %+v", key, gotA[key], gotB[key])
		}
	}
}

func TestInsertRandomMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		d := testDevice()
		k := 5 + rng.Intn(17)
		nReads := 1 + rng.Intn(6)
		reads := make([][]byte, nReads)
		quals := make([][]byte, nReads)
		maxLen := 0
		for i := range reads {
			l := k + rng.Intn(80)
			reads[i] = make([]byte, l)
			quals[i] = make([]byte, l)
			for j := range reads[i] {
				reads[i][j] = dna.Alphabet[rng.Intn(4)]
				quals[i][j] = dna.QualChar(rng.Intn(dna.MaxQual))
			}
			if l > maxLen {
				maxLen = l
			}
		}
		arena, offs := buildArena(t, d, reads)
		tab := newTable(t, d, arena, k, SlotsPerExtension(maxLen, nReads))
		insertAll(t, d, tab, reads, quals, offs)

		ref := refExts(reads, quals, k)
		keys := map[string]uint32{}
		for ri, r := range reads {
			for i := 0; i+k <= len(r); i++ {
				keys[string(r[i:i+k])] = offs[ri] + uint32(i)
			}
		}
		got := lookupAll(t, d, tab, arena, keys)
		for key, want := range ref {
			if got[key] != want {
				t.Fatalf("trial %d k=%d key %s: got %+v want %+v", trial, k, key, got[key], want)
			}
		}
	}
}

func TestVisitedCycleDetection(t *testing.T) {
	d := testDevice()
	// Walk buffer containing a repeating pattern: ACGACGACG...
	buf := []byte("ACGACGACGACG")
	base, err := d.Malloc(int64(len(buf) + 8))
	if err != nil {
		t.Fatal(err)
	}
	d.WriteBytes(base, buf)
	k := 3
	slots := 32
	vbase, _ := d.Malloc(VisitedBytes(slots))
	vis := Visited{Base: vbase, Capacity: uint64(slots), BufBase: base, K: k}
	_, err = d.Launch(simt.KernelConfig{Name: "visited", Warps: 1}, func(w *simt.Warp) {
		ClearVisited(w, vbase, slots, 1)
		// First three k-mers are distinct: ACG, CGA, GAC.
		for i := 0; i < 3; i++ {
			seen, err := vis.InsertLane(w, 0, uint32(i))
			if err != nil {
				t.Error(err)
			}
			if seen {
				t.Errorf("offset %d flagged as revisit on first visit", i)
			}
		}
		// Offset 3 is ACG again: cycle.
		seen, err := vis.InsertLane(w, 0, 3)
		if err != nil {
			t.Error(err)
		}
		if !seen {
			t.Error("cycle not detected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClearEntriesResets(t *testing.T) {
	d := testDevice()
	slots := 37 // not a multiple of warp size
	base, _ := d.Malloc(Bytes(slots))
	// Scribble garbage.
	for i := 0; i < slots*EntryBytes; i++ {
		d.WriteBytes(base+simt.Ptr(i), []byte{0xab})
	}
	_, err := d.Launch(simt.KernelConfig{Name: "clear", Warps: 3}, func(w *simt.Warp) {
		ClearEntries(w, base, slots, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < slots; i++ {
		e := simt.Ptr(uint64(base) + uint64(i)*EntryBytes)
		if d.ReadU32(e+offKeyOff) != Empty {
			t.Fatalf("entry %d key not Empty", i)
		}
		if d.ReadU32(e+offCount) != 0 || d.ReadU64(e+offExtHi) != 0 || d.ReadU64(e+offExtLo) != 0 {
			t.Fatalf("entry %d counters not zero", i)
		}
	}
}

func TestV2CoalescesBetterThanV1(t *testing.T) {
	// The crux of Figs 8-10: warp-cooperative construction issues fewer
	// global-memory instructions and transactions per inserted k-mer.
	d := testDevice()
	rng := rand.New(rand.NewSource(77))
	read := make([]byte, 160)
	for i := range read {
		read[i] = dna.Alphabet[rng.Intn(4)]
	}
	reads := [][]byte{read}
	k := 21
	arena, offs := buildArena(t, d, reads)

	tabA := newTable(t, d, arena, k, SlotsPerExtension(len(read), 1))
	var kentries []uint32
	for i := 0; i+k <= len(read); i++ {
		kentries = append(kentries, offs[0]+uint32(i))
	}
	resV2, err := d.Launch(simt.KernelConfig{Name: "v2", Warps: 1}, func(w *simt.Warp) {
		for start := 0; start < len(kentries); start += simt.WarpSize {
			var mask simt.Mask
			var keyOffs simt.Vec
			extBases := simt.Splat(uint64(NoExt))
			for lane := 0; lane < simt.WarpSize && start+lane < len(kentries); lane++ {
				mask |= simt.LaneMask(lane)
				keyOffs[lane] = uint64(kentries[start+lane])
			}
			if err := tabA.InsertBatch(w, mask, &keyOffs, &extBases, 0); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	tabB := newTable(t, d, arena, k, SlotsPerExtension(len(read), 1))
	resV1, err := d.Launch(simt.KernelConfig{Name: "v1", Warps: 1}, func(w *simt.Warp) {
		for _, off := range kentries {
			if err := tabB.InsertLane(w, 0, off, NoExt, false); err != nil {
				t.Error(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	gInstV2, _ := resV2.MemWarpInstrs()
	gInstV1, _ := resV1.MemWarpInstrs()
	if gInstV2 >= gInstV1 {
		t.Errorf("v2 global-memory instructions %d not below v1 %d", gInstV2, gInstV1)
	}
	if resV2.NonPredicatedRatio() <= resV1.NonPredicatedRatio() {
		t.Errorf("v2 predication %f not better than v1 %f",
			resV2.NonPredicatedRatio(), resV1.NonPredicatedRatio())
	}
}

func TestTableValidate(t *testing.T) {
	if (Table{Capacity: 0, K: 21}).Validate() == nil {
		t.Error("zero capacity accepted")
	}
	if (Table{Capacity: 8, K: 0}).Validate() == nil {
		t.Error("k=0 accepted")
	}
	if (Table{Capacity: 8, K: 21}).Validate() != nil {
		t.Error("valid table rejected")
	}
}
