package gpuht

import (
	"mhm2sim/internal/murmur"
	"mhm2sim/internal/simt"
)

// This file implements the per-lane-table operations used by the v1
// ("one thread per hash table") kernel of §4.2: every lane of a warp owns
// a different extension's table and walks its own contig, so lanes issue
// loads against 32 unrelated memory regions. The divergent transactions
// and the predication of lanes that finish early are exactly what Figs
// 8 and 10 measure against the warp-cooperative v2.

// LaneTables describes one k-mer hash table per lane. Lanes may sit at
// different mer sizes (the §2.3 ladder advances independently per
// extension).
type LaneTables struct {
	Base     [simt.WarpSize]uint64 // device address of each lane's table
	Capacity [simt.WarpSize]uint64
	SeqBase  simt.Ptr
	K        [simt.WarpSize]int
}

// maxBlocks returns the widest lane's 8-byte block count.
func maxBlocks(mask simt.Mask, ks *[simt.WarpSize]int) int {
	n := 0
	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) {
			if b := hashBlocks(ks[lane]); b > n {
				n = b
			}
		}
	}
	return n
}

// HashKmersVar is HashKmers with a per-lane k: lanes gather their own
// k-mers (divergent loads) and hash them.
func HashKmersVar(w *simt.Warp, mask simt.Mask, addrs *simt.Vec, ks *[simt.WarpSize]int) simt.Vec {
	nblk := maxBlocks(mask, ks)
	// Stream blocks into per-lane murmur state (as in HashKmers) instead of
	// materializing per-lane word slices — this is the v1 kernel's hash and
	// allocated one slice per active lane per call on the hot path.
	var out simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = murmur.Hash64Init(ks[lane], hashSeed)
		}
	}
	for b := 0; b < nblk; b++ {
		var bm simt.Mask
		var ba simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if mask.Has(lane) && b < hashBlocks(ks[lane]) {
				bm |= simt.LaneMask(lane)
				ba[lane] = addrs[lane] + uint64(8*b)
			}
		}
		if bm == 0 {
			continue
		}
		loaded := w.LoadGlobal(bm, &ba, 8)
		if w.LocalBytesPerLane() >= 8*(b+1) {
			off := simt.Splat(uint64(8 * b))
			w.StoreLocal(bm, &off, 8, &loaded)
			loaded = w.LoadLocal(bm, &off, 8)
		}
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !bm.Has(lane) {
				continue
			}
			if rem := ks[lane] & 7; b == ks[lane]/8 && rem != 0 {
				out[lane] = murmur.Hash64Tail(out[lane], loaded[lane], rem)
			} else {
				out[lane] = murmur.Hash64Mix(out[lane], loaded[lane])
			}
		}
	}
	w.ExecN(simt.IInt, mask, 4*nblk+3)

	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = murmur.Hash64Final(out[lane])
		} else {
			out[lane] = 0
		}
	}
	return out
}

// keysEqualVar compares per-lane keys of per-lane lengths.
func keysEqualVar(w *simt.Warp, mask simt.Mask, addrA, addrB *simt.Vec, ks *[simt.WarpSize]int) simt.Mask {
	nblk := maxBlocks(mask, ks)
	eq := mask
	for b := 0; b < nblk && eq != 0; b++ {
		var bm simt.Mask
		var aa, bb simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if eq.Has(lane) && b < hashBlocks(ks[lane]) {
				bm |= simt.LaneMask(lane)
				aa[lane] = addrA[lane] + uint64(8*b)
				bb[lane] = addrB[lane] + uint64(8*b)
			}
		}
		if bm == 0 {
			break
		}
		va := w.LoadGlobal(bm, &aa, 8)
		vb := w.LoadGlobal(bm, &bb, 8)
		w.ExecN(simt.IInt, bm, 2)
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !bm.Has(lane) {
				continue
			}
			keep := ^uint64(0)
			if rem := ks[lane] - 8*b; rem < 8 {
				keep = ^uint64(0) >> uint(64-8*rem)
			}
			if va[lane]&keep != vb[lane]&keep {
				eq &^= simt.LaneMask(lane)
			}
		}
	}
	return eq
}

// InsertLanes inserts one k-mer per active lane into that lane's own
// table. Thread collisions cannot occur across tables, so no match_any is
// needed; hash collisions probe linearly within each lane's table.
// Returns ErrNoConverge if the lockstep probe loop wraps the widest lane's
// table without every lane finishing — some lane's table is full.
func (t LaneTables) InsertLanes(w *simt.Warp, mask simt.Mask, keyOffs, extBases *simt.Vec, extHiQ simt.Mask) error {
	if mask == 0 {
		return nil
	}
	var addrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		addrs[lane] = uint64(t.SeqBase) + keyOffs[lane]
	}
	hashes := HashKmersVar(w, mask, &addrs, &t.K)

	slots := hashes
	pending := mask
	guard := uint64(0)
	bound := maxLaneCapacity(mask, &t.Capacity) + 1
	cmp := simt.Splat(Empty)
	zero := simt.Splat(0)
	for pending != 0 {
		if guard++; guard > bound {
			w.ExecN(simt.ICtrl, mask, int(guard-1))
			return ErrNoConverge
		}
		var entries simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if pending.Has(lane) {
				entries[lane] = t.Base[lane] + (slots[lane]%t.Capacity[lane])*EntryBytes
			}
		}
		observed := w.AtomicCAS(pending, &entries, &cmp, keyOffs, 4)

		var claimed, occupied simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !pending.Has(lane) {
				continue
			}
			if observed[lane] == Empty {
				claimed |= simt.LaneMask(lane)
			} else {
				occupied |= simt.LaneMask(lane)
			}
		}
		// Claiming lanes initialize their entries (the clear is a 0xFF
		// memset; see ClearLaneRegions).
		if claimed != 0 {
			var a simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				a[lane] = entries[lane] + offCount
			}
			w.StoreGlobal(claimed, &a, 4, &zero)
			for lane := 0; lane < simt.WarpSize; lane++ {
				a[lane] = entries[lane] + offExtHi
			}
			w.StoreGlobal(claimed, &a, 8, &zero)
			for lane := 0; lane < simt.WarpSize; lane++ {
				a[lane] = entries[lane] + offExtLo
			}
			w.StoreGlobal(claimed, &a, 8, &zero)
		}
		matched := claimed
		if occupied != 0 {
			var storedAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if occupied.Has(lane) {
					storedAddrs[lane] = uint64(t.SeqBase) + observed[lane]
				}
			}
			matched |= keysEqualVar(w, occupied, &storedAddrs, &addrs, &t.K)
		}
		if matched != 0 {
			t.updateCounts(w, matched, &entries, extBases, extHiQ)
		}
		pending &^= matched
		if pending != 0 {
			w.Exec(simt.IInt, pending)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if pending.Has(lane) {
					slots[lane]++
				}
			}
		}
	}
	w.ExecN(simt.ICtrl, mask, int(guard)) // batched loop bookkeeping
	return nil
}

// updateCounts mirrors Table.updateCounts for per-lane entries.
func (t LaneTables) updateCounts(w *simt.Warp, matched simt.Mask, entries, extBases *simt.Vec, extHiQ simt.Mask) {
	one := simt.Splat(1)
	var countAddrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		countAddrs[lane] = entries[lane] + offCount
	}
	w.AtomicAdd(matched, &countAddrs, &one, 4)

	var hiMask, loMask simt.Mask
	var extAddrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !matched.Has(lane) || extBases[lane] == NoExt {
			continue
		}
		base := extBases[lane] & 3
		if extHiQ.Has(lane) {
			hiMask |= simt.LaneMask(lane)
			extAddrs[lane] = entries[lane] + offExtHi + 2*base
		} else {
			loMask |= simt.LaneMask(lane)
			extAddrs[lane] = entries[lane] + offExtLo + 2*base
		}
	}
	if hiMask != 0 {
		w.AtomicAdd(hiMask, &extAddrs, &one, 2)
	}
	if loMask != 0 {
		w.AtomicAdd(loMask, &extAddrs, &one, 2)
	}
}

// LookupLanes probes each active lane's own table for the k-mer at that
// lane's key address, returning per-lane extensions and the found mask.
// Returns ErrNoConverge if the probe loop wraps the widest lane's table
// without resolving every lane.
func (t LaneTables) LookupLanes(w *simt.Warp, mask simt.Mask, keyAddrs *simt.Vec) ([simt.WarpSize]Ext, simt.Mask, error) {
	var exts [simt.WarpSize]Ext
	var found simt.Mask
	if mask == 0 {
		return exts, 0, nil
	}
	hashes := HashKmersVar(w, mask, keyAddrs, &t.K)

	slots := hashes
	pending := mask
	guard := uint64(0)
	bound := maxLaneCapacity(mask, &t.Capacity) + 1
	for pending != 0 {
		if guard++; guard > bound {
			w.ExecN(simt.ICtrl, mask, int(guard-1))
			return exts, found, ErrNoConverge
		}
		var entries, keyFieldAddrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if pending.Has(lane) {
				entries[lane] = t.Base[lane] + (slots[lane]%t.Capacity[lane])*EntryBytes
				keyFieldAddrs[lane] = entries[lane] + offKeyOff
			}
		}
		stored := w.LoadGlobal(pending, &keyFieldAddrs, 4)
		w.Exec(simt.IInt, pending)

		var missing, occupied simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !pending.Has(lane) {
				continue
			}
			if stored[lane] == Empty {
				missing |= simt.LaneMask(lane)
			} else {
				occupied |= simt.LaneMask(lane)
			}
		}
		pending &^= missing

		if occupied != 0 {
			var storedAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if occupied.Has(lane) {
					storedAddrs[lane] = uint64(t.SeqBase) + stored[lane]
				}
			}
			eq := keysEqualVar(w, occupied, &storedAddrs, keyAddrs, &t.K)
			if eq != 0 {
				// Load extension objects for the matching lanes.
				var a simt.Vec
				for lane := 0; lane < simt.WarpSize; lane++ {
					a[lane] = entries[lane] + offCount
				}
				counts := w.LoadGlobal(eq, &a, 4)
				for lane := 0; lane < simt.WarpSize; lane++ {
					a[lane] = entries[lane] + offExtHi
				}
				his := w.LoadGlobal(eq, &a, 8)
				for lane := 0; lane < simt.WarpSize; lane++ {
					a[lane] = entries[lane] + offExtLo
				}
				los := w.LoadGlobal(eq, &a, 8)
				for lane := 0; lane < simt.WarpSize; lane++ {
					if !eq.Has(lane) {
						continue
					}
					e := &exts[lane]
					e.Count = uint32(counts[lane])
					for b := 0; b < 4; b++ {
						e.Hi[b] = uint16(his[lane] >> uint(16*b))
						e.Lo[b] = uint16(los[lane] >> uint(16*b))
					}
				}
				found |= eq
				pending &^= eq
				occupied &^= eq
			}
			// Hash collisions probe on.
			for lane := 0; lane < simt.WarpSize; lane++ {
				if occupied.Has(lane) {
					slots[lane]++
				}
			}
			if occupied != 0 {
				w.Exec(simt.IInt, occupied)
			}
		}
	}
	w.ExecN(simt.ICtrl, mask, int(guard)) // batched loop bookkeeping
	return exts, found, nil
}

// LaneVisited is the per-lane visited table (cycle detection) for v1.
type LaneVisited struct {
	Base     [simt.WarpSize]uint64
	Capacity [simt.WarpSize]uint64
	BufBase  [simt.WarpSize]uint64 // each lane's walk buffer
	K        [simt.WarpSize]int
}

// InsertLanes records each active lane's current walk k-mer in that lane's
// visited table, returning the mask of lanes that had already seen theirs
// (cycles). Returns ErrNoConverge if some lane's visited table fills up —
// its walk ran longer than the table was sized for.
func (v LaneVisited) InsertLanes(w *simt.Warp, mask simt.Mask, offs *simt.Vec) (simt.Mask, error) {
	var seen simt.Mask
	if mask == 0 {
		return 0, nil
	}
	var addrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		addrs[lane] = v.BufBase[lane] + offs[lane]
	}
	hashes := HashKmersVar(w, mask, &addrs, &v.K)

	slots := hashes
	pending := mask
	guard := uint64(0)
	bound := maxLaneCapacity(mask, &v.Capacity) + 1
	cmp := simt.Splat(Empty)
	for pending != 0 {
		if guard++; guard > bound {
			w.ExecN(simt.ICtrl, mask, int(guard-1))
			return seen, ErrNoConverge
		}
		var slotAddrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if pending.Has(lane) {
				slotAddrs[lane] = v.Base[lane] + (slots[lane]%v.Capacity[lane])*4
			}
		}
		observed := w.AtomicCAS(pending, &slotAddrs, &cmp, offs, 4)
		w.Exec(simt.IInt, pending)

		var claimed, occupied simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !pending.Has(lane) {
				continue
			}
			if observed[lane] == Empty {
				claimed |= simt.LaneMask(lane)
			} else {
				occupied |= simt.LaneMask(lane)
			}
		}
		pending &^= claimed

		if occupied != 0 {
			var storedAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if occupied.Has(lane) {
					storedAddrs[lane] = v.BufBase[lane] + observed[lane]
				}
			}
			eq := keysEqualVar(w, occupied, &storedAddrs, &addrs, &v.K)
			seen |= eq
			pending &^= eq
			for lane := 0; lane < simt.WarpSize; lane++ {
				if pending.Has(lane) && occupied.Has(lane) {
					slots[lane]++
				}
			}
		}
	}
	w.ExecN(simt.ICtrl, mask, int(guard)) // batched loop bookkeeping
	return seen, nil
}

// ClearLaneRegions memsets each lane's own hash table to 0xFF (key fields
// become Empty; claiming lanes initialize the rest), lockstep over word
// index. Lanes write into 32 unrelated tables, so nothing coalesces — the
// v1 clear pays ~32 transactions per store instruction where v2 pays 8.
func ClearLaneRegions(w *simt.Warp, mask simt.Mask, base, capacity *[simt.WarpSize]uint64) {
	maxWords := uint64(0)
	for lane := 0; lane < simt.WarpSize; lane++ {
		if wds := capacity[lane] * EntryBytes / 8; mask.Has(lane) && wds > maxWords {
			maxWords = wds
		}
	}
	ones := simt.Splat(^uint64(0))
	for s := uint64(0); s < maxWords; s++ {
		var m simt.Mask
		var addrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if mask.Has(lane) && s < capacity[lane]*EntryBytes/8 {
				m |= simt.LaneMask(lane)
				addrs[lane] = base[lane] + s*8
			}
		}
		if m == 0 {
			continue
		}
		w.StoreGlobal(m, &addrs, 8, &ones)
		w.Exec(simt.ICtrl, m)
	}
}

// ClearLaneVisited resets per-lane visited slots to Empty, lockstep.
func ClearLaneVisited(w *simt.Warp, mask simt.Mask, base, capacity *[simt.WarpSize]uint64) {
	maxCap := uint64(0)
	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) && capacity[lane] > maxCap {
			maxCap = capacity[lane]
		}
	}
	empty := simt.Splat(uint64(Empty))
	for s := uint64(0); s < maxCap; s++ {
		var m simt.Mask
		var addrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if mask.Has(lane) && s < capacity[lane] {
				m |= simt.LaneMask(lane)
				addrs[lane] = base[lane] + s*4
			}
		}
		if m == 0 {
			continue
		}
		w.StoreGlobal(m, &addrs, 4, &empty)
		w.Exec(simt.ICtrl, m)
	}
}
