package gpuht

import "mhm2sim/internal/simt"

// LookupLane probes for the k-mer whose bytes start at the absolute device
// address keyAddr (typically inside the walk buffer), driven by a single
// lane — the DNA-walk phase runs on one thread per warp (§3.4), with the
// other 31 lanes predicated off. It returns the extension object and
// whether the k-mer was found.
func (t Table) LookupLane(w *simt.Warp, lane int, keyAddr uint64) (Ext, bool) {
	m := simt.LaneMask(lane)
	var addrs simt.Vec
	addrs[lane] = keyAddr
	hashes := HashKmers(w, m, &addrs, t.K)

	// Per-probe accounting (one IInt after the key load, one ICtrl per
	// continued probe) batches into two ExecN calls at the single exit
	// point — bit-identical totals, constant-mask loop.
	slot := hashes[lane]
	iints, ictrls := 0, 0
	var ext Ext
	found := false
	for probes := uint64(0); probes <= t.Capacity; probes++ {
		var slots simt.Vec
		slots[lane] = slot
		entries := t.entryAddr(&slots)

		var keyAddrVec simt.Vec
		keyAddrVec[lane] = entries[lane] + offKeyOff
		stored := w.LoadGlobal(m, &keyAddrVec, 4)
		iints++
		if stored[lane] == Empty {
			break
		}

		var storedAddrs simt.Vec
		storedAddrs[lane] = uint64(t.SeqBase) + stored[lane]
		if eq := keysEqual(w, m, &storedAddrs, &addrs, t.K); eq.Has(lane) {
			ext, found = t.loadExt(w, lane, entries[lane]), true
			break
		}
		slot++
		ictrls++
	}
	w.ExecN(simt.IInt, m, iints)
	w.ExecN(simt.ICtrl, m, ictrls)
	return ext, found
}

// loadExt reads the extension object of one entry from a single lane.
func (t Table) loadExt(w *simt.Warp, lane int, entry uint64) Ext {
	m := simt.LaneMask(lane)
	var a simt.Vec

	a[lane] = entry + offCount
	count := w.LoadGlobal(m, &a, 4)

	a[lane] = entry + offExtHi
	hi := w.LoadGlobal(m, &a, 8)

	a[lane] = entry + offExtLo
	lo := w.LoadGlobal(m, &a, 8)

	var e Ext
	e.Count = uint32(count[lane])
	for b := 0; b < 4; b++ {
		e.Hi[b] = uint16(hi[lane] >> uint(16*b))
		e.Lo[b] = uint16(lo[lane] >> uint(16*b))
	}
	return e
}

// Visited is the second per-extension table (§3.2): it records the walk
// offsets of k-mers already visited so cycles terminate the walk
// (Algorithm 2's loop_exists). Entries are 4-byte offsets into the walk
// buffer — the same pointer-compression trick as the main table, pointing
// into the walk buffer instead of the reads arena.
type Visited struct {
	Base     simt.Ptr
	Capacity uint64
	// BufBase is the walk buffer holding contig tail + appended bases.
	BufBase simt.Ptr
	K       int
}

// VisitedBytes returns the device bytes for a visited table of n slots.
func VisitedBytes(slots int) int64 { return int64(slots) * 4 }

// InsertLane records the k-mer starting at walk-buffer offset off, driven
// by a single lane. It returns true if that k-mer was already present —
// i.e. the walk has entered a cycle — and ErrProbeCycle if the walk ran
// longer than the visited set was sized for.
func (v Visited) InsertLane(w *simt.Warp, lane int, off uint32) (bool, error) {
	m := simt.LaneMask(lane)
	var addrs simt.Vec
	addrs[lane] = uint64(v.BufBase) + uint64(off)
	hashes := HashKmers(w, m, &addrs, v.K)

	// Batched accounting, as in LookupLane: per-probe IInt/ICtrl counts
	// flush at the single exit with identical totals.
	slot := hashes[lane]
	iints, ictrls := 0, 0
	seen := false
	var rerr error
	for probes := uint64(0); ; probes++ {
		if probes > v.Capacity {
			rerr = ErrProbeCycle
			break
		}
		var slotAddr simt.Vec
		slotAddr[lane] = uint64(v.Base) + (slot%v.Capacity)*4

		var cmp, val simt.Vec
		cmp[lane] = Empty
		val[lane] = uint64(off)
		observed := w.AtomicCAS(m, &slotAddr, &cmp, &val, 4)
		iints++
		if observed[lane] == Empty {
			break // claimed: first visit
		}
		var storedAddrs simt.Vec
		storedAddrs[lane] = uint64(v.BufBase) + observed[lane]
		if eq := keysEqual(w, m, &storedAddrs, &addrs, v.K); eq.Has(lane) {
			seen = true // same k-mer seen before: cycle
			break
		}
		slot++
		ictrls++
	}
	w.ExecN(simt.IInt, m, iints)
	w.ExecN(simt.ICtrl, m, ictrls)
	return seen, rerr
}

// ClearEntriesWarp resets a run of hash-table entries using the 32 lanes
// of a single warp — the per-iteration table reset each warp performs
// before rebuilding its own table at a shifted k. Only the key field needs
// a defined value (Empty): the §3.3 protocol has the CAS winner initialize
// the rest of the entry inside the synchronized block, so the clear is a
// flat 0xFF memset whose stores coalesce perfectly (consecutive lanes,
// consecutive 8-byte words) — an option the v1 thread-per-table kernel
// does not have.
func ClearEntriesWarp(w *simt.Warp, base simt.Ptr, entries int) {
	totalWords := entries * EntryBytes / 8
	ones := simt.Splat(^uint64(0))
	for first := 0; first < totalWords; first += simt.WarpSize {
		var mask simt.Mask
		var addrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			word := first + lane
			if word >= totalWords {
				break
			}
			mask |= simt.LaneMask(lane)
			addrs[lane] = uint64(base) + uint64(word)*8
		}
		if mask == 0 {
			continue
		}
		w.StoreGlobal(mask, &addrs, 8, &ones)
		w.Exec(simt.ICtrl, mask)
	}
}

// ClearEntries resets count/ext words to zero and key fields to Empty for a
// run of hash-table entries, cooperatively across the launch's warps: warp
// w handles entries w.ID, w.ID+totalWarps, ... with its 32 lanes striding
// entry-parallel.
func ClearEntries(w *simt.Warp, base simt.Ptr, entries, totalWarps int) {
	clearEntriesStride(w, base, entries, w.ID, totalWarps)
}

func clearEntriesStride(w *simt.Warp, base simt.Ptr, entries, warpIdx, totalWarps int) {
	emptyKey := simt.Splat(uint64(Empty)) // keyOff=Empty, count=0 in one u64
	zero := simt.Splat(0)
	for first := warpIdx * simt.WarpSize; first < entries; first += totalWarps * simt.WarpSize {
		var mask simt.Mask
		var a0, a8, a16, a24 simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			idx := first + lane
			if idx >= entries {
				break
			}
			mask |= simt.LaneMask(lane)
			e := uint64(base) + uint64(idx)*EntryBytes
			a0[lane], a8[lane], a16[lane], a24[lane] = e, e+8, e+16, e+24
		}
		if mask == 0 {
			continue
		}
		w.StoreGlobal(mask, &a0, 8, &emptyKey)
		w.StoreGlobal(mask, &a8, 8, &zero)
		w.StoreGlobal(mask, &a16, 8, &zero)
		w.StoreGlobal(mask, &a24, 8, &zero)
		w.Exec(simt.ICtrl, mask)
	}
}

// ClearVisitedWarp resets a run of visited-table slots to Empty using a
// single warp's lanes.
func ClearVisitedWarp(w *simt.Warp, base simt.Ptr, slots int) {
	clearVisitedStride(w, base, slots, 0, 1)
}

// ClearVisited resets a run of visited-table slots to Empty, warp-
// cooperatively as in ClearEntries.
func ClearVisited(w *simt.Warp, base simt.Ptr, slots, totalWarps int) {
	clearVisitedStride(w, base, slots, w.ID, totalWarps)
}

func clearVisitedStride(w *simt.Warp, base simt.Ptr, slots, warpIdx, totalWarps int) {
	empty := simt.Splat(uint64(Empty))
	for first := warpIdx * simt.WarpSize; first < slots; first += totalWarps * simt.WarpSize {
		var mask simt.Mask
		var addrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			idx := first + lane
			if idx >= slots {
				break
			}
			mask |= simt.LaneMask(lane)
			addrs[lane] = uint64(base) + uint64(idx)*4
		}
		if mask == 0 {
			continue
		}
		w.StoreGlobal(mask, &addrs, 4, &empty)
		w.Exec(simt.ICtrl, mask)
	}
}
