package gpuht

import "mhm2sim/internal/simt"

// InsertBatch inserts up to 32 k-mers, one per active lane, implementing the
// §3.3 protocol:
//
//  1. every lane hashes its k-mer (coalesced 8-byte gathers),
//  2. match_any_sync identifies lanes holding the same k-mer (thread
//     collisions),
//  3. lanes probe linearly; a slot is claimed with atomicCAS on the
//     pointer-compressed key field — the CAS winner initializes the entry
//     while colliding lanes are synchronized, then all matching lanes
//     update the counts atomically,
//  4. hash collisions (occupied slot, different key) move to the next slot.
//
// keyOffs gives each lane's k-mer as an offset into the reads arena;
// extBases the 2-bit code of the base following the k-mer (NoExt when the
// k-mer is a read suffix); extHiQ the lanes whose extension base is
// high-quality.
//
// Returns ErrTableFull if probing wraps the whole table without finding
// space — the driver sized the batch wrong (or a fault was injected) and
// should re-split it rather than die.
func (t Table) InsertBatch(w *simt.Warp, mask simt.Mask, keyOffs *simt.Vec, extBases *simt.Vec, extHiQ simt.Mask) error {
	if mask == 0 {
		return nil
	}
	addrs := t.absKeys(keyOffs)
	hashes := HashKmers(w, mask, &addrs, t.K)

	// Thread-collision groups. Lanes with equal hash are candidates; exact
	// equality is established by the key compare in the probe loop, but the
	// match mask is what the CUDA kernel uses to synchronize the group.
	w.MatchAny(mask, &hashes)

	// Loop bookkeeping runs under the constant launch mask, so the per-probe
	// ICtrl accounting batches into one ExecN flushed at every exit —
	// bit-identical totals (the counters are commutative sums), one stats
	// update instead of one per probe.
	slots := hashes
	pending := mask
	probes := uint64(0)
	cmp := simt.Splat(Empty)
	zero := simt.Splat(0)
	for pending != 0 {
		if probes++; probes > t.Capacity+1 {
			// The §3.2 sizing guarantees space for every k-mer; probing
			// past capacity means the driver mis-sized the table.
			w.ExecN(simt.ICtrl, mask, int(probes-1))
			return ErrTableFull
		}
		entries := t.entryAddr(&slots)

		// Try to claim: CAS(keyOff, Empty, myKeyOff).
		observed := w.AtomicCAS(pending, &entries, &cmp, keyOffs, 4)

		var claimed, occupied simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !pending.Has(lane) {
				continue
			}
			if observed[lane] == Empty {
				claimed |= simt.LaneMask(lane)
			} else {
				occupied |= simt.LaneMask(lane)
			}
		}

		// Winner initializes the entry inside the synchronized block
		// (§3.3): the clear memsets the table to 0xFF, so the claiming
		// lane must zero the count and extension words before any
		// colliding lane updates them.
		if claimed != 0 {
			var a simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				a[lane] = entries[lane] + offCount
			}
			w.StoreGlobal(claimed, &a, 4, &zero)
			for lane := 0; lane < simt.WarpSize; lane++ {
				a[lane] = entries[lane] + offExtHi
			}
			w.StoreGlobal(claimed, &a, 8, &zero)
			for lane := 0; lane < simt.WarpSize; lane++ {
				a[lane] = entries[lane] + offExtLo
			}
			w.StoreGlobal(claimed, &a, 8, &zero)
			w.SyncWarp(pending)
		}

		// Occupied slots: the stored key may still be our k-mer inserted
		// by another lane or an earlier read (match), or a genuine hash
		// collision (probe on).
		matched := claimed
		if occupied != 0 {
			var storedAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if occupied.Has(lane) {
					storedAddrs[lane] = uint64(t.SeqBase) + observed[lane]
				}
			}
			eq := keysEqual(w, occupied, &storedAddrs, &addrs, t.K)
			matched |= eq
		}

		if matched != 0 {
			t.updateCounts(w, matched, &entries, extBases, extHiQ)
		}

		// Advance unmatched occupied lanes to the next slot: linear probe.
		pending &^= matched
		if pending != 0 {
			w.Exec(simt.IInt, pending)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if pending.Has(lane) {
					slots[lane]++
				}
			}
		}
	}
	w.ExecN(simt.ICtrl, mask, int(probes)) // batched loop bookkeeping
	return nil
}

// updateCounts bumps count and the extension counters for matched lanes.
func (t Table) updateCounts(w *simt.Warp, matched simt.Mask, entries, extBases *simt.Vec, extHiQ simt.Mask) {
	one := simt.Splat(1)

	var countAddrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		countAddrs[lane] = entries[lane] + offCount
	}
	w.AtomicAdd(matched, &countAddrs, &one, 4)

	var hiMask, loMask simt.Mask
	var extAddrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !matched.Has(lane) {
			continue
		}
		if extBases[lane] == NoExt {
			continue
		}
		base := extBases[lane] & 3
		if extHiQ.Has(lane) {
			hiMask |= simt.LaneMask(lane)
			extAddrs[lane] = entries[lane] + offExtHi + 2*base
		} else {
			loMask |= simt.LaneMask(lane)
			extAddrs[lane] = entries[lane] + offExtLo + 2*base
		}
	}
	if hiMask != 0 {
		w.AtomicAdd(hiMask, &extAddrs, &one, 2)
	}
	if loMask != 0 {
		w.AtomicAdd(loMask, &extAddrs, &one, 2)
	}
}

// InsertLane inserts a single k-mer from one lane (the v1 kernel's
// one-thread-per-table construction). All other lanes are predicated off,
// which is exactly the inefficiency Figs 8 and 10 quantify.
func (t Table) InsertLane(w *simt.Warp, lane int, keyOff uint32, extBase byte, extHiQ bool) error {
	m := simt.LaneMask(lane)
	var keyOffs, extBases simt.Vec
	keyOffs[lane] = uint64(keyOff)
	extBases[lane] = uint64(extBase)
	var hiq simt.Mask
	if extHiQ {
		hiq = m
	}
	return t.InsertBatch(w, m, &keyOffs, &extBases, hiq)
}

// absKeys converts arena offsets to absolute device addresses.
func (t Table) absKeys(keyOffs *simt.Vec) simt.Vec {
	var out simt.Vec
	for lane := range out {
		out[lane] = uint64(t.SeqBase) + keyOffs[lane]
	}
	return out
}
