// Package gpuht implements the paper's warp-local k-mer hash table on the
// simt device (§3.2–3.3): open addressing with linear probing, CAS-claimed
// slots, match_any-based thread-collision resolution, and pointer-compressed
// keys — entries store a 4-byte offset into the candidate-reads arena
// instead of the k-mer bytes themselves (Fig 6), cutting per-key memory by
// ~k/4 and letting key loads ride the reads already resident in memory.
//
// The package also implements the §3.2 sizing policy: one flat allocation
// holds every per-extension table, with per-table slot counts of
// maxReadLen × nReads so the load factor never exceeds
// (l−k+1)/l ≤ (300−21+1)/300 ≈ 0.93.
package gpuht

import (
	"fmt"

	"mhm2sim/internal/murmur"
	"mhm2sim/internal/simt"
)

// Entry layout (32 bytes, two sectors per four entries):
//
//	offset 0  u32  keyOff  — k-mer start offset in the reads arena; Empty if unclaimed
//	offset 4  u32  count   — occurrences of the k-mer
//	offset 8  4×u16 extHi  — high-quality counts of the following base (A,C,G,T)
//	offset 16 4×u16 extLo  — low-quality counts
//	offset 24 pad
const (
	EntryBytes = 32

	offKeyOff = 0
	offCount  = 4
	offExtHi  = 8
	offExtLo  = 16

	// Empty marks an unclaimed slot.
	Empty = 0xffffffff

	// NoExt marks a k-mer with no following base (suffix of its read).
	NoExt = 0xff

	// hashSeed seeds murmur for table placement.
	hashSeed = 0x5eed1ab5
)

// Ext is the extension object stored per k-mer: occurrence count plus
// quality-split counts of the base that follows the k-mer (§2.3).
type Ext struct {
	Count uint32
	Hi    [4]uint16
	Lo    [4]uint16
}

// Table describes one extension's k-mer hash table inside the flat
// allocation. Keys are offsets into the reads arena starting at SeqBase.
type Table struct {
	Base     simt.Ptr
	Capacity uint64
	SeqBase  simt.Ptr
	K        int
}

// Bytes returns the device bytes a table of n slots occupies.
func Bytes(slots int) int64 { return int64(slots) * EntryBytes }

// SlotsPerExtension returns the paper's table size for one contig
// extension: maxReadLen × nReads slots (§3.2). Sizing by l rather than
// l−k+1 keeps the load factor at or below (l−k+1)/l.
func SlotsPerExtension(maxReadLen, nReads int) int {
	if nReads <= 0 {
		return 0
	}
	return maxReadLen * nReads
}

// MaxKmers returns the worst-case distinct k-mers for one extension:
// (l−k+1) × r.
func MaxKmers(maxReadLen, k, nReads int) int {
	if maxReadLen < k || nReads <= 0 {
		return 0
	}
	return (maxReadLen - k + 1) * nReads
}

// HostSlots returns the slot count the host flat-table engine uses for an
// extension holding at most nKmers distinct k-mers: the smallest power of
// two ≥ 2·nKmers. The device table (SlotsPerExtension) follows the paper's
// l×r sizing because device memory is the scarce resource and a ~0.93 load
// factor is acceptable for warp-parallel probing; the host engine instead
// spends 2× the §3.2 (l−k+1)·r bound to keep the expected linear-probe
// chain short on a single core, and rounds to a power of two so probe
// wrap-around is a mask instead of a modulo.
func HostSlots(nKmers int) int {
	if nKmers <= 0 {
		return 0
	}
	slots := 1
	for slots < 2*nKmers {
		slots <<= 1
	}
	return slots
}

// LoadFactor returns the worst-case load factor of the §3.2 sizing policy
// for reads of length l and k-mers of length k: (l−k+1)/l.
func LoadFactor(l, k int) float64 {
	if l <= 0 || k <= 0 || k > l {
		return 0
	}
	return float64(l-k+1) / float64(l)
}

// hashBlocks is the number of 8-byte vector loads needed per key.
func hashBlocks(k int) int { return (k + 7) / 8 }

// HashKmers gathers each active lane's k-mer bytes with 8-byte vector loads
// and returns the murmur hash per lane. addrs holds absolute device
// addresses of the k-mer starts. Consecutive lanes pointing at consecutive
// k-mers of one read overlap heavily, so these loads coalesce — the v2
// improvement visible in the roofline (Fig 9).
//
// The arena must have at least 7 bytes of slack after any k-mer (the
// over-read is masked out of the hash).
func HashKmers(w *simt.Warp, mask simt.Mask, addrs *simt.Vec, k int) simt.Vec {
	nblk := hashBlocks(k)
	full := k / 8
	rem := k & 7
	// Stream each gathered block straight into the murmur state instead of
	// materializing per-lane word slices (which cost one allocation per
	// active lane per call on this hot path).
	out := simt.Splat(murmur.Hash64Init(k, hashSeed))
	for b := 0; b < nblk; b++ {
		var ba simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			ba[lane] = addrs[lane] + uint64(8*b)
		}
		loaded := w.LoadGlobal(mask, &ba, 8)
		// The real kernel stages the key words in per-thread (local
		// memory) arrays before mixing — the local traffic §4.2 reports.
		if w.LocalBytesPerLane() >= 8*(b+1) {
			off := simt.Splat(uint64(8 * b))
			w.StoreLocal(mask, &off, 8, &loaded)
			loaded = w.LoadLocal(mask, &off, 8)
		}
		if b < full {
			for lane := 0; lane < simt.WarpSize; lane++ {
				out[lane] = murmur.Hash64Mix(out[lane], loaded[lane])
			}
		} else {
			for lane := 0; lane < simt.WarpSize; lane++ {
				out[lane] = murmur.Hash64Tail(out[lane], loaded[lane], rem)
			}
		}
	}
	// Mixing arithmetic: ~4 integer ops per block plus finalization.
	w.ExecN(simt.IInt, mask, 4*nblk+3)

	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = murmur.Hash64Final(out[lane])
		} else {
			out[lane] = 0
		}
	}
	return out
}

// keysEqual compares, per active lane, the k bytes at addrA against the k
// bytes at addrB using 8-byte vector loads, returning the equality mask.
func keysEqual(w *simt.Warp, mask simt.Mask, addrA, addrB *simt.Vec, k int) simt.Mask {
	nblk := hashBlocks(k)
	eq := mask
	for b := 0; b < nblk && eq != 0; b++ {
		var aa, bb simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			aa[lane] = addrA[lane] + uint64(8*b)
			bb[lane] = addrB[lane] + uint64(8*b)
		}
		va := w.LoadGlobal(eq, &aa, 8)
		vb := w.LoadGlobal(eq, &bb, 8)
		w.ExecN(simt.IInt, eq, 2) // mask + compare
		keep := uint64(^uint64(0))
		if rem := k - 8*b; rem < 8 {
			keep = ^uint64(0) >> uint(64-8*rem)
		}
		var still simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if eq.Has(lane) && va[lane]&keep == vb[lane]&keep {
				still |= simt.LaneMask(lane)
			}
		}
		eq = still
	}
	return eq
}

// entryAddr returns per-lane entry addresses for the given slots.
func (t Table) entryAddr(slots *simt.Vec) simt.Vec {
	var out simt.Vec
	for lane := range out {
		out[lane] = uint64(t.Base) + (slots[lane]%t.Capacity)*EntryBytes
	}
	return out
}

// Validate checks table descriptor sanity.
func (t Table) Validate() error {
	if t.Capacity == 0 {
		return fmt.Errorf("gpuht: zero-capacity table")
	}
	if t.K < 1 || t.K > 255 {
		return fmt.Errorf("gpuht: bad k %d", t.K)
	}
	return nil
}
