package gpuht

import (
	"errors"
	"testing"

	"mhm2sim/internal/simt"
)

// These tests pin the recovery contract: the overflow/convergence paths
// that used to panic now return typed sentinel errors the driver can match
// with errors.Is and recover from by re-splitting the batch.

// TestInsertBatchTableFullReturnsError overfills a 2-slot table with 3
// distinct k-mers: the third insert must surface ErrTableFull, not panic.
func TestInsertBatchTableFullReturnsError(t *testing.T) {
	d := testDevice()
	reads := [][]byte{[]byte("ACGTG")} // 3 distinct 3-mers: ACG, CGT, GTG
	k := 3
	arena, offs := buildArena(t, d, reads)
	tab := newTable(t, d, arena, k, 2)

	var insErr error
	_, err := d.Launch(simt.KernelConfig{Name: "overfill", Warps: 1}, func(w *simt.Warp) {
		for i := 0; i+k <= len(reads[0]) && insErr == nil; i++ {
			insErr = tab.InsertLane(w, 0, offs[0]+uint32(i), NoExt, false)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(insErr, ErrTableFull) {
		t.Fatalf("overfilled table returned %v, want ErrTableFull", insErr)
	}
}

// TestVisitedFullReturnsError fills a 2-slot visited table with 3 distinct
// walk k-mers.
func TestVisitedFullReturnsError(t *testing.T) {
	d := testDevice()
	buf := []byte("ACGTG")
	base, err := d.Malloc(int64(len(buf) + 8))
	if err != nil {
		t.Fatal(err)
	}
	d.WriteBytes(base, buf)
	slots := 2
	vbase, _ := d.Malloc(VisitedBytes(slots))
	vis := Visited{Base: vbase, Capacity: uint64(slots), BufBase: base, K: 3}

	var visErr error
	_, err = d.Launch(simt.KernelConfig{Name: "visfull", Warps: 1}, func(w *simt.Warp) {
		ClearVisitedWarp(w, vbase, slots)
		for i := 0; i < 3 && visErr == nil; i++ {
			_, visErr = vis.InsertLane(w, 0, uint32(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(visErr, ErrProbeCycle) {
		t.Fatalf("overfilled visited table returned %v, want ErrProbeCycle", visErr)
	}
	if errors.Is(visErr, ErrTableFull) {
		t.Fatal("visited-set overflow must not alias ErrTableFull (the spill planner treats that as 'needs another pass')")
	}
}

// TestLaneTablesNoConvergeReturnsError gives one lane a 2-slot table and 3
// distinct k-mers: the lockstep insert loop must give up with ErrNoConverge
// instead of spinning to the old 1<<22 guard and panicking.
func TestLaneTablesNoConvergeReturnsError(t *testing.T) {
	d := testDevice()
	reads := [][]byte{[]byte("ACGTG")}
	k := 3
	arena, offs := buildArena(t, d, reads)
	tbase, err := d.Malloc(Bytes(2))
	if err != nil {
		t.Fatal(err)
	}

	var tabs LaneTables
	tabs.SeqBase = arena
	tabs.Base[0] = uint64(tbase)
	tabs.Capacity[0] = 2
	tabs.K[0] = k

	var insErr error
	_, err = d.Launch(simt.KernelConfig{Name: "lanefull", Warps: 1}, func(w *simt.Warp) {
		ClearLaneRegions(w, simt.LaneMask(0), &tabs.Base, &tabs.Capacity)
		for i := 0; i < 3 && insErr == nil; i++ {
			var keyOffs simt.Vec
			keyOffs[0] = uint64(offs[0]) + uint64(i)
			extBases := simt.Splat(uint64(NoExt))
			insErr = tabs.InsertLanes(w, simt.LaneMask(0), &keyOffs, &extBases, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(insErr, ErrNoConverge) {
		t.Fatalf("overfilled lane table returned %v, want ErrNoConverge", insErr)
	}
}

// TestLaneVisitedNoConvergeReturnsError mirrors the above for the per-lane
// visited table.
func TestLaneVisitedNoConvergeReturnsError(t *testing.T) {
	d := testDevice()
	buf := []byte("ACGTG")
	base, err := d.Malloc(int64(len(buf) + 8))
	if err != nil {
		t.Fatal(err)
	}
	d.WriteBytes(base, buf)
	vbase, _ := d.Malloc(VisitedBytes(2))

	var vis LaneVisited
	vis.Base[0] = uint64(vbase)
	vis.Capacity[0] = 2
	vis.BufBase[0] = uint64(base)
	vis.K[0] = 3

	var visErr error
	_, err = d.Launch(simt.KernelConfig{Name: "lanevisfull", Warps: 1}, func(w *simt.Warp) {
		ClearLaneVisited(w, simt.LaneMask(0), &vis.Base, &vis.Capacity)
		for i := 0; i < 3 && visErr == nil; i++ {
			var offsV simt.Vec
			offsV[0] = uint64(i)
			_, visErr = vis.InsertLanes(w, simt.LaneMask(0), &offsV)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(visErr, ErrNoConverge) {
		t.Fatalf("overfilled lane visited table returned %v, want ErrNoConverge", visErr)
	}
}

// TestLookupLanesBoundedOnGarbageTable runs LookupLanes against a table
// whose entries all hold colliding garbage keys; the probe loop must
// terminate with an error instead of spinning.
func TestLookupLanesBoundedOnGarbageTable(t *testing.T) {
	d := testDevice()
	reads := [][]byte{[]byte("ACGTGCAT")}
	k := 3
	arena, offs := buildArena(t, d, reads)
	slots := 4
	tbase, err := d.Malloc(Bytes(slots))
	if err != nil {
		t.Fatal(err)
	}
	// Fill every slot with a key that is valid (points at arena offset of
	// a different k-mer) so no probe ever hits Empty or a match.
	for s := 0; s < slots; s++ {
		e := tbase + simt.Ptr(s*EntryBytes)
		d.WriteU32(e+offKeyOff, uint32(offs[0])+4) // "GCA", never looked up
	}

	var tabs LaneTables
	tabs.SeqBase = arena
	tabs.Base[0] = uint64(tbase)
	tabs.Capacity[0] = uint64(slots)
	tabs.K[0] = k

	var lkErr error
	_, err = d.Launch(simt.KernelConfig{Name: "garbage", Warps: 1}, func(w *simt.Warp) {
		var keyAddrs simt.Vec
		keyAddrs[0] = uint64(arena) + uint64(offs[0]) // "ACG"
		_, _, lkErr = tabs.LookupLanes(w, simt.LaneMask(0), &keyAddrs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(lkErr, ErrNoConverge) {
		t.Fatalf("lookup on poisoned table returned %v, want ErrNoConverge", lkErr)
	}
}
