package preprocess

import (
	"bytes"
	"strings"
	"testing"

	"mhm2sim/internal/dna"
)

func read(seq string, qualScore int) dna.Read {
	q := bytes.Repeat([]byte{dna.QualChar(qualScore)}, len(seq))
	return dna.Read{ID: "r", Seq: []byte(seq), Qual: q}
}

func pair(fwd, rev dna.Read) dna.PairedRead { return dna.PairedRead{Fwd: fwd, Rev: rev} }

func goodSeq(n int) string { return strings.Repeat("ACGT", (n+3)/4)[:n] }

func TestAdapterFullMatch(t *testing.T) {
	cfg := DefaultConfig()
	body := goodSeq(80)
	r := read(body+cfg.Adapter+"ACG", 35)
	st := Stats{}
	if !processRead(&r, &cfg, &st) {
		t.Fatal("read dropped")
	}
	if string(r.Seq) != body {
		t.Errorf("adapter not removed: %q", r.Seq)
	}
	if st.AdapterTrimmed != 1 {
		t.Error("stat not counted")
	}
}

func TestAdapterPartialSuffix(t *testing.T) {
	cfg := DefaultConfig()
	body := goodSeq(90)
	partial := cfg.Adapter[:9] // adapter runs off the read end
	r := read(body+partial, 35)
	st := Stats{}
	if !processRead(&r, &cfg, &st) {
		t.Fatal("read dropped")
	}
	if string(r.Seq) != body {
		t.Errorf("partial adapter not removed: %d bases left, want %d", len(r.Seq), len(body))
	}
}

func TestAdapterTooShortIgnored(t *testing.T) {
	cfg := DefaultConfig()
	body := goodSeq(90)
	r := read(body+cfg.Adapter[:4], 35) // below MinAdapterMatch
	st := Stats{}
	processRead(&r, &cfg, &st)
	if len(r.Seq) != len(body)+4 {
		t.Errorf("short suffix trimmed: %d", len(r.Seq))
	}
}

func TestQualityTrimming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Adapter = ""
	good := goodSeq(80)
	r := read(good+goodSeq(20), 35)
	// Degrade the last 20 bases.
	for i := 80; i < 100; i++ {
		r.Qual[i] = dna.QualChar(3)
	}
	st := Stats{}
	if !processRead(&r, &cfg, &st) {
		t.Fatal("read dropped")
	}
	// The windowed mean allows up to window−1 low-quality bases to ride
	// along the boundary.
	if len(r.Seq) < 80 || len(r.Seq) >= 80+cfg.QualWindow {
		t.Errorf("kept %d bases, want within [80,%d)", len(r.Seq), 80+cfg.QualWindow)
	}
	if st.QualityTrimmed != 1 {
		t.Error("stat not counted")
	}
}

func TestQualityAllBad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Adapter = ""
	r := read(goodSeq(80), 3)
	st := Stats{}
	if processRead(&r, &cfg, &st) {
		t.Error("all-bad read survived")
	}
}

func TestMinLenAndNFrac(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Adapter = ""
	short := read(goodSeq(30), 35)
	st := Stats{}
	if processRead(&short, &cfg, &st) {
		t.Error("short read survived")
	}
	ns := read(goodSeq(100), 35)
	for i := 0; i < 10; i++ {
		ns.Seq[i*7] = 'N'
	}
	if processRead(&ns, &cfg, &st) {
		t.Error("N-rich read survived")
	}
}

func TestRunPairSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Adapter = ""
	good := read(goodSeq(100), 35)
	bad := read(goodSeq(100), 3)
	pairs := []dna.PairedRead{
		pair(good.Clone(), good.Clone()),
		pair(good.Clone(), bad.Clone()), // one bad mate kills the pair
	}
	out, st, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || st.PairsOut != 1 || st.PairsDropped != 1 {
		t.Errorf("pairs: out=%d stats=%+v", len(out), st)
	}
	if st.PairsIn != 2 {
		t.Errorf("PairsIn=%d", st.PairsIn)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QualWindow = 0
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("bad config accepted")
	}
	cfg = DefaultConfig()
	cfg.MinAdapterMatch = 1
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("tiny adapter match accepted")
	}
}

func TestCleanReadsUntouched(t *testing.T) {
	cfg := DefaultConfig()
	r := read(goodSeq(120), 35)
	st := Stats{}
	if !processRead(&r, &cfg, &st) {
		t.Fatal("clean read dropped")
	}
	if len(r.Seq) != 120 || st.BasesRemoved != 0 {
		t.Errorf("clean read modified: len=%d removed=%d", len(r.Seq), st.BasesRemoved)
	}
}
