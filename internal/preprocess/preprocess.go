// Package preprocess implements the read-preparation steps MetaHipMer2
// applies before k-mer analysis: adapter trimming, quality trimming, and
// length/composition filtering. Sequencing adapters left on read tails
// create chimeric k-mers that poison the de Bruijn graph; low-quality
// tails inflate the error filter's workload.
package preprocess

import (
	"bytes"
	"fmt"

	"mhm2sim/internal/dna"
)

// Config controls preprocessing.
type Config struct {
	// Adapter is the 3' adapter sequence to trim ("" disables). A suffix
	// of the read matching a prefix of the adapter (at least
	// MinAdapterMatch bases, up to one mismatch per 8 bases) is removed.
	Adapter         string
	MinAdapterMatch int

	// QualWindow/QualThreshold implement sliding-window quality trimming
	// from the 3' end: the read is cut where the mean Phred score of the
	// window first reaches the threshold (scanning from the tail).
	QualWindow    int
	QualThreshold float64

	// MinLen drops reads shorter than this after trimming.
	MinLen int
	// MaxNFrac drops reads with more than this fraction of ambiguous
	// bases.
	MaxNFrac float64
}

// DefaultConfig mirrors common short-read settings.
func DefaultConfig() Config {
	return Config{
		Adapter:         "AGATCGGAAGAGC", // Illumina TruSeq prefix
		MinAdapterMatch: 8,
		QualWindow:      8,
		QualThreshold:   15,
		MinLen:          50,
		MaxNFrac:        0.05,
	}
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.Adapter != "" && c.MinAdapterMatch < 4 {
		return fmt.Errorf("preprocess: MinAdapterMatch %d < 4", c.MinAdapterMatch)
	}
	if c.QualWindow < 1 {
		return fmt.Errorf("preprocess: QualWindow %d < 1", c.QualWindow)
	}
	if c.MinLen < 1 {
		return fmt.Errorf("preprocess: MinLen %d < 1", c.MinLen)
	}
	if c.MaxNFrac < 0 || c.MaxNFrac > 1 {
		return fmt.Errorf("preprocess: MaxNFrac %g outside [0,1]", c.MaxNFrac)
	}
	return nil
}

// Stats tallies what preprocessing did.
type Stats struct {
	PairsIn        int
	PairsOut       int
	PairsDropped   int
	AdapterTrimmed int
	QualityTrimmed int
	BasesRemoved   int64
}

// Run preprocesses pairs in place and returns the surviving pairs plus
// statistics. A pair survives only if both mates survive (orphan mates
// would break downstream pairing).
func Run(pairs []dna.PairedRead, cfg Config) ([]dna.PairedRead, Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	var st Stats
	st.PairsIn = len(pairs)
	out := pairs[:0]
	for i := range pairs {
		okF := processRead(&pairs[i].Fwd, &cfg, &st)
		okR := processRead(&pairs[i].Rev, &cfg, &st)
		if okF && okR {
			out = append(out, pairs[i])
		} else {
			st.PairsDropped++
		}
	}
	st.PairsOut = len(out)
	return out, st, nil
}

// processRead trims one read in place; false means the read is discarded.
func processRead(r *dna.Read, cfg *Config, st *Stats) bool {
	origLen := len(r.Seq)

	if cfg.Adapter != "" {
		if cut := adapterCut(r.Seq, []byte(cfg.Adapter), cfg.MinAdapterMatch); cut >= 0 {
			r.Seq = r.Seq[:cut]
			r.Qual = r.Qual[:cut]
			st.AdapterTrimmed++
		}
	}
	if cut := qualityCut(r.Qual, cfg.QualWindow, cfg.QualThreshold); cut < len(r.Seq) {
		r.Seq = r.Seq[:cut]
		r.Qual = r.Qual[:cut]
		st.QualityTrimmed++
	}
	st.BasesRemoved += int64(origLen - len(r.Seq))

	if len(r.Seq) < cfg.MinLen {
		return false
	}
	if cfg.MaxNFrac < 1 {
		ambiguous := len(r.Seq) - dna.CountValid(r.Seq)
		if float64(ambiguous) > cfg.MaxNFrac*float64(len(r.Seq)) {
			return false
		}
	}
	return true
}

// adapterCut returns the position where a read suffix starts matching the
// adapter prefix (≥ minMatch bases, ≤ 1 mismatch per 8 bases), or -1.
// A full internal adapter occurrence is also found (everything after the
// adapter is noise anyway).
func adapterCut(seq, adapter []byte, minMatch int) int {
	if full := bytes.Index(seq, adapter); full >= 0 {
		return full
	}
	// Suffix-prefix overlaps, longest first.
	maxOv := len(adapter)
	if len(seq) < maxOv {
		maxOv = len(seq)
	}
	for ov := maxOv; ov >= minMatch; ov-- {
		start := len(seq) - ov
		mm := 0
		allowed := ov / 8
		ok := true
		for j := 0; j < ov; j++ {
			if seq[start+j] != adapter[j] {
				if mm++; mm > allowed {
					ok = false
					break
				}
			}
		}
		if ok {
			return start
		}
	}
	return -1
}

// qualityCut returns the length to keep after 3'-end sliding-window
// quality trimming.
func qualityCut(qual []byte, window int, threshold float64) int {
	if len(qual) < window {
		return len(qual)
	}
	// Scan windows from the tail; keep through the last window whose mean
	// reaches the threshold.
	for end := len(qual); end >= window; end-- {
		sum := 0
		for j := end - window; j < end; j++ {
			sum += dna.QualScore(qual[j])
		}
		if float64(sum)/float64(window) >= threshold {
			return end
		}
	}
	return 0
}
