package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
}

func TestSpanSize(t *testing.T) {
	if got := SpanSize(1000, 4); got != 1000/(8*4) {
		t.Errorf("SpanSize(1000,4) = %d", got)
	}
	if got := SpanSize(3, 8); got != 1 {
		t.Errorf("SpanSize(3,8) = %d, want 1", got)
	}
}

// TestForEachCoversEveryIndex: each index is visited exactly once.
func TestForEachCoversEveryIndex(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1023} {
		for _, workers := range []int{1, 2, 5, 16} {
			visits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&visits[i], 1)
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, v)
				}
			}
		}
	}
}

// TestForEachSpanWorkerAffinity: per-worker state needs no locking because
// one worker's spans run sequentially on its own goroutine.
func TestForEachSpanWorkerAffinity(t *testing.T) {
	const n, workers = 500, 7
	perWorker := make([]int, workers) // written without synchronization
	var total atomic.Int64
	ForEachSpan(workers, n, 3, func(w int, s Span) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		if s.Lo < 0 || s.Hi > n || s.Lo >= s.Hi {
			t.Errorf("bad span [%d,%d)", s.Lo, s.Hi)
		}
		perWorker[w] += s.Hi - s.Lo
		total.Add(int64(s.Hi - s.Lo))
	})
	if total.Load() != n {
		t.Fatalf("covered %d of %d indices", total.Load(), n)
	}
	sum := 0
	for _, c := range perWorker {
		sum += c
	}
	if sum != n {
		t.Fatalf("per-worker tallies sum to %d, want %d (racy worker ids?)", sum, n)
	}
}

// TestForEachSpanChunking: explicit chunk sizes are honored (except the
// final remainder span).
func TestForEachSpanChunking(t *testing.T) {
	var spans atomic.Int64
	ForEachSpan(2, 10, 4, func(_ int, s Span) {
		spans.Add(1)
		if got := s.Hi - s.Lo; got != 4 && s.Hi != 10 {
			t.Errorf("span [%d,%d) has size %d, want 4", s.Lo, s.Hi, got)
		}
	})
	if spans.Load() != 3 { // 4+4+2
		t.Errorf("10 items in chunks of 4 produced %d spans, want 3", spans.Load())
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	if called {
		t.Error("body called for n=0")
	}
}
