// Package par provides the one worker-pool shape the pipeline uses
// everywhere: fan a fixed index range out over a bounded set of goroutines
// and wait. The alignment stage, the scaffolding pair-alignment phase, and
// the host local-assembly engine all used to hand-roll this loop; they now
// share this implementation, so chunking policy and shutdown behaviour are
// defined in exactly one place.
package par

import (
	"runtime"
	"sync"
)

// Span is a half-open index range [Lo, Hi) handed to one worker.
type Span struct{ Lo, Hi int }

// Workers resolves a requested worker count: values ≤ 0 mean "use every
// core" (GOMAXPROCS), mirroring the pipeline's Config.Workers convention.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SpanSize picks the chunk size for n items over `workers` goroutines:
// small enough that the slowest worker cannot hold more than ~1/8 of a
// worker's fair share hostage, large enough to amortize the channel
// synchronization (the policy the flat-table CPU engine established).
func SpanSize(n, workers int) int {
	chunk := n / (8 * workers)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// ForEachSpan partitions [0, n) into chunks of `chunk` indices (≤ 0 picks
// SpanSize automatically) and fans the spans out over `workers` goroutines
// (≤ 0 meaning GOMAXPROCS). body receives the owning worker's index along
// with the span; all spans for one worker run sequentially on that
// worker's goroutine, so callers can keep per-worker state — workspaces,
// counters — indexed by worker without locking. ForEachSpan returns when
// every span has been processed.
func ForEachSpan(workers, n, chunk int, body func(worker int, s Span)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if chunk <= 0 {
		chunk = SpanSize(n, workers)
	}
	next := make(chan Span, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		next <- Span{Lo: lo, Hi: min(lo+chunk, n)}
	}
	close(next)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for s := range next {
				body(w, s)
			}
		}(w)
	}
	wg.Wait()
}

// ForEach runs body(i) for every i in [0, n), fanned out over `workers`
// goroutines with automatic chunking. Iteration order within a chunk is
// ascending; chunks complete in whatever order the scheduler dictates, so
// any output the caller aggregates must be index-addressed or re-sorted.
func ForEach(workers, n int, body func(i int)) {
	ForEachSpan(workers, n, 0, func(_ int, s Span) {
		for i := s.Lo; i < s.Hi; i++ {
			body(i)
		}
	})
}
