package dbg

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestUnionFindSmallestRoot: after any union sequence, every set's
// representative is its smallest member.
func TestUnionFindSmallestRoot(t *testing.T) {
	u := NewUnionFind()
	u.Union(9, 4)
	u.Union(4, 7)
	u.Union(100, 9)
	if got := u.Find(100); got != 4 {
		t.Errorf("Find(100) = %d, want smallest member 4", got)
	}
	u.Union(2, 100) // an even smaller member joins late
	for _, id := range []int64{2, 4, 7, 9, 100} {
		if got := u.Find(id); got != 2 {
			t.Errorf("Find(%d) = %d, want 2 after late union", id, got)
		}
	}
	u.Add(55)
	if got := u.Find(55); got != 55 {
		t.Errorf("singleton 55 has root %d", got)
	}
	if u.Same(55, 2) {
		t.Error("singleton reported joined")
	}
}

// TestUnionFindPermutationInvariant: the ctgID → componentID map is
// identical no matter the order unions are issued in — the canonical
// numbering the shard map's N-invariance rests on.
func TestUnionFindPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type edge struct{ a, b int64 }
	var edges []edge
	for i := 0; i < 400; i++ {
		edges = append(edges, edge{int64(rng.Intn(200)), int64(rng.Intn(200))})
	}

	build := func(order []edge) map[int64]int64 {
		u := NewUnionFind()
		for id := int64(0); id < 200; id++ {
			u.Add(id)
		}
		for _, e := range order {
			u.Union(e.a, e.b)
		}
		return u.Components()
	}

	want := build(edges)
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]edge(nil), edges...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := build(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: component map depends on union order", trial)
		}
	}
}

// TestUnionFindTransitivity: chains of unions connect, disjoint chains do
// not, and Components agrees with Same.
func TestUnionFindTransitivity(t *testing.T) {
	u := NewUnionFind()
	for id := int64(0); id < 10; id++ {
		u.Add(id)
	}
	u.Union(0, 1)
	u.Union(1, 2)
	u.Union(3, 4)
	if !u.Same(0, 2) {
		t.Error("0 and 2 should connect through 1")
	}
	if u.Same(2, 3) {
		t.Error("2 and 3 joined without a union path")
	}
	comps := u.Components()
	if comps[0] != comps[2] || comps[3] != comps[4] || comps[0] == comps[3] {
		t.Errorf("Components disagrees with Same: %v", comps)
	}
	if len(comps) != 10 {
		t.Errorf("Components holds %d ids, want 10", len(comps))
	}
}

// TestComponentBuilderSharedKeys: contigs sharing a key join one
// component, transitively through chains of keys, and the partition is
// feed-order invariant.
func TestComponentBuilderSharedKeys(t *testing.T) {
	type obs struct {
		id  int64
		key uint64
	}
	observations := []obs{
		{10, 0xa}, {20, 0xa}, // 10-20 share key a
		{20, 0xb}, {30, 0xb}, // 20-30 share key b → {10,20,30}
		{40, 0xc}, {50, 0xc}, // separate pair {40,50}
		{60, 0xd}, // 60 alone on key d
	}
	build := func(order []obs) map[int64]int64 {
		b := NewComponentBuilder()
		for _, id := range []int64{10, 20, 30, 40, 50, 60} {
			b.Add(id)
		}
		for _, o := range order {
			b.Link(o.id, o.key)
		}
		return b.Components()
	}
	want := map[int64]int64{10: 10, 20: 10, 30: 10, 40: 40, 50: 40, 60: 60}
	if got := build(observations); !reflect.DeepEqual(got, want) {
		t.Fatalf("components = %v, want %v", got, want)
	}

	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]obs(nil), observations...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := build(shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: partition depends on feed order: %v", trial, got)
		}
	}

	b := NewComponentBuilder()
	for _, o := range observations {
		b.Link(o.id, o.key)
	}
	if n := b.NumComponents(); n != 3 {
		t.Errorf("NumComponents = %d, want 3", n)
	}
}
