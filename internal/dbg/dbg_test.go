package dbg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/kmer"
)

func cfg(k int) Config { return Config{K: k, MinCount: 2} }

func randGenome(rng *rand.Rand, n int) []byte {
	g := make([]byte, n)
	for i := range g {
		g[i] = dna.Alphabet[rng.Intn(4)]
	}
	return g
}

// tile returns overlapping error-free reads covering g with ~depth x.
func tile(g []byte, readLen, stride int) [][]byte {
	var reads [][]byte
	for pos := 0; pos+readLen <= len(g); pos += stride {
		reads = append(reads, g[pos:pos+readLen])
	}
	return reads
}

func TestCountBasics(t *testing.T) {
	seqs := [][]byte{[]byte("ACGTAC")}
	tab, err := Count(seqs, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	// 3 windows: ACGT(palindrome), CGTA, GTAC; CGTA and GTAC are
	// reverse complements of TACG and GTAC... count canonical forms.
	if tab.Len() != 3 {
		t.Fatalf("got %d canonical k-mers", tab.Len())
	}
	km := kmer.MustFromString("ACGT")
	info, isSelf, ok := tab.Lookup(km)
	if !ok || !isSelf {
		t.Fatal("ACGT not found or not canonical")
	}
	if info.Count != 1 {
		t.Errorf("ACGT count %d", info.Count)
	}
}

func TestCountCanonicalMerging(t *testing.T) {
	// A sequence and its reverse complement must produce identical tables.
	g := []byte("ACGGTAACCGGTTACGTAGG")
	t1, _ := Count([][]byte{g}, cfg(5))
	t2, _ := Count([][]byte{dna.RevComp(g)}, cfg(5))
	if t1.Len() != t2.Len() {
		t.Fatalf("table sizes differ: %d vs %d", t1.Len(), t2.Len())
	}
	kmer.ForEach(g, 5, func(pos int, km kmer.Kmer) {
		i1, _, ok1 := t1.Lookup(km)
		i2, _, ok2 := t2.Lookup(km)
		if !ok1 || !ok2 {
			t.Fatalf("k-mer at %d missing", pos)
		}
		if i1.Count != i2.Count || i1.Left != i2.Left || i1.Right != i2.Right {
			t.Fatalf("k-mer at %d differs: %+v vs %+v", pos, i1, i2)
		}
	})
}

func TestCountExtensions(t *testing.T) {
	// In ACGTAA, the k-mer CGTA has left base A and right base A.
	tab, err := Count([][]byte{[]byte("ACGTAA")}, cfg(4))
	if err != nil {
		t.Fatal(err)
	}
	km := kmer.MustFromString("CGTA")
	info, isSelf, ok := tab.Lookup(km)
	if !ok {
		t.Fatal("CGT missing")
	}
	right := orientedRight(info, isSelf)
	left := orientedLeft(info, isSelf)
	if left[dna.BaseA] != 1 {
		t.Errorf("left exts %v, want A observed once", left)
	}
	if right[dna.BaseA] != 1 {
		t.Errorf("right exts %v, want A observed once", right)
	}
}

func TestFilterSingletons(t *testing.T) {
	g := []byte("ACGGTAACCGGTTACGTAGGACGGTAACCGGTTACGTAGG"[:30])
	reads := [][]byte{g, g, []byte("TTTTTGTTTTCTTGTATTTTGTTTGTTTGG")}
	tab, _ := Count(reads, cfg(21))
	before := tab.Len()
	dropped := tab.Filter(2)
	if dropped == 0 {
		t.Fatal("expected singleton k-mers to be dropped")
	}
	if tab.Len() != before-dropped {
		t.Error("Len inconsistent after filter")
	}
	// Every survivor has count ≥ 2.
	for _, km := range tab.sortedKmers() {
		if tab.m[km].Count < 2 {
			t.Fatal("singleton survived filter")
		}
	}
}

func TestContigsRecoverGenome(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randGenome(rng, 400)
	reads := tile(g, 60, 7) // deep, error-free coverage
	c := cfg(21)
	tab, err := Count(reads, c)
	if err != nil {
		t.Fatal(err)
	}
	tab.Filter(2)
	ctgs := tab.Contigs(c)
	if len(ctgs) != 1 {
		t.Fatalf("got %d contigs, want 1 (unambiguous coverage)", len(ctgs))
	}
	got := ctgs[0].Seq
	want := g[:len(g)] // full reconstruction up to read-tiling edges
	// The contig may be the reverse complement and may lose a few bases at
	// the genome edges where coverage drops below MinCount.
	if string(got) > string(dna.RevComp(got)) {
		got = dna.RevComp(got)
	}
	fwd := string(want)
	rc := string(dna.RevComp(want))
	if !strings.Contains(fwd, string(got)) && !strings.Contains(rc, string(got)) {
		t.Fatal("contig is not a substring of the genome")
	}
	if len(got) < len(g)-40 {
		t.Errorf("contig too short: %d of %d", len(got), len(g))
	}
	if ctgs[0].Depth < 2 {
		t.Errorf("depth %f, want ≥ 2", ctgs[0].Depth)
	}
}

func TestContigsForkSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Shared stem followed by two divergent branches at equal depth: the
	// graph forks and traversal must stop at the junction.
	stem := randGenome(rng, 150)
	brA := append(append([]byte(nil), stem...), randGenome(rng, 120)...)
	brB := append(append([]byte(nil), stem...), randGenome(rng, 120)...)
	reads := append(tile(brA, 50, 5), tile(brB, 50, 5)...)
	c := cfg(21)
	tab, _ := Count(reads, c)
	tab.Filter(2)
	ctgs := tab.Contigs(c)
	if len(ctgs) < 2 {
		t.Fatalf("got %d contigs, want the stem and branches separated", len(ctgs))
	}
	// No contig may span the junction: stem+branch contigs would contain
	// stem suffix AND branch prefix beyond k bases.
	junction := len(stem)
	for _, ctg := range ctgs {
		s := string(ctg.Seq)
		aTail := string(brA[junction : junction+30])
		stemTail := string(stem[junction-30 : junction])
		if strings.Contains(s, stemTail+aTail) {
			t.Error("a contig walked through the fork")
		}
	}
}

func TestContigsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randGenome(rng, 300)
	reads := tile(g, 50, 6)
	c := cfg(15)
	build := func() []Contig {
		tab, _ := Count(reads, c)
		tab.Filter(2)
		return tab.Contigs(c)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("contig counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Seq, b[i].Seq) {
			t.Fatalf("contig %d differs across runs", i)
		}
	}
}

func TestContigsMinLength(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := randGenome(rng, 120)
	reads := tile(g, 40, 5)
	c := cfg(21)
	c.MinCtgLen = 1000 // absurd: nothing passes
	tab, _ := Count(reads, c)
	tab.Filter(2)
	if ctgs := tab.Contigs(c); len(ctgs) != 0 {
		t.Errorf("MinCtgLen ignored: %d contigs", len(ctgs))
	}
}

func TestCountValidation(t *testing.T) {
	if _, err := Count(nil, Config{K: 2, MinCount: 2}); err == nil {
		t.Error("k=2 accepted")
	}
	if _, err := Count(nil, Config{K: 21, MinCount: 0}); err == nil {
		t.Error("MinCount=0 accepted")
	}
}

func TestUniqueExt(t *testing.T) {
	if b, ok := uniqueExt(ExtCounts{0, 5, 0, 0}, 2); !ok || b != 1 {
		t.Error("unique C not detected")
	}
	if _, ok := uniqueExt(ExtCounts{3, 5, 0, 0}, 2); ok {
		t.Error("two viable bases treated as unique")
	}
	if _, ok := uniqueExt(ExtCounts{1, 1, 1, 1}, 2); ok {
		t.Error("all-below-threshold treated as unique")
	}
	// Threshold boundary.
	if b, ok := uniqueExt(ExtCounts{0, 0, 2, 1}, 2); !ok || b != 2 {
		t.Error("threshold boundary wrong")
	}
}

func TestWorkersConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randGenome(rng, 500)
	reads := tile(g, 70, 9)
	c1 := cfg(17)
	c1.Workers = 1
	c8 := cfg(17)
	c8.Workers = 8
	t1, _ := Count(reads, c1)
	t8, _ := Count(reads, c8)
	if t1.Len() != t8.Len() {
		t.Fatalf("table sizes differ: %d vs %d", t1.Len(), t8.Len())
	}
	for _, km := range t1.sortedKmers() {
		if *t1.m[km] != *t8.m[km] {
			t.Fatal("worker counts changed table content")
		}
	}
}

func BenchmarkCountK21(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randGenome(rng, 5000)
	reads := tile(g, 150, 10)
	c := cfg(21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(reads, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraverse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randGenome(rng, 5000)
	reads := tile(g, 150, 10)
	c := cfg(21)
	tab, _ := Count(reads, c)
	tab.Filter(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Contigs(c)
	}
}
