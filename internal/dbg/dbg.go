// Package dbg implements the de Bruijn graph substrate of the pipeline:
// canonical k-mer counting over reads (the "k-mer analysis" stage), error
// filtering (k-mers occurring once are dropped, §2.2), and generation of
// contigs by traversing unambiguously connected paths ("contig generation").
package dbg

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/kmer"
)

func code(b byte) (byte, bool) { return dna.Code(b) }

// Config controls counting and traversal.
type Config struct {
	K int
	// MinCount is the error filter: k-mers with fewer occurrences are
	// dropped (2 removes singletons, as MetaHipMer does).
	MinCount uint32
	// MinCtgLen drops contigs shorter than this after traversal
	// (0 defaults to 2·K).
	MinCtgLen int
	// Workers bounds counting parallelism (0 = GOMAXPROCS).
	Workers int
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.K < 4 || c.K > kmer.MaxK {
		return fmt.Errorf("dbg: k %d outside [4,%d]", c.K, kmer.MaxK)
	}
	if c.MinCount < 1 {
		return fmt.Errorf("dbg: MinCount must be ≥ 1")
	}
	return nil
}

// ExtCounts counts observations of each base (2-bit code order) adjacent to
// a k-mer.
type ExtCounts [4]uint32

// Info is the per-canonical-k-mer record.
type Info struct {
	Count uint32
	// Left and Right count the bases observed before/after the k-mer in
	// its canonical orientation.
	Left  ExtCounts
	Right ExtCounts
}

// Table holds counted canonical k-mers.
type Table struct {
	K int
	m map[kmer.Kmer]*Info
}

// NewTable wraps an already-counted canonical-k-mer map in a Table — the
// GPU budget counter builds its map by merging device passes and hands it
// over here, so the traversal code sees one table regardless of how it
// was counted. A nil map yields an empty table.
func NewTable(k int, m map[kmer.Kmer]*Info) *Table {
	if m == nil {
		m = make(map[kmer.Kmer]*Info)
	}
	return &Table{K: k, m: m}
}

// Len returns the number of distinct canonical k-mers.
func (t *Table) Len() int { return len(t.m) }

// Lookup returns the info for a k-mer (any orientation) plus whether the
// given orientation is the canonical one.
func (t *Table) Lookup(km kmer.Kmer) (*Info, bool, bool) {
	canon, isSelf := km.Canonical(t.K)
	info, ok := t.m[canon]
	return info, isSelf, ok
}

const countShards = 64

// Count tallies canonical k-mers and their extensions across sequences.
// Sharded locking keeps it parallel while the result stays deterministic
// (counts are commutative).
func Count(seqs [][]byte, cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type shard struct {
		mu sync.Mutex
		m  map[kmer.Kmer]*Info
	}
	shards := make([]shard, countShards)
	for i := range shards {
		shards[i].m = make(map[kmer.Kmer]*Info)
	}

	var wg sync.WaitGroup
	next := make(chan []byte)
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			for seq := range next {
				countSeq(seq, cfg.K, func(canon kmer.Kmer, left, right int) {
					s := &shards[canon.Hash(0)%countShards]
					s.mu.Lock()
					info := s.m[canon]
					if info == nil {
						info = &Info{}
						s.m[canon] = info
					}
					info.Count++
					if left >= 0 {
						info.Left[left]++
					}
					if right >= 0 {
						info.Right[right]++
					}
					s.mu.Unlock()
				})
			}
		}()
	}
	for _, s := range seqs {
		next <- s
	}
	close(next)
	wg.Wait()

	merged := make(map[kmer.Kmer]*Info)
	for i := range shards {
		for k, v := range shards[i].m {
			merged[k] = v
		}
	}
	return &Table{K: cfg.K, m: merged}, nil
}

// countSeq walks one sequence, reporting each k-mer occurrence in canonical
// orientation with its adjacent bases (−1 when absent/ambiguous).
func countSeq(seq []byte, k int, emit func(canon kmer.Kmer, left, right int)) {
	kmer.ForEach(seq, k, func(pos int, km kmer.Kmer) {
		left, right := -1, -1
		if pos > 0 {
			if c, ok := code(seq[pos-1]); ok {
				left = int(c)
			}
		}
		if pos+k < len(seq) {
			if c, ok := code(seq[pos+k]); ok {
				right = int(c)
			}
		}
		canon, isSelf := km.Canonical(k)
		if !isSelf {
			// In the canonical orientation the preceding base becomes the
			// following base, complemented (and vice versa).
			left, right = comp(right), comp(left)
		}
		emit(canon, left, right)
	})
}

func comp(c int) int {
	if c < 0 {
		return -1
	}
	return c ^ 3
}

// Filter removes k-mers below MinCount, returning how many were dropped —
// the singleton-error filter of the k-mer analysis stage.
func (t *Table) Filter(minCount uint32) int {
	dropped := 0
	for k, info := range t.m {
		if info.Count < minCount {
			delete(t.m, k)
			dropped++
		}
	}
	return dropped
}

// sortedKmers returns the canonical k-mers in deterministic order.
func (t *Table) sortedKmers() []kmer.Kmer {
	ks := make([]kmer.Kmer, 0, len(t.m))
	for k := range t.m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].Less(ks[j]) })
	return ks
}
