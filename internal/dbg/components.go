// Connected-component discovery over the contig graph.
//
// Metagenome de Bruijn graphs decompose into many disconnected components —
// one (or a few) per organism in communities without conserved shared
// sequence — and that structure is the basis of component-partitioned
// distribution (ParBLiSS metag_partitioning): a whole component can be
// owned, assembled, and extended by one rank with no cross-rank traffic.
// This file provides the deterministic union-find substrate: contigs join
// one component when they share a linking key (a candidate read, or a
// (k−1)-base end window — the dBG adjacency), and components are numbered
// canonically by their smallest member contig ID, so the resulting
// partition is a pure function of the input set, invariant under insertion
// order and rank count.

package dbg

// UnionFind is a disjoint-set forest over int64 contig IDs. Roots are
// always the smallest member of their set, which makes component numbering
// canonical for free: Find(x) IS the component ID of x, and the partition
// it induces is independent of the order unions were issued in.
type UnionFind struct {
	parent map[int64]int64
}

// NewUnionFind returns an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[int64]int64)}
}

// Add registers an ID as its own singleton set (no-op if present).
func (u *UnionFind) Add(id int64) {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
	}
}

// Len returns the number of registered IDs.
func (u *UnionFind) Len() int { return len(u.parent) }

// Find returns the set representative of id: the smallest member of its
// component. Unregistered IDs are added as singletons. Path halving keeps
// chains short without disturbing the smallest-root invariant.
func (u *UnionFind) Find(id int64) int64 {
	u.Add(id)
	for u.parent[id] != id {
		u.parent[id] = u.parent[u.parent[id]]
		id = u.parent[id]
	}
	return id
}

// Union merges the sets of a and b. The smaller root becomes the parent,
// so a set's representative is always its minimum member — by induction:
// both roots are their sets' minima, and the merged root is the smaller of
// the two.
func (u *UnionFind) Union(a, b int64) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// Same reports whether a and b are in one component.
func (u *UnionFind) Same(a, b int64) bool { return u.Find(a) == u.Find(b) }

// Components returns the full id → componentID map, where a component's ID
// is its smallest member. Iteration order of the underlying map is
// irrelevant: every entry is resolved through Find, a pure function of the
// set structure.
func (u *UnionFind) Components() map[int64]int64 {
	out := make(map[int64]int64, len(u.parent))
	for id := range u.parent {
		out[id] = u.Find(id)
	}
	return out
}

// ComponentBuilder joins contigs that share linking keys: feed every
// (contig, key) observation in any order and the final components are the
// connected components of the bipartite contig/key graph — contigs
// reachable from one another through any chain of shared keys end up in
// one set. Keys are opaque uint64s; callers hash whatever adjacency they
// model (candidate read IDs, canonical end-window k-mers).
type ComponentBuilder struct {
	uf *UnionFind
	// anchor maps each key to the first contig observed with it; later
	// holders union against the anchor. Which contig anchors a key depends
	// on feed order, but the induced partition does not: union is
	// symmetric and transitive, so any representative yields the same
	// connected components.
	anchor map[uint64]int64
}

// NewComponentBuilder returns an empty builder.
func NewComponentBuilder() *ComponentBuilder {
	return &ComponentBuilder{uf: NewUnionFind(), anchor: make(map[uint64]int64)}
}

// Add registers a contig with no links yet (its own component until a
// shared key joins it to another).
func (b *ComponentBuilder) Add(id int64) { b.uf.Add(id) }

// Link records that contig id carries key, unioning it with every other
// contig sharing that key.
func (b *ComponentBuilder) Link(id int64, key uint64) {
	b.uf.Add(id)
	if first, ok := b.anchor[key]; ok {
		b.uf.Union(first, id)
		return
	}
	b.anchor[key] = id
}

// Components returns the canonical ctgID → componentID map (component ID =
// smallest member contig ID).
func (b *ComponentBuilder) Components() map[int64]int64 {
	return b.uf.Components()
}

// NumComponents counts the distinct components among registered contigs.
func (b *ComponentBuilder) NumComponents() int {
	roots := make(map[int64]struct{})
	for id := range b.uf.parent {
		roots[b.uf.Find(id)] = struct{}{}
	}
	return len(roots)
}
