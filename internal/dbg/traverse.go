package dbg

import (
	"mhm2sim/internal/dna"
	"mhm2sim/internal/kmer"
)

// Contig is one unambiguous path through the de Bruijn graph.
type Contig struct {
	ID    int64
	Seq   []byte
	Depth float64 // mean k-mer count along the path
}

// orientedRight returns the extension counts following the k-mer in the
// walker's orientation (isSelf = the walker holds the canonical form).
func orientedRight(info *Info, isSelf bool) ExtCounts {
	if isSelf {
		return info.Right
	}
	return flip(info.Left)
}

// orientedLeft is the mirror of orientedRight.
func orientedLeft(info *Info, isSelf bool) ExtCounts {
	if isSelf {
		return info.Left
	}
	return flip(info.Right)
}

// flip complements an extension-count vector (A<->T, C<->G).
func flip(e ExtCounts) ExtCounts {
	return ExtCounts{e[3], e[2], e[1], e[0]}
}

// uniqueExt returns the single base with count ≥ minCount, if exactly one
// exists.
func uniqueExt(e ExtCounts, minCount uint32) (byte, bool) {
	found := -1
	for b := 0; b < 4; b++ {
		if e[b] >= minCount {
			if found >= 0 {
				return 0, false
			}
			found = b
		}
	}
	if found < 0 {
		return 0, false
	}
	return byte(found), true
}

// Contigs traverses every maximal unambiguously connected path and returns
// the resulting contigs, deterministically (start k-mers are processed in
// sorted order). Each k-mer is consumed by at most one contig.
func (t *Table) Contigs(cfg Config) []Contig {
	minCtg := cfg.MinCtgLen
	if minCtg <= 0 {
		minCtg = 2 * t.K
	}
	visited := make(map[kmer.Kmer]bool, len(t.m))
	var out []Contig
	var id int64

	for _, start := range t.sortedKmers() {
		if visited[start] {
			continue
		}
		seq, path := t.walkBothWays(start, cfg.MinCount, visited)
		var depth float64
		for _, km := range path {
			visited[km] = true
			depth += float64(t.m[km].Count)
		}
		if len(seq) < minCtg {
			continue
		}
		depth /= float64(len(path))
		// Canonical output orientation: the lexicographically smaller of
		// the sequence and its reverse complement, so results don't depend
		// on traversal direction.
		rc := dna.RevComp(seq)
		if string(rc) < string(seq) {
			seq = rc
		}
		out = append(out, Contig{ID: id, Seq: seq, Depth: depth})
		id++
	}
	return out
}

// walkBothWays extends from start in both directions and returns the
// assembled sequence plus the canonical k-mers consumed.
func (t *Table) walkBothWays(start kmer.Kmer, minCount uint32, visited map[kmer.Kmer]bool) ([]byte, []kmer.Kmer) {
	k := t.K
	seq := start.Bytes(k)
	canonStart, _ := start.Canonical(k)
	path := []kmer.Kmer{canonStart}
	onPath := map[kmer.Kmer]bool{canonStart: true}

	// Rightward.
	cur := start
	for {
		next, ok := t.step(cur, minCount)
		if !ok {
			break
		}
		canon, _ := next.Canonical(k)
		if visited[canon] || onPath[canon] {
			break
		}
		seq = append(seq, dna.Alphabet[next.Get(k-1)])
		path = append(path, canon)
		onPath[canon] = true
		cur = next
	}

	// Leftward: walk rightward on the reverse complement, then flip.
	cur = start.RevComp(k)
	var leftExt []byte
	for {
		next, ok := t.step(cur, minCount)
		if !ok {
			break
		}
		canon, _ := next.Canonical(k)
		if visited[canon] || onPath[canon] {
			break
		}
		leftExt = append(leftExt, dna.Alphabet[next.Get(k-1)])
		path = append(path, canon)
		onPath[canon] = true
		cur = next
	}
	if len(leftExt) > 0 {
		full := append(dna.RevComp(leftExt), seq...)
		seq = full
	}
	return seq, path
}

// step advances one base rightward from cur when the junction is fully
// unambiguous: cur's right extension is unique, the successor exists, and
// the successor's unique left extension points back at cur.
func (t *Table) step(cur kmer.Kmer, minCount uint32) (kmer.Kmer, bool) {
	info, isSelf, ok := t.Lookup(cur)
	if !ok {
		return kmer.Kmer{}, false
	}
	b, uniq := uniqueExt(orientedRight(info, isSelf), minCount)
	if !uniq {
		return kmer.Kmer{}, false
	}
	next := cur.Append(t.K, b)
	infoN, isSelfN, ok := t.Lookup(next)
	if !ok {
		return kmer.Kmer{}, false
	}
	back, uniqN := uniqueExt(orientedLeft(infoN, isSelfN), minCount)
	if !uniqN || back != cur.Get(0) {
		return kmer.Kmer{}, false
	}
	return next, true
}
