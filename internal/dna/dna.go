// Package dna provides the DNA-sequence primitives shared by every stage of
// the assembler: base codes, reverse complements, Phred quality scores, and
// sequencing reads.
//
// Sequences are kept as plain ASCII byte slices (the representation the
// local-assembly hash tables index into with pointer-compressed keys), with
// optional 2-bit packing for the k-mer layer.
package dna

import "fmt"

// Bases in their canonical 2-bit encoding. Every function in this package
// and in package kmer agrees on A=0, C=1, G=2, T=3.
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
)

// Alphabet lists the ASCII bases in 2-bit code order.
var Alphabet = [4]byte{'A', 'C', 'G', 'T'}

// codeOf maps ASCII to the 2-bit code, with 0xff marking non-ACGT bytes.
var codeOf [256]byte

func init() {
	for i := range codeOf {
		codeOf[i] = 0xff
	}
	codeOf['A'], codeOf['a'] = BaseA, BaseA
	codeOf['C'], codeOf['c'] = BaseC, BaseC
	codeOf['G'], codeOf['g'] = BaseG, BaseG
	codeOf['T'], codeOf['t'] = BaseT, BaseT
}

// Code returns the 2-bit code of an ASCII base and whether the byte was a
// valid unambiguous base (ACGT, either case).
func Code(b byte) (byte, bool) {
	c := codeOf[b]
	return c, c != 0xff
}

// IsACGT reports whether b is an unambiguous base.
func IsACGT(b byte) bool { return codeOf[b] != 0xff }

// Complement returns the Watson-Crick complement of an ASCII base.
// Non-ACGT bytes (e.g. 'N') complement to 'N'.
func Complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	default:
		return 'N'
	}
}

// RevComp returns the reverse complement of seq as a new slice.
func RevComp(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = Complement(b)
	}
	return out
}

// RevCompInPlace reverse-complements seq without allocating.
func RevCompInPlace(seq []byte) {
	i, j := 0, len(seq)-1
	for i < j {
		seq[i], seq[j] = Complement(seq[j]), Complement(seq[i])
		i, j = i+1, j-1
	}
	if i == j {
		seq[i] = Complement(seq[i])
	}
}

// CountValid returns how many bytes of seq are unambiguous bases.
func CountValid(seq []byte) int {
	n := 0
	for _, b := range seq {
		if IsACGT(b) {
			n++
		}
	}
	return n
}

// Phred quality handling. MetaHipMer treats extensions backed by bases at or
// above a quality threshold as "high quality" evidence and the rest as "low
// quality" (§2.3: the extension object records base quality and counts).
const (
	// QualOffset is the Sanger/Illumina-1.8 ASCII offset.
	QualOffset = 33
	// QualCutoff is the Phred score at or above which a base counts as
	// high-quality evidence for an extension (MetaHipMer uses 20).
	QualCutoff = 20
	// MaxQual caps encoded qualities.
	MaxQual = 41
)

// QualScore converts an ASCII quality byte to its Phred score.
func QualScore(q byte) int { return int(q) - QualOffset }

// QualChar converts a Phred score to its ASCII encoding, clamped to
// [0, MaxQual].
func QualChar(score int) byte {
	if score < 0 {
		score = 0
	}
	if score > MaxQual {
		score = MaxQual
	}
	return byte(score + QualOffset)
}

// Read is one sequencing read: an identifier, the base string, and
// per-base Phred qualities (same length as Seq).
type Read struct {
	ID   string
	Seq  []byte
	Qual []byte
}

// Validate checks the structural invariants of a read.
func (r *Read) Validate() error {
	if len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("dna: read %s: seq len %d != qual len %d", r.ID, len(r.Seq), len(r.Qual))
	}
	for i, q := range r.Qual {
		if s := QualScore(q); s < 0 || s > MaxQual+10 {
			return fmt.Errorf("dna: read %s: bad quality %q at %d", r.ID, q, i)
		}
	}
	return nil
}

// Clone deep-copies the read.
func (r *Read) Clone() Read {
	return Read{
		ID:   r.ID,
		Seq:  append([]byte(nil), r.Seq...),
		Qual: append([]byte(nil), r.Qual...),
	}
}

// RevComp returns the reverse-complemented read: sequence reverse
// complemented, qualities reversed.
func (r *Read) RevComp() Read {
	rc := Read{ID: r.ID, Seq: RevComp(r.Seq), Qual: make([]byte, len(r.Qual))}
	for i, q := range r.Qual {
		rc.Qual[len(r.Qual)-1-i] = q
	}
	return rc
}

// PairedRead is a fragment sequenced from both ends: Fwd from the 5' end of
// the fragment, Rev from the 3' end (already reported in the orientation the
// sequencer emits, i.e. the reverse complement of the fragment's tail).
type PairedRead struct {
	Fwd Read
	Rev Read
	// InsertSize is the fragment length the pair was drawn from, when
	// known (synthetic data); 0 otherwise.
	InsertSize int
}

// Pack2Bit packs seq (ACGT only) into 2-bit codes, 4 bases per byte,
// little-endian within the byte. It returns an error on ambiguous bases.
func Pack2Bit(seq []byte) ([]byte, error) {
	out := make([]byte, (len(seq)+3)/4)
	for i, b := range seq {
		c, ok := Code(b)
		if !ok {
			return nil, fmt.Errorf("dna: cannot 2-bit pack ambiguous base %q at %d", b, i)
		}
		out[i/4] |= c << uint((i%4)*2)
	}
	return out, nil
}

// Unpack2Bit expands packed 2-bit codes back into n ASCII bases.
func Unpack2Bit(packed []byte, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		c := (packed[i/4] >> uint((i%4)*2)) & 3
		out[i] = Alphabet[c]
	}
	return out
}
