package dna

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCode(t *testing.T) {
	for i, b := range []byte{'A', 'C', 'G', 'T'} {
		c, ok := Code(b)
		if !ok || c != byte(i) {
			t.Errorf("Code(%q) = %d,%v want %d,true", b, c, ok, i)
		}
		lc, ok := Code(b + 'a' - 'A')
		if !ok || lc != byte(i) {
			t.Errorf("lowercase Code(%q) = %d,%v want %d,true", b+'a'-'A', lc, ok, i)
		}
	}
	for _, b := range []byte{'N', 'X', '-', 0, ' '} {
		if _, ok := Code(b); ok {
			t.Errorf("Code(%q) unexpectedly valid", b)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{'A': 'T', 'T': 'A', 'C': 'G', 'G': 'C', 'N': 'N'}
	for b, want := range pairs {
		if got := Complement(b); got != want {
			t.Errorf("Complement(%q) = %q, want %q", b, got, want)
		}
	}
}

func TestRevComp(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"A", "T"},
		{"ACGT", "ACGT"}, // palindrome
		{"AACGT", "ACGTT"},
		{"GATTACA", "TGTAATC"},
	}
	for _, c := range cases {
		if got := string(RevComp([]byte(c.in))); got != c.want {
			t.Errorf("RevComp(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRevCompInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = Alphabet[b%4]
		}
		back := RevComp(RevComp(seq))
		return bytes.Equal(seq, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRevCompInPlaceMatchesRevComp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(31)
		seq := make([]byte, n)
		for i := range seq {
			seq[i] = Alphabet[rng.Intn(4)]
		}
		want := RevComp(seq)
		got := append([]byte(nil), seq...)
		RevCompInPlace(got)
		if !bytes.Equal(got, want) {
			t.Fatalf("RevCompInPlace(%q) = %q, want %q", seq, got, want)
		}
	}
}

func TestQualRoundTrip(t *testing.T) {
	for s := 0; s <= MaxQual; s++ {
		if got := QualScore(QualChar(s)); got != s {
			t.Errorf("QualScore(QualChar(%d)) = %d", s, got)
		}
	}
	if QualChar(-5) != QualChar(0) {
		t.Error("negative scores should clamp to 0")
	}
	if QualChar(99) != QualChar(MaxQual) {
		t.Error("large scores should clamp to MaxQual")
	}
}

func TestReadValidate(t *testing.T) {
	good := Read{ID: "r1", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	if err := good.Validate(); err != nil {
		t.Errorf("valid read rejected: %v", err)
	}
	bad := Read{ID: "r2", Seq: []byte("ACGT"), Qual: []byte("II")}
	if err := bad.Validate(); err == nil {
		t.Error("length-mismatched read accepted")
	}
	badQ := Read{ID: "r3", Seq: []byte("A"), Qual: []byte{3}}
	if err := badQ.Validate(); err == nil {
		t.Error("read with sub-offset quality accepted")
	}
}

func TestReadRevComp(t *testing.T) {
	r := Read{ID: "r", Seq: []byte("AACG"), Qual: []byte("!#%'")}
	rc := r.RevComp()
	if string(rc.Seq) != "CGTT" {
		t.Errorf("RevComp seq = %q", rc.Seq)
	}
	if string(rc.Qual) != "'%#!" {
		t.Errorf("RevComp qual = %q", rc.Qual)
	}
	// Original untouched.
	if string(r.Seq) != "AACG" {
		t.Errorf("original mutated: %q", r.Seq)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := Read{ID: "r", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	c := r.Clone()
	c.Seq[0] = 'T'
	c.Qual[0] = '#'
	if r.Seq[0] != 'A' || r.Qual[0] != 'I' {
		t.Error("Clone shares backing arrays")
	}
}

func TestPack2BitRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make([]byte, len(raw))
		for i, b := range raw {
			seq[i] = Alphabet[b%4]
		}
		packed, err := Pack2Bit(seq)
		if err != nil {
			return false
		}
		return bytes.Equal(Unpack2Bit(packed, len(seq)), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPack2BitRejectsAmbiguous(t *testing.T) {
	if _, err := Pack2Bit([]byte("ACNGT")); err == nil {
		t.Error("expected error for 'N'")
	}
}

func TestCountValid(t *testing.T) {
	if got := CountValid([]byte("ACNGT-x")); got != 4 {
		t.Errorf("CountValid = %d, want 4", got)
	}
}

func BenchmarkRevComp150(b *testing.B) {
	seq := bytes.Repeat([]byte("ACGT"), 38)[:150]
	b.SetBytes(150)
	for i := 0; i < b.N; i++ {
		RevCompInPlace(seq)
	}
}
