package dna

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// WriteFASTQ writes reads in 4-line FASTQ format.
func WriteFASTQ(w io.Writer, reads []Read) error {
	bw := bufio.NewWriter(w)
	for i := range reads {
		r := &reads[i]
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, r.Qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses 4-line FASTQ records until EOF.
func ReadFASTQ(r io.Reader) ([]Read, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var reads []Read
	line := 0
	for {
		rec, err := readFASTQRecord(sc, &line)
		if err == io.EOF {
			return reads, nil
		}
		if err != nil {
			return nil, err
		}
		reads = append(reads, rec)
	}
}

// ReadInterleavedPairs parses an interleaved paired FASTQ (fwd, rev, fwd,
// rev, …) into pairs — the input format of mhm2sim -reads and of service
// jobs with a reads_path.
func ReadInterleavedPairs(r io.Reader) ([]PairedRead, error) {
	reads, err := ReadFASTQ(r)
	if err != nil {
		return nil, err
	}
	if len(reads)%2 != 0 {
		return nil, fmt.Errorf("dna: FASTQ holds %d reads; expected interleaved pairs", len(reads))
	}
	pairs := make([]PairedRead, len(reads)/2)
	for i := range pairs {
		pairs[i] = PairedRead{Fwd: reads[2*i], Rev: reads[2*i+1]}
	}
	return pairs, nil
}

func readFASTQRecord(sc *bufio.Scanner, line *int) (Read, error) {
	// Header line.
	hdr, err := nextLine(sc, line)
	if err != nil {
		return Read{}, err
	}
	if len(hdr) == 0 || hdr[0] != '@' {
		return Read{}, fmt.Errorf("dna: fastq line %d: expected '@' header, got %q", *line, hdr)
	}
	seq, err := nextLine(sc, line)
	if err != nil {
		return Read{}, fmt.Errorf("dna: fastq line %d: truncated record: %v", *line, err)
	}
	plus, err := nextLine(sc, line)
	if err != nil || len(plus) == 0 || plus[0] != '+' {
		return Read{}, fmt.Errorf("dna: fastq line %d: expected '+' separator", *line)
	}
	qual, err := nextLine(sc, line)
	if err != nil {
		return Read{}, fmt.Errorf("dna: fastq line %d: truncated record: %v", *line, err)
	}
	if len(qual) != len(seq) {
		return Read{}, fmt.Errorf("dna: fastq line %d: qual len %d != seq len %d", *line, len(qual), len(seq))
	}
	id := string(bytes.Fields(hdr[1:])[0])
	return Read{
		ID:   id,
		Seq:  append([]byte(nil), seq...),
		Qual: append([]byte(nil), qual...),
	}, nil
}

func nextLine(sc *bufio.Scanner, line *int) ([]byte, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	*line++
	return bytes.TrimRight(sc.Bytes(), "\r"), nil
}

// WriteFASTA writes sequences in FASTA format with the given line width
// (or unwrapped when width <= 0). Names and sequences are matched by index.
func WriteFASTA(w io.Writer, names []string, seqs [][]byte, width int) error {
	if len(names) != len(seqs) {
		return fmt.Errorf("dna: fasta: %d names but %d sequences", len(names), len(seqs))
	}
	bw := bufio.NewWriter(w)
	for i, name := range names {
		if _, err := fmt.Fprintf(bw, ">%s\n", name); err != nil {
			return err
		}
		s := seqs[i]
		if width <= 0 {
			width = len(s)
		}
		for off := 0; off < len(s); off += width {
			end := off + width
			if end > len(s) {
				end = len(s)
			}
			if _, err := bw.Write(s[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA records until EOF.
func ReadFASTA(r io.Reader) (names []string, seqs [][]byte, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var cur []byte
	flush := func() {
		if len(names) > len(seqs) {
			seqs = append(seqs, cur)
			cur = nil
		}
	}
	for sc.Scan() {
		line := bytes.TrimRight(sc.Bytes(), "\r")
		if len(line) == 0 {
			continue
		}
		if line[0] == '>' {
			flush()
			names = append(names, string(bytes.Fields(line[1:])[0]))
			continue
		}
		if len(names) == 0 {
			return nil, nil, fmt.Errorf("dna: fasta: sequence data before first header")
		}
		cur = append(cur, line...)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	flush()
	return names, seqs, nil
}
