package dna

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomReads(rng *rand.Rand, n int) []Read {
	reads := make([]Read, n)
	for i := range reads {
		l := 50 + rng.Intn(101)
		seq := make([]byte, l)
		qual := make([]byte, l)
		for j := range seq {
			seq[j] = Alphabet[rng.Intn(4)]
			qual[j] = QualChar(rng.Intn(MaxQual + 1))
		}
		reads[i] = Read{ID: "read" + string(rune('A'+i%26)) + "x", Seq: seq, Qual: qual}
	}
	return reads
}

func TestFASTQRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	reads := randomReads(rng, 25)
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reads) {
		t.Fatalf("round trip: %d reads, want %d", len(back), len(reads))
	}
	for i := range reads {
		if back[i].ID != reads[i].ID ||
			!bytes.Equal(back[i].Seq, reads[i].Seq) ||
			!bytes.Equal(back[i].Qual, reads[i].Qual) {
			t.Fatalf("read %d mismatch after round trip", i)
		}
	}
}

func TestFASTQHeaderComment(t *testing.T) {
	in := "@r1 extra comment stuff\nACGT\n+\nIIII\n"
	reads, err := ReadFASTQ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 1 || reads[0].ID != "r1" {
		t.Fatalf("got %+v", reads)
	}
}

func TestFASTQErrors(t *testing.T) {
	cases := []string{
		"ACGT\n+\nIIII\n",      // missing @
		"@r1\nACGT\nIIII\n+\n", // + not where expected
		"@r1\nACGT\n+\nII\n",   // qual length mismatch
		"@r1\nACGT\n+\n",       // truncated
		"@r1\nACGT\n",          // truncated earlier
	}
	for _, in := range cases {
		if _, err := ReadFASTQ(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestFASTQEmpty(t *testing.T) {
	reads, err := ReadFASTQ(strings.NewReader(""))
	if err != nil || len(reads) != 0 {
		t.Fatalf("empty input: %v, %d reads", err, len(reads))
	}
}

func TestFASTQCRLF(t *testing.T) {
	in := "@r1\r\nACGT\r\n+\r\nIIII\r\n"
	reads, err := ReadFASTQ(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(reads[0].Seq) != "ACGT" {
		t.Errorf("CRLF not stripped: %q", reads[0].Seq)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	names := []string{"ctg1", "ctg2", "ctg3"}
	seqs := [][]byte{
		bytes.Repeat([]byte("ACGT"), 40),
		[]byte("GATTACA"),
		[]byte(""),
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, names, seqs, 60); err != nil {
		t.Fatal(err)
	}
	backNames, backSeqs, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(backNames) != 3 {
		t.Fatalf("got %d records", len(backNames))
	}
	for i := range names {
		if backNames[i] != names[i] || !bytes.Equal(backSeqs[i], seqs[i]) {
			t.Errorf("record %d mismatch: %q/%q", i, backNames[i], backSeqs[i])
		}
	}
}

func TestFASTAWrapping(t *testing.T) {
	var buf bytes.Buffer
	seq := bytes.Repeat([]byte("A"), 125)
	if err := WriteFASTA(&buf, []string{"x"}, [][]byte{seq}, 50); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // header + 50 + 50 + 25
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	if len(lines[1]) != 50 || len(lines[3]) != 25 {
		t.Errorf("bad wrapping: %d/%d", len(lines[1]), len(lines[3]))
	}
}

func TestFASTAErrors(t *testing.T) {
	if _, _, err := ReadFASTA(strings.NewReader("ACGT\n>late\n")); err == nil {
		t.Error("sequence before header accepted")
	}
	if err := WriteFASTA(&bytes.Buffer{}, []string{"a"}, nil, 0); err == nil {
		t.Error("mismatched names/seqs accepted")
	}
}
