package cluster

import (
	"math"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/simt"
)

// buildWorkload makes a small but non-trivial local-assembly workload:
// contigs cut from hidden genomes with reads tiling past the ends.
func buildWorkload(t *testing.T, n int) ([]*locassm.CtgWithReads, locassm.Config) {
	t.Helper()
	cfg := locassm.Config{
		MinMer: 11, MaxMer: 19, StartMer: 15, MerStep: 4,
		MaxWalkLen: 120, MaxIters: 8,
		QualCutoff: dna.QualCutoff, MinViableScore: 2, MaxReadLen: 150,
	}
	rng := rand.New(rand.NewSource(99))
	var ctgs []*locassm.CtgWithReads
	for i := 0; i < n; i++ {
		genome := make([]byte, 600)
		for j := range genome {
			genome[j] = dna.Alphabet[rng.Intn(4)]
		}
		c := &locassm.CtgWithReads{ID: int64(i), Seq: append([]byte(nil), genome[200:400]...)}
		for pos := 330; pos+80 <= 600; pos += 9 {
			q := make([]byte, 80)
			for k := range q {
				q[k] = dna.QualChar(35)
			}
			c.RightReads = append(c.RightReads, dna.Read{
				ID: "r", Seq: append([]byte(nil), genome[pos:pos+80]...), Qual: q,
			})
		}
		ctgs = append(ctgs, c)
	}
	return ctgs, cfg
}

func buildModel(t *testing.T, n int) (*Model, locassm.Config) {
	t.Helper()
	ctgs, cfg := buildWorkload(t, n)
	m, err := ModelFromWorkload(ctgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, cfg
}

func TestNewModelRequiresKernels(t *testing.T) {
	if _, err := NewModel(simtV100(), &locassm.CPUResult{}, &locassm.GPUResult{}); err == nil {
		t.Error("empty GPU result accepted")
	}
}

func TestCPUNodeSecondsLinear(t *testing.T) {
	m, _ := buildModel(t, 10)
	a := m.CPUNodeSeconds(1)
	b := m.CPUNodeSeconds(2)
	if math.Abs(b-2*a) > 1e-9 {
		t.Errorf("CPU time not linear: %g vs 2×%g", b, a)
	}
	if a <= 0 {
		t.Error("zero CPU time")
	}
}

func TestGPUSecondsFloorAndLinearRegimes(t *testing.T) {
	m, _ := buildModel(t, 10)
	// Deep floor: shrinking the workload further barely changes time.
	tiny := m.GPUSeconds(0.01)
	tinier := m.GPUSeconds(0.005)
	if rel := math.Abs(tiny-tinier) / tiny; rel > 0.05 {
		t.Errorf("no latency floor: %g vs %g", tiny, tinier)
	}
	// Linear regime: large workloads scale proportionally.
	big := m.GPUSeconds(2000)
	bigger := m.GPUSeconds(4000)
	if ratio := bigger / big; ratio < 1.9 || ratio > 2.1 {
		t.Errorf("linear regime broken: ratio %f", ratio)
	}
	// Monotonicity.
	if m.GPUSeconds(10) > m.GPUSeconds(100) {
		t.Error("GPU time not monotone in work")
	}
}

func TestLAScalingShape(t *testing.T) {
	m, _ := buildModel(t, 12)
	f64, err := m.FitScaling(7.2, 2.65)
	if err != nil {
		t.Fatal(err)
	}
	pts := m.LAScaling([]int{64, 128, 256, 512, 1024}, f64)
	if len(pts) != 5 {
		t.Fatal("wrong point count")
	}
	// Endpoints calibrated.
	if math.Abs(pts[0].Speedup-7.2) > 0.15 {
		t.Errorf("64-node speedup %f, want ≈7.2", pts[0].Speedup)
	}
	if math.Abs(pts[4].Speedup-2.65) > 0.15 {
		t.Errorf("1024-node speedup %f, want ≈2.65", pts[4].Speedup)
	}
	for i := 1; i < len(pts); i++ {
		// CPU halves each doubling (perfect strong scaling).
		if r := pts[i-1].CPUSec / pts[i].CPUSec; math.Abs(r-2) > 1e-3 {
			t.Errorf("CPU scaling at %d nodes: factor %f", pts[i].Nodes, r)
		}
		// GPU advantage never grows with node count.
		if pts[i].Speedup > pts[i-1].Speedup+1e-9 {
			t.Errorf("speedup increased at %d nodes", pts[i].Nodes)
		}
		// GPU still wins everywhere (paper: 2.65x at worst).
		if pts[i].Speedup < 1 {
			t.Errorf("GPU slower than CPU at %d nodes", pts[i].Nodes)
		}
	}
}

func TestFitScalingValidation(t *testing.T) {
	m, _ := buildModel(t, 6)
	if _, err := m.FitScaling(2, 3); err == nil {
		t.Error("inverted targets accepted")
	}
	if _, err := m.FitScaling(7.2, 0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestFitRatio(t *testing.T) {
	m, _ := buildModel(t, 8)
	if _, err := m.FitScaling(7.2, 2.65); err != nil {
		t.Fatal(err)
	}
	f, err := m.FitRatio(4.3)
	if err != nil {
		t.Fatal(err)
	}
	got := m.CPUNodeSeconds(f) / m.GPUNodeSeconds(f)
	if math.Abs(got-4.3) > 0.1 {
		t.Errorf("FitRatio landed at %f, want 4.3", got)
	}
}

func TestPipelineScalingAnchors(t *testing.T) {
	m, _ := buildModel(t, 12)
	f64, err := m.FitScaling(7.2, 2.65)
	if err != nil {
		t.Fatal(err)
	}
	pts := m.PipelineScaling([]int{64, 128, 256, 512, 1024}, f64)
	// 64-node totals match the paper's anchors: 2128 s CPU, ≈1495 s GPU.
	if math.Abs(pts[0].CPUSec-2128) > 1 {
		t.Errorf("64-node CPU total %f, want 2128", pts[0].CPUSec)
	}
	if pts[0].GPUSec < 1400 || pts[0].GPUSec > 1600 {
		t.Errorf("64-node GPU total %f, paper shows 1495", pts[0].GPUSec)
	}
	if pts[0].SpeedupPct < 35 || pts[0].SpeedupPct > 50 {
		t.Errorf("64-node speedup %f%%, paper shows ≈42%%", pts[0].SpeedupPct)
	}
	// Speedup percentage declines with node count and stays positive.
	for i := 1; i < len(pts); i++ {
		if pts[i].SpeedupPct > pts[i-1].SpeedupPct {
			t.Errorf("pipeline speedup grew at %d nodes", pts[i].Nodes)
		}
		if pts[i].SpeedupPct <= 0 {
			t.Errorf("pipeline speedup non-positive at %d nodes", pts[i].Nodes)
		}
		// Totals decrease with more nodes (strong scaling).
		if pts[i].CPUSec >= pts[i-1].CPUSec || pts[i].GPUSec >= pts[i-1].GPUSec {
			t.Errorf("totals not decreasing at %d nodes", pts[i].Nodes)
		}
	}
}

func TestWABreakdown64(t *testing.T) {
	m, _ := buildModel(t, 12)
	f64, err := m.FitScaling(7.2, 2.65)
	if err != nil {
		t.Fatal(err)
	}
	cpu, gpu := m.WABreakdown64(f64)
	if math.Abs(cpu.TotalSec-2128) > 1 {
		t.Errorf("CPU total %f", cpu.TotalSec)
	}
	laPct := cpu.Percent(pipeline.StageLocalAssembly)
	if math.Abs(laPct-34) > 0.5 {
		t.Errorf("CPU LA share %f%%, paper: 34%%", laPct)
	}
	gpuLaPct := gpu.Percent(pipeline.StageLocalAssembly)
	if gpuLaPct > 10 {
		t.Errorf("GPU LA share %f%%, paper: 6%%", gpuLaPct)
	}
	if gpu.TotalSec >= cpu.TotalSec {
		t.Error("GPU total not smaller")
	}
	// Shares sum to 100%.
	var sum float64
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		sum += cpu.Percent(s)
	}
	if math.Abs(sum-100) > 0.01 {
		t.Errorf("shares sum to %f", sum)
	}
}

func TestTwoNodeBreakdown(t *testing.T) {
	m, _ := buildModel(t, 12)
	if _, err := m.FitScaling(7.2, 2.65); err != nil {
		t.Fatal(err)
	}
	f2, err := m.FitRatio(4.3)
	if err != nil {
		t.Fatal(err)
	}
	var tm pipeline.Timings
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		tm.Wall[s] = 100
	}
	cpu, gpu := m.TwoNodeBreakdown(tm, 460, 0.14, f2)
	if math.Abs(cpu.TotalSec-460) > 0.5 {
		t.Errorf("CPU total %f, want 460", cpu.TotalSec)
	}
	la := cpu.StageSec[pipeline.StageLocalAssembly]
	if math.Abs(la-460*0.14) > 0.5 {
		t.Errorf("LA seconds %f", la)
	}
	gpuLA := gpu.StageSec[pipeline.StageLocalAssembly]
	ratio := la / gpuLA
	if math.Abs(ratio-4.3) > 0.2 {
		t.Errorf("2-node LA speedup %f, want 4.3", ratio)
	}
	// Overall improvement ≈ 12% (paper).
	imp := (cpu.TotalSec/gpu.TotalSec - 1) * 100
	if imp < 9 || imp > 15 {
		t.Errorf("overall improvement %f%%, paper shows ≈12%%", imp)
	}
}

func TestDefaultCPUCostPositive(t *testing.T) {
	c := DefaultCPUCost()
	if c.InsertNS <= 0 || c.LookupNS <= 0 || c.WalkNS <= 0 || c.BuildNS <= 0 {
		t.Error("non-positive default costs")
	}
	wc := locassm.WorkCounts{TableBuilds: 1, KmersInserted: 1000, Lookups: 100, WalkSteps: 100}
	if c.Seconds(wc) <= 0 {
		t.Error("zero seconds for non-zero work")
	}
}

func simtV100() simt.DeviceConfig { return simt.V100() }
