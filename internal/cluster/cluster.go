// Package cluster models MetaHipMer2 runs on a Summit-like machine,
// producing the paper's scaling figures (Figs 2, 12, 13, 14) from
// measurements of this repository's own implementations (DESIGN.md §2).
//
// The model has three ingredients:
//
//  1. A local-assembly base measurement: work counts from the CPU
//     reference and kernel statistics from the simt GPU driver, taken on a
//     real (scaled) workload. Node shares at any node count are expressed
//     as replication factors of that base workload; GPU times extrapolate
//     exactly under the simt analytic time model (simt.Stats.Scaled),
//     which is what produces the paper's shrinking GPU advantage as
//     per-GPU work collapses at scale.
//  2. A per-core CPU cost model for the local-assembly operations,
//     calibrated so the 64-node CPU/GPU ratio lands in the regime the
//     paper reports (≈7×) — the paper's own absolute numbers play the
//     same anchoring role.
//  3. Published anchors for the rest of the pipeline: the Fig 2a stage
//     shares of the 2128 s, 64-node WA run, strong-scaled per stage with
//     documented efficiency exponents (communication-dominated stages
//     scale worse than local ones, §4.4).
package cluster

import (
	"fmt"
	"math"
	"time"

	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/simt"
)

// Summit node parameters (§4.1).
const (
	CoresPerNode = 42
	GPUsPerNode  = 6
)

// CPUCostModel assigns one Summit POWER9 core's cost to the local-assembly
// operations (Algorithm 1 inserts, Algorithm 2 lookups/steps, per-table
// setup). Values are nanoseconds per operation.
type CPUCostModel struct {
	InsertNS float64 // hash + insert of one k-mer into the table
	LookupNS float64 // one walk-step table probe
	WalkNS   float64 // non-probe per-step bookkeeping
	BuildNS  float64 // per-table construction overhead
}

// DefaultCPUCost is calibrated so that the 64-node WA-share workload gives
// the ≈7× GPU advantage of Fig 13 (see EXPERIMENTS.md for the calibration
// record). The values are plausible for a std::unordered-style table on a
// POWER9 core.
func DefaultCPUCost() CPUCostModel {
	return CPUCostModel{InsertNS: 55, LookupNS: 80, WalkNS: 10, BuildNS: 3000}
}

// Seconds converts work counts to single-core seconds.
func (m CPUCostModel) Seconds(wc locassm.WorkCounts) float64 {
	return (float64(wc.KmersInserted)*m.InsertNS +
		float64(wc.Lookups)*m.LookupNS +
		float64(wc.WalkSteps)*m.WalkNS +
		float64(wc.TableBuilds)*m.BuildNS) * 1e-9
}

// Model extrapolates a measured local-assembly base workload.
type Model struct {
	Dev     simt.DeviceConfig
	CPUCost CPUCostModel

	// Base workload measurements.
	BaseItems    uint64             // extension warps in the base workload
	BaseCPU      locassm.WorkCounts // CPU reference work on the base workload
	BaseStats    simt.Stats         // merged GPU kernel counters
	BaseLaunches int                // kernel launches in the base run
	BaseBytes    int64              // H2D+D2H bytes (from transfer time)
}

// NewModel builds the model from a CPU run and a GPU run over the same
// workload.
func NewModel(dev simt.DeviceConfig, cpu *locassm.CPUResult, gpu *locassm.GPUResult) (*Model, error) {
	if len(gpu.Kernels) == 0 {
		return nil, fmt.Errorf("cluster: GPU result has no kernels")
	}
	m := &Model{Dev: dev, CPUCost: DefaultCPUCost(), BaseCPU: cpu.Counts}
	for i := range gpu.Kernels {
		m.BaseStats.Add(&gpu.Kernels[i].Stats)
	}
	m.BaseItems = m.BaseStats.Warps
	m.BaseLaunches = len(gpu.Kernels)
	// Recover transferred bytes from the modeled transfer time.
	m.BaseBytes = int64(gpu.TransferTime.Seconds() * dev.PCIeGBps * 1e9)
	return m, nil
}

// ModelFromWorkload runs the CPU reference and the GPU driver (v2 kernel)
// over the same local-assembly workload and builds the scaling model from
// the two measurements.
func ModelFromWorkload(ctgs []*locassm.CtgWithReads, cfg locassm.Config) (*Model, error) {
	cpu, err := locassm.RunCPU(ctgs, cfg, 0)
	if err != nil {
		return nil, err
	}
	dev := simt.NewDevice(simt.V100())
	drv, err := locassm.NewDriver(dev, locassm.GPUConfig{Config: cfg, WarpPerTable: true})
	if err != nil {
		return nil, err
	}
	gpu, err := drv.Run(ctgs)
	if err != nil {
		return nil, err
	}
	return NewModel(dev.Cfg, cpu, gpu)
}

// GPUSeconds models one GPU executing f copies of the base workload:
// kernel time under the analytic model on scaled counters, plus per-launch
// overheads and PCIe transfers. The per-warp dependent chain does not
// scale, which floors the time when f is small — the §4.4 "less work per
// GPU" effect.
func (m *Model) GPUSeconds(f float64) float64 {
	stats := m.BaseStats.Scaled(f)
	t, _ := simt.TimeFor(m.Dev, &stats)
	kernel := t - m.Dev.KernelLaunchOverhead // TimeFor includes one launch

	launches := int(math.Ceil(float64(m.BaseLaunches) * f))
	if launches < 1 {
		launches = 1
	}
	overhead := time.Duration(launches) * m.Dev.KernelLaunchOverhead
	transfer := time.Duration(float64(m.BaseBytes) * f / (m.Dev.PCIeGBps * 1e9) * float64(time.Second))
	return (kernel + overhead + transfer).Seconds()
}

// CPUNodeSeconds models one node's cores executing f copies of the base
// workload with the embarrassingly parallel CPU implementation (§2.3).
func (m *Model) CPUNodeSeconds(f float64) float64 {
	wc := locassm.WorkCounts{
		TableBuilds:   int64(float64(m.BaseCPU.TableBuilds) * f),
		KmersInserted: int64(float64(m.BaseCPU.KmersInserted) * f),
		Lookups:       int64(float64(m.BaseCPU.Lookups) * f),
		WalkSteps:     int64(float64(m.BaseCPU.WalkSteps) * f),
	}
	return m.CPUCost.Seconds(wc) / CoresPerNode
}

// GPUNodeSeconds models one node: the share is split evenly over the six
// GPUs, which run concurrently.
func (m *Model) GPUNodeSeconds(f float64) float64 {
	return m.GPUSeconds(f / GPUsPerNode)
}

// FitScaling calibrates the model against the two published Fig 13
// endpoints: the local-assembly speedup at 64 nodes (≈7×) and at 1024
// nodes (2.65×). It returns the replication factor f64 representing one
// node's share at 64 nodes, and rescales the CPU cost model so the 64-node
// ratio matches. Intermediate node counts are then model predictions.
//
// The shape identity used: r(f)/r(f/16) = 16·gpu(f/16)/gpu(f), which runs
// monotonically from 16 (both shares latency-floored) down to 1 (both in
// the linear regime), so a binary search pins f64.
func (m *Model) FitScaling(r64, r1024 float64) (float64, error) {
	if r64 <= r1024 || r1024 <= 0 {
		return 0, fmt.Errorf("cluster: need r64 > r1024 > 0")
	}
	want := r64 / r1024
	g := func(f float64) float64 {
		return 16 * m.GPUNodeSeconds(f/16) / m.GPUNodeSeconds(f)
	}
	lo, hi := 1e-3, 1e7
	if g(lo) < want || g(hi) > want {
		return 0, fmt.Errorf("cluster: decline %0.2f outside model range [%0.2f, %0.2f]",
			want, g(hi), g(lo))
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi)
		if g(mid) > want {
			lo = mid
		} else {
			hi = mid
		}
	}
	f64 := math.Sqrt(lo * hi)

	// Rescale CPU costs so the 64-node ratio hits r64.
	cur := m.CPUNodeSeconds(f64) / m.GPUNodeSeconds(f64)
	scale := r64 / cur
	m.CPUCost.InsertNS *= scale
	m.CPUCost.LookupNS *= scale
	m.CPUCost.WalkNS *= scale
	m.CPUCost.BuildNS *= scale
	return f64, nil
}

// FitRatio finds the replication factor at which the (calibrated) model
// yields the given CPU/GPU ratio — used to place the arcticsynth 2-node
// point of Fig 12 on the same curve.
func (m *Model) FitRatio(target float64) (float64, error) {
	r := func(f float64) float64 { return m.CPUNodeSeconds(f) / m.GPUNodeSeconds(f) }
	lo, hi := 1e-4, 1e7
	if r(lo) > target || r(hi) < target {
		return 0, fmt.Errorf("cluster: ratio %0.2f outside model range [%0.2f, %0.2f]",
			target, r(lo), r(hi))
	}
	for i := 0; i < 100; i++ {
		mid := math.Sqrt(lo * hi)
		if r(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}

// LAPoint is one Fig 13 sample.
type LAPoint struct {
	Nodes   int
	CPUSec  float64
	GPUSec  float64
	Speedup float64
}

// LAScaling produces the Fig 13 series: local-assembly time per node count
// with CPU and GPU implementations, strong scaling a fixed total workload.
// f64 is the replication factor representing ONE NODE's share at 64 nodes;
// at N nodes each node holds f64·64/N copies of the base workload.
func (m *Model) LAScaling(nodes []int, f64 float64) []LAPoint {
	out := make([]LAPoint, 0, len(nodes))
	for _, n := range nodes {
		f := f64 * 64 / float64(n)
		p := LAPoint{
			Nodes:  n,
			CPUSec: m.CPUNodeSeconds(f),
			GPUSec: m.GPUNodeSeconds(f),
		}
		if p.GPUSec > 0 {
			p.Speedup = p.CPUSec / p.GPUSec
		}
		out = append(out, p)
	}
	return out
}

// Anchors from the paper's 64-node WA run (Fig 2a): total wall time and
// stage shares. The shares are visual estimates from the pie chart, with
// local assembly pinned at the 34% the text states; they sum to 1.
var (
	// WATotalCPU64Sec is Fig 2a's total (CPU local assembly).
	WATotalCPU64Sec = 2128.0

	// WAShares estimates Fig 2a's slices.
	WAShares = [pipeline.NumStages]float64{
		pipeline.StageMergeReads:    0.07,
		pipeline.StageKmerAnalysis:  0.16,
		pipeline.StageContigGen:     0.10,
		pipeline.StageAlignment:     0.13,
		pipeline.StageAlnKernel:     0.05,
		pipeline.StageLocalAssembly: 0.34,
		pipeline.StageScaffolding:   0.10,
		pipeline.StageFileIO:        0.05,
	}

	// Exponents gives each stage's strong-scaling efficiency: stage time
	// at N nodes is share·total·(64/N)^e. Node-local stages scale
	// perfectly (e=1); communication-dominated stages scale sub-linearly,
	// which is why communication dominates at high node counts (§4.4).
	Exponents = [pipeline.NumStages]float64{
		pipeline.StageMergeReads:    0.95,
		pipeline.StageKmerAnalysis:  0.72,
		pipeline.StageContigGen:     0.72,
		pipeline.StageAlignment:     0.75,
		pipeline.StageAlnKernel:     1.0,
		pipeline.StageLocalAssembly: 1.0, // replaced by the LA model below
		pipeline.StageScaffolding:   0.70,
		pipeline.StageFileIO:        0.90,
	}
)

// PipelinePoint is one Fig 14 sample.
type PipelinePoint struct {
	Nodes      int
	CPUSec     float64 // total pipeline, CPU local assembly
	GPUSec     float64 // total pipeline, GPU local assembly
	SpeedupPct float64 // (CPU/GPU − 1) × 100
	LACPUSec   float64
	LAGPUSec   float64
}

// PipelineScaling produces the Fig 14 series. The local-assembly entries
// come from the measured model (anchored so the 64-node CPU LA time equals
// the Fig 2a share); every other stage follows the published-share strong
// scaling above.
func (m *Model) PipelineScaling(nodes []int, f64 float64) []PipelinePoint {
	laAnchor := WAShares[pipeline.StageLocalAssembly] * WATotalCPU64Sec
	base := m.CPUNodeSeconds(f64)
	scale := laAnchor / base // units calibration (documented in DESIGN.md)

	out := make([]PipelinePoint, 0, len(nodes))
	for _, n := range nodes {
		f := f64 * 64 / float64(n)
		p := PipelinePoint{Nodes: n}
		p.LACPUSec = m.CPUNodeSeconds(f) * scale
		p.LAGPUSec = m.GPUNodeSeconds(f) * scale
		for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
			if s == pipeline.StageLocalAssembly {
				continue
			}
			st := WAShares[s] * WATotalCPU64Sec * math.Pow(64/float64(n), Exponents[s])
			p.CPUSec += st
			p.GPUSec += st
		}
		p.CPUSec += p.LACPUSec
		p.GPUSec += p.LAGPUSec
		if p.GPUSec > 0 {
			p.SpeedupPct = (p.CPUSec/p.GPUSec - 1) * 100
		}
		out = append(out, p)
	}
	return out
}

// Breakdown is a per-stage time split (Fig 2 / Fig 12).
type Breakdown struct {
	TotalSec float64
	StageSec [pipeline.NumStages]float64
}

// Percent returns a stage's share of the total.
func (b *Breakdown) Percent(s pipeline.Stage) float64 {
	if b.TotalSec == 0 {
		return 0
	}
	return 100 * b.StageSec[s] / b.TotalSec
}

// WABreakdown64 produces the Fig 2a/2b pair: the 64-node WA stage
// breakdown with CPU local assembly and with GPU local assembly, where the
// GPU LA time comes from the measured model ratio.
func (m *Model) WABreakdown64(f64 float64) (cpu, gpu Breakdown) {
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		cpu.StageSec[s] = WAShares[s] * WATotalCPU64Sec
		gpu.StageSec[s] = cpu.StageSec[s]
	}
	ratio := m.CPUNodeSeconds(f64) / m.GPUNodeSeconds(f64)
	gpu.StageSec[pipeline.StageLocalAssembly] = cpu.StageSec[pipeline.StageLocalAssembly] / ratio
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		cpu.TotalSec += cpu.StageSec[s]
		gpu.TotalSec += gpu.StageSec[s]
	}
	return cpu, gpu
}

// TwoNodeBreakdown produces Fig 12: the 2-node arcticsynth run. totalSec
// and laShare anchor the CPU bar (the paper shows ≈460 s with ≈14% local
// assembly); stage proportions for the other slices come from measured
// pipeline timings t (scaled to fill the remainder); the GPU bar divides
// local assembly by the measured model ratio at factor f2.
func (m *Model) TwoNodeBreakdown(t pipeline.Timings, totalSec, laShare, f2 float64) (cpu, gpu Breakdown) {
	laCPU := totalSec * laShare
	rest := totalSec - laCPU

	// Distribute the remainder proportionally to measured stage times.
	var measuredRest time.Duration
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		if s != pipeline.StageLocalAssembly {
			measuredRest += t.Wall[s]
		}
	}
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		if s == pipeline.StageLocalAssembly {
			cpu.StageSec[s] = laCPU
			continue
		}
		if measuredRest > 0 {
			cpu.StageSec[s] = rest * float64(t.Wall[s]) / float64(measuredRest)
		}
	}
	gpu = cpu
	ratio := m.CPUNodeSeconds(f2) / m.GPUNodeSeconds(f2)
	gpu.StageSec[pipeline.StageLocalAssembly] = laCPU / ratio
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		cpu.TotalSec += cpu.StageSec[s]
		gpu.TotalSec += gpu.StageSec[s]
	}
	return cpu, gpu
}
