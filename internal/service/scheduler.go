package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/report"
	"mhm2sim/internal/simt"
)

// Admission errors — the HTTP layer maps both to 429 Too Many Requests.
var (
	// ErrQueueFull: the bounded job queue is at capacity (backpressure).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrQuotaExceeded: the tenant already has its maximum jobs admitted.
	ErrQuotaExceeded = errors.New("service: tenant quota exceeded")
	// ErrDraining: the scheduler is shutting down (HTTP 503).
	ErrDraining = errors.New("service: scheduler is draining")
	// ErrNotFound: no such job.
	ErrNotFound = errors.New("service: no such job")
	// ErrNotReady: the job has no result yet (HTTP 409).
	ErrNotReady = errors.New("service: job has no result yet")
)

// Config parameterizes the scheduler.
type Config struct {
	// DataDir is the persistence root (specs, checkpoints, results). It is
	// created if missing; a restart over the same directory resumes
	// unfinished jobs from their checkpoints.
	DataDir string
	// Workers is the number of concurrently executing jobs (default 4).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker; submissions beyond
	// it are rejected with ErrQueueFull (default 64).
	QueueDepth int
	// TenantMaxActive caps one tenant's admitted-but-unfinished jobs
	// (queued + running); 0 means no quota.
	TenantMaxActive int
	// Devices is the shared GPU pool size (default 4).
	Devices int
	// DeviceConfig describes the pooled devices (zero Name = simt.V100()).
	DeviceConfig simt.DeviceConfig
	// JobRetries is how many times a job failing with dist.ErrUnrecoverable
	// (an injected-chaos budget exhaustion) is retried under a reseeded
	// fault plan before being marked failed (default 1).
	JobRetries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Devices < 0 {
		c.Devices = 0
	} else if c.Devices == 0 {
		c.Devices = 4
	}
	if c.JobRetries == 0 {
		c.JobRetries = 1
	}
	return c
}

// job is the scheduler's internal record. Mutable fields are guarded by
// the scheduler mutex.
type job struct {
	id   string
	spec JobSpec // defaulted

	state      State
	errMsg     string
	attempts   int
	resumes    int
	submitTime time.Time
	startTime  time.Time
	finishTime time.Time
	queueWait  time.Duration
	deviceWait time.Duration
	deviceHeld time.Duration
	devices    int
	stagesNS   map[string]int64 // installed after a run completes

	cancel context.CancelFunc // non-nil while running
}

// Scheduler is the job scheduler over the engine registry: a bounded queue
// feeding a fixed worker pool, with a shared device pool and per-tenant
// accounting. See the package comment for the architecture.
type Scheduler struct {
	cfg  Config
	pool *DevicePool
	met  *Metrics

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string       // submission order, for List
	active   map[string]int // tenant → queued+running
	queued   int            // jobs admitted but not yet picked by a worker
	running  int
	nextID   int
	draining bool

	queue chan *job
	wg    sync.WaitGroup
}

// New builds a scheduler over cfg.DataDir, loading persisted jobs:
// finished jobs are served from their terminal status, unfinished ones are
// re-queued to resume from their checkpoints. Call Start to begin
// executing.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, jobsDir), 0o755); err != nil {
		return nil, err
	}
	loaded, next, err := loadJobs(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:        cfg,
		pool:       NewDevicePool(cfg.Devices, cfg.DeviceConfig),
		met:        NewMetrics(),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		active:     make(map[string]int),
		nextID:     next,
		// Capacity covers the configured depth plus every re-queued job, so
		// startup re-admission can never block or drop.
		queue: make(chan *job, cfg.QueueDepth+len(loaded)),
	}
	for _, lj := range loaded {
		j := &job{id: lj.ID, spec: lj.Spec.withDefaults(), submitTime: time.Now()}
		if lj.Done != nil {
			j.state = lj.Done.State
			j.errMsg = lj.Done.Error
			j.attempts = lj.Done.Attempts
			j.resumes = lj.Done.Resumes
			j.submitTime = lj.Done.SubmitTime
			j.startTime = lj.Done.StartTime
			j.finishTime = lj.Done.FinishTime
			j.queueWait = time.Duration(lj.Done.QueueWaitNS)
			j.stagesNS = lj.Done.StagesNS
		} else {
			j.state = StateQueued
			s.active[j.spec.Tenant]++
			s.queued++
			s.queue <- j
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	return s, nil
}

// Resumable returns how many loaded jobs were re-queued at startup.
func (s *Scheduler) Resumable() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.baseCtx.Done():
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
}

// Submit admits a job: it validates the spec, enforces the tenant quota
// and the bounded queue, persists the spec, and enqueues. The returned ID
// is stable across daemon restarts.
func (s *Scheduler) Submit(spec JobSpec) (string, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return "", err
	}
	if d := spec.DeviceDemand(); d > s.pool.Size() {
		return "", fmt.Errorf("service: job needs %d devices, pool has %d", d, s.pool.Size())
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", ErrDraining
	}
	if s.cfg.TenantMaxActive > 0 && s.active[spec.Tenant] >= s.cfg.TenantMaxActive {
		s.mu.Unlock()
		s.met.Rejected(spec.Tenant, "quota")
		return "", fmt.Errorf("%w: tenant %q has %d active jobs (max %d)",
			ErrQuotaExceeded, spec.Tenant, s.cfg.TenantMaxActive, s.cfg.TenantMaxActive)
	}
	if s.queued >= s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.Rejected(spec.Tenant, "queue_full")
		return "", fmt.Errorf("%w: %d jobs queued (max %d)", ErrQueueFull, s.cfg.QueueDepth, s.cfg.QueueDepth)
	}
	id := formatJobID(s.nextID)
	s.nextID++
	j := &job{id: id, spec: spec, state: StateQueued, submitTime: time.Now()}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.active[spec.Tenant]++
	s.queued++
	s.mu.Unlock()

	if err := saveSpec(s.cfg.DataDir, id, spec); err != nil {
		// Roll the admission back: a job we cannot persist cannot be
		// resumed, so refuse it outright.
		s.mu.Lock()
		delete(s.jobs, id)
		s.order = s.order[:len(s.order)-1]
		s.active[spec.Tenant]--
		s.queued--
		s.mu.Unlock()
		return "", err
	}
	s.met.Submitted(spec.Tenant)
	s.queue <- j
	return id, nil
}

// Status snapshots one job.
func (s *Scheduler) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// snapshot builds the external view (caller holds the scheduler mutex).
func (j *job) snapshot() Status {
	st := Status{
		ID:           j.id,
		Spec:         j.spec,
		State:        j.state,
		Error:        j.errMsg,
		Attempts:     j.attempts,
		Resumes:      j.resumes,
		SubmitTime:   j.submitTime,
		StartTime:    j.startTime,
		FinishTime:   j.finishTime,
		QueueWaitNS:  int64(j.queueWait),
		DeviceWaitNS: int64(j.deviceWait),
		DeviceHeldNS: int64(j.deviceHeld),
		Devices:      j.devices,
		StagesNS:     j.stagesNS,
	}
	return st
}

// List snapshots all jobs in submission order.
func (s *Scheduler) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Result loads a finished job's persisted report.
func (s *Scheduler) Result(id string) (*report.Report, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state State
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if state != StateSucceeded {
		return nil, fmt.Errorf("%w (state %s)", ErrNotReady, state)
	}
	return report.Load(filepath.Join(jobDir(s.cfg.DataDir, id), resultFile))
}

// OutputPath returns the finished job's FASTA path.
func (s *Scheduler) OutputPath(id string) (string, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state State
	if ok {
		state = j.state
	}
	s.mu.Unlock()
	if !ok {
		return "", ErrNotFound
	}
	if state != StateSucceeded {
		return "", fmt.Errorf("%w (state %s)", ErrNotReady, state)
	}
	return filepath.Join(jobDir(s.cfg.DataDir, id), outputFile), nil
}

// Cancel cancels a job: queued jobs are marked canceled and skipped when
// dequeued; running jobs have their context canceled and stop at the next
// stage boundary. Canceling a finished job is a no-op.
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		s.finishLocked(j, StateCanceled, "canceled while queued")
		st := j.snapshot()
		s.mu.Unlock()
		s.persistTerminal(st)
		return nil
	case StateRunning:
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		s.mu.Unlock()
		return nil
	}
}

// finishLocked moves a job to a terminal state (caller holds the mutex and
// persists the terminal status afterwards, outside the lock). A job
// canceled while queued keeps its queue slot counted until a worker drains
// the stale channel entry — otherwise the admission counter and the
// channel occupancy diverge and a later Submit blocks on a full channel.
func (s *Scheduler) finishLocked(j *job, state State, errMsg string) {
	j.state = state
	j.errMsg = errMsg
	j.finishTime = time.Now()
	s.active[j.spec.Tenant]--
	s.met.Finished(j.spec.Tenant, state, j.queueWait, j.runDuration())
}

func (j *job) runDuration() time.Duration {
	if j.startTime.IsZero() {
		return 0
	}
	return time.Since(j.startTime)
}

// persistTerminal writes the terminal status file (best effort: the job
// outcome is already visible in memory; a write failure only costs the
// record across a restart, where the job would re-run).
func (s *Scheduler) persistTerminal(st Status) {
	_ = saveStatus(s.cfg.DataDir, st)
}

// runJob executes one dequeued job: lease devices, run the pipeline with
// per-job checkpointing, persist the result, and account everything.
func (s *Scheduler) runJob(j *job) {
	// Claim the job before touching the device pool: once it is
	// StateRunning, every cancellation — client or shutdown — flows through
	// the job context, including a cancel that lands while we are still
	// blocked waiting for devices.
	s.mu.Lock()
	if j.state != StateQueued { // canceled while queued: drain the slot
		s.queued--
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.cancel = cancel
	j.state = StateRunning
	s.queued--
	s.running++
	demand := j.spec.DeviceDemand()
	s.mu.Unlock()

	tAcq := time.Now()
	lease, err := s.pool.Acquire(ctx, demand)
	if err != nil {
		s.settle(j, nil, nil, err)
		return
	}
	defer lease.Release()

	s.mu.Lock()
	// The device lease is part of queue wait: the job's own work has not
	// started until it holds its devices.
	j.startTime = time.Now()
	j.queueWait = j.startTime.Sub(j.submitTime)
	j.deviceWait = j.startTime.Sub(tAcq)
	j.devices = demand
	s.mu.Unlock()

	res, rep, runErr := s.executeWithRetry(ctx, j, lease)
	s.mu.Lock()
	j.deviceHeld = time.Since(j.startTime)
	s.mu.Unlock()
	s.settle(j, res, rep, runErr)
}

// settle moves a finished (or interrupted) execution to its final state
// and persists the outcome.
func (s *Scheduler) settle(j *job, res *pipeline.Result, rep *dist.Report, runErr error) {
	s.mu.Lock()
	j.cancel = nil
	s.running--
	s.mu.Unlock()

	switch {
	case runErr == nil:
		if kb := res.Work.KmerBudget; kb.Passes > 0 {
			s.met.KmerBudget(kb.Passes, kb.FilteredSingletons, kb.OOMReplans)
		}
		if err := s.persistResult(j, res, rep); err != nil {
			runErr = err
		}
	case errors.Is(runErr, context.Canceled):
		if s.baseCtx.Err() != nil {
			// Daemon shutdown, not a client cancel: leave the job
			// non-terminal so a restart re-queues and resumes it.
			s.interrupted(j, runErr)
			return
		}
		s.mu.Lock()
		s.finishLocked(j, StateCanceled, runErr.Error())
		st := j.snapshot()
		s.mu.Unlock()
		s.persistTerminal(st)
		return
	}

	s.mu.Lock()
	if runErr == nil {
		s.finishLocked(j, StateSucceeded, "")
	} else {
		s.finishLocked(j, StateFailed, runErr.Error())
	}
	st := j.snapshot()
	s.mu.Unlock()
	s.persistTerminal(st)
}

// interrupted handles a job stopped by daemon shutdown (or a lease aborted
// by it): the job stays conceptually queued — its spec is persisted and a
// restart resumes it from checkpoints. A client cancel that raced shutdown
// is indistinguishable here and also resumes, which is the safe direction.
// The caller has already settled the running counter; only the state and
// queued count move here.
func (s *Scheduler) interrupted(j *job, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel = nil
	if j.state == StateRunning {
		j.state = StateQueued
		s.queued++
	}
	j.errMsg = fmt.Sprintf("interrupted (will resume on restart): %v", err)
}

// executeWithRetry runs the pipeline, retrying jobs killed by an
// unrecoverable injected fault under a reseeded plan — the job-level
// recovery tier above internal/faults' in-run recovery. Each attempt
// resumes from the job's checkpoint directory, so completed rounds are
// never recomputed.
func (s *Scheduler) executeWithRetry(ctx context.Context, j *job, lease *Lease) (*pipeline.Result, *dist.Report, error) {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.JobRetries; attempt++ {
		res, rep, err := s.execute(ctx, j, lease, attempt)
		if err == nil || !errors.Is(err, dist.ErrUnrecoverable) || ctx.Err() != nil {
			return res, rep, err
		}
		lastErr = err
		if attempt < s.cfg.JobRetries {
			s.met.Retried()
		}
	}
	return nil, nil, lastErr
}

// execute runs one pipeline attempt for the job.
func (s *Scheduler) execute(ctx context.Context, j *job, lease *Lease, attempt int) (*pipeline.Result, *dist.Report, error) {
	pairs, cfg, err := BuildInput(j.spec)
	if err != nil {
		return nil, nil, err
	}
	ckpt := filepath.Join(jobDir(s.cfg.DataDir, j.id), ckptDir)
	cfg.CheckpointDir = ckpt
	if resumed, err := hasCheckpoint(ckpt); err != nil {
		return nil, nil, err
	} else if resumed {
		s.met.Resumed()
		s.mu.Lock()
		j.resumes++
		s.mu.Unlock()
	}
	stages := make(map[string]int64)
	cfg.Observer = s.met.StageObserver(stages)

	s.mu.Lock()
	j.attempts++
	s.mu.Unlock()

	var res *pipeline.Result
	var rep *dist.Report
	if j.spec.Engine == locassm.EngineDist {
		dcfg, derr := distConfig(j.spec, cfg)
		if derr != nil {
			return nil, nil, derr
		}
		if dcfg.Faults != nil && attempt > 0 {
			// Deterministic plans fail deterministically: a retry must draw
			// a fresh schedule, as a real rerun lands on different timing.
			dcfg.Faults, derr = dcfg.Faults.Reseed(j.spec.FaultSeed + int64(attempt))
			if derr != nil {
				return nil, nil, derr
			}
		}
		if j.spec.Elastic != "" {
			// Joining ranks draw real pool capacity mid-run. TryAcquire
			// never blocks: a pool too contended to grow the job is a hard
			// error (the runtime surfaces it), not a deadlocked round.
			var joinLeases []*Lease
			var joinMu sync.Mutex
			dcfg.DeviceProvider = func() (*simt.Device, error) {
				l := s.pool.TryAcquire(1)
				if l == nil {
					return nil, fmt.Errorf("service: device pool exhausted (size %d)", s.pool.Size())
				}
				joinMu.Lock()
				joinLeases = append(joinLeases, l)
				joinMu.Unlock()
				return l.Devices[0], nil
			}
			dcfg.DeviceRelease = func(*simt.Device) {}
			defer func() {
				joinMu.Lock()
				defer joinMu.Unlock()
				for _, l := range joinLeases {
					l.Release()
				}
			}()
		}
		res, rep, err = dist.RunContext(ctx, pairs, dcfg)
		if rep != nil {
			s.met.ElasticRun(rep.Elasticity.Joins, rep.Elasticity.StolenBatches)
		}
	} else {
		if j.spec.Engine == locassm.EngineGPU {
			// The leased pool device: N simulated GPUs multiplex across
			// concurrent gpu-engine jobs through EngineSpec.
			cfg.Engine.Device = lease.Devices[0]
		}
		res, err = pipeline.RunContext(ctx, pairs, cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	j.stagesNS = stages
	s.mu.Unlock()
	return res, rep, nil
}

// hasCheckpoint reports whether the checkpoint directory holds any round.
func hasCheckpoint(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "contigs-k") && strings.HasSuffix(e.Name(), ".fasta") {
			return true, nil
		}
	}
	return false, nil
}

// persistResult writes the job's report and FASTA output atomically.
func (s *Scheduler) persistResult(j *job, res *pipeline.Result, rep *dist.Report) error {
	dir := jobDir(s.cfg.DataDir, j.id)
	if err := report.Build(res, rep).WriteFile(filepath.Join(dir, resultFile)); err != nil {
		return err
	}
	tmp := filepath.Join(dir, outputFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pipeline.WriteFASTAOutputs(f, res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, outputFile))
}

// QueueDepth returns the current number of queued jobs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// Running returns the current number of executing jobs.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

// RenderMetrics writes the /metrics exposition.
func (s *Scheduler) RenderMetrics(w io.Writer) {
	s.mu.Lock()
	queued, running := s.queued, s.running
	s.mu.Unlock()
	s.met.Render(w, queued, running, s.pool.Stats())
}

// Shutdown stops the scheduler: no new admissions, running jobs are
// canceled at their next stage boundary (their checkpoints survive), and
// workers are joined. Queued and interrupted jobs stay persisted as
// unfinished, so a new Scheduler over the same DataDir resumes them.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown timed out: %w", ctx.Err())
	}
}
