// Package service turns the assembly pipeline into a schedulable workload:
// a long-running job scheduler (the core of the mhm2d daemon) that accepts
// many concurrent assembly jobs, admits them against a bounded queue and
// per-tenant quotas, leases simulated GPUs to them from a shared device
// pool through locassm.EngineSpec, checkpoints every job so a killed or
// evicted job resumes from its last completed round, and exports per-job /
// per-tenant metrics. The pipeline becomes a callee: pipeline.RunContext is
// invoked by workers, never by a CLI main.
//
// Determinism carries over unchanged from the batch path: a job's contigs
// and scaffolds are bit-identical to a standalone mhm2sim run of the same
// spec, regardless of queueing, device multiplexing, restarts, or retries.
package service

import (
	"fmt"
	"os"
	"time"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/faults"
	"mhm2sim/internal/gpucount"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/synth"
)

// JobSpec describes one assembly job, as submitted over the HTTP API. The
// input is named declaratively — a synth preset plus overrides, or a FASTQ
// path readable by the daemon — so the spec is small, persistable, and
// sufficient to reproduce the job bit-identically (the determinism the
// stress tests assert against standalone runs).
type JobSpec struct {
	// Tenant attributes the job for quotas and metrics ("" = "default").
	Tenant string `json:"tenant,omitempty"`
	// Preset names the synthetic community ("" = "arcticsynth"); ignored
	// when ReadsPath is set.
	Preset string `json:"preset,omitempty"`
	// Seed overrides the preset's community seed (0 keeps the preset's).
	Seed int64 `json:"seed,omitempty"`
	// Genomes / MinGenomeLen / MaxGenomeLen / Depth override the preset's
	// community shape when > 0 — how tests make jobs small and distinct.
	Genomes      int     `json:"genomes,omitempty"`
	MinGenomeLen int     `json:"min_genome_len,omitempty"`
	MaxGenomeLen int     `json:"max_genome_len,omitempty"`
	Depth        float64 `json:"depth,omitempty"`
	// ReadsPath is an interleaved paired FASTQ on the daemon's filesystem.
	ReadsPath string `json:"reads_path,omitempty"`
	// Rounds lists the contigging k values (nil = the pipeline default).
	Rounds []int `json:"rounds,omitempty"`
	// Engine selects the local-assembly substrate: cpu (default), gpu,
	// multigpu, or dist.
	Engine string `json:"engine,omitempty"`
	// GPUs is the multigpu engine's device demand (0 = 2 at service scale).
	GPUs int `json:"gpus,omitempty"`
	// Ranks is the dist engine's rank count (engine=dist requires ≥ 2).
	Ranks int `json:"ranks,omitempty"`
	// Faults injects a seeded chaos schedule (dist engine only). A job
	// whose schedule exhausts the runtime's retry budgets fails with
	// dist.ErrUnrecoverable and is retried by the scheduler under a
	// reseeded plan (see Config.JobRetries).
	Faults    string `json:"faults,omitempty"`
	FaultSeed int64  `json:"fault_seed,omitempty"`
	// Shard selects the dist engine's contig → shard map: "hash" (default)
	// or "component" (co-locate whole dBG components; see DESIGN.md §14).
	// Either policy yields bit-identical contigs and scaffolds.
	Shard string `json:"shard,omitempty"`
	// MemBudget, when > 0, runs memory-bounded k-mer counting (Bloom
	// prefilter + multi-pass spill, see DESIGN.md §15) under this byte
	// budget. Must be ≥ gpucount.MinMemBudget. With a fault schedule, OOM
	// events shrink the budget instead of poisoning devices.
	MemBudget int64 `json:"mem_budget,omitempty"`
	// Elastic is a membership schedule ("join@r1:2,leave@r2:1", dist engine
	// only; see DESIGN.md §16): joining ranks draw their devices from the
	// daemon's pool mid-run and return them when the job finishes. NoSteal
	// disables intra-round work stealing.
	Elastic string `json:"elastic,omitempty"`
	NoSteal bool   `json:"nosteal,omitempty"`
}

// withDefaults fills the defaulted fields.
func (s JobSpec) withDefaults() JobSpec {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Preset == "" {
		s.Preset = "arcticsynth"
	}
	if s.Engine == "" {
		s.Engine = locassm.EngineCPU
	}
	if s.Engine == locassm.EngineMultiGPU && s.GPUs <= 0 {
		// At service scale a whole six-GPU Summit node per job would
		// monopolize the default pool; two devices keeps jobs multiplexing.
		s.GPUs = 2
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = 42
	}
	return s
}

// Validate checks the (defaulted) spec.
func (s *JobSpec) Validate() error {
	switch s.Engine {
	case locassm.EngineCPU, locassm.EngineGPU, locassm.EngineMultiGPU:
		if s.Ranks > 1 {
			return fmt.Errorf("service: engine %q conflicts with ranks %d (multi-rank jobs use engine=dist)", s.Engine, s.Ranks)
		}
	case locassm.EngineDist:
		if s.Ranks < 2 {
			return fmt.Errorf("service: engine=dist requires ranks ≥ 2, got %d", s.Ranks)
		}
	default:
		return fmt.Errorf("service: unknown engine %q (cpu|gpu|multigpu|dist)", s.Engine)
	}
	if s.Faults != "" {
		if s.Engine != locassm.EngineDist {
			return fmt.Errorf("service: faults require engine=dist")
		}
		if _, err := faults.ParseSpec(s.Faults); err != nil {
			return err
		}
	}
	if s.Elastic != "" {
		if s.Engine != locassm.EngineDist {
			return fmt.Errorf("service: elastic schedule requires engine=dist")
		}
		rounds := len(s.Rounds)
		if rounds == 0 {
			rounds = len(pipeline.DefaultConfig().Rounds)
		}
		if _, err := faults.ParseElastic(s.Elastic, s.Ranks, rounds); err != nil {
			return err
		}
	}
	switch s.Shard {
	case "", dist.ShardHash:
	case dist.ShardComponent:
		if s.Engine != locassm.EngineDist {
			return fmt.Errorf("service: shard=%s requires engine=dist", s.Shard)
		}
	default:
		return fmt.Errorf("service: unknown shard policy %q (%s|%s)", s.Shard, dist.ShardHash, dist.ShardComponent)
	}
	if s.ReadsPath == "" {
		if _, err := synth.PresetByName(s.Preset); err != nil {
			return err
		}
	}
	if s.Depth < 0 || s.Genomes < 0 || s.MinGenomeLen < 0 || s.MaxGenomeLen < 0 {
		return fmt.Errorf("service: negative community override")
	}
	if s.MemBudget < 0 {
		return fmt.Errorf("service: mem_budget %d is negative", s.MemBudget)
	}
	if s.MemBudget > 0 && s.MemBudget < gpucount.MinMemBudget {
		return fmt.Errorf("service: mem_budget %d below the %d-byte minimum", s.MemBudget, gpucount.MinMemBudget)
	}
	prev := 0
	for _, k := range s.Rounds {
		if k <= prev {
			return fmt.Errorf("service: rounds must be strictly increasing, got %v", s.Rounds)
		}
		prev = k
	}
	return nil
}

// DeviceDemand is how many pool devices the job leases for its lifetime:
// one for the gpu engine, GPUs for multigpu, Ranks for dist (each simulated
// rank owns a device unless the job is CPU-only), zero for cpu.
func (s *JobSpec) DeviceDemand() int {
	switch s.Engine {
	case locassm.EngineGPU:
		return 1
	case locassm.EngineMultiGPU:
		return s.GPUs
	case locassm.EngineDist:
		return s.Ranks
	}
	return 0
}

// BuildInput materializes the job's reads and pipeline configuration —
// the exact code path a standalone run of the same spec takes, which is
// what makes service results bit-identical to batch results. The returned
// config has no checkpoint dir, observer, or engine instance; the
// scheduler attaches those per attempt.
func BuildInput(spec JobSpec) ([]dna.PairedRead, pipeline.Config, error) {
	spec = spec.withDefaults()
	cfg := pipeline.DefaultConfig()
	// Match the mhm2sim CLI's defaults (-estimate-insert=true), so a
	// daemon job and a default standalone run of the same spec produce
	// byte-identical output.
	cfg.EstimateInsert = true
	if len(spec.Rounds) > 0 {
		cfg.Rounds = append([]int(nil), spec.Rounds...)
	}
	if spec.Engine != locassm.EngineDist {
		cfg.Engine.Name = spec.Engine
		cfg.Engine.GPUs = spec.GPUs
	}
	cfg.MemBudget = spec.MemBudget
	if err := cfg.Validate(); err != nil {
		return nil, pipeline.Config{}, err
	}

	var pairs []dna.PairedRead
	if spec.ReadsPath != "" {
		f, err := os.Open(spec.ReadsPath)
		if err != nil {
			return nil, pipeline.Config{}, err
		}
		defer f.Close()
		pairs, err = dna.ReadInterleavedPairs(f)
		if err != nil {
			return nil, pipeline.Config{}, err
		}
	} else {
		preset, err := synth.PresetByName(spec.Preset)
		if err != nil {
			return nil, pipeline.Config{}, err
		}
		if spec.Seed != 0 {
			preset.Seed = spec.Seed
		}
		if spec.Genomes > 0 {
			preset.Com.NumGenomes = spec.Genomes
		}
		if spec.MinGenomeLen > 0 {
			preset.Com.MinGenomeLen = spec.MinGenomeLen
		}
		if spec.MaxGenomeLen > 0 {
			preset.Com.MaxGenomeLen = spec.MaxGenomeLen
		}
		if spec.Depth > 0 {
			preset.Reads.Depth = spec.Depth
		}
		_, pairs, err = preset.Build()
		if err != nil {
			return nil, pipeline.Config{}, err
		}
	}
	return pairs, cfg, nil
}

// distConfig builds the dist runtime configuration for a dist-engine job.
func distConfig(spec JobSpec, cfg pipeline.Config) (dist.Config, error) {
	dcfg := dist.DefaultConfig(spec.Ranks)
	dcfg.Pipeline = cfg
	dcfg.ShardPolicy = spec.Shard
	dcfg.Elastic = spec.Elastic
	dcfg.NoSteal = spec.NoSteal
	if spec.Faults != "" {
		plan, err := faults.NewPlan(spec.Faults, spec.FaultSeed, spec.Ranks, len(cfg.Rounds))
		if err != nil {
			return dist.Config{}, err
		}
		dcfg.Faults = plan
	}
	return dcfg, nil
}

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: admitted, waiting for a worker (or for devices).
	StateQueued State = "queued"
	// StateRunning: a worker holds the job's device lease and is executing
	// the pipeline.
	StateRunning State = "running"
	// StateSucceeded: result and contigs are persisted.
	StateSucceeded State = "succeeded"
	// StateFailed: the pipeline returned a non-cancellation error (after
	// exhausting job-level retries, for unrecoverable injected faults).
	StateFailed State = "failed"
	// StateCanceled: canceled by the client. A daemon shutdown does NOT
	// cancel jobs — interrupted jobs stay queued and resume from their
	// checkpoints on restart.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Status is the externally visible snapshot of a job — what GET
// /v1/jobs/{id} returns and what the store persists for finished jobs.
type Status struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State State   `json:"state"`
	Error string  `json:"error,omitempty"`
	// Attempts counts pipeline executions (> 1 only after job-level
	// retries on unrecoverable injected faults).
	Attempts int `json:"attempts,omitempty"`
	// Resumes counts pipeline executions that started from a non-empty
	// checkpoint — daemon restarts and retries that skipped completed
	// rounds.
	Resumes    int       `json:"resumes,omitempty"`
	SubmitTime time.Time `json:"submit_time"`
	StartTime  time.Time `json:"start_time,omitempty"`
	FinishTime time.Time `json:"finish_time,omitempty"`
	// QueueWaitNS is submission → execution start, including any wait for
	// the device lease.
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	// DeviceWaitNS is the part of the queue wait spent waiting on the
	// device pool; DeviceHeldNS is how long the lease was held.
	DeviceWaitNS int64 `json:"device_wait_ns,omitempty"`
	DeviceHeldNS int64 `json:"device_held_ns,omitempty"`
	Devices      int   `json:"devices,omitempty"`
	// StagesNS are the per-stage wall times of the (last) pipeline
	// execution, from the Observer seam.
	StagesNS map[string]int64 `json:"stages_ns,omitempty"`
}
