package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// NewHandler exposes the scheduler over HTTP+JSON:
//
//	POST   /v1/jobs             submit a JobSpec → 202 {"id": "job-000000"}
//	GET    /v1/jobs             list all job statuses
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel (idempotent; running jobs stop at the
//	                            next stage boundary)
//	GET    /v1/jobs/{id}/result the shared -json report (409 until succeeded)
//	GET    /v1/jobs/{id}/contigs the final FASTA (contigs + scaffolds)
//	GET    /metrics             Prometheus text exposition
//	GET    /healthz             liveness
//
// Admission rejections map to 429 (queue full, tenant over quota) and 503
// (draining) so clients can back off and retry — the HTTP face of the
// scheduler's backpressure.
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		id, err := s.Submit(spec)
		if err != nil {
			httpError(w, submitCode(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Cancel(r.PathValue("id")); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		rep, err := s.Result(r.PathValue("id"))
		if err != nil {
			httpError(w, resultCode(err), err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rep.Encode(w)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/contigs", func(w http.ResponseWriter, r *http.Request) {
		path, err := s.OutputPath(r.PathValue("id"))
		if err != nil {
			httpError(w, resultCode(err), err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		http.ServeFile(w, r, path)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.RenderMetrics(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// submitCode maps Submit errors to status codes.
func submitCode(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuotaExceeded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// resultCode maps Result/OutputPath errors to status codes.
func resultCode(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNotReady):
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
