package service

import (
	"context"
	"sync"
	"testing"
	"time"

	"mhm2sim/internal/simt"
)

func TestDevicePoolBasics(t *testing.T) {
	p := NewDevicePool(2, simt.DeviceConfig{})
	if p.Size() != 2 {
		t.Fatalf("size = %d", p.Size())
	}

	// CPU jobs lease nothing and never block.
	empty, err := p.Acquire(context.Background(), 0)
	if err != nil || len(empty.Devices) != 0 {
		t.Fatalf("empty lease: %v %v", empty, err)
	}
	empty.Release()

	// Demand beyond the pool can never be satisfied.
	if _, err := p.Acquire(context.Background(), 3); err == nil {
		t.Fatal("oversized demand granted")
	}

	l, err := p.Acquire(context.Background(), 2)
	if err != nil || len(l.Devices) != 2 {
		t.Fatalf("lease: %v %v", l, err)
	}
	if st := p.Stats(); st.Leased != 2 || st.Leases != 1 {
		t.Fatalf("stats: %+v", st)
	}
	l.Release()
	l.Release() // idempotent
	if st := p.Stats(); st.Leased != 0 {
		t.Fatalf("stats after release: %+v", st)
	}
}

// TestDevicePoolFIFONoOvertake: grants are all-or-nothing in strict FIFO
// order — a small request that would fit the free devices must not
// overtake a larger one at the head of the queue (the no-starvation
// guarantee).
func TestDevicePoolFIFONoOvertake(t *testing.T) {
	p := NewDevicePool(4, simt.DeviceConfig{})
	hold1, err := p.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	hold2, err := p.Acquire(context.Background(), 2) // pool exhausted
	if err != nil {
		t.Fatal(err)
	}

	granted := make(chan string, 2)
	acquire := func(name string, n int) {
		go func() {
			l, err := p.Acquire(context.Background(), n)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			granted <- name
			l.Release()
		}()
	}
	acquire("big", 3)
	time.Sleep(20 * time.Millisecond) // ensure "big" enqueues first
	acquire("small", 2)
	time.Sleep(20 * time.Millisecond)

	// Two devices free: not enough for "big" at the head, and "small" must
	// NOT slip past it even though two devices would suffice for it.
	hold1.Release()
	select {
	case name := <-granted:
		t.Fatalf("%s granted past the waiting pool head", name)
	case <-time.After(50 * time.Millisecond):
	}

	// Four free: "big" (3) is granted; "small" (2) cannot fit until big
	// releases, so the grant order is observable without a scheduling race.
	hold2.Release()
	first, second := <-granted, <-granted
	if first != "big" || second != "small" {
		t.Fatalf("grant order: %s, %s", first, second)
	}
}

// TestDevicePoolCancelWhileWaiting: a canceled waiter leaves the queue and
// does not block later grants.
func TestDevicePoolCancelWhileWaiting(t *testing.T) {
	p := NewDevicePool(1, simt.DeviceConfig{})
	hold, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx, 1)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("canceled waiter: %v", err)
	}
	hold.Release()
	// The canceled waiter must not have consumed the freed device.
	l, err := p.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	l.Release()
}

// TestDevicePoolStress: many concurrent mixed-size leases never exceed the
// pool, and every lease is eventually granted.
func TestDevicePoolStress(t *testing.T) {
	p := NewDevicePool(4, simt.DeviceConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		n := 1 + i%4
		wg.Add(1)
		go func() {
			defer wg.Done()
			l, err := p.Acquire(context.Background(), n)
			if err != nil {
				t.Errorf("acquire(%d): %v", n, err)
				return
			}
			if st := p.Stats(); st.Leased > st.Size {
				t.Errorf("pool over-leased: %+v", st)
			}
			l.Release()
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.Leased != 0 || st.Leases != 200 {
		t.Fatalf("stats: %+v", st)
	}
}
