package service

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"mhm2sim/internal/pipeline"
)

// Metrics aggregates per-tenant and per-stage counters for the /metrics
// endpoint, in the Prometheus text exposition format (hand-rendered — no
// client library dependency). Stage timings arrive through the pipeline's
// Observer seam; queue and device figures from the scheduler and pool.
type Metrics struct {
	mu      sync.Mutex
	tenants map[string]*tenantMetrics
	stages  map[string]int64 // stage name → Σ wall ns across all jobs
	retries int64            // job-level retries on unrecoverable faults
	resumes int64            // pipeline runs that started from a checkpoint
	// Memory-budget counting totals, accumulated from the WorkRecord of
	// every succeeded budget-mode job (zero while no job sets MemBudget).
	kmerPasses     int64 // counting passes executed
	kmerFiltered   int64 // singleton occurrences dropped by the Bloom prefilter
	kmerOOMReplans int64 // DeviceOOM events absorbed by budget shrink + re-plan
	// Elasticity totals, accumulated from every dist job's report.
	elasticJoins  int64 // ranks admitted mid-run (pool devices drawn by joins)
	stolenBatches int64 // work-stealing batch moves across all dist jobs
}

type tenantMetrics struct {
	submitted   int64
	byState     map[State]int64
	rejectQueue int64 // admission rejections: queue full
	rejectQuota int64 // admission rejections: tenant over quota
	queueWaitNS int64
	runNS       int64
}

// NewMetrics builds an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{tenants: make(map[string]*tenantMetrics), stages: make(map[string]int64)}
}

func (m *Metrics) tenant(name string) *tenantMetrics {
	t := m.tenants[name]
	if t == nil {
		t = &tenantMetrics{byState: make(map[State]int64)}
		m.tenants[name] = t
	}
	return t
}

// Submitted counts an admitted job.
func (m *Metrics) Submitted(tenant string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tenant(tenant).submitted++
}

// Rejected counts an admission rejection (reason: "queue_full" or "quota").
func (m *Metrics) Rejected(tenant, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tenant(tenant)
	if reason == "quota" {
		t.rejectQuota++
	} else {
		t.rejectQueue++
	}
}

// Finished counts a job reaching a terminal state, with its waits.
func (m *Metrics) Finished(tenant string, state State, queueWait, run time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tenant(tenant)
	t.byState[state]++
	t.queueWaitNS += int64(queueWait)
	t.runNS += int64(run)
}

// Retried counts a job-level retry after an unrecoverable injected fault.
func (m *Metrics) Retried() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

// Resumed counts a pipeline execution that skipped checkpointed rounds.
func (m *Metrics) Resumed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resumes++
}

// KmerBudget accumulates a succeeded budget-mode job's counting totals.
func (m *Metrics) KmerBudget(passes int, filtered int64, oomReplans int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.kmerPasses += int64(passes)
	m.kmerFiltered += filtered
	m.kmerOOMReplans += int64(oomReplans)
}

// ElasticRun accumulates a dist job's elasticity counters.
func (m *Metrics) ElasticRun(joins, stolenBatches int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.elasticJoins += int64(joins)
	m.stolenBatches += int64(stolenBatches)
}

// StageObserver returns a pipeline.Observer accumulating per-stage wall
// time into the registry and, when job is non-nil, into the job's own
// per-stage map. One observer per pipeline execution.
func (m *Metrics) StageObserver(stages map[string]int64) pipeline.Observer {
	return &metricObserver{m: m, stages: stages}
}

type metricObserver struct {
	m      *Metrics
	stages map[string]int64 // per-job accumulation (may be nil)
}

func (o *metricObserver) StageStart(pipeline.StageEvent) {}

func (o *metricObserver) StageFinish(ev pipeline.StageEvent, wall time.Duration, _ pipeline.Timings, _ pipeline.WorkRecord) {
	o.m.mu.Lock()
	o.m.stages[ev.Name] += int64(wall)
	o.m.mu.Unlock()
	if o.stages != nil {
		o.stages[ev.Name] += int64(wall)
	}
}

// metricName sanitizes a label value ("local assembly" → "local_assembly").
func metricName(s string) string {
	return strings.NewReplacer(" ", "_", "-", "_", "/", "_").Replace(s)
}

// Render writes the Prometheus text exposition. queueDepth/running are
// live gauges supplied by the scheduler; pool is the device pool snapshot.
func (m *Metrics) Render(w io.Writer, queueDepth, running int, pool PoolStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE mhm2d_queue_depth gauge\nmhm2d_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# TYPE mhm2d_jobs_running gauge\nmhm2d_jobs_running %d\n", running)
	fmt.Fprintf(w, "# TYPE mhm2d_devices gauge\nmhm2d_devices %d\n", pool.Size)
	fmt.Fprintf(w, "# TYPE mhm2d_devices_leased gauge\nmhm2d_devices_leased %d\n", pool.Leased)
	fmt.Fprintf(w, "# TYPE mhm2d_device_leases_total counter\nmhm2d_device_leases_total %d\n", pool.Leases)
	fmt.Fprintf(w, "# TYPE mhm2d_device_busy_seconds_total counter\nmhm2d_device_busy_seconds_total %g\n", float64(pool.BusyNS)/1e9)
	fmt.Fprintf(w, "# TYPE mhm2d_device_wait_seconds_total counter\nmhm2d_device_wait_seconds_total %g\n", float64(pool.WaitNS)/1e9)
	fmt.Fprintf(w, "# TYPE mhm2d_job_retries_total counter\nmhm2d_job_retries_total %d\n", m.retries)
	fmt.Fprintf(w, "# TYPE mhm2d_job_resumes_total counter\nmhm2d_job_resumes_total %d\n", m.resumes)
	fmt.Fprintf(w, "# TYPE mhm2d_kmer_budget_passes_total counter\nmhm2d_kmer_budget_passes_total %d\n", m.kmerPasses)
	fmt.Fprintf(w, "# TYPE mhm2d_kmer_filtered_singletons_total counter\nmhm2d_kmer_filtered_singletons_total %d\n", m.kmerFiltered)
	fmt.Fprintf(w, "# TYPE mhm2d_kmer_oom_replans_total counter\nmhm2d_kmer_oom_replans_total %d\n", m.kmerOOMReplans)
	fmt.Fprintf(w, "# TYPE mhm2d_elastic_joins_total counter\nmhm2d_elastic_joins_total %d\n", m.elasticJoins)
	fmt.Fprintf(w, "# TYPE mhm2d_stolen_batches_total counter\nmhm2d_stolen_batches_total %d\n", m.stolenBatches)

	names := make([]string, 0, len(m.tenants))
	for n := range m.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# TYPE mhm2d_jobs_submitted_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "mhm2d_jobs_submitted_total{tenant=%q} %d\n", n, m.tenants[n].submitted)
	}
	fmt.Fprintf(w, "# TYPE mhm2d_jobs_finished_total counter\n")
	for _, n := range names {
		t := m.tenants[n]
		states := make([]string, 0, len(t.byState))
		for s := range t.byState {
			states = append(states, string(s))
		}
		sort.Strings(states)
		for _, s := range states {
			fmt.Fprintf(w, "mhm2d_jobs_finished_total{tenant=%q,state=%q} %d\n", n, s, t.byState[State(s)])
		}
	}
	fmt.Fprintf(w, "# TYPE mhm2d_jobs_rejected_total counter\n")
	for _, n := range names {
		t := m.tenants[n]
		if t.rejectQueue > 0 {
			fmt.Fprintf(w, "mhm2d_jobs_rejected_total{tenant=%q,reason=\"queue_full\"} %d\n", n, t.rejectQueue)
		}
		if t.rejectQuota > 0 {
			fmt.Fprintf(w, "mhm2d_jobs_rejected_total{tenant=%q,reason=\"quota\"} %d\n", n, t.rejectQuota)
		}
	}
	fmt.Fprintf(w, "# TYPE mhm2d_queue_wait_seconds_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "mhm2d_queue_wait_seconds_total{tenant=%q} %g\n", n, float64(m.tenants[n].queueWaitNS)/1e9)
	}
	fmt.Fprintf(w, "# TYPE mhm2d_run_seconds_total counter\n")
	for _, n := range names {
		fmt.Fprintf(w, "mhm2d_run_seconds_total{tenant=%q} %g\n", n, float64(m.tenants[n].runNS)/1e9)
	}

	stageNames := make([]string, 0, len(m.stages))
	for s := range m.stages {
		stageNames = append(stageNames, s)
	}
	sort.Strings(stageNames)
	fmt.Fprintf(w, "# TYPE mhm2d_stage_seconds_total counter\n")
	for _, s := range stageNames {
		fmt.Fprintf(w, "mhm2d_stage_seconds_total{stage=%q} %g\n", metricName(s), float64(m.stages[s])/1e9)
	}
}
