package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mhm2sim/internal/report"
)

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) (*http.Response, string) {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out.ID
}

// TestHTTPAPI drives the full client flow against a live scheduler:
// submit → poll → result → contigs, plus every error-path status code.
func TestHTTPAPI(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Workers: 2, QueueDepth: 4, TenantMaxActive: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// Submit a tiny job.
	resp, id := postJob(t, srv, tinySpec(1))
	if resp.StatusCode != http.StatusAccepted || id == "" {
		t.Fatalf("submit: %d, id=%q", resp.StatusCode, id)
	}

	// Malformed and invalid submissions are 400s.
	if resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader("{not json")); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %v %d", err, resp.StatusCode)
	}
	bad := tinySpec(1)
	bad.Engine = "quantum"
	if resp, _ := postJob(t, srv, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid engine: %d", resp.StatusCode)
	}

	// Unknown job IDs are 404 on every per-job route.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/contigs"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil || resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %v %d", path, err, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Poll the job to completion.
	deadline := time.Now().Add(time.Minute)
	var st Status
	for {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != StateSucceeded {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	// The result endpoint serves the shared report schema.
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("result: %v %d", err, resp2.StatusCode)
	}
	var rep report.Report
	if err := json.NewDecoder(resp2.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if rep.Schema != report.SchemaVersion || rep.Assembly.Contigs == 0 {
		t.Fatalf("report: %+v", rep)
	}

	// The contigs endpoint serves FASTA.
	resp3, err := http.Get(srv.URL + "/v1/jobs/" + id + "/contigs")
	if err != nil || resp3.StatusCode != http.StatusOK {
		t.Fatalf("contigs: %v %d", err, resp3.StatusCode)
	}
	fasta, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !bytes.HasPrefix(fasta, []byte(">")) {
		t.Fatalf("contigs endpoint returned non-FASTA: %.40q", fasta)
	}

	// The list endpoint includes the job.
	resp4, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil || resp4.StatusCode != http.StatusOK {
		t.Fatalf("list: %v %d", err, resp4.StatusCode)
	}
	var list []Status
	if err := json.NewDecoder(resp4.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if len(list) == 0 || list[0].ID != id {
		t.Fatalf("list: %+v", list)
	}

	// Metrics and health.
	resp5, _ := http.Get(srv.URL + "/metrics")
	mb, _ := io.ReadAll(resp5.Body)
	resp5.Body.Close()
	if !strings.Contains(string(mb), "mhm2d_jobs_submitted_total") {
		t.Fatalf("metrics:\n%s", mb)
	}
	resp6, _ := http.Get(srv.URL + "/healthz")
	if resp6.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp6.StatusCode)
	}
	resp6.Body.Close()
}

// TestHTTPBackpressure: over-quota and over-queue submissions surface as
// 429, result-before-ready as 409, cancel as 204.
func TestHTTPBackpressure(t *testing.T) {
	// Workers never started: jobs stay queued.
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, QueueDepth: 3, TenantMaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	specFor := func(tenant string) JobSpec {
		sp := tinySpec(1)
		sp.Tenant = tenant
		return sp
	}
	var firstID string
	for i := 0; i < 2; i++ {
		resp, id := postJob(t, srv, specFor("a"))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		if i == 0 {
			firstID = id
		}
	}
	// Tenant quota (2) exhausted → 429.
	if resp, _ := postJob(t, srv, specFor("a")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota: %d", resp.StatusCode)
	}
	// Queue (3) has one slot left for other tenants, then overflows → 429.
	if resp, _ := postJob(t, srv, specFor("b")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tenant b: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, srv, specFor("c")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue: %d", resp.StatusCode)
	}

	// Result of a queued job → 409.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + firstID + "/result")
	if err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before ready: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Cancel → 204. The queue slot is freed once a worker drains the stale
	// entry, so start the workers and retry until the flood clears.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+firstID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cancel: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	s.Start()
	deadline := time.Now().Add(time.Minute)
	for {
		resp, _ := postJob(t, srv, specFor("c"))
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("post-cancel submit: %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Draining → 503.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postJob(t, srv, specFor("d")); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d", resp.StatusCode)
	}
}
