package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mhm2sim/internal/dist"
	"mhm2sim/internal/pipeline"
)

// tinySpec builds a fast (<50ms) single-round job whose input is fully
// determined by seed.
func tinySpec(seed int64) JobSpec {
	return JobSpec{
		Seed: seed, Genomes: 1, MinGenomeLen: 3000, MaxGenomeLen: 3000,
		Depth: 10, Rounds: []int{21},
	}
}

// standaloneOutput runs the spec's input through the batch pipeline (no
// scheduler, no daemon) and returns the serialized contigs + scaffolds —
// the reference the daemon's persisted outputs must match byte for byte.
func standaloneOutput(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	pairs, cfg, err := BuildInput(spec)
	if err != nil {
		t.Fatal(err)
	}
	var res *pipeline.Result
	if spec.withDefaults().Engine == "dist" {
		dcfg, err := distConfig(spec.withDefaults(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err = dist.Run(pairs, dcfg)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		res, err = pipeline.Run(pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := pipeline.WriteFASTAOutputs(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Scheduler, id string, timeout time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := s.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSchedulerStress floods the scheduler with >100 concurrent small jobs
// mixing every engine and four tenants over a shared 4-device pool, with a
// queue small enough to force admission rejects. Every job's persisted
// contigs must be bit-identical to a standalone batch run of the same
// input — across cpu, gpu, multigpu, and dist engines, which is the
// repo-wide determinism invariant carried into the service tier.
func TestSchedulerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs >100 assembly jobs")
	}
	const (
		inputs     = 30
		perInput   = 4 // one per engine
		totalJobs  = inputs * perInput
		queueDepth = 16
	)

	// Reference outputs, one per distinct input; every engine must hit the
	// same bytes.
	ref := make(map[int64][]byte, inputs)
	for seed := int64(1); seed <= inputs; seed++ {
		ref[seed] = standaloneOutput(t, tinySpec(seed))
	}

	dataDir := t.TempDir()
	s, err := New(Config{
		DataDir: dataDir, Workers: 6, QueueDepth: queueDepth, Devices: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()

	engines := []string{"cpu", "gpu", "multigpu", "dist"}
	var rejects atomic.Int64
	ids := make([]string, totalJobs)
	seeds := make([]int64, totalJobs)
	var wg sync.WaitGroup
	for i := 0; i < totalJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := int64(i%inputs) + 1
			spec := tinySpec(seed)
			spec.Engine = engines[i%len(engines)]
			spec.Tenant = fmt.Sprintf("tenant-%d", i%4)
			if spec.Engine == "multigpu" {
				spec.GPUs = 2
			}
			if spec.Engine == "dist" {
				spec.Ranks = 2
			}
			for {
				id, err := s.Submit(spec)
				if err == nil {
					ids[i], seeds[i] = id, seed
					return
				}
				if !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrQuotaExceeded) {
					t.Errorf("job %d: %v", i, err)
					return
				}
				rejects.Add(1)
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, id := range ids {
		st := waitTerminal(t, s, id, 2*time.Minute)
		if st.State != StateSucceeded {
			t.Fatalf("job %s (engine %s): state %s: %s", id, st.Spec.Engine, st.State, st.Error)
		}
		got, err := os.ReadFile(filepath.Join(jobDir(dataDir, id), outputFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref[seeds[i]]) {
			t.Fatalf("job %s (engine %s, seed %d): output differs from standalone run",
				id, st.Spec.Engine, seeds[i])
		}
	}

	// A 16-deep queue fed by 120 concurrent submissions must have pushed
	// back at least once — otherwise the admission control never engaged.
	if rejects.Load() == 0 {
		t.Error("no admission rejects observed; backpressure untested")
	}

	// The metrics must reflect the flood.
	var mbuf bytes.Buffer
	s.RenderMetrics(&mbuf)
	m := mbuf.String()
	for _, want := range []string{
		`mhm2d_jobs_finished_total{tenant="tenant-0",state="succeeded"} 30`,
		`mhm2d_jobs_rejected_total`,
		`mhm2d_device_leases_total`,
		`mhm2d_stage_seconds_total{stage="local_assembly"}`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerAdmission: tenant quotas and the bounded queue both reject
// with their sentinel errors (the HTTP layer's 429s). The scheduler is
// never started, so admitted jobs stay queued.
func TestSchedulerAdmission(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), QueueDepth: 3, TenantMaxActive: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := tinySpec(1)
	a.Tenant = "a"
	if _, err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(a); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third job of tenant a: %v", err)
	}
	b := tinySpec(1)
	b.Tenant = "b"
	if _, err := s.Submit(b); err != nil {
		t.Fatal(err) // other tenants are unaffected by a's quota
	}
	if _, err := s.Submit(b); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fourth queued job: %v", err)
	}

	// Invalid specs are rejected outright.
	bad := tinySpec(1)
	bad.Engine = "quantum"
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("unknown engine admitted")
	}
	bad = tinySpec(1)
	bad.Engine = "dist" // needs ranks ≥ 2
	if _, err := s.Submit(bad); err == nil {
		t.Fatal("dist without ranks admitted")
	}

	// Draining refuses everything.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(tinySpec(2)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v", err)
	}
}

// TestSchedulerCancel covers both cancel paths: a queued job is terminally
// canceled in place; a running job stops at its next stage boundary.
func TestSchedulerCancel(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Queued cancel (workers not started yet).
	id, err := s.Submit(tinySpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st, _ := s.Status(id)
	if st.State != StateCanceled {
		t.Fatalf("queued cancel: state %s", st.State)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatalf("cancel is not idempotent: %v", err)
	}
	if _, err := s.Result(id); !errors.Is(err, ErrNotReady) {
		t.Fatalf("result of canceled job: %v", err)
	}
	if err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown job: %v", err)
	}

	// Running cancel: a multi-round job is canceled mid-run.
	s.Start()
	spec := JobSpec{Seed: 3, Genomes: 3, MinGenomeLen: 6000, MaxGenomeLen: 9000,
		Depth: 14, Rounds: []int{21, 33, 45, 55}}
	id, err = s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st, _ := s.Status(id)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Cancel(id); err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, s, id, time.Minute)
	if st.State != StateCanceled {
		t.Fatalf("running cancel: state %s (%s)", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Errorf("cancel error: %q", st.Error)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerFaultRetry: a dist job whose chaos schedule is
// unrecoverable under ANY seed exhausts the scheduler's reseeded retries
// and fails with the attempts accounted. A 1-round run has only two
// targetable exchanges and the fabric's default retry budget is 3, so 8
// drop events (each failing an exchange 1–2 times) always overload one
// exchange past the budget, whatever the seed draws.
func TestSchedulerFaultRetry(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, QueueDepth: 4, JobRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	spec := tinySpec(5)
	spec.Engine = "dist"
	spec.Ranks = 2
	spec.Faults = "drop=8"
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, time.Minute)
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "unrecoverable") {
		t.Errorf("error %q does not mention the unrecoverable fault", st.Error)
	}
	if st.Attempts != 3 { // initial + JobRetries reseeded retries
		t.Errorf("attempts = %d, want 3", st.Attempts)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerRestartResume is the daemon-restart contract end to end: a
// multi-round job is interrupted by Shutdown after its first checkpoint, a
// new scheduler over the same data directory re-queues it, and the
// finished output is bit-identical to an uninterrupted standalone run.
func TestSchedulerRestartResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-round job twice")
	}
	dataDir := t.TempDir()
	spec := JobSpec{Seed: 11, Genomes: 3, MinGenomeLen: 6000, MaxGenomeLen: 9000,
		Depth: 14, Rounds: []int{21, 33, 45, 55}}
	want := standaloneOutput(t, spec)

	s1, err := New(Config{DataDir: dataDir, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first round's checkpoint, then pull the plug.
	ckpt := filepath.Join(jobDir(dataDir, id), ckptDir, "contigs-k21.fasta")
	deadline := time.Now().Add(time.Minute)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first checkpoint never appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if st, _ := s1.Status(id); st.State.Terminal() {
		t.Fatalf("interrupted job reached terminal state %s", st.State)
	}

	// "Restart the daemon": a fresh scheduler over the same directory.
	s2, err := New(Config{DataDir: dataDir, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Resumable(); n != 1 {
		t.Fatalf("resumable jobs after restart: %d", n)
	}
	s2.Start()
	st := waitTerminal(t, s2, id, 2*time.Minute)
	if st.State != StateSucceeded {
		t.Fatalf("resumed job: state %s: %s", st.State, st.Error)
	}
	if st.Resumes < 1 {
		t.Errorf("resumed job reports %d resumes", st.Resumes)
	}
	got, err := os.ReadFile(filepath.Join(jobDir(dataDir, id), outputFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from uninterrupted standalone run")
	}
	// The restarted scheduler also still serves the finished job's result.
	rep, err := s2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Assembly.Contigs == 0 {
		t.Error("persisted report has no contigs")
	}

	// Third incarnation: the terminal job is loaded as done, not re-run.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
	s3, err := New(Config{DataDir: dataDir, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := s3.Resumable(); n != 0 {
		t.Fatalf("finished job re-queued on restart: %d resumable", n)
	}
	st3, err := s3.Status(id)
	if err != nil || st3.State != StateSucceeded {
		t.Fatalf("finished job after second restart: %+v, %v", st3, err)
	}
}

// TestSchedulerShardPolicy: JobSpec.Shard is validated at admission and a
// component-shard dist job's persisted output is bit-identical to both the
// standalone run and the hash-policy job — the shard map relocates work,
// never changes it.
func TestSchedulerShardPolicy(t *testing.T) {
	dataDir := t.TempDir()
	s, err := New(Config{DataDir: dataDir, Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	}()

	// Component sharding targets the dist engine; unknown policies bounce.
	bad := tinySpec(9)
	bad.Shard = dist.ShardComponent
	if _, err := s.Submit(bad); err == nil {
		t.Error("shard=component without engine=dist accepted")
	}
	bad.Engine = "dist"
	bad.Ranks = 2
	bad.Shard = "zigzag"
	if _, err := s.Submit(bad); err == nil {
		t.Error("unknown shard policy accepted")
	}

	spec := tinySpec(9)
	spec.Engine = "dist"
	spec.Ranks = 4
	want := standaloneOutput(t, spec)
	outputs := make(map[string][]byte)
	for _, policy := range []string{dist.ShardHash, dist.ShardComponent} {
		spec.Shard = policy
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("shard=%s: %v", policy, err)
		}
		if st := waitTerminal(t, s, id, time.Minute); st.State != StateSucceeded {
			t.Fatalf("shard=%s: job ended %s (%s)", policy, st.State, st.Error)
		}
		got, err := os.ReadFile(filepath.Join(jobDir(dataDir, id), outputFile))
		if err != nil {
			t.Fatal(err)
		}
		outputs[policy] = got
		if !bytes.Equal(got, want) {
			t.Errorf("shard=%s: output differs from standalone run", policy)
		}
	}
	if !bytes.Equal(outputs[dist.ShardHash], outputs[dist.ShardComponent]) {
		t.Error("hash and component jobs produced different outputs")
	}
}
