package service

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"mhm2sim/internal/simt"
)

// TestDevicePoolTryAcquire pins the non-blocking lease path elastic joins
// use: immediate grants when devices are free, nil (never a wait) when the
// pool is exhausted, oversized, or has FIFO waiters queued ahead.
func TestDevicePoolTryAcquire(t *testing.T) {
	p := NewDevicePool(2, simt.DeviceConfig{})

	if l := p.TryAcquire(0); l == nil || len(l.Devices) != 0 {
		t.Fatal("zero-device TryAcquire should return an empty lease")
	}
	if l := p.TryAcquire(3); l != nil {
		t.Fatal("TryAcquire beyond pool size should refuse")
	}
	l1 := p.TryAcquire(1)
	if l1 == nil || len(l1.Devices) != 1 {
		t.Fatal("TryAcquire(1) with 2 free refused")
	}
	l2 := p.TryAcquire(2)
	if l2 != nil {
		t.Fatal("TryAcquire(2) with 1 free should refuse, not block")
	}
	l1.Release()
	if l := p.TryAcquire(2); l == nil {
		t.Fatal("TryAcquire(2) after release refused")
	} else {
		l.Release()
	}
	if st := p.Stats(); st.Leased != 0 {
		t.Fatalf("%d devices still leased after releases", st.Leased)
	}
}

// TestDevicePoolTryAcquireYieldsToWaiters: a blocked Acquire at the head
// of the FIFO queue must not be overtaken by an elastic join's TryAcquire,
// even when enough devices are free for the join.
func TestDevicePoolTryAcquireYieldsToWaiters(t *testing.T) {
	p := NewDevicePool(2, simt.DeviceConfig{})
	hold := p.TryAcquire(1)
	if hold == nil {
		t.Fatal("setup lease refused")
	}
	// Queue a waiter needing both devices; it cannot be granted yet.
	granted := make(chan *Lease)
	go func() {
		l, err := p.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
		}
		granted <- l
	}()
	// Wait for the waiter to be queued.
	for i := 0; ; i++ {
		p.mu.Lock()
		n := len(p.waiters)
		p.mu.Unlock()
		if n == 1 {
			break
		}
		if i > 1000 {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if l := p.TryAcquire(1); l != nil {
		t.Fatal("TryAcquire overtook a queued FIFO waiter")
	}
	hold.Release()
	(<-granted).Release()
}

// TestJobSpecElasticValidation: elastic schedules are validated at
// admission with the same conventions as the other dist-only knobs.
func TestJobSpecElasticValidation(t *testing.T) {
	spec := tinySpec(1).withDefaults()
	spec.Elastic = "join@r0:1"
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "engine=dist") {
		t.Errorf("elastic without dist engine: %v", err)
	}
	spec.Engine, spec.Ranks = "dist", 2
	if err := spec.Validate(); err != nil {
		t.Errorf("valid elastic dist spec rejected: %v", err)
	}
	spec.Elastic = "join@r5:1" // out of range for the single round
	if err := spec.Validate(); err == nil {
		t.Error("out-of-range elastic round admitted")
	}
	spec.Elastic = "bogus"
	if err := spec.Validate(); err == nil {
		t.Error("malformed elastic spec admitted")
	}
}

// TestSchedulerElasticJob runs an elastic dist job end to end through the
// daemon: the joining rank draws a device from the shared pool, the
// persisted output matches the standalone run byte for byte, the JSON
// report carries the elasticity section, every pool device returns at job
// end, and the metrics counters accumulate.
func TestSchedulerElasticJob(t *testing.T) {
	spec := tinySpec(5)
	spec.Engine, spec.Ranks = "dist", 2
	spec.Elastic = "join@r0:1"
	ref := standaloneOutput(t, spec)

	s, err := New(Config{DataDir: t.TempDir(), Workers: 1, QueueDepth: 4, Devices: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, 2*time.Minute)
	if st.State != StateSucceeded {
		t.Fatalf("elastic job: state %s: %s", st.State, st.Error)
	}

	path, err := s.OutputPath(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, ref) {
		t.Fatal("elastic job output differs from standalone elastic run")
	}

	rep, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dist == nil || rep.Dist.Elasticity == nil {
		t.Fatal("persisted report is missing the elasticity section")
	}
	es := rep.Dist.Elasticity
	if es.Joins != 1 || es.Epochs < 2 {
		t.Fatalf("elasticity section: joins=%d epochs=%d, want 1 join and ≥ 2 epochs", es.Joins, es.Epochs)
	}
	if rep.Dist.Capacity != 3 {
		t.Fatalf("capacity = %d, want 3 (2 initial + 1 join)", rep.Dist.Capacity)
	}
	joined := 0
	for _, r := range rep.Dist.PerRank {
		if r.JoinedRound >= 0 {
			joined++
		}
	}
	if joined != 1 {
		t.Fatalf("%d per-rank rows carry a join round, want 1", joined)
	}

	if ps := s.pool.Stats(); ps.Leased != 0 {
		t.Fatalf("%d pool devices still leased after the job", ps.Leased)
	}

	var mbuf bytes.Buffer
	s.RenderMetrics(&mbuf)
	if !strings.Contains(mbuf.String(), "mhm2d_elastic_joins_total 1") {
		t.Fatalf("metrics missing elastic join counter in:\n%s", mbuf.String())
	}
}
