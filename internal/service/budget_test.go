package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mhm2sim/internal/gpucount"
)

// TestJobSpecMemBudgetValidation: bad budgets are rejected at admission,
// with a diagnostic, before any pipeline work starts.
func TestJobSpecMemBudgetValidation(t *testing.T) {
	s, err := New(Config{DataDir: t.TempDir(), QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := tinySpec(1)
	bad.MemBudget = -1
	if _, err := s.Submit(bad); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative mem_budget admitted: %v", err)
	}
	bad.MemBudget = gpucount.MinMemBudget - 1
	if _, err := s.Submit(bad); err == nil || !strings.Contains(err.Error(), "minimum") {
		t.Fatalf("sub-minimum mem_budget admitted: %v", err)
	}
	ok := tinySpec(1).withDefaults()
	ok.MemBudget = gpucount.MinMemBudget
	if err := ok.Validate(); err != nil {
		t.Fatalf("minimum mem_budget rejected: %v", err)
	}
}

// TestSchedulerMemBudgetJob runs a daemon job under the tightest legal
// memory budget: the output must stay bit-identical to a standalone
// budget run, the persisted report must carry the kmer section, and the
// /metrics exposition must count the budget work.
func TestSchedulerMemBudgetJob(t *testing.T) {
	spec := tinySpec(3)
	spec.MemBudget = gpucount.MinMemBudget
	ref := standaloneOutput(t, spec)

	dataDir := t.TempDir()
	s, err := New(Config{DataDir: dataDir, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	id, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, s, id, 2*time.Minute)
	if st.State != StateSucceeded {
		t.Fatalf("budget job: state %s: %s", st.State, st.Error)
	}
	got, err := os.ReadFile(filepath.Join(jobDir(dataDir, id), outputFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, ref) {
		t.Fatal("budget job output differs from standalone budget run")
	}

	rep, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kmer == nil {
		t.Fatal("persisted report is missing the kmer budget section")
	}
	if rep.Kmer.Passes < 2 {
		t.Fatalf("minimum budget ran %d passes, want ≥ 2", rep.Kmer.Passes)
	}
	if rep.Kmer.FilteredSingletons <= 0 {
		t.Fatal("Bloom prefilter dropped no singleton occurrences")
	}

	var mbuf bytes.Buffer
	s.RenderMetrics(&mbuf)
	m := mbuf.String()
	want := fmt.Sprintf("mhm2d_kmer_budget_passes_total %d", rep.Kmer.Passes)
	if !strings.Contains(m, want) {
		t.Fatalf("metrics missing %q in:\n%s", want, m)
	}
	if strings.Contains(m, "mhm2d_kmer_filtered_singletons_total 0\n") {
		t.Fatal("metrics did not accumulate filtered singletons")
	}
}
