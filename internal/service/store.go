package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout, under Config.DataDir:
//
//	jobs/<id>/spec.json    the JobSpec, written at admission
//	jobs/<id>/ckpt/        pipeline.CheckpointDir (per-round contigs)
//	jobs/<id>/result.json  the shared report (internal/report), on success
//	jobs/<id>/output.fasta final contigs + scaffolds, on success
//	jobs/<id>/status.json  terminal Status (succeeded/failed/canceled)
//
// A job directory with spec.json but no status.json is an in-flight job:
// on daemon restart it is re-queued and its pipeline run resumes from the
// checkpoint directory — the service-level half of the paper pipeline's
// --checkpoint behaviour.

const (
	specFile   = "spec.json"
	ckptDir    = "ckpt"
	resultFile = "result.json"
	outputFile = "output.fasta"
	statusFile = "status.json"
	jobsDir    = "jobs"
)

// jobDir returns the directory of one job.
func jobDir(dataDir, id string) string { return filepath.Join(dataDir, jobsDir, id) }

// jobIDNum parses the numeric suffix of a job ID ("job-000017" → 17).
func jobIDNum(id string) (int, bool) {
	v, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// formatJobID renders the n-th job ID.
func formatJobID(n int) string { return fmt.Sprintf("job-%06d", n) }

// writeJSONFile atomically persists v as indented JSON.
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// saveSpec persists a newly admitted job.
func saveSpec(dataDir, id string, spec JobSpec) error {
	dir := jobDir(dataDir, id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return writeJSONFile(filepath.Join(dir, specFile), spec)
}

// saveStatus persists a terminal job status.
func saveStatus(dataDir string, st Status) error {
	return writeJSONFile(filepath.Join(jobDir(dataDir, st.ID), statusFile), st)
}

// loadedJob is one persisted job found at startup.
type loadedJob struct {
	ID   string
	Spec JobSpec
	// Done holds the terminal status when the job finished before the
	// previous daemon exited; nil means in-flight (re-queue and resume).
	Done *Status
}

// loadJobs scans the data directory, returning persisted jobs in ID order
// plus the next free job number.
func loadJobs(dataDir string) ([]loadedJob, int, error) {
	entries, err := os.ReadDir(filepath.Join(dataDir, jobsDir))
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var jobs []loadedJob
	next := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		n, ok := jobIDNum(id)
		if !ok {
			continue
		}
		if n+1 > next {
			next = n + 1
		}
		specB, err := os.ReadFile(filepath.Join(jobDir(dataDir, id), specFile))
		if err != nil {
			// A directory without a readable spec was interrupted mid-admission;
			// nothing can be resumed from it.
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(specB, &spec); err != nil {
			return nil, 0, fmt.Errorf("service: corrupt spec for %s: %w", id, err)
		}
		lj := loadedJob{ID: id, Spec: spec}
		if stB, err := os.ReadFile(filepath.Join(jobDir(dataDir, id), statusFile)); err == nil {
			var st Status
			if err := json.Unmarshal(stB, &st); err != nil {
				return nil, 0, fmt.Errorf("service: corrupt status for %s: %w", id, err)
			}
			if st.State.Terminal() {
				lj.Done = &st
			}
		}
		jobs = append(jobs, lj)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	return jobs, next, nil
}
