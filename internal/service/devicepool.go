package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mhm2sim/internal/simt"
)

// DevicePool is the daemon's shared set of simulated GPUs, leased to jobs
// for the duration of their run. Grants are all-or-nothing and FIFO: a job
// needing k devices waits until k are free AND it is at the head of the
// wait queue. All-or-nothing prevents the classic fragment deadlock (two
// jobs each holding half of their demand, each waiting for the other's
// half); FIFO prevents small jobs from starving large ones.
type DevicePool struct {
	mu      sync.Mutex
	free    []*simt.Device
	waiters []*poolWaiter // FIFO
	size    int

	// Accounting for /metrics.
	leases    int64
	busyNS    int64 // Σ lease hold time
	waitNS    int64 // Σ time jobs spent waiting for a grant
	leasedNow int
}

type poolWaiter struct {
	n  int
	ch chan []*simt.Device // buffered(1); receives the grant
}

// NewDevicePool builds n devices from cfg (zero Name = simt.V100()).
func NewDevicePool(n int, cfg simt.DeviceConfig) *DevicePool {
	if cfg.Name == "" {
		cfg = simt.V100()
	}
	p := &DevicePool{size: n}
	for i := 0; i < n; i++ {
		p.free = append(p.free, simt.NewDevice(cfg))
	}
	return p
}

// Size returns the pool's device count.
func (p *DevicePool) Size() int { return p.size }

// Lease is a granted set of devices. Release returns them to the pool
// exactly once.
type Lease struct {
	Devices []*simt.Device
	pool    *DevicePool
	t0      time.Time
	once    sync.Once
}

// Acquire leases n devices, blocking until they are granted or ctx is
// done. n == 0 returns an empty lease immediately (CPU jobs). n beyond the
// pool size can never be satisfied and errors immediately.
func (p *DevicePool) Acquire(ctx context.Context, n int) (*Lease, error) {
	if n == 0 {
		return &Lease{pool: p, t0: time.Now()}, nil
	}
	if n > p.size {
		return nil, fmt.Errorf("service: job needs %d devices, pool has %d", n, p.size)
	}
	t0 := time.Now()
	p.mu.Lock()
	if len(p.waiters) == 0 && len(p.free) >= n {
		devs := p.take(n)
		p.granted(t0)
		p.mu.Unlock()
		return &Lease{Devices: devs, pool: p, t0: time.Now()}, nil
	}
	w := &poolWaiter{n: n, ch: make(chan []*simt.Device, 1)}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()

	select {
	case devs := <-w.ch:
		p.mu.Lock()
		p.granted(t0)
		p.mu.Unlock()
		return &Lease{Devices: devs, pool: p, t0: time.Now()}, nil
	case <-ctx.Done():
		p.mu.Lock()
		for i, q := range p.waiters {
			if q == w {
				p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
				p.mu.Unlock()
				return nil, ctx.Err()
			}
		}
		p.mu.Unlock()
		// The grant raced the cancellation: the devices are already ours,
		// hand them straight back.
		devs := <-w.ch
		p.release(devs, time.Now())
		return nil, ctx.Err()
	}
}

// TryAcquire leases n devices without blocking: nil (no error) when the
// pool cannot grant immediately — fewer than n free, or FIFO waiters queued
// ahead (an elastic join must not jump jobs blocked in Acquire). An elastic
// dist job's mid-run rank joins use this: a join that cannot get a device
// is a hard job error, never a silent wait that would deadlock the round
// barrier against the very jobs holding the devices.
func (p *DevicePool) TryAcquire(n int) *Lease {
	if n == 0 {
		return &Lease{pool: p, t0: time.Now()}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.size || len(p.waiters) > 0 || len(p.free) < n {
		return nil
	}
	devs := p.take(n)
	p.granted(time.Now())
	return &Lease{Devices: devs, pool: p, t0: time.Now()}
}

// take removes n devices from the free list (caller holds mu).
func (p *DevicePool) take(n int) []*simt.Device {
	devs := p.free[len(p.free)-n:]
	p.free = p.free[:len(p.free)-n]
	p.leasedNow += n
	return append([]*simt.Device(nil), devs...)
}

// granted records a successful acquisition (caller holds mu).
func (p *DevicePool) granted(t0 time.Time) {
	p.leases++
	p.waitNS += int64(time.Since(t0))
}

// Release returns the lease's devices to the pool and wakes eligible
// waiters. Safe to call more than once; only the first call releases.
func (l *Lease) Release() {
	l.once.Do(func() {
		if len(l.Devices) > 0 {
			l.pool.release(l.Devices, l.t0)
		}
	})
}

func (p *DevicePool) release(devs []*simt.Device, t0 time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, devs...)
	p.leasedNow -= len(devs)
	p.busyNS += int64(time.Since(t0)) * int64(len(devs))
	// Grant strictly in FIFO order: stop at the first waiter that does not
	// fit, even if a later (smaller) one would — that ordering is the
	// no-starvation guarantee.
	for len(p.waiters) > 0 && len(p.free) >= p.waiters[0].n {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		w.ch <- p.take(w.n)
	}
}

// PoolStats is the pool's accounting snapshot for /metrics.
type PoolStats struct {
	Size   int
	Leased int
	Leases int64
	BusyNS int64 // device·ns held across all leases
	WaitNS int64 // ns jobs spent waiting for grants
}

// Stats snapshots the pool accounting.
func (p *DevicePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Size: p.size, Leased: p.leasedNow, Leases: p.leases, BusyNS: p.busyNS, WaitNS: p.waitNS}
}
