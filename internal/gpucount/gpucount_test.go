package gpucount

import (
	"errors"
	"math/rand"
	"testing"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/simt"
)

func testDev() *simt.Device {
	cfg := simt.V100()
	cfg.GlobalMemBytes = 1 << 26
	return simt.NewDevice(cfg)
}

func randReads(rng *rand.Rand, n, l int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, l)
		for j := range out[i] {
			out[i][j] = dna.Alphabet[rng.Intn(4)]
		}
	}
	return out
}

// refTable builds the reference with the CPU dbg implementation, keyed the
// same way (canonical packed word).
func refTable(t *testing.T, seqs [][]byte, k int) map[uint64]*dbg.Info {
	t.Helper()
	tab, err := dbg.Count(seqs, dbg.Config{K: k, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[uint64]*dbg.Info{}
	seen := map[uint64]bool{}
	for _, s := range seqs {
		kmer.ForEach(s, k, func(pos int, km kmer.Kmer) {
			canon, _ := km.Canonical(k)
			if seen[canon.W[0]] {
				return
			}
			seen[canon.W[0]] = true
			info, _, ok := tab.Lookup(km)
			if !ok {
				t.Fatalf("reference lookup failed at %d", pos)
			}
			ref[canon.W[0]] = info
		})
	}
	return ref
}

func TestGPUCountMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{5, 17, 21, 31, 32} {
		seqs := randReads(rng, 30, 90)
		got, res, err := Count(testDev(), seqs, k)
		if err != nil {
			t.Fatal(err)
		}
		want := refTable(t, seqs, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d distinct k-mers, want %d", k, len(got), len(want))
		}
		for key, w := range want {
			g := got[key]
			if g == nil {
				t.Fatalf("k=%d: canonical k-mer missing", k)
			}
			if g.Count != w.Count || g.Left != w.Left || g.Right != w.Right {
				t.Fatalf("k=%d: info mismatch: %+v vs %+v", k, g, w)
			}
		}
		if res.TotalWarpInstrs() == 0 || res.Time <= 0 {
			t.Error("kernel accounting missing")
		}
	}
}

func TestGPUCountDeepCoverage(t *testing.T) {
	// Repeated identical reads: counts accumulate, extension evidence too.
	seqs := [][]byte{}
	read := []byte("ACGGTTCAACGGATCCGTAGGATCAAGGTT")
	for i := 0; i < 20; i++ {
		seqs = append(seqs, read)
	}
	got, _, err := Count(testDev(), seqs, 21)
	if err != nil {
		t.Fatal(err)
	}
	for key, info := range got {
		if info.Count != 20 {
			t.Errorf("k-mer %x count %d, want 20", key, info.Count)
		}
	}
}

func TestGPUCountValidation(t *testing.T) {
	if _, _, err := Count(testDev(), nil, 2); err == nil {
		t.Error("k=2 accepted")
	}
	if _, _, err := Count(testDev(), nil, 40); err == nil {
		t.Error("k>32 accepted")
	}
}

func TestGPUCountEmptyAndShort(t *testing.T) {
	got, _, err := Count(testDev(), [][]byte{[]byte("ACGT")}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Error("short read produced k-mers")
	}
}

func BenchmarkGPUCountK21(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	seqs := randReads(rng, 100, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Count(testDev(), seqs, 21); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCountBatchTableFullReturnsError drives countBatch against a 1-slot
// table with distinct k-mers: the old panic("gpucount: table full") path
// must now surface gpuht.ErrTableFull through the kernel error sink.
func TestCountBatchTableFullReturnsError(t *testing.T) {
	d := testDev()
	seq := []byte("ACGTGCAT") // plenty of distinct canonical 4-mers
	k := 4
	seqBase, err := d.Malloc(int64(len(seq) + 8))
	if err != nil {
		t.Fatal(err)
	}
	d.MemcpyHtoD(seqBase, seq)
	slots := 1
	tabBase, err := d.Malloc(int64(slots) * entryBytes)
	if err != nil {
		t.Fatal(err)
	}

	var batchErr error
	_, err = d.Launch(simt.KernelConfig{Name: "tiny", Warps: 1, Sequential: true}, func(w *simt.Warp) {
		clearTable(w, tabBase, slots, 1)
		var mask simt.Mask
		var positions [simt.WarpSize]int
		for lane := 0; lane+k <= len(seq); lane++ {
			mask |= simt.LaneMask(lane)
			positions[lane] = lane
		}
		batchErr = countBatch(w, mask, seq, 0, positions, seqBase, tabBase, uint64(slots), k)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(batchErr, gpuht.ErrTableFull) {
		t.Fatalf("1-slot table returned %v, want gpuht.ErrTableFull", batchErr)
	}
}
