package gpucount

import (
	"errors"
	"fmt"
	"time"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/simt"
)

// BudgetStats is the accounting of one memory-bounded counting run (or,
// via Add, of every budget round of a pipeline run).
type BudgetStats struct {
	// Configured is the caller-requested budget in bytes; Effective is
	// the budget actually applied after OOM degradation shrank it.
	// CountBudget itself only knows Effective (it is handed the shrunk
	// value); the pipeline fills Configured and the OOM fields.
	Configured int64
	Effective  int64
	// Passes is the executed partitioned-pass count; PlannedPasses is
	// the up-front plan at the effective budget. SpillPasses counts the
	// passes beyond the plan at the *configured* budget — the extra work
	// graceful degradation (OOM shrink or spill re-plans) cost.
	Passes        int
	PlannedPasses int
	SpillPasses   int
	// SpillReplans counts in-run re-plans: a pass overflowed its table
	// (hash-range imbalance beyond the 2x headroom) and the whole count
	// restarted with doubled passes.
	SpillReplans int
	// OOMReplans counts chaos DeviceOOM events absorbed by shrinking the
	// effective budget instead of falling back to the host path.
	OOMReplans int
	// FilteredSingletons counts k-mer occurrences the Bloom prefilter
	// rejected (their k-mer provably cannot reach MinCount). Inserted
	// counts distinct k-mers that entered the table; FPInserted is the
	// subset that were filter false positives (exact count < MinCount),
	// i.e. wasted slots — the filter's only failure mode.
	FilteredSingletons int64
	Inserted           int64
	FPInserted         int64
	// TableBytes/BloomBytes are the device footprints of the two
	// counting structures; their sum is ≤ the effective budget.
	TableBytes int64
	BloomBytes int64
	// Kernels and KernelTime account every counting launch (clear,
	// filter, passes), kept separate from the local-assembly kernel list
	// so engine-level reporting is unchanged by budget mode.
	Kernels    int
	KernelTime time.Duration
}

// FPRate returns the filter false-positive rate among inserted k-mers.
func (s BudgetStats) FPRate() float64 {
	if s.Inserted == 0 {
		return 0
	}
	return float64(s.FPInserted) / float64(s.Inserted)
}

// Add accumulates o into s (Configured/Effective keep the most
// constrained round; footprints keep the peak).
func (s *BudgetStats) Add(o BudgetStats) {
	if o.Configured > s.Configured {
		s.Configured = o.Configured
	}
	if s.Effective == 0 || (o.Effective > 0 && o.Effective < s.Effective) {
		s.Effective = o.Effective
	}
	s.Passes += o.Passes
	s.PlannedPasses += o.PlannedPasses
	s.SpillPasses += o.SpillPasses
	s.SpillReplans += o.SpillReplans
	s.OOMReplans += o.OOMReplans
	s.FilteredSingletons += o.FilteredSingletons
	s.Inserted += o.Inserted
	s.FPInserted += o.FPInserted
	if o.TableBytes > s.TableBytes {
		s.TableBytes = o.TableBytes
	}
	if o.BloomBytes > s.BloomBytes {
		s.BloomBytes = o.BloomBytes
	}
	s.Kernels += o.Kernels
	s.KernelTime += o.KernelTime
}

// CountBudget runs memory-bounded k-mer counting on the device: a
// counting-Bloom prefilter pass bounds every k-mer's total count from
// above so occurrences that provably cannot reach MinCount never touch
// the table, then one counting pass per hash-range partition of
// canonical-k-mer space counts its partition into a table sized to the
// budget, and the per-pass tables merge into one exact result. Because
// partitions are disjoint and per-k-mer counts are exact, the merged
// table equals the host dbg.Count table up to the k-mers the filter
// dropped — all of them below MinCount, so after Table.Filter(MinCount)
// the two are identical. Unlike Count, any k ≤ kmer.MaxK is supported
// (multi-word keys).
//
// If a pass overflows its table despite the 2x headroom (extreme
// hash-range imbalance), the run restarts with doubled passes — a spill
// re-plan — rather than failing with ErrTableFull.
func CountBudget(dev *simt.Device, seqs [][]byte, k int, cfg BudgetConfig) (*dbg.Table, BudgetStats, error) {
	var st BudgetStats
	occ := 0
	for _, s := range seqs {
		if len(s) >= k {
			occ += len(s) - k + 1
		}
	}
	plan, err := PlanFor(occ, k, cfg) // validates k and the budget
	if err != nil {
		return nil, st, err
	}
	st.Effective = cfg.MemBudget
	st.PlannedPasses = plan.Passes

	// Stage reads contiguously (8-byte slack for vector gathers).
	total := 0
	offs := make([]int, len(seqs))
	for i, s := range seqs {
		offs[i] = total
		total += len(s)
	}
	seqBase, err := dev.Malloc(int64(total + 8))
	if err != nil {
		return nil, st, err
	}
	for i, s := range seqs {
		dev.MemcpyHtoD(seqBase+simt.Ptr(offs[i]), s)
	}

	words := kmerWords(k)
	eb := entrySize(words)
	var bloomBase simt.Ptr
	if plan.BloomCells > 0 {
		if bloomBase, err = dev.Malloc(int64(plan.BloomCells) * 4); err != nil {
			return nil, st, err
		}
		st.BloomBytes = int64(plan.BloomCells) * 4
	}
	tabBase, err := dev.Malloc(int64(plan.TableSlots) * int64(eb))
	if err != nil {
		return nil, st, err
	}
	st.TableBytes = int64(plan.TableSlots) * int64(eb)

	warps := len(seqs)
	if warps > 4096 {
		warps = 4096
	}
	if warps < 1 {
		warps = 1
	}
	launch := func(name string, sequential bool, fn func(w *simt.Warp)) error {
		res, lerr := dev.Launch(simt.KernelConfig{Name: name, Warps: warps, Sequential: sequential}, fn)
		if lerr != nil {
			return lerr
		}
		st.Kernels++
		st.KernelTime += res.Time
		return nil
	}

	bc := &budgetCounter{
		dev: dev, seqs: seqs, offs: offs, seqBase: seqBase,
		tabBase: tabBase, slots: plan.TableSlots,
		bloomBase: bloomBase, cells: uint64(plan.BloomCells),
		k: k, words: words, eb: eb, warps: warps, minCount: cfg.MinCount,
	}

	// Filter phase: one pass over every occurrence populates the
	// counting-Bloom (shared cells ⇒ sequential launch, as for the table).
	if plan.BloomCells > 0 {
		if err := launch("kmer_bloom_clear", false, func(w *simt.Warp) {
			clearWords(w, bloomBase, plan.BloomCells/2, warps)
		}); err != nil {
			return nil, st, err
		}
		if err := launch(fmt.Sprintf("kmer_bloom_k%d", k), true, bc.bloomKernel); err != nil {
			return nil, st, err
		}
	}

	passes := plan.Passes
	var out map[kmer.Kmer]*dbg.Info
	var rejected int64
	for {
		out, rejected, err = bc.runPasses(passes, launch)
		if err == nil {
			break
		}
		if errors.Is(err, gpuht.ErrTableFull) && passes <= occ {
			passes *= 2
			st.SpillReplans++
			continue
		}
		return nil, st, err
	}
	st.Passes = passes
	st.FilteredSingletons = rejected
	for _, info := range out {
		st.Inserted++
		if cfg.MinCount >= 2 && info.Count < cfg.MinCount {
			st.FPInserted++
		}
	}
	return dbg.NewTable(k, out), st, nil
}

// budgetCounter carries the device layout shared by the budget kernels.
type budgetCounter struct {
	dev       *simt.Device
	seqs      [][]byte
	offs      []int
	seqBase   simt.Ptr
	tabBase   simt.Ptr
	slots     int
	bloomBase simt.Ptr
	cells     uint64
	k         int
	words     int
	eb        int
	warps     int
	minCount  uint32
}

// runPasses executes one counting pass per partition against the shared
// table (cleared between passes) and merges the read-back entries.
// Partitions are disjoint, so merging is plain map union.
func (c *budgetCounter) runPasses(passes int, launch func(string, bool, func(*simt.Warp)) error) (map[kmer.Kmer]*dbg.Info, int64, error) {
	out := make(map[kmer.Kmer]*dbg.Info)
	rejects := make([]uint64, c.warps)
	for pass := 0; pass < passes; pass++ {
		if err := launch("kmer_budget_clear", false, func(w *simt.Warp) {
			clearWords(w, c.tabBase, c.slots*c.eb/8, c.warps)
		}); err != nil {
			return nil, 0, err
		}
		kernErrs := make([]error, c.warps)
		name := fmt.Sprintf("kmer_budget_k%d_p%d.%d", c.k, pass, passes)
		if err := launch(name, true, func(w *simt.Warp) {
			if err := forEachBatch(w, c.seqs, c.offs, c.k, c.warps, func(mask simt.Mask, seq []byte, readOff int, positions [simt.WarpSize]int) error {
				return c.passBatch(w, mask, seq, readOff, positions, pass, passes, &rejects[w.ID])
			}); err != nil {
				kernErrs[w.ID] = err
			}
		}); err != nil {
			return nil, 0, err
		}
		// Scan in warp order so the reported error is deterministic.
		for _, kerr := range kernErrs {
			if kerr != nil {
				return nil, 0, kerr
			}
		}
		c.readBack(out)
	}
	var rejected int64
	for _, r := range rejects {
		rejected += int64(r)
	}
	return out, rejected, nil
}

// forEachBatch maps warps to sequences grid-strided and calls fn once per
// warp-width of k-mer windows — the same work shape as countKernel, with
// lanes on consecutive k-mers so the gathers coalesce.
func forEachBatch(w *simt.Warp, seqs [][]byte, offs []int, k, totalWarps int, fn func(mask simt.Mask, seq []byte, readOff int, positions [simt.WarpSize]int) error) error {
	for si := w.ID; si < len(seqs); si += totalWarps {
		seq := seqs[si]
		nk := len(seq) - k + 1
		if nk <= 0 {
			continue
		}
		for start := 0; start < nk; start += simt.WarpSize {
			var mask simt.Mask
			var positions [simt.WarpSize]int
			for lane := 0; lane < simt.WarpSize && start+lane < nk; lane++ {
				mask |= simt.LaneMask(lane)
				positions[lane] = start + lane
			}
			if err := fn(mask, seq, offs[si], positions); err != nil {
				return err
			}
		}
	}
	return nil
}

// bloomKernel adds every valid canonical k-mer occurrence to both
// counting-Bloom cells. Cell counts bound the true count from above, so
// the insert passes can reject below-MinCount k-mers with no false
// negatives.
func (c *budgetCounter) bloomKernel(w *simt.Warp) {
	one := simt.Splat(1)
	forEachBatch(w, c.seqs, c.offs, c.k, c.warps, func(mask simt.Mask, seq []byte, readOff int, positions [simt.WarpSize]int) error {
		keys, valid, _, _ := canonBatch(w, mask, seq, readOff, positions, c.seqBase, c.k)
		if valid == 0 {
			return nil
		}
		w.ExecN(simt.IInt, valid, 4) // two hashes + two mods
		var a0, a1 simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !valid.Has(lane) {
				continue
			}
			a0[lane] = uint64(c.bloomBase) + keys[lane].HashK(c.k, bloomSeed0)%c.cells*4
			a1[lane] = uint64(c.bloomBase) + keys[lane].HashK(c.k, bloomSeed1)%c.cells*4
		}
		w.AtomicAdd(valid, &a0, &one, 4)
		w.AtomicAdd(valid, &a1, &one, 4)
		return nil
	})
}

// passBatch processes one warp-width of k-mers for one partitioned pass:
// partition filter, Bloom admission, then the same CAS-claim + linear
// probe protocol as countBatch generalized to multi-word keys.
func (c *budgetCounter) passBatch(w *simt.Warp, mask simt.Mask, seq []byte, readOff int, positions [simt.WarpSize]int, pass, passes int, reject *uint64) error {
	keys, valid, lefts, rights := canonBatch(w, mask, seq, readOff, positions, c.seqBase, c.k)
	if valid == 0 {
		return nil
	}

	// Partition filter: each distinct k-mer belongs to exactly one pass.
	if passes > 1 {
		w.Exec(simt.IInt, valid) // partition hash + compare
		for lane := 0; lane < simt.WarpSize; lane++ {
			if valid.Has(lane) && keys[lane].HashK(c.k, partitionSeed)%uint64(passes) != uint64(pass) {
				valid &^= simt.LaneMask(lane)
			}
		}
		if valid == 0 {
			return nil
		}
	}

	// Bloom admission: estimate = min of the two cells; below MinCount
	// the k-mer provably cannot survive the error filter.
	if c.cells > 0 {
		var a0, a1 simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !valid.Has(lane) {
				continue
			}
			a0[lane] = uint64(c.bloomBase) + keys[lane].HashK(c.k, bloomSeed0)%c.cells*4
			a1[lane] = uint64(c.bloomBase) + keys[lane].HashK(c.k, bloomSeed1)%c.cells*4
		}
		c0 := w.LoadGlobal(valid, &a0, 4)
		c1 := w.LoadGlobal(valid, &a1, 4)
		w.Exec(simt.IInt, valid) // min + compare
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !valid.Has(lane) {
				continue
			}
			est := c0[lane]
			if c1[lane] < est {
				est = c1[lane]
			}
			if uint32(est) < c.minCount {
				valid &^= simt.LaneMask(lane)
				*reject++
			}
		}
		if valid == 0 {
			return nil
		}
	}

	// Hash and insert into the shared per-pass table.
	w.ExecN(simt.IInt, valid, 6)
	var slotsV simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if valid.Has(lane) {
			slotsV[lane] = keys[lane].HashK(c.k, hashSeed)
		}
	}
	slots := uint64(c.slots)
	ebase := uint64(c.eb)
	offL := uint64(8 + 8*c.words)
	offR := offL + 16
	pending := valid
	iters := 0
	cmp := simt.Splat(stateEmpty)
	claimVal := simt.Splat(stateFull)
	one := simt.Splat(1)
	var entries simt.Vec
	for guard := 0; pending != 0; guard++ {
		if guard > c.slots {
			w.ExecN(simt.ICtrl, mask, iters)
			return fmt.Errorf("gpucount: pass %d/%d: %w", pass, passes, gpuht.ErrTableFull)
		}
		var stateAddrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if pending.Has(lane) {
				entries[lane] = uint64(c.tabBase) + slotsV[lane]%slots*ebase
				stateAddrs[lane] = entries[lane] + offState
			}
		}
		observed := w.AtomicCAS(pending, &stateAddrs, &cmp, &claimVal, 4)

		var claimed, occupied simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !pending.Has(lane) {
				continue
			}
			if observed[lane] == stateEmpty {
				claimed |= simt.LaneMask(lane)
			} else {
				occupied |= simt.LaneMask(lane)
			}
		}
		// Winners write their key, one store per word.
		if claimed != 0 {
			var keyAddrs, keyVals simt.Vec
			for wd := 0; wd < c.words; wd++ {
				for lane := 0; lane < simt.WarpSize; lane++ {
					if claimed.Has(lane) {
						keyAddrs[lane] = entries[lane] + offKey + uint64(8*wd)
						keyVals[lane] = keys[lane].W[wd]
					}
				}
				w.StoreGlobal(claimed, &keyAddrs, 8, &keyVals)
			}
			w.SyncWarp(pending)
		}
		// Occupied: compare all stored key words.
		matched := claimed
		if occupied != 0 {
			eq := occupied
			var keyAddrs simt.Vec
			for wd := 0; wd < c.words; wd++ {
				for lane := 0; lane < simt.WarpSize; lane++ {
					if occupied.Has(lane) {
						keyAddrs[lane] = entries[lane] + offKey + uint64(8*wd)
					}
				}
				stored := w.LoadGlobal(occupied, &keyAddrs, 8)
				w.Exec(simt.IInt, occupied)
				for lane := 0; lane < simt.WarpSize; lane++ {
					if occupied.Has(lane) && stored[lane] != keys[lane].W[wd] {
						eq &^= simt.LaneMask(lane)
					}
				}
			}
			matched |= eq
		}
		if matched != 0 {
			var countAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if matched.Has(lane) {
					countAddrs[lane] = entries[lane] + offCount
				}
			}
			w.AtomicAdd(matched, &countAddrs, &one, 4)

			var lm, rm simt.Mask
			var la, ra simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if !matched.Has(lane) {
					continue
				}
				if lefts[lane] >= 0 {
					lm |= simt.LaneMask(lane)
					la[lane] = entries[lane] + offL + uint64(4*lefts[lane])
				}
				if rights[lane] >= 0 {
					rm |= simt.LaneMask(lane)
					ra[lane] = entries[lane] + offR + uint64(4*rights[lane])
				}
			}
			if lm != 0 {
				w.AtomicAdd(lm, &la, &one, 4)
			}
			if rm != 0 {
				w.AtomicAdd(rm, &ra, &one, 4)
			}
		}
		pending &^= matched
		if pending != 0 {
			w.Exec(simt.IInt, pending)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if pending.Has(lane) {
					slotsV[lane]++
				}
			}
		}
		iters++
	}
	w.ExecN(simt.ICtrl, mask, iters)
	return nil
}

// readBack merges the table's full entries into out.
func (c *budgetCounter) readBack(out map[kmer.Kmer]*dbg.Info) {
	offL := simt.Ptr(8 + 8*c.words)
	for s := 0; s < c.slots; s++ {
		e := c.tabBase + simt.Ptr(s*c.eb)
		if c.dev.ReadU32(e+offState) != stateFull {
			continue
		}
		var km kmer.Kmer
		for wd := 0; wd < c.words; wd++ {
			km.W[wd] = c.dev.ReadU64(e + offKey + simt.Ptr(8*wd))
		}
		info := &dbg.Info{Count: c.dev.ReadU32(e + offCount)}
		for b := 0; b < 4; b++ {
			info.Left[b] = c.dev.ReadU32(e + offL + simt.Ptr(4*b))
			info.Right[b] = c.dev.ReadU32(e + offL + 16 + simt.Ptr(4*b))
		}
		out[km] = info
	}
}
