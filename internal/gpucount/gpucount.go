// Package gpucount prototypes the paper's stated future work ("we are
// moving towards offloading other modules of MetaHipMer to GPUs"): the
// k-mer analysis stage on the simt device. A device-wide hash table counts
// canonical k-mers and their left/right extension evidence with the same
// CAS-claim + linear-probing protocol the local-assembly tables use, and
// warps map lanes to consecutive k-mers so the sequence loads coalesce.
//
// Unlike local assembly's warp-private tables, this table is shared by
// every warp in the launch — the "distributed data structures" challenge
// the conclusion names. The simulator executes such kernels sequentially
// (KernelConfig.Sequential) because its parallel mode requires
// warp-disjoint writes; the instruction and transaction accounting is
// unaffected.
package gpucount

import (
	"fmt"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/murmur"
	"mhm2sim/internal/simt"
)

// Entry layout (48 bytes):
//
//	offset 0  u32 state — empty (0) or full (2)
//	offset 4  u32 count
//	offset 8  u64 key   — canonical k-mer, packed (kmer.Kmer word 0; k ≤ 32)
//	offset 16 4×u32 left
//	offset 32 4×u32 right
const (
	entryBytes = 48

	offState = 0
	offCount = 4
	offKey   = 8
	offLeft  = 16
	offRight = 32

	stateEmpty = 0
	stateFull  = 2

	hashSeed = 0xc0117e8
)

// MaxK is the largest supported k (one packed word).
const MaxK = 32

// Count runs GPU k-mer counting over the sequences and returns the counted
// table (read back to the host) plus the kernel result. The returned map
// is keyed by the canonical k-mer's packed word, with values equivalent to
// dbg's per-k-mer info.
func Count(dev *simt.Device, seqs [][]byte, k int) (map[uint64]*dbg.Info, simt.KernelResult, error) {
	if k < 4 || k > MaxK {
		return nil, simt.KernelResult{}, fmt.Errorf("gpucount: k %d outside [4,%d]", k, MaxK)
	}

	// Stage reads contiguously (8-byte slack for vector gathers).
	total := 0
	offs := make([]int, len(seqs))
	for i, s := range seqs {
		offs[i] = total
		total += len(s)
	}
	seqBase, err := dev.Malloc(int64(total + 8))
	if err != nil {
		return nil, simt.KernelResult{}, err
	}
	for i, s := range seqs {
		dev.MemcpyHtoD(seqBase+simt.Ptr(offs[i]), s)
	}

	// Table capacity: 2x the worst-case k-mer count (load factor ≤ 0.5).
	maxKmers := 0
	for _, s := range seqs {
		if len(s) >= k {
			maxKmers += len(s) - k + 1
		}
	}
	slots := 2*maxKmers + 1
	// When the full-size table does not fit in device memory, take every
	// slot that does fit and let insertion surface gpuht.ErrTableFull once
	// the table genuinely fills — the caller-visible signal that this input
	// needs a memory budget (CountBudget).
	if free := dev.Cfg.GlobalMemBytes - dev.InUse(); int64(slots)*entryBytes > free {
		slots = int(free / entryBytes)
		if slots < 1 {
			return nil, simt.KernelResult{}, fmt.Errorf("gpucount: %w (no device memory for any table slot)", gpuht.ErrTableFull)
		}
	}
	tabBase, err := dev.Malloc(int64(slots) * entryBytes)
	if err != nil {
		return nil, simt.KernelResult{}, err
	}

	// Work items: one warp per sequence, grid-strided.
	warps := len(seqs)
	if warps > 4096 {
		warps = 4096
	}
	if warps < 1 {
		warps = 1
	}
	// The clear is its own launch: inside the counting kernel a later
	// warp's clear would wipe earlier warps' inserts.
	clearRes, err := dev.Launch(simt.KernelConfig{
		Name:  "kmer_count_clear",
		Warps: warps,
	}, func(w *simt.Warp) {
		clearTable(w, tabBase, slots, warps)
	})
	if err != nil {
		return nil, simt.KernelResult{}, err
	}

	kernErrs := make([]error, warps)
	kern := countKernel(seqs, offs, seqBase, tabBase, uint64(slots), k, warps, kernErrs)
	res, err := dev.Launch(simt.KernelConfig{
		Name:       fmt.Sprintf("kmer_count_k%d", k),
		Warps:      warps,
		Sequential: true, // shared table: see the package comment
	}, kern)
	if err != nil {
		return nil, simt.KernelResult{}, err
	}
	// Scan in warp order so the reported error is deterministic.
	for _, kerr := range kernErrs {
		if kerr != nil {
			return nil, simt.KernelResult{}, kerr
		}
	}
	res.Stats.Add(&clearRes.Stats)
	res.Time += clearRes.Time

	// Read the table back.
	out := make(map[uint64]*dbg.Info)
	for s := 0; s < slots; s++ {
		e := tabBase + simt.Ptr(s*entryBytes)
		if dev.ReadU32(e+offState) != stateFull {
			continue
		}
		info := &dbg.Info{Count: dev.ReadU32(e + offCount)}
		for b := 0; b < 4; b++ {
			info.Left[b] = dev.ReadU32(e + offLeft + simt.Ptr(4*b))
			info.Right[b] = dev.ReadU32(e + offRight + simt.Ptr(4*b))
		}
		out[dev.ReadU64(e+offKey)] = info
	}
	return out, res, nil
}

// clearTable zeroes the table grid-cooperatively (state 0 = empty).
func clearTable(w *simt.Warp, base simt.Ptr, slots, totalWarps int) {
	clearWords(w, base, slots*entryBytes/8, totalWarps)
}

// clearWords zeroes a words×8-byte device region grid-cooperatively.
func clearWords(w *simt.Warp, base simt.Ptr, words, totalWarps int) {
	zero := simt.Splat(0)
	for first := w.ID * simt.WarpSize; first < words; first += totalWarps * simt.WarpSize {
		var mask simt.Mask
		var addrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			word := first + lane
			if word >= words {
				break
			}
			mask |= simt.LaneMask(lane)
			addrs[lane] = uint64(base) + uint64(word)*8
		}
		if mask == 0 {
			continue
		}
		w.StoreGlobal(mask, &addrs, 8, &zero)
		w.Exec(simt.ICtrl, mask)
	}
}

// countKernel maps warps to sequences grid-strided; within a sequence,
// lanes take consecutive k-mers (coalesced gathers, as in the v2
// local-assembly kernel). Each warp records its first error in errs[w.ID]
// (a per-warp slot, so the sink is race-free under parallel execution) and
// stops its own work.
func countKernel(seqs [][]byte, offs []int, seqBase, tabBase simt.Ptr, slots uint64, k, totalWarps int, errs []error) func(w *simt.Warp) {
	return func(w *simt.Warp) {
		for si := w.ID; si < len(seqs); si += totalWarps {
			seq := seqs[si]
			nk := len(seq) - k + 1
			if nk <= 0 {
				continue
			}
			for start := 0; start < nk; start += simt.WarpSize {
				var mask simt.Mask
				var positions [simt.WarpSize]int
				for lane := 0; lane < simt.WarpSize && start+lane < nk; lane++ {
					mask |= simt.LaneMask(lane)
					positions[lane] = start + lane
				}
				if err := countBatch(w, mask, seq, offs[si], positions, seqBase, tabBase, slots, k); err != nil {
					errs[w.ID] = err
					return
				}
			}
		}
	}
}

// canonBatch is the shared prologue of every counting kernel: it gathers
// one warp-width of k-mer windows from a staged read with 8-byte vector
// loads, gathers the neighbouring bases, packs and canonicalizes each
// lane's window (skipping windows with ambiguous bases), and derives the
// extension codes oriented to the canonical strand. Keys are full packed
// k-mers so callers handle any k ≤ kmer.MaxK; the single-word fast path
// (Count) reads keys[lane].W[0].
func canonBatch(w *simt.Warp, mask simt.Mask, seq []byte, readOff int, positions [simt.WarpSize]int, seqBase simt.Ptr, k int) (keys [simt.WarpSize]kmer.Kmer, valid simt.Mask, lefts, rights [simt.WarpSize]int) {
	// Gather the k-mer bytes: ceil((k+1)/8)+1 vector loads cover the k-mer
	// plus its neighbours for extension evidence.
	nblk := (k + 7) / 8
	var words [simt.WarpSize][kmer.MaxK / 8]uint64
	for b := 0; b < nblk; b++ {
		var addrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			addrs[lane] = uint64(seqBase) + uint64(readOff+positions[lane]+8*b)
		}
		loaded := w.LoadGlobal(mask, &addrs, 8)
		for lane := 0; lane < simt.WarpSize; lane++ {
			words[lane][b] = loaded[lane]
		}
	}
	// Neighbour bases (left of the k-mer, right of it) with bounds checks.
	var leftMask, rightMask simt.Mask
	var leftAddrs, rightAddrs simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		if positions[lane] > 0 {
			leftMask |= simt.LaneMask(lane)
			leftAddrs[lane] = uint64(seqBase) + uint64(readOff+positions[lane]-1)
		}
		if positions[lane]+k < len(seq) {
			rightMask |= simt.LaneMask(lane)
			rightAddrs[lane] = uint64(seqBase) + uint64(readOff+positions[lane]+k)
		}
	}
	var leftBytes, rightBytes simt.Vec
	if leftMask != 0 {
		leftBytes = w.LoadGlobal(leftMask, &leftAddrs, 1)
	}
	if rightMask != 0 {
		rightBytes = w.LoadGlobal(rightMask, &rightAddrs, 1)
	}

	// Per lane: pack, canonicalize (ACGT only), derive oriented exts.
	w.ExecN(simt.IInt, mask, 3*nblk+6) // pack + rc + compare arithmetic
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		var buf [kmer.MaxK]byte // k ≤ kmer.MaxK, so no per-lane heap allocation
		okAll := true
		for i := 0; i < k; i++ {
			b := byte(words[lane][i/8] >> uint(8*(i%8)))
			if !dna.IsACGT(b) {
				okAll = false
				break
			}
			buf[i] = b
		}
		if !okAll {
			continue
		}
		km, _ := kmer.FromBytes(buf[:k], k)
		canon, isSelf := km.Canonical(k)
		left, right := -1, -1
		if leftMask.Has(lane) {
			if c, ok := dna.Code(byte(leftBytes[lane])); ok {
				left = int(c)
			}
		}
		if rightMask.Has(lane) {
			if c, ok := dna.Code(byte(rightBytes[lane])); ok {
				right = int(c)
			}
		}
		if !isSelf {
			left, right = comp(right), comp(left)
		}
		valid |= simt.LaneMask(lane)
		keys[lane] = canon
		lefts[lane], rights[lane] = left, right
	}
	return keys, valid, lefts, rights
}

// countBatch processes one warp-width of k-mers from a single read. It
// returns gpuht.ErrTableFull if the shared table has no space left.
func countBatch(w *simt.Warp, mask simt.Mask, seq []byte, readOff int, positions [simt.WarpSize]int, seqBase, tabBase simt.Ptr, slots uint64, k int) error {
	canon, valid, lefts, rights := canonBatch(w, mask, seq, readOff, positions, seqBase, k)
	if valid == 0 {
		return nil
	}
	var keys simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if valid.Has(lane) {
			keys[lane] = canon[lane].W[0]
		}
	}

	// Hash and insert into the shared table.
	w.ExecN(simt.IInt, valid, 6)
	var slotsV simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if valid.Has(lane) {
			slotsV[lane] = murmur.Hash64Word(keys[lane], uint64(k), hashSeed)
		}
	}
	// Loop bookkeeping under the constant batch mask batches into one ExecN
	// flushed at both exits (bit-identical totals).
	pending := valid
	iters := 0
	cmp := simt.Splat(stateEmpty)
	claimVal := simt.Splat(stateFull)
	one := simt.Splat(1)
	for guard := 0; pending != 0; guard++ {
		if guard > int(slots) {
			w.ExecN(simt.ICtrl, mask, iters)
			return fmt.Errorf("gpucount: %w", gpuht.ErrTableFull)
		}
		var stateAddrs, entries simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if pending.Has(lane) {
				entries[lane] = uint64(tabBase) + (slotsV[lane]%slots)*entryBytes
				stateAddrs[lane] = entries[lane] + offState
			}
		}
		observed := w.AtomicCAS(pending, &stateAddrs, &cmp, &claimVal, 4)

		var claimed, occupied simt.Mask
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !pending.Has(lane) {
				continue
			}
			if observed[lane] == stateEmpty {
				claimed |= simt.LaneMask(lane)
			} else {
				occupied |= simt.LaneMask(lane)
			}
		}
		// Winners write their key.
		if claimed != 0 {
			var keyAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				keyAddrs[lane] = entries[lane] + offKey
			}
			w.StoreGlobal(claimed, &keyAddrs, 8, &keys)
			w.SyncWarp(pending)
		}
		// Occupied: compare stored key.
		matched := claimed
		if occupied != 0 {
			var keyAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				keyAddrs[lane] = entries[lane] + offKey
			}
			stored := w.LoadGlobal(occupied, &keyAddrs, 8)
			w.Exec(simt.IInt, occupied)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if occupied.Has(lane) && stored[lane] == keys[lane] {
					matched |= simt.LaneMask(lane)
				}
			}
		}
		if matched != 0 {
			var countAddrs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				countAddrs[lane] = entries[lane] + offCount
			}
			w.AtomicAdd(matched, &countAddrs, &one, 4)

			var lm, rm simt.Mask
			var la, ra simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if !matched.Has(lane) {
					continue
				}
				if lefts[lane] >= 0 {
					lm |= simt.LaneMask(lane)
					la[lane] = entries[lane] + offLeft + uint64(4*lefts[lane])
				}
				if rights[lane] >= 0 {
					rm |= simt.LaneMask(lane)
					ra[lane] = entries[lane] + offRight + uint64(4*rights[lane])
				}
			}
			if lm != 0 {
				w.AtomicAdd(lm, &la, &one, 4)
			}
			if rm != 0 {
				w.AtomicAdd(rm, &ra, &one, 4)
			}
		}
		pending &^= matched
		if pending != 0 {
			w.Exec(simt.IInt, pending)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if pending.Has(lane) {
					slotsV[lane]++
				}
			}
		}
		iters++
	}
	w.ExecN(simt.ICtrl, mask, iters)
	return nil
}

func comp(c int) int {
	if c < 0 {
		return -1
	}
	return c ^ 3
}
