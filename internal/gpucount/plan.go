package gpucount

import (
	"fmt"

	"mhm2sim/internal/kmer"
)

// Memory-bounded counting (the ROADMAP "Bloom prefilter + multi-pass"
// item): instead of sizing the device hash table to the worst-case k-mer
// count, CountBudget fits its counting structures — a counting-Bloom
// prefilter plus one hash table reused across passes — inside a caller
// byte budget, and partitions canonical-k-mer space by hash range into as
// many passes as the budget requires. The plan is chosen up front from
// nothing but the budget, k, and the worst-case occurrence count, so the
// same input and budget always produce the same pass schedule (and, since
// per-k-mer counts are exact, the same merged table).

// MinMemBudget is the smallest accepted memory budget (64 KiB): enough
// for a minimal filter plus a few hundred table slots. Below this the
// plan degenerates to one pass per handful of k-mers and flag validation
// rejects the budget outright.
const MinMemBudget = 1 << 16

const (
	// partitionSeed seeds the canonical-hash partitioner that assigns
	// each distinct k-mer to exactly one counting pass. It is deliberately
	// distinct from hashSeed (the probe hash) and the Bloom seeds so the
	// four hash streams are independent.
	partitionSeed = 0x9e3779b97f4a7c15
	// bloomSeed0/bloomSeed1 seed the two counting-Bloom hash functions.
	bloomSeed0 = 0xb100f11e
	bloomSeed1 = 0x5eedcafe

	// minBloomCells floors the filter size so tiny inputs still get a
	// filter with a measurable (not catastrophic) false-positive rate.
	minBloomCells = 1024
)

// kmerWords returns the packed 64-bit words covering k bases.
func kmerWords(k int) int { return (k + 31) / 32 }

// entrySize returns the table entry footprint for a key of the given
// word width: u32 state + u32 count + words×u64 key + 4×u32 left +
// 4×u32 right. For one-word keys this is the 48-byte layout Count uses.
func entrySize(words int) int { return 40 + 8*words }

// BudgetConfig parameterizes memory-bounded counting.
type BudgetConfig struct {
	// MemBudget bounds the bytes CountBudget holds on the device for its
	// counting structures (Bloom filter + hash table), ≥ MinMemBudget.
	MemBudget int64
	// MinCount is the admission threshold of the counting-Bloom
	// prefilter: k-mers whose filter estimate is below it never enter the
	// table. Values < 2 disable the filter (a threshold of 1 can drop
	// nothing, so the pre-pass would be pure overhead).
	MinCount uint32
	// Passes overrides the planned pass count when > 0 (tests use it to
	// exercise the spill re-plan path deterministically).
	Passes int
}

// Plan is the up-front execution plan for one CountBudget call.
type Plan struct {
	// Passes is the number of hash-range partitions of canonical-k-mer
	// space; each pass counts exactly one partition into the table.
	Passes int
	// TableSlots is the hash-table capacity, reused (cleared) per pass.
	TableSlots int
	// BloomCells is the u32 cell count of the counting-Bloom filter
	// (0 = filter disabled because MinCount < 2).
	BloomCells int
}

// PlanFor computes the pass plan for a worst-case occurrence count occ at
// k-mer length k. The plan depends only on its arguments — never on the
// sequence content — which is what makes budget runs deterministic.
func PlanFor(occ, k int, cfg BudgetConfig) (Plan, error) {
	if k < 4 || k > kmer.MaxK {
		return Plan{}, fmt.Errorf("gpucount: k %d outside [4,%d]", k, kmer.MaxK)
	}
	if cfg.MemBudget < MinMemBudget {
		return Plan{}, fmt.Errorf("gpucount: memory budget %d below minimum %d", cfg.MemBudget, MinMemBudget)
	}
	if occ < 1 {
		occ = 1
	}
	budget := cfg.MemBudget
	var cells int
	if cfg.MinCount >= 2 {
		// Filter sizing: two cells per worst-case occurrence keeps the
		// per-hash load ≤ 0.5, capped at a quarter of the budget so the
		// table always keeps the lion's share.
		bloomBytes := budget / 4
		if need := int64(occ) * 8; bloomBytes > need {
			bloomBytes = need
		}
		cells = int(bloomBytes / 4)
		if cells < minBloomCells {
			cells = minBloomCells
		}
		cells += cells & 1 // even cell count keeps the region 8-byte aligned
		budget -= int64(cells) * 4
	}
	eb := int64(entrySize(kmerWords(k)))
	maxSlots := budget / eb
	perPass := (maxSlots - 1) / 2 // load factor ≤ 0.5, as in Count
	if perPass < 1 {
		return Plan{}, fmt.Errorf("gpucount: memory budget %d leaves no room for a %d-byte table slot beside the filter", cfg.MemBudget, eb)
	}
	passes := cfg.Passes
	if passes <= 0 {
		passes = int((int64(occ) + perPass - 1) / perPass)
	}
	if passes < 1 {
		passes = 1
	}
	per := (occ + passes - 1) / passes
	slots := int64(2*per + 1)
	if slots > maxSlots {
		slots = maxSlots
	}
	return Plan{Passes: passes, TableSlots: int(slots), BloomCells: cells}, nil
}

// PlanPasses returns just the planned pass count — callers that compare a
// run's executed passes against the unconstrained-budget plan (to report
// spill passes) use this without building the full plan.
func PlanPasses(occ, k int, cfg BudgetConfig) (int, error) {
	p, err := PlanFor(occ, k, cfg)
	if err != nil {
		return 0, err
	}
	return p.Passes, nil
}
