package gpucount

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/simt"
)

// coveredReads returns reads where every k-mer is seen at least twice
// (each unique read appears copies times), plus optional singleton reads
// whose k-mers are (almost all) seen once — bloom-filter fodder.
func coveredReads(rng *rand.Rand, unique, copies, singles, l int) [][]byte {
	base := randReads(rng, unique, l)
	out := make([][]byte, 0, unique*copies+singles)
	for c := 0; c < copies; c++ {
		out = append(out, base...)
	}
	out = append(out, randReads(rng, singles, l)...)
	return out
}

func hostFiltered(t *testing.T, seqs [][]byte, k int, minCount uint32) *dbg.Table {
	t.Helper()
	tab, err := dbg.Count(seqs, dbg.Config{K: k, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	tab.Filter(minCount)
	return tab
}

// tablesEqual compares two tables over every k-mer window of seqs plus
// total distinct size — together that is full equality.
func tablesEqual(t *testing.T, got, want *dbg.Table, seqs [][]byte, k int) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("k=%d: %d distinct k-mers, want %d", k, got.Len(), want.Len())
	}
	for _, s := range seqs {
		kmer.ForEach(s, k, func(pos int, km kmer.Kmer) {
			gi, _, gok := got.Lookup(km)
			wi, _, wok := want.Lookup(km)
			if gok != wok {
				t.Fatalf("k=%d pos %d: presence mismatch (got %v, want %v)", k, pos, gok, wok)
			}
			if gok && *gi != *wi {
				t.Fatalf("k=%d pos %d: info mismatch: %+v vs %+v", k, pos, *gi, *wi)
			}
		})
	}
}

func TestPlanFor(t *testing.T) {
	for _, tc := range []struct {
		occ, k int
		budget int64
	}{
		{100, 21, MinMemBudget},
		{50_000, 21, 1 << 17},
		{50_000, 55, 1 << 17},
		{1_000_000, 33, 1 << 20},
		{0, 21, MinMemBudget},
	} {
		plan, err := PlanFor(tc.occ, tc.k, BudgetConfig{MemBudget: tc.budget, MinCount: 2})
		if err != nil {
			t.Fatalf("PlanFor(%+v): %v", tc, err)
		}
		if plan.Passes < 1 || plan.TableSlots < 3 {
			t.Fatalf("degenerate plan %+v for %+v", plan, tc)
		}
		eb := int64(entrySize(kmerWords(tc.k)))
		footprint := int64(plan.TableSlots)*eb + int64(plan.BloomCells)*4
		if footprint > tc.budget {
			t.Fatalf("plan %+v footprint %d exceeds budget %d", plan, footprint, tc.budget)
		}
		if plan.BloomCells == 0 || plan.BloomCells%2 != 0 {
			t.Fatalf("plan %+v: want an even, nonzero filter size", plan)
		}
		// Enough pass capacity for the worst case at load factor ≤ 1.
		if int64(plan.Passes)*int64(plan.TableSlots) < int64(tc.occ) {
			t.Fatalf("plan %+v cannot hold %d occurrences", plan, tc.occ)
		}
	}
	// MinCount < 2 disables the filter.
	plan, err := PlanFor(1000, 21, BudgetConfig{MemBudget: MinMemBudget, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BloomCells != 0 {
		t.Fatalf("MinCount=1 still allocated %d filter cells", plan.BloomCells)
	}
	if _, err := PlanFor(100, 21, BudgetConfig{MemBudget: MinMemBudget - 1, MinCount: 2}); err == nil {
		t.Error("sub-minimum budget accepted")
	}
	if _, err := PlanFor(100, 2, BudgetConfig{MemBudget: MinMemBudget, MinCount: 2}); err == nil {
		t.Error("k=2 accepted")
	}
	if _, err := PlanFor(100, kmer.MaxK+1, BudgetConfig{MemBudget: MinMemBudget, MinCount: 2}); err == nil {
		t.Error("k>MaxK accepted")
	}
}

// TestCountBudgetMatchesCPU is the central equivalence property: for any
// k (including multi-word k > 32, which Count cannot handle), the merged
// multi-pass table equals the host table after the error filter — the
// Bloom prefilter has no false negatives and partition counts are exact.
func TestCountBudgetMatchesCPU(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{21, 32, 33, 55} {
		seqs := coveredReads(rng, 25, 2, 10, 90)
		tab, st, err := CountBudget(testDev(), seqs, k, BudgetConfig{MemBudget: MinMemBudget, MinCount: 2})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		tab.Filter(2)
		tablesEqual(t, tab, hostFiltered(t, seqs, k, 2), seqs, k)
		if st.Passes < 2 {
			t.Errorf("k=%d: %d passes at the minimum budget; want a genuine multi-pass plan", k, st.Passes)
		}
		if st.FilteredSingletons == 0 {
			t.Errorf("k=%d: singleton reads present but the filter rejected nothing", k)
		}
		if st.Kernels == 0 || st.KernelTime <= 0 {
			t.Errorf("k=%d: kernel accounting missing: %+v", k, st)
		}
		if r := st.FPRate(); r < 0 || r > 1 {
			t.Errorf("k=%d: fp rate %v outside [0,1]", k, r)
		}
	}
}

// TestCountBudgetMinCount1 disables the filter: the table must match the
// unfiltered host count exactly, singletons included.
func TestCountBudgetMinCount1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seqs := randReads(rng, 40, 80)
	tab, st, err := CountBudget(testDev(), seqs, 21, BudgetConfig{MemBudget: MinMemBudget, MinCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, tab, hostFiltered(t, seqs, 21, 1), seqs, 21)
	if st.FilteredSingletons != 0 || st.BloomBytes != 0 {
		t.Fatalf("MinCount=1 run still filtered: %+v", st)
	}
}

// TestCountBudgetDeterministic: same input + budget → identical stats and
// tables across runs (fresh devices), the property the pipeline's
// bit-identical-contigs guarantee rests on.
func TestCountBudgetDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seqs := coveredReads(rng, 20, 2, 8, 100)
	cfg := BudgetConfig{MemBudget: MinMemBudget, MinCount: 2}
	tab1, st1, err := CountBudget(testDev(), seqs, 33, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab2, st2, err := CountBudget(testDev(), seqs, 33, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
	}
	if tab1.Len() != tab2.Len() {
		t.Fatalf("tables differ across identical runs: %d vs %d", tab1.Len(), tab2.Len())
	}
	tablesEqual(t, tab1, tab2, seqs, 33)
}

// TestBudgetCompletesWhereUnboundedFails is the acceptance scenario: on a
// device whose memory holds under a quarter of the input's distinct
// k-mers, unbounded counting fails with ErrTableFull while the budget
// path assembles the same table to completion.
func TestBudgetCompletesWhereUnboundedFails(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	seqs := coveredReads(rng, 100, 2, 0, 150)
	k := 21

	small := simt.V100()
	small.GlobalMemBytes = 1 << 17
	if _, _, err := Count(simt.NewDevice(small), seqs, k); !errors.Is(err, gpuht.ErrTableFull) {
		t.Fatalf("unbounded count on the small device returned %v, want ErrTableFull", err)
	}

	tab, st, err := CountBudget(simt.NewDevice(small), seqs, k, BudgetConfig{MemBudget: MinMemBudget, MinCount: 2})
	if err != nil {
		t.Fatalf("budget count failed on the same device: %v", err)
	}
	tab.Filter(2)
	tablesEqual(t, tab, hostFiltered(t, seqs, k, 2), seqs, k)
	if st.Passes < 4 {
		t.Errorf("only %d passes for a ≥4x-oversized input", st.Passes)
	}
}

// TestCountBudgetSpillReplan forces a 1-pass plan onto an input that
// needs several: the overflowing pass must trigger doubling re-plans (not
// a hard ErrTableFull) until the partitions fit, and the result must
// still be exact.
func TestCountBudgetSpillReplan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seqs := coveredReads(rng, 40, 2, 0, 120)
	cfg := BudgetConfig{MemBudget: MinMemBudget, MinCount: 2, Passes: 1}
	tab, st, err := CountBudget(testDev(), seqs, 21, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillReplans < 2 {
		t.Fatalf("forced 1-pass plan re-planned %d times; want ≥ 2 doublings", st.SpillReplans)
	}
	if st.Passes != 1<<st.SpillReplans {
		t.Fatalf("passes %d after %d doublings of 1", st.Passes, st.SpillReplans)
	}
	tab.Filter(2)
	tablesEqual(t, tab, hostFiltered(t, seqs, 21, 2), seqs, 21)
}

func BenchmarkBloomPrefilter(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	seqs := coveredReads(rng, 50, 2, 20, 150)
	cfg := BudgetConfig{MemBudget: 1 << 20, MinCount: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CountBudget(testDev(), seqs, 21, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiPassCount(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	seqs := coveredReads(rng, 50, 2, 20, 150)
	cfg := BudgetConfig{MemBudget: MinMemBudget, MinCount: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CountBudget(testDev(), seqs, 21, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
