package quality

import "fmt"

// FilterImpact quantifies what memory-bounded counting's Bloom prefilter
// cost an assembly. The prefilter has no false negatives (every k-mer at
// or above the count threshold survives), but its false positives admit
// sub-threshold k-mers into the table; the delta between a budget run and
// the unbounded baseline of the same input is therefore the filter's
// (and the pass partitioning's) end-to-end contiguity impact.
type FilterImpact struct {
	// Baseline is the unbounded run's contiguity; Filtered the budget
	// run's.
	Baseline, Filtered ContigStats
	// N50Delta / NG50Delta are the relative changes
	// (filtered − baseline) / baseline — negative when the filter cost
	// contiguity, zero when the baseline statistic is zero.
	N50Delta  float64
	NG50Delta float64
}

// MeasureFilterImpact compares a budget-filtered assembly against the
// unbounded baseline of the same input. genomeSize may be 0 (no NG50).
func MeasureFilterImpact(baseline, filtered [][]byte, genomeSize int64) FilterImpact {
	fi := FilterImpact{
		Baseline: Stats(baseline, genomeSize),
		Filtered: Stats(filtered, genomeSize),
	}
	fi.N50Delta = relDelta(fi.Baseline.N50, fi.Filtered.N50)
	fi.NG50Delta = relDelta(fi.Baseline.NG50, fi.Filtered.NG50)
	return fi
}

// Within reports whether both contiguity deltas stay inside the tolerance
// (e.g. 0.01 for the CI gate's "NG50 within 1%").
func (fi FilterImpact) Within(tol float64) bool {
	return absFloat(fi.N50Delta) <= tol && absFloat(fi.NG50Delta) <= tol
}

// String renders the comparison as an aligned summary.
func (fi FilterImpact) String() string {
	return fmt.Sprintf(
		"filter impact: N50 %d → %d (%+.2f%%), NG50 %d → %d (%+.2f%%), contigs %d → %d\n",
		fi.Baseline.N50, fi.Filtered.N50, 100*fi.N50Delta,
		fi.Baseline.NG50, fi.Filtered.NG50, 100*fi.NG50Delta,
		fi.Baseline.Count, fi.Filtered.Count)
}

// relDelta is (filtered − baseline) / baseline, or 0 with no baseline.
func relDelta(baseline, filtered int) float64 {
	if baseline == 0 {
		return 0
	}
	return float64(filtered-baseline) / float64(baseline)
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
