package quality

import (
	"bytes"
	"math"
	"testing"
)

func TestFilterImpactIdentical(t *testing.T) {
	seqs := [][]byte{
		bytes.Repeat([]byte("A"), 700),
		bytes.Repeat([]byte("C"), 300),
	}
	fi := MeasureFilterImpact(seqs, seqs, 900)
	if fi.N50Delta != 0 || fi.NG50Delta != 0 {
		t.Errorf("identical assemblies have nonzero deltas: %+v", fi)
	}
	if !fi.Within(0) {
		t.Error("identical assemblies fail a zero-tolerance gate")
	}
	if fi.Baseline.NG50 == 0 {
		t.Error("NG50 not computed despite genome size")
	}
}

func TestFilterImpactDegraded(t *testing.T) {
	baseline := [][]byte{bytes.Repeat([]byte("A"), 1000)}
	// The filtered run split the contig: N50 drops 1000 → 600.
	filtered := [][]byte{
		bytes.Repeat([]byte("A"), 600),
		bytes.Repeat([]byte("A"), 400),
	}
	fi := MeasureFilterImpact(baseline, filtered, 1000)
	if math.Abs(fi.N50Delta-(-0.4)) > 1e-9 {
		t.Errorf("N50Delta = %v, want -0.4", fi.N50Delta)
	}
	if fi.NG50Delta >= 0 {
		t.Errorf("NG50Delta = %v, want negative", fi.NG50Delta)
	}
	if fi.Within(0.01) {
		t.Error("40%% degradation passes a 1%% gate")
	}
	if fi.Within(0.5) != true {
		t.Error("40%% degradation fails a 50%% gate")
	}
	if s := fi.String(); s == "" {
		t.Error("empty rendering")
	}
}

func TestFilterImpactNoBaseline(t *testing.T) {
	fi := MeasureFilterImpact(nil, [][]byte{bytes.Repeat([]byte("A"), 100)}, 0)
	if fi.N50Delta != 0 || fi.NG50Delta != 0 {
		t.Errorf("zero baseline must yield zero deltas: %+v", fi)
	}
}
