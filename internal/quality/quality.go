// Package quality evaluates assemblies against known truth genomes —
// contiguity statistics (N50/NG50, totals) and correctness (genome
// fraction, mismatch rate, misassembly detection by split alignment), in
// the spirit of the metaQUAST-style evaluations the MetaHipMer papers use
// to show that local assembly and scaffolding improve assemblies without
// introducing errors.
package quality

import (
	"fmt"
	"sort"
	"strings"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dna"
)

// ContigStats summarizes contiguity.
type ContigStats struct {
	Count      int
	TotalBases int64
	Longest    int
	N50        int
	// NG50 is the N50 against the true genome size (0 when unknown).
	NG50 int
	// AuN is the area-under-the-Nx-curve, a length-weighted mean contig
	// length that is robust to the N50's step behaviour.
	AuN float64
}

// Stats computes contiguity statistics. genomeSize may be 0 (no NG50).
func Stats(seqs [][]byte, genomeSize int64) ContigStats {
	st := ContigStats{Count: len(seqs)}
	lens := make([]int, 0, len(seqs))
	for _, s := range seqs {
		lens = append(lens, len(s))
		st.TotalBases += int64(len(s))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	if len(lens) > 0 {
		st.Longest = lens[0]
	}
	var run int64
	for _, l := range lens {
		run += int64(l)
		st.AuN += float64(l) * float64(l)
		if st.N50 == 0 && run*2 >= st.TotalBases {
			st.N50 = l
		}
		if st.NG50 == 0 && genomeSize > 0 && run*2 >= genomeSize {
			st.NG50 = l
		}
	}
	if st.TotalBases > 0 {
		st.AuN /= float64(st.TotalBases)
	}
	return st
}

// Config controls truth-based evaluation.
type Config struct {
	// Align configures the contig-to-truth aligner.
	Align align.Config
	// MinIdentity is the per-segment identity to count aligned bases.
	MinIdentity float64
	// ChunkLen is the window length contigs are probed with (long contigs
	// are evaluated in chunks so misjoins surface as split alignments).
	ChunkLen int
}

// DefaultConfig returns evaluation defaults.
func DefaultConfig() Config {
	a := align.DefaultConfig()
	a.MinScoreFrac = 0.6
	return Config{Align: a, MinIdentity: 0.95, ChunkLen: 500}
}

// Report is a truth-based evaluation of one assembly.
type Report struct {
	Contigs ContigStats

	// AlignedBases counts assembly bases placed on some genome at or
	// above MinIdentity; UnalignedBases the remainder.
	AlignedBases   int64
	UnalignedBases int64

	// GenomeFraction is the fraction of truth bases covered by at least
	// one aligned chunk.
	GenomeFraction float64

	// Mismatches counts substitution differences inside aligned chunks;
	// MismatchRate normalizes per aligned base.
	Mismatches   int64
	MismatchRate float64

	// Misassemblies counts contigs whose consecutive chunks align to
	// different genomes or to wildly inconsistent positions — the classic
	// misjoin signature.
	Misassemblies int
}

// Evaluate aligns each assembly sequence against the truth genomes in
// chunks and aggregates the report. Scaffolding gaps ('N') are skipped.
func Evaluate(assembly [][]byte, genomes [][]byte, cfg Config) (*Report, error) {
	if cfg.ChunkLen < 100 {
		return nil, fmt.Errorf("quality: chunk length %d too small", cfg.ChunkLen)
	}
	var genomeSize int64
	for _, g := range genomes {
		genomeSize += int64(len(g))
	}
	rep := &Report{Contigs: Stats(assembly, genomeSize)}

	aln, err := align.New(genomes, cfg.Align)
	if err != nil {
		return nil, err
	}
	covered := make([][]bool, len(genomes))
	for i, g := range genomes {
		covered[i] = make([]bool, len(g))
	}

	type placement struct {
		genome int
		start  int
		rc     bool
		ok     bool
	}

	for _, seq := range assembly {
		var prev placement
		first := true
		for off := 0; off < len(seq); off += cfg.ChunkLen {
			end := off + cfg.ChunkLen
			if end > len(seq) {
				end = len(seq)
			}
			chunk := trimN(seq[off:end])
			if len(chunk) < cfg.ChunkLen/4 {
				continue
			}
			h, ok := aln.AlignRead(chunk)
			var cur placement
			if ok {
				alignedLen := h.CtgEnd - h.CtgStart
				identity := float64(h.Score+alignedLen) / (2 * float64(alignedLen))
				if identity >= cfg.MinIdentity {
					cur = placement{genome: h.CtgID, start: h.CtgStart, rc: h.RC, ok: true}
					rep.AlignedBases += int64(alignedLen)
					// Score = matches − mismatches − gaps with unit
					// scoring, so mismatch-ish count = (len − score)/2.
					rep.Mismatches += int64(alignedLen-h.Score) / 2
					for p := h.CtgStart; p < h.CtgEnd; p++ {
						covered[h.CtgID][p] = true
					}
				}
			}
			if !cur.ok {
				rep.UnalignedBases += int64(len(chunk))
			}
			// Misjoin check between consecutive placed chunks.
			if cur.ok && !first && prev.ok {
				if cur.genome != prev.genome || cur.rc != prev.rc ||
					absInt(cur.start-prev.start) > 4*cfg.ChunkLen {
					rep.Misassemblies++
				}
			}
			if cur.ok || !first {
				prev, first = cur, false
			}
		}
	}

	var coveredBases int64
	for i := range covered {
		for _, c := range covered[i] {
			if c {
				coveredBases++
			}
		}
	}
	if genomeSize > 0 {
		rep.GenomeFraction = float64(coveredBases) / float64(genomeSize)
	}
	if rep.AlignedBases > 0 {
		rep.MismatchRate = float64(rep.Mismatches) / float64(rep.AlignedBases)
	}
	return rep, nil
}

// trimN removes leading/trailing scaffold gaps and returns the chunk with
// interior Ns dropped (they would only hurt the alignment score).
func trimN(chunk []byte) []byte {
	out := make([]byte, 0, len(chunk))
	for _, b := range chunk {
		if dna.IsACGT(b) {
			out = append(out, b)
		}
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// String renders the report as an aligned summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "contigs           %d\n", r.Contigs.Count)
	fmt.Fprintf(&b, "total bases       %d\n", r.Contigs.TotalBases)
	fmt.Fprintf(&b, "longest           %d\n", r.Contigs.Longest)
	fmt.Fprintf(&b, "N50 / NG50        %d / %d\n", r.Contigs.N50, r.Contigs.NG50)
	fmt.Fprintf(&b, "auN               %.0f\n", r.Contigs.AuN)
	fmt.Fprintf(&b, "genome fraction   %.2f%%\n", 100*r.GenomeFraction)
	fmt.Fprintf(&b, "aligned bases     %d (%d unaligned)\n", r.AlignedBases, r.UnalignedBases)
	fmt.Fprintf(&b, "mismatch rate     %.4f%%\n", 100*r.MismatchRate)
	fmt.Fprintf(&b, "misassemblies     %d\n", r.Misassemblies)
	return b.String()
}
