package quality

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dna.Alphabet[rng.Intn(4)]
	}
	return s
}

func TestStatsBasics(t *testing.T) {
	seqs := [][]byte{
		bytes.Repeat([]byte("A"), 100),
		bytes.Repeat([]byte("C"), 200),
		bytes.Repeat([]byte("G"), 700),
	}
	st := Stats(seqs, 0)
	if st.Count != 3 || st.TotalBases != 1000 || st.Longest != 700 {
		t.Errorf("basic stats wrong: %+v", st)
	}
	// Sorted desc: 700 covers 700 >= 500 -> N50 = 700.
	if st.N50 != 700 {
		t.Errorf("N50 = %d, want 700", st.N50)
	}
	// auN = (700^2 + 200^2 + 100^2)/1000 = (490000+40000+10000)/1000 = 540.
	if math.Abs(st.AuN-540) > 1e-9 {
		t.Errorf("auN = %f, want 540", st.AuN)
	}
}

func TestStatsNG50(t *testing.T) {
	seqs := [][]byte{
		bytes.Repeat([]byte("A"), 300),
		bytes.Repeat([]byte("C"), 200),
	}
	// Genome size 1000: cumulative 300 < 500, 500 >= 500 -> NG50 = 200.
	st := Stats(seqs, 1000)
	if st.NG50 != 200 {
		t.Errorf("NG50 = %d, want 200", st.NG50)
	}
	// Assembly-based N50: total 500, half 250, first contig covers -> 300.
	if st.N50 != 300 {
		t.Errorf("N50 = %d, want 300", st.N50)
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil, 0)
	if st.Count != 0 || st.N50 != 0 || st.AuN != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestEvaluatePerfectAssembly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genomes := [][]byte{randSeq(rng, 3000), randSeq(rng, 2000)}
	// Assembly = the genomes themselves.
	rep, err := Evaluate(genomes, genomes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.99 {
		t.Errorf("genome fraction %f, want ~1", rep.GenomeFraction)
	}
	if rep.MismatchRate > 0.001 {
		t.Errorf("mismatch rate %f on perfect assembly", rep.MismatchRate)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("%d misassemblies on perfect assembly", rep.Misassemblies)
	}
	if rep.UnalignedBases > 100 {
		t.Errorf("%d unaligned bases on perfect assembly", rep.UnalignedBases)
	}
}

func TestEvaluatePartialAssembly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := randSeq(rng, 4000)
	// Assembly covers half the genome.
	rep, err := Evaluate([][]byte{genome[:2000]}, [][]byte{genome}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GenomeFraction < 0.45 || rep.GenomeFraction > 0.55 {
		t.Errorf("genome fraction %f, want ~0.5", rep.GenomeFraction)
	}
}

func TestEvaluateMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := randSeq(rng, 3000)
	asm := append([]byte(nil), genome...)
	// Introduce substitutions every 100 bases (1%).
	for p := 50; p < len(asm); p += 100 {
		c, _ := dna.Code(asm[p])
		asm[p] = dna.Alphabet[(c+1)&3]
	}
	rep, err := Evaluate([][]byte{asm}, [][]byte{genome}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.MismatchRate < 0.005 || rep.MismatchRate > 0.02 {
		t.Errorf("mismatch rate %f, want ~0.01", rep.MismatchRate)
	}
}

func TestEvaluateMisassembly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ga := randSeq(rng, 3000)
	gb := randSeq(rng, 3000)
	// A chimeric contig: half genome A, half genome B.
	chimera := append(append([]byte(nil), ga[:1500]...), gb[:1500]...)
	rep, err := Evaluate([][]byte{chimera}, [][]byte{ga, gb}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misassemblies == 0 {
		t.Error("chimeric contig not flagged as misassembly")
	}
}

func TestEvaluateRelocation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randSeq(rng, 6000)
	// A contig joining two distant regions of the same genome.
	reloc := append(append([]byte(nil), g[:1500]...), g[4000:5500]...)
	rep, err := Evaluate([][]byte{reloc}, [][]byte{g}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misassemblies == 0 {
		t.Error("relocation not flagged")
	}
}

func TestEvaluateScaffoldGapsSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randSeq(rng, 3000)
	// Scaffold with an N gap joining two ADJACENT regions: not a misjoin.
	sc := append([]byte(nil), g[:1400]...)
	sc = append(sc, bytes.Repeat([]byte("N"), 100)...)
	sc = append(sc, g[1500:2900]...)
	rep, err := Evaluate([][]byte{sc}, [][]byte{g}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misassemblies != 0 {
		t.Errorf("gap-joined scaffold flagged %d misassemblies", rep.Misassemblies)
	}
	if rep.GenomeFraction < 0.85 {
		t.Errorf("genome fraction %f", rep.GenomeFraction)
	}
}

func TestEvaluateJunkUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	genome := randSeq(rng, 3000)
	junk := randSeq(rng, 1000) // unrelated sequence
	rep, err := Evaluate([][]byte{junk}, [][]byte{genome}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlignedBases > 200 {
		t.Errorf("junk aligned %d bases", rep.AlignedBases)
	}
	if rep.UnalignedBases < 800 {
		t.Errorf("junk unaligned only %d bases", rep.UnalignedBases)
	}
}

func TestEvaluateValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChunkLen = 10
	if _, err := Evaluate(nil, nil, cfg); err == nil {
		t.Error("tiny chunk length accepted")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{}
	s := rep.String()
	for _, want := range []string{"N50", "genome fraction", "misassemblies"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("report missing %q", want)
		}
	}
}
