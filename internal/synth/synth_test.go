package synth

import (
	"math"
	"testing"

	"mhm2sim/internal/dna"
)

func smallConfig() Config {
	return Config{
		NumGenomes:     4,
		MinGenomeLen:   5_000,
		MaxGenomeLen:   10_000,
		AbundanceSigma: 1.0,
		RepeatFrac:     0.05,
		SharedFrac:     0.05,
		RepeatLen:      200,
	}
}

func TestGenerateCommunityDeterministic(t *testing.T) {
	a, err := GenerateCommunity(smallConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenerateCommunity(smallConfig(), 11)
	if len(a.Genomes) != len(b.Genomes) {
		t.Fatal("genome counts differ")
	}
	for i := range a.Genomes {
		if string(a.Genomes[i].Seq) != string(b.Genomes[i].Seq) {
			t.Fatalf("genome %d differs between same-seed runs", i)
		}
		if a.Genomes[i].Abundance != b.Genomes[i].Abundance {
			t.Fatalf("abundance %d differs between same-seed runs", i)
		}
	}
	c, _ := GenerateCommunity(smallConfig(), 12)
	if string(a.Genomes[0].Seq) == string(c.Genomes[0].Seq) {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGenerateCommunityShape(t *testing.T) {
	com, err := GenerateCommunity(smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(com.Genomes) != 4 {
		t.Fatalf("got %d genomes", len(com.Genomes))
	}
	for _, g := range com.Genomes {
		if len(g.Seq) < 5_000 || len(g.Seq) > 10_000 {
			t.Errorf("%s length %d out of range", g.Name, len(g.Seq))
		}
		if g.Abundance <= 0 {
			t.Errorf("%s abundance %g <= 0", g.Name, g.Abundance)
		}
		if dna.CountValid(g.Seq) != len(g.Seq) {
			t.Errorf("%s contains ambiguous bases", g.Name)
		}
	}
	if com.TotalBases() < 4*5_000 {
		t.Error("TotalBases inconsistent")
	}
}

func TestGenerateCommunityValidation(t *testing.T) {
	bad := smallConfig()
	bad.NumGenomes = 0
	if _, err := GenerateCommunity(bad, 1); err == nil {
		t.Error("NumGenomes=0 accepted")
	}
	bad = smallConfig()
	bad.MaxGenomeLen = bad.MinGenomeLen - 1
	if _, err := GenerateCommunity(bad, 1); err == nil {
		t.Error("inverted length range accepted")
	}
	bad = smallConfig()
	bad.RepeatFrac = 0.95
	if _, err := GenerateCommunity(bad, 1); err == nil {
		t.Error("RepeatFrac=0.95 accepted")
	}
}

func testReadConfig() ReadConfig {
	return ReadConfig{
		ReadLen:     100,
		InsertMean:  250,
		InsertSD:    30,
		Depth:       8,
		ErrorRate:   0.005,
		LowQualFrac: 0.05,
	}
}

func TestSampleReadsBasics(t *testing.T) {
	com, _ := GenerateCommunity(smallConfig(), 5)
	pairs, err := SampleReads(com, testReadConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no reads sampled")
	}
	for i := range pairs {
		p := &pairs[i]
		if len(p.Fwd.Seq) != 100 || len(p.Rev.Seq) != 100 {
			t.Fatalf("pair %d: wrong read length", i)
		}
		if err := p.Fwd.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := p.Rev.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.InsertSize < 100 {
			t.Fatalf("pair %d: insert %d < read len", i, p.InsertSize)
		}
	}
}

func TestSampleReadsDepth(t *testing.T) {
	cfg := smallConfig()
	cfg.AbundanceSigma = 0 // uniform community
	com, _ := GenerateCommunity(cfg, 7)
	rc := testReadConfig()
	pairs, err := SampleReads(com, rc, 8)
	if err != nil {
		t.Fatal(err)
	}
	gotBases := float64(2 * rc.ReadLen * len(pairs))
	wantBases := rc.Depth * float64(com.TotalBases())
	if ratio := gotBases / wantBases; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("sampled %g bases, want ~%g (ratio %.2f)", gotBases, wantBases, ratio)
	}
}

func TestSampleReadsAbundanceSkew(t *testing.T) {
	// With strong skew, per-genome read counts should differ widely.
	cfg := smallConfig()
	cfg.AbundanceSigma = 1.5
	com, _ := GenerateCommunity(cfg, 9)
	pairs, _ := SampleReads(com, testReadConfig(), 10)
	counts := map[string]int{}
	for i := range pairs {
		// IDs look like genome03.p7/1.
		id := pairs[i].Fwd.ID
		counts[id[:8]]++
	}
	minC, maxC := math.MaxInt, 0
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 2*minC {
		t.Errorf("expected skewed coverage, got min %d max %d", minC, maxC)
	}
}

func TestSampleReadsErrorRate(t *testing.T) {
	cfg := smallConfig()
	cfg.RepeatFrac, cfg.SharedFrac = 0, 0
	com, _ := GenerateCommunity(cfg, 11)
	rc := testReadConfig()
	rc.ErrorRate = 0.01
	rc.InsertSD = 0
	pairs, _ := SampleReads(com, rc, 12)

	// Reconstruct error rate by comparing fwd reads against the genome.
	genomes := map[string][]byte{}
	for i := range com.Genomes {
		genomes[com.Genomes[i].Name] = com.Genomes[i].Seq
	}
	mismatches, total := 0, 0
	for i := range pairs {
		name := pairs[i].Fwd.ID[:8]
		g := genomes[name]
		best := -1
		// Locate the read by scanning (insert positions are not recorded);
		// use a cheap unique 20-mer anchor from the error-free tail space.
		for pos := 0; pos+len(pairs[i].Fwd.Seq) <= len(g); pos++ {
			mm := 0
			for j := 0; j < 20; j++ {
				if g[pos+j] != pairs[i].Fwd.Seq[j] {
					mm++
				}
			}
			if mm <= 1 {
				best = pos
				break
			}
		}
		if best < 0 {
			continue
		}
		for j := range pairs[i].Fwd.Seq {
			if g[best+j] != pairs[i].Fwd.Seq[j] {
				mismatches++
			}
			total++
		}
		if total > 200_000 {
			break
		}
	}
	if total == 0 {
		t.Fatal("could not anchor any reads")
	}
	rate := float64(mismatches) / float64(total)
	if rate < 0.002 || rate > 0.05 {
		t.Errorf("observed error rate %.4f, want around 0.01", rate)
	}
}

func TestFlatten(t *testing.T) {
	pairs := []dna.PairedRead{
		{Fwd: dna.Read{ID: "a/1"}, Rev: dna.Read{ID: "a/2"}},
		{Fwd: dna.Read{ID: "b/1"}, Rev: dna.Read{ID: "b/2"}},
	}
	flat := Flatten(pairs)
	if len(flat) != 4 || flat[0].ID != "a/1" || flat[3].ID != "b/2" {
		t.Errorf("Flatten order wrong: %v", flat)
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"arcticsynth", "WA"} {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Reads.ReadLen != 150 {
			t.Errorf("%s: read length %d, paper datasets are 150 bp", name, p.Reads.ReadLen)
		}
		if err := p.Com.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if err := p.Reads.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetBuildSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("preset build is moderately expensive")
	}
	p := ArcticSynthPreset()
	// Shrink for test speed but keep structure.
	p.Com.NumGenomes = 4
	p.Com.MinGenomeLen, p.Com.MaxGenomeLen = 8_000, 12_000
	p.Reads.Depth = 6
	com, pairs, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(com.Genomes) != 4 || len(pairs) == 0 {
		t.Fatalf("unexpected build output: %d genomes, %d pairs", len(com.Genomes), len(pairs))
	}
}
