package synth

import (
	"fmt"
	"math/rand"

	"mhm2sim/internal/dna"
)

// ReadConfig controls paired-end read sampling.
type ReadConfig struct {
	ReadLen    int     // bases per read (paper datasets: 150)
	InsertMean int     // mean fragment length
	InsertSD   int     // fragment length standard deviation
	Depth      float64 // mean genome coverage at abundance 1.0
	ErrorRate  float64 // per-base substitution probability
	// LowQualFrac is the fraction of bases assigned a quality below
	// dna.QualCutoff; errors are concentrated on those bases, as on a
	// real instrument.
	LowQualFrac float64
}

// Validate checks read-config sanity.
func (rc *ReadConfig) Validate() error {
	if rc.ReadLen < 20 || rc.ReadLen > 300 {
		return fmt.Errorf("synth: read length %d outside [20,300]", rc.ReadLen)
	}
	if rc.InsertMean < rc.ReadLen {
		return fmt.Errorf("synth: insert mean %d < read length %d", rc.InsertMean, rc.ReadLen)
	}
	if rc.Depth <= 0 {
		return fmt.Errorf("synth: depth %g <= 0", rc.Depth)
	}
	if rc.ErrorRate < 0 || rc.ErrorRate > 0.2 {
		return fmt.Errorf("synth: error rate %g outside [0,0.2]", rc.ErrorRate)
	}
	return nil
}

// SampleReads draws paired-end reads from the community. Per-genome depth is
// Depth * Abundance (normalized so the community mean abundance is 1), which
// produces the proportional bias metagenome assemblers must cope with.
func SampleReads(com *Community, rc ReadConfig, seed int64) ([]dna.PairedRead, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	meanAb := 0.0
	for i := range com.Genomes {
		meanAb += com.Genomes[i].Abundance
	}
	meanAb /= float64(len(com.Genomes))

	var pairs []dna.PairedRead
	id := 0
	for gi := range com.Genomes {
		g := &com.Genomes[gi]
		depth := rc.Depth * g.Abundance / meanAb
		nPairs := int(depth * float64(len(g.Seq)) / float64(2*rc.ReadLen))
		for p := 0; p < nPairs; p++ {
			insert := rc.InsertMean
			if rc.InsertSD > 0 {
				insert += int(rng.NormFloat64() * float64(rc.InsertSD))
			}
			if insert < rc.ReadLen {
				insert = rc.ReadLen
			}
			if insert > len(g.Seq) {
				insert = len(g.Seq)
			}
			start := rng.Intn(len(g.Seq) - insert + 1)
			frag := g.Seq[start : start+insert]

			fwd := makeRead(rng, rc, frag[:rc.ReadLen], fmt.Sprintf("%s.p%d/1", g.Name, id))
			revSrc := dna.RevComp(frag[len(frag)-rc.ReadLen:])
			rev := makeRead(rng, rc, revSrc, fmt.Sprintf("%s.p%d/2", g.Name, id))
			pairs = append(pairs, dna.PairedRead{Fwd: fwd, Rev: rev, InsertSize: insert})
			id++
		}
	}
	// Shuffle so reads are not grouped by genome, as in a real run.
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs, nil
}

// makeRead copies template, then injects substitution errors and qualities.
func makeRead(rng *rand.Rand, rc ReadConfig, template []byte, id string) dna.Read {
	seq := append([]byte(nil), template...)
	qual := make([]byte, len(seq))
	for i := range seq {
		low := rng.Float64() < rc.LowQualFrac
		if low {
			qual[i] = dna.QualChar(2 + rng.Intn(dna.QualCutoff-2))
		} else {
			qual[i] = dna.QualChar(dna.QualCutoff + 10 + rng.Intn(dna.MaxQual-dna.QualCutoff-9))
		}
		// Errors are 4x likelier on low-quality bases.
		errP := rc.ErrorRate
		if low {
			errP *= 4
		} else {
			errP /= 2
		}
		if rng.Float64() < errP {
			c, _ := dna.Code(seq[i])
			seq[i] = dna.Alphabet[(c+byte(1+rng.Intn(3)))&3]
		}
	}
	return dna.Read{ID: id, Seq: seq, Qual: qual}
}

// Flatten turns pairs into a single read list (fwd, rev, fwd, rev, ...),
// the order the pipeline's merge-reads stage expects.
func Flatten(pairs []dna.PairedRead) []dna.Read {
	out := make([]dna.Read, 0, 2*len(pairs))
	for i := range pairs {
		out = append(out, pairs[i].Fwd, pairs[i].Rev)
	}
	return out
}

// Preset bundles a community config, read config, and scale notes.
type Preset struct {
	Name  string
	Com   Config
	Reads ReadConfig
	Seed  int64
	// ScaleNote documents the relationship to the paper's dataset.
	ScaleNote string
}

// ArcticSynthPreset is the scaled stand-in for the arcticsynth dataset
// (32 M synthetic 150 bp reads from a controlled community of genomes whose
// abundances span orders of magnitude): same read length, wide abundance
// skew — the low-abundance tail fragments into poorly covered contigs,
// which is what fills bin 1 of Fig 3 — and Illumina-like errors.
func ArcticSynthPreset() Preset {
	return Preset{
		Name: "arcticsynth",
		Com: Config{
			NumGenomes:     16,
			MinGenomeLen:   20_000,
			MaxGenomeLen:   70_000,
			AbundanceSigma: 1.6,
			RepeatFrac:     0.03,
			SharedFrac:     0.02,
			RepeatLen:      400,
		},
		Reads: ReadConfig{
			ReadLen:     150,
			InsertMean:  350,
			InsertSD:    40,
			Depth:       12,
			ErrorRate:   0.006,
			LowQualFrac: 0.05,
		},
		Seed:      42,
		ScaleNote: "arcticsynth scaled ~1:500 by genome count x length; read length, abundance skew and error structure preserved",
	}
}

// WAPreset is the scaled stand-in for the Western Arctic marine communities
// dataset (2.465 G reads): many more genomes, stronger abundance skew, more
// shared sequence across organisms.
func WAPreset() Preset {
	return Preset{
		Name: "WA",
		Com: Config{
			NumGenomes:     24,
			MinGenomeLen:   20_000,
			MaxGenomeLen:   90_000,
			AbundanceSigma: 1.3,
			RepeatFrac:     0.05,
			SharedFrac:     0.05,
			RepeatLen:      300,
		},
		Reads: ReadConfig{
			ReadLen:     150,
			InsertMean:  320,
			InsertSD:    50,
			Depth:       20,
			ErrorRate:   0.006,
			LowQualFrac: 0.08,
		},
		Seed:      1848,
		ScaleNote: "WA scaled ~1:50000 by total bases; higher community complexity and skew than arcticsynth preserved",
	}
}

// SoilPreset is the many-organism "soil metagenome" regime: dozens of
// small genomes with no conserved sequence shared across organisms
// (SharedFrac 0) and only light within-genome repeats. Its de Bruijn graph
// decomposes into many disconnected components — roughly one per organism
// — which is the workload where component-partitioned sharding
// (dist.ShardComponent) turns nearly all exchange and allgather traffic
// rank-local. Mild abundance skew keeps every genome assemblable.
func SoilPreset() Preset {
	return Preset{
		Name: "soil",
		Com: Config{
			NumGenomes:     40,
			MinGenomeLen:   8_000,
			MaxGenomeLen:   16_000,
			AbundanceSigma: 0.7,
			RepeatFrac:     0.01,
			SharedFrac:     0,
			RepeatLen:      300,
		},
		Reads: ReadConfig{
			ReadLen:     150,
			InsertMean:  320,
			InsertSD:    40,
			Depth:       14,
			ErrorRate:   0.004,
			LowQualFrac: 0.05,
		},
		Seed:      2077,
		ScaleNote: "soil-like community: many small organisms, no cross-organism sequence, disconnected dBG components",
	}
}

// PresetByName looks up a preset ("arcticsynth", "WA", or "soil").
func PresetByName(name string) (Preset, error) {
	switch name {
	case "arcticsynth":
		return ArcticSynthPreset(), nil
	case "WA", "wa":
		return WAPreset(), nil
	case "soil":
		return SoilPreset(), nil
	}
	return Preset{}, fmt.Errorf("synth: unknown preset %q", name)
}

// Build generates the preset's community and reads.
func (p Preset) Build() (*Community, []dna.PairedRead, error) {
	com, err := GenerateCommunity(p.Com, p.Seed)
	if err != nil {
		return nil, nil, err
	}
	pairs, err := SampleReads(com, p.Reads, p.Seed+1)
	if err != nil {
		return nil, nil, err
	}
	return com, pairs, nil
}
