// Package synth generates synthetic metagenome communities and Illumina-like
// short reads from them.
//
// It stands in for the paper's two datasets (DESIGN.md §2): arcticsynth
// (32 M synthetic 150 bp reads from a controlled community) and WA (813 GB
// of marine-community 150 bp paired-end reads). What the experiments depend
// on is not the particular genomes but the distributional structure —
// read length, abundance skew across community members, sequencing error,
// shared/repeated sequence — which this package reproduces at laptop scale
// with documented scale factors.
package synth

import (
	"fmt"
	"math"
	"math/rand"
)

// Genome is one community member.
type Genome struct {
	Name string
	Seq  []byte
	// Abundance is the relative cell abundance; read depth for the genome
	// is proportional to Abundance * len(Seq).
	Abundance float64
}

// Community is a set of genomes with abundances.
type Community struct {
	Genomes []Genome
}

// TotalBases returns the summed genome length.
func (c *Community) TotalBases() int {
	n := 0
	for i := range c.Genomes {
		n += len(c.Genomes[i].Seq)
	}
	return n
}

// Config controls community generation.
type Config struct {
	NumGenomes int
	// MinGenomeLen/MaxGenomeLen bound the uniformly drawn genome lengths.
	MinGenomeLen int
	MaxGenomeLen int
	// AbundanceSigma is the σ of the log-normal abundance distribution;
	// 0 gives a uniform community, ~1.2 a typically skewed metagenome.
	AbundanceSigma float64
	// RepeatFrac is the fraction of each genome rewritten as copies of
	// segments from earlier in the same genome (intra-genome repeats).
	RepeatFrac float64
	// SharedFrac is the fraction of each genome (after the first) copied
	// from another genome, modelling conserved genes across organisms —
	// the source of erroneous de Bruijn graph path overlaps (§2.3).
	SharedFrac float64
	// RepeatLen is the length of each repeated/shared segment.
	RepeatLen int
	// GC is the target GC fraction (0.5 if zero).
	GC float64
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.NumGenomes < 1 {
		return fmt.Errorf("synth: NumGenomes %d < 1", c.NumGenomes)
	}
	if c.MinGenomeLen < 100 || c.MaxGenomeLen < c.MinGenomeLen {
		return fmt.Errorf("synth: bad genome length range [%d,%d]", c.MinGenomeLen, c.MaxGenomeLen)
	}
	if c.RepeatFrac < 0 || c.RepeatFrac > 0.9 || c.SharedFrac < 0 || c.SharedFrac > 0.9 {
		return fmt.Errorf("synth: repeat/shared fractions out of range")
	}
	return nil
}

// GenerateCommunity builds a deterministic community from cfg and seed.
func GenerateCommunity(cfg Config, seed int64) (*Community, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	gc := cfg.GC
	if gc == 0 {
		gc = 0.5
	}
	repeatLen := cfg.RepeatLen
	if repeatLen == 0 {
		repeatLen = 500
	}

	com := &Community{Genomes: make([]Genome, cfg.NumGenomes)}
	for gi := range com.Genomes {
		glen := cfg.MinGenomeLen
		if cfg.MaxGenomeLen > cfg.MinGenomeLen {
			glen += rng.Intn(cfg.MaxGenomeLen - cfg.MinGenomeLen)
		}
		seq := randomSeq(rng, glen, gc)
		plantRepeats(rng, seq, cfg.RepeatFrac, repeatLen)
		if gi > 0 && cfg.SharedFrac > 0 {
			src := com.Genomes[rng.Intn(gi)].Seq
			plantShared(rng, seq, src, cfg.SharedFrac, repeatLen)
		}
		ab := 1.0
		if cfg.AbundanceSigma > 0 {
			ab = math.Exp(rng.NormFloat64() * cfg.AbundanceSigma)
		}
		com.Genomes[gi] = Genome{
			Name:      fmt.Sprintf("genome%02d", gi),
			Seq:       seq,
			Abundance: ab,
		}
	}
	return com, nil
}

func randomSeq(rng *rand.Rand, n int, gc float64) []byte {
	seq := make([]byte, n)
	for i := range seq {
		if rng.Float64() < gc {
			if rng.Intn(2) == 0 {
				seq[i] = 'G'
			} else {
				seq[i] = 'C'
			}
		} else {
			if rng.Intn(2) == 0 {
				seq[i] = 'A'
			} else {
				seq[i] = 'T'
			}
		}
	}
	return seq
}

// plantRepeats overwrites random windows with copies of earlier windows of
// the same genome until frac of the genome has been rewritten.
func plantRepeats(rng *rand.Rand, seq []byte, frac float64, segLen int) {
	if frac <= 0 || len(seq) < 3*segLen {
		return
	}
	budget := int(frac * float64(len(seq)))
	for budget > 0 {
		src := rng.Intn(len(seq) - 2*segLen)
		dst := src + segLen + rng.Intn(len(seq)-src-2*segLen+1)
		copy(seq[dst:dst+segLen], seq[src:src+segLen])
		budget -= segLen
	}
}

// plantShared overwrites random windows of seq with windows of src.
func plantShared(rng *rand.Rand, seq, src []byte, frac float64, segLen int) {
	if frac <= 0 || len(seq) < 2*segLen || len(src) < 2*segLen {
		return
	}
	budget := int(frac * float64(len(seq)))
	for budget > 0 {
		s := rng.Intn(len(src) - segLen)
		d := rng.Intn(len(seq) - segLen)
		copy(seq[d:d+segLen], src[s:s+segLen])
		budget -= segLen
	}
}
