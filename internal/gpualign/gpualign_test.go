package gpualign

import (
	"math/rand"
	"testing"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/simt"
)

func testDev() *simt.Device {
	cfg := simt.V100()
	cfg.GlobalMemBytes = 1 << 26
	return simt.NewDevice(cfg)
}

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dna.Alphabet[rng.Intn(4)]
	}
	return s
}

// reverify checks a GPU result by rerunning the CPU kernel restricted to
// the reported span: the span must reproduce the reported score.
func reverify(t *testing.T, task Task, band int, sc align.Scoring, r align.SWResult) {
	t.Helper()
	if r.Score == 0 {
		return
	}
	// After slicing to the span, the path starts on diagonal 0 but may
	// drift up to 2×band from it (the slice's own offset can consume up to
	// one band of the original corridor).
	sub := align.BandedSW(task.Q[r.QStart:r.QEnd], task.T[r.TStart:r.TEnd], 0, 2*band, sc)
	if sub.Score < r.Score {
		t.Errorf("span re-verification: span yields %d, GPU reported %d", sub.Score, r.Score)
	}
}

func TestBatchSWMatchesCPUScores(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sc := align.DefaultScoring()
	band := 8

	var tasks []Task
	// Exact substrings, mismatched copies, indel copies, overhangs, junk.
	for trial := 0; trial < 30; trial++ {
		tgt := randSeq(rng, 300)
		switch trial % 5 {
		case 0:
			q := tgt[50 : 50+100]
			tasks = append(tasks, Task{Q: q, T: tgt, Shift: 50})
		case 1:
			q := append([]byte(nil), tgt[80:200]...)
			for _, p := range []int{10, 40, 90} {
				c, _ := dna.Code(q[p])
				q[p] = dna.Alphabet[(c+1)&3]
			}
			tasks = append(tasks, Task{Q: q, T: tgt, Shift: 80})
		case 2:
			q := append([]byte(nil), tgt[30:90]...)
			q = append(q, tgt[92:160]...) // 2-base deletion
			tasks = append(tasks, Task{Q: q, T: tgt, Shift: 30})
		case 3:
			q := append(append([]byte(nil), randSeq(rng, 40)...), tgt[260:300]...)
			tasks = append(tasks, Task{Q: q, T: tgt, Shift: 220})
		case 4:
			tasks = append(tasks, Task{Q: randSeq(rng, 80), T: tgt, Shift: 100})
		}
	}

	got, res, err := BatchSW(testDev(), tasks, band, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tasks) {
		t.Fatalf("got %d results", len(got))
	}
	for i, task := range tasks {
		want := align.BandedSW(task.Q, task.T, task.Shift, band, sc)
		if got[i].Score != want.Score {
			t.Errorf("task %d: GPU score %d, CPU %d", i, got[i].Score, want.Score)
			continue
		}
		reverify(t, task, band, sc, got[i])
	}
	if res.TotalWarpInstrs() == 0 || res.Warps != uint64(len(tasks)) {
		t.Error("kernel accounting missing")
	}
	if res.WarpInstrs[simt.ILdShared] == 0 {
		t.Error("query staging in shared memory not exercised")
	}
	if res.WarpInstrs[simt.IShfl] == 0 {
		t.Error("shuffle wavefront not exercised")
	}
}

func TestBatchSWSpansMatchEnds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc := align.DefaultScoring()
	tgt := randSeq(rng, 400)
	q := tgt[120:250]
	got, _, err := BatchSW(testDev(), []Task{{Q: q, T: tgt, Shift: 120}}, 6, sc)
	if err != nil {
		t.Fatal(err)
	}
	r := got[0]
	if r.Score != len(q) {
		t.Fatalf("score %d, want %d", r.Score, len(q))
	}
	if r.QStart != 0 || r.QEnd != len(q) || r.TStart != 120 || r.TEnd != 250 {
		t.Errorf("span %d..%d / %d..%d, want 0..%d / 120..250",
			r.QStart, r.QEnd, r.TStart, r.TEnd, len(q))
	}
}

func TestBatchSWEmptyAndValidation(t *testing.T) {
	if _, _, err := BatchSW(testDev(), []Task{{}}, 0, align.DefaultScoring()); err == nil {
		t.Error("band 0 accepted")
	}
	if _, _, err := BatchSW(testDev(), []Task{{}}, MaxBand+1, align.DefaultScoring()); err == nil {
		t.Error("oversized band accepted")
	}
	got, _, err := BatchSW(testDev(), nil, 4, align.DefaultScoring())
	if err != nil || got != nil {
		t.Error("empty task list mishandled")
	}
	// Zero-length sequences score zero.
	got, _, err = BatchSW(testDev(), []Task{{Q: nil, T: []byte("ACGT"), Shift: 0}}, 4, align.DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Score != 0 {
		t.Error("empty query scored")
	}
}

func TestBatchSWManyWarpsParallel(t *testing.T) {
	// Parallel launch (warps write disjoint outputs) must agree with the
	// CPU on every task.
	rng := rand.New(rand.NewSource(3))
	sc := align.DefaultScoring()
	var tasks []Task
	for i := 0; i < 200; i++ {
		tgt := randSeq(rng, 200)
		q := tgt[40 : 40+80]
		tasks = append(tasks, Task{Q: q, T: tgt, Shift: 40})
	}
	got, _, err := BatchSW(testDev(), tasks, 8, sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, task := range tasks {
		if got[i].Score != 80 {
			t.Fatalf("task %d: score %d", i, got[i].Score)
		}
		_ = task
	}
}

func BenchmarkBatchSW(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	sc := align.DefaultScoring()
	var tasks []Task
	for i := 0; i < 256; i++ {
		tgt := randSeq(rng, 300)
		tasks = append(tasks, Task{Q: tgt[60:210], T: tgt, Shift: 60})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BatchSW(testDev(), tasks, 8, sc); err != nil {
			b.Fatal(err)
		}
	}
}
