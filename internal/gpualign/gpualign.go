// Package gpualign implements the pipeline's "aln kernel" on the simt
// device, playing the role ADEPT (Awan et al. 2020 [3]) plays inside
// MetaHipMer: CPU-side seeding finds candidate (read, contig, diagonal)
// tasks, and a GPU kernel computes the banded Smith-Waterman scores in
// bulk — one alignment per warp, the band spread across the lanes, the
// within-row gap chain resolved with a shuffle-based max-plus scan, and
// the query staged in shared memory.
//
// A forward pass finds the best score and its end cell; a reverse pass
// over the reversed prefixes recovers the start cell, exactly as ADEPT
// does. Results are verified against align.BandedSW in the tests.
package gpualign

import (
	"fmt"

	"mhm2sim/internal/align"
	"mhm2sim/internal/simt"
)

// MaxBand is the largest supported band half-width: the band (2B+1 cells)
// must fit in one warp.
const MaxBand = (simt.WarpSize - 2) / 2 // 15

// Task is one banded alignment to compute.
type Task struct {
	Q, T  []byte
	Shift int
}

// BatchSW aligns every task on the device and returns per-task results
// (score, spans, DP cells) plus the kernel characterization.
func BatchSW(dev *simt.Device, tasks []Task, band int, sc align.Scoring) ([]align.SWResult, simt.KernelResult, error) {
	if band < 1 || band > MaxBand {
		return nil, simt.KernelResult{}, fmt.Errorf("gpualign: band %d outside [1,%d]", band, MaxBand)
	}
	if err := sc.Validate(); err != nil {
		return nil, simt.KernelResult{}, err
	}
	if len(tasks) == 0 {
		return nil, simt.KernelResult{}, nil
	}

	// Stage sequences in device arenas (8-byte slack for block gathers).
	var qOffs, tOffs []int
	qTotal, tTotal := 0, 0
	for _, task := range tasks {
		qOffs = append(qOffs, qTotal)
		tOffs = append(tOffs, tTotal)
		qTotal += len(task.Q)
		tTotal += len(task.T)
	}
	qBase, err := dev.Malloc(int64(qTotal + 8))
	if err != nil {
		return nil, simt.KernelResult{}, err
	}
	tBase, err := dev.Malloc(int64(tTotal + 8))
	if err != nil {
		return nil, simt.KernelResult{}, err
	}
	for i, task := range tasks {
		dev.MemcpyHtoD(qBase+simt.Ptr(qOffs[i]), task.Q)
		dev.MemcpyHtoD(tBase+simt.Ptr(tOffs[i]), task.T)
	}
	// Output records: score, qs, qe, ts, te (5×u32).
	outBase, err := dev.Malloc(int64(len(tasks)) * 20)
	if err != nil {
		return nil, simt.KernelResult{}, err
	}

	results := make([]align.SWResult, len(tasks))
	res, err := dev.Launch(simt.KernelConfig{
		Name:  "adept_banded_sw",
		Warps: len(tasks),
	}, func(w *simt.Warp) {
		i := w.ID
		task := tasks[i]
		r := alignWarp(w, task, qBase+simt.Ptr(qOffs[i]), tBase+simt.Ptr(tOffs[i]), band, sc)
		results[i] = r
		// Lane 0 writes the output record.
		lane0 := simt.LaneMask(0)
		var a, v simt.Vec
		for f, val := range []int{r.Score, r.QStart, r.QEnd, r.TStart, r.TEnd} {
			a[0] = uint64(outBase) + uint64(20*i+4*f)
			v[0] = uint64(uint32(val))
			w.StoreGlobal(lane0, &a, 4, &v)
		}
	})
	if err != nil {
		return nil, simt.KernelResult{}, err
	}
	return results, res, nil
}

// alignWarp runs the forward pass, then the reverse pass to pin the start.
func alignWarp(w *simt.Warp, task Task, qPtr, tPtr simt.Ptr, band int, sc align.Scoring) align.SWResult {
	score, qe, te, cells := forwardPass(w, task.Q, task.T, qPtr, tPtr, task.Shift, band, sc, false, 0, 0)
	out := align.SWResult{Score: score, QEnd: qe, TEnd: te, Cells: cells}
	if score <= 0 {
		return align.SWResult{Cells: cells}
	}
	// Reverse pass over the reversed prefixes q[:qe], t[:te]; its end cell
	// is the start cell in forward coordinates.
	revShift := (te - qe) - task.Shift
	_, rqe, rte, rcells := forwardPass(w, task.Q, task.T, qPtr, tPtr, revShift, band, sc, true, qe, te)
	out.QStart = qe - rqe
	out.TStart = te - rte
	out.Cells += rcells
	return out
}

// forwardPass computes one banded SW sweep. When rev is set, the logical
// sequences are the reversed prefixes q[:qLim] and t[:tLim] (indices are
// mirrored at load time; no extra staging needed).
func forwardPass(w *simt.Warp, q, t []byte, qPtr, tPtr simt.Ptr, shift, band int, sc align.Scoring, rev bool, qLim, tLim int) (best, bestQEnd, bestTEnd int, cells int64) {
	qLen, tLen := len(q), len(t)
	if rev {
		qLen, tLen = qLim, tLim
	}
	if qLen == 0 || tLen == 0 {
		return 0, 0, 0, 0
	}
	width := 2*band + 1
	var bandMask simt.Mask
	for lane := 0; lane < width; lane++ {
		bandMask |= simt.LaneMask(lane)
	}

	// Stage the query into shared memory with coalesced global loads — the
	// ADEPT trick that keeps the inner loop off global memory.
	for off := 0; off < qLen; off += simt.WarpSize {
		var m simt.Mask
		var ga, so simt.Vec
		for lane := 0; lane < simt.WarpSize && off+lane < qLen; lane++ {
			m |= simt.LaneMask(lane)
			ga[lane] = uint64(qPtr) + uint64(logical(off+lane, qLen, len(q), rev))
			so[lane] = uint64(off + lane)
		}
		loaded := w.LoadGlobal(m, &ga, 1)
		w.StoreShared(m, &so, 1, &loaded)
	}

	gap := -sc.Gap // positive penalty
	var prev [simt.WarpSize]int
	bestV := 0
	for i := 0; i < qLen; i++ {
		// Broadcast q[i] from shared memory.
		so := simt.Splat(uint64(i))
		qv := w.LoadShared(bandMask, &so, 1)
		qb := byte(qv[0])

		// Target bytes per lane (uncoalesced gather: one per band cell).
		var active simt.Mask
		var ta simt.Vec
		var js [simt.WarpSize]int
		for lane := 0; lane < width; lane++ {
			j := i + shift + (lane - band)
			js[lane] = j
			if j >= 0 && j < tLen {
				active |= simt.LaneMask(lane)
				ta[lane] = uint64(tPtr) + uint64(logical(j, tLen, len(t), rev))
			}
		}
		if active == 0 {
			for l := range prev {
				prev[l] = 0
			}
			continue
		}
		cells += int64(active.Count())
		tv := w.LoadGlobal(active, &ta, 1)

		// Phase 1: diag + up (shuffle from the previous row).
		var prevVec simt.Vec
		for lane := 0; lane < width; lane++ {
			prevVec[lane] = uint64(int64(prev[lane]) + 1<<30) // bias to keep non-negative
		}
		upVec := w.ShflDown(bandMask, &prevVec, 1)
		w.ExecN(simt.IInt, active, 4) // substitution + two maxes + clamp

		var cur [simt.WarpSize]int
		for lane := 0; lane < width; lane++ {
			if !active.Has(lane) {
				cur[lane] = 0
				continue
			}
			s := sc.Mismatch
			if byte(tv[lane]) == qb {
				s = sc.Match
			}
			diag := prev[lane]
			v := diag + s
			if lane+1 < width {
				if u := int(int64(upVec[lane])-1<<30) - gap; u > v {
					v = u
				}
			}
			if v < 0 {
				v = 0
			}
			cur[lane] = v
		}

		// Phase 2: the within-row gap chain via a max-plus Kogge-Stone
		// scan: cur[w] = max_k≤w (cur[k] − gap·(w−k)).
		for delta := 1; delta < width; delta *= 2 {
			var vec simt.Vec
			for lane := 0; lane < width; lane++ {
				vec[lane] = uint64(int64(cur[lane]) + 1<<30)
			}
			shifted := w.ShflUp(bandMask, &vec, delta)
			w.Exec(simt.IInt, bandMask)
			for lane := width - 1; lane >= delta; lane-- {
				if v := int(int64(shifted[lane])-1<<30) - gap*delta; v > cur[lane] {
					cur[lane] = v
				}
			}
		}
		// Clamp out-of-range cells and track the best.
		for lane := 0; lane < width; lane++ {
			if !active.Has(lane) {
				cur[lane] = 0
				continue
			}
			if cur[lane] > bestV {
				bestV = cur[lane]
				bestQEnd = i + 1
				bestTEnd = js[lane] + 1
			}
		}
		// Warp-wide max for the running best (costed like the real kernel).
		var bv simt.Vec
		for lane := 0; lane < width; lane++ {
			bv[lane] = uint64(cur[lane])
		}
		w.ReduceMax(bandMask, &bv)

		prev = cur
	}
	return bestV, bestQEnd, bestTEnd, cells
}

// logical maps a logical index to the physical offset, mirroring when the
// pass runs over reversed prefixes.
func logical(idx, lim, physLen int, rev bool) int {
	if !rev {
		return idx
	}
	_ = physLen
	return lim - 1 - idx
}
