// Package histo renders compact text histograms for the command-line
// tools (contig length distributions, insert sizes, bin populations).
package histo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a set of labeled counts.
type Histogram struct {
	Title  string
	Labels []string
	Counts []int64
}

// FromValues builds a log2-bucketed histogram of positive values (the
// natural scale for contig lengths).
func FromValues(title string, values []int) Histogram {
	h := Histogram{Title: title}
	if len(values) == 0 {
		return h
	}
	maxV := 0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 1 {
		return h
	}
	nb := int(math.Log2(float64(maxV))) + 1
	counts := make([]int64, nb)
	for _, v := range values {
		if v < 1 {
			continue
		}
		counts[int(math.Log2(float64(v)))]++
	}
	// Trim empty leading buckets.
	first := 0
	for first < nb-1 && counts[first] == 0 {
		first++
	}
	for b := first; b < nb; b++ {
		h.Labels = append(h.Labels, fmt.Sprintf("%d-%d", 1<<uint(b), 1<<uint(b+1)-1))
		h.Counts = append(h.Counts, counts[b])
	}
	return h
}

// FromBuckets builds a histogram with explicit labels.
func FromBuckets(title string, labels []string, counts []int64) Histogram {
	return Histogram{Title: title, Labels: labels, Counts: counts}
}

// Render draws the histogram with bars scaled to width characters.
func (h Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	if len(h.Counts) == 0 {
		b.WriteString("  (empty)\n")
		return b.String()
	}
	labelW := 0
	var maxC int64 = 1
	for i, l := range h.Labels {
		if len(l) > labelW {
			labelW = len(l)
		}
		if h.Counts[i] > maxC {
			maxC = h.Counts[i]
		}
	}
	for i, l := range h.Labels {
		bar := int(int64(width) * h.Counts[i] / maxC)
		if h.Counts[i] > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %-*s %8d %s\n", labelW, l, h.Counts[i], strings.Repeat("#", bar))
	}
	return b.String()
}

// Summary returns n, min, median, mean, max of the values.
func Summary(values []int) (n int, minV, median int, mean float64, maxV int) {
	n = len(values)
	if n == 0 {
		return 0, 0, 0, 0, 0
	}
	s := append([]int(nil), values...)
	sort.Ints(s)
	var sum int64
	for _, v := range s {
		sum += int64(v)
	}
	return n, s[0], s[n/2], float64(sum) / float64(n), s[n-1]
}
