package histo

import (
	"strings"
	"testing"
)

func TestFromValuesBuckets(t *testing.T) {
	h := FromValues("lengths", []int{1, 2, 3, 4, 5, 6, 7, 8, 1000})
	// Buckets: [1,1]=1, [2,3]=2, [4,7]=4, [8,15]=1, ..., [512,1023]=1.
	if len(h.Counts) == 0 {
		t.Fatal("no buckets")
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != 9 {
		t.Errorf("histogram lost values: %d of 9", total)
	}
	if h.Labels[0] != "1-1" {
		t.Errorf("first label %q", h.Labels[0])
	}
	if h.Labels[len(h.Labels)-1] != "512-1023" {
		t.Errorf("last label %q", h.Labels[len(h.Labels)-1])
	}
}

func TestFromValuesEmpty(t *testing.T) {
	h := FromValues("empty", nil)
	if out := h.Render(20); !strings.Contains(out, "(empty)") {
		t.Errorf("empty render: %q", out)
	}
	h = FromValues("zeroes", []int{0, 0})
	if len(h.Counts) != 0 {
		t.Error("non-positive values bucketed")
	}
}

func TestRenderScaling(t *testing.T) {
	h := FromBuckets("t", []string{"a", "b", "c"}, []int64{100, 50, 1})
	out := h.Render(20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Error("max bar not full width")
	}
	if !strings.Contains(lines[3], "#") {
		t.Error("nonzero count rendered with no bar")
	}
}

func TestSummary(t *testing.T) {
	n, minV, med, mean, maxV := Summary([]int{5, 1, 9, 3, 7})
	if n != 5 || minV != 1 || med != 5 || maxV != 9 {
		t.Errorf("summary %d %d %d %f %d", n, minV, med, mean, maxV)
	}
	if mean != 5 {
		t.Errorf("mean %f", mean)
	}
	if n, _, _, _, _ := Summary(nil); n != 0 {
		t.Error("empty summary")
	}
}
