package figures

import (
	"strings"
	"testing"
)

func TestSetups(t *testing.T) {
	for _, name := range []string{"arcticsynth", "WA"} {
		if _, err := StandardSetup(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		q, err := QuickSetup(name)
		if err != nil {
			t.Errorf("%s quick: %v", name, err)
		}
		if len(q.Config.Rounds) == 0 {
			t.Error("quick setup lost rounds")
		}
	}
	if _, err := StandardSetup("bogus"); err == nil {
		t.Error("bogus preset accepted")
	}
}

func TestAllFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure rendering is expensive")
	}
	s, err := QuickSetup("arcticsynth")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	m, f64, err := Model(res, s.Config.Locassm)
	if err != nil {
		t.Fatal(err)
	}

	fig2 := Fig2(m, f64)
	if !strings.Contains(fig2, "local assembly") || !strings.Contains(fig2, "2128") {
		t.Errorf("Fig2 malformed:\n%s", fig2)
	}
	fig3 := Fig3(res.Bins)
	if !strings.Contains(fig3, "bin3") {
		t.Errorf("Fig3 malformed:\n%s", fig3)
	}
	rf, err := RunRoofline(res.LAWorkload, s.Config.Locassm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rf.V2.WarpGIPS <= 0 || rf.V1.WarpGIPS <= 0 {
		t.Error("roofline GIPS not positive")
	}
	// The headline claims of Figs 8-10.
	if rf.V2.IntensityL1 <= rf.V1.IntensityL1 {
		t.Errorf("v2 L1 intensity %f not above v1 %f", rf.V2.IntensityL1, rf.V1.IntensityL1)
	}
	if rf.V2.GroupBreakdown()["global_memory_inst"] >= rf.V1.GroupBreakdown()["global_memory_inst"] {
		t.Error("v2 does not reduce global-memory instructions (Fig 10)")
	}
	if !strings.Contains(Fig8Fig9(rf), "489.6") {
		t.Error("roofline table missing peak")
	}
	if !strings.Contains(Fig10(rf), "global_memory_inst") {
		t.Error("Fig10 table malformed")
	}

	fig12, err := Fig12(m, res.Timings)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig12, "4.3") {
		t.Errorf("Fig12 missing speedup:\n%s", fig12)
	}
	fig13 := Fig13(m, f64)
	if !strings.Contains(fig13, "1024") {
		t.Errorf("Fig13 missing node sweep:\n%s", fig13)
	}
	fig14 := Fig14(m, f64)
	if !strings.Contains(fig14, "1024") {
		t.Errorf("Fig14 missing node sweep:\n%s", fig14)
	}
}
