// Package figures regenerates every table and figure of the paper's
// evaluation section (the per-experiment index lives in DESIGN.md §4).
// The command-line tools and the benchmark harness both call into it, so
// `go test -bench` and `cmd/figures` print the same series.
package figures

import (
	"fmt"
	"strings"

	"mhm2sim/internal/cluster"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/roofline"
	"mhm2sim/internal/simt"
	"mhm2sim/internal/synth"
)

// Setup bundles a dataset preset with pipeline settings.
type Setup struct {
	Preset synth.Preset
	Config pipeline.Config
}

// StandardSetup returns the full-scale (for this repository) configuration
// used by the commands: the named preset with the default pipeline.
func StandardSetup(presetName string) (Setup, error) {
	p, err := synth.PresetByName(presetName)
	if err != nil {
		return Setup{}, err
	}
	return Setup{Preset: p, Config: pipeline.DefaultConfig()}, nil
}

// QuickSetup returns a reduced configuration for benchmarks and smoke
// tests: the same structure at a fraction of the size.
func QuickSetup(presetName string) (Setup, error) {
	s, err := StandardSetup(presetName)
	if err != nil {
		return Setup{}, err
	}
	s.Preset.Com.NumGenomes = max(3, s.Preset.Com.NumGenomes/4)
	s.Preset.Com.MinGenomeLen /= 2
	s.Preset.Com.MaxGenomeLen /= 2
	s.Preset.Reads.Depth /= 1.5
	s.Config.Rounds = []int{21, 33}
	return s, nil
}

// Run executes the pipeline for the setup.
func (s Setup) Run(useGPU bool) (*pipeline.Result, error) {
	_, pairs, err := s.Preset.Build()
	if err != nil {
		return nil, err
	}
	cfg := s.Config
	if useGPU {
		cfg.Engine.Name = locassm.EngineGPU
	}
	return pipeline.Run(pairs, cfg)
}

// Model builds the calibrated cluster model from a pipeline run's
// local-assembly workload, fitting the published Fig 13 endpoints
// (7.2× at 64 nodes, 2.65× at 1024).
func Model(res *pipeline.Result, cfg locassm.Config) (*cluster.Model, float64, error) {
	m, err := cluster.ModelFromWorkload(res.LAWorkload, cfg)
	if err != nil {
		return nil, 0, err
	}
	f64, err := m.FitScaling(7.2, 2.65)
	if err != nil {
		return nil, 0, err
	}
	return m, f64, nil
}

// ---- Fig 2: 64-node WA stage breakdown, CPU vs GPU local assembly ----

// Fig2 renders both pies as tables.
func Fig2(m *cluster.Model, f64 float64) string {
	cpu, gpu := m.WABreakdown64(f64)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2 — MetaHipMer2 64-node WA stage breakdown (model)\n")
	fmt.Fprintf(&b, "%-18s %14s %7s %14s %7s\n", "stage", "CPU-LA (s)", "%", "GPU-LA (s)", "%")
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		fmt.Fprintf(&b, "%-18s %14.0f %6.1f%% %14.0f %6.1f%%\n",
			s, cpu.StageSec[s], cpu.Percent(s), gpu.StageSec[s], gpu.Percent(s))
	}
	fmt.Fprintf(&b, "%-18s %14.0f %7s %14.0f %7s\n", "TOTAL", cpu.TotalSec, "", gpu.TotalSec, "")
	fmt.Fprintf(&b, "paper: total 2128 s with 34%% local assembly (2a) -> 1495 s with 6%% (2b)\n")
	return b.String()
}

// ---- Fig 3: contig distribution across bins vs k ----

// Fig3 renders the per-round bin distribution.
func Fig3(bins []pipeline.RoundBins) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3 — distribution of contigs across bins (arcticsynth)\n")
	fmt.Fprintf(&b, "%6s %10s %10s %10s %9s %9s %9s\n",
		"k", "bin1(=0)", "bin2(<10)", "bin3(>=10)", "bin1%", "bin2%", "bin3%")
	for _, r := range bins {
		total := float64(r.Zero + r.Small + r.Large)
		if total == 0 {
			total = 1
		}
		fmt.Fprintf(&b, "%6d %10d %10d %10d %8.1f%% %8.1f%% %8.1f%%\n",
			r.K, r.Zero, r.Small, r.Large,
			100*float64(r.Zero)/total, 100*float64(r.Small)/total, 100*float64(r.Large)/total)
	}
	fmt.Fprintf(&b, "paper: bin3 < 1%%, bin2 varies 10-30%%, larger k -> more contigs with reads\n")
	return b.String()
}

// ---- Figs 8-10: instruction roofline and breakdown for v1 vs v2 ----

// RooflineResults holds the merged kernel characterizations.
type RooflineResults struct {
	V1, V2 roofline.Analysis
}

// RunRoofline executes the standalone local-assembly kernels (as on the
// Cori GPU node, §4.1) in both versions over the same workload.
//
// scale replays the measured counters at `scale` copies of the workload on
// one device (1 analyzes the workload as-is). The paper's standalone runs
// put the entire arcticsynth data dump on a single V100 — far more work
// than our laptop-scale workload — so figure generation passes the
// calibrated replication factor and the intensities stay identical while
// GIPS reflects a properly occupied device.
func RunRoofline(work []*locassm.CtgWithReads, cfg locassm.Config, scale float64) (RooflineResults, error) {
	return RunRooflineOn(simt.V100(), work, cfg, scale)
}

// RunRooflineOn is RunRoofline on an arbitrary device model (e.g.
// simt.A100 for a what-if analysis on newer hardware).
func RunRooflineOn(devCfg simt.DeviceConfig, work []*locassm.CtgWithReads, cfg locassm.Config, scale float64) (RooflineResults, error) {
	var out RooflineResults
	if scale <= 0 {
		scale = 1
	}
	for _, v2 := range []bool{false, true} {
		dev := simt.NewDevice(devCfg)
		drv, err := locassm.NewDriver(dev, locassm.GPUConfig{Config: cfg, WarpPerTable: v2})
		if err != nil {
			return out, err
		}
		res, err := drv.Run(work)
		if err != nil {
			return out, err
		}
		name := "v1_thread_per_table"
		if v2 {
			name = "v2_warp_per_table"
		}
		merged := roofline.Merge(name, devCfg, res.Kernels)
		if scale != 1 {
			merged.Stats = merged.Stats.Scaled(scale)
			merged.Time, merged.Bound = simt.TimeFor(devCfg, &merged.Stats)
		}
		a := roofline.Analyze(devCfg, merged)
		if v2 {
			out.V2 = a
		} else {
			out.V1 = a
		}
	}
	return out, nil
}

// Fig8Fig9 renders the roofline table (Fig 8 = v1, Fig 9 = v2).
func Fig8Fig9(r RooflineResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figs 8-9 — instruction roofline, extension kernels on V100 (model)\n")
	b.WriteString(roofline.Table([]roofline.Analysis{r.V1, r.V2}))
	fmt.Fprintf(&b, "paper: v2 moves the L1 dot up-right vs v1; v2 peaks at 14.4 GIPS;\n")
	fmt.Fprintf(&b, "       both sit near the stride-1 wall; ~70%% of L1 traffic is local memory\n")
	return b.String()
}

// Fig10 renders the grouped instruction breakdown.
func Fig10(r RooflineResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — warp instruction breakdown, v1 vs v2\n")
	b.WriteString(roofline.BreakdownTable([]roofline.Analysis{r.V1, r.V2}))
	fmt.Fprintf(&b, "paper: global-memory instructions drop sharply from v1 to v2\n")
	return b.String()
}

// ---- Fig 12: two-node arcticsynth breakdown ----

// Fig12 renders the 2-node arcticsynth comparison. The paper anchors:
// ≈460 s total, ≈14%% local assembly, 4.3× LA speedup, ≈12%% overall.
func Fig12(m *cluster.Model, t pipeline.Timings) (string, error) {
	f2, err := m.FitRatio(4.3)
	if err != nil {
		return "", err
	}
	cpu, gpu := m.TwoNodeBreakdown(t, 460, 0.14, f2)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12 — 2-node arcticsynth stage breakdown (model)\n")
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "stage", "CPU-LA (s)", "GPU-LA (s)")
	for s := pipeline.Stage(0); s < pipeline.NumStages; s++ {
		fmt.Fprintf(&b, "%-18s %14.1f %14.1f\n", s, cpu.StageSec[s], gpu.StageSec[s])
	}
	laRatio := cpu.StageSec[pipeline.StageLocalAssembly] / gpu.StageSec[pipeline.StageLocalAssembly]
	fmt.Fprintf(&b, "%-18s %14.1f %14.1f   (LA speedup %.1fx, overall +%.0f%%)\n",
		"TOTAL", cpu.TotalSec, gpu.TotalSec, laRatio, (cpu.TotalSec/gpu.TotalSec-1)*100)
	fmt.Fprintf(&b, "paper: local assembly 4.3x faster on GPU; ~12%% overall improvement\n")
	return b.String(), nil
}

// ---- Figs 13-14: Summit strong scaling ----

// ScalingNodes is the paper's node-count sweep.
var ScalingNodes = []int{64, 128, 256, 512, 1024}

// Fig13 renders the local-assembly scaling series.
func Fig13(m *cluster.Model, f64 float64) string {
	laAnchor := cluster.WAShares[pipeline.StageLocalAssembly] * cluster.WATotalCPU64Sec
	scale := laAnchor / m.CPUNodeSeconds(f64)
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13 — local assembly CPU vs GPU on Summit, WA dataset (model)\n")
	fmt.Fprintf(&b, "%6s %12s %12s %9s\n", "nodes", "CPU (s)", "GPU (s)", "speedup")
	for _, p := range m.LAScaling(ScalingNodes, f64) {
		fmt.Fprintf(&b, "%6d %12.0f %12.0f %8.2fx\n",
			p.Nodes, p.CPUSec*scale, p.GPUSec*scale, p.Speedup)
	}
	fmt.Fprintf(&b, "paper: >7x at 64 nodes, deteriorating to 2.65x at 1024 nodes\n")
	return b.String()
}

// Fig14 renders the whole-pipeline scaling series.
func Fig14(m *cluster.Model, f64 float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14 — MetaHipMer2 total runtime with and without GPU local assembly (model)\n")
	fmt.Fprintf(&b, "%6s %14s %14s %10s\n", "nodes", "CPU-LA (s)", "GPU-LA (s)", "speedup")
	for _, p := range m.PipelineScaling(ScalingNodes, f64) {
		fmt.Fprintf(&b, "%6d %14.0f %14.0f %9.1f%%\n", p.Nodes, p.CPUSec, p.GPUSec, p.SpeedupPct)
	}
	fmt.Fprintf(&b, "paper: ~42%% peak improvement at <=128 nodes, shrinking as communication dominates\n")
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
