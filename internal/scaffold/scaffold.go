// Package scaffold implements the pipeline's final stage: stitching contigs
// into scaffolds using read pairs that span contig boundaries (§2.2). Pairs
// vote for oriented links between contig ends; links with enough support
// are joined greedily into chains, with gap sizes estimated from the
// library insert size.
package scaffold

import (
	"bytes"
	"fmt"
	"sort"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dna"
)

// End identifies a contig end.
type End byte

const (
	Left  End = 'L'
	Right End = 'R'
)

// Link is one oriented candidate join: contig A's AEnd connects to contig
// B's BEnd.
type Link struct {
	A, B       int
	AEnd, BEnd End
	Gap        int // estimated gap in bases (may be negative for overlaps)
	Weight     int // supporting pairs
}

// Config controls scaffolding.
type Config struct {
	// MinWeight is the minimum pair support to accept a link.
	MinWeight int
	// InsertMean is the library's mean fragment length, for gap estimates.
	InsertMean int
	// MinGap floors the Ns placed between joined contigs.
	MinGap int
}

// DefaultConfig returns scaffolding defaults for a 300–400 bp library.
func DefaultConfig() Config {
	return Config{MinWeight: 2, InsertMean: 350, MinGap: 1}
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.MinWeight < 1 {
		return fmt.Errorf("scaffold: MinWeight %d < 1", c.MinWeight)
	}
	if c.InsertMean < 1 {
		return fmt.Errorf("scaffold: InsertMean %d < 1", c.InsertMean)
	}
	if c.MinGap < 1 {
		return fmt.Errorf("scaffold: MinGap %d < 1", c.MinGap)
	}
	return nil
}

// PairVote derives the link implied by one read pair whose mates aligned to
// two different contigs. h1 is the forward mate's hit, h2 the reverse
// mate's. ctgLens maps contig id to length. ok is false when the pair is
// uninformative (same contig).
//
// Orientation logic: mates are sequenced inward from the fragment ends, so
// the fragment continues rightward of a forward-aligned mate 1 and the
// reverse mate enters its contig from the left when it aligned as a
// reverse complement.
func PairVote(h1, h2 align.Hit, ctgLens []int, insertMean int) (Link, bool) {
	if h1.CtgID == h2.CtgID {
		return Link{}, false
	}
	l := Link{A: h1.CtgID, B: h2.CtgID}

	var distA int // bases from mate 1's outward-facing alignment edge to A's connecting end
	if !h1.RC {
		l.AEnd = Right
		distA = ctgLens[h1.CtgID] - h1.CtgStart
	} else {
		l.AEnd = Left
		distA = h1.CtgEnd
	}
	var distB int
	if h2.RC {
		l.BEnd = Left
		distB = h2.CtgEnd
	} else {
		l.BEnd = Right
		distB = ctgLens[h2.CtgID] - h2.CtgStart
	}
	l.Gap = insertMean - distA - distB
	l.Weight = 1
	return l, true
}

// key normalizes a link so (A,aEnd)-(B,bEnd) and (B,bEnd)-(A,aEnd)
// accumulate together.
func (l Link) key() Link {
	n := l
	n.Gap, n.Weight = 0, 0
	if n.B < n.A || (n.B == n.A && n.BEnd < n.AEnd) {
		n.A, n.B = n.B, n.A
		n.AEnd, n.BEnd = n.BEnd, n.AEnd
	}
	return n
}

func (l Link) normalized() Link {
	if l.B < l.A || (l.B == l.A && l.BEnd < l.AEnd) {
		l.A, l.B = l.B, l.A
		l.AEnd, l.BEnd = l.BEnd, l.AEnd
	}
	return l
}

// Accumulate merges individual pair votes into weighted links.
func Accumulate(votes []Link) []Link {
	type agg struct {
		weight int
		gapSum int
	}
	m := map[Link]*agg{}
	for _, v := range votes {
		k := v.normalized().key()
		a := m[k]
		if a == nil {
			a = &agg{}
			m[k] = a
		}
		a.weight += v.Weight
		a.gapSum += v.Gap * v.Weight
	}
	out := make([]Link, 0, len(m))
	for k, a := range m {
		k.Weight = a.weight
		k.Gap = a.gapSum / a.weight
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		return out[i].AEnd < out[j].AEnd
	})
	return out
}

// Scaffold is an ordered, oriented chain of contigs joined with N gaps.
type Scaffold struct {
	Seq []byte
	// Ctgs lists member contig ids in scaffold order; Flipped marks the
	// ones placed in reverse complement.
	Ctgs    []int
	Flipped []bool
}

// Build joins contigs into scaffolds. Links below MinWeight are ignored; a
// contig end participates in at most one join; cycles are refused. Contigs
// that never join are emitted as singleton scaffolds, so the output always
// covers every input contig exactly once.
func Build(ctgs [][]byte, votes []Link, cfg Config) ([]Scaffold, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	links := Accumulate(votes)

	type port struct {
		other    int
		otherEnd End
		gap      int
	}
	// ports[ctg][0]=left, [1]=right.
	ports := make([][2]*port, len(ctgs))
	parent := make([]int, len(ctgs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	idx := func(e End) int {
		if e == Left {
			return 0
		}
		return 1
	}
	for _, l := range links {
		if l.Weight < cfg.MinWeight || l.A == l.B {
			continue
		}
		if ports[l.A][idx(l.AEnd)] != nil || ports[l.B][idx(l.BEnd)] != nil {
			continue // end already used
		}
		if find(l.A) == find(l.B) {
			continue // would close a cycle
		}
		ports[l.A][idx(l.AEnd)] = &port{other: l.B, otherEnd: l.BEnd, gap: l.Gap}
		ports[l.B][idx(l.BEnd)] = &port{other: l.A, otherEnd: l.AEnd, gap: l.Gap}
		parent[find(l.A)] = find(l.B)
	}

	// Walk chains from free ends.
	emitted := make([]bool, len(ctgs))
	var out []Scaffold
	for start := 0; start < len(ctgs); start++ {
		if emitted[start] {
			continue
		}
		// A chain start is a contig with at least one free port; walk away
		// from the free port. Choose orientation so the free port faces
		// left in the scaffold.
		var flipped bool
		switch {
		case ports[start][0] == nil:
			flipped = false // free left port: scaffold starts at its left
		case ports[start][1] == nil:
			flipped = true // free right port: flip so it faces left
		default:
			continue // interior of a chain; reached from its end later
		}

		sc := Scaffold{}
		var buf bytes.Buffer
		cur, curFlipped := start, flipped
		for {
			emitted[cur] = true
			seq := ctgs[cur]
			if curFlipped {
				seq = dna.RevComp(seq)
			}
			buf.Write(seq)
			sc.Ctgs = append(sc.Ctgs, cur)
			sc.Flipped = append(sc.Flipped, curFlipped)

			// The outgoing port is the scaffold-right end of cur.
			outPort := idx(Right)
			if curFlipped {
				outPort = idx(Left)
			}
			p := ports[cur][outPort]
			if p == nil || emitted[p.other] {
				break
			}
			gap := p.gap
			if gap < cfg.MinGap {
				gap = cfg.MinGap
			}
			for g := 0; g < gap; g++ {
				buf.WriteByte('N')
			}
			// Enter the next contig through p.otherEnd; if we enter at its
			// right end it must be flipped.
			cur, curFlipped = p.other, p.otherEnd == Right
		}
		sc.Seq = buf.Bytes()
		out = append(out, sc)
	}
	return out, nil
}

// ProperPairInsert derives an insert-size observation from a pair whose
// mates aligned to the same contig in opposite orientations (a "proper"
// pair). ok is false for discordant or split pairs.
func ProperPairInsert(h1, h2 align.Hit) (int, bool) {
	if h1.CtgID != h2.CtgID || h1.RC == h2.RC {
		return 0, false
	}
	lo, hi := h1.CtgStart, h2.CtgEnd
	if h2.CtgStart < lo {
		lo = h2.CtgStart
	}
	if h1.CtgEnd > hi {
		hi = h1.CtgEnd
	}
	if hi <= lo {
		return 0, false
	}
	return hi - lo, true
}

// EstimateInsert returns a robust (median / MAD-based) estimate of the
// library's insert-size mean and standard deviation from proper-pair
// observations. ok is false with fewer than minObs observations.
func EstimateInsert(obs []int, minObs int) (mean, sd int, ok bool) {
	if minObs < 1 {
		minObs = 1
	}
	if len(obs) < minObs {
		return 0, 0, false
	}
	s := append([]int(nil), obs...)
	sort.Ints(s)
	median := s[len(s)/2]
	devs := make([]int, len(s))
	for i, v := range s {
		d := v - median
		if d < 0 {
			d = -d
		}
		devs[i] = d
	}
	sort.Ints(devs)
	mad := devs[len(devs)/2]
	// 1.4826·MAD approximates σ for normal data.
	return median, int(1.4826*float64(mad)) + 1, true
}
