package scaffold

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizeInvolution(t *testing.T) {
	f := func(a, b uint8, ae, be bool, gap int16, w uint8) bool {
		end := func(x bool) End {
			if x {
				return Left
			}
			return Right
		}
		l := Link{A: int(a), B: int(b), AEnd: end(ae), BEnd: end(be), Gap: int(gap), Weight: int(w)}
		n1 := l.normalized()
		n2 := n1.normalized()
		// Normalization is idempotent and preserves the payload.
		if n1 != n2 {
			return false
		}
		if n1.Gap != l.Gap || n1.Weight != l.Weight {
			return false
		}
		// The endpoint multiset is preserved.
		got := map[[2]int]bool{{n1.A, int(n1.AEnd)}: true, {n1.B, int(n1.BEnd)}: true}
		want := map[[2]int]bool{{l.A, int(l.AEnd)}: true, {l.B, int(l.BEnd)}: true}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulateWeightConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		var votes []Link
		total := 0
		for i := 0; i+3 < len(raw); i += 4 {
			end := func(x uint8) End {
				if x%2 == 0 {
					return Left
				}
				return Right
			}
			votes = append(votes, Link{
				A: int(raw[i] % 8), B: int(raw[i+1] % 8),
				AEnd: end(raw[i+2]), BEnd: end(raw[i+3]),
				Gap: int(raw[i]) - 100, Weight: 1,
			})
			total++
		}
		sum := 0
		for _, l := range Accumulate(votes) {
			sum += l.Weight
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildAlwaysCoversEveryContig(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		ctgs := make([][]byte, n)
		for i := range ctgs {
			ctgs[i] = randSeq(rng, 50+rng.Intn(100))
		}
		var votes []Link
		for v := 0; v < rng.Intn(20); v++ {
			end := func() End {
				if rng.Intn(2) == 0 {
					return Left
				}
				return Right
			}
			votes = append(votes, Link{
				A: rng.Intn(n), B: rng.Intn(n), AEnd: end(), BEnd: end(),
				Gap: rng.Intn(200) - 50, Weight: 1 + rng.Intn(5),
			})
		}
		scs, err := Build(ctgs, votes, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]int, n)
		for _, sc := range scs {
			if len(sc.Ctgs) != len(sc.Flipped) {
				t.Fatal("Ctgs/Flipped length mismatch")
			}
			for _, c := range sc.Ctgs {
				seen[c]++
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: contig %d appears %d times", trial, i, c)
			}
		}
	}
}
