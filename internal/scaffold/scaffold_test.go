package scaffold

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mhm2sim/internal/align"
	"mhm2sim/internal/dna"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dna.Alphabet[rng.Intn(4)]
	}
	return s
}

func TestPairVoteSameContig(t *testing.T) {
	if _, ok := PairVote(align.Hit{CtgID: 1}, align.Hit{CtgID: 1}, []int{0, 100}, 300); ok {
		t.Error("same-contig pair produced a link")
	}
}

func TestPairVoteForwardForward(t *testing.T) {
	// Mate1 forward near A's right end; mate2 RC near B's left end:
	// classic A.R — B.L junction.
	lens := []int{500, 400}
	h1 := align.Hit{CtgID: 0, CtgStart: 420, CtgEnd: 520, RC: false}
	h2 := align.Hit{CtgID: 1, CtgStart: 0, CtgEnd: 100, RC: true}
	l, ok := PairVote(h1, h2, lens, 350)
	if !ok {
		t.Fatal("no link")
	}
	if l.AEnd != Right || l.BEnd != Left {
		t.Errorf("ends %c-%c, want R-L", l.AEnd, l.BEnd)
	}
	// Gap = 350 − (500−420) − 100 = 170.
	if l.Gap != 170 {
		t.Errorf("gap %d, want 170", l.Gap)
	}
}

func TestPairVoteFlippedB(t *testing.T) {
	// Mate2 aligning forward on B means B is reversed relative to the
	// fragment: the junction uses B's right end.
	lens := []int{500, 400}
	h1 := align.Hit{CtgID: 0, CtgStart: 420, CtgEnd: 500, RC: false}
	h2 := align.Hit{CtgID: 1, CtgStart: 300, CtgEnd: 400, RC: false}
	l, ok := PairVote(h1, h2, lens, 350)
	if !ok {
		t.Fatal("no link")
	}
	if l.AEnd != Right || l.BEnd != Right {
		t.Errorf("ends %c-%c, want R-R", l.AEnd, l.BEnd)
	}
}

func TestAccumulate(t *testing.T) {
	votes := []Link{
		{A: 0, B: 1, AEnd: Right, BEnd: Left, Gap: 100, Weight: 1},
		{A: 1, B: 0, AEnd: Left, BEnd: Right, Gap: 120, Weight: 1}, // same link reversed
		{A: 0, B: 2, AEnd: Left, BEnd: Left, Gap: 50, Weight: 1},
	}
	links := Accumulate(votes)
	if len(links) != 2 {
		t.Fatalf("got %d links, want 2", len(links))
	}
	if links[0].Weight != 2 {
		t.Errorf("merged link weight %d, want 2", links[0].Weight)
	}
	if links[0].Gap != 110 {
		t.Errorf("merged gap %d, want 110", links[0].Gap)
	}
}

func TestBuildJoinsTwoContigs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randSeq(rng, 200), randSeq(rng, 150)
	votes := []Link{
		{A: 0, B: 1, AEnd: Right, BEnd: Left, Gap: 10, Weight: 3},
	}
	scs, err := Build([][]byte{a, b}, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scaffolds, want 1", len(scs))
	}
	want := string(a) + strings.Repeat("N", 10) + string(b)
	got := string(scs[0].Seq)
	// The chain may be emitted from either end; accept the reverse
	// complement too.
	if got != want && got != string(dna.RevComp([]byte(want))) {
		t.Errorf("scaffold:\n got %s\nwant %s", got, want)
	}
}

func TestBuildRespectsMinWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randSeq(rng, 100), randSeq(rng, 100)
	votes := []Link{{A: 0, B: 1, AEnd: Right, BEnd: Left, Gap: 5, Weight: 1}}
	scs, err := Build([][]byte{a, b}, votes, DefaultConfig()) // MinWeight 2
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("weak link was used: %d scaffolds", len(scs))
	}
}

func TestBuildFlipsReversedContig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randSeq(rng, 120), randSeq(rng, 120)
	// A.R joins B.R: B must appear reverse-complemented after A.
	votes := []Link{{A: 0, B: 1, AEnd: Right, BEnd: Right, Gap: 4, Weight: 5}}
	scs, err := Build([][]byte{a, b}, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scaffolds", len(scs))
	}
	want := string(a) + "NNNN" + string(dna.RevComp(b))
	got := string(scs[0].Seq)
	if got != want && got != string(dna.RevComp([]byte(want))) {
		t.Errorf("flip handling wrong:\n got %s\nwant %s", got, want)
	}
}

func TestBuildChainOfThree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ctgs := [][]byte{randSeq(rng, 100), randSeq(rng, 100), randSeq(rng, 100)}
	votes := []Link{
		{A: 0, B: 1, AEnd: Right, BEnd: Left, Gap: 2, Weight: 4},
		{A: 1, B: 2, AEnd: Right, BEnd: Left, Gap: 3, Weight: 4},
	}
	scs, err := Build(ctgs, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scaffolds, want 1 chain", len(scs))
	}
	if len(scs[0].Ctgs) != 3 {
		t.Fatalf("chain has %d contigs", len(scs[0].Ctgs))
	}
}

func TestBuildRefusesCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctgs := [][]byte{randSeq(rng, 100), randSeq(rng, 100)}
	votes := []Link{
		{A: 0, B: 1, AEnd: Right, BEnd: Left, Gap: 2, Weight: 9},
		{A: 0, B: 1, AEnd: Left, BEnd: Right, Gap: 2, Weight: 8},
	}
	scs, err := Build(ctgs, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The second link would close a ring; it must be dropped, leaving one
	// linear scaffold containing both contigs.
	if len(scs) != 1 || len(scs[0].Ctgs) != 2 {
		t.Fatalf("cycle handling wrong: %d scaffolds", len(scs))
	}
}

func TestBuildEndReuseRefused(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ctgs := [][]byte{randSeq(rng, 100), randSeq(rng, 100), randSeq(rng, 100)}
	votes := []Link{
		{A: 0, B: 1, AEnd: Right, BEnd: Left, Gap: 2, Weight: 9},
		{A: 0, B: 2, AEnd: Right, BEnd: Left, Gap: 2, Weight: 5}, // same A end
	}
	scs, err := Build(ctgs, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("end reused: %d scaffolds", len(scs))
	}
	// The heavier link wins.
	for _, sc := range scs {
		if len(sc.Ctgs) == 2 {
			if !(sc.Ctgs[0] == 0 && sc.Ctgs[1] == 1) && !(sc.Ctgs[0] == 1 && sc.Ctgs[1] == 0) {
				t.Errorf("wrong pair joined: %v", sc.Ctgs)
			}
		}
	}
}

func TestBuildCoversAllContigs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ctgs [][]byte
	for i := 0; i < 10; i++ {
		ctgs = append(ctgs, randSeq(rng, 80))
	}
	votes := []Link{
		{A: 3, B: 7, AEnd: Right, BEnd: Left, Gap: 2, Weight: 3},
	}
	scs, err := Build(ctgs, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, sc := range scs {
		for _, c := range sc.Ctgs {
			seen[c]++
		}
	}
	for i := range ctgs {
		if seen[i] != 1 {
			t.Errorf("contig %d appears %d times", i, seen[i])
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Config{MinWeight: 0, InsertMean: 1, MinGap: 1}); err == nil {
		t.Error("MinWeight 0 accepted")
	}
}

func TestEndToEndWithAligner(t *testing.T) {
	// Ground truth: one genome, two contig windows separated by a gap.
	rng := rand.New(rand.NewSource(8))
	genome := randSeq(rng, 1200)
	ctgA := genome[100:500]
	ctgB := genome[560:1000]
	ctgs := [][]byte{ctgA, ctgB}

	a, err := align.New(ctgs, align.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lens := []int{len(ctgA), len(ctgB)}

	// Sample proper pairs spanning the junction.
	var votes []Link
	insert := 300
	readLen := 100
	for start := 280; start+insert <= 760; start += 7 {
		frag := genome[start : start+insert]
		r1 := frag[:readLen]
		r2 := dna.RevComp(frag[len(frag)-readLen:])
		h1, ok1 := a.AlignRead(r1)
		h2, ok2 := a.AlignRead(r2)
		if !ok1 || !ok2 {
			continue
		}
		if v, ok := PairVote(h1, h2, lens, insert); ok {
			votes = append(votes, v)
		}
	}
	if len(votes) < 3 {
		t.Fatalf("only %d spanning pairs found", len(votes))
	}
	scs, err := Build(ctgs, votes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 1 {
		t.Fatalf("got %d scaffolds, want 1", len(scs))
	}
	sc := scs[0]
	if len(sc.Ctgs) != 2 {
		t.Fatalf("scaffold contains %d contigs", len(sc.Ctgs))
	}
	// The scaffold must contain both contigs in genome order (or the whole
	// thing reverse-complemented), with a gap near the true 60 bases.
	s := string(sc.Seq)
	rcS := string(dna.RevComp(sc.Seq))
	fwdOK := strings.Contains(s, string(ctgA)) && strings.Contains(s, string(ctgB)) &&
		strings.Index(s, string(ctgA)) < strings.Index(s, string(ctgB))
	rcOK := strings.Contains(rcS, string(ctgA)) && strings.Contains(rcS, string(ctgB)) &&
		strings.Index(rcS, string(ctgA)) < strings.Index(rcS, string(ctgB))
	if !fwdOK && !rcOK {
		t.Fatal("scaffold does not place contigs in genome order")
	}
	gap := bytes.Count(sc.Seq, []byte("N"))
	if gap < 20 || gap > 120 {
		t.Errorf("gap estimate %d Ns, true gap 60", gap)
	}
}

func TestProperPairInsert(t *testing.T) {
	h1 := align.Hit{CtgID: 0, CtgStart: 100, CtgEnd: 200, RC: false}
	h2 := align.Hit{CtgID: 0, CtgStart: 350, CtgEnd: 450, RC: true}
	ins, ok := ProperPairInsert(h1, h2)
	if !ok || ins != 350 {
		t.Errorf("insert %d,%v want 350,true", ins, ok)
	}
	// Different contigs: not proper.
	if _, ok := ProperPairInsert(h1, align.Hit{CtgID: 1, RC: true}); ok {
		t.Error("cross-contig pair accepted")
	}
	// Same orientation: not proper.
	if _, ok := ProperPairInsert(h1, align.Hit{CtgID: 0, CtgStart: 300, CtgEnd: 400}); ok {
		t.Error("same-orientation pair accepted")
	}
}

func TestEstimateInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var obs []int
	for i := 0; i < 500; i++ {
		obs = append(obs, 350+int(rng.NormFloat64()*40))
	}
	// A few wild outliers must not move the estimate.
	obs = append(obs, 5000, 9000, 12000)
	mean, sd, ok := EstimateInsert(obs, 50)
	if !ok {
		t.Fatal("estimation refused")
	}
	if mean < 330 || mean > 370 {
		t.Errorf("mean %d, want ~350", mean)
	}
	if sd < 20 || sd > 70 {
		t.Errorf("sd %d, want ~40", sd)
	}
	if _, _, ok := EstimateInsert(obs[:10], 50); ok {
		t.Error("too few observations accepted")
	}
}
