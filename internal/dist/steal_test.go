package dist

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// uniformCosts gives every virtual shard the same unit cost and byte size.
func uniformCosts(shards int, unit time.Duration) ([]time.Duration, []int64) {
	cost := make([]time.Duration, shards)
	bytes := make([]int64, shards)
	for s := range cost {
		cost[s] = unit
		bytes[s] = 1 << 10
	}
	return cost, bytes
}

func onesFactor(n int) []float64 {
	f := make([]float64, n)
	for r := range f {
		f[r] = 1
	}
	return f
}

// TestStealBalancedNoSteals: with uniform costs and no stragglers every
// queue drains at the same pace — nothing to steal, and the makespan
// equals the no-steal one exactly.
func TestStealBalancedNoSteals(t *testing.T) {
	deal := newShardDeal(DefaultVirtualShards, liveAll(8))
	cost, bytes := uniformCosts(DefaultVirtualShards, time.Millisecond)
	out := stealSchedule(deal, cost, bytes, onesFactor(8), 8, true)
	if len(out.steals) != 0 {
		t.Errorf("balanced round produced %d steals", len(out.steals))
	}
	if out.makespan != out.noStealMakespan {
		t.Errorf("balanced makespan %v ≠ no-steal %v", out.makespan, out.noStealMakespan)
	}
	// 32 shards over 8 ranks = 4 per rank.
	if want := 4 * time.Millisecond; out.makespan != want {
		t.Errorf("makespan %v, want %v", out.makespan, want)
	}
}

// TestStealStragglerSpeedup pins the acceptance criterion's scheduling
// half: an 8× straggler at N=8 loses most of its queue to the seven idle
// ranks, and the stolen makespan beats the no-steal one by at least 1.5×.
func TestStealStragglerSpeedup(t *testing.T) {
	deal := newShardDeal(DefaultVirtualShards, liveAll(8))
	cost, bytes := uniformCosts(DefaultVirtualShards, time.Millisecond)
	factor := onesFactor(8)
	factor[0] = 8
	out := stealSchedule(deal, cost, bytes, factor, 8, true)
	if len(out.steals) == 0 {
		t.Fatal("8× straggler produced no steals")
	}
	// No-steal: rank 0 serializes its 4 shards at 8 ms each = 32 ms.
	if want := 32 * time.Millisecond; out.noStealMakespan != want {
		t.Errorf("no-steal makespan %v, want %v", out.noStealMakespan, want)
	}
	if 2*out.noStealMakespan < 3*out.makespan {
		t.Errorf("steal speedup %.2fx below the 1.5x criterion (steal %v, no-steal %v)",
			float64(out.noStealMakespan)/float64(out.makespan), out.makespan, out.noStealMakespan)
	}
	for _, st := range out.steals {
		if st.victim != 0 {
			t.Errorf("steal of shard %d targeted rank %d, want the straggler 0", st.shard, st.victim)
		}
		if st.thief == 0 {
			t.Errorf("straggler stole shard %d from itself", st.shard)
		}
	}
}

// TestStealDisabled: the enabled=false path must reproduce the old
// accounting — per-rank Σ scaled cost, makespan the max — with no steals.
func TestStealDisabled(t *testing.T) {
	deal := newShardDeal(DefaultVirtualShards, liveAll(4))
	cost, bytes := uniformCosts(DefaultVirtualShards, time.Millisecond)
	factor := onesFactor(4)
	factor[2] = 3
	out := stealSchedule(deal, cost, bytes, factor, 4, false)
	if len(out.steals) != 0 {
		t.Fatalf("disabled stealing still stole %d batches", len(out.steals))
	}
	if out.makespan != out.noStealMakespan {
		t.Errorf("disabled makespan %v ≠ no-steal %v", out.makespan, out.noStealMakespan)
	}
	// Rank 2 owns 8 of 32 shards at 3 ms each.
	if want := 24 * time.Millisecond; out.makespan != want {
		t.Errorf("makespan %v, want %v", out.makespan, want)
	}
}

// TestStealNeverWorse is the guard property: across seeded random costs,
// factors, and live sets, the stolen makespan never exceeds the no-steal
// one, stolen busy time conserves total work, and repeated runs are
// bit-identical (determinism).
func TestStealNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		live := make([]int, 0, n)
		for r := 0; r < n; r++ {
			if rng.Intn(4) > 0 || len(live) == 0 {
				live = append(live, r)
			}
		}
		deal := newShardDeal(DefaultVirtualShards, live)
		cost := make([]time.Duration, DefaultVirtualShards)
		bytes := make([]int64, DefaultVirtualShards)
		for s := range cost {
			if rng.Intn(8) == 0 {
				continue // empty shard this round
			}
			cost[s] = time.Duration(1+rng.Intn(2000)) * time.Microsecond
			bytes[s] = int64(rng.Intn(1 << 16))
		}
		factor := onesFactor(n)
		for r := range factor {
			if rng.Intn(3) == 0 {
				factor[r] = 1 + float64(rng.Intn(12))
			}
		}

		out := stealSchedule(deal, cost, bytes, factor, n, true)
		if out.makespan > out.noStealMakespan {
			t.Fatalf("trial %d: stolen makespan %v exceeds no-steal %v (live %v, factor %v)",
				trial, out.makespan, out.noStealMakespan, live, factor)
		}
		again := stealSchedule(deal, cost, bytes, factor, n, true)
		if out.makespan != again.makespan || !reflect.DeepEqual(out.steals, again.steals) ||
			!reflect.DeepEqual(out.busy, again.busy) {
			t.Fatalf("trial %d: steal schedule is not deterministic", trial)
		}
		// Every rank's busy time bounds the makespan, and no stolen shard
		// appears twice.
		seen := make(map[int]bool)
		for _, st := range out.steals {
			if seen[st.shard] {
				t.Fatalf("trial %d: shard %d stolen twice", trial, st.shard)
			}
			seen[st.shard] = true
		}
		for r, b := range out.busy {
			if b > out.makespan {
				t.Fatalf("trial %d: rank %d busy %v exceeds makespan %v", trial, r, b, out.makespan)
			}
		}
	}
}

// TestStealMatrix folds steals into the fabric exchange shape.
func TestStealMatrix(t *testing.T) {
	steals := []stealRec{
		{shard: 3, victim: 0, thief: 2, bytes: 100},
		{shard: 7, victim: 0, thief: 2, bytes: 50},
		{shard: 11, victim: 0, thief: 1, bytes: 25},
	}
	m := stealMatrix(steals, 3)
	if m[0][2] != 150 || m[0][1] != 25 {
		t.Errorf("matrix[0] = %v, want victim 0 → thief 2: 150, → thief 1: 25", m[0])
	}
	if m[1][0] != 0 && m[2][0] != 0 {
		t.Error("reverse flows populated")
	}
}

// BenchmarkStealScheduling measures one round's steal simulation at N=8
// with an 8× straggler — the per-round overhead stealing adds to the
// runtime's accounting path.
func BenchmarkStealScheduling(b *testing.B) {
	deal := newShardDeal(DefaultVirtualShards, liveAll(8))
	cost, bytes := uniformCosts(DefaultVirtualShards, time.Millisecond)
	factor := onesFactor(8)
	factor[0] = 8
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := stealSchedule(deal, cost, bytes, factor, 8, true)
		if len(out.steals) == 0 {
			b.Fatal("no steals")
		}
	}
}
