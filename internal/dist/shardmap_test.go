package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
)

// componentWorkload builds contigs in explicit groups: contigs of one
// group share candidate-read IDs (pairwise chained), so each group must
// resolve to exactly one connected component.
func componentWorkload(rng *rand.Rand, groups, perGroup int) []*locassm.CtgWithReads {
	const bases = "ACGT"
	randSeq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	var ctgs []*locassm.CtgWithReads
	id := int64(1)
	for g := 0; g < groups; g++ {
		for m := 0; m < perGroup; m++ {
			c := &locassm.CtgWithReads{ID: id, Seq: randSeq(150 + rng.Intn(300))}
			id += int64(1 + rng.Intn(5)) // sparse, unordered-looking IDs
			// Chain neighbours: contig m shares a read with contig m+1.
			if m > 0 {
				r := fmt.Sprintf("g%d/link%d", g, m-1)
				n := 80
				c.LeftReads = append(c.LeftReads, dna.Read{ID: r, Seq: randSeq(n), Qual: make([]byte, n)})
			}
			if m < perGroup-1 {
				r := fmt.Sprintf("g%d/link%d", g, m)
				n := 80
				c.RightReads = append(c.RightReads, dna.Read{ID: r, Seq: randSeq(n), Qual: make([]byte, n)})
			}
			// Plus private reads so weights differ.
			for j := 0; j < rng.Intn(4); j++ {
				n := 60 + rng.Intn(60)
				c.LeftReads = append(c.LeftReads, dna.Read{
					ID: fmt.Sprintf("g%d/m%d/p%d", g, m, j), Seq: randSeq(n), Qual: make([]byte, n)})
			}
			ctgs = append(ctgs, c)
		}
	}
	return ctgs
}

// TestComponentMapCoShardsComponents: every contig of a component lands on
// the same virtual shard, and the discovered component count matches the
// constructed groups.
func TestComponentMapCoShardsComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ctgs := componentWorkload(rng, 12, 5)
	m := newComponentShardMap(21, ctgs, DefaultVirtualShards)
	if m.count != 12 {
		t.Fatalf("found %d components, want 12", m.count)
	}
	compShard := make(map[int64]int)
	for _, c := range ctgs {
		comp := m.Component(c.ID)
		s := m.Shard(c.ID)
		if s < 0 || s >= DefaultVirtualShards {
			t.Fatalf("contig %d on shard %d out of range", c.ID, s)
		}
		if prev, ok := compShard[comp]; ok && prev != s {
			t.Errorf("component %d split across shards %d and %d", comp, prev, s)
		}
		compShard[comp] = s
	}
}

// TestComponentMapPureUnderPermutation: the component map is a pure
// function of the contig set — shuffling the input order changes neither
// component IDs nor shard placement. This is the property that keeps
// contigs and kernel launch lists bit-identical across rank counts.
func TestComponentMapPureUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ctgs := componentWorkload(rng, 10, 4)
	base := newComponentShardMap(21, ctgs, DefaultVirtualShards)

	for trial := 0; trial < 8; trial++ {
		shuffled := append([]*locassm.CtgWithReads(nil), ctgs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m := newComponentShardMap(21, shuffled, DefaultVirtualShards)
		for _, c := range ctgs {
			if m.Component(c.ID) != base.Component(c.ID) {
				t.Fatalf("trial %d: contig %d component flapped under permutation", trial, c.ID)
			}
			if m.Shard(c.ID) != base.Shard(c.ID) {
				t.Fatalf("trial %d: contig %d shard flapped under permutation", trial, c.ID)
			}
		}
	}
}

// TestComponentMapCanonicalNumbering: a component's ID is its smallest
// member contig ID.
func TestComponentMapCanonicalNumbering(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctgs := componentWorkload(rng, 8, 6)
	m := newComponentShardMap(21, ctgs, DefaultVirtualShards)
	smallest := make(map[int64]int64)
	for _, c := range ctgs {
		comp := m.Component(c.ID)
		if cur, ok := smallest[comp]; !ok || c.ID < cur {
			smallest[comp] = c.ID
		}
	}
	for comp, min := range smallest {
		if comp != min {
			t.Errorf("component %d: smallest member is %d", comp, min)
		}
	}
}

// TestComponentMapHashFallback: contigs outside the build set fall back to
// the hash shard so the map stays total.
func TestComponentMapHashFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ctgs := componentWorkload(rng, 4, 3)
	m := newComponentShardMap(21, ctgs, DefaultVirtualShards)
	const unknown = int64(1 << 40)
	if got, want := m.Shard(unknown), VirtualShard(unknown, DefaultVirtualShards); got != want {
		t.Errorf("unknown contig on shard %d, want hash shard %d", got, want)
	}
	if got := m.Component(unknown); got != unknown {
		t.Errorf("unknown contig in component %d, want its own ID", got)
	}
}

// TestComponentMapLPTBalance: affinity-aware LPT bounds the heaviest shard
// at the mean load plus three times the heaviest component (plain greedy
// gives mean + max; honoring a home shard within 2×max slack adds at most
// two more component weights).
func TestComponentMapLPTBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		ctgs := componentWorkload(rng, 30+rng.Intn(40), 1+rng.Intn(6))
		m := newComponentShardMap(21, ctgs, DefaultVirtualShards)

		compWeight := make(map[int64]int64)
		for _, c := range ctgs {
			compWeight[m.Component(c.ID)] += ctgWeight(c)
		}
		var maxComp int64
		for _, w := range compWeight {
			if w > maxComp {
				maxComp = w
			}
		}
		if m.maxLoad > m.meanLoad+3*maxComp {
			t.Errorf("trial %d: max shard load %d exceeds mean %d + 3×max component %d",
				trial, m.maxLoad, m.meanLoad, maxComp)
		}
		// The packing covers all weight: Σ shard loads == Σ component weights.
		var total int64
		for _, w := range compWeight {
			total += w
		}
		if m.meanLoad > total/int64(DefaultVirtualShards)+1 {
			t.Errorf("trial %d: mean load %d inconsistent with total weight %d", trial, m.meanLoad, total)
		}
	}
}

// TestShardPolicyValidation: unknown policies are rejected, known ones and
// the empty default pass.
func TestShardPolicyValidation(t *testing.T) {
	for _, p := range []string{"", ShardHash, ShardComponent} {
		cfg := testDistConfig(2)
		cfg.ShardPolicy = p
		cfg = cfg.withDefaults()
		if err := cfg.Validate(); err != nil {
			t.Errorf("policy %q rejected: %v", p, err)
		}
	}
	cfg := testDistConfig(2)
	cfg.ShardPolicy = "round-robin"
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err == nil {
		t.Error("unknown shard policy accepted")
	}
}
