package dist

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"mhm2sim/internal/faults"
)

// chaosConfig builds a distributed config with a seeded fault plan.
func chaosConfig(t *testing.T, ranks int, spec string, seed int64) Config {
	t.Helper()
	cfg := testDistConfig(ranks)
	// Generous retry budget so colliding drop/corrupt events on one
	// exchange stay recoverable; the exhaustion path has its own test.
	cfg.Fabric.MaxRetries = 10
	plan, err := faults.NewPlan(spec, seed, ranks, len(cfg.Pipeline.Rounds))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	return cfg
}

// TestChaosInvariant is the headline robustness guarantee: any injected
// fault schedule that does not exhaust the retry budgets yields contigs and
// scaffolds bit-identical to the fault-free single-rank run, with the
// corresponding recovery counters visible in the report.
func TestChaosInvariant(t *testing.T) {
	pairs := buildPairs(t)
	base, _, err := Run(pairs, testDistConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Contigs) == 0 {
		t.Fatal("fault-free baseline produced no contigs")
	}

	schedules := []struct {
		name  string
		spec  string
		seed  int64
		check func(t *testing.T, rep *Report)
	}{
		{"rank-crash", "rank-crash=1", 42, func(t *testing.T, rep *Report) {
			if rep.Recovery.Evictions == 0 {
				t.Error("crash scheduled but no eviction recorded")
			}
			if rep.Recovery.RecoveredBytes == 0 {
				t.Error("eviction re-dealt shards but recovered no bytes")
			}
			alive := 0
			for _, rs := range rep.PerRank {
				if rs.Alive {
					alive++
				} else if rs.EvictedRound < 0 {
					t.Errorf("rank %d dead without an eviction round", rs.Rank)
				}
			}
			if alive != rep.Ranks-rep.Recovery.Evictions {
				t.Errorf("%d ranks alive after %d evictions of %d", alive, rep.Recovery.Evictions, rep.Ranks)
			}
		}},
		{"device-oom", "oom=1", 42, func(t *testing.T, rep *Report) {
			if rep.Recovery.DeviceFallbacks == 0 {
				t.Error("device fault scheduled but no CPU fallback recorded")
			}
		}},
		{"fabric-drop", "drop=2,corrupt=1", 42, func(t *testing.T, rep *Report) {
			if rep.Recovery.ExchangeRetries == 0 {
				t.Error("drops scheduled but no exchange retries recorded")
			}
			if rep.Recovery.RetryTime <= 0 {
				t.Error("retries recorded but no modeled retry time")
			}
		}},
	}

	for _, sc := range schedules {
		for _, n := range []int{2, 4, 8} {
			cfg := chaosConfig(t, n, sc.spec, sc.seed)
			res, rep, err := Run(pairs, cfg)
			if err != nil {
				t.Fatalf("%s ranks=%d (%s): %v", sc.name, n, cfg.Faults, err)
			}
			if !reflect.DeepEqual(res.Contigs, base.Contigs) {
				t.Errorf("%s ranks=%d: contigs differ from fault-free run", sc.name, n)
			}
			if !reflect.DeepEqual(res.Scaffolds, base.Scaffolds) {
				t.Errorf("%s ranks=%d: scaffolds differ from fault-free run", sc.name, n)
			}
			sc.check(t, rep)
			if !rep.Recovery.Any() {
				t.Errorf("%s ranks=%d: no recovery machinery fired", sc.name, n)
			}
		}
	}
}

// TestChaosKernelAbortResplits: injected kernel aborts surface as
// recoverable table faults, so the batch driver re-splits and the final
// assembly is unchanged.
func TestChaosKernelAbortResplits(t *testing.T) {
	pairs := buildPairs(t)
	base, _, err := Run(pairs, testDistConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(pairs, chaosConfig(t, 4, "kernel-abort=2", 7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovery.BatchResplits == 0 {
		t.Error("kernel aborts scheduled but no batch re-splits recorded")
	}
	if !reflect.DeepEqual(res.Contigs, base.Contigs) {
		t.Error("contigs differ after kernel-abort recovery")
	}
}

// TestChaosStragglerAndDelaySlowOnly: stragglers and latency spikes change
// modeled time, never results.
func TestChaosStragglerAndDelaySlowOnly(t *testing.T) {
	pairs := buildPairs(t)
	clean, cleanRep, err := Run(pairs, testDistConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := Run(pairs, chaosConfig(t, 4, "straggler=1,delay=1", 9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Contigs, clean.Contigs) {
		t.Error("contigs differ under straggler/delay injection")
	}
	if rep.Recovery.Stragglers == 0 {
		t.Error("straggler scheduled but not recorded")
	}
	if rep.Wall <= cleanRep.Wall {
		t.Errorf("injected slowdowns did not slow the modeled wall: %v vs %v", rep.Wall, cleanRep.Wall)
	}
}

// TestChaosRetriesExhausted: an exchange failing past the retry budget
// surfaces ErrUnrecoverable from Run.
func TestChaosRetriesExhausted(t *testing.T) {
	cfg := testDistConfig(2)
	cfg.Fabric.MaxRetries = 1
	cfg.Faults = &faults.Plan{Ranks: 2, Rounds: 2, Events: []faults.Event{
		{Kind: faults.FabricDrop, Exchange: 1, Times: 3},
	}}
	_, _, err := Run(buildPairs(t), cfg)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("exhausted retries returned %v, want ErrUnrecoverable", err)
	}
}

// TestChaosPlanShapeRejected: plans built for a different shape fail
// validation instead of silently misfiring.
func TestChaosPlanShapeRejected(t *testing.T) {
	cfg := testDistConfig(4)
	plan, err := faults.NewPlan("rank-crash=1", 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("plan for 8 ranks accepted by a 4-rank run")
	}
	plan, err = faults.NewPlan("drop=1", 1, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("plan for 5 rounds accepted by a 2-round run")
	}
}

// TestFabricPartialDefaults pins the per-field defaulting: overriding one
// fabric knob must not discard the defaults of the others (the old
// whole-struct zero compare replaced partially-set configs wholesale).
func TestFabricPartialDefaults(t *testing.T) {
	cfg := testDistConfig(2)
	cfg.Fabric = FabricConfig{BandwidthGBps: 25}
	got := cfg.withDefaults().Fabric
	if got.BandwidthGBps != 25 {
		t.Errorf("override lost: bandwidth %g", got.BandwidthGBps)
	}
	if got.LatencyPerMsg != DefaultLatencyPerMsg {
		t.Errorf("latency %v, want default %v", got.LatencyPerMsg, DefaultLatencyPerMsg)
	}
	if got.AggBufferBytes != DefaultAggBufferBytes {
		t.Errorf("agg buffer %d, want default %d", got.AggBufferBytes, DefaultAggBufferBytes)
	}
	if got.ExchangeTimeout != DefaultExchangeTimeout || got.MaxRetries != DefaultMaxRetries ||
		got.RetryBackoff != DefaultRetryBackoff {
		t.Errorf("retry knobs not defaulted: %+v", got)
	}
	// The partially-set config must validate and run through NewFabric too.
	if _, err := NewFabric(2, got); err != nil {
		t.Errorf("defaulted partial config rejected: %v", err)
	}
	// Explicit non-default values survive defaulting untouched.
	cfg.Fabric = FabricConfig{
		LatencyPerMsg:   time.Microsecond,
		BandwidthGBps:   1,
		AggBufferBytes:  1 << 10,
		ExchangeTimeout: time.Millisecond,
		MaxRetries:      7,
		RetryBackoff:    time.Microsecond,
	}
	if got := cfg.withDefaults().Fabric; got != cfg.Fabric {
		t.Errorf("fully-set config mutated by defaulting: %+v", got)
	}
}

// TestChaosBudgetOOMSpill is the budget-mode OOM story: with a memory
// budget set, an oom fault plan must not poison devices and trigger the
// device→host fallback — the counting budget shrinks and the pass plan
// spills instead. Contigs stay bit-identical to the fault-free budget run
// for every rank count, and the report records the re-plan.
func TestChaosBudgetOOMSpill(t *testing.T) {
	pairs := buildPairs(t)
	budget := testDistConfig(1)
	budget.Pipeline.MemBudget = 8 << 20
	base, baseRep, err := Run(pairs, budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Contigs) == 0 {
		t.Fatal("fault-free budget baseline produced no contigs")
	}
	if baseRep.Recovery.OOMReplans != 0 || baseRep.Recovery.SpillPasses != 0 {
		t.Fatalf("fault-free run recorded degradation: %+v", baseRep.Recovery)
	}

	for _, n := range []int{2, 4, 8} {
		cfg := chaosConfig(t, n, "oom=2", 42)
		cfg.Pipeline.MemBudget = 8 << 20
		res, rep, err := Run(pairs, cfg)
		if err != nil {
			t.Fatalf("ranks=%d (%s): %v", n, cfg.Faults, err)
		}
		if !reflect.DeepEqual(res.Contigs, base.Contigs) {
			t.Errorf("ranks=%d: contigs differ from fault-free budget run", n)
		}
		if !reflect.DeepEqual(res.Scaffolds, base.Scaffolds) {
			t.Errorf("ranks=%d: scaffolds differ from fault-free budget run", n)
		}
		if rep.Recovery.OOMReplans == 0 {
			t.Error("oom scheduled but no budget re-plan recorded")
		}
		if rep.Recovery.SpillPasses == 0 {
			t.Error("budget re-plan added no spill passes")
		}
		if rep.Recovery.DeviceFallbacks != 0 {
			t.Errorf("budget mode still fell back device→host (%d fallbacks)", rep.Recovery.DeviceFallbacks)
		}
		if !rep.Recovery.Any() {
			t.Error("recovery counters empty despite absorbed OOM events")
		}
	}
}
