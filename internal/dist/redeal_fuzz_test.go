package dist

import (
	"fmt"
	"testing"
)

// FuzzShardRedeal drives the survivor re-deal with arbitrary rank counts,
// death sets, and full elastic membership schedules: ownership must stay a
// deterministic, collision-free partition of every virtual shard over the
// live ranks at every epoch — no shard dealt to a dead or absent rank,
// none orphaned, none double-owned, balanced round-robin, and identical to
// the static deal when nobody died. opSeq drives a Membership through an
// arbitrary interleaving of joins and evictions on top of the death set.
func FuzzShardRedeal(f *testing.F) {
	f.Add(uint8(8), uint16(0), uint8(0), uint32(0))
	f.Add(uint8(8), uint16(0b0110), uint8(2), uint32(0b1011))
	f.Add(uint8(2), uint16(1), uint8(4), uint32(0xDEAD))
	f.Add(uint8(16), uint16(0xFFFE), uint8(1), uint32(1))
	f.Add(uint8(3), uint16(0b101), uint8(7), uint32(0xCAFEF00D))
	f.Fuzz(func(t *testing.T, ranks uint8, deadMask uint16, joins uint8, opSeq uint32) {
		n := int(ranks%16) + 1
		var live []int
		for r := 0; r < n; r++ {
			if deadMask&(1<<r) == 0 {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			// The runtime guarantees at least one survivor; mirror that.
			live = []int{n - 1}
		}
		liveSet := make(map[int]bool, len(live))
		for _, r := range live {
			liveSet[r] = true
		}

		deal := newShardDeal(DefaultVirtualShards, live)
		perRank := make(map[int]int)
		owners := make([]int, DefaultVirtualShards)
		for s := 0; s < DefaultVirtualShards; s++ {
			r := deal.rankOf(s)
			if !liveSet[r] {
				t.Fatalf("shard %d dealt to dead rank %d (live %v)", s, r, live)
			}
			owners[s] = r
			perRank[r]++
		}

		// Deterministic: the same live set always yields the same deal.
		again := newShardDeal(DefaultVirtualShards, live)
		for s := 0; s < DefaultVirtualShards; s++ {
			if again.rankOf(s) != owners[s] {
				t.Fatalf("shard %d ownership flapped: %d vs %d", s, owners[s], again.rankOf(s))
			}
		}

		// Collision-free partition of the contig space: a contig's owner is
		// exactly its shard's owner.
		for id := int64(0); id < 256; id++ {
			want := owners[VirtualShard(id, DefaultVirtualShards)]
			if got := deal.ownerRank(id); got != want {
				t.Fatalf("contig %d owned by %d, its shard by %d", id, got, want)
			}
		}

		// Balanced: round-robin over survivors deals ⌊V/L⌋ or ⌈V/L⌉ shards
		// per live rank.
		lo := DefaultVirtualShards / len(live)
		hi := lo
		if DefaultVirtualShards%len(live) != 0 {
			hi++
		}
		for _, r := range live {
			if c := perRank[r]; c < lo || c > hi {
				t.Fatalf("rank %d holds %d shards, want %d..%d (live %v)", r, c, lo, hi, live)
			}
		}

		// With every rank alive the deal reduces to the static s mod n one.
		if len(live) == n {
			for s := 0; s < DefaultVirtualShards; s++ {
				if owners[s] != s%n {
					t.Fatalf("full live set: shard %d on rank %d, want %d", s, owners[s], s%n)
				}
			}
		}

		// Read homes land on live ranks too.
		for i := 0; i < 64; i++ {
			if r := deal.readHome(fmt.Sprintf("read%d/1", i)); !liveSet[r] {
				t.Fatalf("read homed on dead rank %d", r)
			}
		}

		// Membership schedule: start from the full initial rank set with
		// reserved capacity for the fuzzed joins, then replay an arbitrary
		// opSeq-driven interleaving of joins and evictions. The epoch
		// invariant must hold after every single change: the cached deal
		// partitions every shard over exactly the live set.
		capacity := n + int(joins%8)
		m, err := NewMembership(n, capacity, DefaultVirtualShards)
		if err != nil {
			t.Fatal(err)
		}
		checkEpoch := func(step int) {
			aliveSet := make(map[int]bool)
			for _, r := range m.Live() {
				if r < 0 || r >= capacity {
					t.Fatalf("step %d: live rank %d outside capacity %d", step, r, capacity)
				}
				if aliveSet[r] {
					t.Fatalf("step %d: rank %d listed live twice", step, r)
				}
				aliveSet[r] = true
			}
			d := m.Deal()
			per := make(map[int]int)
			for s := 0; s < DefaultVirtualShards; s++ {
				owner := d.rankOf(s)
				if !aliveSet[owner] {
					t.Fatalf("step %d: shard %d dealt to non-live rank %d (live %v)",
						step, s, owner, m.Live())
				}
				per[owner]++
			}
			// Every shard got exactly one owner above (rankOf is total), so
			// orphan-freedom reduces to the per-rank counts summing to V and
			// staying balanced.
			lo := DefaultVirtualShards / len(m.Live())
			hi := lo
			if DefaultVirtualShards%len(m.Live()) != 0 {
				hi++
			}
			total := 0
			for _, r := range m.Live() {
				c := per[r]
				total += c
				if c < lo || c > hi {
					t.Fatalf("step %d: rank %d holds %d shards, want %d..%d", step, r, c, lo, hi)
				}
			}
			if total != DefaultVirtualShards {
				t.Fatalf("step %d: %d shards owned, want %d", step, total, DefaultVirtualShards)
			}
		}
		checkEpoch(0)

		nextJoin := n
		seq := opSeq
		for step := 1; step <= 16 && seq != 0; step++ {
			epoch := m.Epoch()
			if seq&1 == 1 && nextJoin < capacity {
				if err := m.Join(nextJoin, step); err != nil {
					t.Fatalf("step %d: join rank %d: %v", step, nextJoin, err)
				}
				nextJoin++
			} else if m.LiveCount() > 1 {
				// Evict the lowest live rank, deterministically.
				if err := m.Evict(m.Live()[0], step); err != nil {
					t.Fatalf("step %d: evict: %v", step, err)
				}
			} else {
				seq >>= 1
				continue
			}
			if m.Epoch() != epoch+1 {
				t.Fatalf("step %d: epoch went %d → %d, want +1", step, epoch, m.Epoch())
			}
			checkEpoch(step)
			seq >>= 1
		}
	})
}
