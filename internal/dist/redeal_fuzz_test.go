package dist

import (
	"fmt"
	"testing"
)

// FuzzShardRedeal drives the survivor re-deal with arbitrary rank counts
// and death sets: ownership must stay a deterministic, collision-free
// partition of every virtual shard over the live ranks — no shard dealt to
// a dead rank, none orphaned, balanced round-robin, and identical to the
// static deal when nobody died.
func FuzzShardRedeal(f *testing.F) {
	f.Add(uint8(8), uint16(0))
	f.Add(uint8(8), uint16(0b0110))
	f.Add(uint8(2), uint16(1))
	f.Add(uint8(16), uint16(0xFFFE))
	f.Add(uint8(3), uint16(0b101))
	f.Fuzz(func(t *testing.T, ranks uint8, deadMask uint16) {
		n := int(ranks%16) + 1
		var live []int
		for r := 0; r < n; r++ {
			if deadMask&(1<<r) == 0 {
				live = append(live, r)
			}
		}
		if len(live) == 0 {
			// The runtime guarantees at least one survivor; mirror that.
			live = []int{n - 1}
		}
		liveSet := make(map[int]bool, len(live))
		for _, r := range live {
			liveSet[r] = true
		}

		deal := newShardDeal(DefaultVirtualShards, live)
		perRank := make(map[int]int)
		owners := make([]int, DefaultVirtualShards)
		for s := 0; s < DefaultVirtualShards; s++ {
			r := deal.rankOf(s)
			if !liveSet[r] {
				t.Fatalf("shard %d dealt to dead rank %d (live %v)", s, r, live)
			}
			owners[s] = r
			perRank[r]++
		}

		// Deterministic: the same live set always yields the same deal.
		again := newShardDeal(DefaultVirtualShards, live)
		for s := 0; s < DefaultVirtualShards; s++ {
			if again.rankOf(s) != owners[s] {
				t.Fatalf("shard %d ownership flapped: %d vs %d", s, owners[s], again.rankOf(s))
			}
		}

		// Collision-free partition of the contig space: a contig's owner is
		// exactly its shard's owner.
		for id := int64(0); id < 256; id++ {
			want := owners[VirtualShard(id, DefaultVirtualShards)]
			if got := deal.ownerRank(id); got != want {
				t.Fatalf("contig %d owned by %d, its shard by %d", id, got, want)
			}
		}

		// Balanced: round-robin over survivors deals ⌊V/L⌋ or ⌈V/L⌉ shards
		// per live rank.
		lo := DefaultVirtualShards / len(live)
		hi := lo
		if DefaultVirtualShards%len(live) != 0 {
			hi++
		}
		for _, r := range live {
			if c := perRank[r]; c < lo || c > hi {
				t.Fatalf("rank %d holds %d shards, want %d..%d (live %v)", r, c, lo, hi, live)
			}
		}

		// With every rank alive the deal reduces to the static s mod n one.
		if len(live) == n {
			for s := 0; s < DefaultVirtualShards; s++ {
				if owners[s] != s%n {
					t.Fatalf("full live set: shard %d on rank %d, want %d", s, owners[s], s%n)
				}
			}
		}

		// Read homes land on live ranks too.
		for i := 0; i < 64; i++ {
			if r := deal.readHome(fmt.Sprintf("read%d/1", i)); !liveSet[r] {
				t.Fatalf("read homed on dead rank %d", r)
			}
		}
	})
}
