// Component-partitioned sharding: connected components of the round's
// contig graph become the unit of virtual-shard ownership.
//
// The hash shard map scatters every component's contigs across all ranks,
// so each round pays an all-to-all read exchange and a full contig
// allgather. But metagenome de Bruijn graphs decompose into many
// disconnected components — one or a few per organism in communities
// without conserved shared sequence (the "soil metagenome" regime) — and a
// whole component can live on one rank: its candidate reads route locally,
// and its extended contigs need no replication because no contig outside
// the component can ever share a read or a graph edge with them. This file
// builds that partition deterministically and packs it onto the fixed
// virtual shards with LPT (longest-processing-time) bin packing so shards
// stay balanced.
package dist

import (
	"sort"
	"strings"

	"mhm2sim/internal/dbg"
	"mhm2sim/internal/dna"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/murmur"
)

// Seeds of the component link-key hash spaces, distinct from the shard and
// read-home seeds so key collisions across spaces are impossible to
// construct accidentally.
const (
	compReadSeed = 0x636f6d70 // "comp": candidate-read support links
	compOvlpSeed = 0x6f766c70 // "ovlp": (k−1)-base end-window links
	compSigSeed  = 0x73696721 // "sig!": component min-hash signatures
)

// sigMerLen is the fixed window of the component signature sketch. It is
// deliberately independent of the round's k: the signature must identify
// the *organism* a component covers, not the round's graph, so that the
// same community member hashes to the same home shard in every contigging
// round.
const sigMerLen = 21

// seqSigKey is the min-hash sketch of one contig sequence: the minimum
// canonical sigMerLen-mer hash over every window. Two contigs covering the
// same genomic region — this round's and the next round's extension of it
// — almost surely contain the region's minimal window and so sketch to the
// same key, which is what keeps component homes stable across rounds.
func seqSigKey(seq []byte) uint64 {
	if len(seq) < sigMerLen {
		return murmur.Hash64A(seq, compSigSeed)
	}
	min := ^uint64(0)
	for i := 0; i+sigMerLen <= len(seq); i++ {
		if h := windowSigKey(seq[i : i+sigMerLen]); h < min {
			min = h
		}
	}
	return min
}

// windowSigKey hashes one signature window in canonical orientation, with
// a raw-byte fallback for ambiguous bases.
func windowSigKey(win []byte) uint64 {
	km, ok := kmer.FromBytes(win, sigMerLen)
	if !ok {
		return murmur.Hash64A(win, compSigSeed)
	}
	canon, _ := km.Canonical(sigMerLen)
	return canon.HashK(sigMerLen, compSigSeed)
}

// readLinkKey hashes a candidate read's identity into a component link
// key. The ".merged" suffix is trimmed the way ReadHomeRank trims it, so a
// merged read links the same contigs its originating pair would.
func readLinkKey(id string) uint64 {
	return murmur.Hash64A([]byte(strings.TrimSuffix(id, ".merged")), compReadSeed)
}

// windowLinkKey hashes a (k−1)-base end window in canonical orientation:
// two contigs that adjoin in the de Bruijn graph overlap by exactly k−1
// bases, so the suffix window of one equals the prefix window of the other
// (possibly reverse-complemented). Windows with ambiguous bases fall back
// to a raw-byte hash — they still self-match, which is all linking needs.
func windowLinkKey(seq []byte, w int) uint64 {
	if w > kmer.MaxK {
		w = kmer.MaxK
	}
	km, ok := kmer.FromBytes(seq, w)
	if !ok {
		return murmur.Hash64A(seq[:w], compOvlpSeed)
	}
	canon, _ := km.Canonical(w)
	return canon.HashK(w, compOvlpSeed)
}

// roundComponents runs the connected-components pass over one round's
// local-assembly workload: contigs join one component when they share a
// candidate read (read support — the traffic that matters for the
// exchange) or a canonical (k−1)-base end window (dBG adjacency). The
// result maps every contig ID to its component ID — canonically the
// smallest member contig ID — and is a pure function of (k, ctgs):
// identical for any rank count, schedule, or input permutation.
func roundComponents(k int, ctgs []*locassm.CtgWithReads) map[int64]int64 {
	b := dbg.NewComponentBuilder()
	w := k - 1
	for _, c := range ctgs {
		b.Add(c.ID)
		for i := range c.LeftReads {
			b.Link(c.ID, readLinkKey(c.LeftReads[i].ID))
		}
		for i := range c.RightReads {
			b.Link(c.ID, readLinkKey(c.RightReads[i].ID))
		}
		if len(c.Seq) >= w && w > 0 {
			b.Link(c.ID, windowLinkKey(c.Seq[:w], w))
			b.Link(c.ID, windowLinkKey(c.Seq[len(c.Seq)-w:], w))
		}
	}
	return b.Components()
}

// componentShardMap assigns whole components to virtual shards. Built once
// per round from the global workload, it is deterministic and independent
// of the rank count, so the per-shard batch plans — and therefore kernel
// launch lists — stay bit-identical across N under this policy exactly as
// under hashing.
type componentShardMap struct {
	shards int
	comp   map[int64]int64 // ctgID → componentID (smallest member)
	place  map[int64]int   // componentID → virtual shard
	count  int             // number of components this round
	// maxLoad/meanLoad expose the LPT balance for tests and the report.
	maxLoad, meanLoad int64
}

// ctgWeight is the size-aware packing weight of one contig: its sequence
// plus the candidate-read bytes it drags along — a proxy for both the
// assembly work and the traffic of owning it.
func ctgWeight(c *locassm.CtgWithReads) int64 {
	w := int64(len(c.Seq) + recordOverheadBytes)
	for i := range c.LeftReads {
		w += readMsgBytes(&c.LeftReads[i])
	}
	for i := range c.RightReads {
		w += readMsgBytes(&c.RightReads[i])
	}
	return w
}

// newComponentShardMap discovers the round's components and packs them
// onto the virtual shards with affinity-aware LPT: components sorted by
// weight descending (ties broken by component ID ascending) each go to the
// currently lightest shard (ties to the lowest index) — unless the
// component's *home* shard is within slack of the lightest, in which case
// home wins. The home is the min-hash sketch of the component's contig
// sequences (seqSigKey): the same organism's components contain the same
// genomic minimum window in every contigging round, so the home shard is
// stable across rounds even though contig IDs and component boundaries are
// not. That affinity is what lets resident reads stay put between rounds
// instead of re-migrating with every re-packing. The slack keeps the
// greedy bound: every shard's final load is ≤ mean + 3× the heaviest
// component. The whole procedure remains a pure, deterministic function of
// (k, ctgs) — never of N or residences.
func newComponentShardMap(k int, ctgs []*locassm.CtgWithReads, shards int) *componentShardMap {
	comp := roundComponents(k, ctgs)
	weight := make(map[int64]int64)
	sig := make(map[int64]uint64)
	minSig := func(id int64, key uint64) {
		if s, ok := sig[id]; !ok || key < s {
			sig[id] = key
		}
	}
	for _, c := range ctgs {
		id := comp[c.ID]
		weight[id] += ctgWeight(c)
		minSig(id, seqSigKey(c.Seq))
	}

	ids := make([]int64, 0, len(weight))
	var total, maxW int64
	for id, w := range weight {
		ids = append(ids, id)
		total += w
		if w > maxW {
			maxW = w
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := weight[ids[i]], weight[ids[j]]
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})

	load := make([]int64, shards)
	place := make(map[int64]int, len(ids))
	for _, id := range ids {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		if s, ok := sig[id]; ok {
			if home := int(s % uint64(shards)); load[home] <= load[best]+2*maxW {
				best = home
			}
		}
		place[id] = best
		load[best] += weight[id]
	}

	m := &componentShardMap{
		shards: shards,
		comp:   comp,
		place:  place,
		count:  len(ids),
	}
	for _, l := range load {
		if l > m.maxLoad {
			m.maxLoad = l
		}
	}
	if shards > 0 {
		m.meanLoad = total / int64(shards)
	}
	return m
}

// Shard returns the virtual shard owning the contig's whole component.
// Contigs outside the build set (none in a normal round) fall back to the
// hash map so the partition stays total.
func (m *componentShardMap) Shard(id int64) int {
	if c, ok := m.comp[id]; ok {
		return m.place[c]
	}
	return VirtualShard(id, m.shards)
}

// Policy implements ShardMap.
func (m *componentShardMap) Policy() string { return ShardComponent }

// Component returns the component ID of a contig (hash fallback returns
// the contig's own ID) — exported to tests through component_test helpers.
func (m *componentShardMap) Component(id int64) int64 {
	if c, ok := m.comp[id]; ok {
		return c
	}
	return id
}

// migrationMatrix models the component policy's read routing: instead of
// re-shipping every candidacy from its hash home each round (MHM2's
// aggregating stores), reads live with their component. Each candidate
// read is shipped at most once per round, from its current residence to
// the rank owning its component — every contig it is a candidate for
// shares that component (a shared read is a component link), so one
// shipment serves all its candidacies. Reads already resident with their
// owner contribute rank-local bytes, never the wire; the residence map is
// updated in place so the next round only pays for components whose
// ownership moved.
func migrationMatrix(ctgs []*locassm.CtgWithReads, smap ShardMap, deal *shardDeal,
	ranks int, residence map[string]int, mem *Membership) [][]int64 {
	matrix := newMatrix(ranks)
	shipped := make(map[string]bool)
	route := func(r *dna.Read, dst int) {
		id := strings.TrimSuffix(r.ID, ".merged")
		if shipped[id] {
			return
		}
		shipped[id] = true
		src, ok := residence[id]
		if !ok || !mem.Alive(src) {
			// First appearance (or the old home crashed): the read comes
			// from its scatter home among the live ranks, where the
			// replicated copy survives.
			src = deal.readHome(id)
		}
		matrix[src][dst] += readMsgBytes(r)
		residence[id] = dst
	}
	for _, c := range ctgs {
		dst := deal.rankOf(smap.Shard(c.ID))
		for i := range c.LeftReads {
			route(&c.LeftReads[i], dst)
		}
		for i := range c.RightReads {
			route(&c.RightReads[i], dst)
		}
	}
	return matrix
}

// localIndexMatrix replaces the full contig allgather under component
// sharding: whole components are co-located with their candidate reads,
// and components are closed under both read support and dBG adjacency (a
// shared read or end window is precisely a component link), so no contig
// outside a component can ever need its extended sequence — cross-
// component contigs do not exist by construction, and the owner only
// refreshes its component-local alignment index. Every byte is rank-local
// (src == dst), which the fabric counts but never puts on the wire; the
// next round's cross-component discovery is paid for where it really
// happens, in that round's read migration.
func localIndexMatrix(ctgs []*locassm.CtgWithReads, results []locassm.Result,
	smap ShardMap, deal *shardDeal, ranks int) [][]int64 {
	matrix := newMatrix(ranks)
	for i, c := range ctgs {
		owner := deal.rankOf(smap.Shard(c.ID))
		extended := len(results[i].LeftExt) + len(c.Seq) + len(results[i].RightExt)
		matrix[owner][owner] += int64(extended + recordOverheadBytes)
	}
	return matrix
}
