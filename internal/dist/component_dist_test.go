package dist

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/synth"
)

// runDistShard runs the small test preset under an explicit shard policy.
func runDistShard(t *testing.T, pairs []dna.PairedRead, ranks int, policy string) (contigs, scaffolds interface{}, rep *Report) {
	t.Helper()
	cfg := testDistConfig(ranks)
	cfg.ShardPolicy = policy
	res, rep, err := Run(pairs, cfg)
	if err != nil {
		t.Fatalf("dist.Run ranks=%d shard=%s: %v", ranks, policy, err)
	}
	return res.Contigs, res.Scaffolds, rep
}

// TestDistComponentMatchesSingleRank: the component policy preserves the
// core determinism guarantee — contigs and scaffolds bit-identical to the
// single-rank run for N ∈ {2,3,8}, and identical to the hash policy's
// output too (the shard map relocates work, never changes it).
func TestDistComponentMatchesSingleRank(t *testing.T) {
	pairs := buildPairs(t)
	baseC, baseS, _ := runDistShard(t, pairs, 1, ShardComponent)
	hashC, hashS, _ := runDistShard(t, pairs, 3, ShardHash)
	if !reflect.DeepEqual(baseC, hashC) || !reflect.DeepEqual(baseS, hashS) {
		t.Fatal("hash-policy output differs from single-rank component run")
	}
	for _, n := range []int{2, 3, 8} {
		ctgs, scaffs, rep := runDistShard(t, pairs, n, ShardComponent)
		if !reflect.DeepEqual(ctgs, baseC) {
			t.Errorf("ranks=%d: component-policy contigs differ from single-rank run", n)
		}
		if !reflect.DeepEqual(scaffs, baseS) {
			t.Errorf("ranks=%d: component-policy scaffolds differ from single-rank run", n)
		}
		if rep.ShardPolicy != ShardComponent {
			t.Errorf("ranks=%d: report policy %q", n, rep.ShardPolicy)
		}
		if len(rep.Components) != rep.Rounds {
			t.Errorf("ranks=%d: %d component counts for %d rounds", n, len(rep.Components), rep.Rounds)
		}
		for r, c := range rep.Components {
			if c <= 0 {
				t.Errorf("ranks=%d round %d: %d components", n, r, c)
			}
		}
		if rep.ComponentPassTime <= 0 {
			t.Errorf("ranks=%d: no component pass time recorded", n)
		}
	}
}

// TestDistComponentKernelListsMatchHash: the kernel launch lists — the
// unit of batch planning — are a function of the shard map only, so they
// are identical across rank counts under the component policy (though
// legitimately different from the hash policy's lists, which pack shards
// differently).
func TestDistComponentKernelListsMatchHash(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testDistConfig(1)
	cfg.ShardPolicy = ShardComponent
	base, _, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Work.GPUKernels) == 0 {
		t.Fatal("baseline produced no kernels")
	}
	for _, n := range []int{2, 8} {
		cfg := testDistConfig(n)
		cfg.ShardPolicy = ShardComponent
		res, _, err := Run(pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Work.GPUKernels, base.Work.GPUKernels) {
			t.Errorf("ranks=%d: component-policy kernel list differs from single-rank run", n)
		}
	}
}

// TestDistComponentChaos: the chaos invariant holds under component
// sharding — a recoverable fault schedule still yields bit-identical
// output, because the eviction re-deal moves whole shards, and shards hold
// whole components.
func TestDistComponentChaos(t *testing.T) {
	pairs := buildPairs(t)
	baseC, baseS, _ := runDistShard(t, pairs, 1, ShardComponent)
	for _, spec := range []string{"rank-crash=1", "oom=1", "drop=2,corrupt=1"} {
		for _, n := range []int{2, 4, 8} {
			cfg := chaosConfig(t, n, spec, 42)
			cfg.ShardPolicy = ShardComponent
			res, rep, err := Run(pairs, cfg)
			if err != nil {
				t.Fatalf("%s ranks=%d: %v", spec, n, err)
			}
			if !reflect.DeepEqual(res.Contigs, baseC) {
				t.Errorf("%s ranks=%d: contigs differ from fault-free run", spec, n)
			}
			if !reflect.DeepEqual(res.Scaffolds, baseS) {
				t.Errorf("%s ranks=%d: scaffolds differ from fault-free run", spec, n)
			}
			if !rep.Recovery.Any() {
				t.Errorf("%s ranks=%d: no recovery machinery fired", spec, n)
			}
		}
	}
}

// TestComponentRedealMovesWholeComponents: for any live set, every contig
// of a component maps to the same rank — ownership moves component-wise
// under eviction because the re-deal moves shards and shards hold whole
// components.
func TestComponentRedealMovesWholeComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ctgs := componentWorkload(rng, 15, 4)
	m := newComponentShardMap(21, ctgs, DefaultVirtualShards)
	liveSets := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{0, 1, 2, 3, 5, 6, 7}, // rank 4 crashed
		{1, 3, 5},             // heavy attrition
		{2},                   // sole survivor
	}
	for _, live := range liveSets {
		deal := newShardDeal(DefaultVirtualShards, live)
		compRank := make(map[int64]int)
		for _, c := range ctgs {
			comp := m.Component(c.ID)
			r := deal.rankOf(m.Shard(c.ID))
			if prev, ok := compRank[comp]; ok && prev != r {
				t.Fatalf("live=%v: component %d split across ranks %d and %d", live, comp, prev, r)
			}
			compRank[comp] = r
		}
	}
}

// TestComponentLocalityOnSoil: on a scaled-down soil community at N=8 the
// component policy moves strictly fewer — and at least 2× fewer — remote
// exchange+allgather bytes than the hash policy, with bit-identical
// output. (The full-size ≥5× criterion runs in CI's bench-smoke job.)
func TestComponentLocalityOnSoil(t *testing.T) {
	p := synth.SoilPreset()
	p.Com.NumGenomes = 12
	_, pairs, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}

	relevant := func(rep *Report) (remote int64) {
		for i := range rep.Stages {
			st := &rep.Stages[i]
			if strings.HasPrefix(st.Stage, "read exchange") || strings.HasPrefix(st.Stage, "contig allgather") {
				remote += st.TotalBytes()
			}
		}
		return remote
	}

	hashC, hashS, hashRep := runDistShard(t, pairs, 8, ShardHash)
	compC, compS, compRep := runDistShard(t, pairs, 8, ShardComponent)
	if !reflect.DeepEqual(hashC, compC) || !reflect.DeepEqual(hashS, compS) {
		t.Fatal("shard policies produced different assemblies")
	}

	h, c := relevant(hashRep), relevant(compRep)
	if h == 0 || c == 0 && h == 0 {
		t.Fatalf("degenerate traffic: hash %d, component %d", h, c)
	}
	if c >= h {
		t.Errorf("component policy moved %d remote bytes, hash %d — not fewer", c, h)
	}
	if 2*c > h {
		t.Errorf("component policy moved %d remote bytes, want ≤ half of hash's %d", c, h)
	}
	if compRep.Locality() <= hashRep.Locality() {
		t.Errorf("component locality %.3f not above hash locality %.3f",
			compRep.Locality(), hashRep.Locality())
	}
	// Allgather stages are fully local under the component policy: no
	// cross-component contigs exist, so nothing needs broadcasting.
	for i := range compRep.Stages {
		st := &compRep.Stages[i]
		if strings.HasPrefix(st.Stage, "contig allgather") && st.TotalBytes() != 0 {
			t.Errorf("%s moved %d remote bytes under component policy", st.Stage, st.TotalBytes())
		}
	}
}
