package dist

import (
	"reflect"
	"testing"
)

// TestMembershipLifecycle walks a full elastic schedule — joins and
// evictions interleaved — checking the epoch counter, the live set, the
// cached deal, and the per-epoch history at every step.
func TestMembershipLifecycle(t *testing.T) {
	m, err := NewMembership(2, 5, DefaultVirtualShards)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != 0 || m.Capacity() != 5 || m.LiveCount() != 2 {
		t.Fatalf("epoch0: epoch=%d capacity=%d live=%d, want 0/5/2", m.Epoch(), m.Capacity(), m.LiveCount())
	}
	if !reflect.DeepEqual(m.Live(), []int{0, 1}) {
		t.Fatalf("epoch0 live = %v, want [0 1]", m.Live())
	}
	for _, r := range []int{2, 3, 4} {
		if m.Alive(r) {
			t.Errorf("reserved slot %d alive before its join", r)
		}
	}

	// Join two reserved slots at round 1.
	for i, r := range []int{2, 3} {
		if err := m.Join(r, 1); err != nil {
			t.Fatalf("join rank %d: %v", r, err)
		}
		if m.Epoch() != i+1 {
			t.Fatalf("after join %d: epoch %d, want %d", r, m.Epoch(), i+1)
		}
	}
	if !reflect.DeepEqual(m.Live(), []int{0, 1, 2, 3}) {
		t.Fatalf("post-join live = %v, want [0 1 2 3]", m.Live())
	}
	if got := m.JoinedRound(2); got != 1 {
		t.Errorf("JoinedRound(2) = %d, want 1", got)
	}
	if got := m.JoinedRound(0); got != -1 {
		t.Errorf("JoinedRound(0) = %d, want -1 for an initial member", got)
	}

	// The cached deal must be exactly the deal a fresh build would yield.
	want := newShardDeal(DefaultVirtualShards, m.Live())
	for s := 0; s < DefaultVirtualShards; s++ {
		if m.Deal().rankOf(s) != want.rankOf(s) {
			t.Fatalf("cached deal diverges from fresh deal at shard %d", s)
		}
	}

	// Evict a founding member; the joiners keep serving.
	if err := m.Evict(0, 2); err != nil {
		t.Fatal(err)
	}
	if m.Alive(0) || m.Epoch() != 3 {
		t.Fatalf("post-evict: alive(0)=%v epoch=%d, want false/3", m.Alive(0), m.Epoch())
	}
	if !reflect.DeepEqual(m.Live(), []int{1, 2, 3}) {
		t.Fatalf("post-evict live = %v, want [1 2 3]", m.Live())
	}
	if got := m.EpochLiveCounts(); !reflect.DeepEqual(got, []int{2, 3, 4, 3}) {
		t.Fatalf("EpochLiveCounts = %v, want [2 3 4 3]", got)
	}
}

// TestMembershipErrors pins the rejected transitions: double joins,
// rejoin after eviction, out-of-range ranks, evicting a non-member, and
// evicting the last live rank.
func TestMembershipErrors(t *testing.T) {
	if _, err := NewMembership(0, 4, 32); err == nil {
		t.Error("zero initial ranks accepted")
	}
	if _, err := NewMembership(4, 2, 32); err == nil {
		t.Error("capacity below initial accepted")
	}
	if _, err := NewMembership(2, 2, 0); err == nil {
		t.Error("zero shards accepted")
	}

	m, err := NewMembership(2, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Join(0, 0); err == nil {
		t.Error("joining an existing member accepted")
	}
	if err := m.Join(3, 0); err == nil {
		t.Error("join outside capacity accepted")
	}
	if err := m.Evict(2, 0); err == nil {
		t.Error("evicting a never-joined slot accepted")
	}
	if err := m.Evict(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Join(1, 1); err == nil {
		t.Error("evicted rank allowed to rejoin")
	}
	if err := m.Evict(0, 1); err == nil {
		t.Error("evicting the last live rank accepted")
	}
	// Failed transitions must not bump the epoch.
	if m.Epoch() != 1 {
		t.Errorf("epoch %d after one successful eviction, want 1", m.Epoch())
	}
}

// BenchmarkMembershipEpoch measures one membership change at N=8 — the
// epoch bump plus the incremental re-deal that refreshes the cache. This
// is the whole per-change cost of the elastic model.
func BenchmarkMembershipEpoch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := NewMembership(8, 9, DefaultVirtualShards)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Join(8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardDealCached measures the ownership query path between
// membership changes: Deal() is a cached pointer load, where rt.deal()
// used to rescan the alive bitmap and rebuild the deal on every call
// (BenchmarkShardDealRebuild is that old cost, kept as the comparison
// baseline).
func BenchmarkShardDealCached(b *testing.B) {
	m, err := NewMembership(8, 8, DefaultVirtualShards)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += m.Deal().rankOf(i % DefaultVirtualShards)
	}
	_ = sink
}

// BenchmarkShardDealRebuild is the pre-elastic per-call cost: scan the
// alive set, rebuild the round-robin deal, answer one query.
func BenchmarkShardDealRebuild(b *testing.B) {
	alive := make([]bool, 8)
	for r := range alive {
		alive[r] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		var live []int
		for r, ok := range alive {
			if ok {
				live = append(live, r)
			}
		}
		sink += newShardDeal(DefaultVirtualShards, live).rankOf(i % DefaultVirtualShards)
	}
	_ = sink
}
