package dist

import (
	"reflect"
	"testing"
)

// TestDistCPUAssemblyMatchesGPU: the per-rank host flat-table engine and
// the per-rank GPU drivers assemble bit-identical contigs and scaffolds
// (the engine-equivalence guarantee lifted to the distributed runtime),
// and the CPU path reports host work counts instead of kernel launches.
func TestDistCPUAssemblyMatchesGPU(t *testing.T) {
	pairs := buildPairs(t)

	gpuRes, _, err := Run(pairs, testDistConfig(3))
	if err != nil {
		t.Fatal(err)
	}

	ccfg := testDistConfig(3)
	ccfg.CPUAssembly = true
	cpuRes, cpuRep, err := Run(pairs, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(cpuRes.Contigs, gpuRes.Contigs) {
		t.Error("CPU-assembly contigs differ from GPU-assembly contigs")
	}
	if !reflect.DeepEqual(cpuRes.Scaffolds, gpuRes.Scaffolds) {
		t.Error("CPU-assembly scaffolds differ from GPU-assembly scaffolds")
	}
	if len(cpuRes.Work.GPUKernels) != 0 {
		t.Errorf("CPU assembly launched %d kernels", len(cpuRes.Work.GPUKernels))
	}
	if cpuRes.Work.Locassm.KmersInserted == 0 || cpuRes.Work.Locassm.Lookups == 0 {
		t.Errorf("CPU assembly reported no host work: %+v", cpuRes.Work.Locassm)
	}
	var busy int64
	for _, rs := range cpuRep.PerRank {
		busy += int64(rs.Busy)
		if rs.Kernels != 0 {
			t.Errorf("rank %d reports %d kernels under CPU assembly", rs.Rank, rs.Kernels)
		}
	}
	if busy == 0 {
		t.Error("CPU assembly reported zero modeled busy time")
	}
}

// TestDistCPUAssemblyMatchesSingleRank: like the GPU determinism guarantee,
// the host-engine path produces identical contigs and total work counts for
// any rank count.
func TestDistCPUAssemblyMatchesSingleRank(t *testing.T) {
	pairs := buildPairs(t)
	base := func(ranks int) Config {
		cfg := testDistConfig(ranks)
		cfg.CPUAssembly = true
		return cfg
	}

	one, _, err := Run(pairs, base(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Contigs) == 0 || one.Work.Locassm.KmersInserted == 0 {
		t.Fatalf("baseline degenerate: %d contigs, %+v", len(one.Contigs), one.Work.Locassm)
	}
	for _, n := range []int{2, 4} {
		res, _, err := Run(pairs, base(n))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Contigs, one.Contigs) {
			t.Errorf("ranks=%d: contigs differ from single-rank CPU run", n)
		}
		if res.Work.Locassm != one.Work.Locassm {
			t.Errorf("ranks=%d: work counts %+v differ from single-rank %+v",
				n, res.Work.Locassm, one.Work.Locassm)
		}
	}
}
