package dist

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mhm2sim/internal/faults"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/simt"
)

// assertSameAssembly pins the headline invariant: contigs and scaffolds
// bit-identical to the fault-free single-rank baseline.
func assertSameAssembly(t *testing.T, label string, res, base *pipeline.Result) {
	t.Helper()
	if !reflect.DeepEqual(res.Contigs, base.Contigs) {
		t.Errorf("%s: contigs differ from fault-free single-rank run", label)
	}
	if !reflect.DeepEqual(res.Scaffolds, base.Scaffolds) {
		t.Errorf("%s: scaffolds differ from fault-free single-rank run", label)
	}
}

// TestElasticJoinMatchesSingleRank: converging elastic schedules — joins,
// join+leave mixes, with and without stealing, under both shard policies
// and in memory-budget mode — all yield bit-identical contigs and
// scaffolds to the fault-free single-rank run, with the elasticity
// counters visible in the report and the work record.
func TestElasticJoinMatchesSingleRank(t *testing.T) {
	pairs := buildPairs(t)
	base, _, err := Run(pairs, testDistConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Contigs) == 0 {
		t.Fatal("fault-free baseline produced no contigs")
	}

	variants := []struct {
		name    string
		elastic string
		mutate  func(*Config)
		joins   int
	}{
		{"join", "join@r1:2", nil, 2},
		{"join-round0", "join@r0:1", nil, 1},
		{"join-leave", "join@r0:2,leave@r1:1", nil, 2},
		{"join-nosteal", "join@r1:2", func(c *Config) { c.NoSteal = true }, 2},
		{"join-component", "join@r1:1", func(c *Config) { c.ShardPolicy = ShardComponent }, 1},
		{"join-budget", "join@r1:1", func(c *Config) { c.Pipeline.MemBudget = 96 << 10 }, 1},
	}
	for _, v := range variants {
		for _, n := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/ranks=%d", v.name, n), func(t *testing.T) {
				cfg := testDistConfig(n)
				cfg.Elastic = v.elastic
				if v.mutate != nil {
					v.mutate(&cfg)
				}
				res, rep, err := Run(pairs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSameAssembly(t, v.name, res, base)
				if rep.Elasticity.Joins != v.joins {
					t.Errorf("report joins = %d, want %d", rep.Elasticity.Joins, v.joins)
				}
				if res.Work.RankJoins != v.joins {
					t.Errorf("work record joins = %d, want %d", res.Work.RankJoins, v.joins)
				}
				if rep.Elasticity.RebalancedBytes == 0 {
					t.Error("joins admitted but no bootstrap bytes rebalanced")
				}
				wantEpochs := 1 + strings.Count(v.elastic, "@") // each join/leave is one epoch
				if strings.Contains(v.elastic, ":2") {
					wantEpochs++ // a count-2 entry is two membership changes
				}
				if rep.Elasticity.Epochs != wantEpochs {
					t.Errorf("epochs = %d, want %d (schedule %q)", rep.Elasticity.Epochs, wantEpochs, v.elastic)
				}
				if res.Work.MembershipEpochs != rep.Elasticity.Epochs {
					t.Errorf("work record epochs %d ≠ report %d", res.Work.MembershipEpochs, rep.Elasticity.Epochs)
				}
				if rep.Capacity != n+v.joins {
					t.Errorf("capacity = %d, want %d", rep.Capacity, n+v.joins)
				}
				// Joined ranks carry their round in the per-rank table.
				joined := 0
				for _, rs := range rep.PerRank {
					if rs.JoinedRound >= 0 {
						joined++
					}
				}
				if joined != v.joins {
					t.Errorf("%d ranks report a join round, want %d", joined, v.joins)
				}
			})
		}
	}
}

// TestElasticReportRendering: the human-readable report shows the
// elasticity line and marks joined ranks.
func TestElasticReportRendering(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testDistConfig(2)
	cfg.Elastic = "join@r1:1"
	_, rep, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "elasticity:") {
		t.Errorf("report lacks elasticity line:\n%s", s)
	}
	if !strings.Contains(s, "joined round 1") {
		t.Errorf("report lacks joined-round mark:\n%s", s)
	}
}

// TestElasticValidation: malformed schedules are rejected at
// Config.Validate, matching the error conventions of the other knobs.
func TestElasticValidation(t *testing.T) {
	for _, spec := range []string{"join@r9:1", "leave@r0:2", "join@1:1", "nonsense", "join@r0:0"} {
		cfg := testDistConfig(2).withDefaults()
		cfg.Elastic = spec
		if err := cfg.Validate(); err == nil {
			t.Errorf("elastic spec %q accepted", spec)
		}
	}
	cfg := testDistConfig(2).withDefaults()
	cfg.Elastic = "join@r1:2,leave@r1:1"
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid elastic spec rejected: %v", err)
	}
}

// stragglerPlan builds an explicit plan slowing rank 0 by factor in every
// round — the deterministic load imbalance the steal matrix runs under.
func stragglerPlan(ranks, rounds int, factor float64) *faults.Plan {
	p := &faults.Plan{Ranks: ranks, Rounds: rounds}
	for round := 0; round < rounds; round++ {
		p.Events = append(p.Events, faults.Event{
			Kind: faults.Straggler, Rank: 0, Round: round, Factor: factor,
		})
	}
	return p
}

// TestChaosStealMatrix is the acceptance-criteria matrix: an 8× straggler
// on rank 0 at N ∈ {2,4,8}, stealing on vs off. Output is bit-identical
// both ways (and to the fault-free single-rank run); with stealing the
// report shows nonzero steals and epochs and a strictly lower modeled
// round wall; at N=8 the improvement is at least the pinned 1.5×.
func TestChaosStealMatrix(t *testing.T) {
	pairs := buildPairs(t)
	base, _, err := Run(pairs, testDistConfig(1))
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 4, 8} {
		var walls [2]struct {
			steal, noSteal int64
		}
		for i, noSteal := range []bool{false, true} {
			cfg := testDistConfig(n)
			cfg.Faults = stragglerPlan(n, len(cfg.Pipeline.Rounds), 8)
			cfg.NoSteal = noSteal
			res, rep, err := Run(pairs, cfg)
			if err != nil {
				t.Fatalf("ranks=%d nosteal=%v: %v", n, noSteal, err)
			}
			assertSameAssembly(t, fmt.Sprintf("ranks=%d nosteal=%v", n, noSteal), res, base)
			if rep.Elasticity.Epochs == 0 {
				t.Errorf("ranks=%d nosteal=%v: zero epochs reported", n, noSteal)
			}
			if noSteal {
				if rep.Elasticity.Steals != 0 || res.Work.Steals != 0 {
					t.Errorf("ranks=%d: stealing disabled but %d steals recorded", n, rep.Elasticity.Steals)
				}
			} else {
				if rep.Elasticity.Steals == 0 || rep.Elasticity.StolenBatches == 0 {
					t.Errorf("ranks=%d: straggler under stealing but steals=%d batches=%d",
						n, rep.Elasticity.Steals, rep.Elasticity.StolenBatches)
				}
				if res.Work.Steals != rep.Elasticity.StolenBatches {
					t.Errorf("ranks=%d: work record steals %d ≠ report stolen batches %d",
						n, res.Work.Steals, rep.Elasticity.StolenBatches)
				}
				if rep.Elasticity.StealWall >= rep.Elasticity.NoStealWall {
					t.Errorf("ranks=%d: steal wall %v not below no-steal wall %v",
						n, rep.Elasticity.StealWall, rep.Elasticity.NoStealWall)
				}
			}
			walls[i].steal = int64(rep.Elasticity.StealWall)
			walls[i].noSteal = int64(rep.Elasticity.NoStealWall)
		}
		// The no-steal accounting of both runs agrees (same plan, same
		// costs), so the on/off comparison is apples-to-apples.
		if walls[0].noSteal != walls[1].noSteal {
			t.Errorf("ranks=%d: no-steal walls disagree across runs: %d vs %d",
				n, walls[0].noSteal, walls[1].noSteal)
		}
		if n == 8 {
			if speedup := float64(walls[0].noSteal) / float64(walls[0].steal); speedup < 1.5 {
				t.Errorf("ranks=8: steal speedup %.2fx below the 1.5x acceptance bar", speedup)
			}
		}
	}
}

// TestElasticStealTraffic: the steal and join-bootstrap exchanges appear
// in the per-stage fabric traffic like every other collective.
func TestElasticStealTraffic(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testDistConfig(4)
	cfg.Elastic = "join@r1:1"
	cfg.Faults = stragglerPlan(4, len(cfg.Pipeline.Rounds), 8)
	_, rep, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var steal, bootstrap bool
	for _, st := range rep.Stages {
		if strings.HasPrefix(st.Stage, "work steal") && st.TotalBytes()+st.TotalLocalBytes() > 0 {
			steal = true
		}
		if strings.HasPrefix(st.Stage, "join bootstrap") && st.TotalBytes()+st.TotalLocalBytes() > 0 {
			bootstrap = true
		}
	}
	if !steal {
		t.Error("no work-steal exchange in the stage traffic")
	}
	if !bootstrap {
		t.Error("no join-bootstrap exchange in the stage traffic")
	}
}

// TestElasticDeviceProvider: joining ranks draw their devices from the
// configured provider and every provided device is released after the run.
func TestElasticDeviceProvider(t *testing.T) {
	pairs := buildPairs(t)
	cfg := testDistConfig(2)
	cfg.Elastic = "join@r1:2"
	var provided, released int
	cfg.DeviceProvider = func() (*simt.Device, error) {
		provided++
		return simt.NewDevice(cfg.Device), nil
	}
	cfg.DeviceRelease = func(*simt.Device) { released++ }
	_, rep, err := Run(pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if provided != 2 {
		t.Errorf("provider called %d times, want 2", provided)
	}
	if released != provided {
		t.Errorf("released %d of %d provided devices", released, provided)
	}
	if rep.Elasticity.Joins != 2 {
		t.Errorf("joins = %d, want 2", rep.Elasticity.Joins)
	}
}
