// Intra-round work stealing, modeled. The actual shard execution never
// moves — every virtual shard runs on its deal owner, which is what keeps
// contigs, scaffolds, and kernel launch lists bit-identical with stealing
// on or off — but the *round makespan* is no longer "slowest rank's whole
// queue": after the shards execute, a deterministic list-scheduling
// simulation replays the round over the per-shard modeled costs, letting
// idle ranks claim tail batches from the most-loaded rank, and the
// resulting per-rank busy times and makespan become the round's modeled
// accounting. Steal payloads travel through the fabric as a per-round
// "work steal" exchange, so the traffic shows up in StageTraffic like
// every other collective.
package dist

import (
	"sort"
	"time"
)

// stealRec is one modeled steal: the thief claimed the victim's tail batch
// (one virtual shard) and its payload bytes crossed the fabric.
type stealRec struct {
	shard, victim, thief int
	bytes                int64
}

// stealOutcome is the round's scheduling result under the steal protocol.
type stealOutcome struct {
	// busy is each rank's modeled busy time for the round after stealing
	// (indexed by rank ID up to capacity); makespan its maximum finish
	// time. noStealMakespan is the same round scheduled without stealing —
	// always ≥ makespan — computed in the same pass so the report can show
	// the win without a second run.
	busy            []time.Duration
	makespan        time.Duration
	noStealMakespan time.Duration
	steals          []stealRec
}

// stealSchedule replays one round's batch queues deterministically. Each
// live rank owns a FIFO queue of its dealt shards in ascending-cost order
// (ties by shard ID); cost[s] is shard s's modeled unscaled busy time and
// factor[r] the rank's straggler slowdown for the round. Ranks consume
// their own queue head-first; a rank whose queue drains picks the victim
// with the latest projected completion (busy-until plus its remaining
// scaled queue; ties to the lowest rank) and claims the victim's tail
// batch — but only when it would finish that batch strictly before the
// victim would finish its whole queue, so a slow thief never inflates the
// makespan: the stolen makespan is always ≤ the no-steal one. The whole
// simulation is a pure function of (deal, cost, factor), independent of
// goroutine scheduling — determinism by construction.
func stealSchedule(deal *shardDeal, cost []time.Duration, bytes []int64,
	factor []float64, capacity int, enabled bool) stealOutcome {
	live := deal.live
	out := stealOutcome{busy: make([]time.Duration, capacity)}

	// Per-rank queues ordered by ascending cost (ties by shard ID, so the
	// order is canonical): the owner consumes its cheap batches head-first
	// while the expensive tail is what thieves claim. This matters most
	// when the victim is the straggler — a big batch left at the head
	// would run at the straggler's factor and bound the whole makespan.
	// Zero-cost shards (empty this round) never enter a queue.
	queue := make(map[int][]int, len(live))
	for s := 0; s < deal.shards; s++ {
		if cost[s] <= 0 {
			continue
		}
		r := deal.rankOf(s)
		queue[r] = append(queue[r], s)
	}
	for _, q := range queue {
		sort.SliceStable(q, func(i, j int) bool { return cost[q[i]] < cost[q[j]] })
	}
	scaled := func(s, r int) time.Duration {
		if f := factor[r]; f != 1 {
			return time.Duration(float64(cost[s]) * f)
		}
		return cost[s]
	}

	for _, r := range live {
		var total time.Duration
		for _, s := range queue[r] {
			total += scaled(s, r)
		}
		out.busy[r] = total
		if total > out.noStealMakespan {
			out.noStealMakespan = total
		}
	}
	if !enabled || len(live) < 2 {
		out.makespan = out.noStealMakespan
		return out
	}

	// Steal simulation: head/tail cursors into each queue, a busy-until
	// clock per rank, and a done flag for ranks with no beneficial steal
	// left (queues only shrink, so "no beneficial steal" is permanent).
	head := make(map[int]int, len(live))
	tail := make(map[int]int, len(live))
	busyUntil := make(map[int]time.Duration, len(live))
	done := make(map[int]bool, len(live))
	for _, r := range live {
		tail[r] = len(queue[r])
		out.busy[r] = 0
	}
	completion := func(r int) time.Duration {
		c := busyUntil[r]
		for i := head[r]; i < tail[r]; i++ {
			c += scaled(queue[r][i], r)
		}
		return c
	}
	for {
		// The next actor is the rank free earliest (ties to the lowest
		// rank ID) — the deterministic stand-in for wall-clock order.
		actor := -1
		for _, r := range live {
			if done[r] {
				continue
			}
			if actor == -1 || busyUntil[r] < busyUntil[actor] {
				actor = r
			}
		}
		if actor == -1 {
			break
		}
		if head[actor] < tail[actor] {
			s := queue[actor][head[actor]]
			head[actor]++
			d := scaled(s, actor)
			busyUntil[actor] += d
			out.busy[actor] += d
			continue
		}
		// Idle: pick the most-loaded victim by projected completion.
		victim := -1
		var victimDone time.Duration
		for _, v := range live {
			if v == actor || head[v] >= tail[v] {
				continue
			}
			if c := completion(v); victim == -1 || c > victimDone {
				victim, victimDone = v, c
			}
		}
		if victim == -1 {
			done[actor] = true
			continue
		}
		s := queue[victim][tail[victim]-1]
		d := scaled(s, actor)
		if busyUntil[actor]+d >= victimDone {
			// Stealing would not beat the victim finishing its own queue
			// (the thief may itself be a straggler); later opportunities
			// are only worse, so the rank is done for the round.
			done[actor] = true
			continue
		}
		tail[victim]--
		busyUntil[actor] += d
		out.busy[actor] += d
		out.steals = append(out.steals, stealRec{shard: s, victim: victim, thief: actor, bytes: bytes[s]})
	}
	for _, r := range live {
		if busyUntil[r] > out.makespan {
			out.makespan = busyUntil[r]
		}
	}
	return out
}

// stealMatrix folds the round's steals into a fabric exchange matrix:
// matrix[victim][thief] carries the stolen batches' payload bytes (the
// shard's contigs plus their candidate reads — what the thief needs to run
// the batch).
func stealMatrix(steals []stealRec, capacity int) [][]int64 {
	matrix := newMatrix(capacity)
	for _, st := range steals {
		matrix[st.victim][st.thief] += st.bytes
	}
	return matrix
}
