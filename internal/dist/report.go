package dist

import (
	"fmt"
	"strings"
	"time"
)

// RankStats is one rank's share of a distributed run.
type RankStats struct {
	Rank int
	// Busy is the modeled GPU time (kernels + PCIe) the rank's device
	// spent on its shards; Comm its modeled time inside fabric exchanges;
	// Idle the rest of the modeled wall clock (waiting on the slowest
	// rank at collectives).
	Busy, Comm, Idle time.Duration
	// BytesSent/BytesRecv are network bytes; Msgs aggregated messages.
	BytesSent, BytesRecv, Msgs int64
	// PCIeH2D/PCIeD2H are the rank's device transfer totals.
	PCIeH2D, PCIeD2H int64
	// Kernels counts kernel launches on the rank's device; Contigs the
	// contigs the rank owned in the final round.
	Kernels, Contigs int
	// Alive is false for ranks evicted by an injected crash (or elastic
	// leave) and for join slots never admitted; EvictedRound is the 0-based
	// round of the eviction (-1 while alive). JoinedRound is the 0-based
	// round an elastic rank joined at (-1 for initial members).
	Alive        bool
	EvictedRound int
	JoinedRound  int
	// FailedAttempts counts the failed collective exchange attempts the
	// rank observed while alive.
	FailedAttempts int
}

// RecoveryStats summarizes the fault-recovery work of a run. All counters
// are zero for a fault-free run.
type RecoveryStats struct {
	// ExchangeRetries counts failed exchange attempts recovered by retry;
	// RetryTime is the modeled time they cost (timeouts, full corrupt
	// transfers, and backoff).
	ExchangeRetries int
	RetryTime       time.Duration
	// Evictions counts ranks removed by injected crashes; RecoveredBytes
	// the contig bytes whose ownership moved to a survivor.
	Evictions      int
	RecoveredBytes int64
	// DeviceFallbacks counts ranks that degraded to the host flat-table
	// engine after losing their device mid-round.
	DeviceFallbacks int
	// BatchResplits counts batches the drivers split in half and retried
	// after a recoverable kernel fault.
	BatchResplits int
	// Stragglers counts injected per-rank compute slowdowns applied.
	Stragglers int
	// OOMReplans counts DeviceOOM events a budget-mode run absorbed by
	// shrinking the counting budget and re-planning the pass schedule —
	// the graceful-degradation replacement for DeviceFallbacks.
	// SpillPasses counts the extra counting passes that degradation
	// (budget shrinks and in-run spill re-plans) cost.
	OOMReplans  int
	SpillPasses int
}

// Any reports whether any recovery machinery fired.
func (rs *RecoveryStats) Any() bool {
	return rs.ExchangeRetries != 0 || rs.Evictions != 0 || rs.DeviceFallbacks != 0 ||
		rs.BatchResplits != 0 || rs.Stragglers != 0 || rs.OOMReplans != 0
}

// ElasticityStats summarizes the membership and work-stealing activity of a
// run. Epochs is always ≥ 1 (the initial membership is epoch 0); everything
// else is zero for a static, balanced run.
type ElasticityStats struct {
	// Epochs counts membership versions (1 + joins + evictions); Joins the
	// ranks admitted mid-run; EpochLive the live-rank count at each epoch.
	Epochs    int
	Joins     int
	EpochLive []int
	// Steals counts per-round victim→thief flows; StolenBatches the
	// tail batches (virtual shards) that moved through them; StolenBytes
	// their modeled payload.
	Steals        int
	StolenBatches int
	StolenBytes   int64
	// RebalancedBytes is the contig payload the join bootstrap exchanges
	// shipped to re-dealt owners.
	RebalancedBytes int64
	// NoStealWall / StealWall are the run's summed round makespans without
	// and with stealing, computed in the same pass; their ratio is the
	// stealing speedup of the modeled compute wall.
	NoStealWall time.Duration
	StealWall   time.Duration
}

// Any reports whether the run was elastic or stole any work.
func (es *ElasticityStats) Any() bool {
	return es.Epochs > 1 || es.Steals != 0
}

// Speedup is the modeled compute-makespan ratio no-steal / steal — 1.0 for
// a balanced run, > 1 when stealing compressed the round walls.
func (es *ElasticityStats) Speedup() float64 {
	if es.StealWall <= 0 {
		return 1
	}
	return float64(es.NoStealWall) / float64(es.StealWall)
}

// Report is the strong-scaling breakdown of one distributed run (the
// Fig 9-style busy/comm/idle view the paper uses for scaling studies).
type Report struct {
	// Ranks is the initial rank count; Capacity the rank ID ceiling after
	// scheduled joins (equal to Ranks for a static run). PerRank has
	// Capacity entries.
	Ranks         int
	Capacity      int
	VirtualShards int
	Rounds        int
	// ShardPolicy is the contig → shard map the run used ("hash" or
	// "component").
	ShardPolicy string
	// Components is the per-round connected-component count (empty under
	// the hash policy, which never runs the pass).
	Components []int
	// ComponentPassTime is the accumulated wall time of the per-round
	// connected-components passes (zero under the hash policy).
	ComponentPassTime time.Duration
	// Wall is the modeled distributed wall clock: per-round slowest-rank
	// compute plus every collective exchange.
	Wall time.Duration
	// CommTime is the modeled time of all fabric exchanges.
	CommTime time.Duration
	PerRank  []RankStats
	// Stages holds every fabric exchange in execution order.
	Stages []StageTraffic
	// Faults describes the injected fault schedule ("no faults" without
	// one); Recovery the recovery work it triggered; Elasticity the
	// membership and work-stealing activity.
	Faults     string
	Recovery   RecoveryStats
	Elasticity ElasticityStats
}

// report assembles the Report after the pipeline has finished.
func (rt *runtime) report() *Report {
	rep := &Report{
		Ranks:             rt.cfg.Ranks,
		Capacity:          rt.mem.Capacity(),
		VirtualShards:     rt.cfg.VirtualShards,
		Rounds:            rt.rounds,
		ShardPolicy:       rt.cfg.ShardPolicy,
		Components:        rt.components,
		ComponentPassTime: rt.compPass,
		CommTime:          rt.fabric.TotalTime(),
		Stages:            rt.fabric.Stages(),
		Faults:            rt.plan.String(),
		Recovery:          rt.rec,
		Elasticity:        rt.elastic,
	}
	rep.Elasticity.Epochs = rt.mem.Epoch() + 1
	rep.Elasticity.EpochLive = rt.mem.EpochLiveCounts()
	rep.Recovery.ExchangeRetries, rep.Recovery.RetryTime = rt.fabric.Retries()
	rep.Wall = rt.compWall + rep.CommTime
	rep.PerRank = make([]RankStats, rep.Capacity)
	health := rt.fabric.Health()
	for r := range rep.PerRank {
		comm, sent, recv, msgs := rt.fabric.RankTotals(r)
		var h2d, d2h int64
		if rt.devs[r] != nil {
			h2d, d2h = rt.devs[r].CumTraffic()
		}
		rs := RankStats{
			Rank:           r,
			Busy:           rt.busy[r],
			Comm:           comm,
			BytesSent:      sent,
			BytesRecv:      recv,
			Msgs:           msgs,
			PCIeH2D:        h2d,
			PCIeD2H:        d2h,
			Kernels:        rt.kernels[r],
			Contigs:        rt.owned[r],
			Alive:          health[r].Alive,
			EvictedRound:   health[r].EvictedRound,
			JoinedRound:    health[r].JoinedRound,
			FailedAttempts: health[r].FailedAttempts,
		}
		if idle := rep.Wall - rs.Busy - rs.Comm; idle > 0 {
			rs.Idle = idle
		}
		rep.PerRank[r] = rs
	}
	return rep
}

// Efficiency is the parallel efficiency of the modeled compute:
// Σ busy / (ranks × wall), the rank count being the capacity for elastic
// runs. 1.0 means every rank computed the whole time.
func (r *Report) Efficiency() float64 {
	n := r.Ranks
	if r.Capacity > n {
		n = r.Capacity
	}
	if r.Wall <= 0 || n == 0 {
		return 0
	}
	var busy time.Duration
	for _, rs := range r.PerRank {
		busy += rs.Busy
	}
	return float64(busy) / (float64(r.Wall) * float64(n))
}

// RemoteBytes, LocalBytes, and Locality aggregate the local-vs-remote byte
// split across every fabric stage. Locality is the fraction of all moved
// bytes that stayed rank-local — the number component sharding exists to
// drive up.
func (r *Report) RemoteBytes() int64 {
	var n int64
	for i := range r.Stages {
		n += r.Stages[i].TotalBytes()
	}
	return n
}

// LocalBytes sums rank-local bytes across every fabric stage.
func (r *Report) LocalBytes() int64 {
	var n int64
	for i := range r.Stages {
		n += r.Stages[i].TotalLocalBytes()
	}
	return n
}

// Locality is the run-wide rank-local fraction of moved bytes, in [0,1].
func (r *Report) Locality() float64 {
	local, remote := r.LocalBytes(), r.RemoteBytes()
	if local+remote == 0 {
		return 1
	}
	return float64(local) / float64(local+remote)
}

// String renders the per-rank breakdown and per-stage fabric traffic.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distributed run: %d ranks, %d virtual shards (%s), %d rounds; modeled wall %v (comm %v, efficiency %.1f%%)\n",
		r.Ranks, r.VirtualShards, r.ShardPolicy, r.Rounds, r.Wall.Round(time.Microsecond),
		r.CommTime.Round(time.Microsecond), 100*r.Efficiency())
	if r.ShardPolicy == ShardComponent {
		fmt.Fprintf(&b, "  components per round: %v (pass time %v)\n",
			r.Components, r.ComponentPassTime.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "  %-5s %12s %12s %12s %10s %10s %6s %8s %7s\n",
		"rank", "busy", "comm", "idle", "sent", "recv", "msgs", "kernels", "ctgs")
	for _, rs := range r.PerRank {
		mark := ""
		if rs.JoinedRound >= 0 {
			mark = fmt.Sprintf("  (joined round %d)", rs.JoinedRound)
		}
		if !rs.Alive {
			if rs.EvictedRound >= 0 {
				mark = fmt.Sprintf("  (evicted round %d)", rs.EvictedRound)
			} else {
				mark = "  (never joined)"
			}
		}
		fmt.Fprintf(&b, "  %-5d %12v %12v %12v %10s %10s %6d %8d %7d%s\n",
			rs.Rank, rs.Busy.Round(time.Microsecond), rs.Comm.Round(time.Microsecond),
			rs.Idle.Round(time.Microsecond), fmtBytes(rs.BytesSent), fmtBytes(rs.BytesRecv),
			rs.Msgs, rs.Kernels, rs.Contigs, mark)
	}
	fmt.Fprintf(&b, "  fabric stages (remote / local, %% local):\n")
	for _, st := range r.Stages {
		retry := ""
		if st.Retries > 0 {
			retry = fmt.Sprintf("  (%d retries, +%v)", st.Retries, st.RetryTime.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "    %-24s %10s / %10s (%5.1f%% local) in %4d msgs, %v%s\n",
			st.Stage, fmtBytes(st.TotalBytes()), fmtBytes(st.TotalLocalBytes()),
			100*st.Locality(), st.TotalMsgs(), st.Time.Round(time.Microsecond), retry)
	}
	fmt.Fprintf(&b, "  traffic total: %s remote, %s local (%.1f%% local)\n",
		fmtBytes(r.RemoteBytes()), fmtBytes(r.LocalBytes()), 100*r.Locality())
	if r.Recovery.Any() {
		rec := r.Recovery
		fmt.Fprintf(&b, "  fault recovery (%s): %d exchange retries (+%v), %d evictions (%s re-dealt), %d device fallbacks, %d batch re-splits, %d stragglers\n",
			r.Faults, rec.ExchangeRetries, rec.RetryTime.Round(time.Microsecond),
			rec.Evictions, fmtBytes(rec.RecoveredBytes), rec.DeviceFallbacks,
			rec.BatchResplits, rec.Stragglers)
		if rec.OOMReplans > 0 {
			fmt.Fprintf(&b, "  memory-budget degradation: %d OOM events absorbed by re-planned spill (+%d passes)\n",
				rec.OOMReplans, rec.SpillPasses)
		}
	}
	if es := &r.Elasticity; es.Any() {
		fmt.Fprintf(&b, "  elasticity: %d epochs (live %v), %d joins (%s rebalanced), %d steals moved %d batches (%s) — compute wall %v vs %v no-steal (%.2fx)\n",
			es.Epochs, es.EpochLive, es.Joins, fmtBytes(es.RebalancedBytes),
			es.Steals, es.StolenBatches, fmtBytes(es.StolenBytes),
			es.StealWall.Round(time.Microsecond), es.NoStealWall.Round(time.Microsecond), es.Speedup())
	}
	return b.String()
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
