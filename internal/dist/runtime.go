package dist

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/faults"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/simt"
)

// shardOutcome is one virtual shard's assembly output: the per-contig
// results plus the executing engine's unified accounting.
type shardOutcome struct {
	results []locassm.Result
	stats   locassm.Stats
	onGPU   bool
}

func init() {
	// Reserve the "dist" engine name in the shared registry. The
	// distributed engine binds to a live multi-rank runtime (fabric,
	// per-rank devices, fault injector), so it cannot be built from a
	// declarative spec: dist.Run constructs the runtime and injects it via
	// EngineSpec.Instance.
	locassm.RegisterEngine(locassm.EngineDist, func(locassm.EngineSpec) (locassm.Engine, error) {
		return nil, fmt.Errorf("dist: the %q engine requires a live multi-rank runtime; use dist.Run (mhm2sim -engine=dist)", locassm.EngineDist)
	})
}

// Config parameterizes a distributed run.
type Config struct {
	// Ranks is the number of simulated ranks (processes), each owning one
	// device and a slice of the contigs and reads.
	Ranks int
	// VirtualShards is the number of hash shards dealt across ranks
	// (0 = DefaultVirtualShards). It must not change between runs that
	// are expected to produce identical kernel launch lists.
	VirtualShards int
	// ShardPolicy selects the contig → virtual-shard map: ShardHash
	// (default, "") hashes contig IDs; ShardComponent runs a per-round
	// connected-components pass and assigns whole de Bruijn components to
	// shards with LPT bin packing, turning most exchange and allgather
	// traffic rank-local. Either policy yields bit-identical contigs and
	// scaffolds for any rank count.
	ShardPolicy string
	// Fabric models the interconnect (zero value = DefaultFabricConfig).
	Fabric FabricConfig
	// Device is the per-rank GPU (zero value = simt.V100()).
	Device simt.DeviceConfig
	// Pipeline configures the underlying assembly pipeline. Its Engine
	// and Device fields are managed by dist.Run (the runtime injects
	// itself as the pipeline's engine); local assembly executes on the
	// per-rank devices (or the per-rank host engines, below).
	Pipeline pipeline.Config
	// CPUAssembly runs each rank's local assembly on the host flat-table
	// engine instead of its simulated GPU — the per-rank CPU baseline the
	// paper's speedups are measured against. Results are bit-identical to
	// the GPU path; only the Busy accounting (modeled host time instead of
	// kernel time) and the kernel lists (empty) change.
	CPUAssembly bool
	// CPUWorkers bounds each rank's worker goroutines under CPUAssembly
	// (0 = GOMAXPROCS spread evenly across ranks).
	CPUWorkers int
	// Faults is an optional seeded fault schedule (nil = fault-free run).
	// The runtime consults it at round boundaries (rank crashes), before
	// launches (device faults, kernel aborts), and inside fabric exchanges
	// (drops, corruptions, latency spikes); any schedule that does not
	// exhaust the retry budgets yields bit-identical contigs and scaffolds
	// to the fault-free run.
	Faults *faults.Plan
	// Elastic is an optional membership schedule spec
	// ("join@r1:2,leave@r3:1", see faults.ParseElastic): joins admit fresh
	// ranks at round boundaries, leaves retire the highest-numbered live
	// rank. It merges with Faults into one plan; like any converging fault
	// schedule, every elastic schedule yields bit-identical contigs and
	// scaffolds to the fault-free single-rank run.
	Elastic string
	// NoSteal disables intra-round work stealing. By default idle ranks
	// claim tail batches from the most-loaded live rank, which lowers the
	// modeled round makespan under load imbalance (stragglers, joins)
	// without changing any output byte.
	NoSteal bool
	// DeviceProvider, when set, supplies the device for each joining rank
	// (the service wires the DevicePool in here so elastic jobs draw real
	// pool capacity); nil falls back to fresh simt.NewDevice(Device).
	// DeviceRelease, when set, takes every provider-supplied device back
	// after the run.
	DeviceProvider func() (*simt.Device, error)
	DeviceRelease  func(*simt.Device)
}

// DefaultConfig returns a distributed configuration over the default
// pipeline.
func DefaultConfig(ranks int) Config {
	return Config{
		Ranks:         ranks,
		VirtualShards: DefaultVirtualShards,
		Fabric:        DefaultFabricConfig(),
		Device:        simt.V100(),
		Pipeline:      pipeline.DefaultConfig(),
	}
}

// withDefaults fills zero-valued fields. The fabric defaults field by
// field, so a config that overrides only (say) the bandwidth still inherits
// the default latency, buffering, and retry budget instead of having the
// partial struct silently replaced wholesale.
func (c Config) withDefaults() Config {
	if c.VirtualShards == 0 {
		c.VirtualShards = DefaultVirtualShards
	}
	if c.ShardPolicy == "" {
		c.ShardPolicy = ShardHash
	}
	c.Fabric = c.Fabric.withDefaults()
	if c.Device.Name == "" {
		c.Device = simt.V100()
	}
	return c
}

// Validate checks the distributed configuration (after defaulting).
func (c *Config) Validate() error {
	if c.Ranks < 1 {
		return fmt.Errorf("dist: need ≥ 1 rank, got %d", c.Ranks)
	}
	if c.VirtualShards < c.Ranks {
		return fmt.Errorf("dist: %d virtual shards cannot cover %d ranks (ranks would idle)",
			c.VirtualShards, c.Ranks)
	}
	if c.ShardPolicy != ShardHash && c.ShardPolicy != ShardComponent {
		return fmt.Errorf("dist: unknown shard policy %q (%s|%s)",
			c.ShardPolicy, ShardHash, ShardComponent)
	}
	if err := c.Fabric.Validate(); err != nil {
		return err
	}
	plan, err := c.effectivePlan()
	if err != nil {
		return err
	}
	if plan != nil {
		if err := plan.Validate(c.Ranks); err != nil {
			return err
		}
		if plan.Rounds != len(c.Pipeline.Rounds) {
			return fmt.Errorf("dist: fault plan built for %d rounds, run has %d",
				plan.Rounds, len(c.Pipeline.Rounds))
		}
	}
	return c.Pipeline.Validate()
}

// effectivePlan merges the Faults schedule with the parsed Elastic
// membership schedule into the single plan the runtime consumes. Nil when
// the run has neither.
func (c *Config) effectivePlan() (*faults.Plan, error) {
	plan := c.Faults
	if c.Elastic == "" {
		return plan, nil
	}
	ep, err := faults.ParseElastic(c.Elastic, c.Ranks, len(c.Pipeline.Rounds))
	if err != nil {
		return nil, err
	}
	return plan.Merge(ep)
}

// runtime is the live state of one distributed run. It implements
// locassm.Engine: pipeline.Run hands it each round's contigs-with-reads
// and it performs the read exchange, the sharded concurrent local
// assembly (each rank running a registry engine over its virtual shards),
// and the contig allgather.
type runtime struct {
	cfg    Config
	plan   *faults.Plan // Faults merged with the parsed Elastic schedule
	fabric *Fabric
	mem    *Membership
	devs   []*simt.Device // one per rank slot, up to capacity
	pooled []bool         // device came from cfg.DeviceProvider
	inj    *faults.Injector

	// Accumulated across rounds (written only between concurrent phases).
	busy     []time.Duration // per-rank modeled busy time (own + stolen work)
	kernels  []int           // per-rank kernel launches
	owned    []int           // per-rank owned contigs (last round)
	deviceOK []bool          // ranks still assembling on their device
	rec      RecoveryStats
	elastic  ElasticityStats
	compWall time.Duration // Σ over rounds of the round makespans
	rounds   int

	// Component-policy state: the current residence rank of every routed
	// read (reads live with their component between rounds), the per-round
	// component counts, and the accumulated component-pass wall time.
	readRank   map[string]int
	components []int
	compPass   time.Duration
}

func newRuntime(cfg Config) (*runtime, error) {
	plan, err := cfg.effectivePlan()
	if err != nil {
		return nil, err
	}
	capacity := cfg.Ranks
	if c := plan.Capacity(); c > capacity {
		capacity = c
	}
	fabric, err := NewFabricWithCapacity(cfg.Ranks, capacity, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	mem, err := NewMembership(cfg.Ranks, capacity, cfg.VirtualShards)
	if err != nil {
		return nil, err
	}
	rt := &runtime{
		cfg:      cfg,
		plan:     plan,
		fabric:   fabric,
		mem:      mem,
		devs:     make([]*simt.Device, capacity),
		pooled:   make([]bool, capacity),
		inj:      faults.NewInjector(plan),
		busy:     make([]time.Duration, capacity),
		kernels:  make([]int, capacity),
		owned:    make([]int, capacity),
		deviceOK: make([]bool, capacity),
		readRank: make(map[string]int),
	}
	fabric.UseInjector(rt.inj)
	for r := 0; r < cfg.Ranks; r++ {
		rt.devs[r] = simt.NewDevice(cfg.Device)
		rt.deviceOK[r] = true
	}
	return rt, nil
}

// releaseDevices hands every provider-supplied device back through
// cfg.DeviceRelease. Called once after the run (the report reads device
// traffic first).
func (rt *runtime) releaseDevices() {
	if rt.cfg.DeviceRelease == nil {
		return
	}
	for r, dev := range rt.devs {
		if rt.pooled[r] && dev != nil {
			rt.cfg.DeviceRelease(dev)
			rt.devs[r] = nil
			rt.pooled[r] = false
		}
	}
}

// admitJoins applies the round's scheduled rank joins: each joiner gets a
// device (from cfg.DeviceProvider when the service wires a pool in, else a
// fresh simulated one), enters the fabric collective, and bumps the
// membership epoch. The re-deal hands it whole virtual shards — whole
// components under the component policy — and the owners it displaces ship
// it their contig records in one "join bootstrap" exchange, accounted as
// rebalanced bytes. Joins precede evictions at a boundary, so a round that
// both grows and shrinks re-deals through the grown set first, exactly as
// faults.ParseElastic replays it.
func (rt *runtime) admitJoins(round int, k int, ctgs []*locassm.CtgWithReads, smap ShardMap) error {
	joins := rt.inj.JoinsAt(round)
	if len(joins) == 0 {
		return nil
	}
	before := rt.mem.Deal()
	for _, r := range joins {
		dev := (*simt.Device)(nil)
		if rt.cfg.DeviceProvider != nil {
			d, err := rt.cfg.DeviceProvider()
			if err != nil {
				return fmt.Errorf("dist: no device for joining rank %d at round %d: %w", r, round, err)
			}
			dev, rt.pooled[r] = d, true
		} else {
			dev = simt.NewDevice(rt.cfg.Device)
		}
		if err := rt.mem.Join(r, round); err != nil {
			return err
		}
		rt.devs[r] = dev
		rt.deviceOK[r] = true
		rt.fabric.Join(r, round)
		rt.elastic.Joins++
	}
	after := rt.mem.Deal()
	matrix := newMatrix(rt.mem.Capacity())
	for _, c := range ctgs {
		s := smap.Shard(c.ID)
		src, dst := before.rankOf(s), after.rankOf(s)
		if src != dst {
			b := int64(len(c.Seq) + recordOverheadBytes)
			matrix[src][dst] += b
			rt.elastic.RebalancedBytes += b
		}
	}
	_, err := rt.fabric.Exchange(fmt.Sprintf("join bootstrap k=%d", k), matrix)
	return err
}

// evictCrashed applies the round's scheduled rank crashes (and elastic
// leaves, which are crash events with a deterministic victim): crashed
// ranks leave the collective and their virtual shards are re-dealt to the
// survivors. Contig state is replicated by the allgather (or held
// component-local with a scatter-home replica under component sharding),
// so survivors adopt local copies; the bytes whose ownership moves are
// accounted as recovered. Because the re-deal moves shards — and a shard
// holds whole components under the component policy — recovery never
// splits a component.
func (rt *runtime) evictCrashed(round int, ctgs []*locassm.CtgWithReads, smap ShardMap) error {
	crashes := rt.inj.CrashesAt(round)
	if len(crashes) == 0 {
		return nil
	}
	before := rt.mem.Deal()
	for _, r := range crashes {
		if !rt.mem.Alive(r) {
			continue
		}
		if rt.mem.LiveCount() == 1 {
			return fmt.Errorf("dist: rank %d crash at round %d leaves no survivor: %w",
				r, round, ErrUnrecoverable)
		}
		if err := rt.mem.Evict(r, round); err != nil {
			return err
		}
		rt.fabric.Evict(r, round)
		rt.rec.Evictions++
	}
	after := rt.mem.Deal()
	for _, c := range ctgs {
		s := smap.Shard(c.ID)
		if before.rankOf(s) != after.rankOf(s) {
			rt.rec.RecoveredBytes += int64(len(c.Seq) + recordOverheadBytes)
		}
	}
	return nil
}

// scatterReads models the initial distribution of the input pairs from the
// I/O rank (rank 0) to each read's home rank — the FASTQ scatter every
// distributed assembler starts with. Homes span the initial ranks only:
// join slots are still absent at scatter time.
func (rt *runtime) scatterReads(pairs []dna.PairedRead) error {
	matrix := newMatrix(rt.mem.Capacity())
	for i := range pairs {
		home := ReadHomeRank(pairs[i].Fwd.ID, rt.cfg.Ranks)
		matrix[0][home] += readMsgBytes(&pairs[i].Fwd) + readMsgBytes(&pairs[i].Rev)
	}
	_, err := rt.fabric.Exchange("read scatter", matrix)
	return err
}

// Name implements locassm.Engine.
func (rt *runtime) Name() string { return locassm.EngineDist }

// rankEngines builds one round's engines for rank r through the shared
// registry: the device engine over the rank's own GPU (with the round's
// injected kernel aborts wired into the driver's fault hook), and the host
// flat-table engine it degrades to under CPUAssembly or after a device
// loss.
func (rt *runtime) rankEngines(r, round, cpuWorkers int) (gpuEng, cpuEng locassm.Engine, err error) {
	// Scheduled kernel aborts: the first aborts launches on this rank
	// this round fail with a recoverable table fault, which the batch
	// driver answers by re-splitting the batch.
	var abortsLeft atomic.Int32
	abortsLeft.Store(int32(rt.inj.KernelAborts(r, round)))
	gcfg := rt.cfg.Pipeline.GPU
	gcfg.FaultHook = func() error {
		if abortsLeft.Add(-1) >= 0 {
			return fmt.Errorf("dist: injected kernel abort: %w", gpuht.ErrTableFull)
		}
		return nil
	}
	gpuEng, err = locassm.NewEngine(locassm.EngineSpec{
		Name:   locassm.EngineGPU,
		Config: rt.cfg.Pipeline.Locassm,
		GPU:    gcfg,
		Device: rt.devs[r],
	})
	if err != nil {
		return nil, nil, err
	}
	cpuEng, err = locassm.NewEngine(locassm.EngineSpec{
		Name:    locassm.EngineCPU,
		Config:  rt.cfg.Pipeline.Locassm,
		Workers: cpuWorkers,
	})
	return gpuEng, cpuEng, err
}

// Assemble implements locassm.Engine: one contigging round's local
// assembly, distributed. Per the Engine contract the input contigs are
// not mutated; the per-contig results are returned in input order and the
// caller (the pipeline's local-assembly stage) applies the extensions.
func (rt *runtime) Assemble(k int, ctgs []*locassm.CtgWithReads) ([]locassm.Result, locassm.Stats, error) {
	n := rt.mem.Capacity()
	v := rt.cfg.VirtualShards
	round := rt.rounds // 0-based, for the injector
	rt.rounds++

	// Shard map for the round: the hash policy is stateless; the component
	// policy runs the (timed) connected-components pass over the global
	// workload and packs whole components onto the virtual shards. Either
	// way the map is a pure function of (k, ctgs), never of N.
	var smap ShardMap = hashShardMap{v}
	if rt.cfg.ShardPolicy == ShardComponent {
		start := time.Now()
		cm := newComponentShardMap(k, ctgs, v)
		rt.compPass += time.Since(start)
		rt.components = append(rt.components, cm.count)
		smap = cm
	}

	// Round boundary — admit scheduled rank joins (bootstrap exchange,
	// epoch bump), then apply scheduled rank crashes and re-deal the dead
	// ranks' virtual shards over the survivors, then poison any device
	// scheduled to fail this round (its rank discovers the loss at first
	// launch and degrades to the host engine).
	if err := rt.admitJoins(round, k, ctgs, smap); err != nil {
		return nil, locassm.Stats{}, err
	}
	if err := rt.evictCrashed(round, ctgs, smap); err != nil {
		return nil, locassm.Stats{}, err
	}
	deal := rt.mem.Deal()
	live := deal.live
	nl := len(live)
	// In budget mode OOM events never poison devices: the pipeline's
	// counting budget absorbs them (MemPressure shrinks it and the pass
	// plan spills), so local assembly keeps its device.
	if rt.cfg.Pipeline.MemBudget == 0 {
		for _, r := range live {
			if rt.deviceOK[r] && rt.inj.DeviceFault(r, round) {
				rt.devs[r].InjectFault(nil)
			}
		}
	}

	// Phase 1 — read exchange. Hash policy: all-to-all, every rank routes
	// the candidate reads its alignments produced to the rank owning the
	// hit contig (MHM2's aggregating stores ahead of local assembly).
	// Component policy: reads live with their component, so only reads
	// whose component ownership moved travel — one migration per read,
	// mostly rank-local once residences settle.
	for r := range rt.owned {
		rt.owned[r] = 0
	}
	for _, c := range ctgs {
		rt.owned[deal.rankOf(smap.Shard(c.ID))]++
	}
	var exchange [][]int64
	if rt.cfg.ShardPolicy == ShardComponent {
		exchange = migrationMatrix(ctgs, smap, deal, n, rt.readRank, rt.mem)
	} else {
		exchange = readExchangeMatrix(ctgs, smap, deal, n)
	}
	if _, err := rt.fabric.Exchange(fmt.Sprintf("read exchange k=%d", k), exchange); err != nil {
		return nil, locassm.Stats{}, err
	}

	// Phase 2 — sharded local assembly: each live rank drives its virtual
	// shards concurrently with every other rank, through a registry
	// engine — its own device's batch driver or, under CPUAssembly or
	// after a device fault, the host flat-table engine.
	byShard, shardIdx := shardContigs(ctgs, smap, v)
	cpuWorkers := rt.cfg.CPUWorkers
	if cpuWorkers < 1 {
		cpuWorkers = goruntime.GOMAXPROCS(0) / n
		if cpuWorkers < 1 {
			cpuWorkers = 1
		}
	}

	shardRes := make([]*shardOutcome, v)
	shardBusy := make([]time.Duration, v) // each shard written only by its owner
	fellBack := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(nl)
	for i, r := range live {
		go func(i, r int) {
			defer wg.Done()
			gpuEng, cpuEng, err := rt.rankEngines(r, round, cpuWorkers)
			if err != nil {
				errs[r] = err
				return
			}
			eng := gpuEng
			if rt.cfg.CPUAssembly || !rt.deviceOK[r] {
				eng = cpuEng
			}
			for s := i; s < v; s += nl { // virtual shard s lives on live[s mod nl]
				if len(byShard[s]) == 0 {
					continue
				}
				results, stats, err := eng.Assemble(k, byShard[s])
				if errors.Is(err, simt.ErrDeviceLost) {
					// Device lost mid-round: degrade this rank to its
					// host engine and recompute the shard there. The
					// flat-table engine is bit-identical to the GPU
					// path, so results are unaffected.
					eng = cpuEng
					rt.deviceOK[r] = false
					fellBack[r] = true
					results, stats, err = eng.Assemble(k, byShard[s])
				}
				if err != nil {
					errs[r] = fmt.Errorf("rank %d shard %d: %w", r, s, err)
					return
				}
				shardRes[s] = &shardOutcome{results: results, stats: stats, onGPU: eng == gpuEng}
				shardBusy[s] = stats.Busy
			}
		}(i, r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, locassm.Stats{}, err
		}
	}
	factor := make([]float64, n)
	for r := range factor {
		factor[r] = 1
	}
	for _, r := range live {
		if fellBack[r] {
			rt.rec.DeviceFallbacks++
		}
		// A straggler computes the same work, slower — every batch the rank
		// runs, own or stolen, pays its factor.
		if f := rt.inj.StragglerFactor(r, round); f != 1 {
			rt.rec.Stragglers++
			factor[r] = f
		}
	}

	// Steal scheduling — replay the round's batch queues over the per-shard
	// modeled costs (see steal.go). Output bytes never depend on it: only
	// the busy accounting and the round makespan do. The stolen batches'
	// payloads cross the fabric in one "work steal" exchange.
	shardBytes := make([]int64, v)
	for s := 0; s < v; s++ {
		for _, c := range byShard[s] {
			shardBytes[s] += ctgWeight(c)
		}
	}
	sim := stealSchedule(deal, shardBusy, shardBytes, factor, n, !rt.cfg.NoSteal)
	if len(sim.steals) > 0 {
		flows := make(map[[2]int]bool)
		for _, st := range sim.steals {
			flows[[2]int{st.victim, st.thief}] = true
			rt.elastic.StolenBatches++
			rt.elastic.StolenBytes += st.bytes
		}
		rt.elastic.Steals += len(flows)
		if _, err := rt.fabric.Exchange(fmt.Sprintf("work steal k=%d", k), stealMatrix(sim.steals, n)); err != nil {
			return nil, locassm.Stats{}, err
		}
	}
	rt.elastic.NoStealWall += sim.noStealMakespan
	rt.elastic.StealWall += sim.makespan

	// Gather — canonical virtual-shard order, so accounting and kernel
	// lists are identical for every rank count.
	roundMax := sim.makespan
	for r := 0; r < n; r++ {
		rt.busy[r] += sim.busy[r]
	}
	rt.compWall += roundMax
	results := make([]locassm.Result, len(ctgs))
	var stats locassm.Stats
	for s := 0; s < v; s++ {
		out := shardRes[s]
		if out == nil {
			continue
		}
		if out.onGPU {
			rt.kernels[deal.rankOf(s)] += len(out.stats.Kernels)
		}
		rt.rec.BatchResplits += out.stats.Resplits
		shardStats := out.stats
		shardStats.Busy = 0 // ranks overlap; the round's busy wall is roundMax
		stats.Add(shardStats)
		for j, gi := range shardIdx[s] {
			results[gi] = out.results[j]
		}
	}
	stats.Busy = roundMax

	// Phase 3 — contig allgather: owners broadcast their extended contigs
	// so every live rank holds the replicated alignment index for the next
	// round (and the final outputs). The extensions are not applied here
	// (the pipeline stage does that), so the matrix accounts the extended
	// lengths from the results. Under component sharding the replicated
	// index collapses to a component-local one — there are no
	// cross-component contigs to broadcast — so every byte stays
	// rank-local.
	var gather [][]int64
	if rt.cfg.ShardPolicy == ShardComponent {
		gather = localIndexMatrix(ctgs, results, smap, deal, n)
	} else {
		gather = allgatherMatrix(ctgs, results, smap, deal, n)
	}
	_, err := rt.fabric.Exchange(fmt.Sprintf("contig allgather k=%d", k), gather)
	return results, stats, err
}

func newMatrix(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	return m
}

// readExchangeMatrix builds the all-to-all byte matrix of the per-round
// read routing under the hash policy: every candidate read travels from
// its home rank to the live rank owning the contig it aligned to, once per
// (contig, side) it is a candidate for — exactly as MHM2 routes one
// aggregated record per alignment. Rows and columns of evicted ranks stay
// zero. Self-destined records (read home == contig owner) count as
// rank-local bytes in the fabric, never wire traffic.
func readExchangeMatrix(ctgs []*locassm.CtgWithReads, smap ShardMap, deal *shardDeal, ranks int) [][]int64 {
	matrix := newMatrix(ranks)
	for _, c := range ctgs {
		owner := deal.rankOf(smap.Shard(c.ID))
		for i := range c.LeftReads {
			matrix[deal.readHome(c.LeftReads[i].ID)][owner] += readMsgBytes(&c.LeftReads[i])
		}
		for i := range c.RightReads {
			matrix[deal.readHome(c.RightReads[i].ID)][owner] += readMsgBytes(&c.RightReads[i])
		}
	}
	return matrix
}

// allgatherMatrix builds the byte matrix of the post-round contig
// broadcast under the hash policy: each owner ships every contig it owns —
// at its post-assembly extended length, computed from the round's results —
// to all other live ranks.
func allgatherMatrix(ctgs []*locassm.CtgWithReads, results []locassm.Result, smap ShardMap, deal *shardDeal, ranks int) [][]int64 {
	matrix := newMatrix(ranks)
	for i, c := range ctgs {
		owner := deal.rankOf(smap.Shard(c.ID))
		extended := len(results[i].LeftExt) + len(c.Seq) + len(results[i].RightExt)
		bytes := int64(extended + recordOverheadBytes)
		for _, d := range deal.live {
			if d != owner {
				matrix[owner][d] += bytes
			}
		}
	}
	return matrix
}

// Run executes the pipeline distributed across cfg.Ranks simulated ranks
// and returns the gathered result — bit-identical in contigs, scaffolds,
// and kernel launch lists to the same Config run at Ranks=1 — together
// with the strong-scaling report. The modeled communication time is folded
// into the result's Timings under pipeline.StageComm and into
// Work.CommTime, the way the simt device folds modeled PCIe time into
// Work.GPUTransferTime.
func Run(pairs []dna.PairedRead, cfg Config) (*pipeline.Result, *Report, error) {
	return RunContext(context.Background(), pairs, cfg)
}

// RunContext is Run with cancellation, forwarded to the pipeline stage
// driver: a canceled distributed run stops at the next stage boundary
// (fabric exchanges in flight complete first, since they execute inside
// the local-assembly stage).
func RunContext(ctx context.Context, pairs []dna.PairedRead, cfg Config) (*pipeline.Result, *Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rt, err := newRuntime(cfg)
	if err != nil {
		return nil, nil, err
	}
	defer rt.releaseDevices()
	if err := rt.scatterReads(pairs); err != nil {
		return nil, nil, err
	}

	pcfg := cfg.Pipeline
	pcfg.Engine = locassm.EngineSpec{Name: locassm.EngineDist, Instance: rt}
	if pcfg.MemBudget > 0 && pcfg.MemPressure == nil {
		// Chaos OOM events become memory pressure on the counting budget
		// (graceful spill) instead of device poison pills.
		pcfg.MemPressure = rt.inj.OOMCount
	}
	res, err := pipeline.RunContext(ctx, pairs, pcfg)
	if err != nil {
		return nil, nil, err
	}
	rt.rec.OOMReplans += res.Work.KmerBudget.OOMReplans
	rt.rec.SpillPasses += res.Work.KmerBudget.SpillPasses

	commTime := rt.fabric.TotalTime()
	res.Timings.Add(pipeline.StageComm, commTime)
	res.Work.CommTime = commTime
	res.Work.CommBytes = rt.fabric.TotalBytes()
	res.Work.CommMsgs = rt.fabric.TotalMsgs()
	res.Work.Steals = rt.elastic.StolenBatches
	res.Work.RankJoins = rt.elastic.Joins
	res.Work.MembershipEpochs = rt.mem.Epoch() + 1
	return res, rt.report(), nil
}
