// Package dist is a rank-based distributed runtime for the assembly
// pipeline: it shards contigs across N simulated ranks — each owning one
// simt device — routes aligned reads to their contig-owning rank through a
// modeled communication fabric, runs per-rank GPU local assembly
// concurrently with real goroutines, and gathers everything back into one
// pipeline.Result that is bit-identical to the single-rank run.
//
// The comm fabric plays the role UPC++'s runtime plays in MetaHipMer2: an
// all-to-all exchange is modeled with an α/β (latency/bandwidth) cost per
// rank and per-rank traffic counters, the same way internal/simt models
// PCIe transfers analytically while the data itself moves through shared
// memory. The dominant exchanges of the real assembler — routing aligned
// reads to contig owners before local assembly (MHM2's aggregating stores)
// and allgathering extended contigs for the next round's replicated
// alignment index — are both represented.
package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mhm2sim/internal/faults"
)

// ErrUnrecoverable marks a fault the runtime could not recover from: an
// exchange that kept failing after the retry budget, or a crash schedule
// that leaves no surviving rank. Callers match it with errors.Is.
var ErrUnrecoverable = errors.New("dist: unrecoverable fault")

// FabricConfig models the inter-rank network: each aggregated message pays
// a fixed latency α, and each rank's injection/ejection port moves bytes at
// β GB/s. Messages between a rank and itself stay in shared memory and cost
// nothing (they are still counted, as MHM2 counts local aggregating-store
// hits).
type FabricConfig struct {
	// LatencyPerMsg is α: the per-message software+wire latency.
	LatencyPerMsg time.Duration
	// BandwidthGBps is β: per-rank injection bandwidth in GB/s.
	BandwidthGBps float64
	// AggBufferBytes is the aggregating-store buffer size: bytes destined
	// to one peer are shipped in ceil(bytes/AggBufferBytes) messages,
	// mirroring MHM2's buffered RPCs. 0 = DefaultAggBufferBytes.
	AggBufferBytes int64
	// ExchangeTimeout is the modeled time a dropped exchange attempt costs
	// before the collective declares it failed and retries. 0 =
	// DefaultExchangeTimeout.
	ExchangeTimeout time.Duration
	// MaxRetries bounds retry attempts per exchange; an exchange still
	// failing after MaxRetries retries surfaces ErrUnrecoverable. 0 =
	// DefaultMaxRetries.
	MaxRetries int
	// RetryBackoff is the base of the bounded exponential backoff between
	// retry attempts (doubled per attempt, capped at
	// RetryBackoff << maxBackoffShift). 0 = DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// Default fabric parameters, loosely a Summit-class EDR InfiniBand port:
// ~2 µs end-to-end message latency and 12.5 GB/s (100 Gbit/s) per rank.
const (
	DefaultLatencyPerMsg   = 2 * time.Microsecond
	DefaultBandwidthGBps   = 12.5
	DefaultAggBufferBytes  = 1 << 20
	DefaultExchangeTimeout = 10 * time.Millisecond
	DefaultMaxRetries      = 3
	DefaultRetryBackoff    = time.Millisecond

	// maxBackoffShift caps the exponential backoff at base << shift.
	maxBackoffShift = 6
)

// DefaultFabricConfig returns the Summit-like fabric model.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{}.withDefaults()
}

// withDefaults fills zero-valued fields one by one, so a partially
// specified config (say, only BandwidthGBps overridden) inherits defaults
// for the rest instead of failing validation or being silently replaced
// wholesale.
func (c FabricConfig) withDefaults() FabricConfig {
	if c.LatencyPerMsg == 0 {
		c.LatencyPerMsg = DefaultLatencyPerMsg
	}
	if c.BandwidthGBps == 0 {
		c.BandwidthGBps = DefaultBandwidthGBps
	}
	if c.AggBufferBytes == 0 {
		c.AggBufferBytes = DefaultAggBufferBytes
	}
	if c.ExchangeTimeout == 0 {
		c.ExchangeTimeout = DefaultExchangeTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = DefaultRetryBackoff
	}
	return c
}

// Validate checks fabric parameters.
func (c *FabricConfig) Validate() error {
	if c.LatencyPerMsg < 0 {
		return fmt.Errorf("dist: negative fabric latency %v", c.LatencyPerMsg)
	}
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("dist: fabric bandwidth %g GB/s must be positive", c.BandwidthGBps)
	}
	if c.AggBufferBytes < 0 {
		return fmt.Errorf("dist: negative aggregation buffer %d", c.AggBufferBytes)
	}
	if c.ExchangeTimeout < 0 {
		return fmt.Errorf("dist: negative exchange timeout %v", c.ExchangeTimeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("dist: negative retry budget %d", c.MaxRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("dist: negative retry backoff %v", c.RetryBackoff)
	}
	return nil
}

// StageTraffic is the per-rank accounting of one all-to-all exchange.
type StageTraffic struct {
	Stage string
	// Sent/Recv are network bytes per rank (excluding rank-local traffic);
	// Msgs counts aggregated messages injected per rank.
	Sent, Recv []int64
	Msgs       []int64
	// LocalBytes counts rank-local (src == dst) bytes, which never touch
	// the wire.
	LocalBytes []int64
	// PerRank is each rank's modeled time in the exchange:
	// max(inject, eject) since sends and receives overlap on full-duplex
	// ports. Time is the exchange wall time — the slowest rank, since an
	// all-to-all is a collective barrier.
	PerRank []time.Duration
	Time    time.Duration
	// Retries counts failed attempts of this exchange (injected drops or
	// corruptions) before the successful one; RetryTime is the modeled time
	// those attempts and their backoff cost, already folded into Time.
	Retries   int
	RetryTime time.Duration
}

// TotalBytes sums the network bytes of the exchange (each byte counted
// once, on the send side).
func (st *StageTraffic) TotalBytes() int64 {
	var n int64
	for _, b := range st.Sent {
		n += b
	}
	return n
}

// TotalMsgs sums the aggregated messages of the exchange.
func (st *StageTraffic) TotalMsgs() int64 {
	var n int64
	for _, m := range st.Msgs {
		n += m
	}
	return n
}

// TotalLocalBytes sums the rank-local (src == dst) bytes of the exchange —
// data that moved through shared memory, never the wire.
func (st *StageTraffic) TotalLocalBytes() int64 {
	var n int64
	for _, b := range st.LocalBytes {
		n += b
	}
	return n
}

// Locality is the fraction of the exchange's bytes that stayed rank-local,
// in [0,1]. A stage that moved nothing at all reports 1 (fully local).
func (st *StageTraffic) Locality() float64 {
	local, remote := st.TotalLocalBytes(), st.TotalBytes()
	if local+remote == 0 {
		return 1
	}
	return float64(local) / float64(local+remote)
}

// Fabric is the simulated interconnect between ranks: it executes modeled
// all-to-all exchanges and accumulates per-stage, per-rank traffic and
// time. Safe for concurrent use.
type Fabric struct {
	cfg FabricConfig
	n   int
	inj *faults.Injector

	mu         sync.Mutex
	stages     []*StageTraffic
	dead       []bool // evicted ranks no longer participate in collectives
	absent     []bool // reserved join slots not yet admitted to the collective
	evictRound []int  // round each rank was evicted at (-1 while alive)
	joinRound  []int  // round each rank joined at (-1 for initial members)
	failedObs  []int  // failed exchange attempts each live rank observed
	retries    int
	retryTime  time.Duration
}

// NewFabric creates a fabric connecting n ranks. Zero-valued operational
// fields (aggregation buffer, timeout, retry budget, backoff) take their
// defaults; latency and bandwidth are validated as given, since a zero
// bandwidth is a configuration error, not a request for the default.
func NewFabric(n int, cfg FabricConfig) (*Fabric, error) {
	return NewFabricWithCapacity(n, n, cfg)
}

// NewFabricWithCapacity creates a fabric sized for an elastic run: ranks
// 0..initial-1 participate from the start, and slots initial..capacity-1
// are wired but absent — they observe no collective failures and accrue no
// exchange time until Join admits them.
func NewFabricWithCapacity(initial, capacity int, cfg FabricConfig) (*Fabric, error) {
	n := capacity
	if initial < 1 {
		return nil, fmt.Errorf("dist: fabric needs ≥ 1 rank, got %d", initial)
	}
	if capacity < initial {
		return nil, fmt.Errorf("dist: fabric capacity %d below initial rank count %d", capacity, initial)
	}
	if cfg.AggBufferBytes == 0 {
		cfg.AggBufferBytes = DefaultAggBufferBytes
	}
	if cfg.ExchangeTimeout == 0 {
		cfg.ExchangeTimeout = DefaultExchangeTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		cfg:        cfg,
		n:          n,
		dead:       make([]bool, n),
		absent:     make([]bool, n),
		evictRound: make([]int, n),
		joinRound:  make([]int, n),
		failedObs:  make([]int, n),
	}
	for r := range f.evictRound {
		f.evictRound[r] = -1
		f.joinRound[r] = -1
		f.absent[r] = r >= initial
	}
	return f, nil
}

// Ranks returns the number of connected ranks.
func (f *Fabric) Ranks() int { return f.n }

// UseInjector attaches a fault injector; exchanges from then on consult it
// by ordinal for drops, corruptions, and latency spikes. A nil injector is
// inert.
func (f *Fabric) UseInjector(in *faults.Injector) { f.inj = in }

// Evict marks a rank dead as of the given round: it stops observing
// collective failures and accrues no further exchange time (the runtime
// routes no traffic through it).
func (f *Fabric) Evict(rank, round int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rank >= 0 && rank < f.n && !f.dead[rank] {
		f.dead[rank] = true
		f.evictRound[rank] = round
	}
}

// Join admits a reserved rank slot to the collective as of the given round:
// from the next exchange on it observes failures and accrues exchange time
// like any member.
func (f *Fabric) Join(rank, round int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if rank >= 0 && rank < f.n && f.absent[rank] {
		f.absent[rank] = false
		f.joinRound[rank] = round
	}
}

// RankHealth is the fabric's view of one rank.
type RankHealth struct {
	Rank  int
	Alive bool
	// EvictedRound is the 0-based round the rank was evicted at (-1 while
	// alive).
	EvictedRound int
	// JoinedRound is the 0-based round the rank joined the collective at
	// (-1 for initial members).
	JoinedRound int
	// FailedAttempts counts the failed collective attempts the rank
	// observed while alive (an all-to-all failure is seen by every live
	// participant).
	FailedAttempts int
}

// Health returns the per-rank health tracker state. Reserved slots that
// never joined report as not alive with JoinedRound -1.
func (f *Fabric) Health() []RankHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]RankHealth, f.n)
	for r := range out {
		out[r] = RankHealth{
			Rank:           r,
			Alive:          !f.dead[r] && !f.absent[r],
			EvictedRound:   f.evictRound[r],
			JoinedRound:    f.joinRound[r],
			FailedAttempts: f.failedObs[r],
		}
	}
	return out
}

// Retries returns the total failed exchange attempts recovered by retry and
// the modeled time they cost.
func (f *Fabric) Retries() (int, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retries, f.retryTime
}

// msgsFor is the number of aggregated messages needed for b bytes.
func (f *Fabric) msgsFor(b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (b + f.cfg.AggBufferBytes - 1) / f.cfg.AggBufferBytes
}

// Exchange models one all-to-all: matrix[src][dst] is the bytes rank src
// sends to rank dst. It records and returns the stage's traffic. The model
// per rank r is
//
//	inject(r) = Σ_{d≠r} msgs(r,d)·α + sent(r)/β
//	eject(r)  = Σ_{s≠r} msgs(s,r)·α + recv(r)/β
//	time(r)   = max(inject, eject)    (full-duplex ports)
//
// and the exchange completes when the slowest rank does.
//
// With an injector attached, the exchange's 0-based ordinal (its position
// in the stage log) selects injected faults: a latency spike multiplies the
// attempt time; a drop costs the timeout, a corruption the full transfer
// (detected at ejection), and each failed attempt adds a bounded
// exponential backoff before the retry. An exchange still failing after
// MaxRetries retries returns ErrUnrecoverable.
func (f *Fabric) Exchange(stage string, matrix [][]int64) (*StageTraffic, error) {
	if len(matrix) != f.n {
		return nil, fmt.Errorf("dist: exchange matrix has %d rows for %d ranks", len(matrix), f.n)
	}
	st := &StageTraffic{
		Stage:      stage,
		Sent:       make([]int64, f.n),
		Recv:       make([]int64, f.n),
		Msgs:       make([]int64, f.n),
		LocalBytes: make([]int64, f.n),
		PerRank:    make([]time.Duration, f.n),
	}
	inMsgs := make([]int64, f.n) // messages ejected at each rank
	for src := range matrix {
		if len(matrix[src]) != f.n {
			return nil, fmt.Errorf("dist: exchange row %d has %d columns for %d ranks", src, len(matrix[src]), f.n)
		}
		for dst, b := range matrix[src] {
			if b < 0 {
				return nil, fmt.Errorf("dist: negative traffic %d from rank %d to %d", b, src, dst)
			}
			if src == dst {
				st.LocalBytes[src] += b
				continue
			}
			m := f.msgsFor(b)
			st.Sent[src] += b
			st.Recv[dst] += b
			st.Msgs[src] += m
			inMsgs[dst] += m
		}
	}
	bytesPerSec := f.cfg.BandwidthGBps * 1e9
	for r := 0; r < f.n; r++ {
		inject := time.Duration(float64(st.Msgs[r]))*f.cfg.LatencyPerMsg +
			time.Duration(float64(st.Sent[r])/bytesPerSec*float64(time.Second))
		eject := time.Duration(float64(inMsgs[r]))*f.cfg.LatencyPerMsg +
			time.Duration(float64(st.Recv[r])/bytesPerSec*float64(time.Second))
		st.PerRank[r] = inject
		if eject > inject {
			st.PerRank[r] = eject
		}
		if st.PerRank[r] > st.Time {
			st.Time = st.PerRank[r]
		}
	}

	f.mu.Lock()
	ordinal := len(f.stages)
	f.mu.Unlock()
	if factor := f.inj.ExchangeDelay(ordinal); factor != 1 {
		for r := range st.PerRank {
			st.PerRank[r] = time.Duration(float64(st.PerRank[r]) * factor)
		}
		st.Time = time.Duration(float64(st.Time) * factor)
	}
	if fails, corrupt := f.inj.ExchangeFailures(ordinal); fails > 0 {
		if fails > f.cfg.MaxRetries {
			return nil, fmt.Errorf("dist: exchange %d (%s) still failing after %d of %d injected failures: %w",
				ordinal, stage, f.cfg.MaxRetries, fails, ErrUnrecoverable)
		}
		var penalty time.Duration
		backoff := f.cfg.RetryBackoff
		maxBackoff := f.cfg.RetryBackoff << maxBackoffShift
		for a := 0; a < fails; a++ {
			// A drop is detected by the collective timeout; a corruption
			// only at ejection, after paying the full transfer.
			cost := f.cfg.ExchangeTimeout
			if corrupt {
				cost = st.Time
			}
			penalty += cost + backoff
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		st.Retries = fails
		st.RetryTime = penalty
		st.Time += penalty
		f.mu.Lock()
		for r := range st.PerRank {
			if !f.dead[r] && !f.absent[r] {
				st.PerRank[r] += penalty
				f.failedObs[r] += fails
			}
		}
		f.retries += fails
		f.retryTime += penalty
		f.mu.Unlock()
	}

	f.mu.Lock()
	f.stages = append(f.stages, st)
	f.mu.Unlock()
	return st, nil
}

// Stages returns a snapshot of every exchange recorded so far, in order.
func (f *Fabric) Stages() []StageTraffic {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]StageTraffic, len(f.stages))
	for i, st := range f.stages {
		out[i] = *st
	}
	return out
}

// TotalTime sums the modeled wall time of every recorded exchange (the
// exchanges are collectives separated by compute, so they serialize).
func (f *Fabric) TotalTime() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var t time.Duration
	for _, st := range f.stages {
		t += st.Time
	}
	return t
}

// RankTotals returns, for one rank, its accumulated comm time, network
// bytes sent and received, and messages injected across every exchange.
func (f *Fabric) RankTotals(r int) (comm time.Duration, sent, recv, msgs int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range f.stages {
		comm += st.PerRank[r]
		sent += st.Sent[r]
		recv += st.Recv[r]
		msgs += st.Msgs[r]
	}
	return comm, sent, recv, msgs
}

// TotalBytes and TotalMsgs sum network traffic across every exchange.
func (f *Fabric) TotalBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, st := range f.stages {
		n += st.TotalBytes()
	}
	return n
}

// TotalLocalBytes sums rank-local bytes across every exchange.
func (f *Fabric) TotalLocalBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, st := range f.stages {
		n += st.TotalLocalBytes()
	}
	return n
}

// TotalMsgs sums aggregated messages across every exchange.
func (f *Fabric) TotalMsgs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, st := range f.stages {
		n += st.TotalMsgs()
	}
	return n
}
