// Package dist is a rank-based distributed runtime for the assembly
// pipeline: it shards contigs across N simulated ranks — each owning one
// simt device — routes aligned reads to their contig-owning rank through a
// modeled communication fabric, runs per-rank GPU local assembly
// concurrently with real goroutines, and gathers everything back into one
// pipeline.Result that is bit-identical to the single-rank run.
//
// The comm fabric plays the role UPC++'s runtime plays in MetaHipMer2: an
// all-to-all exchange is modeled with an α/β (latency/bandwidth) cost per
// rank and per-rank traffic counters, the same way internal/simt models
// PCIe transfers analytically while the data itself moves through shared
// memory. The dominant exchanges of the real assembler — routing aligned
// reads to contig owners before local assembly (MHM2's aggregating stores)
// and allgathering extended contigs for the next round's replicated
// alignment index — are both represented.
package dist

import (
	"fmt"
	"sync"
	"time"
)

// FabricConfig models the inter-rank network: each aggregated message pays
// a fixed latency α, and each rank's injection/ejection port moves bytes at
// β GB/s. Messages between a rank and itself stay in shared memory and cost
// nothing (they are still counted, as MHM2 counts local aggregating-store
// hits).
type FabricConfig struct {
	// LatencyPerMsg is α: the per-message software+wire latency.
	LatencyPerMsg time.Duration
	// BandwidthGBps is β: per-rank injection bandwidth in GB/s.
	BandwidthGBps float64
	// AggBufferBytes is the aggregating-store buffer size: bytes destined
	// to one peer are shipped in ceil(bytes/AggBufferBytes) messages,
	// mirroring MHM2's buffered RPCs. 0 = DefaultAggBufferBytes.
	AggBufferBytes int64
}

// Default fabric parameters, loosely a Summit-class EDR InfiniBand port:
// ~2 µs end-to-end message latency and 12.5 GB/s (100 Gbit/s) per rank.
const (
	DefaultLatencyPerMsg  = 2 * time.Microsecond
	DefaultBandwidthGBps  = 12.5
	DefaultAggBufferBytes = 1 << 20
)

// DefaultFabricConfig returns the Summit-like fabric model.
func DefaultFabricConfig() FabricConfig {
	return FabricConfig{
		LatencyPerMsg:  DefaultLatencyPerMsg,
		BandwidthGBps:  DefaultBandwidthGBps,
		AggBufferBytes: DefaultAggBufferBytes,
	}
}

// Validate checks fabric parameters.
func (c *FabricConfig) Validate() error {
	if c.LatencyPerMsg < 0 {
		return fmt.Errorf("dist: negative fabric latency %v", c.LatencyPerMsg)
	}
	if c.BandwidthGBps <= 0 {
		return fmt.Errorf("dist: fabric bandwidth %g GB/s must be positive", c.BandwidthGBps)
	}
	if c.AggBufferBytes < 0 {
		return fmt.Errorf("dist: negative aggregation buffer %d", c.AggBufferBytes)
	}
	return nil
}

// StageTraffic is the per-rank accounting of one all-to-all exchange.
type StageTraffic struct {
	Stage string
	// Sent/Recv are network bytes per rank (excluding rank-local traffic);
	// Msgs counts aggregated messages injected per rank.
	Sent, Recv []int64
	Msgs       []int64
	// LocalBytes counts rank-local (src == dst) bytes, which never touch
	// the wire.
	LocalBytes []int64
	// PerRank is each rank's modeled time in the exchange:
	// max(inject, eject) since sends and receives overlap on full-duplex
	// ports. Time is the exchange wall time — the slowest rank, since an
	// all-to-all is a collective barrier.
	PerRank []time.Duration
	Time    time.Duration
}

// TotalBytes sums the network bytes of the exchange (each byte counted
// once, on the send side).
func (st *StageTraffic) TotalBytes() int64 {
	var n int64
	for _, b := range st.Sent {
		n += b
	}
	return n
}

// TotalMsgs sums the aggregated messages of the exchange.
func (st *StageTraffic) TotalMsgs() int64 {
	var n int64
	for _, m := range st.Msgs {
		n += m
	}
	return n
}

// Fabric is the simulated interconnect between ranks: it executes modeled
// all-to-all exchanges and accumulates per-stage, per-rank traffic and
// time. Safe for concurrent use.
type Fabric struct {
	cfg FabricConfig
	n   int

	mu     sync.Mutex
	stages []*StageTraffic
}

// NewFabric creates a fabric connecting n ranks.
func NewFabric(n int, cfg FabricConfig) (*Fabric, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: fabric needs ≥ 1 rank, got %d", n)
	}
	if cfg.AggBufferBytes == 0 {
		cfg.AggBufferBytes = DefaultAggBufferBytes
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Fabric{cfg: cfg, n: n}, nil
}

// Ranks returns the number of connected ranks.
func (f *Fabric) Ranks() int { return f.n }

// msgsFor is the number of aggregated messages needed for b bytes.
func (f *Fabric) msgsFor(b int64) int64 {
	if b <= 0 {
		return 0
	}
	return (b + f.cfg.AggBufferBytes - 1) / f.cfg.AggBufferBytes
}

// Exchange models one all-to-all: matrix[src][dst] is the bytes rank src
// sends to rank dst. It records and returns the stage's traffic. The model
// per rank r is
//
//	inject(r) = Σ_{d≠r} msgs(r,d)·α + sent(r)/β
//	eject(r)  = Σ_{s≠r} msgs(s,r)·α + recv(r)/β
//	time(r)   = max(inject, eject)    (full-duplex ports)
//
// and the exchange completes when the slowest rank does.
func (f *Fabric) Exchange(stage string, matrix [][]int64) (*StageTraffic, error) {
	if len(matrix) != f.n {
		return nil, fmt.Errorf("dist: exchange matrix has %d rows for %d ranks", len(matrix), f.n)
	}
	st := &StageTraffic{
		Stage:      stage,
		Sent:       make([]int64, f.n),
		Recv:       make([]int64, f.n),
		Msgs:       make([]int64, f.n),
		LocalBytes: make([]int64, f.n),
		PerRank:    make([]time.Duration, f.n),
	}
	inMsgs := make([]int64, f.n) // messages ejected at each rank
	for src := range matrix {
		if len(matrix[src]) != f.n {
			return nil, fmt.Errorf("dist: exchange row %d has %d columns for %d ranks", src, len(matrix[src]), f.n)
		}
		for dst, b := range matrix[src] {
			if b < 0 {
				return nil, fmt.Errorf("dist: negative traffic %d from rank %d to %d", b, src, dst)
			}
			if src == dst {
				st.LocalBytes[src] += b
				continue
			}
			m := f.msgsFor(b)
			st.Sent[src] += b
			st.Recv[dst] += b
			st.Msgs[src] += m
			inMsgs[dst] += m
		}
	}
	bytesPerSec := f.cfg.BandwidthGBps * 1e9
	for r := 0; r < f.n; r++ {
		inject := time.Duration(float64(st.Msgs[r]))*f.cfg.LatencyPerMsg +
			time.Duration(float64(st.Sent[r])/bytesPerSec*float64(time.Second))
		eject := time.Duration(float64(inMsgs[r]))*f.cfg.LatencyPerMsg +
			time.Duration(float64(st.Recv[r])/bytesPerSec*float64(time.Second))
		st.PerRank[r] = inject
		if eject > inject {
			st.PerRank[r] = eject
		}
		if st.PerRank[r] > st.Time {
			st.Time = st.PerRank[r]
		}
	}
	f.mu.Lock()
	f.stages = append(f.stages, st)
	f.mu.Unlock()
	return st, nil
}

// Stages returns a snapshot of every exchange recorded so far, in order.
func (f *Fabric) Stages() []StageTraffic {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]StageTraffic, len(f.stages))
	for i, st := range f.stages {
		out[i] = *st
	}
	return out
}

// TotalTime sums the modeled wall time of every recorded exchange (the
// exchanges are collectives separated by compute, so they serialize).
func (f *Fabric) TotalTime() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var t time.Duration
	for _, st := range f.stages {
		t += st.Time
	}
	return t
}

// RankTotals returns, for one rank, its accumulated comm time, network
// bytes sent and received, and messages injected across every exchange.
func (f *Fabric) RankTotals(r int) (comm time.Duration, sent, recv, msgs int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range f.stages {
		comm += st.PerRank[r]
		sent += st.Sent[r]
		recv += st.Recv[r]
		msgs += st.Msgs[r]
	}
	return comm, sent, recv, msgs
}

// TotalBytes and TotalMsgs sum network traffic across every exchange.
func (f *Fabric) TotalBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, st := range f.stages {
		n += st.TotalBytes()
	}
	return n
}

// TotalMsgs sums aggregated messages across every exchange.
func (f *Fabric) TotalMsgs() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, st := range f.stages {
		n += st.TotalMsgs()
	}
	return n
}
