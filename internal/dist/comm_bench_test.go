package dist

import (
	"math/rand"
	"strings"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/synth"
)

// BenchmarkComponentPass times the per-round connected-components pass plus
// LPT packing — the compute the component policy adds to every round. The
// workload shape (hundreds of linked groups) matches a contigging round of
// a many-organism community.
func BenchmarkComponentPass(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	ctgs := componentWorkload(rng, 400, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newComponentShardMap(21, ctgs, DefaultVirtualShards)
		if m.count == 0 {
			b.Fatal("no components")
		}
	}
}

// benchSoilPairs builds the scaled-down soil community shared by the
// comm-volume benchmarks.
func benchSoilPairs(b *testing.B) []dna.PairedRead {
	b.Helper()
	p := synth.SoilPreset()
	p.Com.NumGenomes = 12
	_, pairs, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	return pairs
}

// benchCommVolume runs the soil community at N=8 under one shard policy
// and reports the remote and local byte volumes of the read-exchange and
// contig-allgather stages as custom metrics, so the BENCH trajectory
// tracks the comm-volume win of component sharding across PRs.
func benchCommVolume(b *testing.B, policy string) {
	pairs := benchSoilPairs(b)
	cfg := DefaultConfig(8)
	cfg.Pipeline.Rounds = []int{21, 33}
	cfg.ShardPolicy = policy
	cfg.CPUAssembly = true
	b.ResetTimer()
	var remote, local, passNS int64
	for i := 0; i < b.N; i++ {
		_, rep, err := Run(pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		remote, local = 0, 0
		for j := range rep.Stages {
			st := &rep.Stages[j]
			if strings.HasPrefix(st.Stage, "read exchange") || strings.HasPrefix(st.Stage, "contig allgather") {
				remote += st.TotalBytes()
				local += st.TotalLocalBytes()
			}
		}
		passNS = rep.ComponentPassTime.Nanoseconds()
	}
	b.ReportMetric(float64(remote), "remote-B/op")
	b.ReportMetric(float64(local), "local-B/op")
	if policy == ShardComponent {
		b.ReportMetric(float64(passNS), "comp-pass-ns/op")
	}
}

func BenchmarkCommVolumeHash(b *testing.B)      { benchCommVolume(b, ShardHash) }
func BenchmarkCommVolumeComponent(b *testing.B) { benchCommVolume(b, ShardComponent) }
