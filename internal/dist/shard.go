package dist

import (
	"strings"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/murmur"
)

// Sharding is two-level, MetaHipMer-style: a contig maps to one of V
// virtual shards (V fixed, independent of the rank count), and virtual
// shard v lives on rank v mod N. The virtual shard — not the rank — is the
// unit of batch planning and kernel launch, which is what makes the kernel
// launch list independent of N: changing the rank count only re-deals the
// same shards (and therefore the same batches, in the same canonical
// order) onto more or fewer devices. See DESIGN.md §8.
//
// The contig → shard half of the mapping is pluggable (ShardMap): the
// default hashes contig IDs, and the component policy co-locates whole de
// Bruijn components (DESIGN.md §14). The shard → rank half (shardDeal)
// stays common to both, including the re-deal over survivors after an
// eviction.

// DefaultVirtualShards is the default virtual-shard count. It bounds the
// useful rank count and fixes the batch granularity of the distributed
// local assembly.
const DefaultVirtualShards = 32

// Shard-map policies: how contigs are assigned to virtual shards.
const (
	// ShardHash is the classic two-level MetaHipMer deal: contig ID hashes
	// to a virtual shard, shard v lives on rank v mod N.
	ShardHash = "hash"
	// ShardComponent runs a connected-components pass over the round's
	// contig graph and assigns whole components to virtual shards with LPT
	// bin packing, so contigs that exchange reads or adjoin in the de
	// Bruijn graph are co-located (see components.go).
	ShardComponent = "component"
)

// ShardMap assigns contigs to virtual shards. Implementations must be pure
// functions of the round's global workload (never of the rank count or any
// per-rank state): the shard — not the rank — is the unit of batch
// planning, and a ShardMap independent of N is what keeps contigs,
// scaffolds, and kernel launch lists bit-identical for every rank count.
type ShardMap interface {
	// Shard returns the virtual shard of a contig in [0, shards).
	Shard(ctgID int64) int
	// Policy names the mapping ("hash" or "component").
	Policy() string
}

// hashShardMap is the stateless hash policy.
type hashShardMap struct{ shards int }

func (m hashShardMap) Shard(id int64) int { return VirtualShard(id, m.shards) }
func (m hashShardMap) Policy() string     { return ShardHash }

// Seeds for the two hash spaces, chosen once so placement is stable across
// processes and runs.
const (
	shardSeed = 0x6d686d32 // "mhm2"
	readSeed  = 0x72656164 // "read"
)

// VirtualShard maps a contig ID to its virtual shard in [0, shards).
func VirtualShard(ctgID int64, shards int) int {
	return int(murmur.Hash64Word(uint64(ctgID), 0, shardSeed) % uint64(shards))
}

// OwnerRank maps a contig ID to the rank owning it under N ranks and the
// given virtual-shard count.
func OwnerRank(ctgID int64, shards, ranks int) int {
	return VirtualShard(ctgID, shards) % ranks
}

// ReadHomeRank maps a read to the rank that holds (and aligned) it. The
// ".merged" suffix the merge stage appends is stripped first, so a merged
// read lives where its originating pair was scattered.
func ReadHomeRank(id string, ranks int) int {
	id = strings.TrimSuffix(id, ".merged")
	return int(murmur.Hash64A([]byte(id), readSeed) % uint64(ranks))
}

// shardDeal maps virtual shards onto the currently-live ranks. With every
// rank alive it reduces to the static deal (shard s on rank s mod N); after
// evictions the same shards are re-dealt round-robin over the survivors, so
// ownership stays a deterministic, collision-free partition keyed only by
// the live set — which is what keeps contigs bit-identical across fault
// schedules: the shard (and its canonical batch plan) never changes, only
// the device that executes it.
type shardDeal struct {
	shards int
	live   []int // ascending rank IDs
}

// newShardDeal builds a deal of the given shard count over the live ranks
// (which must be non-empty and sorted ascending).
func newShardDeal(shards int, live []int) *shardDeal {
	return &shardDeal{shards: shards, live: live}
}

// liveAll returns the full live set 0..n-1.
func liveAll(n int) []int {
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	return live
}

// rankOf returns the live rank owning a virtual shard.
func (d *shardDeal) rankOf(shard int) int {
	return d.live[shard%len(d.live)]
}

// ownerRank returns the live rank owning a contig.
func (d *shardDeal) ownerRank(ctgID int64) int {
	return d.rankOf(VirtualShard(ctgID, d.shards))
}

// readHome returns the live rank holding a read: the same hash as
// ReadHomeRank, indexed into the survivors so a crashed rank's reads have a
// deterministic new home.
func (d *shardDeal) readHome(id string) int {
	return d.live[ReadHomeRank(id, len(d.live))]
}

// shardContigs partitions the round's contigs into virtual shards under
// the given shard map, preserving input order inside each shard. The
// returned index slices map each shard's contigs back to their global
// positions.
func shardContigs(ctgs []*locassm.CtgWithReads, smap ShardMap, shards int) (byShard [][]*locassm.CtgWithReads, idx [][]int) {
	byShard = make([][]*locassm.CtgWithReads, shards)
	idx = make([][]int, shards)
	for i, c := range ctgs {
		v := smap.Shard(c.ID)
		byShard[v] = append(byShard[v], c)
		idx[v] = append(idx[v], i)
	}
	return byShard, idx
}

// Per-record framing overhead of a routed message: IDs, lengths, and
// orientation/side metadata serialized alongside the payload.
const recordOverheadBytes = 16

// readMsgBytes is the wire size of one routed candidate read: sequence,
// qualities, identifier, and framing.
func readMsgBytes(r *dna.Read) int64 {
	return int64(len(r.Seq) + len(r.Qual) + len(r.ID) + recordOverheadBytes)
}
