package dist

import (
	"strings"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
	"mhm2sim/internal/murmur"
)

// Sharding is two-level, MetaHipMer-style: a contig hashes to one of V
// virtual shards (V fixed, independent of the rank count), and virtual
// shard v lives on rank v mod N. The virtual shard — not the rank — is the
// unit of batch planning and kernel launch, which is what makes the kernel
// launch list independent of N: changing the rank count only re-deals the
// same shards (and therefore the same batches, in the same canonical
// order) onto more or fewer devices. See DESIGN.md §8.

// DefaultVirtualShards is the default virtual-shard count. It bounds the
// useful rank count and fixes the batch granularity of the distributed
// local assembly.
const DefaultVirtualShards = 32

// Seeds for the two hash spaces, chosen once so placement is stable across
// processes and runs.
const (
	shardSeed = 0x6d686d32 // "mhm2"
	readSeed  = 0x72656164 // "read"
)

// VirtualShard maps a contig ID to its virtual shard in [0, shards).
func VirtualShard(ctgID int64, shards int) int {
	return int(murmur.Hash64Word(uint64(ctgID), 0, shardSeed) % uint64(shards))
}

// OwnerRank maps a contig ID to the rank owning it under N ranks and the
// given virtual-shard count.
func OwnerRank(ctgID int64, shards, ranks int) int {
	return VirtualShard(ctgID, shards) % ranks
}

// ReadHomeRank maps a read to the rank that holds (and aligned) it. The
// ".merged" suffix the merge stage appends is stripped first, so a merged
// read lives where its originating pair was scattered.
func ReadHomeRank(id string, ranks int) int {
	id = strings.TrimSuffix(id, ".merged")
	return int(murmur.Hash64A([]byte(id), readSeed) % uint64(ranks))
}

// shardContigs partitions the round's contigs into virtual shards,
// preserving input order inside each shard. The returned index slices map
// each shard's contigs back to their global positions.
func shardContigs(ctgs []*locassm.CtgWithReads, shards int) (byShard [][]*locassm.CtgWithReads, idx [][]int) {
	byShard = make([][]*locassm.CtgWithReads, shards)
	idx = make([][]int, shards)
	for i, c := range ctgs {
		v := VirtualShard(c.ID, shards)
		byShard[v] = append(byShard[v], c)
		idx[v] = append(idx[v], i)
	}
	return byShard, idx
}

// Per-record framing overhead of a routed message: IDs, lengths, and
// orientation/side metadata serialized alongside the payload.
const recordOverheadBytes = 16

// readMsgBytes is the wire size of one routed candidate read: sequence,
// qualities, identifier, and framing.
func readMsgBytes(r *dna.Read) int64 {
	return int64(len(r.Seq) + len(r.Qual) + len(r.ID) + recordOverheadBytes)
}
