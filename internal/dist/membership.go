// Epoch-versioned membership: the elastic replacement for the static
// alive-bitmap ownership model. A Membership tracks every rank slot the run
// can ever hold (the initial ranks plus every scheduled join), moves slots
// through absent → live → gone, and bumps an epoch on every change. The
// shard deal is computed once per epoch and cached — rt.deal() used to
// rescan the alive set and rebuild the deal on every call — so ownership
// queries between membership changes are pointer loads, and the per-epoch
// live-set history feeds the report's elasticity section.
package dist

import "fmt"

// rankState is one rank slot's lifecycle position.
type rankState uint8

const (
	// rankAbsent: a capacity slot reserved for a scheduled join that has
	// not fired yet. Absent ranks hold no shards and observe no traffic.
	rankAbsent rankState = iota
	// rankLive: a member of the collective, owning shards.
	rankLive
	// rankGone: evicted by a crash or a scale-down leave. Gone slots are
	// never reused — rank IDs are stable for the whole run.
	rankGone
)

// Membership is the epoch-versioned rank set of one distributed run. Every
// join or eviction bumps the epoch and re-deals the virtual shards over the
// new live set; between changes the deal is served from the epoch's cache.
// It is not safe for concurrent mutation — the runtime only changes
// membership at round boundaries, outside the concurrent assembly phase.
type Membership struct {
	shards int
	state  []rankState
	// joinRound / goneRound are the 0-based rounds a rank joined or left at
	// (-1 for initial members / still-live ranks).
	joinRound []int
	goneRound []int

	epoch int
	live  []int      // ascending live rank IDs, rebuilt per epoch
	deal  *shardDeal // cached deal of the current epoch
	// epochLive is the live-rank count at each epoch since the run started
	// (epochLive[0] is the initial count) — the report's elasticity trace.
	epochLive []int
}

// NewMembership builds the epoch-0 membership: ranks 0..initial-1 live,
// initial..capacity-1 reserved for scheduled joins.
func NewMembership(initial, capacity, shards int) (*Membership, error) {
	if initial < 1 {
		return nil, fmt.Errorf("dist: membership needs ≥ 1 initial rank, got %d", initial)
	}
	if capacity < initial {
		return nil, fmt.Errorf("dist: membership capacity %d below initial %d", capacity, initial)
	}
	if shards < 1 {
		return nil, fmt.Errorf("dist: membership needs ≥ 1 virtual shard, got %d", shards)
	}
	m := &Membership{
		shards:    shards,
		state:     make([]rankState, capacity),
		joinRound: make([]int, capacity),
		goneRound: make([]int, capacity),
	}
	for r := 0; r < capacity; r++ {
		m.joinRound[r], m.goneRound[r] = -1, -1
		if r < initial {
			m.state[r] = rankLive
		}
	}
	m.redeal()
	return m, nil
}

// redeal rebuilds the epoch's live set and cached shard deal, and extends
// the per-epoch history. Called on construction and after every change.
func (m *Membership) redeal() {
	live := make([]int, 0, len(m.state))
	for r, st := range m.state {
		if st == rankLive {
			live = append(live, r)
		}
	}
	m.live = live
	m.deal = newShardDeal(m.shards, live)
	m.epochLive = append(m.epochLive, len(live))
}

// Capacity is the rank ID ceiling: initial ranks plus every reservable join
// slot. Per-rank runtime state is sized to it.
func (m *Membership) Capacity() int { return len(m.state) }

// Epoch is the current membership version, starting at 0 and bumped by
// every join or eviction.
func (m *Membership) Epoch() int { return m.epoch }

// Alive reports whether the rank is a current member. Out-of-range ranks
// (never part of the run) are not alive.
func (m *Membership) Alive(r int) bool {
	return r >= 0 && r < len(m.state) && m.state[r] == rankLive
}

// Live returns the ascending live rank IDs of the current epoch. The slice
// is the epoch's cache — callers must not mutate it.
func (m *Membership) Live() []int { return m.live }

// LiveCount is len(Live()) without the slice.
func (m *Membership) LiveCount() int { return len(m.live) }

// Deal returns the current epoch's shard→rank mapping. The deal is built
// once per epoch and cached, so calls between membership changes are free
// — the re-deal cost is paid where the change happens, not on every
// ownership query.
func (m *Membership) Deal() *shardDeal { return m.deal }

// Join admits a reserved rank slot at the given round: absent → live, epoch
// bump, incremental re-deal. The joiner receives whole virtual shards from
// the new deal exactly as crash survivors do — the deal stays the same
// deterministic round-robin over the live set, only the set changed.
func (m *Membership) Join(r, round int) error {
	if r < 0 || r >= len(m.state) {
		return fmt.Errorf("dist: join of rank %d outside capacity %d", r, len(m.state))
	}
	switch m.state[r] {
	case rankLive:
		return fmt.Errorf("dist: rank %d is already a member", r)
	case rankGone:
		return fmt.Errorf("dist: evicted rank %d cannot rejoin (IDs are never reused)", r)
	}
	m.state[r] = rankLive
	m.joinRound[r] = round
	m.epoch++
	m.redeal()
	return nil
}

// Evict removes a live rank at the given round: live → gone, epoch bump,
// incremental re-deal of its shards over the survivors. Evicting the last
// live rank is an error — the caller surfaces it as ErrUnrecoverable.
func (m *Membership) Evict(r, round int) error {
	if !m.Alive(r) {
		return fmt.Errorf("dist: eviction of non-member rank %d", r)
	}
	if len(m.live) == 1 {
		return fmt.Errorf("dist: eviction of rank %d leaves no live rank", r)
	}
	m.state[r] = rankGone
	m.goneRound[r] = round
	m.epoch++
	m.redeal()
	return nil
}

// JoinedRound is the 0-based round the rank joined at (-1 for initial
// members and never-admitted slots).
func (m *Membership) JoinedRound(r int) int {
	if r < 0 || r >= len(m.joinRound) {
		return -1
	}
	return m.joinRound[r]
}

// EpochLiveCounts is the live-rank count at every epoch since the run
// started, index 0 being the initial membership.
func (m *Membership) EpochLiveCounts() []int {
	return append([]int(nil), m.epochLive...)
}
