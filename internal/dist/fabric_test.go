package dist

import (
	"testing"
	"time"
)

func testFabric(t *testing.T, n int, cfg FabricConfig) *Fabric {
	t.Helper()
	f, err := NewFabric(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFabricAlphaBetaModel(t *testing.T) {
	cfg := FabricConfig{
		LatencyPerMsg:  10 * time.Microsecond,
		BandwidthGBps:  1, // 1 GB/s: 1e9 bytes take 1 s
		AggBufferBytes: 1 << 20,
	}
	f := testFabric(t, 2, cfg)

	// Rank 0 sends 2.5 MiB to rank 1 → 3 aggregated messages.
	m := newMatrix(2)
	m[0][1] = 5 << 19
	st, err := f.Exchange("test", m)
	if err != nil {
		t.Fatal(err)
	}
	if st.Msgs[0] != 3 {
		t.Errorf("2.5 MiB in 1 MiB buffers = %d msgs, want 3", st.Msgs[0])
	}
	if st.Sent[0] != 5<<19 || st.Recv[1] != 5<<19 {
		t.Errorf("sent/recv accounting: %d/%d", st.Sent[0], st.Recv[1])
	}
	wantWire := time.Duration(float64(5<<19) / 1e9 * float64(time.Second))
	want := 3*cfg.LatencyPerMsg + wantWire
	if st.PerRank[0] != want {
		t.Errorf("rank 0 time %v, want %v", st.PerRank[0], want)
	}
	// Receiver pays the same (ejection mirrors injection here).
	if st.PerRank[1] != want {
		t.Errorf("rank 1 time %v, want %v", st.PerRank[1], want)
	}
	if st.Time != want {
		t.Errorf("exchange time %v, want slowest rank %v", st.Time, want)
	}
}

func TestFabricLocalTrafficIsFree(t *testing.T) {
	f := testFabric(t, 3, DefaultFabricConfig())
	m := newMatrix(3)
	m[1][1] = 1 << 30 // a GiB that never leaves the rank
	st, err := f.Exchange("local", m)
	if err != nil {
		t.Fatal(err)
	}
	if st.LocalBytes[1] != 1<<30 {
		t.Errorf("local bytes %d", st.LocalBytes[1])
	}
	if st.Time != 0 || st.TotalBytes() != 0 || st.TotalMsgs() != 0 {
		t.Errorf("rank-local traffic cost time=%v bytes=%d msgs=%d",
			st.Time, st.TotalBytes(), st.TotalMsgs())
	}
}

func TestFabricFullDuplexOverlap(t *testing.T) {
	// A symmetric pairwise swap should cost one direction's time, not two.
	cfg := FabricConfig{LatencyPerMsg: 0, BandwidthGBps: 1, AggBufferBytes: 1 << 20}
	f := testFabric(t, 2, cfg)
	m := newMatrix(2)
	m[0][1], m[1][0] = 1000, 1000
	st, err := f.Exchange("swap", m)
	if err != nil {
		t.Fatal(err)
	}
	oneWay := time.Duration(1000.0 / 1e9 * float64(time.Second))
	if st.PerRank[0] != oneWay || st.PerRank[1] != oneWay {
		t.Errorf("duplex swap per-rank %v/%v, want %v", st.PerRank[0], st.PerRank[1], oneWay)
	}
}

func TestFabricAccumulation(t *testing.T) {
	f := testFabric(t, 2, DefaultFabricConfig())
	m := newMatrix(2)
	m[0][1] = 100
	if _, err := f.Exchange("a", m); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exchange("b", m); err != nil {
		t.Fatal(err)
	}
	if got := f.TotalBytes(); got != 200 {
		t.Errorf("total bytes %d, want 200", got)
	}
	if got := f.TotalMsgs(); got != 2 {
		t.Errorf("total msgs %d, want 2", got)
	}
	if len(f.Stages()) != 2 {
		t.Errorf("stages %d, want 2", len(f.Stages()))
	}
	comm, sent, recv, msgs := f.RankTotals(0)
	if sent != 200 || recv != 0 || msgs != 2 || comm <= 0 {
		t.Errorf("rank 0 totals: comm=%v sent=%d recv=%d msgs=%d", comm, sent, recv, msgs)
	}
	if f.TotalTime() <= 0 {
		t.Error("total time not positive")
	}
}

func TestFabricValidation(t *testing.T) {
	if _, err := NewFabric(0, DefaultFabricConfig()); err == nil {
		t.Error("0 ranks accepted")
	}
	bad := DefaultFabricConfig()
	bad.BandwidthGBps = 0
	if _, err := NewFabric(2, bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = DefaultFabricConfig()
	bad.LatencyPerMsg = -time.Second
	if _, err := NewFabric(2, bad); err == nil {
		t.Error("negative latency accepted")
	}

	f := testFabric(t, 2, DefaultFabricConfig())
	if _, err := f.Exchange("short", newMatrix(3)); err == nil {
		t.Error("wrong-sized matrix accepted")
	}
	m := newMatrix(2)
	m[0][1] = -5
	if _, err := f.Exchange("neg", m); err == nil {
		t.Error("negative traffic accepted")
	}
}
