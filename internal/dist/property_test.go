package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/locassm"
)

// randomWorkload builds contigs with random IDs and random candidate reads,
// the shape the runtime's Assemble receives from the alignment stage.
func randomWorkload(rng *rand.Rand, nCtg int) []*locassm.CtgWithReads {
	const bases = "ACGT"
	randSeq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = bases[rng.Intn(4)]
		}
		return s
	}
	randRead := func(id string) dna.Read {
		n := 50 + rng.Intn(100)
		return dna.Read{ID: id, Seq: randSeq(n), Qual: make([]byte, n)}
	}
	ctgs := make([]*locassm.CtgWithReads, nCtg)
	usedIDs := map[int64]bool{}
	for i := range ctgs {
		id := int64(rng.Intn(1 << 20))
		for usedIDs[id] {
			id = int64(rng.Intn(1 << 20))
		}
		usedIDs[id] = true
		c := &locassm.CtgWithReads{ID: id, Seq: randSeq(100 + rng.Intn(400))}
		for j := 0; j < rng.Intn(6); j++ {
			c.LeftReads = append(c.LeftReads, randRead(fmt.Sprintf("r%d/%d.L", i, j)))
		}
		for j := 0; j < rng.Intn(6); j++ {
			c.RightReads = append(c.RightReads, randRead(fmt.Sprintf("r%d/%d.R", i, j)))
		}
		ctgs[i] = c
	}
	return ctgs
}

// TestShardAssignmentIsPartition: for random contigs and every tested rank
// count, each contig lands in exactly one virtual shard, every shard maps
// to a valid rank, and shardContigs loses and duplicates nothing.
func TestShardAssignmentIsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctgs := randomWorkload(rng, 500)
	for _, n := range []int{1, 2, 3, 8} {
		byShard, idx := shardContigs(ctgs, hashShardMap{DefaultVirtualShards}, DefaultVirtualShards)
		seen := make(map[int64]int)
		total := 0
		for v := range byShard {
			if len(byShard[v]) != len(idx[v]) {
				t.Fatalf("n=%d shard %d: %d contigs but %d indices", n, v, len(byShard[v]), len(idx[v]))
			}
			for j, c := range byShard[v] {
				seen[c.ID]++
				total++
				if ctgs[idx[v][j]] != c {
					t.Fatalf("n=%d shard %d: index map broken at %d", n, v, j)
				}
				if VirtualShard(c.ID, DefaultVirtualShards) != v {
					t.Fatalf("n=%d: contig %d placed in wrong shard %d", n, c.ID, v)
				}
				owner := OwnerRank(c.ID, DefaultVirtualShards, n)
				if owner < 0 || owner >= n {
					t.Fatalf("n=%d: owner %d out of range", n, owner)
				}
				if owner != v%n {
					t.Fatalf("n=%d: owner %d inconsistent with shard %d", n, owner, v)
				}
			}
		}
		if total != len(ctgs) {
			t.Fatalf("n=%d: partition holds %d contigs, want %d", n, total, len(ctgs))
		}
		for id, cnt := range seen {
			if cnt != 1 {
				t.Fatalf("n=%d: contig %d owned %d times", n, id, cnt)
			}
		}
	}
}

// TestOwnerRankDeterministic: ownership is a pure function of the ID.
func TestOwnerRankDeterministic(t *testing.T) {
	for id := int64(0); id < 1000; id++ {
		a := OwnerRank(id, DefaultVirtualShards, 8)
		b := OwnerRank(id, DefaultVirtualShards, 8)
		if a != b {
			t.Fatalf("owner of %d flapped: %d vs %d", id, a, b)
		}
	}
}

// TestReadExchangeConservesReads: for random inputs and N ∈ {1,2,3,8},
// every candidate read's bytes enter the exchange matrix exactly once per
// candidacy — nothing is lost or duplicated — and the fabric's send/recv
// accounting balances.
func TestReadExchangeConservesReads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctgs := randomWorkload(rng, 300)

	var wantBytes int64
	var wantReads int
	for _, c := range ctgs {
		for i := range c.LeftReads {
			wantBytes += readMsgBytes(&c.LeftReads[i])
			wantReads++
		}
		for i := range c.RightReads {
			wantBytes += readMsgBytes(&c.RightReads[i])
			wantReads++
		}
	}
	if wantReads == 0 {
		t.Fatal("workload has no candidate reads")
	}

	for _, n := range []int{1, 2, 3, 8} {
		matrix := readExchangeMatrix(ctgs, hashShardMap{DefaultVirtualShards}, newShardDeal(DefaultVirtualShards, liveAll(n)), n)
		var got int64
		for src := range matrix {
			for _, b := range matrix[src] {
				got += b
			}
		}
		if got != wantBytes {
			t.Errorf("n=%d: matrix carries %d bytes, want %d (reads lost or duplicated)", n, got, wantBytes)
		}

		f := testFabric(t, n, DefaultFabricConfig())
		st, err := f.Exchange("reads", matrix)
		if err != nil {
			t.Fatal(err)
		}
		var sent, recv, local int64
		for r := 0; r < n; r++ {
			sent += st.Sent[r]
			recv += st.Recv[r]
			local += st.LocalBytes[r]
		}
		if sent != recv {
			t.Errorf("n=%d: fabric lost bytes in flight: sent %d, recv %d", n, sent, recv)
		}
		if sent+local != wantBytes {
			t.Errorf("n=%d: network %d + local %d ≠ total %d", n, sent, local, wantBytes)
		}
		if n == 1 && sent != 0 {
			t.Errorf("single rank sent %d bytes over the network", sent)
		}
	}
}

// TestAllgatherMatrixCoversAllRanks: every non-owner rank receives every
// contig exactly once.
func TestAllgatherMatrixCoversAllRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ctgs := randomWorkload(rng, 200)
	var ctgBytes int64
	for _, c := range ctgs {
		ctgBytes += int64(len(c.Seq) + recordOverheadBytes)
	}
	for _, n := range []int{1, 2, 3, 8} {
		matrix := allgatherMatrix(ctgs, make([]locassm.Result, len(ctgs)), hashShardMap{DefaultVirtualShards}, newShardDeal(DefaultVirtualShards, liveAll(n)), n)
		var total int64
		for src := range matrix {
			for dst, b := range matrix[src] {
				if src == dst && b != 0 {
					t.Errorf("n=%d: rank %d broadcasts to itself", n, src)
				}
				total += b
			}
		}
		if want := ctgBytes * int64(n-1); total != want {
			t.Errorf("n=%d: allgather moves %d bytes, want %d", n, total, want)
		}
	}
}
