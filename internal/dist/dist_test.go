package dist

import (
	"reflect"
	"strings"
	"testing"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/pipeline"
	"mhm2sim/internal/synth"
)

// smallPreset mirrors the pipeline tests' reduced arcticsynth community so a
// full distributed run stays fast.
func smallPreset() synth.Preset {
	p := synth.ArcticSynthPreset()
	p.Com.NumGenomes = 3
	p.Com.MinGenomeLen, p.Com.MaxGenomeLen = 6_000, 9_000
	p.Com.SharedFrac = 0
	p.Reads.Depth = 14
	p.Reads.ErrorRate = 0.002
	return p
}

func buildPairs(t testing.TB) []dna.PairedRead {
	t.Helper()
	_, pairs, err := smallPreset().Build()
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

func testDistConfig(ranks int) Config {
	cfg := DefaultConfig(ranks)
	cfg.Pipeline.Rounds = []int{21, 33}
	return cfg
}

func runDist(t *testing.T, ranks int) (*pipeline.Result, *Report) {
	t.Helper()
	res, rep, err := Run(buildPairs(t), testDistConfig(ranks))
	if err != nil {
		t.Fatalf("dist.Run ranks=%d: %v", ranks, err)
	}
	return res, rep
}

// TestDistMatchesSingleRank is the core determinism guarantee: for any rank
// count the distributed run produces bit-identical contigs, scaffolds, and
// kernel launch lists to the single-rank run. Virtual shards — not ranks —
// are the unit of batch planning, so changing N only re-deals the same
// batches onto different devices.
func TestDistMatchesSingleRank(t *testing.T) {
	base, _ := runDist(t, 1)
	if len(base.Contigs) == 0 || len(base.Work.GPUKernels) == 0 {
		t.Fatalf("baseline run degenerate: %d contigs, %d kernels",
			len(base.Contigs), len(base.Work.GPUKernels))
	}

	for _, n := range []int{2, 3, 8} {
		res, rep := runDist(t, n)
		if !reflect.DeepEqual(res.Contigs, base.Contigs) {
			t.Errorf("ranks=%d: contigs differ from single-rank run", n)
		}
		if !reflect.DeepEqual(res.Scaffolds, base.Scaffolds) {
			t.Errorf("ranks=%d: scaffolds differ from single-rank run", n)
		}
		if !reflect.DeepEqual(res.Work.GPUKernels, base.Work.GPUKernels) {
			t.Errorf("ranks=%d: kernel launch list differs from single-rank run (%d vs %d launches)",
				n, len(res.Work.GPUKernels), len(base.Work.GPUKernels))
		}
		if res.Work.GPUKernelTime != base.Work.GPUKernelTime {
			t.Errorf("ranks=%d: kernel time %v ≠ %v", n, res.Work.GPUKernelTime, base.Work.GPUKernelTime)
		}
		if rep.CommTime <= 0 {
			t.Errorf("ranks=%d: no modeled comm time", n)
		}
		if res.Work.CommBytes <= 0 || res.Work.CommMsgs <= 0 {
			t.Errorf("ranks=%d: comm accounting empty: %d bytes, %d msgs",
				n, res.Work.CommBytes, res.Work.CommMsgs)
		}
		if res.Timings.Wall[pipeline.StageComm] != rep.CommTime {
			t.Errorf("ranks=%d: StageComm %v ≠ report comm %v",
				n, res.Timings.Wall[pipeline.StageComm], rep.CommTime)
		}
	}
}

// TestDistSingleRankAllLocal: with one rank every exchange is rank-local, so
// the fabric models zero network traffic and zero comm time.
func TestDistSingleRankAllLocal(t *testing.T) {
	res, rep := runDist(t, 1)
	if res.Work.CommBytes != 0 || res.Work.CommMsgs != 0 {
		t.Errorf("single rank moved %d bytes / %d msgs over the network",
			res.Work.CommBytes, res.Work.CommMsgs)
	}
	if rep.CommTime != 0 {
		t.Errorf("single rank modeled comm time %v", rep.CommTime)
	}
	if res.Timings.Wall[pipeline.StageComm] != 0 {
		t.Errorf("single rank StageComm %v", res.Timings.Wall[pipeline.StageComm])
	}
}

// TestDistMatchesPlainPipeline: the distributed contigs and scaffolds also
// match the undistributed pipeline (CPU local assembly) on the same input —
// sharding must not change assembly results, only where they are computed.
func TestDistMatchesPlainPipeline(t *testing.T) {
	pcfg := pipeline.DefaultConfig()
	pcfg.Rounds = []int{21, 33}
	plain, err := pipeline.Run(buildPairs(t), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := runDist(t, 3)
	if !reflect.DeepEqual(res.Contigs, plain.Contigs) {
		t.Error("distributed contigs differ from plain pipeline")
	}
	if !reflect.DeepEqual(res.Scaffolds, plain.Scaffolds) {
		t.Error("distributed scaffolds differ from plain pipeline")
	}
}

// TestDistReport sanity-checks the strong-scaling breakdown.
func TestDistReport(t *testing.T) {
	_, rep := runDist(t, 4)
	if rep.Ranks != 4 || rep.VirtualShards != DefaultVirtualShards || rep.Rounds != 2 {
		t.Fatalf("report header: %d ranks, %d shards, %d rounds",
			rep.Ranks, rep.VirtualShards, rep.Rounds)
	}
	if rep.Wall <= 0 || rep.Wall < rep.CommTime {
		t.Errorf("wall %v inconsistent with comm %v", rep.Wall, rep.CommTime)
	}
	eff := rep.Efficiency()
	if eff <= 0 || eff > 1 {
		t.Errorf("efficiency %f out of (0,1]", eff)
	}
	var busy, kernels, ctgs int
	for _, rs := range rep.PerRank {
		if rs.Busy > 0 {
			busy++
		}
		if rs.Busy+rs.Comm+rs.Idle > rep.Wall {
			t.Errorf("rank %d: busy+comm+idle %v exceeds wall %v",
				rs.Rank, rs.Busy+rs.Comm+rs.Idle, rep.Wall)
		}
		if rs.PCIeH2D <= 0 || rs.PCIeD2H <= 0 {
			t.Errorf("rank %d: no PCIe traffic (%d/%d)", rs.Rank, rs.PCIeH2D, rs.PCIeD2H)
		}
		kernels += rs.Kernels
		ctgs += rs.Contigs
	}
	if busy == 0 {
		t.Error("no rank recorded busy time")
	}
	if kernels == 0 {
		t.Error("no kernels attributed to any rank")
	}
	if ctgs == 0 {
		t.Error("no contigs owned by any rank")
	}
	if len(rep.Stages) < 2 {
		t.Errorf("only %d fabric stages recorded", len(rep.Stages))
	}

	s := rep.String()
	for _, want := range []string{"4 ranks", "busy", "read exchange k=21", "contig allgather k=33"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}
}

// TestDistConfigValidation covers rejection paths of the distributed config.
func TestDistConfigValidation(t *testing.T) {
	if _, _, err := Run(nil, testDistConfig(0)); err == nil {
		t.Error("0 ranks accepted")
	}
	cfg := testDistConfig(4)
	cfg.VirtualShards = 2
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("fewer shards than ranks accepted")
	}
	cfg = testDistConfig(2)
	cfg.Fabric.BandwidthGBps = -1
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("bad fabric accepted")
	}
	cfg = testDistConfig(2)
	cfg.Pipeline.Rounds = nil
	if _, _, err := Run(nil, cfg); err == nil {
		t.Error("bad pipeline config accepted")
	}
}
