// Package murmur implements MurmurHash2, the non-cryptographic hash
// function by Austin Appleby that MetaHipMer's local assembly uses to place
// k-mers into its warp-local hash tables (SC '21 paper, §3.3).
//
// Two variants are provided: Hash64A, the canonical 64-bit MurmurHash2
// ("MurmurHash64A") used for hash-table placement, and Hash32, the original
// 32-bit variant, kept for completeness and for smaller tables.
package murmur

// Hash64A computes the 64-bit MurmurHash2 ("MurmurHash64A") of data with the
// given seed. It is a faithful port of Appleby's reference implementation
// for little-endian machines.
func Hash64A(data []byte, seed uint64) uint64 {
	const (
		m = 0xc6a4a7935bd1e995
		r = 47
	)
	h := seed ^ uint64(len(data))*m

	n := len(data) / 8 * 8
	for i := 0; i < n; i += 8 {
		k := uint64(data[i]) | uint64(data[i+1])<<8 | uint64(data[i+2])<<16 |
			uint64(data[i+3])<<24 | uint64(data[i+4])<<32 | uint64(data[i+5])<<40 |
			uint64(data[i+6])<<48 | uint64(data[i+7])<<56

		k *= m
		k ^= k >> r
		k *= m

		h ^= k
		h *= m
	}

	tail := data[n:]
	switch len(tail) {
	case 7:
		h ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		h ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		h ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		h ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		h ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		h ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		h ^= uint64(tail[0])
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Hash64Word hashes a pair of uint64 words (e.g. a packed k-mer) without
// materializing a byte slice. It is equivalent to Hash64A over the 16-byte
// little-endian encoding of (w0, w1).
func Hash64Word(w0, w1 uint64, seed uint64) uint64 {
	const (
		m uint64 = 0xc6a4a7935bd1e995
		r        = 47
	)
	var n uint64 = 16 // bytes hashed
	h := seed ^ n*m

	for _, k := range [2]uint64{w0, w1} {
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Hash64Blocks computes Hash64A over the first n bytes of a buffer that the
// caller has already gathered as little-endian uint64 blocks (as a GPU
// kernel does with 8-byte vector loads). Bytes of the final partial block
// beyond n are ignored, so callers may over-read up to 7 bytes. The result
// is identical to Hash64A over the same n bytes.
func Hash64Blocks(blocks []uint64, n int, seed uint64) uint64 {
	const (
		m = 0xc6a4a7935bd1e995
		r = 47
	)
	if n < 0 || (n+7)/8 > len(blocks) {
		panic("murmur: Hash64Blocks: n out of range")
	}
	h := seed ^ uint64(n)*m

	full := n / 8
	for i := 0; i < full; i++ {
		k := blocks[i]
		k *= m
		k ^= k >> r
		k *= m
		h ^= k
		h *= m
	}

	if rem := n & 7; rem != 0 {
		tail := blocks[full] & (^uint64(0) >> uint(64-8*rem))
		h ^= tail
		h *= m
	}

	h ^= h >> r
	h *= m
	h ^= h >> r
	return h
}

// Streaming block API: Hash64Init / Hash64Mix / Hash64Tail / Hash64Final
// decompose Hash64Blocks so a caller that produces blocks incrementally (a
// warp kernel gathering 8-byte vector loads) can fold each block into the
// running state without materializing a slice. For any block sequence,
//
//	h := Hash64Init(n, seed)
//	h = Hash64Mix(h, block)       // for each of the n/8 full blocks
//	h = Hash64Tail(h, last, n&7)  // when n is not a multiple of 8
//	Hash64Final(h) == Hash64Blocks(blocks, n, seed)

const (
	mix64 uint64 = 0xc6a4a7935bd1e995
	rot64        = 47
)

// Hash64Init returns the initial streaming state for hashing n bytes.
func Hash64Init(n int, seed uint64) uint64 { return seed ^ uint64(n)*mix64 }

// Hash64Mix folds one full little-endian 8-byte block into the state.
func Hash64Mix(h, block uint64) uint64 {
	block *= mix64
	block ^= block >> rot64
	block *= mix64
	h ^= block
	h *= mix64
	return h
}

// Hash64Tail folds the final partial block holding rem ∈ [1,7] meaningful
// low bytes; bytes beyond rem are ignored (callers may over-read).
func Hash64Tail(h, block uint64, rem int) uint64 {
	h ^= block & (^uint64(0) >> uint(64-8*rem))
	h *= mix64
	return h
}

// Hash64Final finalizes the streaming state into the hash value.
func Hash64Final(h uint64) uint64 {
	h ^= h >> rot64
	h *= mix64
	h ^= h >> rot64
	return h
}

// Hash32 computes the original 32-bit MurmurHash2 of data with the given
// seed, ported from Appleby's reference implementation.
func Hash32(data []byte, seed uint32) uint32 {
	const (
		m = 0x5bd1e995
		r = 24
	)
	h := seed ^ uint32(len(data))

	i := 0
	for ; len(data)-i >= 4; i += 4 {
		k := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
		k *= m
		k ^= k >> r
		k *= m
		h *= m
		h ^= k
	}

	switch len(data) - i {
	case 3:
		h ^= uint32(data[i+2]) << 16
		fallthrough
	case 2:
		h ^= uint32(data[i+1]) << 8
		fallthrough
	case 1:
		h ^= uint32(data[i])
		h *= m
	}

	h ^= h >> 13
	h *= m
	h ^= h >> 15
	return h
}
