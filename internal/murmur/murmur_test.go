package murmur

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// Golden regression vectors. Hash64A("",0)=0 follows directly from the
// algorithm; Hash64A("a",0) matches the widely published MurmurHash64A
// value 0x071717d2d36b6b11. The remaining values pin down this port so any
// future change to the mixing constants or tail handling is caught.
func TestHash64AVectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint64
		want uint64
	}{
		{"", 0, 0},
		{"a", 0, 0x071717d2d36b6b11},
		{"ab", 0, 0x62be85b2fe53d1f8},
		{"hello", 0, 0x1e68d17c457bf117},
		{"hello, world", 0, 0x9659ad0699a8465f},
		{"hello", 123, 0x240cb1d62529fb86},
		{"ACGTACGTACGTACGT", 0, 0x76a42918f0b8fc27},
	}
	for _, c := range cases {
		if got := Hash64A([]byte(c.data), c.seed); got != c.want {
			t.Errorf("Hash64A(%q, %d) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestHash64ATailLengths(t *testing.T) {
	// All tail lengths 0..7 must be handled; adjacent lengths must differ.
	data := []byte("abcdefghijklmnop")
	seen := map[uint64]int{}
	for n := 0; n <= len(data); n++ {
		h := Hash64A(data[:n], 42)
		if prev, dup := seen[h]; dup {
			t.Errorf("lengths %d and %d collide: %#x", prev, n, h)
		}
		seen[h] = n
	}
}

func TestHash64WordMatchesBytes(t *testing.T) {
	f := func(w0, w1, seed uint64) bool {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], w0)
		binary.LittleEndian.PutUint64(buf[8:], w1)
		return Hash64Word(w0, w1, seed) == Hash64A(buf[:], seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64BlocksMatchesBytes(t *testing.T) {
	f := func(data []byte, seed uint64) bool {
		blocks := make([]uint64, (len(data)+7)/8)
		for i, b := range data {
			blocks[i/8] |= uint64(b) << uint(8*(i%8))
		}
		return Hash64Blocks(blocks, len(data), seed) == Hash64A(data, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64BlocksIgnoresOverread(t *testing.T) {
	// Garbage beyond n in the final block must not change the hash.
	a := []uint64{0x1122334455667788, 0x00000000000000aa}
	b := []uint64{0x1122334455667788, 0xdeadbeef000000aa}
	if Hash64Blocks(a, 9, 7) != Hash64Blocks(b, 9, 7) {
		t.Error("tail garbage leaked into hash")
	}
}

func TestHash64BlocksPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n beyond blocks")
		}
	}()
	Hash64Blocks([]uint64{1}, 9, 0)
}

func TestHash32Vectors(t *testing.T) {
	cases := []struct {
		data string
		seed uint32
		want uint32
	}{
		{"", 0, 0},
		{"a", 0, 0x92685f5e},
		{"hello", 0, 0xe56129cb},
		{"hello", 123, 0x8e3731ee},
	}
	for _, c := range cases {
		if got := Hash32([]byte(c.data), c.seed); got != c.want {
			t.Errorf("Hash32(%q, %d) = %#x, want %#x", c.data, c.seed, got, c.want)
		}
	}
}

func TestSeedChangesHash(t *testing.T) {
	f := func(data []byte, s1, s2 uint64) bool {
		if s1 == s2 || len(data) == 0 {
			return true
		}
		return Hash64A(data, s1) != Hash64A(data, s2)
	}
	// Not a mathematical guarantee, but any failure here would indicate a
	// seed-handling bug rather than a genuine 1-in-2^64 collision.
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHash64ADeterministic(t *testing.T) {
	data := []byte("GATTACA")
	if Hash64A(data, 7) != Hash64A(data, 7) {
		t.Fatal("hash is not deterministic")
	}
}

func BenchmarkHash64A_16B(b *testing.B) {
	data := []byte("ACGTACGTACGTACGT")
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Hash64A(data, 0)
	}
}

func BenchmarkHash64Word(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash64Word(uint64(i), ^uint64(i), 0)
	}
}
