package simt

import (
	"testing"
	"testing/quick"
)

func TestMaskProperties(t *testing.T) {
	f := func(raw uint32, lane8 uint8) bool {
		m := Mask(raw)
		lane := int(lane8) % WarpSize
		// Count matches the sum of Has.
		n := 0
		for l := 0; l < WarpSize; l++ {
			if m.Has(l) {
				n++
			}
		}
		if n != m.Count() {
			return false
		}
		// Setting a lane makes it present; FirstLane is a member.
		if !(m | LaneMask(lane)).Has(lane) {
			return false
		}
		if m != 0 && !m.Has(m.FirstLane()) {
			return false
		}
		if m != 0 {
			for l := 0; l < m.FirstLane(); l++ {
				if m.Has(l) {
					return false // something below FirstLane
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if FullMask.Count() != WarpSize {
		t.Error("FullMask wrong")
	}
	if Mask(0).FirstLane() != -1 {
		t.Error("empty mask FirstLane")
	}
}

func TestScaledStatsProperties(t *testing.T) {
	f := func(instrs, sectors uint32, warps uint16, chain uint32) bool {
		var s Stats
		s.WarpInstrs[IInt] = uint64(instrs)
		s.GlobalSectors = uint64(sectors)
		s.Warps = uint64(warps) + 1
		s.MaxSerialMemChain = uint64(chain)

		// Scale by 2: extensive counters double, the chain is invariant.
		d := s.Scaled(2)
		if d.WarpInstrs[IInt] != 2*s.WarpInstrs[IInt] ||
			d.GlobalSectors != 2*s.GlobalSectors ||
			d.Warps != 2*s.Warps {
			return false
		}
		if d.MaxSerialMemChain != s.MaxSerialMemChain {
			return false
		}
		// Scaling never reduces warps to zero.
		tiny := s.Scaled(1e-9)
		return tiny.Warps >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeModelMonotoneInWork(t *testing.T) {
	cfg := V100()
	f := func(instrs, sectors uint32, warps uint16, chain uint32) bool {
		var s Stats
		s.WarpInstrs[IInt] = uint64(instrs) + 1
		s.GlobalSectors = uint64(sectors)
		s.Warps = uint64(warps) + 1
		s.MaxSerialMemChain = uint64(chain)
		t1, _ := TimeFor(cfg, &s)
		d := s.Scaled(3)
		t3, _ := TimeFor(cfg, &d)
		return t3 >= t1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplatAndVec(t *testing.T) {
	f := func(v uint64) bool {
		s := Splat(v)
		for _, x := range s {
			if x != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
