package simt

import (
	"math/rand"
	"testing"
)

func runWarpTest(t *testing.T, kern func(w *Warp)) Stats {
	t.Helper()
	d := testDevice()
	res, err := d.Launch(KernelConfig{Name: "intrinsics", Warps: 1}, kern)
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats
}

func TestShflUpDown(t *testing.T) {
	runWarpTest(t, func(w *Warp) {
		var vals Vec
		for i := range vals {
			vals[i] = uint64(i * 10)
		}
		up := w.ShflUp(FullMask, &vals, 3)
		for lane := 0; lane < WarpSize; lane++ {
			want := uint64(lane * 10)
			if lane >= 3 {
				want = uint64((lane - 3) * 10)
			}
			if up[lane] != want {
				t.Errorf("ShflUp lane %d: %d, want %d", lane, up[lane], want)
			}
		}
		down := w.ShflDown(FullMask, &vals, 5)
		for lane := 0; lane < WarpSize; lane++ {
			want := uint64(lane * 10)
			if lane+5 < WarpSize {
				want = uint64((lane + 5) * 10)
			}
			if down[lane] != want {
				t.Errorf("ShflDown lane %d: %d, want %d", lane, down[lane], want)
			}
		}
	})
}

func TestShflXor(t *testing.T) {
	runWarpTest(t, func(w *Warp) {
		var vals Vec
		for i := range vals {
			vals[i] = uint64(i)
		}
		x := w.ShflXor(FullMask, &vals, 1)
		for lane := 0; lane < WarpSize; lane++ {
			if x[lane] != uint64(lane^1) {
				t.Errorf("ShflXor lane %d: %d", lane, x[lane])
			}
		}
	})
}

func TestReduceAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	runWarpTest(t, func(w *Warp) {
		var vals Vec
		var want uint64
		for i := range vals {
			vals[i] = uint64(rng.Intn(1000))
			want += vals[i]
		}
		if got := w.ReduceAdd(FullMask, &vals); got != want {
			t.Errorf("ReduceAdd = %d, want %d", got, want)
		}
		// Masked: only even lanes.
		var wantEven uint64
		for i := 0; i < WarpSize; i += 2 {
			wantEven += vals[i]
		}
		if got := w.ReduceAdd(0x55555555, &vals); got != wantEven {
			t.Errorf("masked ReduceAdd = %d, want %d", got, wantEven)
		}
	})
}

func TestReduceMax(t *testing.T) {
	runWarpTest(t, func(w *Warp) {
		var vals Vec
		for i := range vals {
			vals[i] = uint64(i * 3)
		}
		vals[17] = 9999
		if got := w.ReduceMax(FullMask, &vals); got != 9999 {
			t.Errorf("ReduceMax = %d", got)
		}
		// Mask out the max lane.
		if got := w.ReduceMax(FullMask&^LaneMask(17), &vals); got != 31*3 {
			t.Errorf("masked ReduceMax = %d, want %d", got, 31*3)
		}
	})
}

func TestScanAdd(t *testing.T) {
	runWarpTest(t, func(w *Warp) {
		vals := Splat(1)
		scan := w.ScanAdd(FullMask, &vals)
		for lane := 0; lane < WarpSize; lane++ {
			if scan[lane] != uint64(lane+1) {
				t.Errorf("ScanAdd lane %d: %d, want %d", lane, scan[lane], lane+1)
			}
		}
		// Masked scan: odd lanes only; inclusive over actives.
		scan = w.ScanAdd(0xAAAAAAAA, &vals)
		for lane := 0; lane < WarpSize; lane++ {
			var want uint64
			if lane%2 == 1 {
				want = uint64(lane/2 + 1)
			}
			if scan[lane] != want {
				t.Errorf("masked ScanAdd lane %d: %d, want %d", lane, scan[lane], want)
			}
		}
	})
}

func TestIntrinsicsCountInstructions(t *testing.T) {
	stats := runWarpTest(t, func(w *Warp) {
		vals := Splat(2)
		w.ReduceAdd(FullMask, &vals)
	})
	// 5 butterfly steps: 5 shuffles + 5 adds.
	if stats.WarpInstrs[IShfl] != 5 {
		t.Errorf("shuffle count %d, want 5", stats.WarpInstrs[IShfl])
	}
	if stats.WarpInstrs[IInt] != 5 {
		t.Errorf("int count %d, want 5", stats.WarpInstrs[IInt])
	}
}
