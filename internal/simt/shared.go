package simt

// Shared memory: a per-warp scratch space modeling the per-block shared
// memory CUDA kernels stage hot data in (ADEPT keeps the query sequence
// there during alignment). Accesses are far cheaper than global memory and
// are counted separately; the bank model charges extra cycles when
// multiple lanes hit the same bank with different addresses (bank
// conflicts), as real hardware does.

// SharedBanks is the number of shared-memory banks (4-byte wide) on CUDA
// hardware.
const SharedBanks = 32

// sharedAlloc lazily sizes the warp's shared arena.
func (w *Warp) sharedEnsure(limit uint64) {
	if uint64(len(w.sharedMem)) < limit {
		grown := make([]byte, limit*2)
		copy(grown, w.sharedMem)
		w.sharedMem = grown
	}
}

// bankConflicts counts the maximum number of distinct 4-byte words mapped
// to one bank across the active lanes — the serialization factor of the
// access.
func bankConflicts(mask Mask, offs *Vec) int {
	var words [WarpSize]uint64
	var banks [WarpSize]int
	n := 0
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		word := offs[lane] / 4
		dup := false
		for i := 0; i < n; i++ {
			if words[i] == word {
				dup = true
				break
			}
		}
		if !dup {
			words[n] = word
			banks[n] = int(word % SharedBanks)
			n++
		}
	}
	maxPerBank := 1
	for b := 0; b < n; b++ {
		c := 0
		for i := 0; i < n; i++ {
			if banks[i] == banks[b] {
				c++
			}
		}
		if c > maxPerBank {
			maxPerBank = c
		}
	}
	return maxPerBank
}

// LoadShared reads size bytes at each active lane's offset into the warp's
// shared arena. Bank conflicts serialize the access and are charged as
// additional replayed instructions.
func (w *Warp) LoadShared(mask Mask, offs *Vec, size int) Vec {
	replays := bankConflicts(mask, offs)
	w.ExecN(ILdShared, mask, replays)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			w.sharedEnsure(offs[lane] + uint64(size))
			out[lane] = loadLE(w.sharedMem[offs[lane]:], size)
		}
	}
	return out
}

// StoreShared writes size bytes at each active lane's offset.
func (w *Warp) StoreShared(mask Mask, offs *Vec, size int, vals *Vec) {
	replays := bankConflicts(mask, offs)
	w.ExecN(IStShared, mask, replays)
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			w.sharedEnsure(offs[lane] + uint64(size))
			storeLE(w.sharedMem[offs[lane]:], size, vals[lane])
		}
	}
}
