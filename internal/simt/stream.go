package simt

// Stream is one host<->device copy queue with its own PCIe traffic
// counters, modeling a CUDA stream's view of the copy engine. A pipelined
// driver gives every in-flight batch sequence its own stream so concurrent
// transfers never race on shared byte counters, and per-batch transfer
// accounting stays exact regardless of how the batches interleave on the
// device.
//
// A Stream must be used by one goroutine at a time (exactly like a CUDA
// stream); distinct streams of one device may be used concurrently. The
// actual data motion is serialized against arena growth inside the device.
type Stream struct {
	dev      *Device
	bytesH2D int64
	bytesD2H int64
}

// NewStream creates an independent copy stream on the device.
func (d *Device) NewStream() *Stream { return &Stream{dev: d} }

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// MemcpyHtoD copies host bytes to device memory, accounting the traffic on
// this stream only.
func (s *Stream) MemcpyHtoD(dst Ptr, src []byte) {
	s.dev.copyHtoD(dst, src)
	s.bytesH2D += int64(len(src))
}

// MemcpyDtoH copies device bytes back to the host, accounting the traffic
// on this stream only.
func (s *Stream) MemcpyDtoH(dst []byte, src Ptr) {
	s.dev.copyDtoH(dst, src)
	s.bytesD2H += int64(len(dst))
}

// Traffic returns and clears this stream's byte counters.
func (s *Stream) Traffic() (h2d, d2h int64) {
	h2d, d2h = s.bytesH2D, s.bytesD2H
	s.bytesH2D, s.bytesD2H = 0, 0
	return h2d, d2h
}
