package simt

import (
	"sync"
	"testing"
)

func TestStreamTrafficIsolated(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(256)
	s1, s2 := d.NewStream(), d.NewStream()

	s1.MemcpyHtoD(p, []byte("abcdefgh"))
	s2.MemcpyHtoD(p+64, []byte("xyz"))
	got := make([]byte, 8)
	s1.MemcpyDtoH(got, p)
	if string(got) != "abcdefgh" {
		t.Errorf("stream round trip: %q", got)
	}

	h2d, d2h := s1.Traffic()
	if h2d != 8 || d2h != 8 {
		t.Errorf("stream1 traffic %d/%d, want 8/8", h2d, d2h)
	}
	h2d, d2h = s2.Traffic()
	if h2d != 3 || d2h != 0 {
		t.Errorf("stream2 traffic %d/%d, want 3/0", h2d, d2h)
	}
	// Stream copies must not leak into the default-stream counters.
	h2d, d2h = d.Traffic()
	if h2d != 0 || d2h != 0 {
		t.Errorf("device traffic %d/%d, want 0/0", h2d, d2h)
	}
	// And clearing is per stream.
	if h2d, _ := s1.Traffic(); h2d != 0 {
		t.Error("stream Traffic did not reset")
	}
}

func TestCumTrafficSpansStreams(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(256)
	s := d.NewStream()

	d.MemcpyHtoD(p, []byte("0123456789")) // 10 on default stream
	s.MemcpyHtoD(p+64, []byte("abcd"))    // 4 on explicit stream
	s.MemcpyDtoH(make([]byte, 6), p)      // 6 back
	d.MemcpyDtoH(make([]byte, 2), p)      // 2 back on default

	h2d, d2h := d.CumTraffic()
	if h2d != 14 || d2h != 8 {
		t.Errorf("cumulative traffic %d/%d, want 14/8", h2d, d2h)
	}
	// The odometer survives the per-interval counters being drained.
	d.Traffic()
	s.Traffic()
	if h2d, d2h = d.CumTraffic(); h2d != 14 || d2h != 8 {
		t.Errorf("CumTraffic reset by Traffic: %d/%d", h2d, d2h)
	}
}

func TestAllocRegionReuseAndRewind(t *testing.T) {
	d := testDevice()
	r1, err := d.AllocRegion(100)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.AllocRegion(200)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Base%64 != 0 || r2.Base%64 != 0 {
		t.Errorf("regions not 64-byte aligned: %d, %d", r1.Base, r2.Base)
	}
	if r2.Base <= r1.Base {
		t.Errorf("regions overlap: %d then %d", r1.Base, r2.Base)
	}

	// Freeing the first leaves a hole that a same-sized region reuses.
	r1.Free()
	r3, err := d.AllocRegion(90)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Base != r1.Base {
		t.Errorf("hole not reused: got %d, want %d", r3.Base, r1.Base)
	}

	// Freeing everything rewinds the bump pointer completely.
	r3.Free()
	r2.Free()
	if d.InUse() != 0 {
		t.Errorf("InUse after freeing all regions = %d", d.InUse())
	}
	r4, err := d.AllocRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Base != 0 {
		t.Errorf("bump pointer did not rewind: next region at %d", r4.Base)
	}
}

func TestAllocRegionOOM(t *testing.T) {
	d := testDevice()
	if _, err := d.AllocRegion(d.Cfg.GlobalMemBytes + 1); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
	if _, err := d.AllocRegion(-1); err == nil {
		t.Error("negative allocation accepted")
	}
}

func TestPrealloc(t *testing.T) {
	d := testDevice()
	if err := d.Prealloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	if err := d.Prealloc(d.Cfg.GlobalMemBytes + 1); err == nil {
		t.Error("prealloc beyond capacity accepted")
	}
	// The arena must already cover a preallocated footprint.
	if int64(len(d.mem)) < 1<<20 {
		t.Errorf("arena %d bytes after Prealloc(1 MiB)", len(d.mem))
	}
	r, err := d.AllocRegion(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	r.Free()
}

// TestConcurrentLaunchesShareWarpPool drives two kernel launches through
// the persistent pool at once — the pipelined driver's left/right overlap —
// and checks both land their stores and counters intact.
func TestConcurrentLaunchesShareWarpPool(t *testing.T) {
	d := testDevice()
	const warps = 16
	p1, _ := d.Malloc(warps * WarpSize * 8)
	p2, _ := d.Malloc(warps * WarpSize * 8)

	fill := func(base Ptr, salt uint64) (KernelResult, error) {
		return d.Launch(KernelConfig{Name: "fill", Warps: warps}, func(w *Warp) {
			var addrs, vals Vec
			for l := 0; l < WarpSize; l++ {
				addrs[l] = uint64(base) + uint64((w.ID*WarpSize+l)*8)
				vals[l] = salt + uint64(w.ID*WarpSize+l)
			}
			w.StoreGlobal(FullMask, &addrs, 8, &vals)
		})
	}

	var wg sync.WaitGroup
	var res [2]KernelResult
	var errs [2]error
	wg.Add(2)
	go func() { defer wg.Done(); res[0], errs[0] = fill(p1, 1000) }()
	go func() { defer wg.Done(); res[1], errs[1] = fill(p2, 2000) }()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("launch %d: %v", i, err)
		}
		if res[i].Warps != warps {
			t.Errorf("launch %d ran %d warps, want %d", i, res[i].Warps, warps)
		}
	}
	for i := 0; i < warps*WarpSize; i++ {
		if got := d.ReadU64(p1 + Ptr(i*8)); got != 1000+uint64(i) {
			t.Fatalf("launch 1 store %d corrupted: %d", i, got)
		}
		if got := d.ReadU64(p2 + Ptr(i*8)); got != 2000+uint64(i) {
			t.Fatalf("launch 2 store %d corrupted: %d", i, got)
		}
	}
}

func TestCloseStopsPool(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(64 * WarpSize * 8)
	if _, err := d.Launch(KernelConfig{Name: "warm", Warps: 4}, func(w *Warp) {
		var addrs, vals Vec
		for l := 0; l < WarpSize; l++ {
			addrs[l] = uint64(p) + uint64((w.ID*WarpSize+l)*8)
		}
		w.StoreGlobal(FullMask, &addrs, 8, &vals)
	}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	// Sequential launches still work after Close.
	if _, err := d.Launch(KernelConfig{Name: "seq", Warps: 2, Sequential: true}, func(w *Warp) {
		w.Exec(IInt, FullMask)
	}); err != nil {
		t.Fatal(err)
	}
}
