package simt

import "time"

// InstrClass classifies warp instructions the way the instruction-roofline
// methodology does (integer, floating point, memory by space, control,
// intrinsics).
type InstrClass int

const (
	IInt      InstrClass = iota // integer ALU
	IFP                         // floating point
	ICtrl                       // branches, loop overhead
	ILdGlobal                   // global loads
	IStGlobal                   // global stores
	ILdLocal                    // local loads (register spills, per-thread arrays)
	IStLocal                    // local stores
	IAtomic                     // global atomics (CAS etc.)
	IShfl                       // warp shuffle
	IBallot                     // ballot / vote
	IMatch                      // match_any_sync
	ISync                       // __syncwarp
	ILdShared                   // shared-memory loads
	IStShared                   // shared-memory stores
	numInstrClasses
)

var instrClassNames = [numInstrClasses]string{
	"int", "fp", "ctrl", "ld.global", "st.global", "ld.local", "st.local",
	"atomic", "shfl", "ballot", "match", "syncwarp", "ld.shared", "st.shared",
}

// String returns the PTX-flavoured class name.
func (c InstrClass) String() string {
	if c < 0 || c >= numInstrClasses {
		return "unknown"
	}
	return instrClassNames[c]
}

// NumInstrClasses is the number of instruction classes.
const NumInstrClasses = int(numInstrClasses)

// Stats aggregates everything the analytic model and the roofline need
// about one kernel (or one warp of one kernel).
type Stats struct {
	Kernel string

	// WarpInstrs counts executed warp instructions by class. ThreadInstrs
	// counts per-lane executions (warp instruction × active lanes).
	// PredicatedOff counts lane slots wasted to predication (warp
	// instruction × inactive lanes) — the gap between the solid dot and
	// the dashed non-predicated line in Figs 8–9.
	WarpInstrs    [NumInstrClasses]uint64
	ThreadInstrs  [NumInstrClasses]uint64
	PredicatedOff uint64

	// GlobalSectors counts 32-byte transactions to global memory after
	// coalescing; LocalSectors likewise for local memory (always
	// coalesced, by CUDA's local-memory interleaving). AtomicSectors
	// counts transactions from atomics.
	GlobalSectors uint64
	LocalSectors  uint64
	AtomicSectors uint64

	// Warps is the number of warps that contributed.
	Warps uint64

	// MaxSerialMemChain is the largest per-warp dependent-memory chain
	// (sector count weighted by latency class), the latency-bound term
	// of the timing model.
	MaxSerialMemChain uint64
}

// Add merges o into s (used to fold per-warp stats into kernel stats).
func (s *Stats) Add(o *Stats) {
	for i := 0; i < NumInstrClasses; i++ {
		s.WarpInstrs[i] += o.WarpInstrs[i]
		s.ThreadInstrs[i] += o.ThreadInstrs[i]
	}
	s.PredicatedOff += o.PredicatedOff
	s.GlobalSectors += o.GlobalSectors
	s.LocalSectors += o.LocalSectors
	s.AtomicSectors += o.AtomicSectors
	s.Warps += o.Warps
	if o.MaxSerialMemChain > s.MaxSerialMemChain {
		s.MaxSerialMemChain = o.MaxSerialMemChain
	}
}

// TotalWarpInstrs sums warp instructions over all classes.
func (s *Stats) TotalWarpInstrs() uint64 {
	var n uint64
	for _, v := range s.WarpInstrs {
		n += v
	}
	return n
}

// TotalThreadInstrs sums per-lane instructions over all classes.
func (s *Stats) TotalThreadInstrs() uint64 {
	var n uint64
	for _, v := range s.ThreadInstrs {
		n += v
	}
	return n
}

// MemWarpInstrs returns warp instructions that touch memory, split by space.
func (s *Stats) MemWarpInstrs() (global, local uint64) {
	global = s.WarpInstrs[ILdGlobal] + s.WarpInstrs[IStGlobal] + s.WarpInstrs[IAtomic]
	local = s.WarpInstrs[ILdLocal] + s.WarpInstrs[IStLocal]
	return global, local
}

// L1Sectors returns total L1 transactions (global + local + atomic), the
// denominator of the roofline's L1 instruction intensity.
func (s *Stats) L1Sectors() uint64 {
	return s.GlobalSectors + s.LocalSectors + s.AtomicSectors
}

// NonPredicatedRatio returns the fraction of lane slots doing real work:
// threadInstrs / (warpInstrs × 32). 1.0 means no predication.
func (s *Stats) NonPredicatedRatio() float64 {
	w := s.TotalWarpInstrs()
	if w == 0 {
		return 1
	}
	return float64(s.TotalThreadInstrs()) / float64(w*WarpSize)
}

// KernelResult is what Launch returns: counters plus the modeled time.
type KernelResult struct {
	Stats
	// Time is the modeled kernel execution time (excludes transfers,
	// includes launch overhead).
	Time time.Duration
	// Bound names the limiting term of the model: "issue", "bandwidth",
	// "latency", or "launch".
	Bound string
}

// Scaled returns the stats of f copies of this kernel's workload run as
// one launch: extensive counters scale linearly while the per-warp
// dependent chain (an intensive property of the longest single warp) stays
// fixed. This is exact for the analytic time model and is how the cluster
// model extrapolates a measured base workload to arbitrary node shares.
func (s Stats) Scaled(f float64) Stats {
	out := s
	for i := 0; i < NumInstrClasses; i++ {
		out.WarpInstrs[i] = uint64(float64(s.WarpInstrs[i]) * f)
		out.ThreadInstrs[i] = uint64(float64(s.ThreadInstrs[i]) * f)
	}
	out.PredicatedOff = uint64(float64(s.PredicatedOff) * f)
	out.GlobalSectors = uint64(float64(s.GlobalSectors) * f)
	out.LocalSectors = uint64(float64(s.LocalSectors) * f)
	out.AtomicSectors = uint64(float64(s.AtomicSectors) * f)
	out.Warps = uint64(float64(s.Warps) * f)
	if out.Warps == 0 && s.Warps > 0 {
		out.Warps = 1
	}
	return out
}

// TimeFor exposes the kernel time model: it converts counters to modeled
// execution time under the device configuration, returning the limiting
// bound ("issue", "bandwidth", "latency", or "launch").
func TimeFor(cfg DeviceConfig, s *Stats) (time.Duration, string) {
	return timeModel(cfg, s)
}

// timeModel converts counters to kernel time. Three candidate bounds are
// evaluated and the largest wins, mirroring bound-and-bottleneck analysis:
//
//	issue:     warp instructions through SMs × schedulers at the core clock
//	bandwidth: L1/DRAM sectors through the HBM pipe
//	latency:   each warp's dependent-memory chain, overlapped across the
//	           resident-warp population, serialized over occupancy rounds
//
// Small grids are latency-bound (few chains to overlap), which is exactly
// why the paper feeds the GPU its largest bin first (§4.3) and why the
// advantage shrinks at 1024 nodes when per-GPU work collapses (Fig 13).
func timeModel(cfg DeviceConfig, s *Stats) (time.Duration, string) {
	clockHz := cfg.ClockGHz * 1e9

	issueCycles := float64(s.TotalWarpInstrs()) / float64(cfg.SMs*cfg.SchedulersPerSM)
	tIssue := issueCycles / clockHz

	bytes := float64(s.L1Sectors()) * float64(cfg.SectorBytes)
	tBW := bytes / (cfg.MemBWGBps * 1e9)

	var tLat float64
	if s.Warps > 0 {
		resident := uint64(cfg.SMs * cfg.MaxWarpsPerSM)
		rounds := (s.Warps + resident - 1) / resident
		// A warp's chain: global sectors are latency-expensive, local are
		// cheap. MaxSerialMemChain already weights them.
		chainCycles := float64(s.MaxSerialMemChain)
		tLat = chainCycles * float64(rounds) / clockHz
	}

	t, bound := tIssue, "issue"
	if tBW > t {
		t, bound = tBW, "bandwidth"
	}
	if tLat > t {
		t, bound = tLat, "latency"
	}
	total := time.Duration(t*float64(time.Second)) + cfg.KernelLaunchOverhead
	if t*float64(time.Second) < float64(cfg.KernelLaunchOverhead) {
		bound = "launch"
	}
	return total, bound
}
