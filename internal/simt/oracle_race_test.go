//go:build race

package simt

// raceEnabled mirrors the race detector's build state for tests: sync.Pool
// deliberately drops items under -race to shake out reuse races, so the
// pooled-context and zero-allocation assertions cannot hold there.
const raceEnabled = true
