package simt

import "testing"

// Micro-benchmarks for the warp-interpreter hot path: coalescing analysis,
// per-lane memory access, and launch overhead. These are the interpreter
// costs the modeled-GPU figure sweeps are made of, tracked per PR in the
// BENCH_*.json trajectory (cmd/benchtrack).

// benchWarp runs fn inside a one-warp sequential launch so the benchmark
// exercises exactly the interpreter path kernels use.
func benchWarp(b *testing.B, localBytes int, fn func(w *Warp)) {
	b.Helper()
	dev := NewDevice(V100())
	if err := dev.Prealloc(1 << 20); err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Malloc(1 << 20); err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Launch(KernelConfig{
		Name: "bench", Warps: 1, Sequential: true, LocalBytesPerLane: localBytes,
	}, fn); err != nil {
		b.Fatal(err)
	}
}

var coalesceSink uint64

// BenchmarkCoalesce measures the sector-dedup analysis across the access
// patterns the kernels produce: contiguous lane runs (the overwhelmingly
// common case), strided entry probes, single-lane walks, and a
// pseudo-random gather (worst case).
func BenchmarkCoalesce(b *testing.B) {
	cases := []struct {
		name string
		mask Mask
		size int
		addr func(lane int) uint64
	}{
		{"contiguous4", FullMask, 4, func(l int) uint64 { return 1024 + uint64(4*l) }},
		{"contiguous8", FullMask, 8, func(l int) uint64 { return 1024 + uint64(8*l) }},
		{"stride32", FullMask, 8, func(l int) uint64 { return 1024 + uint64(32*l) }},
		{"overlap1", FullMask, 8, func(l int) uint64 { return 1024 + uint64(l) }},
		{"lane0", LaneMask(0), 4, func(l int) uint64 { return 1024 }},
		{"random", FullMask, 4, func(l int) uint64 {
			return uint64(l*2654435761) % (1 << 18)
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var addrs Vec
			for lane := 0; lane < WarpSize; lane++ {
				addrs[lane] = c.addr(lane)
			}
			benchWarp(b, 0, func(w *Warp) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					coalesceSink += w.coalesce(c.mask, &addrs, c.size)
				}
			})
		})
	}
}

// BenchmarkLoadGlobalContiguous measures the full-warp contiguous 8-byte
// load — the HashKmers gather pattern that dominates table builds.
func BenchmarkLoadGlobalContiguous(b *testing.B) {
	var addrs Vec
	for lane := 0; lane < WarpSize; lane++ {
		addrs[lane] = 4096 + uint64(8*lane)
	}
	benchWarp(b, 0, func(w *Warp) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := w.LoadGlobal(FullMask, &addrs, 8)
			coalesceSink += v[0]
		}
	})
}

// BenchmarkStoreGlobalContiguous is the store-side mirror (the table-clear
// pattern).
func BenchmarkStoreGlobalContiguous(b *testing.B) {
	var addrs Vec
	for lane := 0; lane < WarpSize; lane++ {
		addrs[lane] = 4096 + uint64(8*lane)
	}
	vals := Splat(^uint64(0))
	benchWarp(b, 0, func(w *Warp) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.StoreGlobal(FullMask, &addrs, 8, &vals)
		}
	})
}

// BenchmarkLoadGlobalLane0 measures the single-lane probe pattern of the
// mer-walk phase (31 lanes predicated off).
func BenchmarkLoadGlobalLane0(b *testing.B) {
	var addrs Vec
	addrs[0] = 4096
	m := LaneMask(0)
	benchWarp(b, 0, func(w *Warp) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := w.LoadGlobal(m, &addrs, 4)
			coalesceSink += v[0]
		}
	})
}

// BenchmarkLoadLocalUniform measures the uniform-offset local load of the
// hash staging scratch.
func BenchmarkLoadLocalUniform(b *testing.B) {
	offs := Splat(16)
	benchWarp(b, 64, func(w *Warp) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := w.LoadLocal(FullMask, &offs, 8)
			coalesceSink += v[0]
		}
	})
}

// BenchmarkLaunchOverhead measures the fixed cost of one kernel launch
// (64 warps, trivial body) in both scheduling modes. The allocs/op column
// is the one CI gates on: steady-state launches must not allocate.
func BenchmarkLaunchOverhead(b *testing.B) {
	for _, mode := range []struct {
		name string
		seq  bool
	}{{"sequential", true}, {"parallel", false}} {
		b.Run(mode.name, func(b *testing.B) {
			dev := NewDevice(V100())
			defer dev.Close()
			kern := func(w *Warp) { w.Exec(IInt, FullMask) }
			cfg := KernelConfig{Name: "noop", Warps: 64, Sequential: mode.seq, LocalBytesPerLane: 64}
			if _, err := dev.Launch(cfg, kern); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dev.Launch(cfg, kern); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
