package simt

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Mask is an active-lane mask, one bit per lane (bit i = lane i), exactly
// like the masks CUDA's *_sync intrinsics take.
type Mask uint32

// FullMask has all 32 lanes active.
const FullMask Mask = 0xffffffff

// Has reports whether lane is active in m.
func (m Mask) Has(lane int) bool { return m&(1<<uint(lane)) != 0 }

// Count returns the number of active lanes.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// LaneMask returns a mask with only the given lane set.
func LaneMask(lane int) Mask { return 1 << uint(lane) }

// FirstLane returns the lowest active lane, or -1 for an empty mask.
func (m Mask) FirstLane() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Vec is one 32-lane register: a value per lane. Sub-word quantities live
// in the low bits, as in PTX.
type Vec [WarpSize]uint64

// Splat returns a Vec with v in every lane.
func Splat(v uint64) Vec {
	var out Vec
	for i := range out {
		out[i] = v
	}
	return out
}

// Warp is the execution context a kernel receives: one warp of 32 lanes,
// stepped in lockstep. All device memory access and all intrinsics go
// through Warp methods so the instruction and transaction counters see
// them.
type Warp struct {
	Dev *Device
	// ID is the global warp index within the launch ([0, Warps)).
	ID int

	stats     Stats
	localMem  []byte // lane-private arrays, lane-major
	sharedMem []byte // warp-shared scratch (see shared.go)
	perLane   int

	// Per-launch device constants, cached by reset so the memory-op hot
	// path never re-reads (or re-divides) the device config.
	sb        uint64 // sector size
	sbShift   uint   // log2(sb) when sbPow2
	sbPow2    bool   // sector size is a power of two (shift, don't divide)
	effGlobal uint64 // effective global-latency chain cost per access
	effLocal  uint64 // effective local-latency chain cost per access

	// Sector-dedup scratch for coalesceScan (fastpath.go). Generation-
	// stamped so it never needs clearing between calls or launches.
	coSec   [coSlots]uint64
	coStamp [coSlots]uint32
	coGen   uint32
}

// reset (re)initializes a pooled warp context for one warp of one launch:
// counters cleared, device constants cached, and the local/shared arenas
// zeroed in place so a reused warp is bit-identical to a fresh one.
func (w *Warp) reset(d *Device, id, perLane int) {
	w.Dev = d
	w.ID = id
	w.perLane = perLane
	w.stats = Stats{}
	w.sb = uint64(d.Cfg.SectorBytes)
	w.sbPow2 = w.sb&(w.sb-1) == 0 && w.sb != 0
	w.sbShift = uint(bits.TrailingZeros64(w.sb))
	w.effGlobal = effLat(d.Cfg.GlobalLatency, d.Cfg.MemParallelism)
	w.effLocal = effLat(d.Cfg.LocalLatency, d.Cfg.MemParallelism)
	need := perLane * WarpSize
	if cap(w.localMem) < need {
		w.localMem = make([]byte, need)
	} else {
		w.localMem = w.localMem[:need]
		clear(w.localMem)
	}
	clear(w.sharedMem)
}

// Exec records one executed warp instruction of class c under mask. Kernels
// call this for arithmetic and control work; memory operations record
// themselves.
func (w *Warp) Exec(c InstrClass, mask Mask) { w.ExecN(c, mask, 1) }

// ExecN records n warp instructions of class c under mask.
func (w *Warp) ExecN(c InstrClass, mask Mask, n int) {
	active := uint64(mask.Count())
	w.stats.WarpInstrs[c] += uint64(n)
	w.stats.ThreadInstrs[c] += uint64(n) * active
	w.stats.PredicatedOff += uint64(n) * (WarpSize - active)
}

// LoadGlobal performs a per-lane global load of size bytes (1, 2, 4 or 8)
// and returns the loaded values. It records one ld.global warp instruction,
// the coalesced sector transactions, and one global latency on the warp's
// dependent chain.
func (w *Warp) LoadGlobal(mask Mask, addrs *Vec, size int) Vec {
	w.ExecN(ILdGlobal, mask, 1)
	w.stats.GlobalSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effGlobal
	var out Vec
	w.Dev.gather(mask, addrs, size, &out)
	return out
}

// StoreGlobal performs a per-lane global store of size bytes.
func (w *Warp) StoreGlobal(mask Mask, addrs *Vec, size int, vals *Vec) {
	w.ExecN(IStGlobal, mask, 1)
	w.stats.GlobalSectors += w.coalesce(mask, addrs, size)
	w.Dev.scatter(mask, addrs, size, vals)
}

// AtomicCAS performs a per-lane compare-and-swap on global memory and
// returns the value observed before the operation (CUDA atomicCAS
// semantics). Lanes are resolved in lane order, which fixes a deterministic
// winner when several lanes target the same address — the "thread
// collision" situation of §3.3.
func (w *Warp) AtomicCAS(mask Mask, addrs, compare, val *Vec, size int) Vec {
	w.ExecN(IAtomic, mask, 1)
	w.stats.AtomicSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effGlobal
	var out Vec
	w.Dev.casLoop(mask, addrs, compare, val, size, &out)
	return out
}

// AtomicAdd performs a per-lane atomic add on global memory and returns the
// prior values. Same-address lanes serialize in lane order.
func (w *Warp) AtomicAdd(mask Mask, addrs, delta *Vec, size int) Vec {
	w.ExecN(IAtomic, mask, 1)
	w.stats.AtomicSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effGlobal
	var out Vec
	w.Dev.addLoop(mask, addrs, delta, size, &out)
	return out
}

// localAddr maps a lane's private byte offset to the lane-major local arena.
func (w *Warp) localAddr(lane int, off uint64) uint64 {
	return uint64(lane)*uint64(w.perLane) + off
}

// LoadLocal reads size bytes at each active lane's private offset. Local
// memory is interleaved on real hardware so same-offset accesses coalesce
// perfectly; transactions are counted accordingly.
func (w *Warp) LoadLocal(mask Mask, offs *Vec, size int) Vec {
	w.ExecN(ILdLocal, mask, 1)
	w.addLocalTraffic(mask, size)
	w.stats.MaxSerialMemChain += w.effLocal
	var out Vec
	for m := uint32(mask); m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		out[lane] = loadLE(w.localMem[w.localAddr(lane, offs[lane]):], size)
	}
	return out
}

// StoreLocal writes size bytes at each active lane's private offset.
func (w *Warp) StoreLocal(mask Mask, offs *Vec, size int, vals *Vec) {
	w.ExecN(IStLocal, mask, 1)
	w.addLocalTraffic(mask, size)
	for m := uint32(mask); m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		storeLE(w.localMem[w.localAddr(lane, offs[lane]):], size, vals[lane])
	}
}

func (w *Warp) addLocalTraffic(mask Mask, size int) {
	bytes := uint64(mask.Count()) * uint64(size)
	w.stats.LocalSectors += (bytes + w.sb - 1) / w.sb
}

// LocalBytesPerLane returns the private local-memory size each lane has.
func (w *Warp) LocalBytesPerLane() int { return w.perLane }

// Shfl broadcasts the value held by srcLane to every active lane
// (__shfl_sync with a scalar source), returning the resulting vector.
//
// If srcLane is out of range or inactive in mask — undefined behavior on
// real CUDA hardware — the result is defined here as all-zero lanes, so a
// kernel bug yields a stable, testable value instead of a stale register
// read.
func (w *Warp) Shfl(mask Mask, vals *Vec, srcLane int) Vec {
	w.ExecN(IShfl, mask, 1)
	var out Vec
	if srcLane < 0 || srcLane >= WarpSize || !mask.Has(srcLane) {
		return out
	}
	v := vals[srcLane]
	for m := uint32(mask); m != 0; m &= m - 1 {
		out[bits.TrailingZeros32(m)] = v
	}
	return out
}

// Ballot evaluates pred across active lanes and returns the vote mask
// (__ballot_sync).
func (w *Warp) Ballot(mask Mask, pred func(lane int) bool) Mask {
	w.ExecN(IBallot, mask, 1)
	var out Mask
	for m := uint32(mask); m != 0; m &= m - 1 {
		lane := bits.TrailingZeros32(m)
		if pred(lane) {
			out |= LaneMask(lane)
		}
	}
	return out
}

// MatchAny returns, for each active lane, the mask of active lanes holding
// the same value (__match_any_sync) — the intrinsic the paper uses to find
// thread collisions during hash-table insertion.
func (w *Warp) MatchAny(mask Mask, vals *Vec) [WarpSize]Mask {
	w.ExecN(IMatch, mask, 1)
	var out [WarpSize]Mask
	for ma := uint32(mask); ma != 0; ma &= ma - 1 {
		a := bits.TrailingZeros32(ma)
		if out[a] != 0 {
			continue // already grouped by an earlier equal lane
		}
		var group Mask
		for mb := ma; mb != 0; mb &= mb - 1 {
			b := bits.TrailingZeros32(mb)
			if vals[b] == vals[a] {
				group |= LaneMask(b)
			}
		}
		// Every member of the group shares the same match mask.
		for g := uint32(group); g != 0; g &= g - 1 {
			out[bits.TrailingZeros32(g)] = group
		}
	}
	return out
}

// SyncWarp records a __syncwarp. Execution here is already lockstep; the
// call documents and costs the synchronization points of the real kernel.
func (w *Warp) SyncWarp(mask Mask) { w.ExecN(ISync, mask, 1) }

// loadLE reads size little-endian bytes. The supported power-of-two sizes
// decode with single machine loads; anything else falls back to the byte
// loop.
func loadLE(b []byte, size int) uint64 {
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// storeLE writes size little-endian bytes, mirroring loadLE.
func storeLE(b []byte, size int, v uint64) {
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		for i := 0; i < size; i++ {
			b[i] = byte(v >> uint(8*i))
		}
	}
}

func init() {
	// The coalescing scratch array assumes sectors ≥ access size; all
	// supported sizes are ≤ 8 < 32, but keep the invariant explicit.
	if V100().SectorBytes < 8 {
		panic(fmt.Sprintf("simt: sector size %d smaller than max access", V100().SectorBytes))
	}
}
