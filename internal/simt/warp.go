package simt

import (
	"fmt"
	"math/bits"
)

// Mask is an active-lane mask, one bit per lane (bit i = lane i), exactly
// like the masks CUDA's *_sync intrinsics take.
type Mask uint32

// FullMask has all 32 lanes active.
const FullMask Mask = 0xffffffff

// Has reports whether lane is active in m.
func (m Mask) Has(lane int) bool { return m&(1<<uint(lane)) != 0 }

// Count returns the number of active lanes.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// LaneMask returns a mask with only the given lane set.
func LaneMask(lane int) Mask { return 1 << uint(lane) }

// FirstLane returns the lowest active lane, or -1 for an empty mask.
func (m Mask) FirstLane() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Vec is one 32-lane register: a value per lane. Sub-word quantities live
// in the low bits, as in PTX.
type Vec [WarpSize]uint64

// Splat returns a Vec with v in every lane.
func Splat(v uint64) Vec {
	var out Vec
	for i := range out {
		out[i] = v
	}
	return out
}

// Warp is the execution context a kernel receives: one warp of 32 lanes,
// stepped in lockstep. All device memory access and all intrinsics go
// through Warp methods so the instruction and transaction counters see
// them.
type Warp struct {
	Dev *Device
	// ID is the global warp index within the launch ([0, Warps)).
	ID int

	stats     Stats
	localMem  []byte // lane-private arrays, lane-major
	sharedMem []byte // warp-shared scratch (see shared.go)
	perLane   int
}

// Exec records one executed warp instruction of class c under mask. Kernels
// call this for arithmetic and control work; memory operations record
// themselves.
func (w *Warp) Exec(c InstrClass, mask Mask) { w.ExecN(c, mask, 1) }

// ExecN records n warp instructions of class c under mask.
func (w *Warp) ExecN(c InstrClass, mask Mask, n int) {
	active := uint64(mask.Count())
	w.stats.WarpInstrs[c] += uint64(n)
	w.stats.ThreadInstrs[c] += uint64(n) * active
	w.stats.PredicatedOff += uint64(n) * (WarpSize - active)
}

// coalesce counts the distinct sectors touched by the active lanes.
func (w *Warp) coalesce(mask Mask, addrs *Vec, size int) uint64 {
	var sectors [2 * WarpSize]uint64
	n := 0
	sb := uint64(w.Dev.Cfg.SectorBytes)
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		for s := addrs[lane] / sb; s <= (addrs[lane]+uint64(size)-1)/sb; s++ {
			found := false
			for i := 0; i < n; i++ {
				if sectors[i] == s {
					found = true
					break
				}
			}
			if !found {
				sectors[n] = s
				n++
			}
		}
	}
	return uint64(n)
}

// LoadGlobal performs a per-lane global load of size bytes (1, 2, 4 or 8)
// and returns the loaded values. It records one ld.global warp instruction,
// the coalesced sector transactions, and one global latency on the warp's
// dependent chain.
func (w *Warp) LoadGlobal(mask Mask, addrs *Vec, size int) Vec {
	w.ExecN(ILdGlobal, mask, 1)
	w.stats.GlobalSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.Dev.Cfg.GlobalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = w.Dev.load(Ptr(addrs[lane]), size)
		}
	}
	return out
}

// StoreGlobal performs a per-lane global store of size bytes.
func (w *Warp) StoreGlobal(mask Mask, addrs *Vec, size int, vals *Vec) {
	w.ExecN(IStGlobal, mask, 1)
	w.stats.GlobalSectors += w.coalesce(mask, addrs, size)
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			w.Dev.store(Ptr(addrs[lane]), size, vals[lane])
		}
	}
}

// AtomicCAS performs a per-lane compare-and-swap on global memory and
// returns the value observed before the operation (CUDA atomicCAS
// semantics). Lanes are resolved in lane order, which fixes a deterministic
// winner when several lanes target the same address — the "thread
// collision" situation of §3.3.
func (w *Warp) AtomicCAS(mask Mask, addrs, compare, val *Vec, size int) Vec {
	w.ExecN(IAtomic, mask, 1)
	w.stats.AtomicSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.Dev.Cfg.GlobalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		old := w.Dev.load(Ptr(addrs[lane]), size)
		out[lane] = old
		if old == compare[lane] {
			w.Dev.store(Ptr(addrs[lane]), size, val[lane])
		}
	}
	return out
}

// AtomicAdd performs a per-lane atomic add on global memory and returns the
// prior values. Same-address lanes serialize in lane order.
func (w *Warp) AtomicAdd(mask Mask, addrs, delta *Vec, size int) Vec {
	w.ExecN(IAtomic, mask, 1)
	w.stats.AtomicSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.Dev.Cfg.GlobalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		old := w.Dev.load(Ptr(addrs[lane]), size)
		out[lane] = old
		w.Dev.store(Ptr(addrs[lane]), size, old+delta[lane])
	}
	return out
}

// localAddr maps a lane's private byte offset to the lane-major local arena.
func (w *Warp) localAddr(lane int, off uint64) uint64 {
	return uint64(lane)*uint64(w.perLane) + off
}

// LoadLocal reads size bytes at each active lane's private offset. Local
// memory is interleaved on real hardware so same-offset accesses coalesce
// perfectly; transactions are counted accordingly.
func (w *Warp) LoadLocal(mask Mask, offs *Vec, size int) Vec {
	w.ExecN(ILdLocal, mask, 1)
	w.addLocalTraffic(mask, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.Dev.Cfg.LocalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = loadLE(w.localMem[w.localAddr(lane, offs[lane]):], size)
		}
	}
	return out
}

// StoreLocal writes size bytes at each active lane's private offset.
func (w *Warp) StoreLocal(mask Mask, offs *Vec, size int, vals *Vec) {
	w.ExecN(IStLocal, mask, 1)
	w.addLocalTraffic(mask, size)
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			storeLE(w.localMem[w.localAddr(lane, offs[lane]):], size, vals[lane])
		}
	}
}

// effLatency is the dependent-chain cost of one memory warp instruction:
// the raw latency divided by the warp's memory-level parallelism (the
// scoreboard keeps several loads in flight; only every MLP-th access
// extends the critical chain).
func (w *Warp) effLatency(lat int) uint64 {
	mlp := w.Dev.Cfg.MemParallelism
	if mlp < 1 {
		mlp = 1
	}
	e := (lat + mlp - 1) / mlp
	return uint64(e)
}

func (w *Warp) addLocalTraffic(mask Mask, size int) {
	bytes := mask.Count() * size
	sb := w.Dev.Cfg.SectorBytes
	w.stats.LocalSectors += uint64((bytes + sb - 1) / sb)
}

// LocalBytesPerLane returns the private local-memory size each lane has.
func (w *Warp) LocalBytesPerLane() int { return w.perLane }

// Shfl broadcasts the value held by srcLane to every active lane
// (__shfl_sync with a scalar source), returning the resulting vector.
func (w *Warp) Shfl(mask Mask, vals *Vec, srcLane int) Vec {
	w.ExecN(IShfl, mask, 1)
	v := vals[srcLane]
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = v
		}
	}
	return out
}

// Ballot evaluates pred across active lanes and returns the vote mask
// (__ballot_sync).
func (w *Warp) Ballot(mask Mask, pred func(lane int) bool) Mask {
	w.ExecN(IBallot, mask, 1)
	var out Mask
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) && pred(lane) {
			out |= LaneMask(lane)
		}
	}
	return out
}

// MatchAny returns, for each active lane, the mask of active lanes holding
// the same value (__match_any_sync) — the intrinsic the paper uses to find
// thread collisions during hash-table insertion.
func (w *Warp) MatchAny(mask Mask, vals *Vec) [WarpSize]Mask {
	w.ExecN(IMatch, mask, 1)
	var out [WarpSize]Mask
	for a := 0; a < WarpSize; a++ {
		if !mask.Has(a) {
			continue
		}
		for b := 0; b < WarpSize; b++ {
			if mask.Has(b) && vals[b] == vals[a] {
				out[a] |= LaneMask(b)
			}
		}
	}
	return out
}

// SyncWarp records a __syncwarp. Execution here is already lockstep; the
// call documents and costs the synchronization points of the real kernel.
func (w *Warp) SyncWarp(mask Mask) { w.ExecN(ISync, mask, 1) }

func loadLE(b []byte, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func storeLE(b []byte, size int, v uint64) {
	for i := 0; i < size; i++ {
		b[i] = byte(v >> uint(8*i))
	}
}

func init() {
	// The coalescing scratch array assumes sectors ≥ access size; all
	// supported sizes are ≤ 8 < 32, but keep the invariant explicit.
	if V100().SectorBytes < 8 {
		panic(fmt.Sprintf("simt: sector size %d smaller than max access", V100().SectorBytes))
	}
}
