package simt

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Interpreter fast paths (DESIGN.md §12). The warp-interpretation loop is
// the global hot path of the figure suite: every modeled kernel funnels its
// memory traffic through coalesce + gather/scatter, so these routines are
// specialized for the access shapes the kernels actually produce —
// contiguous unit-stride lane runs (table clears, key gathers), sorted
// strided probes (entry addresses), and single-lane walks — while staying
// bit-identical to the straightforward reference implementations kept as
// test oracles in oracle_test.go.

// coalesce counts the distinct sectors touched by the active lanes.
//
// Tiers, cheapest first: a closed-form count for a single active lane (the
// lane-0 mer-walk phase), a fused one-pass run count for non-decreasing
// addresses (contiguous gathers, strided probes — the overwhelmingly
// common shapes), and a hash-set general fallback for scattered addresses.
// Power-of-two sector sizes (every real device) replace the per-lane
// divisions with shifts. All tiers return exactly the distinct-sector
// count of the reference linear scan kept in oracle_test.go.
func (w *Warp) coalesce(mask Mask, addrs *Vec, size int) uint64 {
	if mask == 0 {
		return 0
	}
	sb := w.sb
	sz := uint64(size)
	// Single active lane: one access, closed form.
	if mask&(mask-1) == 0 {
		a := addrs[mask.FirstLane()]
		return (a+sz-1)/sb - a/sb + 1
	}
	if w.sbPow2 {
		// Sector ids of non-decreasing addresses appear in order, so one
		// forward pass counts distinct sectors; the first out-of-order
		// address bails to the hash-set tier.
		sh := w.sbShift
		m := uint32(mask)
		prev := addrs[bits.TrailingZeros32(m)]
		last := (prev + sz - 1) >> sh
		n := last - prev>>sh + 1
		for m &= m - 1; m != 0; m &= m - 1 {
			a := addrs[bits.TrailingZeros32(m)]
			if a < prev {
				return w.coalesceScan(mask, addrs, sz, sb)
			}
			prev = a
			if s1 := (a + sz - 1) >> sh; s1 > last {
				if s0 := a >> sh; s0 > last {
					n += s1 - s0 + 1
				} else {
					n += s1 - last
				}
				last = s1
			}
		}
		return n
	}

	// Generic sector size: one pass over the active lanes classifies the
	// address sequence, then a closed form or ordered run count applies.
	var lo, prev uint64
	uniform, sorted, started := true, true, false
	for m := uint32(mask); m != 0; m &= m - 1 {
		a := addrs[bits.TrailingZeros32(m)]
		if !started {
			lo, prev, started = a, a, true
			continue
		}
		if a != prev+sz {
			uniform = false
			if a < prev {
				sorted = false
				break
			}
		}
		prev = a
	}
	if uniform {
		// Contiguous run [lo, prev+sz): closed-form sector count.
		return (prev+sz-1)/sb - lo/sb + 1
	}
	if sorted {
		// Non-decreasing addresses: sector ids appear in order, so distinct
		// sectors are counted in one forward pass.
		var n, last uint64
		started = false
		for m := uint32(mask); m != 0; m &= m - 1 {
			a := addrs[bits.TrailingZeros32(m)]
			s0 := a / sb
			s1 := (a + sz - 1) / sb
			if !started {
				n = s1 - s0 + 1
				last, started = s1, true
				continue
			}
			if s1 > last {
				if s0 <= last {
					s0 = last + 1
				}
				n += s1 - s0 + 1
				last = s1
			}
		}
		return n
	}
	return w.coalesceScan(mask, addrs, sz, sb)
}

// coSlots sizes the warp's sector-dedup hash set: a power of two holding
// the worst case (two sectors per lane, 64 entries) at ≤ 0.5 load.
const coSlots = 128

// coalesceScan is the general tier, for scattered unsorted addresses (the
// v1 kernel's 32 unrelated tables): sector ids deduplicate through a small
// open-addressing set kept on the warp. Generation stamps make clearing
// free — a slot is live only if its stamp matches the current call's — so
// the cost is O(active lanes) instead of the reference's O(n²) rescan.
func (w *Warp) coalesceScan(mask Mask, addrs *Vec, sz, sb uint64) uint64 {
	w.coGen++
	if w.coGen == 0 { // stamp wraparound: invalidate all slots once
		for i := range w.coStamp {
			w.coStamp[i] = 0
		}
		w.coGen = 1
	}
	gen := w.coGen
	var n uint64
	for m := uint32(mask); m != 0; m &= m - 1 {
		a := addrs[bits.TrailingZeros32(m)]
		s0, s1 := a/sb, (a+sz-1)/sb
		if w.sbPow2 {
			s0, s1 = a>>w.sbShift, (a+sz-1)>>w.sbShift
		}
		for s := s0; s <= s1; s++ {
			h := (s * 0x9e3779b97f4a7c15) >> (64 - 7) // fibonacci hash to 7 bits
			for w.coStamp[h] == gen && w.coSec[h] != s {
				h = (h + 1) & (coSlots - 1)
			}
			if w.coStamp[h] != gen {
				w.coStamp[h] = gen
				w.coSec[h] = s
				n++
			}
		}
	}
	return n
}

// gather is the functional half of LoadGlobal: it reads size bytes at each
// active lane's address into out. The access-size switch is hoisted out of
// the lane loop, full-mask loops skip the per-lane mask test, and sparse
// masks iterate set bits only (the lane-0 walk pays for one lane, not 32).
func (d *Device) gather(mask Mask, addrs *Vec, size int, out *Vec) {
	mem := d.mem
	switch size {
	case 1:
		if mask == FullMask {
			for lane := 0; lane < WarpSize; lane++ {
				out[lane] = uint64(mem[addrs[lane]])
			}
			return
		}
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			out[lane] = uint64(mem[addrs[lane]])
		}
	case 2:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			out[lane] = uint64(binary.LittleEndian.Uint16(mem[addrs[lane]:]))
		}
	case 4:
		if mask == FullMask {
			for lane := 0; lane < WarpSize; lane++ {
				out[lane] = uint64(binary.LittleEndian.Uint32(mem[addrs[lane]:]))
			}
			return
		}
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			out[lane] = uint64(binary.LittleEndian.Uint32(mem[addrs[lane]:]))
		}
	case 8:
		if mask == FullMask {
			for lane := 0; lane < WarpSize; lane++ {
				out[lane] = binary.LittleEndian.Uint64(mem[addrs[lane]:])
			}
			return
		}
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			out[lane] = binary.LittleEndian.Uint64(mem[addrs[lane]:])
		}
	default:
		panic(fmt.Sprintf("simt: unsupported access size %d", size))
	}
}

// scatter is the functional half of StoreGlobal, mirroring gather.
func (d *Device) scatter(mask Mask, addrs *Vec, size int, vals *Vec) {
	mem := d.mem
	switch size {
	case 1:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			mem[addrs[lane]] = byte(vals[lane])
		}
	case 2:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			binary.LittleEndian.PutUint16(mem[addrs[lane]:], uint16(vals[lane]))
		}
	case 4:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			binary.LittleEndian.PutUint32(mem[addrs[lane]:], uint32(vals[lane]))
		}
	case 8:
		if mask == FullMask {
			for lane := 0; lane < WarpSize; lane++ {
				binary.LittleEndian.PutUint64(mem[addrs[lane]:], vals[lane])
			}
			return
		}
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			binary.LittleEndian.PutUint64(mem[addrs[lane]:], vals[lane])
		}
	default:
		panic(fmt.Sprintf("simt: unsupported access size %d", size))
	}
}

// casLoop resolves AtomicCAS lane by lane in lane order (the deterministic
// same-address winner of §3.3), with the size switch hoisted out of the
// loop. out receives the observed-before values for active lanes.
func (d *Device) casLoop(mask Mask, addrs, compare, val *Vec, size int, out *Vec) {
	mem := d.mem
	switch size {
	case 1:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			old := uint64(mem[addrs[lane]])
			out[lane] = old
			if old == compare[lane] {
				mem[addrs[lane]] = byte(val[lane])
			}
		}
	case 2:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			p := mem[addrs[lane]:]
			old := uint64(binary.LittleEndian.Uint16(p))
			out[lane] = old
			if old == compare[lane] {
				binary.LittleEndian.PutUint16(p, uint16(val[lane]))
			}
		}
	case 4:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			p := mem[addrs[lane]:]
			old := uint64(binary.LittleEndian.Uint32(p))
			out[lane] = old
			if old == compare[lane] {
				binary.LittleEndian.PutUint32(p, uint32(val[lane]))
			}
		}
	case 8:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			p := mem[addrs[lane]:]
			old := binary.LittleEndian.Uint64(p)
			out[lane] = old
			if old == compare[lane] {
				binary.LittleEndian.PutUint64(p, val[lane])
			}
		}
	default:
		panic(fmt.Sprintf("simt: unsupported access size %d", size))
	}
}

// addLoop resolves AtomicAdd lane by lane in lane order, mirroring casLoop.
func (d *Device) addLoop(mask Mask, addrs, delta *Vec, size int, out *Vec) {
	mem := d.mem
	switch size {
	case 1:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			old := uint64(mem[addrs[lane]])
			out[lane] = old
			mem[addrs[lane]] = byte(old + delta[lane])
		}
	case 2:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			p := mem[addrs[lane]:]
			old := uint64(binary.LittleEndian.Uint16(p))
			out[lane] = old
			binary.LittleEndian.PutUint16(p, uint16(old+delta[lane]))
		}
	case 4:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			p := mem[addrs[lane]:]
			old := uint64(binary.LittleEndian.Uint32(p))
			out[lane] = old
			binary.LittleEndian.PutUint32(p, uint32(old+delta[lane]))
		}
	case 8:
		for m := uint32(mask); m != 0; m &= m - 1 {
			lane := bits.TrailingZeros32(m)
			p := mem[addrs[lane]:]
			old := binary.LittleEndian.Uint64(p)
			out[lane] = old
			binary.LittleEndian.PutUint64(p, old+delta[lane])
		}
	default:
		panic(fmt.Sprintf("simt: unsupported access size %d", size))
	}
}

// effLat is the dependent-chain cost of one memory warp instruction: the
// raw latency divided by the warp's memory-level parallelism. Precomputed
// once per warp at launch (Warp.reset) instead of on every memory op.
func effLat(lat, mlp int) uint64 {
	if mlp < 1 {
		mlp = 1
	}
	return uint64((lat + mlp - 1) / mlp)
}
