package simt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrDeviceLost is returned by Launch after a fault has been injected with
// InjectFault: the modeled device is gone and the caller must fail over
// (the dist runtime degrades the rank to its host engine).
var ErrDeviceLost = errors.New("simt: device lost")

// KernelConfig describes one kernel launch.
type KernelConfig struct {
	// Name labels the kernel in results and roofline output.
	Name string
	// Warps is the grid size in warps (the local-assembly kernels launch
	// one warp per contig extension).
	Warps int
	// LocalBytesPerLane sizes each lane's private local-memory array
	// (per-thread scratch that real CUDA would spill to local memory).
	LocalBytesPerLane int
	// Sequential forces warps to run on the calling goroutine, in warp
	// order. The default runs warps on the device's persistent worker
	// pool; kernels must only write device regions owned by their own
	// warp (true of all kernels in this repository — one warp per contig
	// extension).
	Sequential bool
}

// warpJob is one warp's execution request on the device worker pool.
type warpJob struct {
	run func(id int)
	id  int
	wg  *sync.WaitGroup
}

// warpPool returns the device's persistent warp worker pool, creating it on
// first use. The pool is created once per device and fed through a buffered
// channel, replacing the goroutine fan-out the old Launch paid on every
// call; concurrent Launches (pipelined batches, multiple streams) share the
// same workers safely because every job carries its own completion group.
func (d *Device) warpPool() chan<- warpJob {
	d.poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		if workers < 1 {
			workers = 1
		}
		d.pool = make(chan warpJob, 8*workers)
		for i := 0; i < workers; i++ {
			go func() {
				for j := range d.pool {
					j.run(j.id)
					j.wg.Done()
				}
			}()
		}
	})
	return d.pool
}

// Close stops the device's warp worker pool, if one was started. The device
// remains usable for Sequential launches; calling Launch in parallel mode
// after Close panics. Close is idempotent.
func (d *Device) Close() {
	d.poolOnce.Do(func() {}) // pool stays nil if never started
	d.closeOnce.Do(func() {
		if d.pool != nil {
			close(d.pool)
		}
	})
}

// Launch executes kern once per warp and returns merged counters plus the
// modeled kernel time. The functional result (device memory contents) is
// deterministic as long as warps write disjoint regions, and the merged
// counters are deterministic regardless of worker scheduling: per-warp
// stats land in per-warp slots and fold in warp order.
func (d *Device) Launch(cfg KernelConfig, kern func(w *Warp)) (KernelResult, error) {
	if err := d.faultErr(); err != nil {
		return KernelResult{}, err
	}
	if cfg.Warps < 0 {
		return KernelResult{}, fmt.Errorf("simt: negative warp count %d", cfg.Warps)
	}
	perWarp := make([]Stats, cfg.Warps)

	runWarp := func(id int) {
		w := &Warp{Dev: d, ID: id, perLane: cfg.LocalBytesPerLane}
		if cfg.LocalBytesPerLane > 0 {
			w.localMem = make([]byte, cfg.LocalBytesPerLane*WarpSize)
		}
		w.stats.Warps = 1
		kern(w)
		perWarp[id] = w.stats
	}

	if cfg.Sequential || cfg.Warps <= 1 {
		for id := 0; id < cfg.Warps; id++ {
			runWarp(id)
		}
	} else {
		pool := d.warpPool()
		var wg sync.WaitGroup
		wg.Add(cfg.Warps)
		for id := 0; id < cfg.Warps; id++ {
			pool <- warpJob{run: runWarp, id: id, wg: &wg}
		}
		wg.Wait()
	}

	var res KernelResult
	res.Kernel = cfg.Name
	for i := range perWarp {
		res.Stats.Add(&perWarp[i])
	}
	// Stats.Add maxes MaxSerialMemChain across warps and sums Warps.
	res.Time, res.Bound = timeModel(d.Cfg, &res.Stats)
	return res, nil
}
