package simt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrDeviceLost is returned by Launch after a fault has been injected with
// InjectFault: the modeled device is gone and the caller must fail over
// (the dist runtime degrades the rank to its host engine).
var ErrDeviceLost = errors.New("simt: device lost")

// KernelConfig describes one kernel launch.
type KernelConfig struct {
	// Name labels the kernel in results and roofline output.
	Name string
	// Warps is the grid size in warps (the local-assembly kernels launch
	// one warp per contig extension).
	Warps int
	// LocalBytesPerLane sizes each lane's private local-memory array
	// (per-thread scratch that real CUDA would spill to local memory).
	LocalBytesPerLane int
	// Sequential forces warps to run on the calling goroutine, in warp
	// order. The default runs warps on the device's persistent worker
	// pool; kernels must only write device regions owned by their own
	// warp (true of all kernels in this repository — one warp per contig
	// extension).
	Sequential bool
}

// warpCtx is a reusable warp execution context: the Warp value plus its
// local/shared arenas. Each pool worker owns one (worker affinity, the
// internal/par pattern), so steady-state launches allocate nothing — the
// arenas are zeroed in place by Warp.reset instead of reallocated.
type warpCtx struct {
	w Warp
}

// launchState carries one Launch call's shared state to the pool workers.
// It is pooled on the device so a launch allocates neither the state, the
// per-warp stats slab, nor the completion group.
type launchState struct {
	dev     *Device
	kern    func(w *Warp)
	perLane int
	perWarp []Stats
	wg      sync.WaitGroup
}

// runWarp executes one warp on the given context. Per-warp stats land in
// per-warp slots, so the merged counters are deterministic regardless of
// worker scheduling.
func (ls *launchState) runWarp(id int, ctx *warpCtx) {
	w := &ctx.w
	w.reset(ls.dev, id, ls.perLane)
	w.stats.Warps = 1
	ls.kern(w)
	ls.perWarp[id] = w.stats
}

// warpJob is one warp's execution request on the device worker pool.
type warpJob struct {
	ls *launchState
	id int
}

// warpPool returns the device's persistent warp worker pool, creating it on
// first use. The pool is created once per device and fed through a buffered
// channel; concurrent Launches (pipelined batches, multiple streams) share
// the same workers safely because every job carries its own launch state
// and completion group. Each worker keeps a private warpCtx across jobs, so
// per-warp arenas are reused instead of reallocated.
func (d *Device) warpPool() chan<- warpJob {
	d.poolOnce.Do(func() {
		workers := runtime.GOMAXPROCS(0)
		if workers < 1 {
			workers = 1
		}
		d.pool = make(chan warpJob, 8*workers)
		for i := 0; i < workers; i++ {
			go func() {
				var ctx warpCtx
				for j := range d.pool {
					j.ls.runWarp(j.id, &ctx)
					j.ls.wg.Done()
				}
			}()
		}
	})
	return d.pool
}

// Close stops the device's warp worker pool, if one was started. The device
// remains usable for Sequential launches; calling Launch in parallel mode
// after Close panics. Close is idempotent.
func (d *Device) Close() {
	d.poolOnce.Do(func() {}) // pool stays nil if never started
	d.closeOnce.Do(func() {
		if d.pool != nil {
			close(d.pool)
		}
	})
}

// Launch executes kern once per warp and returns merged counters plus the
// modeled kernel time. The functional result (device memory contents) is
// deterministic as long as warps write disjoint regions, and the merged
// counters are deterministic regardless of worker scheduling: per-warp
// stats land in per-warp slots and fold in warp order.
//
// Steady-state launches are allocation-free: the launch state, stats slab,
// and warp contexts (including local-memory arenas) are pooled with worker
// affinity and zeroed in place.
func (d *Device) Launch(cfg KernelConfig, kern func(w *Warp)) (KernelResult, error) {
	if err := d.faultErr(); err != nil {
		return KernelResult{}, err
	}
	if cfg.Warps < 0 {
		return KernelResult{}, fmt.Errorf("simt: negative warp count %d", cfg.Warps)
	}
	if cfg.LocalBytesPerLane < 0 {
		return KernelResult{}, fmt.Errorf("simt: negative local bytes per lane %d", cfg.LocalBytesPerLane)
	}

	ls, _ := d.lsPool.Get().(*launchState)
	if ls == nil {
		ls = &launchState{}
	}
	ls.dev, ls.kern, ls.perLane = d, kern, cfg.LocalBytesPerLane
	if cap(ls.perWarp) < cfg.Warps {
		ls.perWarp = make([]Stats, cfg.Warps)
	} else {
		// Every slot [0, Warps) is overwritten by runWarp; no clear needed.
		ls.perWarp = ls.perWarp[:cfg.Warps]
	}

	if cfg.Sequential || cfg.Warps <= 1 {
		ctx, _ := d.ctxPool.Get().(*warpCtx)
		if ctx == nil {
			ctx = &warpCtx{}
		}
		for id := 0; id < cfg.Warps; id++ {
			ls.runWarp(id, ctx)
		}
		d.ctxPool.Put(ctx)
	} else {
		pool := d.warpPool()
		ls.wg.Add(cfg.Warps)
		for id := 0; id < cfg.Warps; id++ {
			pool <- warpJob{ls: ls, id: id}
		}
		ls.wg.Wait()
	}

	var res KernelResult
	res.Kernel = cfg.Name
	for i := range ls.perWarp {
		res.Stats.Add(&ls.perWarp[i])
	}
	// Stats.Add maxes MaxSerialMemChain across warps and sums Warps.
	res.Time, res.Bound = timeModel(d.Cfg, &res.Stats)
	ls.dev, ls.kern = nil, nil
	d.lsPool.Put(ls)
	return res, nil
}
