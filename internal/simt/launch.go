package simt

import (
	"fmt"
	"runtime"
	"sync"
)

// KernelConfig describes one kernel launch.
type KernelConfig struct {
	// Name labels the kernel in results and roofline output.
	Name string
	// Warps is the grid size in warps (the local-assembly kernels launch
	// one warp per contig extension).
	Warps int
	// LocalBytesPerLane sizes each lane's private local-memory array
	// (per-thread scratch that real CUDA would spill to local memory).
	LocalBytesPerLane int
	// Sequential forces warps to run on the calling goroutine, in warp
	// order. The default runs warps on a worker pool; kernels must only
	// write device regions owned by their own warp (true of all kernels
	// in this repository — one warp per contig extension).
	Sequential bool
}

// Launch executes kern once per warp and returns merged counters plus the
// modeled kernel time. The functional result (device memory contents) is
// deterministic as long as warps write disjoint regions.
func (d *Device) Launch(cfg KernelConfig, kern func(w *Warp)) (KernelResult, error) {
	if cfg.Warps < 0 {
		return KernelResult{}, fmt.Errorf("simt: negative warp count %d", cfg.Warps)
	}
	perWarp := make([]Stats, cfg.Warps)

	runWarp := func(id int) {
		w := &Warp{Dev: d, ID: id, perLane: cfg.LocalBytesPerLane}
		if cfg.LocalBytesPerLane > 0 {
			w.localMem = make([]byte, cfg.LocalBytesPerLane*WarpSize)
		}
		w.stats.Warps = 1
		kern(w)
		perWarp[id] = w.stats
	}

	if cfg.Sequential || cfg.Warps <= 1 {
		for id := 0; id < cfg.Warps; id++ {
			runWarp(id)
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > cfg.Warps {
			workers = cfg.Warps
		}
		var wg sync.WaitGroup
		next := make(chan int)
		wg.Add(workers)
		for wk := 0; wk < workers; wk++ {
			go func() {
				defer wg.Done()
				for id := range next {
					runWarp(id)
				}
			}()
		}
		for id := 0; id < cfg.Warps; id++ {
			next <- id
		}
		close(next)
		wg.Wait()
	}

	var res KernelResult
	res.Kernel = cfg.Name
	for i := range perWarp {
		res.Stats.Add(&perWarp[i])
	}
	// Stats.Add maxes MaxSerialMemChain across warps and sums Warps.
	res.Time, res.Bound = timeModel(d.Cfg, &res.Stats)
	return res, nil
}
