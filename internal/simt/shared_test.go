package simt

import "testing"

func TestSharedRoundTrip(t *testing.T) {
	d := testDevice()
	launchOne(t, d, 0, func(w *Warp) {
		var offs, vals Vec
		for l := 0; l < WarpSize; l++ {
			offs[l] = uint64(l * 8)
			vals[l] = uint64(l*l + 7)
		}
		w.StoreShared(FullMask, &offs, 8, &vals)
		back := w.LoadShared(FullMask, &offs, 8)
		for l := 0; l < WarpSize; l++ {
			if back[l] != uint64(l*l+7) {
				t.Errorf("lane %d: %d", l, back[l])
			}
		}
	})
}

func TestSharedBankConflictFree(t *testing.T) {
	d := testDevice()
	res := launchOne(t, d, 0, func(w *Warp) {
		// Lanes hit consecutive 4-byte words: one word per bank.
		var offs Vec
		for l := 0; l < WarpSize; l++ {
			offs[l] = uint64(l * 4)
		}
		w.LoadShared(FullMask, &offs, 4)
	})
	if res.WarpInstrs[ILdShared] != 1 {
		t.Errorf("conflict-free access replayed: %d instrs", res.WarpInstrs[ILdShared])
	}
}

func TestSharedBankConflictSerializes(t *testing.T) {
	d := testDevice()
	res := launchOne(t, d, 0, func(w *Warp) {
		// All lanes hit bank 0 with distinct words: 32-way conflict.
		var offs Vec
		for l := 0; l < WarpSize; l++ {
			offs[l] = uint64(l * 4 * SharedBanks)
		}
		w.LoadShared(FullMask, &offs, 4)
	})
	if res.WarpInstrs[ILdShared] != WarpSize {
		t.Errorf("32-way conflict replayed %d times, want %d", res.WarpInstrs[ILdShared], WarpSize)
	}
}

func TestSharedBroadcastNoConflict(t *testing.T) {
	d := testDevice()
	res := launchOne(t, d, 0, func(w *Warp) {
		// Same word for every lane: broadcast, no conflict.
		offs := Splat(64)
		w.LoadShared(FullMask, &offs, 4)
	})
	if res.WarpInstrs[ILdShared] != 1 {
		t.Errorf("broadcast replayed: %d instrs", res.WarpInstrs[ILdShared])
	}
}

func TestSharedIsolatedPerWarp(t *testing.T) {
	d := testDevice()
	_, err := d.Launch(KernelConfig{Name: "iso", Warps: 4, Sequential: true}, func(w *Warp) {
		offs := Splat(0)
		vals := Splat(uint64(w.ID + 1))
		w.StoreShared(LaneMask(0), &offs, 8, &vals)
		back := w.LoadShared(LaneMask(0), &offs, 8)
		if back[0] != uint64(w.ID+1) {
			t.Errorf("warp %d read %d — shared memory leaks across warps", w.ID, back[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
