package simt

import (
	"errors"
	"testing"
)

// TestInjectFault: after InjectFault every Launch fails with the injected
// error (ErrDeviceLost by default), memory operations keep working (the
// host can still drain results), and ClearFault restores the device.
func TestInjectFault(t *testing.T) {
	d := NewDevice(V100())
	ran := false
	kern := func(w *Warp) { ran = true }

	if _, err := d.Launch(KernelConfig{Name: "ok", Warps: 1, Sequential: true}, kern); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("kernel did not run before fault")
	}

	d.InjectFault(nil)
	ran = false
	_, err := d.Launch(KernelConfig{Name: "dead", Warps: 1, Sequential: true}, kern)
	if !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("faulted launch returned %v, want ErrDeviceLost", err)
	}
	if ran {
		t.Error("kernel ran on a faulted device")
	}
	// Second launch still fails: the fault is sticky.
	if _, err := d.Launch(KernelConfig{Name: "dead2", Warps: 1, Sequential: true}, kern); !errors.Is(err, ErrDeviceLost) {
		t.Errorf("fault was not sticky: %v", err)
	}

	// Memory traffic still works on a faulted device.
	p, err := d.Malloc(64)
	if err != nil {
		t.Fatalf("malloc on faulted device: %v", err)
	}
	d.MemcpyHtoD(p, []byte{1, 2, 3})

	d.ClearFault()
	if _, err := d.Launch(KernelConfig{Name: "back", Warps: 1, Sequential: true}, kern); err != nil {
		t.Fatalf("launch after ClearFault: %v", err)
	}

	// A custom error is passed through verbatim.
	custom := errors.New("thermal shutdown")
	d.InjectFault(custom)
	if _, err := d.Launch(KernelConfig{Name: "custom", Warps: 1, Sequential: true}, kern); !errors.Is(err, custom) {
		t.Errorf("custom fault not surfaced: %v", err)
	}
}
