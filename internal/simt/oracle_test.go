package simt

// The interpreter fast paths (fastpath.go, DESIGN.md §12) must be
// bit-identical to the straightforward implementations they replaced: same
// Stats counters, same device/local memory contents, same returned vectors.
// This file keeps those original implementations verbatim as a reference
// oracle (refWarp) and checks the live interpreter against it, both with
// directed cases and with a differential fuzzer over random op streams.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// refWarp is the pre-fast-path warp interpreter, transplanted unchanged
// from the seed revision of warp.go. It runs against its own Device.
type refWarp struct {
	dev      *Device
	stats    Stats
	localMem []byte
	perLane  int
}

func newRefWarp(dev *Device, perLane int) *refWarp {
	return &refWarp{dev: dev, localMem: make([]byte, perLane*WarpSize), perLane: perLane}
}

func (w *refWarp) execN(c InstrClass, mask Mask, n int) {
	active := uint64(mask.Count())
	w.stats.WarpInstrs[c] += uint64(n)
	w.stats.ThreadInstrs[c] += uint64(n) * active
	w.stats.PredicatedOff += uint64(n) * (WarpSize - active)
}

func (w *refWarp) coalesce(mask Mask, addrs *Vec, size int) uint64 {
	var sectors [2 * WarpSize]uint64
	n := 0
	sb := uint64(w.dev.Cfg.SectorBytes)
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		for s := addrs[lane] / sb; s <= (addrs[lane]+uint64(size)-1)/sb; s++ {
			found := false
			for i := 0; i < n; i++ {
				if sectors[i] == s {
					found = true
					break
				}
			}
			if !found {
				sectors[n] = s
				n++
			}
		}
	}
	return uint64(n)
}

func (w *refWarp) effLatency(lat int) uint64 {
	mlp := w.dev.Cfg.MemParallelism
	if mlp < 1 {
		mlp = 1
	}
	return uint64((lat + mlp - 1) / mlp)
}

func (w *refWarp) addLocalTraffic(mask Mask, size int) {
	bytes := mask.Count() * size
	sb := w.dev.Cfg.SectorBytes
	w.stats.LocalSectors += uint64((bytes + sb - 1) / sb)
}

func (w *refWarp) loadGlobal(mask Mask, addrs *Vec, size int) Vec {
	w.execN(ILdGlobal, mask, 1)
	w.stats.GlobalSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.dev.Cfg.GlobalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = w.dev.load(Ptr(addrs[lane]), size)
		}
	}
	return out
}

func (w *refWarp) storeGlobal(mask Mask, addrs *Vec, size int, vals *Vec) {
	w.execN(IStGlobal, mask, 1)
	w.stats.GlobalSectors += w.coalesce(mask, addrs, size)
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			w.dev.store(Ptr(addrs[lane]), size, vals[lane])
		}
	}
}

func (w *refWarp) atomicCAS(mask Mask, addrs, compare, val *Vec, size int) Vec {
	w.execN(IAtomic, mask, 1)
	w.stats.AtomicSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.dev.Cfg.GlobalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		old := w.dev.load(Ptr(addrs[lane]), size)
		out[lane] = old
		if old == compare[lane] {
			w.dev.store(Ptr(addrs[lane]), size, val[lane])
		}
	}
	return out
}

func (w *refWarp) atomicAdd(mask Mask, addrs, delta *Vec, size int) Vec {
	w.execN(IAtomic, mask, 1)
	w.stats.AtomicSectors += w.coalesce(mask, addrs, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.dev.Cfg.GlobalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		old := w.dev.load(Ptr(addrs[lane]), size)
		out[lane] = old
		w.dev.store(Ptr(addrs[lane]), size, old+delta[lane])
	}
	return out
}

func (w *refWarp) localAddr(lane int, off uint64) uint64 {
	return uint64(lane)*uint64(w.perLane) + off
}

func refLoadLE(b []byte, size int) uint64 {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func refStoreLE(b []byte, size int, v uint64) {
	for i := 0; i < size; i++ {
		b[i] = byte(v >> uint(8*i))
	}
}

func (w *refWarp) loadLocal(mask Mask, offs *Vec, size int) Vec {
	w.execN(ILdLocal, mask, 1)
	w.addLocalTraffic(mask, size)
	w.stats.MaxSerialMemChain += w.effLatency(w.dev.Cfg.LocalLatency)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = refLoadLE(w.localMem[w.localAddr(lane, offs[lane]):], size)
		}
	}
	return out
}

func (w *refWarp) storeLocal(mask Mask, offs *Vec, size int, vals *Vec) {
	w.execN(IStLocal, mask, 1)
	w.addLocalTraffic(mask, size)
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			refStoreLE(w.localMem[w.localAddr(lane, offs[lane]):], size, vals[lane])
		}
	}
}

func (w *refWarp) matchAny(mask Mask, vals *Vec) [WarpSize]Mask {
	w.execN(IMatch, mask, 1)
	var out [WarpSize]Mask
	for a := 0; a < WarpSize; a++ {
		if !mask.Has(a) {
			continue
		}
		for b := 0; b < WarpSize; b++ {
			if mask.Has(b) && vals[b] == vals[a] {
				out[a] |= LaneMask(b)
			}
		}
	}
	return out
}

func (w *refWarp) ballot(mask Mask, pred func(lane int) bool) Mask {
	w.execN(IBallot, mask, 1)
	var out Mask
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) && pred(lane) {
			out |= LaneMask(lane)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Directed coalesce differential: every access shape the kernels produce,
// plus adversarial ones, against the reference linear scan.

func TestCoalesceMatchesReference(t *testing.T) {
	dev := NewDevice(V100())
	var w Warp
	w.reset(dev, 0, 0)
	ref := newRefWarp(dev, 0)

	mk := func(f func(lane int) uint64) Vec {
		var v Vec
		for i := range v {
			v[i] = f(i)
		}
		return v
	}
	cases := []struct {
		name  string
		mask  Mask
		addrs Vec
		size  int
	}{
		{"contiguous4", FullMask, mk(func(l int) uint64 { return 1000 + uint64(4*l) }), 4},
		{"contiguous8", FullMask, mk(func(l int) uint64 { return 1000 + uint64(8*l) }), 8},
		{"contiguous8_unaligned", FullMask, mk(func(l int) uint64 { return 1003 + uint64(8*l) }), 8},
		{"contiguous1", FullMask, mk(func(l int) uint64 { return 7 + uint64(l) }), 1},
		{"stride32", FullMask, mk(func(l int) uint64 { return uint64(32 * l) }), 4},
		{"stride48", FullMask, mk(func(l int) uint64 { return uint64(48 * l) }), 8},
		{"overlap1", FullMask, mk(func(l int) uint64 { return 500 + uint64(l) }), 8},
		{"same_addr", FullMask, mk(func(l int) uint64 { return 64 }), 4},
		{"descending", FullMask, mk(func(l int) uint64 { return uint64(8 * (WarpSize - l)) }), 8},
		{"lane0", LaneMask(0), mk(func(l int) uint64 { return 12345 }), 8},
		{"lane31", LaneMask(31), mk(func(l int) uint64 { return 77 }), 2},
		{"empty", 0, Vec{}, 8},
		{"sparse_sorted", 0x80010001, mk(func(l int) uint64 { return uint64(100 * l) }), 4},
		{"partial_run", 0x0000ffff, mk(func(l int) uint64 { return 256 + uint64(8*l) }), 8},
		{"dup_sorted", FullMask, mk(func(l int) uint64 { return uint64(8 * (l / 2)) }), 8},
		{"sector_straddle", FullMask, mk(func(l int) uint64 { return 28 + uint64(64*l) }), 8},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 64; i++ {
		cases = append(cases, struct {
			name  string
			mask  Mask
			addrs Vec
			size  int
		}{
			fmt.Sprintf("random%d", i),
			Mask(rng.Uint32()),
			mk(func(l int) uint64 { return uint64(rng.Intn(1 << 16)) }),
			1 << rng.Intn(4),
		})
	}
	for _, tc := range cases {
		got := w.coalesce(tc.mask, &tc.addrs, tc.size)
		want := ref.coalesce(tc.mask, &tc.addrs, tc.size)
		if got != want {
			t.Errorf("%s: coalesce = %d, reference = %d", tc.name, got, want)
		}
	}
}

// ---------------------------------------------------------------------------
// Differential op-stream driver: the same decoded op sequence runs through a
// live Launch and through refWarp on a second device seeded with identical
// memory; stats, device memory, local memory, and every returned vector must
// match exactly.

const (
	diffArena   = 4096
	diffPerLane = 64
)

type warpOp struct {
	kind  int // 0 ldG 1 stG 2 cas 3 add 4 ldL 5 stL 6 match 7 ballot
	mask  Mask
	addrs Vec
	vals  Vec
	cmp   Vec
	size  int
}

// decodeOps turns a fuzz byte stream into a bounded op sequence with
// addresses inside the arena and local offsets inside each lane's slice.
func decodeOps(data []byte) []warpOp {
	var ops []warpOp
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	u16 := func() uint64 { return uint64(next()) | uint64(next())<<8 }
	for pos < len(data) && len(ops) < 64 {
		var op warpOp
		op.kind = int(next() % 8)
		op.mask = Mask(uint32(u16()) | uint32(u16())<<16)
		op.size = 1 << (next() % 4)
		base := u16() % (diffArena - 8*WarpSize - 8)
		pattern := next() % 5
		seed := u16()
		for lane := 0; lane < WarpSize; lane++ {
			switch pattern {
			case 0: // contiguous unit stride
				op.addrs[lane] = base + uint64(op.size*lane)
			case 1: // strided
				op.addrs[lane] = base + uint64(lane)*(seed%64)
			case 2: // uniform (same address)
				op.addrs[lane] = base
			case 3: // descending
				op.addrs[lane] = base + uint64(op.size*(WarpSize-1-lane))
			default: // scattered
				op.addrs[lane] = (base + seed*uint64(lane)*2654435761) % (diffArena - 8)
			}
			if op.addrs[lane] > diffArena-8 {
				op.addrs[lane] = diffArena - 8
			}
			op.vals[lane] = seed*uint64(lane+1) + uint64(pattern)
			op.cmp[lane] = op.vals[lane] % 3 // frequent CAS hits on 0-init mem
		}
		if op.kind == 4 || op.kind == 5 { // local: per-lane offsets
			for lane := 0; lane < WarpSize; lane++ {
				op.addrs[lane] = op.addrs[lane] % (diffPerLane - 8)
			}
		}
		ops = append(ops, op)
	}
	return ops
}

func applyReal(w *Warp, ops []warpOp) []Vec {
	outs := make([]Vec, 0, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case 0:
			outs = append(outs, w.LoadGlobal(op.mask, &op.addrs, op.size))
		case 1:
			w.StoreGlobal(op.mask, &op.addrs, op.size, &op.vals)
			outs = append(outs, Vec{})
		case 2:
			outs = append(outs, w.AtomicCAS(op.mask, &op.addrs, &op.cmp, &op.vals, op.size))
		case 3:
			outs = append(outs, w.AtomicAdd(op.mask, &op.addrs, &op.vals, op.size))
		case 4:
			outs = append(outs, w.LoadLocal(op.mask, &op.addrs, op.size))
		case 5:
			w.StoreLocal(op.mask, &op.addrs, op.size, &op.vals)
			outs = append(outs, Vec{})
		case 6:
			groups := w.MatchAny(op.mask, &op.vals)
			var v Vec
			for lane := range groups {
				v[lane] = uint64(groups[lane])
			}
			outs = append(outs, v)
		default:
			b := w.Ballot(op.mask, func(lane int) bool { return op.vals[lane]&1 == 1 })
			outs = append(outs, Vec{uint64(b)})
		}
	}
	return outs
}

func applyRef(w *refWarp, ops []warpOp) []Vec {
	outs := make([]Vec, 0, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case 0:
			outs = append(outs, w.loadGlobal(op.mask, &op.addrs, op.size))
		case 1:
			w.storeGlobal(op.mask, &op.addrs, op.size, &op.vals)
			outs = append(outs, Vec{})
		case 2:
			outs = append(outs, w.atomicCAS(op.mask, &op.addrs, &op.cmp, &op.vals, op.size))
		case 3:
			outs = append(outs, w.atomicAdd(op.mask, &op.addrs, &op.vals, op.size))
		case 4:
			outs = append(outs, w.loadLocal(op.mask, &op.addrs, op.size))
		case 5:
			w.storeLocal(op.mask, &op.addrs, op.size, &op.vals)
			outs = append(outs, Vec{})
		case 6:
			groups := w.matchAny(op.mask, &op.vals)
			var v Vec
			for lane := range groups {
				v[lane] = uint64(groups[lane])
			}
			outs = append(outs, v)
		default:
			b := w.ballot(op.mask, func(lane int) bool { return op.vals[lane]&1 == 1 })
			outs = append(outs, Vec{uint64(b)})
		}
	}
	return outs
}

// checkDifferential runs one decoded op stream both ways and reports the
// first divergence. cfg varies so the fast paths are exercised across sector
// sizes and memory-parallelism values.
func checkDifferential(t *testing.T, cfg DeviceConfig, data []byte) {
	t.Helper()
	ops := decodeOps(data)
	if len(ops) == 0 {
		return
	}

	seedMem := make([]byte, diffArena)
	rng := rand.New(rand.NewSource(int64(len(data))))
	rng.Read(seedMem)

	liveDev := NewDevice(cfg)
	if _, err := liveDev.Malloc(diffArena); err != nil {
		t.Fatal(err)
	}
	liveDev.MemcpyHtoD(0, seedMem)
	refDev := NewDevice(cfg)
	if _, err := refDev.Malloc(diffArena); err != nil {
		t.Fatal(err)
	}
	refDev.MemcpyHtoD(0, seedMem)

	var liveOuts []Vec
	res, err := liveDev.Launch(KernelConfig{
		Name:              "diff",
		Warps:             1,
		Sequential:        true,
		LocalBytesPerLane: diffPerLane,
	}, func(w *Warp) {
		liveOuts = applyReal(w, ops)
	})
	if err != nil {
		t.Fatal(err)
	}

	ref := newRefWarp(refDev, diffPerLane)
	ref.stats.Warps = 1
	ref.stats.Kernel = res.Stats.Kernel // label, set by Launch, not by ops
	refOuts := applyRef(ref, ops)

	if res.Stats != ref.stats {
		t.Fatalf("stats diverge:\nlive %+v\nref  %+v\nops %+v", res.Stats, ref.stats, ops)
	}
	for i := range refOuts {
		if liveOuts[i] != refOuts[i] {
			t.Fatalf("op %d (%+v): outputs diverge\nlive %v\nref  %v", i, ops[i], liveOuts[i], refOuts[i])
		}
	}
	if !bytes.Equal(liveDev.mem[:diffArena], refDev.mem[:diffArena]) {
		t.Fatalf("device memory diverges (ops %+v)", ops)
	}
	// The live warp context is pooled; fetch its local arena for comparison.
	// Under -race sync.Pool drops items on purpose, so the context may be
	// gone — skip the local-memory comparison there.
	ctx, _ := liveDev.ctxPool.Get().(*warpCtx)
	if ctx == nil {
		if !raceEnabled {
			t.Fatal("sequential launch context not pooled")
		}
		return
	}
	if !bytes.Equal(ctx.w.localMem, ref.localMem) {
		t.Fatalf("local memory diverges (ops %+v)", ops)
	}
}

func diffConfigs() []DeviceConfig {
	v := V100()
	narrow := v
	narrow.SectorBytes = 8
	narrow.MemParallelism = 1
	wide := v
	wide.SectorBytes = 128
	wide.MemParallelism = 3
	return []DeviceConfig{v, narrow, wide}
}

func TestWarpFastpathDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		data := make([]byte, 16+rng.Intn(512))
		rng.Read(data)
		for _, cfg := range diffConfigs() {
			checkDifferential(t, cfg, data)
		}
	}
}

// FuzzWarpFastpath is the ISSUE's differential fuzzer: arbitrary op streams
// must leave the live interpreter and the reference oracle in bit-identical
// states — same Stats, same memory, same outputs.
func FuzzWarpFastpath(f *testing.F) {
	f.Add([]byte{0, 0xff, 0xff, 0xff, 0xff, 3, 16, 0, 0, 1, 2})
	f.Add([]byte{2, 0x0f, 0x00, 0xf0, 0x00, 2, 0, 1, 4, 99, 9})
	f.Add(bytes.Repeat([]byte{5, 0xaa, 0x55, 0xaa, 0x55, 1, 8, 0, 2, 7, 1}, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, cfg := range diffConfigs() {
			checkDifferential(t, cfg, data)
		}
	})
}

// ---------------------------------------------------------------------------
// Satellite guards.

func TestLaunchNegativeLocalBytesPerLane(t *testing.T) {
	dev := NewDevice(V100())
	_, err := dev.Launch(KernelConfig{Warps: 1, LocalBytesPerLane: -1, Sequential: true}, func(w *Warp) {
		t.Error("kernel ran despite invalid config")
	})
	if err == nil {
		t.Fatal("Launch accepted negative LocalBytesPerLane")
	}
}

func TestShflGuard(t *testing.T) {
	dev := NewDevice(V100())
	res, err := dev.Launch(KernelConfig{Warps: 1, Sequential: true}, func(w *Warp) {
		vals := Splat(0xdead)
		vals[3] = 42

		// Valid source lane: broadcast to active lanes only.
		out := w.Shfl(0x0000ffff, &vals, 3)
		for lane := 0; lane < WarpSize; lane++ {
			want := uint64(0)
			if lane < 16 {
				want = 42
			}
			if out[lane] != want {
				t.Errorf("Shfl valid: lane %d = %d, want %d", lane, out[lane], want)
			}
		}

		// Inactive source lane and out-of-range lanes: defined all-zero
		// result (undefined behavior on real hardware).
		for _, src := range []int{16, -1, WarpSize, 1000} {
			if out := w.Shfl(0x0000ffff, &vals, src); out != (Vec{}) {
				t.Errorf("Shfl guarded src %d: got %v, want zero vector", src, out)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Guarded shuffles still count as issued warp instructions.
	if got := res.Stats.WarpInstrs[IShfl]; got != 5 {
		t.Errorf("IShfl warp instrs = %d, want 5", got)
	}
}

// TestLaunchSteadyStateAllocs is the CI allocation gate: once the device's
// pools are warm, Launch must not allocate — in sequential and in parallel
// mode. A regression here silently reintroduces per-launch garbage on the
// figure-suite hot path.
func TestLaunchSteadyStateAllocs(t *testing.T) {
	kern := func(w *Warp) {
		addrs := Splat(0)
		w.LoadGlobal(FullMask, &addrs, 8)
	}
	for _, mode := range []struct {
		name       string
		sequential bool
	}{{"sequential", true}, {"parallel", false}} {
		t.Run(mode.name, func(t *testing.T) {
			dev := NewDevice(V100())
			if _, err := dev.Malloc(4096); err != nil {
				t.Fatal(err)
			}
			defer dev.Close()
			cfg := KernelConfig{Name: "gate", Warps: 64, Sequential: mode.sequential, LocalBytesPerLane: 64}
			launch := func() {
				if _, err := dev.Launch(cfg, kern); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 100; i++ { // warm the launch-state and warp pools
				launch()
			}
			if raceEnabled {
				t.Skip("sync.Pool drops items under -race; allocation gate not meaningful")
			}
			if avg := testing.AllocsPerRun(50, launch); avg > 0 {
				t.Errorf("%s Launch allocates %.1f objects per call at steady state, want 0", mode.name, avg)
			}
		})
	}
}
