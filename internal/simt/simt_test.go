package simt

import (
	"math"
	"testing"
)

func testDevice() *Device {
	cfg := V100()
	cfg.GlobalMemBytes = 1 << 26 // 64 MiB is plenty for tests
	return NewDevice(cfg)
}

func TestPeakWarpGIPSMatchesPaper(t *testing.T) {
	// Figs 8-9 show a theoretical peak of 489.6 warp GIPS for the V100.
	got := V100().PeakWarpGIPS()
	if math.Abs(got-489.6) > 0.01 {
		t.Errorf("V100 peak = %.2f warp GIPS, paper shows 489.6", got)
	}
}

func TestMallocAlignmentAndOOM(t *testing.T) {
	d := testDevice()
	p1, err := d.Malloc(10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Malloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if p1%64 != 0 || p2%64 != 0 {
		t.Errorf("allocations not 64-byte aligned: %d, %d", p1, p2)
	}
	if p2 <= p1 {
		t.Errorf("bump allocator went backwards: %d then %d", p1, p2)
	}
	if _, err := d.Malloc(d.Cfg.GlobalMemBytes); err == nil {
		t.Error("allocation beyond capacity accepted")
	}
	if _, err := d.Malloc(-1); err == nil {
		t.Error("negative allocation accepted")
	}
	d.FreeAll()
	if d.InUse() != 0 {
		t.Errorf("InUse after FreeAll = %d", d.InUse())
	}
	p3, err := d.Malloc(10)
	if err != nil || p3 != p1 {
		t.Errorf("allocator did not reset: %d vs %d (%v)", p3, p1, err)
	}
}

func TestMemcpyAndTraffic(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(64)
	src := []byte("the quick brown fox")
	d.MemcpyHtoD(p, src)
	dst := make([]byte, len(src))
	d.MemcpyDtoH(dst, p)
	if string(dst) != string(src) {
		t.Errorf("round trip: %q", dst)
	}
	h2d, d2h := d.Traffic()
	if h2d != int64(len(src)) || d2h != int64(len(src)) {
		t.Errorf("traffic %d/%d, want %d/%d", h2d, d2h, len(src), len(src))
	}
	h2d, d2h = d.Traffic()
	if h2d != 0 || d2h != 0 {
		t.Error("Traffic did not reset counters")
	}
}

func TestHostAccessors(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(64)
	d.WriteU32(p, 0xdeadbeef)
	if d.ReadU32(p) != 0xdeadbeef {
		t.Error("u32 round trip failed")
	}
	d.WriteU64(p+8, 0x0123456789abcdef)
	if d.ReadU64(p+8) != 0x0123456789abcdef {
		t.Error("u64 round trip failed")
	}
	d.WriteBytes(p+32, []byte("abc"))
	if string(d.ReadBytes(p+32, 3)) != "abc" {
		t.Error("bytes round trip failed")
	}
}

// launchOne runs a single-warp kernel and returns its result.
func launchOne(t *testing.T, d *Device, local int, kern func(w *Warp)) KernelResult {
	t.Helper()
	res, err := d.Launch(KernelConfig{Name: "test", Warps: 1, LocalBytesPerLane: local}, kern)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLoadStoreGlobalPerLane(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(WarpSize * 8)
	res := launchOne(t, d, 0, func(w *Warp) {
		var addrs, vals Vec
		for l := 0; l < WarpSize; l++ {
			addrs[l] = uint64(p) + uint64(l*8)
			vals[l] = uint64(l * l)
		}
		w.StoreGlobal(FullMask, &addrs, 8, &vals)
		back := w.LoadGlobal(FullMask, &addrs, 8)
		for l := 0; l < WarpSize; l++ {
			if back[l] != uint64(l*l) {
				t.Errorf("lane %d: got %d", l, back[l])
			}
		}
	})
	if res.WarpInstrs[ILdGlobal] != 1 || res.WarpInstrs[IStGlobal] != 1 {
		t.Errorf("instr counts: ld=%d st=%d", res.WarpInstrs[ILdGlobal], res.WarpInstrs[IStGlobal])
	}
}

func TestMaskedLanesUntouched(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(WarpSize * 4)
	mask := Mask(0x0000ffff) // lanes 0-15 only
	launchOne(t, d, 0, func(w *Warp) {
		var addrs, vals Vec
		for l := 0; l < WarpSize; l++ {
			addrs[l] = uint64(p) + uint64(l*4)
			vals[l] = 7
		}
		w.StoreGlobal(mask, &addrs, 4, &vals)
	})
	for l := 0; l < WarpSize; l++ {
		got := d.ReadU32(p + Ptr(l*4))
		if l < 16 && got != 7 {
			t.Errorf("active lane %d not written", l)
		}
		if l >= 16 && got != 0 {
			t.Errorf("masked lane %d was written: %d", l, got)
		}
	}
}

func TestCoalescingContiguous(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(4096)
	res := launchOne(t, d, 0, func(w *Warp) {
		var addrs Vec
		for l := 0; l < WarpSize; l++ {
			addrs[l] = uint64(p) + uint64(l*4)
		}
		w.LoadGlobal(FullMask, &addrs, 4)
	})
	// 32 lanes x 4B contiguous = 128B = 4 sectors of 32B.
	if res.GlobalSectors != 4 {
		t.Errorf("contiguous 4B loads: %d sectors, want 4", res.GlobalSectors)
	}
}

func TestCoalescingStrided(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(WarpSize * 64)
	res := launchOne(t, d, 0, func(w *Warp) {
		var addrs Vec
		for l := 0; l < WarpSize; l++ {
			addrs[l] = uint64(p) + uint64(l*64) // one sector apart
		}
		w.LoadGlobal(FullMask, &addrs, 4)
	})
	if res.GlobalSectors != 32 {
		t.Errorf("strided loads: %d sectors, want 32", res.GlobalSectors)
	}
}

func TestCoalescingSameAddress(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(64)
	res := launchOne(t, d, 0, func(w *Warp) {
		addrs := Splat(uint64(p))
		w.LoadGlobal(FullMask, &addrs, 8)
	})
	if res.GlobalSectors != 1 {
		t.Errorf("broadcast load: %d sectors, want 1", res.GlobalSectors)
	}
}

func TestCoalescingSectorStraddle(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(128)
	res := launchOne(t, d, 0, func(w *Warp) {
		addrs := Splat(uint64(p) + 28) // 8B access crossing a 32B boundary
		w.LoadGlobal(LaneMask(0), &addrs, 8)
	})
	if res.GlobalSectors != 2 {
		t.Errorf("straddling load: %d sectors, want 2", res.GlobalSectors)
	}
}

func TestAtomicCASSemantics(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(8)
	d.WriteU64(p, 0) // empty slot
	var old Vec
	launchOne(t, d, 0, func(w *Warp) {
		addrs := Splat(uint64(p))
		cmp := Splat(0)
		var vals Vec
		for l := 0; l < WarpSize; l++ {
			vals[l] = uint64(100 + l)
		}
		old = w.AtomicCAS(FullMask, &addrs, &cmp, &vals, 8)
	})
	// Lane 0 wins deterministically; all later lanes observe lane 0's value.
	if old[0] != 0 {
		t.Errorf("winning lane saw %d, want 0", old[0])
	}
	for l := 1; l < WarpSize; l++ {
		if old[l] != 100 {
			t.Errorf("lane %d saw %d, want 100", l, old[l])
		}
	}
	if d.ReadU64(p) != 100 {
		t.Errorf("final value %d, want 100", d.ReadU64(p))
	}
}

func TestAtomicAdd(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(8)
	launchOne(t, d, 0, func(w *Warp) {
		addrs := Splat(uint64(p))
		delta := Splat(1)
		w.AtomicAdd(FullMask, &addrs, &delta, 8)
	})
	if d.ReadU64(p) != WarpSize {
		t.Errorf("after 32 atomic adds: %d", d.ReadU64(p))
	}
}

func TestShflBroadcast(t *testing.T) {
	d := testDevice()
	launchOne(t, d, 0, func(w *Warp) {
		var vals Vec
		for l := range vals {
			vals[l] = uint64(l)
		}
		got := w.Shfl(FullMask, &vals, 5)
		for l := 0; l < WarpSize; l++ {
			if got[l] != 5 {
				t.Errorf("lane %d: shfl got %d, want 5", l, got[l])
			}
		}
	})
}

func TestBallot(t *testing.T) {
	d := testDevice()
	launchOne(t, d, 0, func(w *Warp) {
		m := w.Ballot(FullMask, func(l int) bool { return l%2 == 0 })
		if m != 0x55555555 {
			t.Errorf("ballot = %#x, want 0x55555555", m)
		}
		m = w.Ballot(Mask(0xff), func(l int) bool { return true })
		if m != 0xff {
			t.Errorf("masked ballot = %#x, want 0xff", m)
		}
	})
}

func TestMatchAny(t *testing.T) {
	d := testDevice()
	launchOne(t, d, 0, func(w *Warp) {
		var vals Vec
		for l := range vals {
			vals[l] = uint64(l % 4) // lanes {0,4,8,...} share value 0, etc.
		}
		groups := w.MatchAny(FullMask, &vals)
		for l := 0; l < WarpSize; l++ {
			want := Mask(0x11111111) << uint(l%4)
			if groups[l] != want {
				t.Errorf("lane %d: match = %#x, want %#x", l, groups[l], want)
			}
		}
	})
}

func TestLocalMemoryLaneIsolation(t *testing.T) {
	d := testDevice()
	launchOne(t, d, 16, func(w *Warp) {
		offs := Splat(0)
		var vals Vec
		for l := range vals {
			vals[l] = uint64(l + 1)
		}
		w.StoreLocal(FullMask, &offs, 8, &vals)
		back := w.LoadLocal(FullMask, &offs, 8)
		for l := 0; l < WarpSize; l++ {
			if back[l] != uint64(l+1) {
				t.Errorf("lane %d read %d, want %d (lanes share local memory?)", l, back[l], l+1)
			}
		}
	})
}

func TestExecCounters(t *testing.T) {
	d := testDevice()
	res := launchOne(t, d, 0, func(w *Warp) {
		w.Exec(IInt, FullMask)
		w.ExecN(IFP, Mask(0xf), 3) // 4 active lanes, 3 instructions
	})
	if res.WarpInstrs[IInt] != 1 || res.ThreadInstrs[IInt] != 32 {
		t.Errorf("int counters: %d/%d", res.WarpInstrs[IInt], res.ThreadInstrs[IInt])
	}
	if res.WarpInstrs[IFP] != 3 || res.ThreadInstrs[IFP] != 12 {
		t.Errorf("fp counters: %d/%d", res.WarpInstrs[IFP], res.ThreadInstrs[IFP])
	}
	if res.PredicatedOff != 3*28 {
		t.Errorf("predicated-off = %d, want 84", res.PredicatedOff)
	}
	ratio := res.NonPredicatedRatio()
	want := float64(32+12) / float64(4*32)
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("non-predicated ratio %.3f, want %.3f", ratio, want)
	}
}

func TestLaunchParallelMatchesSequential(t *testing.T) {
	run := func(seq bool) ([]byte, Stats) {
		d := testDevice()
		p, _ := d.Malloc(1024 * 8)
		res, err := d.Launch(KernelConfig{Name: "fill", Warps: 32, Sequential: seq}, func(w *Warp) {
			var addrs, vals Vec
			for l := 0; l < WarpSize; l++ {
				addrs[l] = uint64(p) + uint64((w.ID*WarpSize+l)*8)
				vals[l] = uint64(w.ID*1000 + l)
			}
			w.StoreGlobal(FullMask, &addrs, 8, &vals)
			w.Exec(IInt, FullMask)
		})
		if err != nil {
			t.Fatal(err)
		}
		return d.ReadBytes(p, 1024*8), res.Stats
	}
	memSeq, statsSeq := run(true)
	memPar, statsPar := run(false)
	if string(memSeq) != string(memPar) {
		t.Error("parallel launch produced different memory contents")
	}
	if statsSeq.TotalWarpInstrs() != statsPar.TotalWarpInstrs() ||
		statsSeq.GlobalSectors != statsPar.GlobalSectors {
		t.Error("parallel launch produced different counters")
	}
	if statsSeq.Warps != 32 {
		t.Errorf("warps = %d, want 32", statsSeq.Warps)
	}
}

func TestTimeModelBounds(t *testing.T) {
	cfg := V100()

	// Tiny grid, long dependent chain: latency bound.
	lat := Stats{Warps: 1, MaxSerialMemChain: 1 << 20}
	lat.WarpInstrs[IInt] = 10
	_, bound := timeModel(cfg, &lat)
	if bound != "latency" {
		t.Errorf("tiny-grid bound = %s, want latency", bound)
	}

	// Huge instruction count, no memory: issue bound.
	issue := Stats{Warps: 1 << 20}
	issue.WarpInstrs[IInt] = 1 << 40
	_, bound = timeModel(cfg, &issue)
	if bound != "issue" {
		t.Errorf("compute-heavy bound = %s, want issue", bound)
	}

	// Huge streaming traffic: bandwidth bound.
	bw := Stats{Warps: 1 << 20, GlobalSectors: 1 << 40}
	bw.WarpInstrs[IInt] = 1
	_, bound = timeModel(cfg, &bw)
	if bound != "bandwidth" {
		t.Errorf("traffic-heavy bound = %s, want bandwidth", bound)
	}

	// Nearly empty kernel: launch overhead dominates.
	empty := Stats{Warps: 1}
	empty.WarpInstrs[IInt] = 1
	d, bound := timeModel(cfg, &empty)
	if bound != "launch" {
		t.Errorf("empty-kernel bound = %s, want launch", bound)
	}
	if d < cfg.KernelLaunchOverhead {
		t.Errorf("time %v below launch overhead", d)
	}
}

func TestTimeModelMoreWorkMoreTime(t *testing.T) {
	cfg := V100()
	small := Stats{Warps: 100, GlobalSectors: 1000, MaxSerialMemChain: 1000}
	small.WarpInstrs[IInt] = 100000
	big := small
	big.WarpInstrs[IInt] *= 10
	big.GlobalSectors *= 10
	big.Warps *= 10
	tSmall, _ := timeModel(cfg, &small)
	tBig, _ := timeModel(cfg, &big)
	if tBig < tSmall {
		t.Errorf("10x work took less time: %v vs %v", tBig, tSmall)
	}
}

func TestTransferTime(t *testing.T) {
	d := testDevice()
	if d.TransferTime(0) != 0 {
		t.Error("zero bytes should take zero time")
	}
	t1 := d.TransferTime(1 << 20)
	t2 := d.TransferTime(2 << 20)
	if t2 <= t1 {
		t.Error("transfer time not monotone in size")
	}
}

func TestInstrClassString(t *testing.T) {
	if IInt.String() != "int" || ILdGlobal.String() != "ld.global" {
		t.Error("class names wrong")
	}
	if InstrClass(99).String() != "unknown" {
		t.Error("out-of-range class should be unknown")
	}
}

func BenchmarkLaunchHashProbe(b *testing.B) {
	d := testDevice()
	p, _ := d.Malloc(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Launch(KernelConfig{Name: "probe", Warps: 64}, func(w *Warp) {
			var addrs Vec
			for l := 0; l < WarpSize; l++ {
				addrs[l] = uint64(p) + uint64((w.ID*131+l*37)%(1<<20-8))
			}
			for step := 0; step < 16; step++ {
				v := w.LoadGlobal(FullMask, &addrs, 8)
				for l := 0; l < WarpSize; l++ {
					addrs[l] = uint64(p) + (v[l]*2654435761+uint64(l))%(1<<20-8)
				}
				w.Exec(IInt, FullMask)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
