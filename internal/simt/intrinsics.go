package simt

// Additional warp intrinsics beyond the set the local-assembly kernels
// need: shuffle variants, warp-wide reductions and scans, and a per-block
// shared-memory space. They complete the substrate for the "other modules"
// the paper's conclusion plans to offload (k-mer analysis, alignment),
// which lean on reductions and shared memory.

// ShflUp shifts values down the lane order: lane i receives the value of
// lane i−delta (__shfl_up_sync). Lanes below delta keep their own value.
func (w *Warp) ShflUp(mask Mask, vals *Vec, delta int) Vec {
	w.ExecN(IShfl, mask, 1)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		src := lane - delta
		if src >= 0 {
			out[lane] = vals[src]
		} else {
			out[lane] = vals[lane]
		}
	}
	return out
}

// ShflDown is the mirror of ShflUp: lane i receives lane i+delta's value
// (__shfl_down_sync).
func (w *Warp) ShflDown(mask Mask, vals *Vec, delta int) Vec {
	w.ExecN(IShfl, mask, 1)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		src := lane + delta
		if src < WarpSize {
			out[lane] = vals[src]
		} else {
			out[lane] = vals[lane]
		}
	}
	return out
}

// ShflXor exchanges values between lanes whose indices differ by the XOR
// mask (__shfl_xor_sync), the butterfly primitive behind warp reductions.
func (w *Warp) ShflXor(mask Mask, vals *Vec, laneMask int) Vec {
	w.ExecN(IShfl, mask, 1)
	var out Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			out[lane] = vals[lane^laneMask]
		}
	}
	return out
}

// ReduceAdd performs the canonical 5-step butterfly sum reduction and
// returns the warp-wide sum of the active lanes' values in every active
// lane. It executes (and costs) the same shuffle/add sequence a CUDA warp
// reduction does.
func (w *Warp) ReduceAdd(mask Mask, vals *Vec) uint64 {
	cur := *vals
	// Inactive lanes contribute zero.
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			cur[lane] = 0
		}
	}
	for delta := WarpSize / 2; delta > 0; delta /= 2 {
		other := w.ShflXor(FullMask, &cur, delta)
		w.Exec(IInt, FullMask)
		for lane := 0; lane < WarpSize; lane++ {
			cur[lane] += other[lane]
		}
	}
	return cur[0]
}

// ReduceMax returns the warp-wide maximum of the active lanes' values via
// the same butterfly.
func (w *Warp) ReduceMax(mask Mask, vals *Vec) uint64 {
	cur := *vals
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			cur[lane] = 0
		}
	}
	for delta := WarpSize / 2; delta > 0; delta /= 2 {
		other := w.ShflXor(FullMask, &cur, delta)
		w.Exec(IInt, FullMask)
		for lane := 0; lane < WarpSize; lane++ {
			if other[lane] > cur[lane] {
				cur[lane] = other[lane]
			}
		}
	}
	return cur[0]
}

// ScanAdd computes the inclusive prefix sum across active lanes (lower
// lanes first), the Kogge-Stone warp scan: lane i receives the sum of
// active lanes 0..i. Inactive lanes receive 0.
func (w *Warp) ScanAdd(mask Mask, vals *Vec) Vec {
	var cur Vec
	for lane := 0; lane < WarpSize; lane++ {
		if mask.Has(lane) {
			cur[lane] = vals[lane]
		}
	}
	for delta := 1; delta < WarpSize; delta *= 2 {
		shifted := w.ShflUp(FullMask, &cur, delta)
		w.Exec(IInt, FullMask)
		for lane := WarpSize - 1; lane >= 0; lane-- {
			if lane >= delta {
				cur[lane] += shifted[lane]
			}
		}
	}
	for lane := 0; lane < WarpSize; lane++ {
		if !mask.Has(lane) {
			cur[lane] = 0
		}
	}
	return cur
}
