// Package simt is a functional + analytic simulator of a CUDA-class GPU,
// built so the paper's warp-level local-assembly kernels can be implemented,
// verified, and performance-analyzed in pure Go (DESIGN.md §2).
//
// The functional half executes kernels written in warp-synchronous style:
// a kernel is a Go function invoked once per warp, operating on 32-lane
// vectors under explicit active-lane masks, with the warp intrinsics the
// paper relies on (shuffle broadcast, ballot, match_any, atomic CAS).
// Because lanes of a warp are stepped deterministically, a kernel's output
// is bit-reproducible and can be compared against the CPU reference.
//
// The analytic half counts what NSight would count on real hardware — warp
// instructions by class, per-lane (thread) instructions, predicated-off
// lane slots, and memory transactions derived from a 32-byte-sector
// coalescing analysis — and converts them to kernel time with a
// latency/bandwidth/issue-rate model parameterized for a V100. Those are
// exactly the observables behind the paper's instruction-roofline analysis
// (Figs 8–10) and kernel timings.
package simt

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// WarpSize is the number of lanes per warp, as on all CUDA hardware.
const WarpSize = 32

// Ptr is a device global-memory address (byte offset into the arena).
type Ptr uint64

// DeviceConfig describes the modeled GPU hardware.
type DeviceConfig struct {
	Name            string
	SMs             int     // streaming multiprocessors
	SchedulersPerSM int     // warp schedulers per SM (issue slots per cycle)
	MaxWarpsPerSM   int     // resident-warp capacity per SM
	ClockGHz        float64 // core clock
	GlobalMemBytes  int64   // device memory capacity (logical limit)
	MemBWGBps       float64 // HBM bandwidth, GB/s
	SectorBytes     int     // memory transaction granularity
	GlobalLatency   int     // cycles for a global access round-trip
	LocalLatency    int     // cycles for a local (L1-resident) access
	// MemParallelism is the memory-level parallelism per warp: how many
	// outstanding memory requests the scoreboard overlaps, which divides
	// the effective per-access latency on the dependent chain.
	MemParallelism int
	// KernelLaunchOverhead is the host-side cost per kernel launch.
	KernelLaunchOverhead time.Duration
	// PCIeGBps is the host<->device copy bandwidth, GB/s.
	PCIeGBps float64
}

// V100 returns the configuration of one NVIDIA V100-SXM2-16GB, the GPU in
// both Summit nodes and the Cori GPU partition used by the paper. The
// theoretical warp-instruction peak, SMs × schedulers × clock =
// 80·4·1.53 ≈ 489.6 warp GIPS, matches the roofline ceiling in Figs 8–9.
func V100() DeviceConfig {
	return DeviceConfig{
		Name:                 "V100-SXM2-16GB",
		SMs:                  80,
		SchedulersPerSM:      4,
		MaxWarpsPerSM:        64,
		ClockGHz:             1.53,
		GlobalMemBytes:       16 << 30,
		MemBWGBps:            900,
		SectorBytes:          32,
		GlobalLatency:        440,
		LocalLatency:         28,
		MemParallelism:       8,
		KernelLaunchOverhead: 10 * time.Microsecond,
		PCIeGBps:             12,
	}
}

// A100 returns the configuration of an NVIDIA A100-SXM4-40GB, the successor
// generation to the paper's V100 — useful for what-if roofline analysis of
// the same kernels on newer hardware (peak 108·4·1.41 ≈ 609 warp GIPS,
// 1.7× the HBM bandwidth).
func A100() DeviceConfig {
	return DeviceConfig{
		Name:                 "A100-SXM4-40GB",
		SMs:                  108,
		SchedulersPerSM:      4,
		MaxWarpsPerSM:        64,
		ClockGHz:             1.41,
		GlobalMemBytes:       40 << 30,
		MemBWGBps:            1555,
		SectorBytes:          32,
		GlobalLatency:        400,
		LocalLatency:         28,
		MemParallelism:       10,
		KernelLaunchOverhead: 10 * time.Microsecond,
		PCIeGBps:             25,
	}
}

// PeakWarpGIPS is the theoretical warp-instruction issue peak in billions
// of warp instructions per second.
func (c DeviceConfig) PeakWarpGIPS() float64 {
	return float64(c.SMs) * float64(c.SchedulersPerSM) * c.ClockGHz
}

// memSpan is a [off, end) extent of the device arena on the free list.
type memSpan struct {
	off, end Ptr
}

// Device is one simulated GPU: a global-memory arena plus transfer
// accounting. Kernels run on it via Launch.
//
// Allocation (Malloc/AllocRegion/FreeAll) and the copy engines
// (MemcpyHtoD/MemcpyDtoH, streams) are safe for concurrent use, so a
// pipelined driver may keep several batches in flight. Kernel memory
// operations are deliberately lock-free; callers that overlap kernel
// execution with allocation must Prealloc the arena first so the backing
// store never reallocates mid-flight.
type Device struct {
	Cfg DeviceConfig

	mu        sync.Mutex
	mem       []byte
	heapOff   Ptr
	highWater Ptr       // largest heap extent ever reached
	frees     []memSpan // released regions, sorted by offset, coalesced

	// Host<->device traffic on the default stream since the last Traffic
	// call, for driver-level PCIe accounting.
	bytesH2D int64
	bytesD2H int64
	// Lifetime totals across the default stream and every explicit Stream,
	// never reset — the per-device PCIe odometer a multi-rank runtime
	// reads for its per-rank traffic report.
	totalH2D int64
	totalD2H int64

	// Persistent warp worker pool (see launch.go).
	poolOnce  sync.Once
	closeOnce sync.Once
	pool      chan warpJob

	// Launch-state and sequential warp-context pools: steady-state kernel
	// launches reuse these instead of allocating (see launch.go).
	lsPool  sync.Pool
	ctxPool sync.Pool

	// fault, once injected, fails every subsequent Launch — the modeled
	// equivalent of a device falling off the bus or exhausting memory
	// mid-run. Guarded by mu: the pipelined driver launches from two side
	// goroutines.
	fault error
}

// InjectFault marks the device as lost: every subsequent Launch returns the
// given error (ErrDeviceLost when nil). Sticky until ClearFault.
func (d *Device) InjectFault(err error) {
	if err == nil {
		err = ErrDeviceLost
	}
	d.mu.Lock()
	d.fault = err
	d.mu.Unlock()
}

// ClearFault restores a faulted device (tests and recovery drills).
func (d *Device) ClearFault() {
	d.mu.Lock()
	d.fault = nil
	d.mu.Unlock()
}

// faultErr returns the injected fault, if any.
func (d *Device) faultErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fault
}

// NewDevice creates a device with an empty arena.
func NewDevice(cfg DeviceConfig) *Device {
	return &Device{Cfg: cfg}
}

// ensureLocked grows the backing arena to cover [0, end). Growth is
// amortized (doubling) and jumps straight to the high-water mark when one
// was recorded, so a Prealloc'ed or previously-seen footprint costs at most
// one copy-grow instead of the repeated 1.25× grows of the naive policy.
// Callers hold d.mu.
func (d *Device) ensureLocked(end Ptr) {
	if end > d.highWater {
		d.highWater = end
	}
	need := int64(end) + 1024 // slack for 8-byte gather over-reads
	if need <= int64(len(d.mem)) {
		return
	}
	target := 2 * int64(len(d.mem))
	if hw := int64(d.highWater) + 1024; target < hw {
		target = hw
	}
	if maxArena := d.Cfg.GlobalMemBytes + 1024; target > maxArena {
		target = maxArena
	}
	if target < need {
		target = need
	}
	grown := make([]byte, target)
	copy(grown, d.mem)
	d.mem = grown
}

// Prealloc grows the backing arena once to hold n bytes. Drivers call it
// with their planned high-water footprint before overlapping kernel
// execution with allocation: afterwards AllocRegion/Malloc within that
// footprint never reallocate the arena, so in-flight kernels and copies
// stay valid.
func (d *Device) Prealloc(n int64) error {
	if n < 0 || n > d.Cfg.GlobalMemBytes {
		return fmt.Errorf("simt: prealloc of %d bytes outside device capacity %d", n, d.Cfg.GlobalMemBytes)
	}
	d.mu.Lock()
	d.ensureLocked(Ptr(n))
	d.mu.Unlock()
	return nil
}

// Malloc bump-allocates n bytes of device memory, 64-byte aligned, growing
// the backing arena as needed. It fails when the logical device capacity
// would be exceeded — the condition the paper's batch planner exists to
// avoid (§3.2). Safe for concurrent use.
func (d *Device) Malloc(n int64) (Ptr, error) {
	if n < 0 {
		return 0, fmt.Errorf("simt: negative allocation %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	aligned := (d.heapOff + 63) &^ 63
	end := aligned + Ptr(n)
	if int64(end) > d.Cfg.GlobalMemBytes {
		return 0, fmt.Errorf("simt: out of device memory: want %d bytes at offset %d, capacity %d",
			n, aligned, d.Cfg.GlobalMemBytes)
	}
	d.ensureLocked(end)
	d.heapOff = end
	return aligned, nil
}

// Region is one freeable device allocation from AllocRegion — the flat
// per-batch footprint of the paper's driver (§3.2), with CUDA-style
// cudaMalloc/cudaFree lifetime so several batches can be resident at once.
type Region struct {
	Base Ptr
	Size int64
	dev  *Device
	span memSpan // rounded extent actually reserved
}

// AllocRegion allocates n bytes (64-byte aligned) that can be returned
// individually with Region.Free, unlike the bump-only Malloc. Freed regions
// are reused first-fit, so a pipelined driver cycling same-shaped batches
// settles into a fixed footprint. Safe for concurrent use.
func (d *Device) AllocRegion(n int64) (Region, error) {
	if n < 0 {
		return Region{}, fmt.Errorf("simt: negative allocation %d", n)
	}
	size := (Ptr(n) + 63) &^ 63
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.frees {
		s := d.frees[i]
		if s.end-s.off >= size {
			if s.off+size == s.end {
				d.frees = append(d.frees[:i], d.frees[i+1:]...)
			} else {
				d.frees[i].off += size
			}
			return Region{Base: s.off, Size: n, dev: d, span: memSpan{s.off, s.off + size}}, nil
		}
	}
	aligned := (d.heapOff + 63) &^ 63
	end := aligned + size
	if int64(end) > d.Cfg.GlobalMemBytes {
		return Region{}, fmt.Errorf("simt: out of device memory: want %d bytes at offset %d, capacity %d",
			n, aligned, d.Cfg.GlobalMemBytes)
	}
	d.ensureLocked(end)
	d.heapOff = end
	return Region{Base: aligned, Size: n, dev: d, span: memSpan{aligned, end}}, nil
}

// Free returns the region to the device. Adjacent free spans coalesce, and
// free space at the top of the heap rewinds the bump pointer.
func (r Region) Free() {
	if r.dev == nil || r.span.end == r.span.off {
		return
	}
	d := r.dev
	d.mu.Lock()
	defer d.mu.Unlock()
	// Insert sorted by offset, merging with neighbors.
	i := 0
	for i < len(d.frees) && d.frees[i].off < r.span.off {
		i++
	}
	d.frees = append(d.frees, memSpan{})
	copy(d.frees[i+1:], d.frees[i:])
	d.frees[i] = r.span
	if i+1 < len(d.frees) && d.frees[i].end == d.frees[i+1].off {
		d.frees[i].end = d.frees[i+1].end
		d.frees = append(d.frees[:i+1], d.frees[i+2:]...)
	}
	if i > 0 && d.frees[i-1].end == d.frees[i].off {
		d.frees[i-1].end = d.frees[i].end
		d.frees = append(d.frees[:i], d.frees[i+1:]...)
	}
	for len(d.frees) > 0 && d.frees[len(d.frees)-1].end == d.heapOff {
		d.heapOff = d.frees[len(d.frees)-1].off
		d.frees = d.frees[:len(d.frees)-1]
	}
}

// FreeAll resets the allocator (a bump allocator has no partial free; the
// local-assembly driver reuses one big allocation exactly as the CUDA code
// does). The backing arena is kept, so re-running a same-sized workload
// never pays the copy-grow again.
func (d *Device) FreeAll() {
	d.mu.Lock()
	d.heapOff = 0
	d.frees = nil
	d.mu.Unlock()
}

// InUse returns the bytes currently allocated.
func (d *Device) InUse() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	used := int64(d.heapOff)
	for _, s := range d.frees {
		used -= int64(s.end - s.off)
	}
	return used
}

// copyHtoD/copyDtoH are the shared copy engines behind the device-level and
// per-stream memcpys. The lock orders copies against arena growth; element
// ranges of concurrent copies and kernels are disjoint by construction
// (each batch owns its region).
func (d *Device) copyHtoD(dst Ptr, src []byte) {
	d.mu.Lock()
	copy(d.mem[dst:int(dst)+len(src)], src)
	d.totalH2D += int64(len(src))
	d.mu.Unlock()
}

func (d *Device) copyDtoH(dst []byte, src Ptr) {
	d.mu.Lock()
	copy(dst, d.mem[src:int(src)+len(dst)])
	d.totalD2H += int64(len(dst))
	d.mu.Unlock()
}

// MemcpyHtoD copies host bytes to device memory, accounting PCIe traffic
// on the default stream.
func (d *Device) MemcpyHtoD(dst Ptr, src []byte) {
	d.mu.Lock()
	copy(d.mem[dst:int(dst)+len(src)], src)
	d.bytesH2D += int64(len(src))
	d.totalH2D += int64(len(src))
	d.mu.Unlock()
}

// MemcpyDtoH copies device bytes back to the host, accounting PCIe traffic
// on the default stream.
func (d *Device) MemcpyDtoH(dst []byte, src Ptr) {
	d.mu.Lock()
	copy(dst, d.mem[src:int(src)+len(dst)])
	d.bytesD2H += int64(len(dst))
	d.totalD2H += int64(len(dst))
	d.mu.Unlock()
}

// CumTraffic returns the device's lifetime host<->device byte totals,
// including traffic issued on explicit Streams. Unlike Traffic, it never
// resets — callers diff successive readings for interval accounting.
func (d *Device) CumTraffic() (h2d, d2h int64) {
	d.mu.Lock()
	h2d, d2h = d.totalH2D, d.totalD2H
	d.mu.Unlock()
	return h2d, d2h
}

// Traffic returns and clears the default stream's host<->device byte
// counters. Copies issued on explicit Streams are accounted there instead.
func (d *Device) Traffic() (h2d, d2h int64) {
	d.mu.Lock()
	h2d, d2h = d.bytesH2D, d.bytesD2H
	d.bytesH2D, d.bytesD2H = 0, 0
	d.mu.Unlock()
	return h2d, d2h
}

// TransferTime converts a transfer size to PCIe copy time.
func (d *Device) TransferTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	sec := float64(bytes) / (d.Cfg.PCIeGBps * 1e9)
	return time.Duration(sec * float64(time.Second))
}

// Host-side (uncounted) accessors, used to stage inputs and read results.
// Kernel code must go through Warp memory operations instead, so the
// transaction counters see every device access.

func (d *Device) WriteBytes(p Ptr, b []byte)    { copy(d.mem[p:int(p)+len(b)], b) }
func (d *Device) ReadBytes(p Ptr, n int) []byte { return append([]byte(nil), d.mem[p:int(p)+n]...) }
func (d *Device) WriteU32(p Ptr, v uint32)      { binary.LittleEndian.PutUint32(d.mem[p:], v) }
func (d *Device) ReadU32(p Ptr) uint32          { return binary.LittleEndian.Uint32(d.mem[p:]) }
func (d *Device) WriteU64(p Ptr, v uint64)      { binary.LittleEndian.PutUint64(d.mem[p:], v) }
func (d *Device) ReadU64(p Ptr) uint64          { return binary.LittleEndian.Uint64(d.mem[p:]) }

// load/store implement sized little-endian access for warp memory ops.
func (d *Device) load(p Ptr, size int) uint64 {
	switch size {
	case 1:
		return uint64(d.mem[p])
	case 2:
		return uint64(binary.LittleEndian.Uint16(d.mem[p:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(d.mem[p:]))
	case 8:
		return binary.LittleEndian.Uint64(d.mem[p:])
	}
	panic(fmt.Sprintf("simt: unsupported access size %d", size))
}

func (d *Device) store(p Ptr, size int, v uint64) {
	switch size {
	case 1:
		d.mem[p] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(d.mem[p:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(d.mem[p:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(d.mem[p:], v)
	default:
		panic(fmt.Sprintf("simt: unsupported access size %d", size))
	}
}
