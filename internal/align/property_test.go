package align

import (
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
)

// Property tests on the banded SW kernel — the invariants the pipeline and
// the GPU kernel equivalence rely on.

func TestSWScoreNonNegativeAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sc := DefaultScoring()
	for trial := 0; trial < 100; trial++ {
		q := randSeq(rng, 1+rng.Intn(120))
		tg := randSeq(rng, 1+rng.Intn(200))
		shift := rng.Intn(200) - 100
		band := 1 + rng.Intn(12)
		r := BandedSW(q, tg, shift, band, sc)
		if r.Score < 0 {
			t.Fatalf("negative score %d", r.Score)
		}
		maxPossible := len(q) * sc.Match
		if r.Score > maxPossible {
			t.Fatalf("score %d exceeds %d", r.Score, maxPossible)
		}
		// Spans are consistent half-open ranges within bounds.
		if r.Score > 0 {
			if r.QStart < 0 || r.QEnd > len(q) || r.QStart >= r.QEnd ||
				r.TStart < 0 || r.TEnd > len(tg) || r.TStart >= r.TEnd {
				t.Fatalf("bad spans %d..%d / %d..%d", r.QStart, r.QEnd, r.TStart, r.TEnd)
			}
		}
	}
}

func TestSWSymmetricUnderExactMatch(t *testing.T) {
	// Score of a sequence against itself at shift 0 is its full length.
	rng := rand.New(rand.NewSource(42))
	sc := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		s := randSeq(rng, 5+rng.Intn(150))
		r := BandedSW(s, s, 0, 4, sc)
		if r.Score != len(s) {
			t.Fatalf("self-alignment score %d, want %d", r.Score, len(s))
		}
	}
}

func TestSWWiderBandNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sc := DefaultScoring()
	for trial := 0; trial < 60; trial++ {
		tg := randSeq(rng, 150)
		q := append([]byte(nil), tg[20:100]...)
		// A couple of indels push the path off the main diagonal.
		if len(q) > 40 {
			q = append(q[:30], q[32:]...)
		}
		shift := 20
		prev := -1
		for _, band := range []int{1, 2, 4, 8, 16} {
			r := BandedSW(q, tg, shift, band, sc)
			if r.Score < prev {
				t.Fatalf("band %d score %d below narrower band's %d", band, r.Score, prev)
			}
			prev = r.Score
		}
	}
}

func TestSWRevCompSymmetry(t *testing.T) {
	// Aligning rc(q) against rc(t) with the mirrored shift gives the same
	// score.
	rng := rand.New(rand.NewSource(44))
	sc := DefaultScoring()
	for trial := 0; trial < 50; trial++ {
		tg := randSeq(rng, 120)
		q := append([]byte(nil), tg[30:90]...)
		for p := 0; p < 3; p++ {
			i := rng.Intn(len(q))
			c, _ := dna.Code(q[i])
			q[i] = dna.Alphabet[(c+1)&3]
		}
		band := 6
		fwd := BandedSW(q, tg, 30, band, sc)
		rev := BandedSW(dna.RevComp(q), dna.RevComp(tg), len(tg)-len(q)-30, band, sc)
		if fwd.Score != rev.Score {
			t.Fatalf("rc symmetry broken: %d vs %d", fwd.Score, rev.Score)
		}
	}
}
