package align

import (
	"fmt"
	"sync/atomic"
	"time"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/kmer"
)

// Config controls the seed-and-extend aligner.
type Config struct {
	SeedLen int // seed k-mer length
	// SeedStride samples read seeds every this many bases (≤ 0: SeedLen).
	SeedStride int
	Band       int // SW band half-width
	Scoring    Scoring
	// MinScoreFrac accepts alignments scoring at least this fraction of
	// the *aligned* length, so reads overhanging a contig end (soft
	// clipped) still qualify.
	MinScoreFrac float64
	// MinAlignLen is the minimum aligned length to accept.
	MinAlignLen int
	// MaxSeedHits skips pathologically repetitive seeds.
	MaxSeedHits int
}

// DefaultConfig returns aligner settings for 100–150 bp reads.
func DefaultConfig() Config {
	return Config{
		SeedLen:      17,
		SeedStride:   0,
		Band:         8,
		Scoring:      DefaultScoring(),
		MinScoreFrac: 0.7,
		MinAlignLen:  30,
		MaxSeedHits:  64,
	}
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.SeedLen < 8 || c.SeedLen > 32 {
		return fmt.Errorf("align: seed length %d outside [8,32]", c.SeedLen)
	}
	if c.Band < 1 {
		return fmt.Errorf("align: band %d < 1", c.Band)
	}
	if c.MinScoreFrac <= 0 || c.MinScoreFrac > 1 {
		return fmt.Errorf("align: MinScoreFrac %g outside (0,1]", c.MinScoreFrac)
	}
	if c.MinAlignLen < 10 {
		return fmt.Errorf("align: MinAlignLen %d < 10", c.MinAlignLen)
	}
	return c.Scoring.Validate()
}

// Hit is one read-to-contig alignment.
type Hit struct {
	CtgID int
	Score int
	// Contig span [CtgStart, CtgEnd).
	CtgStart, CtgEnd int
	// Read span [ReadStart, ReadEnd) on the read as aligned (after RC when
	// RC is set).
	ReadStart, ReadEnd int
	// RC reports that the read aligned in reverse-complement orientation.
	RC bool
}

type seedLoc struct {
	ctg int32
	pos int32
}

// Aligner is a seed index over a set of contigs.
type Aligner struct {
	cfg   Config
	ctgs  [][]byte
	seeds map[uint64][]seedLoc
	// cells counts SW DP cells computed since construction — the measure
	// of "aln kernel" work for the stage breakdown. swTimeNS accumulates
	// wall nanoseconds inside BandedSW — the "aln kernel" slice of the
	// Fig 2 breakdown. Both are updated atomically so AlignRead may be
	// called from many goroutines.
	cells    atomic.Int64
	swTimeNS atomic.Int64
}

// Cells returns the DP cells computed so far.
func (a *Aligner) Cells() int64 { return a.cells.Load() }

// KernelTime returns the accumulated time inside BandedSW.
func (a *Aligner) KernelTime() time.Duration { return time.Duration(a.swTimeNS.Load()) }

// New indexes the contigs.
func New(ctgs [][]byte, cfg Config) (*Aligner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Aligner{cfg: cfg, ctgs: ctgs, seeds: make(map[uint64][]seedLoc)}
	for ci, ctg := range ctgs {
		kmer.ForEach(ctg, cfg.SeedLen, func(pos int, km kmer.Kmer) {
			h := km.Hash(0)
			a.seeds[h] = append(a.seeds[h], seedLoc{ctg: int32(ci), pos: int32(pos)})
		})
	}
	return a, nil
}

// NumContigs returns the number of indexed contigs.
func (a *Aligner) NumContigs() int { return len(a.ctgs) }

// Contig returns an indexed contig's sequence.
func (a *Aligner) Contig(id int) []byte { return a.ctgs[id] }

// SeedTask is one banded-SW verification requested by the seeding phase:
// align the (already oriented) read against contig CtgID around diagonal
// Shift. The verification can run on the CPU (VerifyHit) or in bulk on the
// GPU "aln kernel" (internal/gpualign), exactly MetaHipMer's split of
// CPU-side seeding and ADEPT device scoring.
type SeedTask struct {
	CtgID int
	Shift int
	RC    bool
}

// SeedOriented finds the most-voted (contig, diagonal) pair for one
// orientation of a read. ok is false when no seed matches.
func (a *Aligner) SeedOriented(seq []byte, isRC bool) (SeedTask, bool) {
	stride := a.cfg.SeedStride
	if stride <= 0 {
		stride = a.cfg.SeedLen
	}
	type diag struct {
		ctg   int32
		shift int32
	}
	votes := map[diag]int{}
	kmer.ForEach(seq, a.cfg.SeedLen, func(pos int, km kmer.Kmer) {
		if pos%stride != 0 {
			return
		}
		locs := a.seeds[km.Hash(0)]
		if len(locs) == 0 || len(locs) > a.cfg.MaxSeedHits {
			return
		}
		for _, l := range locs {
			votes[diag{ctg: l.ctg, shift: l.pos - int32(pos)}]++
		}
	})
	if len(votes) == 0 {
		return SeedTask{}, false
	}
	var bestD diag
	bestV := -1
	for d, v := range votes {
		if v > bestV || (v == bestV && (d.ctg < bestD.ctg || (d.ctg == bestD.ctg && d.shift < bestD.shift))) {
			bestD, bestV = d, v
		}
	}
	return SeedTask{CtgID: int(bestD.ctg), Shift: int(bestD.shift), RC: isRC}, true
}

// AcceptSW applies the acceptance thresholds to a completed banded-SW
// result (from either the CPU or the GPU kernel) and converts it to a Hit.
func (a *Aligner) AcceptSW(res SWResult, task SeedTask) (Hit, bool) {
	alignedLen := res.QEnd - res.QStart
	if alignedLen < a.cfg.MinAlignLen || res.Score < int(a.cfg.MinScoreFrac*float64(alignedLen)) {
		return Hit{}, false
	}
	return Hit{
		CtgID:     task.CtgID,
		Score:     res.Score,
		CtgStart:  res.TStart,
		CtgEnd:    res.TEnd,
		ReadStart: res.QStart,
		ReadEnd:   res.QEnd,
		RC:        task.RC,
	}, true
}

// VerifyHit completes a seed task on the CPU.
func (a *Aligner) VerifyHit(seq []byte, task SeedTask) (Hit, bool) {
	swStart := time.Now()
	res := BandedSW(seq, a.ctgs[task.CtgID], task.Shift, a.cfg.Band, a.cfg.Scoring)
	a.swTimeNS.Add(int64(time.Since(swStart)))
	a.cells.Add(res.Cells)
	return a.AcceptSW(res, task)
}

// Band returns the configured band half-width (the GPU kernel needs it).
func (a *Aligner) Band() int { return a.cfg.Band }

// ScoringParams returns the configured scoring.
func (a *Aligner) ScoringParams() Scoring { return a.cfg.Scoring }

// AlignRead finds the best alignment of the read (either orientation)
// against the indexed contigs. ok is false when nothing reaches the score
// threshold.
func (a *Aligner) AlignRead(seq []byte) (Hit, bool) {
	fwd, okF := a.alignOriented(seq, false)
	rc, okR := a.alignOriented(dna.RevComp(seq), true)
	switch {
	case okF && (!okR || fwd.Score >= rc.Score):
		return fwd, true
	case okR:
		return rc, true
	}
	return Hit{}, false
}

// alignOriented seeds and verifies one orientation.
func (a *Aligner) alignOriented(seq []byte, isRC bool) (Hit, bool) {
	task, ok := a.SeedOriented(seq, isRC)
	if !ok {
		return Hit{}, false
	}
	return a.VerifyHit(seq, task)
}

// EndCandidate classifies a hit for local assembly: does the aligned read
// qualify as a candidate for the contig's left or right end? A candidate
// must reach the end zone AND project past the contig end — reads wholly
// interior to the contig carry no extension evidence ("reads that align to
// the ends of contigs are then used for extending", §2.2). A read can
// qualify for both ends of a short contig.
func (a *Aligner) EndCandidate(h Hit, readLen, endZone int) (left, right bool) {
	ctgLen := len(a.ctgs[h.CtgID])
	// Right end: alignment approaches the right end and the read's
	// unaligned tail projects beyond it.
	overhangR := (readLen - h.ReadEnd) - (ctgLen - h.CtgEnd)
	if ctgLen-h.CtgEnd < endZone && overhangR > 0 {
		right = true
	}
	overhangL := h.ReadStart - h.CtgStart
	if h.CtgStart < endZone && overhangL > 0 {
		left = true
	}
	return left, right
}
