// Package align implements the pipeline's alignment stage: a seed index
// over contigs plus banded Smith-Waterman verification (the role ADEPT's
// GPU kernel plays in MetaHipMer), used to find the candidate reads that
// local assembly extends contigs with, and to anchor read pairs for
// scaffolding.
package align

import "fmt"

// Scoring holds the Smith-Waterman parameters.
type Scoring struct {
	Match    int // > 0
	Mismatch int // < 0
	Gap      int // < 0, linear gap penalty
}

// DefaultScoring mirrors the simple scoring MetaHipMer's aligner uses.
func DefaultScoring() Scoring { return Scoring{Match: 1, Mismatch: -1, Gap: -1} }

// SWResult is a local alignment between a query and a target window.
type SWResult struct {
	Score int
	// Query/Target spans are half-open [start, end).
	QStart, QEnd int
	TStart, TEnd int
	// Cells is the number of DP cells computed (the "aln kernel" work).
	Cells int64
}

// BandedSW computes a banded local (Smith-Waterman) alignment between query
// and target, restricting DP cells to |j − i − shift| ≤ band, where shift
// aligns the expected diagonal. It returns the best-scoring local
// alignment with its spans, recovered without a traceback matrix by
// propagating each cell's local start.
func BandedSW(query, target []byte, shift, band int, sc Scoring) SWResult {
	if band < 1 {
		band = 1
	}
	width := 2*band + 1

	type cell struct {
		score  int
		qs, ts int // local start of the alignment ending here
	}
	prev := make([]cell, width)
	cur := make([]cell, width)

	best := SWResult{}
	var cells int64

	for i := 0; i < len(query); i++ {
		for w := 0; w < width; w++ {
			cur[w] = cell{}
		}
		for w := 0; w < width; w++ {
			j := i + shift + (w - band)
			if j < 0 || j >= len(target) {
				continue
			}
			cells++

			// Diagonal predecessor sits at the same w in the previous row.
			var diag cell
			if i > 0 {
				diag = prev[w]
			}
			s := sc.Mismatch
			if query[i] == target[j] {
				s = sc.Match
			}
			bestScore := diag.score + s
			qs, ts := diag.qs, diag.ts
			if diag.score == 0 {
				qs, ts = i, j
			}

			// Up (gap in target): previous row, w+1.
			if i > 0 && w+1 < width {
				if v := prev[w+1].score + sc.Gap; v > bestScore {
					bestScore, qs, ts = v, prev[w+1].qs, prev[w+1].ts
				}
			}
			// Left (gap in query): same row, w-1.
			if w-1 >= 0 {
				if v := cur[w-1].score + sc.Gap; v > bestScore {
					bestScore, qs, ts = v, cur[w-1].qs, cur[w-1].ts
				}
			}
			if bestScore < 0 {
				bestScore, qs, ts = 0, i, j
			}
			cur[w] = cell{score: bestScore, qs: qs, ts: ts}

			if bestScore > best.Score {
				best = SWResult{
					Score:  bestScore,
					QStart: qs, QEnd: i + 1,
					TStart: ts, TEnd: j + 1,
				}
			}
		}
		prev, cur = cur, prev
	}
	best.Cells = cells
	return best
}

// Validate checks scoring sanity.
func (s Scoring) Validate() error {
	if s.Match <= 0 || s.Mismatch >= 0 || s.Gap >= 0 {
		return fmt.Errorf("align: scoring must have match>0, mismatch<0, gap<0")
	}
	return nil
}
