package align

import (
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
)

func randSeq(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = dna.Alphabet[rng.Intn(4)]
	}
	return s
}

func TestBandedSWExactMatch(t *testing.T) {
	q := []byte("ACGTACGTAC")
	res := BandedSW(q, q, 0, 4, DefaultScoring())
	if res.Score != len(q) {
		t.Errorf("score %d, want %d", res.Score, len(q))
	}
	if res.QStart != 0 || res.QEnd != len(q) || res.TStart != 0 || res.TEnd != len(q) {
		t.Errorf("span %d..%d / %d..%d", res.QStart, res.QEnd, res.TStart, res.TEnd)
	}
	if res.Cells == 0 {
		t.Error("no DP cells counted")
	}
}

func TestBandedSWSubstring(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	target := randSeq(rng, 200)
	q := target[60:110]
	res := BandedSW(q, target, 60, 6, DefaultScoring())
	if res.Score != len(q) {
		t.Errorf("score %d, want %d", res.Score, len(q))
	}
	if res.TStart != 60 || res.TEnd != 110 {
		t.Errorf("target span %d..%d, want 60..110", res.TStart, res.TEnd)
	}
}

func TestBandedSWMismatchesLowerScore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	target := randSeq(rng, 100)
	q := append([]byte(nil), target[20:70]...)
	q[10] = q[10]%4 + 'A' // likely corrupt one base
	q[10] = dna.Alphabet[(func() int {
		c, _ := dna.Code(target[30])
		return (int(c) + 1) % 4
	})()]
	res := BandedSW(q, target, 20, 5, DefaultScoring())
	if res.Score >= len(q) {
		t.Errorf("score %d not reduced by mismatch", res.Score)
	}
	if res.Score < len(q)-4 {
		t.Errorf("score %d too low for a single mismatch", res.Score)
	}
}

func TestBandedSWIndel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	target := randSeq(rng, 120)
	// Query = target slice with one base deleted.
	q := append([]byte(nil), target[10:40]...)
	q = append(q, target[41:70]...)
	res := BandedSW(q, target, 10, 5, DefaultScoring())
	want := len(q) - 3 // one gap: -1 penalty versus +1 missed match, roughly
	if res.Score < want-2 {
		t.Errorf("score %d too low for single deletion (want ≈%d)", res.Score, want)
	}
}

func TestBandedSWShiftOutOfBand(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := randSeq(rng, 150)
	q := target[50:90]
	// Wildly wrong shift: the true diagonal is outside the band, so the
	// score must stay far below a full match.
	res := BandedSW(q, target, 0, 4, DefaultScoring())
	if res.Score >= len(q)*3/4 {
		t.Errorf("out-of-band alignment scored %d", res.Score)
	}
}

func TestBandedSWEmpty(t *testing.T) {
	res := BandedSW(nil, []byte("ACGT"), 0, 4, DefaultScoring())
	if res.Score != 0 {
		t.Error("empty query should score 0")
	}
	res = BandedSW([]byte("ACGT"), nil, 0, 4, DefaultScoring())
	if res.Score != 0 {
		t.Error("empty target should score 0")
	}
}

func TestScoringValidate(t *testing.T) {
	if (Scoring{Match: 0, Mismatch: -1, Gap: -1}).Validate() == nil {
		t.Error("match=0 accepted")
	}
	if (Scoring{Match: 1, Mismatch: 1, Gap: -1}).Validate() == nil {
		t.Error("mismatch>0 accepted")
	}
	if (Scoring{Match: 1, Mismatch: -1, Gap: 0}).Validate() == nil {
		t.Error("gap=0 accepted")
	}
}

func buildTestAligner(t *testing.T, ctgs [][]byte) *Aligner {
	t.Helper()
	a, err := New(ctgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAlignReadForward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctgs := [][]byte{randSeq(rng, 400), randSeq(rng, 300)}
	a := buildTestAligner(t, ctgs)

	read := ctgs[1][100:200]
	h, ok := a.AlignRead(read)
	if !ok {
		t.Fatal("no hit")
	}
	if h.CtgID != 1 || h.RC {
		t.Errorf("hit %+v, want contig 1 forward", h)
	}
	if h.CtgStart != 100 || h.CtgEnd != 200 {
		t.Errorf("span %d..%d, want 100..200", h.CtgStart, h.CtgEnd)
	}
	if h.Score != 100 {
		t.Errorf("score %d, want 100", h.Score)
	}
}

func TestAlignReadReverseComplement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ctgs := [][]byte{randSeq(rng, 400)}
	a := buildTestAligner(t, ctgs)

	read := dna.RevComp(ctgs[0][150:250])
	h, ok := a.AlignRead(read)
	if !ok {
		t.Fatal("no hit")
	}
	if !h.RC {
		t.Error("RC flag not set")
	}
	if h.CtgStart != 150 || h.CtgEnd != 250 {
		t.Errorf("span %d..%d, want 150..250", h.CtgStart, h.CtgEnd)
	}
}

func TestAlignReadWithErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctgs := [][]byte{randSeq(rng, 500)}
	a := buildTestAligner(t, ctgs)

	read := append([]byte(nil), ctgs[0][200:320]...)
	for _, p := range []int{30, 60, 90} {
		c, _ := dna.Code(read[p])
		read[p] = dna.Alphabet[(c+1)&3]
	}
	h, ok := a.AlignRead(read)
	if !ok {
		t.Fatal("3 mismatches in 120 bases should still align")
	}
	if h.CtgStart > 205 || h.CtgEnd < 315 {
		t.Errorf("span %d..%d too short", h.CtgStart, h.CtgEnd)
	}
}

func TestAlignReadNoHit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ctgs := [][]byte{randSeq(rng, 400)}
	a := buildTestAligner(t, ctgs)
	if _, ok := a.AlignRead(randSeq(rng, 100)); ok {
		t.Error("random read aligned")
	}
	if _, ok := a.AlignRead([]byte("ACGT")); ok {
		t.Error("tiny read aligned")
	}
}

func TestAlignReadOverhang(t *testing.T) {
	// A read overlapping the contig end must align its overlapping part.
	rng := rand.New(rand.NewSource(9))
	genome := randSeq(rng, 500)
	ctg := genome[:300]
	a := buildTestAligner(t, [][]byte{ctg})

	read := genome[260:360] // 40 bases on the contig, 60 beyond
	h, ok := a.AlignRead(read)
	if !ok {
		t.Fatal("overhanging read did not align")
	}
	if h.CtgEnd < 295 {
		t.Errorf("alignment should reach the contig end, got %d", h.CtgEnd)
	}
	left, right := a.EndCandidate(h, len(read), 100)
	if !right {
		t.Error("overhanging read not classified as right-end candidate")
	}
	if left {
		t.Error("read near the right end misclassified as left candidate")
	}
}

func TestEndCandidateLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	genome := randSeq(rng, 500)
	ctg := genome[200:500]
	a := buildTestAligner(t, [][]byte{ctg})
	read := genome[150:260] // 50 before the contig, 60 on it
	h, ok := a.AlignRead(read)
	if !ok {
		t.Fatal("no hit")
	}
	left, _ := a.EndCandidate(h, len(read), 100)
	if !left {
		t.Error("left-overhanging read not classified as left candidate")
	}
}

func TestAlignerCellsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctgs := [][]byte{randSeq(rng, 300)}
	a := buildTestAligner(t, ctgs)
	a.AlignRead(ctgs[0][50:150])
	if a.Cells() == 0 {
		t.Error("aln-kernel cell counter did not advance")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.SeedLen = 4
	if bad.Validate() == nil {
		t.Error("seed length 4 accepted")
	}
	bad = DefaultConfig()
	bad.Band = 0
	if bad.Validate() == nil {
		t.Error("band 0 accepted")
	}
	bad = DefaultConfig()
	bad.MinScoreFrac = 0
	if bad.Validate() == nil {
		t.Error("zero score fraction accepted")
	}
}

func BenchmarkAlignRead150(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	ctgs := make([][]byte, 20)
	for i := range ctgs {
		ctgs[i] = randSeq(rng, 2000)
	}
	a, err := New(ctgs, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	read := ctgs[7][500:650]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := a.AlignRead(read); !ok {
			b.Fatal("lost the read")
		}
	}
}
