package locassm

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func modeDriver(t *testing.T, warpPerTable bool, budget int64, mode DriverMode) *Driver {
	t.Helper()
	d, err := NewDriver(testDev(), GPUConfig{
		Config:       testConfig(),
		WarpPerTable: warpPerTable,
		MemBudget:    budget,
		Mode:         mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPipelinedMatchesSequential asserts the tentpole invariant: the
// pipelined driver's results, kernel list, and modeled times are
// bit-identical to the sequential reference path, for both kernel
// versions, across seeds, with a budget tight enough to force several
// batches per side.
func TestPipelinedMatchesSequential(t *testing.T) {
	for _, warpPerTable := range []bool{false, true} {
		version := "v1"
		if warpPerTable {
			version = "v2"
		}
		for seed := int64(0); seed < 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", version, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(8000 + seed))
				ctgs := randomWorkload(rng, 20)

				seq, err := modeDriver(t, warpPerTable, 1<<19, ModeSequential).Run(ctgs)
				if err != nil {
					t.Fatal(err)
				}
				pipe, err := modeDriver(t, warpPerTable, 1<<19, ModePipelined).Run(ctgs)
				if err != nil {
					t.Fatal(err)
				}

				if pipe.Batches != seq.Batches {
					t.Errorf("batches %d vs %d", pipe.Batches, seq.Batches)
				}
				if pipe.Batches < 2 {
					t.Errorf("budget not tight enough to pipeline: %d batches", pipe.Batches)
				}
				if !reflect.DeepEqual(pipe.Results, seq.Results) {
					t.Error("pipelined results differ from sequential")
				}
				if !reflect.DeepEqual(pipe.Kernels, seq.Kernels) {
					t.Error("kernel list (names, counters, modeled times) differs")
				}
				if pipe.KernelTime != seq.KernelTime {
					t.Errorf("kernel time %v vs %v", pipe.KernelTime, seq.KernelTime)
				}
				if pipe.TransferTime != seq.TransferTime {
					t.Errorf("transfer time %v vs %v", pipe.TransferTime, seq.TransferTime)
				}
			})
		}
	}
}

// TestPipelinedRepeatable re-runs the pipelined driver on one workload and
// checks modeled times never depend on goroutine interleaving.
func TestPipelinedRepeatable(t *testing.T) {
	rng := rand.New(rand.NewSource(8100))
	ctgs := randomWorkload(rng, 16)
	first, err := modeDriver(t, true, 1<<19, ModePipelined).Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := modeDriver(t, true, 1<<19, ModePipelined).Run(ctgs)
		if err != nil {
			t.Fatal(err)
		}
		if again.KernelTime != first.KernelTime || again.TransferTime != first.TransferTime {
			t.Fatalf("run %d: modeled times drifted: %v/%v vs %v/%v",
				i, again.KernelTime, again.TransferTime, first.KernelTime, first.TransferTime)
		}
		if !reflect.DeepEqual(again.Results, first.Results) {
			t.Fatalf("run %d: results drifted", i)
		}
	}
}

// TestPipelinedOverlappingBatchesRace exists for the -race runs in CI: it
// keeps many batches in flight on both sides at once (tight budget, both
// sides populated), and runs two independent drivers concurrently so the
// shared staging-arena pool and warp pools are exercised under contention.
func TestPipelinedOverlappingBatchesRace(t *testing.T) {
	rng := rand.New(rand.NewSource(8200))
	ctgs := randomWorkload(rng, 24)
	cpu, err := RunCPU(ctgs, testConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(warpPerTable bool) {
			defer wg.Done()
			gpu, err := modeDriver(t, warpPerTable, 1<<19, ModePipelined).Run(ctgs)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range ctgs {
				if cpu.Results[i].Iters != gpu.Results[i].Iters {
					t.Errorf("ctg %d iters %d vs %d", i, cpu.Results[i].Iters, gpu.Results[i].Iters)
				}
			}
		}(w == 0)
	}
	wg.Wait()
}
