package locassm

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks comparing the flat-table engine against the map
// reference on identical inputs: table build (ns/insert), walk
// (ns/lookup), and the full per-contig extend. EXPERIMENTS.md records the
// before/after numbers from these.

// benchWorkload is a well-covered contig: ~35 reads per side, 90 bp each.
func benchWorkload() (*CtgWithReads, Config) {
	rng := rand.New(rand.NewSource(42))
	c, _ := makeCovered(rng, 1, 1200, 300, 600, 90, 9)
	return c, testConfig()
}

func BenchmarkFlatTableBuild(b *testing.B) {
	c, cfg := benchWorkload()
	ws := getWorkspace()
	defer putWorkspace(ws)
	var wc WorkCounts
	ws.buildTable(c.RightReads, cfg.StartMer, cfg.QualCutoff, &wc)
	inserts := wc.KmersInserted
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.buildTable(c.RightReads, cfg.StartMer, cfg.QualCutoff, &wc)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*inserts), "ns/insert")
}

func BenchmarkMapTableBuild(b *testing.B) {
	c, cfg := benchWorkload()
	var wc WorkCounts
	buildTableMapRef(c.RightReads, cfg.StartMer, cfg.QualCutoff, &wc)
	inserts := wc.KmersInserted
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildTableMapRef(c.RightReads, cfg.StartMer, cfg.QualCutoff, &wc)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*inserts), "ns/insert")
}

func BenchmarkFlatWalk(b *testing.B) {
	c, cfg := benchWorkload()
	ws := getWorkspace()
	defer putWorkspace(ws)
	var wc WorkCounts
	mer := cfg.StartMer
	tailLen := cfg.MaxMer
	ws.buildTable(c.RightReads, mer, cfg.QualCutoff, &wc)
	tail := append([]byte(nil), c.Seq[len(c.Seq)-tailLen:]...)
	var lookups int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.buf = grow(ws.buf, tailLen+cfg.MaxWalkLen)[:0]
		ws.buf = append(ws.buf, tail...)
		wc.Lookups = 0
		ws.walk(tailLen, mer, c.RightReads, &cfg, &wc)
		lookups = wc.Lookups
	}
	if lookups > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*lookups), "ns/lookup")
	}
}

func BenchmarkMapWalk(b *testing.B) {
	c, cfg := benchWorkload()
	var wc WorkCounts
	mer := cfg.StartMer
	tailLen := cfg.MaxMer
	table := buildTableMapRef(c.RightReads, mer, cfg.QualCutoff, &wc)
	tail := append([]byte(nil), c.Seq[len(c.Seq)-tailLen:]...)
	var lookups int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]byte(nil), tail...)
		wc.Lookups = 0
		walkMapRef(&buf, tailLen, table, mer, &cfg, &wc)
		lookups = wc.Lookups
	}
	if lookups > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(int64(b.N)*lookups), "ns/lookup")
	}
}

func BenchmarkExtendContigFlat(b *testing.B) {
	c, cfg := benchWorkload()
	ws := getWorkspace()
	defer putWorkspace(ws)
	var wc WorkCounts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extendContigCPU(ws, c, &cfg, &wc)
	}
}

func BenchmarkExtendContigMap(b *testing.B) {
	c, cfg := benchWorkload()
	var wc WorkCounts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extendContigMapRef(c, &cfg, &wc)
	}
}
