package locassm

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/simt"
)

// failFirstLaunches returns a FaultHook failing the first n launches with a
// recoverable table fault.
func failFirstLaunches(n int32) func() error {
	var left atomic.Int32
	left.Store(n)
	return func() error {
		if left.Add(-1) >= 0 {
			return fmt.Errorf("injected: %w", gpuht.ErrTableFull)
		}
		return nil
	}
}

// TestResplitRecoversAndMatches: a batch whose launch faults is split in
// half and retried; the final results must be bit-identical to a fault-free
// run, with the resplit counter visible in the result.
func TestResplitRecoversAndMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ctgs := randomWorkload(rng, 12)
	cpu, err := RunCPU(ctgs, testConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []DriverMode{ModeSequential, ModePipelined} {
		for _, wpt := range []bool{true, false} {
			label := fmt.Sprintf("mode=%d wpt=%v", mode, wpt)
			drv := newTestDriver(t, wpt, 1<<26)
			drv.Cfg.Mode = mode
			drv.Cfg.FaultHook = failFirstLaunches(1)
			gpu, err := drv.Run(ctgs)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if gpu.Resplits == 0 {
				t.Errorf("%s: fault injected but no resplit recorded", label)
			}
			assertSameResults(t, label, ctgs, cpu, gpu)
		}
	}
}

// TestResplitSurrendersWhenExhausted: a hook that fails every launch must
// make the driver give up with the underlying fault preserved, not loop
// forever.
func TestResplitSurrendersWhenExhausted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ctgs := randomWorkload(rng, 8)
	drv := newTestDriver(t, true, 1<<26)
	drv.Cfg.FaultHook = func() error { return gpuht.ErrTableFull }
	_, err := drv.Run(ctgs)
	if err == nil {
		t.Fatal("driver succeeded with every launch faulting")
	}
	if !errors.Is(err, gpuht.ErrTableFull) {
		t.Errorf("surrender lost the fault type: %v", err)
	}
	if !strings.Contains(err.Error(), "re-split") {
		t.Errorf("surrender error does not mention re-splits: %v", err)
	}
}

// TestDeviceLostSurfacesUnrecovered: an injected device loss is not a table
// fault, so the driver must pass it straight up without re-splitting.
func TestDeviceLostSurfacesUnrecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ctgs := randomWorkload(rng, 6)
	drv := newTestDriver(t, true, 1<<26)
	drv.Dev.InjectFault(nil)
	gpu, err := drv.Run(ctgs)
	if !errors.Is(err, simt.ErrDeviceLost) {
		t.Fatalf("run on lost device returned (%v, %v), want ErrDeviceLost", gpu, err)
	}
}
