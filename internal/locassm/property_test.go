package locassm

import (
	"testing"
	"testing/quick"

	"mhm2sim/internal/gpuht"
)

// Property tests on the extension-decision function, which both the CPU
// reference and the GPU kernels share — its invariants are what make walks
// deterministic and biologically sensible.

func score(e gpuht.Ext, b int) int { return 2*int(e.Hi[b]) + int(e.Lo[b]) }

func TestDecideExtReturnsArgmax(t *testing.T) {
	f := func(hi, lo [4]uint16) bool {
		e := gpuht.Ext{Hi: clamp4(hi), Lo: clamp4(lo)}
		base, st := DecideExt(e, 2)
		if st != StepExtend {
			return true
		}
		for b := 0; b < 4; b++ {
			if score(e, b) > score(e, int(base)) {
				return false // extended with a non-maximal base
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecideExtNeverExtendsWithoutHiVote(t *testing.T) {
	f := func(hi, lo [4]uint16) bool {
		e := gpuht.Ext{Hi: clamp4(hi), Lo: clamp4(lo)}
		base, st := DecideExt(e, 2)
		if st == StepExtend && e.Hi[base] == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecideExtMoreEvidenceNeverKillsExtension(t *testing.T) {
	// Adding high-quality votes to the already-winning base must not turn
	// an extension into a dead end (it can't create ambiguity either).
	f := func(hi, lo [4]uint16, extra uint8) bool {
		e := gpuht.Ext{Hi: clamp4(hi), Lo: clamp4(lo)}
		base, st := DecideExt(e, 2)
		if st != StepExtend {
			return true
		}
		boosted := e
		boosted.Hi[base] += uint16(extra % 100)
		b2, st2 := DecideExt(boosted, 2)
		return st2 == StepExtend && b2 == base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecideExtPermutationEquivariant(t *testing.T) {
	// Relabeling the bases permutes the decision but never changes the
	// step state.
	perm := [4]int{2, 0, 3, 1}
	f := func(hi, lo [4]uint16) bool {
		e := gpuht.Ext{Hi: clamp4(hi), Lo: clamp4(lo)}
		var pe gpuht.Ext
		for b := 0; b < 4; b++ {
			pe.Hi[perm[b]] = e.Hi[b]
			pe.Lo[perm[b]] = e.Lo[b]
		}
		base, st := DecideExt(e, 2)
		pbase, pst := DecideExt(pe, 2)
		if st != pst {
			return false
		}
		if st == StepExtend && int(pbase) != perm[base] {
			// Ties between equal scores may resolve differently under
			// permutation — but equal top scores fork, so an Extend result
			// implies a strict winner and must map exactly.
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNextMerAlwaysTerminates(t *testing.T) {
	// From any starting state, repeatedly applying nextMer with arbitrary
	// walk outcomes reaches done within the ladder's breadth.
	cfg := DefaultConfig()
	f := func(outcomes []uint8) bool {
		mer, shift := cfg.StartMer, 0
		steps := 0
		for _, o := range outcomes {
			state := WalkState(o % 4)
			next, nextShift, done := nextMer(&cfg, mer, shift, state)
			if done {
				return true
			}
			mer, shift = next, nextShift
			if mer < cfg.MinMer || mer > cfg.MaxMer {
				return false // ladder escaped its bounds
			}
			if steps++; steps > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp4 bounds counts so score arithmetic stays far from overflow.
func clamp4(v [4]uint16) [4]uint16 {
	for i := range v {
		v[i] %= 1000
	}
	return v
}
