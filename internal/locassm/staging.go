package locassm

import (
	"fmt"
	"sync"
	"time"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/simt"
)

// This file is the staging half of the pipelined driver: each batch's
// reads, qualities, and walk-buffer tails are packed into one reusable
// host arena and shipped with a single MemcpyHtoD per arena (and the
// outputs come back in one bulk MemcpyDtoH), replacing the per-read copies
// of the original driver — the Go analogue of the paper's flat §3.2
// allocation crossing PCIe as one transfer.

// align64 rounds a size up to the device allocation granularity, so the
// per-arena bases carved out of a slab match what individual Mallocs would
// have returned.
func align64(n int64) int64 { return (n + 63) &^ 63 }

// deviceBytes is the batch's device footprint when its six arenas are
// packed back-to-back at 64-byte alignment inside one slab region.
func (b *batchPlan) deviceBytes() int64 {
	return align64(b.seqArena) + align64(b.qualArena) + align64(b.tableArena) +
		align64(b.visArena) + align64(b.walkArena) + align64(b.outArena)
}

// bases carves the batch's arena base addresses out of a slab.
func (b *batchPlan) bases(base simt.Ptr) batchDev {
	var dev batchDev
	p := base
	next := func(n int64) simt.Ptr {
		cur := p
		p += simt.Ptr(align64(n))
		return cur
	}
	dev.seqBase = next(b.seqArena)
	dev.qualBase = next(b.qualArena)
	dev.tables = next(b.tableArena)
	dev.visited = next(b.visArena)
	dev.walks = next(b.walkArena)
	dev.outs = next(b.outArena)
	return dev
}

// hostArena is one batch's pinned-host-style staging buffers, pooled
// across batches and sides so steady state allocates nothing per batch.
type hostArena struct {
	seq   []byte // read bases, at their arena offsets
	qual  []byte // read qualities, same offsets
	walks []byte // walk-buffer image: zeroes with each item's tail in place
	outs  []byte // output records read back in one copy
}

var arenaPool = sync.Pool{New: func() any { return new(hostArena) }}

// grownTo returns b resized to n bytes, reusing capacity when possible.
// Contents are unspecified.
func grownTo(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// stage packs one batch into the arena: sequences and qualities at their
// planned offsets, and a zeroed walk image holding each item's contig
// tail. Zeroing the walk image keeps device memory content independent of
// whatever batch previously occupied the slab.
func (a *hostArena) stage(b *batchPlan) {
	seqLen := int(b.seqArena - 8) // content bytes; the +8 is gather slack
	a.seq = grownTo(a.seq, seqLen)
	a.qual = grownTo(a.qual, seqLen)
	walkLen := int(b.walkArena - 8)
	a.walks = grownTo(a.walks, walkLen)
	for i := range a.walks {
		a.walks[i] = 0
	}
	n := len(b.items)
	a.outs = grownTo(a.outs, (n-1)*outStride+6)

	for _, p := range b.items {
		for ri := range p.item.reads {
			copy(a.seq[p.readOffs[ri]:], p.item.reads[ri].Seq)
			copy(a.qual[p.readOffs[ri]:], p.item.reads[ri].Qual)
		}
		copy(a.walks[p.walkOff:], p.item.tail)
	}
}

// stagedBatch is a packed batch waiting for the launch stage.
type stagedBatch struct {
	plan  *batchPlan
	arena *hostArena
}

// launchedBatch is a batch whose kernel has completed and whose outputs
// have been read back, waiting for the unpack stage.
type launchedBatch struct {
	plan     *batchPlan
	arena    *hostArena
	exts     [][]byte // per-item extension bytes, rightward orientation
	kres     simt.KernelResult
	transfer time.Duration
}

// launchBatch ships one staged batch to the device (one copy per input
// arena), runs the extension kernel, and reads every output record back in
// a single bulk copy, plus one copy per non-empty extension. Transfer time
// is taken from this batch's traffic on the side's stream, so the total is
// an order-independent sum over batches.
func (d *Driver) launchBatch(stream *simt.Stream, slab simt.Region, left bool, batch *batchPlan, arena *hostArena) (launchedBatch, error) {
	if d.Cfg.FaultHook != nil {
		if err := d.Cfg.FaultHook(); err != nil {
			return launchedBatch{}, err
		}
	}
	bases := batch.bases(slab.Base)
	stream.MemcpyHtoD(bases.seqBase, arena.seq)
	stream.MemcpyHtoD(bases.qualBase, arena.qual)
	stream.MemcpyHtoD(bases.walks, arena.walks)

	side := "right"
	if left {
		side = "left"
	}
	version, warps := "v1", (len(batch.items)+simt.WarpSize-1)/simt.WarpSize
	kernErrs := make([]error, warps)
	kern := extensionKernelV1(batch, bases, &d.Cfg.Config, kernErrs)
	if d.Cfg.WarpPerTable {
		// v2: one warp per extension.
		version, warps = "v2", len(batch.items)
		kernErrs = make([]error, warps)
		kern = extensionKernelV2(batch, bases, &d.Cfg.Config, kernErrs)
	}
	kres, err := d.Dev.Launch(simt.KernelConfig{
		Name:              fmt.Sprintf("locassm_%s_ext_%s", side, version),
		Warps:             warps,
		LocalBytesPerLane: localBytesPerLane(&d.Cfg.Config),
	}, kern)
	if err != nil {
		return launchedBatch{}, err
	}
	// Scan in warp order: the first recorded fault is deterministic no
	// matter how the warp pool interleaved the warps.
	for _, kerr := range kernErrs {
		if kerr != nil {
			return launchedBatch{}, kerr
		}
	}

	// One bulk readback of all output records, then only the extension
	// bytes each walk actually produced.
	stream.MemcpyDtoH(arena.outs, bases.outs)
	exts := make([][]byte, len(batch.items))
	for i, p := range batch.items {
		rec := arena.outs[p.outOff:]
		extLen := int(uint32(rec[0]) | uint32(rec[1])<<8 | uint32(rec[2])<<16 | uint32(rec[3])<<24)
		ext := make([]byte, extLen)
		if extLen > 0 {
			stream.MemcpyDtoH(ext, bases.walks+simt.Ptr(p.walkOff)+simt.Ptr(len(p.item.tail)))
		}
		exts[i] = ext
	}

	h2d, d2h := stream.Traffic()
	return launchedBatch{
		plan:     batch,
		arena:    arena,
		exts:     exts,
		kres:     kres,
		transfer: d.Dev.TransferTime(h2d) + d.Dev.TransferTime(d2h),
	}, nil
}

// sideOut accumulates one side's results, keyed by contig index, so the
// two sides can run concurrently without sharing Result fields; the driver
// merges sides in a fixed order afterwards.
type sideOut struct {
	ext     [][]byte
	state   []WalkState
	iters   []int
	touched []bool

	kernels      []simt.KernelResult
	kernelTime   time.Duration
	transferTime time.Duration
	batches      int
	resplits     int
}

func newSideOut(n int) *sideOut {
	return &sideOut{
		ext:     make([][]byte, n),
		state:   make([]WalkState, n),
		iters:   make([]int, n),
		touched: make([]bool, n),
	}
}

// unpackBatch decodes the host copies of a launched batch's outputs into
// the side accumulator and returns the staging arena to the pool.
func unpackBatch(lb launchedBatch, left bool, so *sideOut) {
	for i, p := range lb.plan.items {
		rec := lb.arena.outs[p.outOff:]
		state := WalkState(rec[4])
		iters := int(rec[5])
		ext := lb.exts[i]
		if left {
			ext = dna.RevComp(ext)
		}
		idx := p.item.ctgIdx
		so.ext[idx] = ext
		so.state[idx] = state
		so.iters[idx] += iters
		so.touched[idx] = true
	}
	so.kernels = append(so.kernels, lb.kres)
	so.kernelTime += lb.kres.Time
	so.transferTime += lb.transfer
	arenaPool.Put(lb.arena)
}
