package locassm

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// overlapWorkload builds a mix that populates all three bins.
func overlapWorkload(t *testing.T) []*CtgWithReads {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	var ctgs []*CtgWithReads
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0: // bin 1: no reads
			c, _ := makeCovered(rng, int64(i), 500, 150, 350, 70, 12)
			c.LeftReads, c.RightReads = nil, nil
			ctgs = append(ctgs, c)
		case 1: // bin 2: few reads
			c, _ := makeCovered(rng, int64(i), 500, 150, 350, 70, 60)
			c.LeftReads = nil
			if len(c.RightReads) > 4 {
				c.RightReads = c.RightReads[:4]
			}
			ctgs = append(ctgs, c)
		case 2: // bin 3: many reads
			c, _ := makeCovered(rng, int64(i), 600, 150, 380, 70, 6)
			ctgs = append(ctgs, c)
		}
	}
	return ctgs
}

func TestRunOverlappedMatchesPlainRun(t *testing.T) {
	ctgs := overlapWorkload(t)
	drv := newTestDriver(t, true, 0)

	plain, err := drv.Run(ctgs)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := drv.RunOverlapped(ctgs, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctgs {
		if !bytes.Equal(plain.Results[i].LeftExt, ov.Results[i].LeftExt) ||
			!bytes.Equal(plain.Results[i].RightExt, ov.Results[i].RightExt) {
			t.Fatalf("ctg %d: overlapped schedule changed the result", i)
		}
	}
}

func TestRunOverlappedSplitsBin2(t *testing.T) {
	ctgs := overlapWorkload(t)
	drv := newTestDriver(t, true, 0)

	// A slow CPU model: almost nothing finishes in the window, so nearly
	// all of bin 2 goes to the GPU.
	slow := func(wc WorkCounts) time.Duration {
		return time.Duration(wc.KmersInserted) * time.Millisecond
	}
	ovSlow, err := drv.RunOverlapped(ctgs, slow, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A fast CPU model: the CPU clears all of bin 2 inside the window.
	fast := func(WorkCounts) time.Duration { return 0 }
	ovFast, err := drv.RunOverlapped(ctgs, fast, 64)
	if err != nil {
		t.Fatal(err)
	}
	bins := MakeBins(ctgs, 0)
	if ovFast.CPUContigs != len(bins.Small) {
		t.Errorf("fast CPU finished %d of %d bin-2 contigs", ovFast.CPUContigs, len(bins.Small))
	}
	if ovSlow.CPUContigs >= ovFast.CPUContigs {
		t.Errorf("slow CPU finished %d, fast %d — split not responsive to the model",
			ovSlow.CPUContigs, ovFast.CPUContigs)
	}
	// Results identical regardless of the split.
	for i := range ctgs {
		if !bytes.Equal(ovSlow.Results[i].RightExt, ovFast.Results[i].RightExt) {
			t.Fatalf("ctg %d: split changed the result", i)
		}
	}
}

func TestRunOverlappedAccounting(t *testing.T) {
	ctgs := overlapWorkload(t)
	drv := newTestDriver(t, true, 0)
	ov, err := drv.RunOverlapped(ctgs, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ov.GPU == nil || len(ov.GPU.Kernels) == 0 {
		t.Fatal("GPU accounting missing")
	}
	if ov.ModelTime <= 0 {
		t.Error("model time not positive")
	}
	// The overlap window is at least the bin-3 GPU time, so the total is
	// at least that too.
	if ov.ModelTime < ov.GPU.KernelTime/2 {
		t.Error("model time implausibly small")
	}
}

func TestDefaultCPUTime(t *testing.T) {
	m1 := DefaultCPUTime(1)
	m4 := DefaultCPUTime(4)
	wc := WorkCounts{KmersInserted: 1_000_000, Lookups: 1000, WalkSteps: 1000, TableBuilds: 10}
	if m1(wc) <= 0 {
		t.Fatal("zero time for real work")
	}
	if m4(wc)*4 != m1(wc) {
		t.Errorf("worker scaling wrong: %v vs %v", m4(wc)*4, m1(wc))
	}
	if DefaultCPUTime(0)(wc) != m1(wc) {
		t.Error("workers<1 should clamp to 1")
	}
}
