package locassm

import (
	"fmt"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
)

// sideItem is one extension work item — one warp's worth of work: a contig
// end with its candidate reads, oriented so the walk always runs rightward.
type sideItem struct {
	ctgIdx int  // index into the run's contig slice
	left   bool // whether this is the left end (output gets re-reversed)
	tail   []byte
	reads  []dna.Read
}

// itemPlan carries the §3.2 exact-size bookkeeping for one item: where its
// reads, hash table, visited table, walk buffer, and output live inside the
// batch's flat device allocation. Offsets are relative to the batch bases.
type itemPlan struct {
	item *sideItem

	readOffs []uint32 // per-read offset in the seq/qual arenas
	seqBytes int64

	tableSlots   int
	visitedSlots int
	walkBytes    int

	// Assigned at batch layout time.
	tableOff   int64
	visitedOff int64
	walkOff    int64
	outOff     int64
}

// batchPlan is one GPU batch: items whose combined footprint fits the
// device-memory budget, with the flat-allocation layout computed. This is
// the role of the paper's ht_sizes array: exact per-extension sizes packed
// into a single allocation (§3.2).
type batchPlan struct {
	items []*itemPlan

	seqArena   int64 // bytes of read sequence (shared arena)
	qualArena  int64
	tableArena int64
	visArena   int64
	walkArena  int64
	outArena   int64
}

func (b *batchPlan) totalBytes() int64 {
	return b.seqArena + b.qualArena + b.tableArena + b.visArena + b.walkArena + b.outArena
}

// planItem computes one item's exact sizes.
func planItem(it *sideItem, cfg *Config) *itemPlan {
	p := &itemPlan{item: it}
	maxLen := 0
	p.readOffs = make([]uint32, len(it.reads))
	for i := range it.reads {
		p.readOffs[i] = uint32(p.seqBytes)
		p.seqBytes += int64(len(it.reads[i].Seq))
		if len(it.reads[i].Seq) > maxLen {
			maxLen = len(it.reads[i].Seq)
		}
	}
	// §3.2: l·r slots rather than (l−k+1)·r caps the load factor at
	// (l−k+1)/l ≈ 0.93 while avoiding per-k resizing.
	p.tableSlots = gpuht.SlotsPerExtension(maxLen, len(it.reads))
	p.visitedSlots = 2 * (cfg.MaxWalkLen + cfg.MaxMer)
	p.walkBytes = cfg.MaxMer + cfg.MaxWalkLen + 8 // slack for 8-byte gathers
	return p
}

func (p *itemPlan) bytes() int64 {
	return p.seqBytes*2 + // seq + qual
		gpuht.Bytes(p.tableSlots) +
		gpuht.VisitedBytes(p.visitedSlots) +
		int64(p.walkBytes) +
		outStride // output record
}

// packBatches greedily packs items into batches under the byte budget.
// Items too large for the budget on their own are rejected — the driver
// surfaces that as a configuration error rather than thrashing.
func packBatches(items []*sideItem, cfg *Config, budget int64) ([]*batchPlan, error) {
	var batches []*batchPlan
	cur := &batchPlan{}
	var curBytes int64
	for _, it := range items {
		p := planItem(it, cfg)
		need := p.bytes()
		if need > budget {
			return nil, fmt.Errorf("locassm: item with %d reads needs %d bytes, over the %d-byte device budget",
				len(it.reads), need, budget)
		}
		if curBytes+need > budget && len(cur.items) > 0 {
			layoutBatch(cur)
			batches = append(batches, cur)
			cur, curBytes = &batchPlan{}, 0
		}
		cur.items = append(cur.items, p)
		curBytes += need
	}
	if len(cur.items) > 0 {
		layoutBatch(cur)
		batches = append(batches, cur)
	}
	return batches, nil
}

// layoutBatch assigns arena-relative offsets. Each arena is padded by 8
// bytes so vector gathers may over-read safely.
func layoutBatch(b *batchPlan) {
	var seq, table, vis, walk, out int64
	for _, p := range b.items {
		for i := range p.readOffs {
			p.readOffs[i] += uint32(seq)
		}
		p.tableOff, p.visitedOff, p.walkOff, p.outOff = table, vis, walk, out
		seq += p.seqBytes
		table += gpuht.Bytes(p.tableSlots)
		vis += gpuht.VisitedBytes(p.visitedSlots)
		walk += int64(p.walkBytes)
		out += outStride
	}
	b.seqArena = seq + 8
	b.qualArena = seq + 8
	b.tableArena = table
	b.visArena = vis
	b.walkArena = walk + 8
	b.outArena = out
}

// buildSideItems collects the work items for one side of every contig in
// the bin, oriented rightward. Contigs shorter than MinMer or ends without
// reads produce no item.
func buildSideItems(ctgs []*CtgWithReads, cfg *Config, left bool) []*sideItem {
	var items []*sideItem
	for idx, c := range ctgs {
		reads := c.RightReads
		if left {
			reads = c.LeftReads
		}
		if len(reads) == 0 || len(c.Seq) < cfg.MinMer {
			continue
		}
		it := &sideItem{ctgIdx: idx, left: left}
		if left {
			seq := dna.RevComp(c.Seq)
			it.tail = tailOf(seq, cfg.MaxMer)
			it.reads = make([]dna.Read, len(reads))
			for i := range reads {
				it.reads[i] = reads[i].RevComp()
			}
		} else {
			it.tail = tailOf(c.Seq, cfg.MaxMer)
			it.reads = reads
		}
		items = append(items, it)
	}
	return items
}

func tailOf(seq []byte, n int) []byte {
	if len(seq) <= n {
		return append([]byte(nil), seq...)
	}
	return append([]byte(nil), seq[len(seq)-n:]...)
}
