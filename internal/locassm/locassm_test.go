package locassm

import (
	"testing"

	"mhm2sim/internal/gpuht"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	cases := []Config{
		mod(func(c *Config) { c.MinMer = 2 }),
		mod(func(c *Config) { c.MaxMer = c.MinMer - 1 }),
		mod(func(c *Config) { c.MaxMer = 200 }),
		mod(func(c *Config) { c.StartMer = c.MaxMer + 1 }),
		mod(func(c *Config) { c.StartMer = c.MinMer - 1 }),
		mod(func(c *Config) { c.MerStep = 0 }),
		mod(func(c *Config) { c.MaxWalkLen = 0 }),
		mod(func(c *Config) { c.MaxIters = 0 }),
		mod(func(c *Config) { c.MaxReadLen = 10 }),
		mod(func(c *Config) { c.MaxReadLen = 500 }),
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func ext(hi, lo [4]uint16) gpuht.Ext {
	return gpuht.Ext{Count: 1, Hi: hi, Lo: lo}
}

func TestDecideExtUnanimous(t *testing.T) {
	base, st := DecideExt(ext([4]uint16{0, 5, 0, 0}, [4]uint16{}), 2)
	if st != StepExtend || base != 1 {
		t.Errorf("got base=%d st=%d, want C extend", base, st)
	}
}

func TestDecideExtDeadEnd(t *testing.T) {
	if _, st := DecideExt(gpuht.Ext{}, 2); st != StepEnd {
		t.Errorf("empty evidence: st=%d, want end", st)
	}
	// Low-quality-only evidence never extends (needs ≥1 hi vote).
	if _, st := DecideExt(ext([4]uint16{}, [4]uint16{9, 0, 0, 0}), 2); st != StepEnd {
		t.Errorf("lo-only evidence: st=%d, want end", st)
	}
	// A single hi vote scores 2 which meets minViable=2.
	if _, st := DecideExt(ext([4]uint16{1, 0, 0, 0}, [4]uint16{}), 2); st != StepExtend {
		t.Errorf("single hi vote: st=%d, want extend", st)
	}
	// ...but not minViable=3.
	if _, st := DecideExt(ext([4]uint16{1, 0, 0, 0}, [4]uint16{}), 3); st != StepEnd {
		t.Errorf("single hi vote under strict threshold: st=%d, want end", st)
	}
}

func TestDecideExtFork(t *testing.T) {
	// Equal support for two bases: fork.
	if _, st := DecideExt(ext([4]uint16{5, 5, 0, 0}, [4]uint16{}), 2); st != StepFork {
		t.Errorf("tie: st=%d, want fork", st)
	}
	// Runner-up just over half of best: fork.
	if _, st := DecideExt(ext([4]uint16{8, 5, 0, 0}, [4]uint16{}), 2); st != StepFork {
		t.Errorf("close second: st=%d, want fork", st)
	}
	// Dominant best (second ≤ half): extend.
	base, st := DecideExt(ext([4]uint16{8, 2, 0, 0}, [4]uint16{}), 2)
	if st != StepExtend || base != 0 {
		t.Errorf("dominant best: base=%d st=%d, want A extend", base, st)
	}
	// A non-viable runner-up (no hi votes) cannot cause a fork.
	base, st = DecideExt(ext([4]uint16{3, 0, 0, 0}, [4]uint16{0, 5, 0, 0}), 2)
	if st != StepExtend || base != 0 {
		t.Errorf("lo-only runner-up: base=%d st=%d, want A extend", base, st)
	}
}

func TestDecideExtQualityWeighting(t *testing.T) {
	// 2·hi + lo: hi votes count double.
	base, st := DecideExt(ext([4]uint16{0, 4, 0, 1}, [4]uint16{0, 0, 0, 3}), 2)
	// C scores 8, T scores 2+3=5 -> 2*5 > 8: fork.
	if st != StepFork {
		t.Errorf("quality-weighted close call: base=%d st=%d, want fork", base, st)
	}
}

func TestNextMerStateMachine(t *testing.T) {
	cfg := DefaultConfig() // 21..33 step 4, start 27

	// Fork from a fresh walk: up-shift.
	next, shift, done := nextMer(&cfg, 27, 0, WalkFork)
	if done || next != 31 || shift != +1 {
		t.Errorf("fork: got %d,%d,%v", next, shift, done)
	}
	// Dead end from fresh: down-shift.
	next, shift, done = nextMer(&cfg, 27, 0, WalkDeadEnd)
	if done || next != 23 || shift != -1 {
		t.Errorf("dead end: got %d,%d,%v", next, shift, done)
	}
	// Fork right after a down-shift: terminate (§2.3).
	if _, _, done = nextMer(&cfg, 23, -1, WalkFork); !done {
		t.Error("fork after down-shift should terminate")
	}
	// Dead end right after an up-shift: terminate.
	if _, _, done = nextMer(&cfg, 31, +1, WalkDeadEnd); !done {
		t.Error("dead end after up-shift should terminate")
	}
	// Ladder exhaustion terminates.
	if _, _, done = nextMer(&cfg, 33, +1, WalkFork); !done {
		t.Error("up-shift beyond MaxMer should terminate")
	}
	if _, _, done = nextMer(&cfg, 21, -1, WalkDeadEnd); !done {
		t.Error("down-shift below MinMer should terminate")
	}
	// Loops and max-length walks always terminate.
	if _, _, done = nextMer(&cfg, 27, 0, WalkLoop); !done {
		t.Error("loop should terminate")
	}
	if _, _, done = nextMer(&cfg, 27, 0, WalkMaxLen); !done {
		t.Error("max-len should terminate")
	}
}

func TestWalkStateString(t *testing.T) {
	for s, want := range map[WalkState]string{
		WalkDeadEnd: "dead-end", WalkFork: "fork", WalkLoop: "loop",
		WalkMaxLen: "max-len", WalkState(99): "unknown",
	} {
		if s.String() != want {
			t.Errorf("state %d: %q", s, s.String())
		}
	}
}

func TestMakeBins(t *testing.T) {
	mk := func(n int) *CtgWithReads {
		c := &CtgWithReads{Seq: []byte("ACGT")}
		for i := 0; i < n; i++ {
			c.RightReads = append(c.RightReads, readFromString("ACGTACGT"))
		}
		return c
	}
	ctgs := []*CtgWithReads{mk(0), mk(0), mk(1), mk(9), mk(10), mk(500)}
	b := MakeBins(ctgs, 0)
	if len(b.Zero) != 2 || len(b.Small) != 2 || len(b.Large) != 2 {
		t.Fatalf("bins %d/%d/%d, want 2/2/2", len(b.Zero), len(b.Small), len(b.Large))
	}
	z, s, l := b.Fractions()
	if z != 2.0/6 || s != 2.0/6 || l != 2.0/6 {
		t.Errorf("fractions %g/%g/%g", z, s, l)
	}
	if b.Total() != 6 {
		t.Errorf("total %d", b.Total())
	}
	// Custom boundary.
	b = MakeBins(ctgs, 2)
	if len(b.Small) != 1 || len(b.Large) != 3 {
		t.Errorf("custom limit bins %d/%d", len(b.Small), len(b.Large))
	}
	// Empty input.
	b = MakeBins(nil, 0)
	z, s, l = b.Fractions()
	if z != 0 || s != 0 || l != 0 {
		t.Error("empty fractions should be zero")
	}
}

func TestResultExtendedSeq(t *testing.T) {
	r := Result{LeftExt: []byte("AA"), RightExt: []byte("TT")}
	got := r.ExtendedSeq([]byte("CGCG"))
	if string(got) != "AACGCGTT" {
		t.Errorf("ExtendedSeq = %q", got)
	}
}
