package locassm

import (
	"bytes"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
)

// FuzzFlatMatchesMapRef differentially checks the flat-table engine against
// the map reference over randomized contigs, reads, qualities (straddling
// the cutoff), ambiguous bases, and mer-ladder configurations. Run with
//
//	go test -fuzz FuzzFlatMatchesMapRef ./internal/locassm
//
// to explore beyond the seed corpus; the corpus itself runs under plain
// `go test` as a regression suite.
func FuzzFlatMatchesMapRef(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(8), uint8(30), uint8(0))
	f.Add(int64(2), uint8(90), uint8(14), uint8(60), uint8(10))
	f.Add(int64(3), uint8(10), uint8(2), uint8(200), uint8(50))
	f.Add(int64(4), uint8(255), uint8(30), uint8(15), uint8(100))
	f.Add(int64(5), uint8(0), uint8(0), uint8(0), uint8(255))

	f.Fuzz(func(t *testing.T, seed int64, ctgLen, nReads, readLen, ambig uint8) {
		rng := rand.New(rand.NewSource(seed))

		cfg := testConfig()
		cfg.MinMer = 5 + rng.Intn(8)
		cfg.MerStep = 1 + rng.Intn(4)
		cfg.MaxMer = cfg.MinMer + cfg.MerStep*rng.Intn(4)
		cfg.StartMer = cfg.MinMer + cfg.MerStep*rng.Intn(1+(cfg.MaxMer-cfg.MinMer)/cfg.MerStep)
		cfg.MaxWalkLen = 1 + rng.Intn(120)
		cfg.MaxIters = 1 + rng.Intn(10)
		cfg.MinViableScore = 1 + rng.Intn(5)
		cfg.QualCutoff = 10 + rng.Intn(20)

		// randBase sprinkles ambiguous bytes at a rate set by the fuzzed
		// ambig parameter: both engines must key and compare them alike.
		randBase := func() byte {
			if int(ambig) > 0 && rng.Intn(512) < int(ambig) {
				return 'N'
			}
			return dna.Alphabet[rng.Intn(4)]
		}

		seq := make([]byte, int(ctgLen))
		for i := range seq {
			seq[i] = randBase()
		}
		c := &CtgWithReads{ID: 1, Seq: seq}

		makeRead := func() dna.Read {
			l := int(readLen)
			if l > 150 { // stay within the engine's MaxReadLen regime
				l = 150
			}
			s := make([]byte, l)
			q := make([]byte, l)
			// Half the reads resample the contig tail (so walks go
			// somewhere), half are pure noise (so lookups miss).
			if len(seq) > 0 && rng.Intn(2) == 0 {
				start := rng.Intn(len(seq))
				for i := range s {
					if start+i < len(seq) {
						s[i] = seq[start+i]
					} else {
						s[i] = randBase()
					}
				}
			} else {
				for i := range s {
					s[i] = randBase()
				}
			}
			for i := range q {
				q[i] = dna.QualChar(rng.Intn(dna.MaxQual + 1))
			}
			return dna.Read{ID: "f", Seq: s, Qual: q}
		}
		for i := 0; i < int(nReads); i++ {
			if rng.Intn(2) == 0 {
				c.RightReads = append(c.RightReads, makeRead())
			} else {
				c.LeftReads = append(c.LeftReads, makeRead())
			}
		}

		ws := getWorkspace()
		defer putWorkspace(ws)
		var flatWC, refWC WorkCounts
		flat := extendContigCPU(ws, c, &cfg, &flatWC)
		ref := extendContigMapRef(c, &cfg, &refWC)

		if !bytes.Equal(flat.RightExt, ref.RightExt) || !bytes.Equal(flat.LeftExt, ref.LeftExt) {
			t.Fatalf("extensions diverge:\n flat L=%q R=%q\n  ref L=%q R=%q",
				flat.LeftExt, flat.RightExt, ref.LeftExt, ref.RightExt)
		}
		if flat.RightState != ref.RightState || flat.LeftState != ref.LeftState || flat.Iters != ref.Iters {
			t.Fatalf("states diverge: flat (%s,%s,%d) vs ref (%s,%s,%d)",
				flat.LeftState, flat.RightState, flat.Iters,
				ref.LeftState, ref.RightState, ref.Iters)
		}
		if flatWC != refWC {
			t.Fatalf("work counts diverge: flat %+v vs ref %+v", flatWC, refWC)
		}
	})
}
