package locassm

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestDumpLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	ctgs := randomWorkload(rng, 12)

	var buf bytes.Buffer
	if err := DumpWorkload(&buf, ctgs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkload(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ctgs) {
		t.Fatalf("got %d contigs, want %d", len(back), len(ctgs))
	}
	for i := range ctgs {
		if back[i].ID != ctgs[i].ID || !bytes.Equal(back[i].Seq, ctgs[i].Seq) {
			t.Fatalf("contig %d differs", i)
		}
		if len(back[i].LeftReads) != len(ctgs[i].LeftReads) ||
			len(back[i].RightReads) != len(ctgs[i].RightReads) {
			t.Fatalf("contig %d read counts differ", i)
		}
		for j := range ctgs[i].RightReads {
			if !bytes.Equal(back[i].RightReads[j].Seq, ctgs[i].RightReads[j].Seq) ||
				!bytes.Equal(back[i].RightReads[j].Qual, ctgs[i].RightReads[j].Qual) {
				t.Fatalf("contig %d read %d differs", i, j)
			}
		}
	}

	// A loaded workload must assemble identically.
	cfg := testConfig()
	a, err := RunCPU(ctgs, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCPU(back, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if !bytes.Equal(a.Results[i].RightExt, b.Results[i].RightExt) {
			t.Fatalf("contig %d: loaded workload assembles differently", i)
		}
	}
}

func TestDumpLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	ctgs := randomWorkload(rng, 5)
	path := filepath.Join(t.TempDir(), "workload.dump")
	if err := DumpWorkloadFile(path, ctgs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadWorkloadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ctgs) {
		t.Fatalf("got %d contigs", len(back))
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadWorkload(strings.NewReader("not a dump at all")); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	if err := DumpWorkload(&buf, nil); err != nil {
		t.Fatal(err)
	}
	// Truncated dump.
	full := buf.Bytes()
	if _, err := LoadWorkload(bytes.NewReader(full[:3])); err == nil {
		t.Error("truncated dump accepted")
	}
	back, err := LoadWorkload(bytes.NewReader(full))
	if err != nil || len(back) != 0 {
		t.Errorf("empty dump mishandled: %v %d", err, len(back))
	}
}
