package locassm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mhm2sim/internal/par"
	"mhm2sim/internal/simt"
)

// Engine is the uniform local-assembly execution interface: every way this
// codebase can run the §2.3 extension algorithm — the host flat-table
// engine, the single-GPU batch driver, the multi-GPU node driver, and the
// distributed multi-rank runtime — sits behind it. The pipeline driver
// resolves exactly one Engine per run and calls it once per contigging
// round, so adding an execution substrate means registering a factory
// here, never touching the driver loop.
type Engine interface {
	// Name identifies the engine (one of the Engine* constants, or a
	// custom registered name).
	Name() string
	// Assemble locally assembles the contigs of round k and returns the
	// per-contig results in input order plus unified accounting. Engines
	// must NOT mutate ctgs (in particular ctgs[i].Seq); the caller applies
	// the extensions. Every engine computes bit-identical Results for the
	// same input — the package's central correctness property.
	Assemble(k int, ctgs []*CtgWithReads) ([]Result, Stats, error)
}

// Stats is the unified accounting every engine returns for one round.
// Host engines fill Counts; device engines fill the kernel fields; all
// engines report Busy, the modeled busy wall-clock of the round (max over
// devices when several run concurrently) that distributed schedulers use
// for per-rank load accounting.
type Stats struct {
	// Counts tallies host-side algorithmic work (flat-table engine).
	Counts WorkCounts
	// Kernels holds one entry per device kernel launch, in launch order.
	Kernels []simt.KernelResult
	// KernelTime/TransferTime are the modeled device time components.
	KernelTime   time.Duration
	TransferTime time.Duration
	// Busy is the engine's modeled busy wall-clock for the round.
	Busy time.Duration
	// Resplits counts batches that failed with a recoverable table fault
	// and were halved and retried; Batches counts staged batches.
	Resplits int
	Batches  int
}

// Add accumulates o into s (kernel lists are appended in order).
func (s *Stats) Add(o Stats) {
	s.Counts.Add(o.Counts)
	s.Kernels = append(s.Kernels, o.Kernels...)
	s.KernelTime += o.KernelTime
	s.TransferTime += o.TransferTime
	s.Busy += o.Busy
	s.Resplits += o.Resplits
	s.Batches += o.Batches
}

// Registered engine names. EngineAuto is not itself registered: it
// resolves to EngineCPU here (callers with more context, like the
// pipeline or the CLI, resolve it earlier with their own defaults).
const (
	EngineAuto     = "auto"
	EngineCPU      = "cpu"
	EngineGPU      = "gpu"
	EngineMultiGPU = "multigpu"
	// EngineDist is registered by internal/dist; its factory refuses
	// standalone construction because the distributed engine binds to a
	// live multi-rank runtime (use dist.Run).
	EngineDist = "dist"
)

// EngineSpec is the single resolved description of which engine to build
// and how — the replacement for scattering UseGPU-style booleans through
// configs. Zero fields default sensibly per engine.
type EngineSpec struct {
	// Name selects the registered engine ("", "auto" → EngineCPU).
	Name string
	// Instance, when non-nil, bypasses the registry entirely: NewEngine
	// returns it as-is. The distributed runtime injects itself this way,
	// since it cannot be built from a declarative spec alone.
	Instance Engine
	// Config is the walk parameterization shared by every engine. When
	// zero, device engines fall back to GPU.Config.
	Config Config
	// Workers bounds the host engine's goroutines (0 = GOMAXPROCS).
	Workers int
	// GPU configures the device batch driver (gpu and multigpu engines).
	GPU GPUConfig
	// Device is an existing device for the gpu engine (nil = a fresh
	// DeviceConfig device).
	Device *simt.Device
	// DeviceConfig describes fresh devices (zero Name = simt.V100()).
	DeviceConfig simt.DeviceConfig
	// GPUs is the multigpu engine's device count (0 = DefaultNodeGPUs).
	GPUs int
	// MemBudget is the run-level device memory budget in bytes (the
	// pipeline's -mem-budget). When set and GPU.MemBudget is not, it caps
	// the batch driver's footprint too — floored at MinDriverBudget so a
	// counting-sized budget never shrinks batches below a single item.
	MemBudget int64
}

// MinDriverBudget floors the local-assembly driver budget derived from a
// run-level memory budget: counting budgets go down to 64 KiB, but the
// driver must always fit one batch item per stream.
const MinDriverBudget = 4 << 20

// DefaultNodeGPUs is the multigpu engine's default device count — the six
// V100s of one Summit node (§4.1).
const DefaultNodeGPUs = 6

// deviceConfig resolves the fresh-device template.
func (s *EngineSpec) deviceConfig() simt.DeviceConfig {
	if s.DeviceConfig.Name == "" {
		return simt.V100()
	}
	return s.DeviceConfig
}

// gpuConfig resolves the device driver configuration: the spec-level walk
// Config overrides the one embedded in GPU when set.
func (s *EngineSpec) gpuConfig() GPUConfig {
	gcfg := s.GPU
	if s.Config != (Config{}) {
		gcfg.Config = s.Config
	}
	if s.MemBudget > 0 && gcfg.MemBudget == 0 {
		gcfg.MemBudget = s.MemBudget
		if gcfg.MemBudget < MinDriverBudget {
			gcfg.MemBudget = MinDriverBudget
		}
	}
	return gcfg
}

// EngineFactory builds an engine from a resolved spec.
type EngineFactory func(spec EngineSpec) (Engine, error)

var (
	engineMu  sync.RWMutex
	engineReg = map[string]EngineFactory{}
)

// RegisterEngine adds a named engine factory. Registering an empty name or
// a duplicate panics: the registry is assembled at init time and a
// collision is a programming error.
func RegisterEngine(name string, f EngineFactory) {
	if name == "" || f == nil {
		panic("locassm: RegisterEngine with empty name or nil factory")
	}
	engineMu.Lock()
	defer engineMu.Unlock()
	if _, dup := engineReg[name]; dup {
		panic(fmt.Sprintf("locassm: engine %q registered twice", name))
	}
	engineReg[name] = f
}

// EngineNames lists the registered engine names, sorted.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engineReg))
	for n := range engineReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewEngine resolves a spec into a constructed engine: a pre-built
// Instance wins, then the registry by Name ("" and "auto" mean cpu).
func NewEngine(spec EngineSpec) (Engine, error) {
	if spec.Instance != nil {
		return spec.Instance, nil
	}
	name := spec.Name
	if name == "" || name == EngineAuto {
		name = EngineCPU
	}
	engineMu.RLock()
	f, ok := engineReg[name]
	engineMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("locassm: unknown engine %q (registered: %v)", name, EngineNames())
	}
	return f(spec)
}

func init() {
	RegisterEngine(EngineCPU, newCPUEngine)
	RegisterEngine(EngineGPU, newGPUEngine)
	RegisterEngine(EngineMultiGPU, newMultiGPUEngine)
}

// cpuEngine wraps the zero-allocation host flat-table path (RunCPU).
type cpuEngine struct {
	cfg     Config
	workers int
	model   CPUTimeModel
}

func newCPUEngine(spec EngineSpec) (Engine, error) {
	cfg := spec.Config
	if cfg == (Config{}) {
		cfg = spec.GPU.Config
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := par.Workers(spec.Workers)
	return &cpuEngine{cfg: cfg, workers: w, model: DefaultCPUTime(w)}, nil
}

func (e *cpuEngine) Name() string { return EngineCPU }

func (e *cpuEngine) Assemble(_ int, ctgs []*CtgWithReads) ([]Result, Stats, error) {
	cres, err := RunCPU(ctgs, e.cfg, e.workers)
	if err != nil {
		return nil, Stats{}, err
	}
	return cres.Results, Stats{Counts: cres.Counts, Busy: e.model(cres.Counts)}, nil
}

// gpuEngine wraps the pipelined single-device batch driver.
type gpuEngine struct {
	drv *Driver
}

func newGPUEngine(spec EngineSpec) (Engine, error) {
	dev := spec.Device
	if dev == nil {
		dev = simt.NewDevice(spec.deviceConfig())
	}
	drv, err := NewDriver(dev, spec.gpuConfig())
	if err != nil {
		return nil, err
	}
	return &gpuEngine{drv: drv}, nil
}

func (e *gpuEngine) Name() string { return EngineGPU }

func (e *gpuEngine) Assemble(_ int, ctgs []*CtgWithReads) ([]Result, Stats, error) {
	gres, err := e.drv.Run(ctgs)
	if err != nil {
		return nil, Stats{}, err
	}
	return gres.Results, gpuStats(gres), nil
}

// gpuStats converts one device run's outcome into unified accounting.
func gpuStats(gres *GPUResult) Stats {
	return Stats{
		Kernels:      gres.Kernels,
		KernelTime:   gres.KernelTime,
		TransferTime: gres.TransferTime,
		Busy:         gres.TotalTime(),
		Resplits:     gres.Resplits,
		Batches:      gres.Batches,
	}
}

// multiGPUEngine wraps the node driver: the workload is sharded across the
// node's devices and they run concurrently, so Busy is the slowest
// device's modeled time rather than the sum.
type multiGPUEngine struct {
	nd   *NodeDriver
	gpus int
}

func newMultiGPUEngine(spec EngineSpec) (Engine, error) {
	gpus := spec.GPUs
	if gpus <= 0 {
		gpus = DefaultNodeGPUs
	}
	nd, err := NewNodeDriver(gpus, spec.deviceConfig(), spec.gpuConfig())
	if err != nil {
		return nil, err
	}
	return &multiGPUEngine{nd: nd, gpus: gpus}, nil
}

func (e *multiGPUEngine) Name() string { return EngineMultiGPU }

func (e *multiGPUEngine) Assemble(_ int, ctgs []*CtgWithReads) ([]Result, Stats, error) {
	nres, err := e.nd.Run(ctgs)
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	for _, g := range nres.PerGPU {
		s := gpuStats(g)
		s.Busy = 0 // devices overlap; node busy time is the max, set below
		stats.Add(s)
	}
	stats.Busy = nres.NodeTime
	return nres.Results, stats, nil
}
