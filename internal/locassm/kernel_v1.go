package locassm

import (
	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/simt"
)

// laneState is one lane's extension state in the v1 kernel.
type laneState struct {
	p       *itemPlan
	tailLen int
	mer     int
	shift   int
	extLen  int
	iters   int
	state   WalkState
}

// extensionKernelV1 is the first development version analyzed in §4.2: one
// CUDA *thread* per hash table. Each warp owns up to 32 extensions; lane i
// serially builds extension i's table and walks extension i's contig, with
// the 32 lanes stepping in lockstep over 32 unrelated memory regions.
// Compared to v2 this issues far more global-memory warp instructions and
// more transactions per instruction (nothing coalesces), and lanes whose
// extensions finish early sit predicated off — the Fig 8 / Fig 10 story.
//
// Table faults land in errs[w.ID] (per-warp slot, race-free) and abort the
// warp's remaining items, mirroring extensionKernelV2.
func extensionKernelV1(plan *batchPlan, dev batchDev, cfg *Config, errs []error) func(w *simt.Warp) {
	return func(w *simt.Warp) {
		first := w.ID * simt.WarpSize

		var ls [simt.WarpSize]*laneState
		var active, zeroOut simt.Mask
		for lane := 0; lane < simt.WarpSize && first+lane < len(plan.items); lane++ {
			p := plan.items[first+lane]
			st := &laneState{p: p, tailLen: len(p.item.tail)}
			st.mer = cfg.StartMer
			if st.mer > st.tailLen {
				st.mer = st.tailLen
			}
			ls[lane] = st
			if st.mer < cfg.MinMer {
				zeroOut |= simt.LaneMask(lane)
			} else {
				active |= simt.LaneMask(lane)
			}
		}
		if zeroOut != 0 {
			writeOutLanes(w, dev, zeroOut, &ls, true)
		}

		for active != 0 {
			iterMask := active

			// Per-lane table descriptors at each lane's current mer.
			var tables gpuht.LaneTables
			var vis gpuht.LaneVisited
			var tBases, tCaps, vBases, vCaps [simt.WarpSize]uint64
			tables.SeqBase = dev.seqBase
			for lane := 0; lane < simt.WarpSize; lane++ {
				if !iterMask.Has(lane) {
					continue
				}
				st := ls[lane]
				tBases[lane] = uint64(dev.tables) + uint64(st.p.tableOff)
				tCaps[lane] = uint64(st.p.tableSlots)
				vBases[lane] = uint64(dev.visited) + uint64(st.p.visitedOff)
				vCaps[lane] = uint64(st.p.visitedSlots)
				tables.Base[lane] = tBases[lane]
				tables.Capacity[lane] = tCaps[lane]
				tables.K[lane] = st.mer
				vis.Base[lane] = vBases[lane]
				vis.Capacity[lane] = vCaps[lane]
				vis.BufBase[lane] = uint64(dev.walks) + uint64(st.p.walkOff)
				vis.K[lane] = st.mer
			}

			gpuht.ClearLaneRegions(w, iterMask, &tBases, &tCaps)
			gpuht.ClearLaneVisited(w, iterMask, &vBases, &vCaps)

			if err := buildTablesV1(w, iterMask, &ls, tables, dev, cfg); err != nil {
				errs[w.ID] = err
				return
			}
			w.SyncWarp(simt.FullMask)
			if err := walkLanesV1(w, iterMask, &ls, tables, vis, dev, cfg); err != nil {
				errs[w.ID] = err
				return
			}

			// Per-lane ladder advance; finished lanes write their outputs.
			var finished simt.Mask
			for lane := 0; lane < simt.WarpSize; lane++ {
				if !iterMask.Has(lane) {
					continue
				}
				st := ls[lane]
				st.iters++
				next, nextShift, done := nextMer(cfg, st.mer, st.shift, st.state)
				if done || next > st.tailLen+st.extLen || st.iters >= cfg.MaxIters {
					finished |= simt.LaneMask(lane)
					continue
				}
				st.mer, st.shift = next, nextShift
			}
			w.Exec(simt.ICtrl, iterMask)
			if finished != 0 {
				writeOutLanes(w, dev, finished, &ls, false)
				active &^= finished
			}
		}
	}
}

// buildTablesV1 is Algorithm 1 with one thread per table: lockstep over a
// k-mer cursor, each lane inserting the next k-mer of its own read set
// into its own table. Lanes that exhaust their k-mers sit predicated off
// until the slowest lane finishes.
func buildTablesV1(w *simt.Warp, mask simt.Mask, ls *[simt.WarpSize]*laneState, tables gpuht.LaneTables, dev batchDev, cfg *Config) error {
	type cursor struct{ ri, ki int }
	var cur [simt.WarpSize]cursor

	// advance skips reads shorter than the lane's mer and reports whether
	// the lane still has a k-mer to insert.
	hasKmer := func(lane int) bool {
		st := ls[lane]
		for cur[lane].ri < len(st.p.item.reads) {
			r := st.p.item.reads[cur[lane].ri]
			if cur[lane].ki+st.mer <= len(r.Seq) {
				return true
			}
			cur[lane].ri++
			cur[lane].ki = 0
		}
		return false
	}

	building := mask
	for building != 0 {
		var stepMask, hasNext simt.Mask
		var keyOffs, seqAddrs, qualAddrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !building.Has(lane) {
				continue
			}
			if !hasKmer(lane) {
				building &^= simt.LaneMask(lane)
				continue
			}
			st := ls[lane]
			stepMask |= simt.LaneMask(lane)
			off := uint64(st.p.readOffs[cur[lane].ri]) + uint64(cur[lane].ki)
			keyOffs[lane] = off
			r := st.p.item.reads[cur[lane].ri]
			if cur[lane].ki+st.mer < len(r.Seq) {
				hasNext |= simt.LaneMask(lane)
				seqAddrs[lane] = uint64(dev.seqBase) + off + uint64(st.mer)
				qualAddrs[lane] = uint64(dev.qualBase) + off + uint64(st.mer)
			}
			cur[lane].ki++
		}
		if stepMask == 0 {
			break
		}
		extBases := simt.Splat(uint64(gpuht.NoExt))
		var hiq simt.Mask
		w.Exec(simt.IInt, stepMask)
		if hasNext != 0 {
			baseBytes := w.LoadGlobal(hasNext, &seqAddrs, 1)
			qualBytes := w.LoadGlobal(hasNext, &qualAddrs, 1)
			w.ExecN(simt.IInt, hasNext, 2)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if !hasNext.Has(lane) {
					continue
				}
				if c, ok := dna.Code(byte(baseBytes[lane])); ok {
					extBases[lane] = uint64(c)
					if dna.QualScore(byte(qualBytes[lane])) >= cfg.QualCutoff {
						hiq |= simt.LaneMask(lane)
					}
				}
			}
		}
		if err := tables.InsertLanes(w, stepMask, &keyOffs, &extBases, hiq); err != nil {
			return err
		}
		w.Exec(simt.ICtrl, mask)
	}
	return nil
}

// walkLanesV1 is Algorithm 2 with one thread per extension, all 32 lanes
// walking their own contigs in lockstep. Walk lengths differ wildly across
// lanes ("up to 300 steps for some threads while another terminates right
// at the start", §4.2), so predication mounts as lanes drop out.
func walkLanesV1(w *simt.Warp, mask simt.Mask, ls *[simt.WarpSize]*laneState, tables gpuht.LaneTables, vis gpuht.LaneVisited, dev batchDev, cfg *Config) error {
	walking := mask
	for walking != 0 {
		w.Exec(simt.ICtrl, walking)

		// Max-length check (same order as the CPU reference).
		for lane := 0; lane < simt.WarpSize; lane++ {
			if walking.Has(lane) && ls[lane].extLen >= cfg.MaxWalkLen {
				ls[lane].state = WalkMaxLen
				walking &^= simt.LaneMask(lane)
			}
		}
		if walking == 0 {
			break
		}

		// Cycle detection via each lane's visited table.
		var offs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if walking.Has(lane) {
				st := ls[lane]
				offs[lane] = uint64(st.tailLen + st.extLen - st.mer)
			}
		}
		seen, err := vis.InsertLanes(w, walking, &offs)
		if err != nil {
			return err
		}
		for lane := 0; lane < simt.WarpSize; lane++ {
			if seen.Has(lane) {
				ls[lane].state = WalkLoop
			}
		}
		walking &^= seen
		if walking == 0 {
			break
		}

		// Per-thread walk-buffer reads of the current mer (local traffic).
		maxBlk := 0
		for lane := 0; lane < simt.WarpSize; lane++ {
			if walking.Has(lane) {
				if b := (ls[lane].mer + 7) / 8; b > maxBlk {
					maxBlk = b
				}
			}
		}
		for b := 0; b < maxBlk; b++ {
			var bm simt.Mask
			var lofs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if walking.Has(lane) && b < (ls[lane].mer+7)/8 {
					bm |= simt.LaneMask(lane)
					lofs[lane] = uint64(walkScratch) + offs[lane] + uint64(8*b)
				}
			}
			if bm != 0 {
				w.LoadLocal(bm, &lofs, 8)
			}
		}

		// Table lookup on each lane's own table.
		var keyAddrs simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if walking.Has(lane) {
				keyAddrs[lane] = vis.BufBase[lane] + offs[lane]
			}
		}
		exts, found, err := tables.LookupLanes(w, walking, &keyAddrs)
		if err != nil {
			return err
		}
		for lane := 0; lane < simt.WarpSize; lane++ {
			if walking.Has(lane) && !found.Has(lane) {
				ls[lane].state = WalkDeadEnd
			}
		}
		walking &= found
		if walking == 0 {
			break
		}

		// Extension decision per lane.
		w.ExecN(simt.IInt, walking, 8)
		var extend simt.Mask
		var storeAddrs, storeVals simt.Vec
		for lane := 0; lane < simt.WarpSize; lane++ {
			if !walking.Has(lane) {
				continue
			}
			st := ls[lane]
			base, dec := DecideExt(exts[lane], cfg.MinViableScore)
			switch dec {
			case StepEnd:
				st.state = WalkDeadEnd
				walking &^= simt.LaneMask(lane)
			case StepFork:
				st.state = WalkFork
				walking &^= simt.LaneMask(lane)
			default:
				extend |= simt.LaneMask(lane)
				storeAddrs[lane] = vis.BufBase[lane] + uint64(st.tailLen+st.extLen)
				storeVals[lane] = uint64(dna.Alphabet[base])
			}
		}
		if extend != 0 {
			w.StoreGlobal(extend, &storeAddrs, 1, &storeVals)
			var lofs simt.Vec
			for lane := 0; lane < simt.WarpSize; lane++ {
				if extend.Has(lane) {
					st := ls[lane]
					lofs[lane] = uint64(walkScratch + st.tailLen + st.extLen)
				}
			}
			w.StoreLocal(extend, &lofs, 1, &storeVals)
			for lane := 0; lane < simt.WarpSize; lane++ {
				if extend.Has(lane) {
					ls[lane].extLen++
				}
			}
		}
	}
	return nil
}

// writeOutLanes stores (extLen, state, iters) records for the given lanes.
// zero forces an all-zero record (too-short contigs).
func writeOutLanes(w *simt.Warp, dev batchDev, mask simt.Mask, ls *[simt.WarpSize]*laneState, zero bool) {
	var a, v simt.Vec
	for lane := 0; lane < simt.WarpSize; lane++ {
		if !mask.Has(lane) {
			continue
		}
		a[lane] = uint64(dev.outs) + uint64(ls[lane].p.outOff)
		if !zero {
			v[lane] = uint64(ls[lane].extLen)
		}
	}
	w.StoreGlobal(mask, &a, 4, &v)
	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) {
			a[lane] += 4
			if zero {
				v[lane] = 0
			} else {
				v[lane] = uint64(ls[lane].state)
			}
		}
	}
	w.StoreGlobal(mask, &a, 1, &v)
	for lane := 0; lane < simt.WarpSize; lane++ {
		if mask.Has(lane) {
			a[lane]++
			if zero {
				v[lane] = 0
			} else {
				v[lane] = uint64(ls[lane].iters)
			}
		}
	}
	w.StoreGlobal(mask, &a, 1, &v)
}
