package locassm

import (
	"bytes"
	"sync"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/kmer"
	"mhm2sim/internal/murmur"
)

// This file is the zero-allocation host local-assembly engine: the §3.2
// memory-minimization ideas (exact-sized flat tables, pointer-compressed
// keys, Fig 6) ported back to the CPU the way MetaHipMer2's C++ host tables
// work. It replaces the map[string]gpuht.Ext reference implementation
// (kept as a test-only oracle in mapref_test.go) on every host path:
// RunCPU, RunOverlapped's bin-2 replay, and the dist per-rank CPU drivers.
//
// Three structures make the engine allocation-free in steady state:
//
//   - flatTable: open-addressing + linear-probing table keyed by
//     murmur.Hash64A over pointer-compressed keys — each entry stores the
//     (read, pos) coordinates of its k-mer inside the contig's candidate
//     reads instead of a copy of the k-mer bytes, and key comparison reads
//     the bytes back through those coordinates (the host analogue of the
//     device table's arena offsets). Capacity follows gpuht.HostSlots over
//     the exact per-build k-mer count Σ max(0, len(read)−k+1) — the §3.2
//     (l−k+1)·r bound evaluated on the actual reads.
//   - visitedSet: the walk's loop detector, an open-addressed set probed
//     with the rolling 2-bit packed cursor's hash (kmer.Kmer.HashK) and
//     compared through walk-buffer offsets — again no k-mer copies.
//   - cpuWorkspace: per-worker scratch (table slots, visited slots, walk
//     buffer, reverse-complement arenas) recycled through a sync.Pool, so
//     once a worker has warmed up, extendContigCPU allocates nothing
//     beyond the Result extension slices it must hand to the caller.
//
// Both structures use generation stamps instead of clearing: bumping gen
// invalidates every slot in O(1), so a workspace that once served a huge
// bin-3 contig does not pay an O(capacity) memset for every later small
// contig.

// flatSeed seeds the table hash; visitedSeed seeds the cursor hash. They
// only need to be fixed, not related: table probes hash raw window bytes
// (so N-containing keys behave exactly like the map reference), visited
// probes hash the packed cursor when it is pure ACGT.
const (
	flatSeed    = 0x5eed1ab5
	visitedSeed = 0xf1a77ab1e5eed
)

// flatEntryEmptyRead never indexes a real read (len(reads) is bounded far
// below 2^32); it marks slots whose gen matches but hold no key yet.
const flatEntryEmptyRead = 0xffffffff

// flatEntry is one slot of the flat table: a generation stamp, a 32-bit
// hash tag for cheap mismatch rejection, the pointer-compressed key, and
// the extension object (36 bytes vs the map's string header + bucket
// overhead per key).
type flatEntry struct {
	gen  uint32
	tag  uint32
	read uint32 // index into the candidate reads
	pos  uint32 // k-mer start offset within that read
	ext  gpuht.Ext
}

// flatTable is the Algorithm 1 table over one side's candidate reads.
type flatTable struct {
	slots []flatEntry
	mask  uint64
	gen   uint32
}

// reset prepares the table for a build of at most nKmers keys, growing the
// slot array only when a bigger build than any before arrives (amortized
// zero allocations) and invalidating old entries by bumping gen.
func (t *flatTable) reset(nKmers int) {
	want := gpuht.HostSlots(nKmers)
	if want > len(t.slots) {
		t.slots = make([]flatEntry, want)
		t.gen = 0
	}
	t.gen++
	if t.gen == 0 { // gen wrapped: stamps from 2^32 builds ago could alias
		for i := range t.slots {
			t.slots[i] = flatEntry{}
		}
		t.gen = 1
	}
	if len(t.slots) > 0 {
		t.mask = uint64(len(t.slots) - 1)
	} else {
		t.mask = 0
	}
}

// insert returns the extension object for key reads[ri].Seq[pos:pos+k],
// claiming a fresh slot on first sight. The caller guarantees reset was
// sized for every key of the build, so the probe always terminates.
func (t *flatTable) insert(reads []dna.Read, ri, pos uint32, k int) *gpuht.Ext {
	key := reads[ri].Seq[pos : pos+uint32(k)]
	h := murmur.Hash64A(key, flatSeed)
	tag := uint32(h)
	idx := h & t.mask
	for {
		e := &t.slots[idx]
		if e.gen != t.gen {
			*e = flatEntry{gen: t.gen, tag: tag, read: ri, pos: pos}
			return &e.ext
		}
		if e.tag == tag && e.read != flatEntryEmptyRead &&
			bytes.Equal(reads[e.read].Seq[e.pos:e.pos+uint32(k)], key) {
			return &e.ext
		}
		idx = (idx + 1) & t.mask
	}
}

// lookup probes for the k bytes of cur (the walk cursor window), comparing
// candidate entries through their pointer-compressed coordinates.
func (t *flatTable) lookup(reads []dna.Read, cur []byte, k int) (gpuht.Ext, bool) {
	if len(t.slots) == 0 {
		return gpuht.Ext{}, false
	}
	h := murmur.Hash64A(cur, flatSeed)
	tag := uint32(h)
	idx := h & t.mask
	for {
		e := &t.slots[idx]
		if e.gen != t.gen {
			return gpuht.Ext{}, false
		}
		if e.tag == tag && bytes.Equal(reads[e.read].Seq[e.pos:e.pos+uint32(k)], cur) {
			return e.ext, true
		}
		idx = (idx + 1) & t.mask
	}
}

// visitedSlot records one visited walk cursor as its hash plus the cursor's
// start offset in the walk buffer — the walk buffer is append-only, so the
// offset is a stable pointer-compressed key.
type visitedSlot struct {
	hash uint64
	gen  uint32
	off  uint32
}

// visitedSet is the open-addressed loop detector (Algorithm 2's
// loop_exists) replacing map[string]bool.
type visitedSet struct {
	slots []visitedSlot
	mask  uint64
	gen   uint32
}

// reset prepares the set for a walk of at most n insertions.
func (v *visitedSet) reset(n int) {
	want := gpuht.HostSlots(n)
	if want > len(v.slots) {
		v.slots = make([]visitedSlot, want)
		v.gen = 0
	}
	v.gen++
	if v.gen == 0 {
		for i := range v.slots {
			v.slots[i] = visitedSlot{}
		}
		v.gen = 1
	}
	v.mask = uint64(len(v.slots) - 1)
}

// seen reports whether the mer bytes at buf[off:off+mer] (hashing to h)
// were visited before, inserting them if not — the map reference's
// "if visited[cur] return; visited[cur] = true" in one probe.
func (v *visitedSet) seen(buf []byte, h uint64, off uint32, mer int) bool {
	idx := h & v.mask
	for {
		s := &v.slots[idx]
		if s.gen != v.gen {
			*s = visitedSlot{hash: h, gen: v.gen, off: off}
			return false
		}
		if s.hash == h && bytes.Equal(buf[s.off:s.off+uint32(mer)], buf[off:off+uint32(mer)]) {
			return true
		}
		idx = (idx + 1) & v.mask
	}
}

// cpuWorkspace is one worker's reusable scratch. Get one with getWorkspace,
// return it with putWorkspace; everything inside is sized high-water-mark
// style so steady-state extends allocate nothing.
type cpuWorkspace struct {
	table   flatTable
	visited visitedSet
	buf     []byte // walk buffer (contig tail + extensions)
	rcCtg   []byte // reverse-complemented contig tail for the left side
	rcReads []dna.Read
	rcArena []byte // backing store for rcReads' Seq/Qual slices
}

var cpuWsPool = sync.Pool{New: func() any { return new(cpuWorkspace) }}

func getWorkspace() *cpuWorkspace   { return cpuWsPool.Get().(*cpuWorkspace) }
func putWorkspace(ws *cpuWorkspace) { cpuWsPool.Put(ws) }

// grow returns b with len n and capacity ≥ n, reusing b's storage when it
// suffices. Contents are unspecified.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// cursor is the walk's rolling 2-bit packed position. validRun counts
// consecutive unambiguous bases ending at the cursor, so the packed form is
// trusted only once the window has shifted fully onto ACGT bases; until
// then (possible only while ambiguous bytes from the original contig tail
// drain out) hashing falls back to the raw window bytes, keeping N-bearing
// windows exactly as distinguishable as the map reference's strings.
type cursor struct {
	km       kmer.Kmer
	validRun int
}

// load packs the window (the last mer bytes of buf).
func (c *cursor) load(window []byte, mer int) {
	c.km = kmer.Kmer{}
	c.validRun = 0
	for _, b := range window {
		if code, ok := dna.Code(b); ok {
			c.km = c.km.Append(mer, code)
			c.validRun++
		} else {
			c.km = kmer.Kmer{}
			c.validRun = 0
		}
	}
}

// push rolls the cursor one base to the right; base is a 2-bit code (walk
// extensions are always unambiguous).
func (c *cursor) push(base byte, mer int) {
	c.km = c.km.Append(mer, base)
	if c.validRun < mer {
		c.validRun++
	}
}

// hash returns the visited-set hash of the current window. A pure-ACGT
// window hashes its packed form (one Hash64Word pair for mer ≤ 64); a
// window still holding ambiguous bytes hashes raw. Byte-equal windows are
// either both pure or both ambiguous, so equal windows always hash equal.
func (c *cursor) hash(window []byte, mer int) uint64 {
	if c.validRun >= mer {
		return c.km.HashK(mer, visitedSeed)
	}
	return murmur.Hash64A(window, visitedSeed)
}

// buildTable is Algorithm 1 on the flat table: bit-identical accumulation
// to the map reference (same read/offset order, same Ext arithmetic), no
// per-key string materialization.
func (ws *cpuWorkspace) buildTable(reads []dna.Read, k, qualCutoff int, wc *WorkCounts) {
	wc.TableBuilds++
	nKmers := 0
	for ri := range reads {
		if n := len(reads[ri].Seq) - k + 1; n > 0 {
			nKmers += n
		}
	}
	ws.table.reset(nKmers)
	for ri := range reads {
		seq, qual := reads[ri].Seq, reads[ri].Qual
		for i := 0; i+k <= len(seq); i++ {
			wc.KmersInserted++
			e := ws.table.insert(reads, uint32(ri), uint32(i), k)
			e.Count++
			if i+k < len(seq) {
				c, ok := dna.Code(seq[i+k])
				if ok {
					if dna.QualScore(qual[i+k]) >= qualCutoff {
						e.Hi[c]++
					} else {
						e.Lo[c]++
					}
				}
			}
		}
	}
}

// walk is Algorithm 2 against the flat table, extending ws.buf in place.
// It mirrors the map reference step for step: max-length check, visited
// probe, table lookup, DecideExt, append.
func (ws *cpuWorkspace) walk(tailLen, mer int, reads []dna.Read, cfg *Config, wc *WorkCounts) (WalkState, int64) {
	ws.visited.reset(cfg.MaxWalkLen + 1)
	var cur cursor
	cur.load(ws.buf[len(ws.buf)-mer:], mer)
	steps := int64(0)
	for {
		if len(ws.buf)-tailLen >= cfg.MaxWalkLen {
			return WalkMaxLen, steps
		}
		window := ws.buf[len(ws.buf)-mer:]
		off := uint32(len(ws.buf) - mer)
		if ws.visited.seen(ws.buf, cur.hash(window, mer), off, mer) {
			return WalkLoop, steps
		}

		wc.Lookups++
		e, ok := ws.table.lookup(reads, window, mer)
		if !ok {
			return WalkDeadEnd, steps
		}
		base, st := DecideExt(e, cfg.MinViableScore)
		switch st {
		case StepEnd:
			return WalkDeadEnd, steps
		case StepFork:
			return WalkFork, steps
		}
		ws.buf = append(ws.buf, dna.Alphabet[base])
		cur.push(base, mer)
		steps++
	}
}

// extendSide runs the §2.3 build/walk/shift-k loop rightward. The returned
// extension aliases ws.buf and is only valid until the workspace's next
// use; callers must copy what they keep.
func (ws *cpuWorkspace) extendSide(ctg []byte, reads []dna.Read, cfg *Config, wc *WorkCounts) ([]byte, WalkState, int) {
	tailLen := len(ctg)
	if tailLen > cfg.MaxMer {
		tailLen = cfg.MaxMer
	}
	ws.buf = grow(ws.buf, tailLen+cfg.MaxWalkLen)[:0]
	ws.buf = append(ws.buf, ctg[len(ctg)-tailLen:]...)

	mer := cfg.StartMer
	if mer > tailLen {
		mer = tailLen
	}
	if mer < cfg.MinMer {
		return nil, WalkDeadEnd, 0
	}

	state := WalkDeadEnd
	shift := 0
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters++
		ws.buildTable(reads, mer, cfg.QualCutoff, wc)
		var steps int64
		state, steps = ws.walk(tailLen, mer, reads, cfg, wc)
		wc.WalkSteps += steps

		next, nextShift, done := nextMer(cfg, mer, shift, state)
		if done {
			break
		}
		if next > len(ws.buf) { // mer cannot exceed the walk buffer
			break
		}
		mer, shift = next, nextShift
	}
	return ws.buf[tailLen:], state, iters
}

// prepLeft reverse-complements the contig tail and the left candidate reads
// into workspace arenas, so the left side can reuse the rightward walker
// (§2.3) without per-contig allocations.
func (ws *cpuWorkspace) prepLeft(c *CtgWithReads, cfg *Config) ([]byte, []dna.Read) {
	tailLen := len(c.Seq)
	if tailLen > cfg.MaxMer {
		tailLen = cfg.MaxMer
	}
	// Only the last tailLen bases of RevComp(c.Seq) — the reverse
	// complement of the contig's first tailLen bases — ever reach the walk.
	ws.rcCtg = grow(ws.rcCtg, tailLen)
	head := c.Seq[:tailLen]
	for i, b := range head {
		ws.rcCtg[tailLen-1-i] = dna.Complement(b)
	}

	total := 0
	for i := range c.LeftReads {
		total += len(c.LeftReads[i].Seq) + len(c.LeftReads[i].Qual)
	}
	ws.rcArena = grow(ws.rcArena, total)
	if cap(ws.rcReads) < len(c.LeftReads) {
		ws.rcReads = make([]dna.Read, len(c.LeftReads))
	}
	ws.rcReads = ws.rcReads[:len(c.LeftReads)]
	off := 0
	for i := range c.LeftReads {
		r := &c.LeftReads[i]
		seq := ws.rcArena[off : off+len(r.Seq)]
		off += len(r.Seq)
		for j, b := range r.Seq {
			seq[len(r.Seq)-1-j] = dna.Complement(b)
		}
		qual := ws.rcArena[off : off+len(r.Qual)]
		off += len(r.Qual)
		for j, q := range r.Qual {
			qual[len(r.Qual)-1-j] = q
		}
		ws.rcReads[i] = dna.Read{ID: r.ID, Seq: seq, Qual: qual}
	}
	return ws.rcCtg, ws.rcReads
}

// cloneExt copies a workspace-aliased extension into a caller-owned slice
// (nil for the empty extension, so no-op contigs stay allocation-free).
func cloneExt(ext []byte) []byte {
	if len(ext) == 0 {
		return nil
	}
	return append([]byte(nil), ext...)
}
