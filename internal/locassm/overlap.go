package locassm

import (
	"runtime"
	"sync"
	"time"

	"mhm2sim/internal/simt"
)

// This file implements the §4.3 / Fig 11 integration schedule: after
// binning, the third bin (contigs with the most candidate reads) is
// offloaded to the GPU first — launched from a separate thread so control
// returns to the CPU — while the CPU works through bin 2. When the GPU
// returns, whatever remains of bin 2 is offloaded too. Bin 3 goes first
// because GPUs fare better with more work per launch (latency hiding).

// CPUTimeModel estimates how long a node's CPU implementation needs for
// the given work counts; the overlap scheduler uses it to decide how much
// of bin 2 the CPU finishes while the GPU processes bin 3.
type CPUTimeModel func(WorkCounts) time.Duration

// DefaultCPUTime returns a simple per-operation cost model for `workers`
// cores (55 ns per insert, 80 ns per lookup — the same constants the
// cluster model starts from before calibration).
func DefaultCPUTime(workers int) CPUTimeModel {
	if workers < 1 {
		workers = 1
	}
	return func(wc WorkCounts) time.Duration {
		ns := float64(wc.KmersInserted)*55 + float64(wc.Lookups)*80 +
			float64(wc.WalkSteps)*10 + float64(wc.TableBuilds)*3000
		return time.Duration(ns / float64(workers))
	}
}

// OverlapResult is the outcome of the Fig 11 schedule.
type OverlapResult struct {
	Results []Result

	// GPU merges the bin-3 run and the bin-2 remainder run.
	GPU *GPUResult
	// CPUCounts is the work the CPU did on bin 2 during the overlap.
	CPUCounts WorkCounts
	// CPUContigs counts bin-2 contigs the CPU finished before the GPU
	// returned; the rest of bin 2 was offloaded.
	CPUContigs int
	// ModelTime is the schedule's modeled wall time:
	// max(GPU bin-3, CPU bin-2 overlap) + GPU bin-2 remainder.
	ModelTime time.Duration
}

// RunOverlapped executes local assembly with the Fig 11 schedule. Results
// are bit-identical to Run/RunCPU (the schedule only changes who computes
// what); cpuTime decides the CPU/GPU split of bin 2 (nil uses
// DefaultCPUTime for the driver's worker count... callers should pass the
// model they calibrate elsewhere).
func (d *Driver) RunOverlapped(ctgs []*CtgWithReads, cpuTime CPUTimeModel, cpuWorkers int) (*OverlapResult, error) {
	if cpuTime == nil {
		cpuTime = DefaultCPUTime(cpuWorkers)
	}
	bins := MakeBins(ctgs, d.Cfg.SmallLimit)

	out := &OverlapResult{Results: make([]Result, len(ctgs))}
	index := make(map[*CtgWithReads]int, len(ctgs))
	for i, c := range ctgs {
		index[c] = i
		out.Results[i].ID = c.ID
	}
	place := func(set []*CtgWithReads, results []Result) {
		for i, c := range set {
			out.Results[index[c]] = results[i]
		}
	}

	// Bin 3 goes to the GPU first (launched on its own thread in the real
	// driver; here its model time defines the overlap window).
	gpu3, err := d.Run(bins.Large)
	if err != nil {
		return nil, err
	}
	place(bins.Large, gpu3.Results)
	window := gpu3.TotalTime()

	// The CPU walks bin 2 until the window is spent. Contigs are extended
	// in chunks so the worker fan-out cost is paid once per chunk rather
	// than once per contig, but the take/stop decision is replayed contig
	// by contig over the chunk's per-contig counts — the split (and every
	// result) is bit-identical to the one-at-a-time schedule. Work past the
	// cutoff inside the final chunk is speculative and discarded, exactly
	// as a real overlapped driver over-decodes its last in-flight block.
	workers := cpuWorkers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunk := 4 * workers
	cpuDone := 0
loop:
	for cpuDone < len(bins.Small) {
		hi := cpuDone + chunk
		if hi > len(bins.Small) {
			hi = len(bins.Small)
		}
		set := bins.Small[cpuDone:hi]
		results, counts := cpuChunk(set, &d.Cfg.Config, workers)
		for j := range set {
			next := out.CPUCounts
			next.Add(counts[j])
			if cpuTime(next) > window && cpuDone > 0 {
				break loop
			}
			out.CPUCounts = next
			place(set[j:j+1], results[j:j+1])
			cpuDone++
			if cpuTime(out.CPUCounts) > window {
				break loop
			}
		}
	}
	out.CPUContigs = cpuDone

	// GPU takes the bin-2 remainder when it returns.
	rest := bins.Small[cpuDone:]
	gpuRest := &GPUResult{}
	if len(rest) > 0 {
		gpuRest, err = d.Run(rest)
		if err != nil {
			return nil, err
		}
		place(rest, gpuRest.Results)
	}

	// Merge GPU accounting.
	merged := *gpu3
	merged.Results = nil
	merged.Kernels = append(append([]simt.KernelResult{}, gpu3.Kernels...), gpuRest.Kernels...)
	merged.KernelTime += gpuRest.KernelTime
	merged.TransferTime += gpuRest.TransferTime
	merged.Batches += gpuRest.Batches
	out.GPU = &merged

	cpuSpan := cpuTime(out.CPUCounts)
	if cpuSpan < window {
		cpuSpan = window
	}
	out.ModelTime = cpuSpan + gpuRest.TotalTime()
	return out, nil
}

// cpuChunk extends a chunk of contigs across `workers` goroutines,
// returning per-contig results AND per-contig work counts (unlike RunCPU,
// which only totals them) so the overlap scheduler can replay its cutoff
// decision one contig at a time.
func cpuChunk(ctgs []*CtgWithReads, cfg *Config, workers int) ([]Result, []WorkCounts) {
	results := make([]Result, len(ctgs))
	counts := make([]WorkCounts, len(ctgs))
	if workers > len(ctgs) {
		workers = len(ctgs)
	}
	var wg sync.WaitGroup
	next := make(chan int, len(ctgs))
	for i := range ctgs {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			ws := getWorkspace()
			defer putWorkspace(ws)
			for i := range next {
				results[i] = extendContigCPU(ws, ctgs[i], cfg, &counts[i])
			}
		}()
	}
	wg.Wait()
	return results, counts
}
