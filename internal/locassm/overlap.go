package locassm

import (
	"time"

	"mhm2sim/internal/simt"
)

// This file implements the §4.3 / Fig 11 integration schedule: after
// binning, the third bin (contigs with the most candidate reads) is
// offloaded to the GPU first — launched from a separate thread so control
// returns to the CPU — while the CPU works through bin 2. When the GPU
// returns, whatever remains of bin 2 is offloaded too. Bin 3 goes first
// because GPUs fare better with more work per launch (latency hiding).

// CPUTimeModel estimates how long a node's CPU implementation needs for
// the given work counts; the overlap scheduler uses it to decide how much
// of bin 2 the CPU finishes while the GPU processes bin 3.
type CPUTimeModel func(WorkCounts) time.Duration

// DefaultCPUTime returns a simple per-operation cost model for `workers`
// cores (55 ns per insert, 80 ns per lookup — the same constants the
// cluster model starts from before calibration).
func DefaultCPUTime(workers int) CPUTimeModel {
	if workers < 1 {
		workers = 1
	}
	return func(wc WorkCounts) time.Duration {
		ns := float64(wc.KmersInserted)*55 + float64(wc.Lookups)*80 +
			float64(wc.WalkSteps)*10 + float64(wc.TableBuilds)*3000
		return time.Duration(ns / float64(workers))
	}
}

// OverlapResult is the outcome of the Fig 11 schedule.
type OverlapResult struct {
	Results []Result

	// GPU merges the bin-3 run and the bin-2 remainder run.
	GPU *GPUResult
	// CPUCounts is the work the CPU did on bin 2 during the overlap.
	CPUCounts WorkCounts
	// CPUContigs counts bin-2 contigs the CPU finished before the GPU
	// returned; the rest of bin 2 was offloaded.
	CPUContigs int
	// ModelTime is the schedule's modeled wall time:
	// max(GPU bin-3, CPU bin-2 overlap) + GPU bin-2 remainder.
	ModelTime time.Duration
}

// RunOverlapped executes local assembly with the Fig 11 schedule. Results
// are bit-identical to Run/RunCPU (the schedule only changes who computes
// what); cpuTime decides the CPU/GPU split of bin 2 (nil uses
// DefaultCPUTime for the driver's worker count... callers should pass the
// model they calibrate elsewhere).
func (d *Driver) RunOverlapped(ctgs []*CtgWithReads, cpuTime CPUTimeModel, cpuWorkers int) (*OverlapResult, error) {
	if cpuTime == nil {
		cpuTime = DefaultCPUTime(cpuWorkers)
	}
	bins := MakeBins(ctgs, d.Cfg.SmallLimit)

	out := &OverlapResult{Results: make([]Result, len(ctgs))}
	index := make(map[*CtgWithReads]int, len(ctgs))
	for i, c := range ctgs {
		index[c] = i
		out.Results[i].ID = c.ID
	}
	place := func(set []*CtgWithReads, results []Result) {
		for i, c := range set {
			out.Results[index[c]] = results[i]
		}
	}

	// Bin 3 goes to the GPU first (launched on its own thread in the real
	// driver; here its model time defines the overlap window).
	gpu3, err := d.Run(bins.Large)
	if err != nil {
		return nil, err
	}
	place(bins.Large, gpu3.Results)
	window := gpu3.TotalTime()

	// The CPU walks bin 2 until the window is spent.
	cpuDone := 0
	for cpuDone < len(bins.Small) {
		one, err := RunCPU(bins.Small[cpuDone:cpuDone+1], d.Cfg.Config, cpuWorkers)
		if err != nil {
			return nil, err
		}
		next := out.CPUCounts
		next.Add(one.Counts)
		if cpuTime(next) > window && cpuDone > 0 {
			break
		}
		out.CPUCounts = next
		place(bins.Small[cpuDone:cpuDone+1], one.Results)
		cpuDone++
		if cpuTime(out.CPUCounts) > window {
			break
		}
	}
	out.CPUContigs = cpuDone

	// GPU takes the bin-2 remainder when it returns.
	rest := bins.Small[cpuDone:]
	gpuRest := &GPUResult{}
	if len(rest) > 0 {
		gpuRest, err = d.Run(rest)
		if err != nil {
			return nil, err
		}
		place(rest, gpuRest.Results)
	}

	// Merge GPU accounting.
	merged := *gpu3
	merged.Results = nil
	merged.Kernels = append(append([]simt.KernelResult{}, gpu3.Kernels...), gpuRest.Kernels...)
	merged.KernelTime += gpuRest.KernelTime
	merged.TransferTime += gpuRest.TransferTime
	merged.Batches += gpuRest.Batches
	out.GPU = &merged

	cpuSpan := cpuTime(out.CPUCounts)
	if cpuSpan < window {
		cpuSpan = window
	}
	out.ModelTime = cpuSpan + gpuRest.TotalTime()
	return out, nil
}
