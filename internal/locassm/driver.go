package locassm

import (
	"fmt"
	"time"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/simt"
)

// GPUConfig configures the GPU local-assembly driver.
type GPUConfig struct {
	Config
	// WarpPerTable selects the v2 kernel (one warp builds one hash table,
	// §3.3); false selects the v1 single-thread-per-table kernel.
	WarpPerTable bool
	// MemBudget caps a batch's device footprint in bytes; 0 uses 85% of
	// the device's capacity (leaving room for the runtime, as the real
	// driver must).
	MemBudget int64
	// SmallLimit is the §3.1 bin-2/bin-3 boundary (0 = DefaultSmallLimit).
	SmallLimit int
}

// GPUResult is the outcome of a GPU local-assembly run.
type GPUResult struct {
	Results []Result

	// Kernels holds one entry per kernel launch (left/right × batches),
	// the input to the roofline analysis.
	Kernels []simt.KernelResult

	// Modeled time components.
	KernelTime   time.Duration
	TransferTime time.Duration
	// Batches is the number of batches staged per side.
	Batches int
}

// TotalTime is the modeled GPU wall-clock: kernels plus PCIe transfers
// (launch overhead is inside each kernel's time).
func (r *GPUResult) TotalTime() time.Duration { return r.KernelTime + r.TransferTime }

// Driver owns a device and runs local assembly on it, performing the
// CPU-side data packing, batch planning, kernel launches, and result
// unpacking of Fig 11's driver function.
type Driver struct {
	Dev *simt.Device
	Cfg GPUConfig
}

// NewDriver creates a driver for the device.
func NewDriver(dev *simt.Device, cfg GPUConfig) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemBudget == 0 {
		cfg.MemBudget = dev.Cfg.GlobalMemBytes * 85 / 100
	}
	return &Driver{Dev: dev, Cfg: cfg}, nil
}

// Run locally assembles the given contigs on the GPU. Contigs with no
// candidate reads pass through untouched (bin 1 is never offloaded). The
// returned results are in input order and bit-identical to RunCPU's.
func (d *Driver) Run(ctgs []*CtgWithReads) (*GPUResult, error) {
	res := &GPUResult{Results: make([]Result, len(ctgs))}
	for i, c := range ctgs {
		res.Results[i].ID = c.ID
	}

	for _, left := range []bool{false, true} {
		items := buildSideItems(ctgs, &d.Cfg.Config, left)
		if len(items) == 0 {
			continue
		}
		batches, err := packBatches(items, &d.Cfg.Config, d.Cfg.MemBudget)
		if err != nil {
			return nil, err
		}
		res.Batches += len(batches)
		for _, batch := range batches {
			if err := d.runBatch(batch, left, res); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// runBatch stages one batch, launches the extension kernel, and unpacks
// the outputs.
func (d *Driver) runBatch(batch *batchPlan, left bool, res *GPUResult) error {
	dev := d.Dev
	dev.FreeAll()

	total := batch.totalBytes()
	if total > dev.Cfg.GlobalMemBytes {
		return fmt.Errorf("locassm: batch of %d bytes exceeds device capacity", total)
	}
	var bases batchDev
	var err error
	alloc := func(n int64) simt.Ptr {
		var p simt.Ptr
		if err == nil {
			p, err = dev.Malloc(n)
		}
		return p
	}
	bases.seqBase = alloc(batch.seqArena)
	bases.qualBase = alloc(batch.qualArena)
	bases.tables = alloc(batch.tableArena)
	bases.visited = alloc(batch.visArena)
	bases.walks = alloc(batch.walkArena)
	bases.outs = alloc(batch.outArena)
	if err != nil {
		return err
	}

	// Host-side data packing (Fig 11): reads, qualities, walk-buffer tails.
	for _, p := range batch.items {
		for ri := range p.item.reads {
			dev.MemcpyHtoD(bases.seqBase+simt.Ptr(p.readOffs[ri]), p.item.reads[ri].Seq)
			dev.MemcpyHtoD(bases.qualBase+simt.Ptr(p.readOffs[ri]), p.item.reads[ri].Qual)
		}
		dev.MemcpyHtoD(bases.walks+simt.Ptr(p.walkOff), p.item.tail)
	}

	side := "right"
	if left {
		side = "left"
	}
	version, warps := "v1", (len(batch.items)+simt.WarpSize-1)/simt.WarpSize
	kern := extensionKernelV1(batch, bases, &d.Cfg.Config)
	if d.Cfg.WarpPerTable {
		// v2: one warp per extension.
		version, warps = "v2", len(batch.items)
		kern = extensionKernelV2(batch, bases, &d.Cfg.Config)
	}
	kres, err := dev.Launch(simt.KernelConfig{
		Name:              fmt.Sprintf("locassm_%s_ext_%s", side, version),
		Warps:             warps,
		LocalBytesPerLane: localBytesPerLane(&d.Cfg.Config),
	}, kern)
	if err != nil {
		return err
	}

	// Unpack: extension bytes and terminal states.
	for _, p := range batch.items {
		out := make([]byte, 6)
		dev.MemcpyDtoH(out, bases.outs+simt.Ptr(p.outOff))
		extLen := int(uint32(out[0]) | uint32(out[1])<<8 | uint32(out[2])<<16 | uint32(out[3])<<24)
		state := WalkState(out[4])
		iters := int(out[5])

		ext := make([]byte, extLen)
		if extLen > 0 {
			dev.MemcpyDtoH(ext, bases.walks+simt.Ptr(p.walkOff)+simt.Ptr(len(p.item.tail)))
		}
		r := &res.Results[p.item.ctgIdx]
		r.Iters += iters
		if left {
			r.LeftExt, r.LeftState = dna.RevComp(ext), state
		} else {
			r.RightExt, r.RightState = ext, state
		}
	}

	h2d, d2h := dev.Traffic()
	res.TransferTime += dev.TransferTime(h2d) + dev.TransferTime(d2h)
	res.KernelTime += kres.Time
	res.Kernels = append(res.Kernels, kres)
	return nil
}
