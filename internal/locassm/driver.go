package locassm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mhm2sim/internal/gpuht"
	"mhm2sim/internal/simt"
)

// DriverMode selects how the driver moves batches through the device.
type DriverMode int

const (
	// ModePipelined (the default) runs each side's batches through a
	// 3-stage pack → launch → unpack pipeline and processes the left and
	// right sides concurrently on separate streams, modeling the CUDA
	// driver's stream overlap. Results are bit-identical to ModeSequential.
	ModePipelined DriverMode = iota
	// ModeSequential stages, launches, and unpacks one batch at a time in
	// a fixed order — the reference path the pipelined mode is checked
	// against.
	ModeSequential
)

const (
	// pipelineStreams is how many batch sequences are in flight at once
	// (one per side). Each gets an equal share of the memory budget so the
	// combined footprint never exceeds MemBudget.
	pipelineStreams = 2
	// pipelineDepth bounds the pack → launch and launch → unpack channels:
	// how far ahead the host packs while the device works.
	pipelineDepth = 2
)

// GPUConfig configures the GPU local-assembly driver.
type GPUConfig struct {
	Config
	// WarpPerTable selects the v2 kernel (one warp builds one hash table,
	// §3.3); false selects the v1 single-thread-per-table kernel.
	WarpPerTable bool
	// MemBudget caps the driver's device footprint in bytes; 0 uses 85% of
	// the device's capacity (leaving room for the runtime, as the real
	// driver must). Each of the pipelineStreams concurrent sides packs
	// batches under an equal share of the budget — in every mode, so the
	// batch structure (and therefore modeled kernel time) is identical
	// whether or not the pipeline is on.
	MemBudget int64
	// SmallLimit is the §3.1 bin-2/bin-3 boundary (0 = DefaultSmallLimit).
	SmallLimit int
	// Mode selects pipelined (default) or sequential batch processing.
	Mode DriverMode
	// FaultHook, when set, runs before every batch launch; a non-nil
	// return is treated as that launch's failure. The fault-injection
	// plane uses it to abort specific kernel launches and exercise the
	// re-split path.
	FaultHook func() error
}

// GPUResult is the outcome of a GPU local-assembly run.
type GPUResult struct {
	Results []Result

	// Kernels holds one entry per kernel launch (right-side batches first,
	// then left, each in batch order), the input to the roofline analysis.
	Kernels []simt.KernelResult

	// Modeled time components.
	KernelTime   time.Duration
	TransferTime time.Duration
	// Batches is the number of batches staged per side.
	Batches int
	// Resplits counts batches that failed with a table fault and were
	// split in half and retried.
	Resplits int
}

// TotalTime is the modeled GPU wall-clock: kernels plus PCIe transfers
// (launch overhead is inside each kernel's time).
func (r *GPUResult) TotalTime() time.Duration { return r.KernelTime + r.TransferTime }

// Driver owns a device and runs local assembly on it, performing the
// CPU-side data packing, batch planning, kernel launches, and result
// unpacking of Fig 11's driver function.
type Driver struct {
	Dev *simt.Device
	Cfg GPUConfig
}

// NewDriver creates a driver for the device.
func NewDriver(dev *simt.Device, cfg GPUConfig) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemBudget == 0 {
		cfg.MemBudget = dev.Cfg.GlobalMemBytes * 85 / 100
	}
	return &Driver{Dev: dev, Cfg: cfg}, nil
}

// Run locally assembles the given contigs on the GPU. Contigs with no
// candidate reads pass through untouched (bin 1 is never offloaded). The
// returned results are in input order and bit-identical to RunCPU's,
// regardless of the driver mode.
func (d *Driver) Run(ctgs []*CtgWithReads) (*GPUResult, error) {
	res := &GPUResult{Results: make([]Result, len(ctgs))}
	for i, c := range ctgs {
		res.Results[i].ID = c.ID
	}

	// Plan both sides up front: the per-side batch structure must not
	// depend on the mode, and the pipeline needs the full footprint before
	// anything is in flight.
	sides := [pipelineStreams]bool{false, true} // right first, as before
	var plans [pipelineStreams][]*batchPlan
	var slabBytes [pipelineStreams]int64
	budget := d.Cfg.MemBudget / pipelineStreams
	for s, left := range sides {
		items := buildSideItems(ctgs, &d.Cfg.Config, left)
		if len(items) == 0 {
			continue
		}
		batches, err := packBatches(items, &d.Cfg.Config, budget)
		if err != nil {
			return nil, err
		}
		plans[s] = batches
		for _, b := range batches {
			if db := b.deviceBytes(); db > slabBytes[s] {
				slabBytes[s] = db
			}
		}
	}
	if total := slabBytes[0] + slabBytes[1]; total > d.Dev.Cfg.GlobalMemBytes {
		return nil, fmt.Errorf("locassm: %d bytes of in-flight batches exceed device capacity %d",
			total, d.Dev.Cfg.GlobalMemBytes)
	}

	// One slab region per side, sized to that side's largest batch and
	// reused for every batch on that side. Allocating (and growing the
	// arena to) the full footprint before anything launches is what lets
	// kernels and copies overlap without the backing store moving.
	dev := d.Dev
	dev.FreeAll()
	if err := dev.Prealloc(slabBytes[0] + slabBytes[1] + 64); err != nil {
		return nil, err
	}
	var slabs [pipelineStreams]simt.Region
	for s := range slabs {
		if slabBytes[s] == 0 {
			continue
		}
		var err error
		slabs[s], err = dev.AllocRegion(slabBytes[s])
		if err != nil {
			return nil, err
		}
	}

	outs := [pipelineStreams]*sideOut{newSideOut(len(ctgs)), newSideOut(len(ctgs))}
	if d.Cfg.Mode == ModeSequential {
		for s, left := range sides {
			if err := d.runSideSequential(plans[s], left, slabs[s], outs[s]); err != nil {
				return nil, err
			}
		}
	} else {
		var wg sync.WaitGroup
		var errs [pipelineStreams]error
		for s, left := range sides {
			wg.Add(1)
			go func(s int, left bool) {
				defer wg.Done()
				errs[s] = d.runSidePipelined(plans[s], left, slabs[s], outs[s])
			}(s, left)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	for s := range slabs {
		slabs[s].Free()
	}

	// Merge per-side outputs in the fixed right-then-left order, so
	// accounting and kernel lists are identical across modes.
	for s, left := range sides {
		so := outs[s]
		res.Kernels = append(res.Kernels, so.kernels...)
		res.KernelTime += so.kernelTime
		res.TransferTime += so.transferTime
		res.Batches += so.batches
		res.Resplits += so.resplits
		for i := range so.touched {
			if !so.touched[i] {
				continue
			}
			r := &res.Results[i]
			r.Iters += so.iters[i]
			if left {
				r.LeftExt, r.LeftState = so.ext[i], so.state[i]
			} else {
				r.RightExt, r.RightState = so.ext[i], so.state[i]
			}
		}
	}
	return res, nil
}

// maxResplitDepth bounds how many times a faulting batch is halved before
// the driver surrenders: 4 halvings shrink any batch to 1/16th, and a
// single-item batch that still faults cannot be split further anyway.
const maxResplitDepth = 4

// recoverableFault reports whether the error is a table fault the driver
// can recover from by re-splitting the batch: smaller batches mean smaller
// per-item footprints sharing the slab, and a fresh launch re-clears every
// table.
func recoverableFault(err error) bool {
	return errors.Is(err, gpuht.ErrTableFull) || errors.Is(err, gpuht.ErrNoConverge) ||
		errors.Is(err, gpuht.ErrProbeCycle)
}

// splitBatch rebuilds two half-size batches from a faulting batch's items.
// The item plans are re-planned from their original sideItems rather than
// re-laid-out: layoutBatch rebased each plan's readOffs in place, so
// reusing the old plans would rebase them twice.
func splitBatch(b *batchPlan, cfg *Config) [2]*batchPlan {
	mid := (len(b.items) + 1) / 2
	spans := [2][]*itemPlan{b.items[:mid], b.items[mid:]}
	var halves [2]*batchPlan
	for h, span := range spans {
		nb := &batchPlan{}
		for _, p := range span {
			nb.items = append(nb.items, planItem(p.item, cfg))
		}
		layoutBatch(nb)
		halves[h] = nb
	}
	return halves
}

// launchRecover launches one batch, recovering from table faults by
// splitting the batch in half and retrying each half (recursively, up to
// maxResplitDepth) before surrendering. Each half re-plans from scratch, so
// its footprint is a subset of the original and always fits the slab.
// Successfully launched (sub-)batches are handed to emit in item order; the
// returned count is how many splits happened.
func (d *Driver) launchRecover(stream *simt.Stream, slab simt.Region, left bool, batch *batchPlan, arena *hostArena, depth int, emit func(launchedBatch)) (int, error) {
	lb, err := d.launchBatch(stream, slab, left, batch, arena)
	if err == nil {
		emit(lb)
		return 0, nil
	}
	arenaPool.Put(arena)
	if !recoverableFault(err) {
		return 0, err
	}
	if len(batch.items) < 2 || depth >= maxResplitDepth {
		return 0, fmt.Errorf("locassm: batch of %d items still faulting after %d re-splits: %w",
			len(batch.items), depth, err)
	}
	resplits := 1
	for _, half := range splitBatch(batch, &d.Cfg.Config) {
		ha := arenaPool.Get().(*hostArena)
		ha.stage(half)
		n, err := d.launchRecover(stream, slab, left, half, ha, depth+1, emit)
		resplits += n
		if err != nil {
			return resplits, err
		}
	}
	return resplits, nil
}

// runSideSequential is the reference path: each batch is staged, launched,
// and unpacked before the next one starts.
func (d *Driver) runSideSequential(batches []*batchPlan, left bool, slab simt.Region, so *sideOut) error {
	stream := d.Dev.NewStream()
	for _, b := range batches {
		arena := arenaPool.Get().(*hostArena)
		arena.stage(b)
		n, err := d.launchRecover(stream, slab, left, b, arena, 0,
			func(lb launchedBatch) { unpackBatch(lb, left, so) })
		so.resplits += n
		if err != nil {
			return err
		}
	}
	so.batches = len(batches)
	return nil
}

// runSidePipelined runs one side's batches through the 3-stage pipeline:
// a pack goroutine fills staging arenas, a launch goroutine ships them and
// runs kernels on this side's stream, and the caller's goroutine unpacks.
// Bounded channels keep at most pipelineDepth batches queued per stage.
func (d *Driver) runSidePipelined(batches []*batchPlan, left bool, slab simt.Region, so *sideOut) error {
	stream := d.Dev.NewStream()

	staged := make(chan stagedBatch, pipelineDepth)
	go func() {
		for _, b := range batches {
			arena := arenaPool.Get().(*hostArena)
			arena.stage(b)
			staged <- stagedBatch{plan: b, arena: arena}
		}
		close(staged)
	}()

	launched := make(chan launchedBatch, pipelineDepth)
	// launchErr and resplits are owned by the launch goroutine until
	// `launched` closes; the close is the synchronization point.
	var launchErr error
	var resplits int
	go func() {
		for sb := range staged {
			if launchErr != nil {
				arenaPool.Put(sb.arena)
				continue
			}
			n, err := d.launchRecover(stream, slab, left, sb.plan, sb.arena, 0,
				func(lb launchedBatch) { launched <- lb })
			resplits += n
			if err != nil {
				launchErr = err
			}
		}
		close(launched)
	}()

	for lb := range launched {
		unpackBatch(lb, left, so)
	}
	so.batches = len(batches)
	so.resplits = resplits
	return launchErr
}
