package locassm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
)

// assertResultsMatch requires the flat-table engine's Result to be
// bit-identical to the map reference's: extensions, walk states, and iters.
func assertResultsMatch(t *testing.T, label string, flat, ref Result) {
	t.Helper()
	if flat.ID != ref.ID {
		t.Errorf("%s: ID %d vs %d", label, flat.ID, ref.ID)
	}
	if !bytes.Equal(flat.RightExt, ref.RightExt) {
		t.Errorf("%s: right ext differs:\n flat %q (%s)\n  ref %q (%s)",
			label, flat.RightExt, flat.RightState, ref.RightExt, ref.RightState)
	}
	if !bytes.Equal(flat.LeftExt, ref.LeftExt) {
		t.Errorf("%s: left ext differs:\n flat %q (%s)\n  ref %q (%s)",
			label, flat.LeftExt, flat.LeftState, ref.LeftExt, ref.LeftState)
	}
	if flat.RightState != ref.RightState {
		t.Errorf("%s: right state %s vs %s", label, flat.RightState, ref.RightState)
	}
	if flat.LeftState != ref.LeftState {
		t.Errorf("%s: left state %s vs %s", label, flat.LeftState, ref.LeftState)
	}
	if flat.Iters != ref.Iters {
		t.Errorf("%s: iters %d vs %d", label, flat.Iters, ref.Iters)
	}
}

// diffOne runs one contig through both engines and compares Result and
// WorkCounts bit for bit.
func diffOne(t *testing.T, label string, c *CtgWithReads, cfg Config) {
	t.Helper()
	ws := getWorkspace()
	defer putWorkspace(ws)
	var flatWC, refWC WorkCounts
	flat := extendContigCPU(ws, c, &cfg, &flatWC)
	ref := extendContigMapRef(c, &cfg, &refWC)
	assertResultsMatch(t, label, flat, ref)
	if flatWC != refWC {
		t.Errorf("%s: work counts differ: flat %+v, ref %+v", label, flatWC, refWC)
	}
}

// TestFlatMatchesMapTargeted pins the engine to the reference on the walk
// terminations that matter: dead ends, forks, loops, max-length walks, and
// a contig too short to walk at all.
func TestFlatMatchesMapTargeted(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(7))

	// Dead end: covered contig whose reads stop — the walk runs out of
	// evidence at the read frontier.
	c, _ := makeCovered(rng, 1, 600, 150, 330, 80, 12)
	diffOne(t, "dead-end", c, cfg)

	// Fork: two read populations diverging right after the contig end.
	genome := make([]byte, 400)
	for i := range genome {
		genome[i] = dna.Alphabet[rng.Intn(4)]
	}
	fork := &CtgWithReads{ID: 2, Seq: append([]byte(nil), genome[100:200]...)}
	altA := append(append([]byte(nil), genome[160:200]...), []byte("ACCAGGTTACCAGGTTACCAGGTT")...)
	altB := append(append([]byte(nil), genome[160:200]...), []byte("TGGTCCAATGGTCCAATGGTCCAA")...)
	for i := 0; i < 6; i++ {
		fork.RightReads = append(fork.RightReads, readFromString(string(altA)))
		fork.RightReads = append(fork.RightReads, readFromString(string(altB)))
	}
	diffOne(t, "fork", fork, cfg)

	// Loop: reads that tile a tandem repeat, so the walk revisits a mer.
	unit := "ACGTTGCAGGTCAATCCGGA"
	repeat := []byte(unit + unit + unit + unit + unit)
	loop := &CtgWithReads{ID: 3, Seq: repeat[:45]}
	for off := 0; off+40 <= len(repeat); off += 5 {
		loop.RightReads = append(loop.RightReads, readFromString(string(repeat[off:off+40])))
	}
	diffOne(t, "loop", loop, cfg)

	// Max length: dense tiling over a long genome with a tiny walk cap.
	short := cfg
	short.MaxWalkLen = 25
	c2, _ := makeCovered(rng, 4, 800, 100, 300, 100, 7)
	diffOne(t, "max-len", c2, short)

	// Contig shorter than MinMer: no walk at all.
	tiny := &CtgWithReads{ID: 5, Seq: []byte("ACGTACG"),
		RightReads: []dna.Read{readFromString("ACGTACGTACGTACGT")}}
	diffOne(t, "short-contig", tiny, cfg)
}

// TestFlatMatchesMapAmbiguous feeds both engines ambiguous bases — in the
// contig tail (so early walk cursors hold 'N') and inside reads (so table
// keys hold 'N') — including a periodic N-bearing tail whose early windows
// can collide. The map reference keys on raw strings, so the flat engine
// must distinguish and equate N-bearing windows exactly the same way.
func TestFlatMatchesMapAmbiguous(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(11))

	c, _ := makeCovered(rng, 1, 600, 150, 330, 80, 10)
	seqN := append([]byte(nil), c.Seq...)
	seqN[len(seqN)-5] = 'N'
	seqN[len(seqN)-13] = 'N'
	cN := &CtgWithReads{ID: 1, Seq: seqN, RightReads: c.RightReads, LeftReads: c.LeftReads}
	diffOne(t, "N-in-tail", cN, cfg)

	readsN := make([]dna.Read, len(c.RightReads))
	for i := range c.RightReads {
		readsN[i] = c.RightReads[i].Clone()
		readsN[i].Seq[rng.Intn(len(readsN[i].Seq))] = 'N'
	}
	cRN := &CtgWithReads{ID: 2, Seq: c.Seq, RightReads: readsN}
	diffOne(t, "N-in-reads", cRN, cfg)

	// Periodic ambiguous tail: byte-equal N-bearing windows must still be
	// detected as revisits/equal keys.
	periodic := bytes.Repeat([]byte("NA"), 30)
	cP := &CtgWithReads{ID: 3, Seq: periodic,
		RightReads: []dna.Read{readFromString(string(bytes.Repeat([]byte("NA"), 40)))}}
	// High-quality 'N'-bearing reads: Code('N') fails, so evidence counts
	// skip ambiguous followers exactly like the reference.
	diffOne(t, "periodic-N", cP, cfg)
}

// TestFlatMatchesMapRandom sweeps random mixed workloads (covered contigs,
// forks via truncated coverage, no-read contigs, short contigs) across
// seeds and config variants.
func TestFlatMatchesMapRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		cfg := testConfig()
		cfg.MaxWalkLen = 20 + rng.Intn(300)
		cfg.MerStep = 1 + rng.Intn(4)
		cfg.MinViableScore = 1 + rng.Intn(4)
		ctgs := randomWorkload(rng, 12)
		for i, c := range ctgs {
			diffOne(t, fmt.Sprintf("seed %d ctg %d", seed, i), c, cfg)
		}
	}
}

// TestRunCPUMatchesMapRef checks the fanned-out public entry point end to
// end: per-contig Results in input order and total WorkCounts equal the
// serial map reference.
func TestRunCPUMatchesMapRef(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cfg := testConfig()
	ctgs := randomWorkload(rng, 30)

	res, err := RunCPU(ctgs, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	var refCounts WorkCounts
	for i, c := range ctgs {
		ref := extendContigMapRef(c, &cfg, &refCounts)
		assertResultsMatch(t, fmt.Sprintf("ctg %d", i), res.Results[i], ref)
	}
	if res.Counts != refCounts {
		t.Errorf("total work counts differ: flat %+v, ref %+v", res.Counts, refCounts)
	}
}

// lowQualCovered builds a covered contig whose read qualities all sit below
// the cutoff: the engine builds every table of the mer ladder and probes the
// walk, but DecideExt never finds a high-quality vote, so no extension (and
// no Result allocation) is ever produced. This isolates the engine
// machinery for the allocation test.
func lowQualCovered(rng *rand.Rand) *CtgWithReads {
	c, _ := makeCovered(rng, 1, 600, 150, 330, 80, 10)
	for i := range c.RightReads {
		for j := range c.RightReads[i].Qual {
			c.RightReads[i].Qual[j] = dna.QualChar(5)
		}
	}
	for i := range c.LeftReads {
		for j := range c.LeftReads[i].Qual {
			c.LeftReads[i].Qual[j] = dna.QualChar(5)
		}
	}
	return c
}

// TestExtendContigZeroAlloc is the allocation regression gate: with a warm
// workspace, extendContigCPU performs zero steady-state heap allocations
// per contig — table builds, walks, visited probes, mer shifts, and both
// reverse-complement arenas all run out of recycled scratch.
func TestExtendContigZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := testConfig()
	c := lowQualCovered(rng)
	ws := getWorkspace()
	defer putWorkspace(ws)
	var wc WorkCounts
	extendContigCPU(ws, c, &cfg, &wc) // warm the workspace high-water marks

	var probe WorkCounts
	allocs := testing.AllocsPerRun(100, func() {
		extendContigCPU(ws, c, &cfg, &probe)
	})
	if allocs != 0 {
		t.Errorf("extendContigCPU allocates %.1f objects per contig, want 0", allocs)
	}
	if probe.TableBuilds == 0 || probe.KmersInserted == 0 || probe.Lookups == 0 {
		t.Fatalf("machinery did not run: %+v", probe)
	}
}

// TestExtendContigResultOnlyAllocs: on a contig that extends on both sides,
// the only steady-state allocations are the two Result extension slices the
// caller keeps.
func TestExtendContigResultOnlyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := testConfig()
	c, _ := makeCovered(rng, 1, 700, 200, 400, 90, 9)
	ws := getWorkspace()
	defer putWorkspace(ws)
	var wc WorkCounts
	r := extendContigCPU(ws, c, &cfg, &wc)
	if len(r.RightExt) == 0 || len(r.LeftExt) == 0 {
		t.Fatalf("workload does not extend both sides: %d/%d bases", len(r.LeftExt), len(r.RightExt))
	}

	allocs := testing.AllocsPerRun(100, func() {
		extendContigCPU(ws, c, &cfg, &wc)
	})
	if allocs > 2 {
		t.Errorf("extendContigCPU allocates %.1f objects per extending contig, want ≤ 2 (the Result slices)", allocs)
	}
}
