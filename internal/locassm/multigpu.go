package locassm

import (
	"fmt"
	"sync"
	"time"

	"mhm2sim/internal/simt"
)

// NodeDriver drives the local assembly of one Summit-like node: the
// workload is sharded across the node's GPUs (6 on Summit, §4.1) by a
// greedy balance on candidate-read counts — the driver-side
// device-to-rank mapping of Fig 11 — and the devices run concurrently, so
// the node's model time is the slowest device's.
type NodeDriver struct {
	Drivers []*Driver
}

// NewNodeDriver creates one driver per device with a shared configuration.
func NewNodeDriver(gpus int, devCfg simt.DeviceConfig, cfg GPUConfig) (*NodeDriver, error) {
	if gpus < 1 {
		return nil, fmt.Errorf("locassm: need at least one GPU, got %d", gpus)
	}
	nd := &NodeDriver{}
	for i := 0; i < gpus; i++ {
		drv, err := NewDriver(simt.NewDevice(devCfg), cfg)
		if err != nil {
			return nil, err
		}
		nd.Drivers = append(nd.Drivers, drv)
	}
	return nd, nil
}

// NodeResult is a multi-GPU run outcome.
type NodeResult struct {
	Results []Result
	// PerGPU holds each device's own result (kernel stats, model times).
	PerGPU []*GPUResult
	// NodeTime is the modeled node wall time: max over devices.
	NodeTime time.Duration
}

// Run shards the contigs over the devices and executes them concurrently.
// Sharding is deterministic: contigs sorted by descending candidate-read
// count are dealt to the currently lightest device (longest-processing-
// time-first), the standard balance heuristic.
func (nd *NodeDriver) Run(ctgs []*CtgWithReads) (*NodeResult, error) {
	n := len(nd.Drivers)
	shards := make([][]*CtgWithReads, n)
	shardIdx := make([][]int, n)
	load := make([]int, n)

	order := make([]int, len(ctgs))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending read count (stable, deterministic).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && ctgs[order[j]].NumReads() > ctgs[order[j-1]].NumReads(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, idx := range order {
		g := 0
		for d := 1; d < n; d++ {
			if load[d] < load[g] {
				g = d
			}
		}
		shards[g] = append(shards[g], ctgs[idx])
		shardIdx[g] = append(shardIdx[g], idx)
		load[g] += ctgs[idx].NumReads() + 1
	}

	out := &NodeResult{
		Results: make([]Result, len(ctgs)),
		PerGPU:  make([]*GPUResult, n),
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for g := 0; g < n; g++ {
		go func(g int) {
			defer wg.Done()
			out.PerGPU[g], errs[g] = nd.Drivers[g].Run(shards[g])
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for g := 0; g < n; g++ {
		for i, idx := range shardIdx[g] {
			out.Results[idx] = out.PerGPU[g].Results[i]
		}
		if t := out.PerGPU[g].TotalTime(); t > out.NodeTime {
			out.NodeTime = t
		}
	}
	return out, nil
}
