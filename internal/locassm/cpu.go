package locassm

import (
	"runtime"
	"sync"

	"mhm2sim/internal/dna"
)

// WorkCounts tallies the algorithmic work of a local-assembly run; the
// cluster model converts these counts into Summit-CPU time.
type WorkCounts struct {
	TableBuilds   int64 // hash-table constructions (one per mer size tried per side)
	KmersInserted int64 // Algorithm 1 insertions
	Lookups       int64 // Algorithm 2 hash probes
	WalkSteps     int64 // accepted extension steps
}

// Add accumulates o into w.
func (w *WorkCounts) Add(o WorkCounts) {
	w.TableBuilds += o.TableBuilds
	w.KmersInserted += o.KmersInserted
	w.Lookups += o.Lookups
	w.WalkSteps += o.WalkSteps
}

// CPUResult is the outcome of a CPU local-assembly run.
type CPUResult struct {
	Results []Result
	Counts  WorkCounts
}

// workSpan is one chunk of contig indices [Lo, Hi) handed to a worker.
// Chunking pays the channel synchronization once per span instead of once
// per contig, which matters when the workload is many small bin-1/bin-2
// contigs.
type workSpan struct{ Lo, Hi int }

// spanSize picks the chunk size for n contigs over `workers` goroutines:
// small enough that the slowest worker cannot hold more than ~1/8 of a
// worker's fair share hostage, large enough to amortize the channel.
func spanSize(n, workers int) int {
	chunk := n / (8 * workers)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// RunCPU locally assembles every contig on the host using the flat-table
// engine, fanned out over `workers` goroutines (MetaHipMer uses every core
// on the node, §4.4). Each worker checks a pooled workspace out once and
// reuses it across its whole share, so steady-state extends allocate
// nothing. Results are returned in input order.
func RunCPU(ctgs []*CtgWithReads, cfg Config, workers int) (*CPUResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &CPUResult{Results: make([]Result, len(ctgs))}
	counts := make([]WorkCounts, workers)

	chunk := spanSize(len(ctgs), workers)
	next := make(chan workSpan, (len(ctgs)+chunk-1)/chunk)
	for lo := 0; lo < len(ctgs); lo += chunk {
		hi := lo + chunk
		if hi > len(ctgs) {
			hi = len(ctgs)
		}
		next <- workSpan{lo, hi}
	}
	close(next)

	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			ws := getWorkspace()
			defer putWorkspace(ws)
			for span := range next {
				for i := span.Lo; i < span.Hi; i++ {
					res.Results[i] = extendContigCPU(ws, ctgs[i], &cfg, &counts[wk])
				}
			}
		}(wk)
	}
	wg.Wait()

	for i := range counts {
		res.Counts.Add(counts[i])
	}
	return res, nil
}

// extendContigCPU runs both side extensions for one contig on the
// flat-table engine. Beyond the Result extension slices it returns (which
// must outlive the workspace), a warm workspace makes this allocation-free.
func extendContigCPU(ws *cpuWorkspace, c *CtgWithReads, cfg *Config, wc *WorkCounts) Result {
	r := Result{ID: c.ID}

	if len(c.RightReads) > 0 {
		ext, state, iters := ws.extendSide(c.Seq, c.RightReads, cfg, wc)
		r.RightExt, r.RightState = cloneExt(ext), state
		r.Iters += iters
	}
	if len(c.LeftReads) > 0 {
		// Left extension reuses the rightward walker on the reverse
		// complement, then flips the walked bases back (§2.3: the same
		// algorithm is repeated for both sides).
		rcSeq, rcReads := ws.prepLeft(c, cfg)
		ext, state, iters := ws.extendSide(rcSeq, rcReads, cfg, wc)
		r.LeftExt, r.LeftState = cloneExt(ext), state
		dna.RevCompInPlace(r.LeftExt)
		r.Iters += iters
	}
	return r
}
