package locassm

import (
	"runtime"
	"sync"

	"mhm2sim/internal/dna"
	"mhm2sim/internal/gpuht"
)

// WorkCounts tallies the algorithmic work of a local-assembly run; the
// cluster model converts these counts into Summit-CPU time.
type WorkCounts struct {
	TableBuilds   int64 // hash-table constructions (one per mer size tried per side)
	KmersInserted int64 // Algorithm 1 insertions
	Lookups       int64 // Algorithm 2 hash probes
	WalkSteps     int64 // accepted extension steps
}

// Add accumulates o into w.
func (w *WorkCounts) Add(o WorkCounts) {
	w.TableBuilds += o.TableBuilds
	w.KmersInserted += o.KmersInserted
	w.Lookups += o.Lookups
	w.WalkSteps += o.WalkSteps
}

// CPUResult is the outcome of a CPU local-assembly run.
type CPUResult struct {
	Results []Result
	Counts  WorkCounts
}

// RunCPU locally assembles every contig on the host, using the reference
// implementation of Algorithms 1 and 2, fanned out over `workers`
// goroutines (MetaHipMer uses every core on the node, §4.4). Results are
// returned in input order.
func RunCPU(ctgs []*CtgWithReads, cfg Config, workers int) (*CPUResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &CPUResult{Results: make([]Result, len(ctgs))}
	counts := make([]WorkCounts, workers)

	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func(wk int) {
			defer wg.Done()
			for i := range next {
				res.Results[i] = extendContigCPU(ctgs[i], &cfg, &counts[wk])
			}
		}(wk)
	}
	for i := range ctgs {
		next <- i
	}
	close(next)
	wg.Wait()

	for i := range counts {
		res.Counts.Add(counts[i])
	}
	return res, nil
}

// extendContigCPU runs both side extensions for one contig.
func extendContigCPU(c *CtgWithReads, cfg *Config, wc *WorkCounts) Result {
	r := Result{ID: c.ID}

	if len(c.RightReads) > 0 {
		ext, state, iters := extendSideCPU(c.Seq, c.RightReads, cfg, wc)
		r.RightExt, r.RightState = ext, state
		r.Iters += iters
	}
	if len(c.LeftReads) > 0 {
		// Left extension reuses the rightward walker on the reverse
		// complement, then flips the walked bases back (§2.3: the same
		// algorithm is repeated for both sides).
		rcSeq := dna.RevComp(c.Seq)
		rcReads := make([]dna.Read, len(c.LeftReads))
		for i := range c.LeftReads {
			rcReads[i] = c.LeftReads[i].RevComp()
		}
		ext, state, iters := extendSideCPU(rcSeq, rcReads, cfg, wc)
		r.LeftExt, r.LeftState = dna.RevComp(ext), state
		r.Iters += iters
	}
	return r
}

// extendSideCPU is the reference rightward extension: the §2.3 loop of
// build-table / walk / shift-k, growing the contig across iterations.
func extendSideCPU(ctg []byte, reads []dna.Read, cfg *Config, wc *WorkCounts) ([]byte, WalkState, int) {
	// The walk buffer starts as the contig tail (long enough for the
	// largest mer) and accumulates extensions.
	tailLen := len(ctg)
	if tailLen > cfg.MaxMer {
		tailLen = cfg.MaxMer
	}
	buf := append([]byte(nil), ctg[len(ctg)-tailLen:]...)

	mer := cfg.StartMer
	if mer > tailLen {
		mer = tailLen
	}
	if mer < cfg.MinMer {
		return nil, WalkDeadEnd, 0
	}

	state := WalkDeadEnd
	shift := 0
	iters := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		iters++
		table := buildTableCPU(reads, mer, cfg.QualCutoff, wc)
		var steps int64
		state, steps = walkCPU(&buf, tailLen, table, mer, cfg, wc)
		wc.WalkSteps += steps

		next, nextShift, done := nextMer(cfg, mer, shift, state)
		if done {
			break
		}
		if next > len(buf) { // mer cannot exceed the walk buffer
			break
		}
		mer, shift = next, nextShift
	}
	return buf[tailLen:], state, iters
}

// buildTableCPU is Algorithm 1 with a Go map: key = k-mer string, value =
// extension object with quality-split counts of the following base.
func buildTableCPU(reads []dna.Read, k, qualCutoff int, wc *WorkCounts) map[string]gpuht.Ext {
	wc.TableBuilds++
	table := make(map[string]gpuht.Ext)
	for ri := range reads {
		seq, qual := reads[ri].Seq, reads[ri].Qual
		for i := 0; i+k <= len(seq); i++ {
			wc.KmersInserted++
			key := string(seq[i : i+k])
			e := table[key]
			e.Count++
			if i+k < len(seq) {
				c, ok := dna.Code(seq[i+k])
				if ok {
					if dna.QualScore(qual[i+k]) >= qualCutoff {
						e.Hi[c]++
					} else {
						e.Lo[c]++
					}
				}
			}
			table[key] = e
		}
	}
	return table
}

// walkCPU is Algorithm 2: slice the mer off the buffer end, look it up,
// append the decided base, repeat. The visited set implements loop_exists.
func walkCPU(buf *[]byte, tailLen int, table map[string]gpuht.Ext, mer int, cfg *Config, wc *WorkCounts) (WalkState, int64) {
	visited := make(map[string]bool)
	steps := int64(0)
	for {
		if len(*buf)-tailLen >= cfg.MaxWalkLen {
			return WalkMaxLen, steps
		}
		cur := string((*buf)[len(*buf)-mer:])
		if visited[cur] {
			return WalkLoop, steps
		}
		visited[cur] = true

		wc.Lookups++
		e, ok := table[cur]
		if !ok {
			return WalkDeadEnd, steps
		}
		base, st := DecideExt(e, cfg.MinViableScore)
		switch st {
		case StepEnd:
			return WalkDeadEnd, steps
		case StepFork:
			return WalkFork, steps
		}
		*buf = append(*buf, dna.Alphabet[base])
		steps++
	}
}
