package locassm

import (
	"mhm2sim/internal/dna"
	"mhm2sim/internal/par"
)

// WorkCounts tallies the algorithmic work of a local-assembly run; the
// cluster model converts these counts into Summit-CPU time.
type WorkCounts struct {
	TableBuilds   int64 // hash-table constructions (one per mer size tried per side)
	KmersInserted int64 // Algorithm 1 insertions
	Lookups       int64 // Algorithm 2 hash probes
	WalkSteps     int64 // accepted extension steps
}

// Add accumulates o into w.
func (w *WorkCounts) Add(o WorkCounts) {
	w.TableBuilds += o.TableBuilds
	w.KmersInserted += o.KmersInserted
	w.Lookups += o.Lookups
	w.WalkSteps += o.WalkSteps
}

// CPUResult is the outcome of a CPU local-assembly run.
type CPUResult struct {
	Results []Result
	Counts  WorkCounts
}

// RunCPU locally assembles every contig on the host using the flat-table
// engine, fanned out over `workers` goroutines (MetaHipMer uses every core
// on the node, §4.4) through the shared par helper. Each worker checks a
// pooled workspace out once — lazily, on its first span — and reuses it
// across its whole share, so steady-state extends allocate nothing.
// Results are returned in input order.
func RunCPU(ctgs []*CtgWithReads, cfg Config, workers int) (*CPUResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers = par.Workers(workers)
	res := &CPUResult{Results: make([]Result, len(ctgs))}
	counts := make([]WorkCounts, workers)
	spaces := make([]*cpuWorkspace, workers)

	par.ForEachSpan(workers, len(ctgs), 0, func(wk int, s par.Span) {
		ws := spaces[wk]
		if ws == nil {
			ws = getWorkspace()
			spaces[wk] = ws
		}
		for i := s.Lo; i < s.Hi; i++ {
			res.Results[i] = extendContigCPU(ws, ctgs[i], &cfg, &counts[wk])
		}
	})

	for _, ws := range spaces {
		if ws != nil {
			putWorkspace(ws)
		}
	}
	for i := range counts {
		res.Counts.Add(counts[i])
	}
	return res, nil
}

// extendContigCPU runs both side extensions for one contig on the
// flat-table engine. Beyond the Result extension slices it returns (which
// must outlive the workspace), a warm workspace makes this allocation-free.
func extendContigCPU(ws *cpuWorkspace, c *CtgWithReads, cfg *Config, wc *WorkCounts) Result {
	r := Result{ID: c.ID}

	if len(c.RightReads) > 0 {
		ext, state, iters := ws.extendSide(c.Seq, c.RightReads, cfg, wc)
		r.RightExt, r.RightState = cloneExt(ext), state
		r.Iters += iters
	}
	if len(c.LeftReads) > 0 {
		// Left extension reuses the rightward walker on the reverse
		// complement, then flips the walked bases back (§2.3: the same
		// algorithm is repeated for both sides).
		rcSeq, rcReads := ws.prepLeft(c, cfg)
		ext, state, iters := ws.extendSide(rcSeq, rcReads, cfg, wc)
		r.LeftExt, r.LeftState = cloneExt(ext), state
		dna.RevCompInPlace(r.LeftExt)
		r.Iters += iters
	}
	return r
}
