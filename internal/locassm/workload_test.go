package locassm

import (
	"bytes"
	"math/rand"
	"testing"

	"mhm2sim/internal/dna"
)

// readFromString builds a uniformly high-quality read.
func readFromString(s string) dna.Read {
	q := make([]byte, len(s))
	for i := range q {
		q[i] = dna.QualChar(35)
	}
	return dna.Read{ID: "t", Seq: []byte(s), Qual: q}
}

// testConfig uses small mers so short synthetic reads exercise the ladder.
func testConfig() Config {
	return Config{
		MinMer:         11,
		MaxMer:         19,
		StartMer:       15,
		MerStep:        4,
		MaxWalkLen:     300,
		MaxIters:       10,
		QualCutoff:     dna.QualCutoff,
		MinViableScore: 2,
		MaxReadLen:     150,
	}
}

// makeCovered builds a contig that is a window of a hidden genome, plus
// reads tiling past both ends, so local assembly can extend it in both
// directions. Returns the workload item and the genome for verification.
func makeCovered(rng *rand.Rand, id int64, genomeLen, ctgStart, ctgEnd, readLen, stride int) (*CtgWithReads, []byte) {
	genome := make([]byte, genomeLen)
	for i := range genome {
		genome[i] = dna.Alphabet[rng.Intn(4)]
	}
	c := &CtgWithReads{
		ID:  id,
		Seq: append([]byte(nil), genome[ctgStart:ctgEnd]...),
	}
	// Right reads tile from inside the contig end out past it.
	for pos := ctgEnd - readLen + stride; pos+readLen <= genomeLen; pos += stride {
		if pos < 0 {
			continue
		}
		c.RightReads = append(c.RightReads, readFromString(string(genome[pos:pos+readLen])))
	}
	// Left reads tile leftward from inside the contig start.
	for pos := ctgStart - stride; pos >= 0; pos -= stride {
		end := pos + readLen
		if end > genomeLen {
			continue
		}
		c.LeftReads = append(c.LeftReads, readFromString(string(genome[pos:end])))
	}
	return c, genome
}

func TestCPUExtendsIntoGenome(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cfg := testConfig()
	c, genome := makeCovered(rng, 1, 700, 250, 450, 80, 10)

	res, err := RunCPU([]*CtgWithReads{c}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if len(r.RightExt) < 50 {
		t.Fatalf("right extension too short: %d bases (state %s)", len(r.RightExt), r.RightState)
	}
	if len(r.LeftExt) < 50 {
		t.Fatalf("left extension too short: %d bases (state %s)", len(r.LeftExt), r.LeftState)
	}
	// Extensions must continue the hidden genome exactly (reads are
	// error-free and unambiguous).
	wantRight := genome[450 : 450+len(r.RightExt)]
	if !bytes.Equal(r.RightExt, wantRight) {
		t.Errorf("right extension diverges from genome:\n got %s\nwant %s", r.RightExt, wantRight)
	}
	wantLeft := genome[250-len(r.LeftExt) : 250]
	if !bytes.Equal(r.LeftExt, wantLeft) {
		t.Errorf("left extension diverges from genome:\n got %s\nwant %s", r.LeftExt, wantLeft)
	}
	if res.Counts.KmersInserted == 0 || res.Counts.TableBuilds == 0 || res.Counts.Lookups == 0 {
		t.Error("work counters not collected")
	}
}

func TestCPUNoReadsNoExtension(t *testing.T) {
	cfg := testConfig()
	c := &CtgWithReads{ID: 9, Seq: []byte("ACGTACGTACGTACGTACGTACGT")}
	res, err := RunCPU([]*CtgWithReads{c}, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if len(r.LeftExt) != 0 || len(r.RightExt) != 0 || r.Iters != 0 {
		t.Errorf("no-read contig was modified: %+v", r)
	}
}

func TestCPUShortContigSkipped(t *testing.T) {
	cfg := testConfig()
	c := &CtgWithReads{ID: 2, Seq: []byte("ACGTACG")} // shorter than MinMer
	c.RightReads = append(c.RightReads, readFromString("ACGTACGTACGTACGTACGT"))
	res, err := RunCPU([]*CtgWithReads{c}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results[0].RightExt) != 0 {
		t.Error("contig shorter than MinMer was extended")
	}
}

func TestCPUForkStopsWalk(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(5))
	stem := make([]byte, 60)
	for i := range stem {
		stem[i] = dna.Alphabet[rng.Intn(4)]
	}
	// Two equally supported continuations that differ immediately.
	brA := append(append([]byte(nil), stem...), []byte("AACCGGTTACGTACGTACGTAGGTTC")...)
	brC := append(append([]byte(nil), stem...), []byte("CGTTGGAACTTGGCCAATTGGCATGA")...)
	c := &CtgWithReads{ID: 3, Seq: append([]byte(nil), stem...)}
	for pos := 20; pos+40 <= len(brA); pos += 5 {
		c.RightReads = append(c.RightReads, readFromString(string(brA[pos:pos+40])))
		c.RightReads = append(c.RightReads, readFromString(string(brC[pos:pos+40])))
	}
	res, err := RunCPU([]*CtgWithReads{c}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.RightState != WalkFork {
		t.Errorf("state %s, want fork", r.RightState)
	}
	if len(r.RightExt) != 0 {
		t.Errorf("fork at the junction should not extend, got %d bases", len(r.RightExt))
	}
	if r.Iters < 2 {
		t.Errorf("fork should trigger up-shift retries, iters=%d", r.Iters)
	}
}

func TestCPULoopDetection(t *testing.T) {
	cfg := testConfig()
	// A 10-periodic region: walking it revisits k-mers after 10 steps.
	unit := "ACGGTTCAAG"
	repeat := bytes.Repeat([]byte(unit), 12)
	c := &CtgWithReads{ID: 4, Seq: repeat[:40]}
	for pos := 10; pos+50 <= len(repeat); pos += 5 {
		c.RightReads = append(c.RightReads, readFromString(string(repeat[pos:pos+50])))
	}
	res, err := RunCPU([]*CtgWithReads{c}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.RightState != WalkLoop {
		t.Errorf("state %s, want loop", r.RightState)
	}
	if len(r.RightExt) > len(unit) {
		t.Errorf("loop walk advanced %d bases, more than one period", len(r.RightExt))
	}
}

func TestCPUMaxWalkLen(t *testing.T) {
	cfg := testConfig()
	cfg.MaxWalkLen = 25
	rng := rand.New(rand.NewSource(6))
	c, _ := makeCovered(rng, 5, 700, 100, 300, 80, 10)
	c.LeftReads = nil
	res, err := RunCPU([]*CtgWithReads{c}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Results[0]
	if r.RightState != WalkMaxLen {
		t.Errorf("state %s, want max-len", r.RightState)
	}
	if len(r.RightExt) != 25 {
		t.Errorf("extension %d bases, want exactly MaxWalkLen=25", len(r.RightExt))
	}
}

func TestCPUWorkersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := testConfig()
	var ctgs []*CtgWithReads
	for i := 0; i < 12; i++ {
		c, _ := makeCovered(rng, int64(i), 600, 200, 380, 70, 15)
		ctgs = append(ctgs, c)
	}
	r1, err := RunCPU(ctgs, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunCPU(ctgs, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctgs {
		if !bytes.Equal(r1.Results[i].RightExt, r8.Results[i].RightExt) ||
			!bytes.Equal(r1.Results[i].LeftExt, r8.Results[i].LeftExt) {
			t.Fatalf("contig %d: results differ across worker counts", i)
		}
	}
	if r1.Counts != r8.Counts {
		t.Errorf("work counts differ: %+v vs %+v", r1.Counts, r8.Counts)
	}
}

func TestRunCPURejectsBadConfig(t *testing.T) {
	cfg := testConfig()
	cfg.MerStep = 0
	if _, err := RunCPU(nil, cfg, 1); err == nil {
		t.Error("bad config accepted")
	}
}
